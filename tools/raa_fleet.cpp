// raa_fleet — the fault-isolated batch driver: run every job of a fleet
// manifest (or every scenario in a directory) through the memory-hierarchy
// simulator, stream one result JSON per job, and merge everything into a
// machine-readable index. Individual job failures never kill the fleet:
// they are classified (src/fleet/job.hpp), optionally retried, and
// reported — graceful degradation by construction.
//
//   raa_fleet --manifest=FILE [options]
//   raa_fleet --scenarios=DIR [options]
//
//   --out=DIR        output directory: per-job <id>.json plus index.json
//                    (default fleet_out)
//   --jobs=N         concurrent job lanes (default 1; results are
//                    byte-identical for every N)
//   --mode=M         fallback mode for jobs that set none
//                    (cache_only | hybrid | compare)
//   --backend=B      fallback DRAM backend (flat | banked)
//   --shards=N       fallback front-end lanes per System::run
//   --timeout-ms=N   fallback per-job deadline (0 = none); timed-out jobs
//                    are cancelled cooperatively and their lane reclaimed
//   --retries=N      fallback retry budget for transient failures
//   --backoff-ms=N   first retry delay (default 50), doubling per attempt
//   --backoff-cap-ms=N  backoff ceiling (default 2000)
//   --seed=N         fleet seed override (per-job seeds derive from it and
//                    the job id — stable under manifest reordering)
//   --fail-fast      record still-unstarted jobs as skipped once any job
//                    has failed
//   --trace-out=PATH write a Chrome trace-event JSON of the fleet run
//                    (host clock: job spans, retries, timeouts)
//
//   --inject-fail=GLOB / --inject-flaky=GLOB / --inject-hang=GLOB
//                    fault-injection test hooks over job ids: permanent
//                    failure, transient first-attempt failure (drives the
//                    retry path), cooperative hang (drives the watchdog
//                    timeout path; matching jobs need a deadline)
//
// Exit codes (src/common/exit_codes.hpp): 0 every job ok, 4 partial fleet
// (some jobs ok, some not — the degradation signal), 1 no job succeeded or
// the fleet itself failed, 2 bad usage/manifest.

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/table.hpp"
#include "fleet/fleet.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --manifest=FILE | --scenarios=DIR [--out=DIR] [--jobs=N]\n"
      "       [--mode=cache_only|hybrid|compare] [--backend=flat|banked]\n"
      "       [--shards=N] [--timeout-ms=N] [--retries=N] [--backoff-ms=N]\n"
      "       [--backoff-cap-ms=N] [--seed=N] [--fail-fast] [--quiet]\n"
      "       [--trace-out=PATH]\n"
      "       [--inject-fail=GLOB] [--inject-flaky=GLOB] "
      "[--inject-hang=GLOB]\n",
      argv0);
  return raa::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  using raa::fleet::FleetOptions;
  using raa::fleet::Manifest;

  const std::string manifest_path = cli.get_string("manifest", "");
  const std::string scenarios_dir = cli.get_string("scenarios", "");
  if (manifest_path.empty() == scenarios_dir.empty()) {
    std::fprintf(stderr,
                 "raa_fleet: give exactly one of --manifest or --scenarios\n");
    return usage(argv[0]);
  }

  std::string error;
  std::optional<Manifest> man =
      !manifest_path.empty() ? Manifest::load_file(manifest_path, &error)
                             : Manifest::from_directory(scenarios_dir, &error);
  if (!man) {
    std::fprintf(stderr, "raa_fleet: %s\n", error.c_str());
    return raa::kExitUsage;
  }
  if (cli.has("seed")) man->seed = cli.get_int("seed", 1);

  FleetOptions opt;
  opt.manifest = std::move(*man);
  opt.out_dir = cli.get_string("out", "fleet_out");
  opt.jobs = static_cast<unsigned>(cli.get_int("jobs", 1));
  if (cli.has("mode")) opt.fallback.mode = cli.get_string("mode", "");
  if (cli.has("backend")) opt.fallback.backend = cli.get_string("backend", "");
  if (cli.has("shards"))
    opt.fallback.shards = static_cast<unsigned>(cli.get_int("shards", 1));
  if (cli.has("timeout-ms"))
    opt.fallback.timeout_ms =
        static_cast<std::uint64_t>(cli.get_int("timeout-ms", 0));
  if (cli.has("retries"))
    opt.fallback.retries = static_cast<unsigned>(cli.get_int("retries", 0));
  opt.backoff_base_ms =
      static_cast<std::uint64_t>(cli.get_int("backoff-ms", 50));
  opt.backoff_cap_ms =
      static_cast<std::uint64_t>(cli.get_int("backoff-cap-ms", 2000));
  opt.inject_fail = cli.get_string("inject-fail", "");
  opt.inject_flaky = cli.get_string("inject-flaky", "");
  opt.inject_hang = cli.get_string("inject-hang", "");
  opt.fail_fast = cli.get_bool("fail-fast", false);
  opt.quiet = cli.get_bool("quiet", false);

  // Fleet spans live on the host clock (job wall time is the point), so
  // the exported trace always uses TraceClock::host.
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty()) raa::obs::start();

  const raa::fleet::FleetResult res = raa::fleet::run_fleet(opt);

  if (!trace_out.empty()) {
    const raa::obs::Trace trace = raa::obs::stop();
    std::string trace_error;
    if (!raa::obs::write_chrome_trace(trace, trace_out,
                                      raa::obs::TraceClock::host,
                                      &trace_error)) {
      std::fprintf(stderr, "raa_fleet: %s\n", trace_error.c_str());
      return raa::kExitFailure;
    }
    if (!opt.quiet)
      std::printf("[raa_fleet] wrote trace %s (%zu events, %llu dropped)\n",
                  trace_out.c_str(), trace.events.size(),
                  static_cast<unsigned long long>(trace.dropped));
  }
  if (!res.error.empty())
    std::fprintf(stderr, "raa_fleet: %s\n", res.error.c_str());
  if (res.records.empty()) return res.exit_code;

  if (!opt.quiet) {
    raa::Table t{{"job", "status", "attempts", "seed", "detail"}};
    for (const auto& r : res.records)
      t.row(r.id, raa::fleet::to_string(r.status),
            std::to_string(r.attempts), std::to_string(r.seed),
            r.message.empty() ? r.result_file : r.message);
    t.print(std::cout);
    std::printf(
        "[raa_fleet] %zu jobs: %u ok, %u retried_ok, %u failed, %u timeout, "
        "%u skipped -> %s (exit %d)\n",
        res.records.size(), res.ok, res.retried_ok, res.failed, res.timeout,
        res.skipped,
        raa::to_string(static_cast<raa::ExitCode>(res.exit_code)),
        res.exit_code);
  }
  return res.exit_code;
}
