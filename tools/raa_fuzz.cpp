// raa_fuzz — the differential scenario fuzzer: generate random valid
// scenarios from a seed, run every determinism oracle pair over each
// (paged vs hashed line store, serial vs sharded engine, record vs
// replay, serialize vs re-parse), and on any divergence shrink to a
// minimal repro written as a scenario JSON file raa_sim accepts
// unchanged, plus a recorded RAAT trace of the failing run.
//
//   raa_fuzz --seed=S --budget-runs=N [--shards=N] [--out=DIR]
//            [--json=PATH] [--max-accesses=N] [--inject-divergence]
//            [--quiet]
//
//   --seed            the fuzz-run key; case i is a pure function of
//                     (seed, i), so any case regenerates from the summary
//   --budget-runs     how many scenarios to generate and check (the CI
//                     budget knob)
//   --shards          lane count for the sharded-engine oracle
//   --out             directory for repro artifacts (created if missing)
//   --json            write the raa-fuzz-summary document here; two runs
//                     with the same options emit byte-identical summaries
//   --max-accesses    per-program access-count ceiling for generation
//   --inject-divergence  graft the synthetic __diverge_marker divergence
//                     onto every case and enable the marker oracle — the
//                     end-to-end shrink/repro exercise (tests, CI)
//   --emit-manifest   skip the oracle battery: write every generated case
//                     to --out as gen_i<N>.json plus a fleet manifest
//                     (fleet_manifest.json) naming them all, ready for
//                     raa_fleet --manifest (requires --out)
//
// Exit codes: 0 all cases clean, 1 divergence found (repros written) or
// artifact I/O failure, 2 bad usage.

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "fuzz/fuzz.hpp"
#include "report/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --seed=S --budget-runs=N [--shards=N] [--out=DIR] "
               "[--json=PATH] [--max-accesses=N] [--inject-divergence] "
               "[--emit-manifest] [--quiet]\n",
               argv0);
  return raa::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) try {
  const raa::Cli cli{argc, argv};
  if (cli.get_bool("help", false)) {
    usage(argv[0]);
    return raa::kExitOk;
  }

  raa::fuzz::FuzzOptions opt;
  const std::int64_t seed = cli.get_int("seed", 1);
  const std::int64_t budget = cli.get_int("budget-runs", 25);
  const std::int64_t shards = cli.get_int("shards", 4);
  const std::int64_t max_accesses =
      cli.get_int("max-accesses",
                  static_cast<std::int64_t>(opt.limits.max_accesses));
  if (seed < 0 || budget < 1 || shards < 2 || max_accesses < 1) {
    std::fprintf(stderr,
                 "error: need --seed >= 0, --budget-runs >= 1, --shards >= 2 "
                 "and --max-accesses >= 1\n");
    return usage(argv[0]);
  }
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.budget_runs = static_cast<std::uint64_t>(budget);
  opt.shards = static_cast<unsigned>(shards);
  opt.limits.max_accesses = static_cast<std::uint64_t>(max_accesses);
  opt.out_dir = cli.get_string("out", "");
  opt.inject_marker = cli.get_bool("inject-divergence", false);
  opt.emit_manifest = cli.get_bool("emit-manifest", false);
  opt.quiet = cli.get_bool("quiet", false);
  if (opt.emit_manifest && opt.out_dir.empty()) {
    std::fprintf(stderr, "error: --emit-manifest needs --out=DIR\n");
    return usage(argv[0]);
  }

  const raa::fuzz::FuzzResult res = raa::fuzz::run_fuzz(opt);

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::string err;
    if (!raa::report::write_json_file(res.summary, json_path, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return raa::kExitFailure;
    }
    if (!opt.quiet) std::printf("wrote %s\n", json_path.c_str());
  }
  if (!res.error.empty()) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return raa::kExitFailure;
  }
  if (opt.emit_manifest)
    std::printf("raa_fuzz: seed=%llu emitted %llu scenario(s) + "
                "fleet_manifest.json to %s\n",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(opt.budget_runs),
                opt.out_dir.c_str());
  else
    std::printf("raa_fuzz: seed=%llu budget=%llu -> %u divergence(s)\n",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(opt.budget_runs),
                res.divergences);
  return res.divergences == 0 ? raa::kExitOk : raa::kExitFailure;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return raa::kExitFailure;
}
