// raa_sim — the scenario driver: loads a declarative scenario file (or a
// recorded binary trace), runs it through the memory-hierarchy simulator,
// and emits a BENCH_results-schema JSON report.
//
//   raa_sim --scenario=FILE [--mode=M] [--seed=N] [--shards=N]
//           [--record=TRACE] [--json=PATH] [--selfcheck] [--quiet]
//   raa_sim --replay=TRACE  [--mode=M] [--shards=N] [--json=PATH]
//           [--selfcheck] [--quiet]
//
//   --mode       cache_only | hybrid | compare (compare runs both and
//                reports the hybrid speedups; replay defaults to the
//                trace's recorded mode and cannot use compare)
//   --backend    flat | banked — override the DRAM timing backend the
//                scenario (or trace) selected; banked parameters still
//                come from the scenario's "memory" object / the trace
//   --mapping    block | xor — override the banked backend's bank-hash
//                address mapping (scenario key memory.banked.mapping)
//   --seed       override the scenario's seed (deterministic re-runs
//                under a different random stream)
//   --shards     front-end lanes per System::run (metrics are identical
//                for every N — see docs/ARCHITECTURE.md)
//   --record     write the run's access streams as a self-contained
//                trace file (requires a single concrete mode)
//   --selfcheck  prove the determinism contracts for this input: metrics
//                field-identical for shards=1 vs shards=4, and for an
//                in-memory record -> replay round trip; exit 1 on any
//                mismatch
//
//   --fail-on-marker  test hook for the fuzz suite: exit 1 when the
//                scenario declares a __diverge_marker region (the
//                synthetic divergence the shrinker tests inject), so a
//                shrunken repro can be shown to reproduce end to end
//
// Exit codes (src/common/exit_codes.hpp — shared by every tool): 0 ok,
// 1 simulation/selfcheck/write failure, 2 bad usage or unparseable input,
// 3 degenerate scenario (a region claimed by zero cores — parseable, but
// simulating it silently skews the address-space layout for no workload
// effect).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/table.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "fleet/job.hpp"  // record_metrics — shared with the fleet engine
#include "fuzz/genscenario.hpp"  // kMarkerRegionName (header-only use)
#include "memsim/system.hpp"
#include "report/report.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace {

using raa::mem::HierarchyMode;
using raa::mem::Metrics;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;
using raa::scen::Scenario;
using raa::scen::TraceData;

const char* mode_name(HierarchyMode m) {
  return m == HierarchyMode::hybrid ? "hybrid" : "cache_only";
}

Metrics run_once(const SystemConfig& cfg, HierarchyMode mode, Workload& w,
                 unsigned shards) {
  System sys{cfg, mode};
  return sys.run(w, raa::mem::RunOptions{.shards = shards});
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --scenario=FILE [--mode=cache_only|hybrid|compare] "
      "[--backend=flat|banked] [--mapping=block|xor] [--seed=N] "
      "[--shards=N] [--record=TRACE] "
      "[--json=PATH] [--trace-out=PATH] [--trace-clock=sim|host|dual] "
      "[--selfcheck] [--fail-on-marker] [--quiet]\n"
      "       %s --replay=TRACE [--mode=cache_only|hybrid] "
      "[--backend=flat|banked] [--mapping=block|xor] [--shards=N] "
      "[--json=PATH] [--trace-out=PATH] [--trace-clock=sim|host|dual] "
      "[--selfcheck] "
      "[--quiet]\n",
      argv0, argv0);
  return raa::kExitUsage;
}

/// Verify the shards=1 vs shards=4 and record->replay contracts for one
/// (make_workload, mode) pair. Returns false (with a stderr diagnostic) on
/// any metrics mismatch.
template <typename MakeWorkload>
bool selfcheck_mode(const SystemConfig& cfg, HierarchyMode mode,
                    const MakeWorkload& make, bool check_replay) {
  auto w1 = make();
  TraceData trace;
  if (check_replay) raa::scen::record_workload(w1, cfg, mode, trace);
  const Metrics m1 = run_once(cfg, mode, w1, 1);

  auto w4 = make();
  const Metrics m4 = run_once(cfg, mode, w4, 4);
  if (!(m1 == m4)) {
    std::fprintf(stderr,
                 "selfcheck FAILED (%s): shards=4 metrics differ from "
                 "shards=1\n",
                 mode_name(mode));
    return false;
  }
  if (check_replay) {
    auto replay = raa::scen::make_replay_workload(
        std::make_shared<const TraceData>(std::move(trace)));
    const Metrics mr = run_once(cfg, mode, replay, 1);
    if (!(m1 == mr)) {
      std::fprintf(stderr,
                   "selfcheck FAILED (%s): trace replay metrics differ "
                   "from the recorded run\n",
                   mode_name(mode));
      return false;
    }
  }
  return true;
}

/// Write the report, then read it back and re-parse as a schema sanity
/// check (the scenario-smoke CI tests rely on the emitted file being
/// machine-readable).
bool write_and_validate_json(const raa::report::RunReport& run,
                             const std::string& path) {
  std::string error;
  if (!run.write_file(path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = raa::json::Value::parse(ss.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "error: emitted JSON does not re-parse: %s\n",
                 error.c_str());
    return false;
  }
  const auto* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != raa::report::kSchemaName) {
    std::fprintf(stderr, "error: emitted JSON lacks the \"%s\" schema "
                         "marker\n",
                 raa::report::kSchemaName);
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  const raa::Cli cli{argc, argv};
  if (cli.get_bool("help", false)) {
    usage(argv[0]);
    return raa::kExitOk;
  }

  const std::string scenario_path = cli.get_string("scenario", "");
  const std::string replay_path = cli.get_string("replay", "");
  const std::string record_path = cli.get_string("record", "");
  const std::string json_path = cli.get_string("json", "");
  const bool selfcheck = cli.get_bool("selfcheck", false);
  const bool quiet = cli.get_bool("quiet", false);
  const std::string trace_out = cli.get_string("trace-out", "");
  const auto trace_clock =
      raa::obs::parse_trace_clock(cli.get_string("trace-clock", "sim"));
  if (!trace_clock) {
    std::fprintf(stderr,
                 "error: --trace-clock must be sim, host or dual\n");
    return usage(argv[0]);
  }
  const auto shards = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("shards", 1)));

  if ((scenario_path.empty()) == (replay_path.empty())) {
    std::fprintf(stderr,
                 "error: give exactly one of --scenario or --replay\n");
    return usage(argv[0]);
  }
  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr, "error: --record cannot be combined with "
                         "--replay (the trace already exists)\n");
    return usage(argv[0]);
  }

  // Resolve the input into (name, config, modes, make_workload).
  SystemConfig cfg;
  std::vector<HierarchyMode> modes;
  std::string name;
  std::function<Workload()> make_workload;
  Scenario scenario;                       // scenario path only
  std::shared_ptr<const TraceData> trace;  // replay path only

  if (!replay_path.empty()) {
    std::string error;
    auto t = TraceData::read_file(replay_path, &error);
    if (!t) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return raa::kExitUsage;
    }
    trace = std::make_shared<const TraceData>(std::move(*t));
    cfg = trace->config;
    name = trace->name.empty() ? "replay" : trace->name;
    HierarchyMode mode = trace->mode;
    if (cli.has("mode")) {
      const std::string ms = cli.get_string("mode", "");
      if (ms == "cache_only") mode = HierarchyMode::cache_only;
      else if (ms == "hybrid") mode = HierarchyMode::hybrid;
      else {
        std::fprintf(stderr, "error: --mode for --replay must be "
                             "cache_only or hybrid, got '%s'\n",
                     ms.c_str());
        return raa::kExitUsage;
      }
    }
    modes = {mode};
    make_workload = [&] { return raa::scen::make_replay_workload(trace); };
  } else {
    std::string error;
    auto s = Scenario::load_file(scenario_path, &error);
    if (!s) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return raa::kExitUsage;
    }
    scenario = std::move(*s);
    if (cli.has("seed"))
      scenario.seed = static_cast<std::uint64_t>(
          cli.get_int("seed", static_cast<std::int64_t>(scenario.seed)));
    if (cli.has("mode")) {
      const auto m = raa::scen::scenario_mode_from(cli.get_string("mode", ""));
      if (!m) {
        std::fprintf(stderr, "error: --mode must be cache_only, hybrid or "
                             "compare\n");
        return raa::kExitUsage;
      }
      scenario.mode = *m;
    }
    // A declared region no program references is a degenerate scenario:
    // parse() accepts it (the struct is well-formed) but running it would
    // silently skew the address-space layout for no workload effect.
    // Distinct exit code so scripts can tell it from a parse error.
    if (const auto unref = scenario.first_unreferenced_region()) {
      std::fprintf(stderr,
                   "error: %s: scenario.regions[%zu]: region '%s' is "
                   "declared but referenced by no program (claimed by zero "
                   "cores)\n",
                   scenario_path.c_str(), *unref,
                   scenario.regions[*unref].name.c_str());
      return raa::kExitBadScenario;
    }
    if (cli.get_bool("fail-on-marker", false)) {
      for (const auto& r : scenario.regions)
        if (r.name.rfind(raa::fuzz::kMarkerRegionName, 0) == 0) {
          std::fprintf(stderr,
                       "marker divergence reproduced: region '%s' present "
                       "in %s\n",
                       r.name.c_str(), scenario_path.c_str());
          return raa::kExitFailure;
        }
    }
    cfg = scenario.config;
    name = scenario.name;
    modes = scenario.hierarchy_modes();
    make_workload = [&] { return scenario.instantiate(); };
    if (!record_path.empty() && modes.size() != 1) {
      std::fprintf(stderr,
                   "error: --record needs a single concrete mode; pass "
                   "--mode=cache_only or --mode=hybrid\n");
      return raa::kExitUsage;
    }
  }
  if (cli.has("backend")) {
    const std::string bs = cli.get_string("backend", "");
    if (bs == "flat") {
      cfg.memory.kind = raa::mem::MemBackendKind::flat;
    } else if (bs == "banked") {
      cfg.memory.kind = raa::mem::MemBackendKind::banked;
    } else {
      std::fprintf(stderr,
                   "error: --backend must be flat or banked, got '%s'\n",
                   bs.c_str());
      return raa::kExitUsage;
    }
  }
  if (cli.has("mapping")) {
    const std::string ms = cli.get_string("mapping", "");
    if (ms == "block") {
      cfg.memory.banked.mapping = raa::mem::BankMapping::block;
    } else if (ms == "xor") {
      cfg.memory.banked.mapping = raa::mem::BankMapping::xor_hash;
    } else {
      std::fprintf(stderr,
                   "error: --mapping must be block or xor, got '%s'\n",
                   ms.c_str());
      return raa::kExitUsage;
    }
  }

  // --- main run(s) --------------------------------------------------------
  // The tracing session brackets exactly the main runs (not the
  // selfcheck re-runs), so a sim-clock trace is a function of the
  // scenario alone — byte-identical for any --shards (TraceDeterminism).
  if (!trace_out.empty()) raa::obs::start();
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::vector<Metrics> results;
  TraceData recorded;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    Workload w = make_workload();
    if (!record_path.empty() && i == 0)
      raa::scen::record_workload(w, cfg, modes[i], recorded);
    results.push_back(run_once(cfg, modes[i], w, shards));
  }
  const double wall =
      std::chrono::duration<double>(clock::now() - t0).count();
  if (!trace_out.empty()) {
    const raa::obs::Trace obs_trace = raa::obs::stop();
    std::string error;
    if (!raa::obs::write_chrome_trace(obs_trace, trace_out, *trace_clock,
                                      &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return raa::kExitFailure;
    }
    if (!quiet)
      std::printf(
          "wrote trace %s (%zu events, %llu dropped, clock=%s)\n",
          trace_out.c_str(), obs_trace.events.size(),
          static_cast<unsigned long long>(obs_trace.dropped),
          raa::obs::trace_clock_str(*trace_clock));
  }

  if (!record_path.empty()) {
    std::string error;
    if (!recorded.write_file(record_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return raa::kExitFailure;
    }
    std::printf("recorded %s (%zu cores, %llu accesses)\n",
                record_path.c_str(), recorded.cores.size(),
                static_cast<unsigned long long>(results[0].accesses));
  }

  // --- summary ------------------------------------------------------------
  if (!quiet) {
    if (replay_path.empty())
      std::printf("scenario %s: tiles=%u seed=%llu shards=%u\n",
                  name.c_str(), cfg.tiles,
                  static_cast<unsigned long long>(scenario.seed), shards);
    else
      std::printf("replaying %s (%s): tiles=%u shards=%u\n",
                  replay_path.c_str(), name.c_str(), cfg.tiles, shards);
    raa::Table t{{"mode", "cycles", "energy pJ", "noc flit-hops",
                  "accesses"}};
    for (std::size_t i = 0; i < modes.size(); ++i)
      t.row(mode_name(modes[i]), results[i].cycles, results[i].energy_pj(),
            results[i].noc_flit_hops,
            static_cast<unsigned long>(results[i].accesses));
    t.print(std::cout);
    if (modes.size() == 2) {
      const Metrics& base = results[0];
      const Metrics& hyb = results[1];
      std::printf("hybrid speedups: time %.3fx, energy %.3fx, NoC %.3fx\n",
                  base.cycles / hyb.cycles,
                  base.energy_pj() / hyb.energy_pj(),
                  base.noc_flit_hops / hyb.noc_flit_hops);
    }
  }

  // --- selfcheck ----------------------------------------------------------
  if (selfcheck) {
    bool ok = true;
    for (const HierarchyMode mode : modes)
      ok = selfcheck_mode(cfg, mode, make_workload,
                          /*check_replay=*/replay_path.empty()) &&
           ok;
    if (!ok) return raa::kExitFailure;
    std::printf("selfcheck OK: shards=1 == shards=4%s for %zu mode%s\n",
                replay_path.empty() ? " == trace replay" : "", modes.size(),
                modes.size() == 1 ? "" : "s");
  }

  // --- machine-readable report -------------------------------------------
  if (!json_path.empty()) {
    raa::report::RunReport run{1};
    run.set_wall_seconds(wall);
    auto& b = run.benchmark(name, "scenario");
    b.set_param("tiles", std::to_string(cfg.tiles));
    b.set_param("shards", std::to_string(shards));
    b.set_param("backend", raa::mem::to_string(cfg.memory.kind));
    if (cfg.memory.kind == raa::mem::MemBackendKind::banked)
      b.set_param("mapping", raa::mem::to_string(cfg.memory.banked.mapping));
    if (replay_path.empty()) {
      b.set_param("scenario", scenario_path);
      b.set_param("mode", raa::scen::to_string(scenario.mode));
      b.set_param("seed", std::to_string(scenario.seed));
    } else {
      b.set_param("trace", replay_path);
      b.set_param("mode", mode_name(modes[0]));
    }
    for (std::size_t i = 0; i < modes.size(); ++i)
      raa::fleet::record_metrics(
          b, std::string{mode_name(modes[i])} + "/", results[i]);
    if (modes.size() == 2) {
      b.record("time_x", results[0].cycles / results[1].cycles, "x");
      b.record("energy_x", results[0].energy_pj() / results[1].energy_pj(),
               "x");
      b.record("noc_x",
               results[0].noc_flit_hops / results[1].noc_flit_hops, "x");
    }
    b.record_info("wall_seconds", wall, "s");
    // Quarantined "obs" section: only attached when a tracing session
    // ran, so untraced reports keep their exact pre-obs bytes.
    if (!trace_out.empty())
      run.set_obs(raa::obs::Registry::instance().snapshot_json());
    if (!write_and_validate_json(run, json_path))
      return raa::kExitFailure;
  }
  return raa::kExitOk;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return raa::kExitFailure;
}
