// raa_trace_check — structural validator for the Chrome trace-event JSON
// that raa_sim/raa_fleet emit via --trace-out (src/obs/trace_export.hpp,
// docs/OBSERVABILITY.md). Run it in CI after producing a trace so schema
// regressions fail the obs-smoke suite instead of silently breaking the
// Perfetto import.
//
//   raa_trace_check FILE.json [FILE2.json ...]
//
// Checks, per file:
//   - the document parses and has a "traceEvents" array;
//   - every event is an object with string "ph" in {B,E,X,i,M} and
//     numeric "pid"/"tid";
//   - non-metadata events carry a string "name", numeric "ts", and
//     complete (X) events a numeric "dur" >= 0;
//   - instant events carry the scope member "s";
//   - B/E pairs balance per (pid, tid) lane and never go negative;
//   - "otherData.schema" is "raa-trace" with a known schema_version.
//
// Exit 0 when every file validates, 1 otherwise (first error per file is
// reported; all files are checked).

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "common/exit_codes.hpp"
#include "report/json.hpp"

namespace {

using raa::json::Value;

/// Validate one trace document; fills `error` and returns false on the
/// first structural violation.
bool check_trace(const Value& doc, std::string* error) {
  const Value* other = doc.find("otherData");
  if (!other || !other->is_object()) {
    *error = "missing otherData object";
    return false;
  }
  const Value* schema = other->find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != "raa-trace") {
    *error = "otherData.schema is not \"raa-trace\"";
    return false;
  }
  const Value* version = other->find("schema_version");
  if (!version || !version->is_number() || version->as_number() != 1.0) {
    *error = "otherData.schema_version is not 1";
    return false;
  }

  const Value* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }

  // Open B-span depth per (pid, tid) lane.
  std::map<std::pair<int, int>, long> depth;
  std::size_t i = 0;
  for (const Value& e : events->as_array()) {
    const std::string at = "traceEvents[" + std::to_string(i++) + "]: ";
    if (!e.is_object()) {
      *error = at + "not an object";
      return false;
    }
    const Value* ph = e.find("ph");
    if (!ph || !ph->is_string() || ph->as_string().size() != 1) {
      *error = at + "missing one-character ph";
      return false;
    }
    const char phase = ph->as_string()[0];
    if (phase != 'B' && phase != 'E' && phase != 'X' && phase != 'i' &&
        phase != 'M') {
      *error = at + "unknown ph '" + ph->as_string() + "'";
      return false;
    }
    const Value* pid = e.find("pid");
    const Value* tid = e.find("tid");
    if (!pid || !pid->is_number() || !tid || !tid->is_number()) {
      *error = at + "missing numeric pid/tid";
      return false;
    }
    if (phase == 'M') continue;  // metadata: no ts/name requirements

    const Value* name = e.find("name");
    if (!name || !name->is_string() || name->as_string().empty()) {
      *error = at + "missing event name";
      return false;
    }
    const Value* ts = e.find("ts");
    if (!ts || !ts->is_number()) {
      *error = at + "missing numeric ts";
      return false;
    }
    if (phase == 'X') {
      const Value* dur = e.find("dur");
      if (!dur || !dur->is_number() || dur->as_number() < 0.0) {
        *error = at + "complete event without non-negative dur";
        return false;
      }
    }
    if (phase == 'i') {
      const Value* scope = e.find("s");
      if (!scope || !scope->is_string()) {
        *error = at + "instant event without scope s";
        return false;
      }
    }

    const std::pair<int, int> lane{static_cast<int>(pid->as_number()),
                                   static_cast<int>(tid->as_number())};
    if (phase == 'B') ++depth[lane];
    if (phase == 'E' && --depth[lane] < 0) {
      *error = at + "E without matching B on pid " +
               std::to_string(lane.first) + " tid " +
               std::to_string(lane.second);
      return false;
    }
  }
  for (const auto& [lane, d] : depth) {
    if (d != 0) {
      *error = std::to_string(d) + " unclosed B span(s) on pid " +
               std::to_string(lane.first) + " tid " +
               std::to_string(lane.second);
      return false;
    }
  }
  return true;
}

bool check_file(const char* path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "raa_trace_check: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const std::optional<Value> doc = Value::parse(buf.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "raa_trace_check: %s: %s\n", path, error.c_str());
    return false;
  }
  if (!check_trace(*doc, &error)) {
    std::fprintf(stderr, "raa_trace_check: %s: %s\n", path, error.c_str());
    return false;
  }
  const Value* events = doc->find("traceEvents");
  std::printf("%s: ok (%zu events)\n", path, events->as_array().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE.json [FILE2.json ...]\n", argv[0]);
    return raa::kExitUsage;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = check_file(argv[i]) && ok;
  return ok ? raa::kExitOk : raa::kExitFailure;
}
