// google-benchmark micro-benchmarks of the substrates themselves: task
// spawn/dependence-tracking throughput of the runtime, simulated-access
// throughput of the memory-hierarchy model, vector-instruction throughput
// of the VPU model, and SpMV of the solver.
#include <benchmark/benchmark.h>

#include "memsim/system.hpp"
#include "runtime/runtime.hpp"
#include "solver/csr.hpp"
#include "vector/vpu.hpp"

namespace {

void BM_RuntimeSpawnIndependent(benchmark::State& state) {
  for (auto _ : state) {
    raa::rt::Runtime rt;  // serial: measures spawn + bookkeeping cost
    for (int i = 0; i < state.range(0); ++i) rt.spawn([] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuntimeSpawnIndependent)->Arg(1024);

void BM_RuntimeSpawnWithDeps(benchmark::State& state) {
  std::vector<double> slots(16);
  for (auto _ : state) {
    raa::rt::Runtime rt;
    for (int i = 0; i < state.range(0); ++i)
      rt.spawn({raa::rt::inout(slots[static_cast<std::size_t>(i) % 16])},
               [] {});
    rt.taskwait();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuntimeSpawnWithDeps)->Arg(1024);

void BM_MemsimAccessThroughput(benchmark::State& state) {
  // One strided stream through the cache side of a 16-tile system.
  raa::mem::SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = cfg.mesh_y = 4;
  struct Stream final : raa::mem::CoreProgram {
    std::uint64_t i = 0, n;
    explicit Stream(std::uint64_t count) : n(count) {}
    bool next(raa::mem::Access& out) override {
      if (i >= n) return false;
      out = raa::mem::Access{(1 << 20) + i * 8, false,
                             raa::mem::RefClass::random_noalias, 0};
      ++i;
      return true;
    }
  };
  const auto accesses = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    raa::mem::Workload w;
    w.name = "micro";
    w.programs.push_back(std::make_unique<Stream>(accesses));
    for (unsigned c = 1; c < cfg.tiles; ++c)
      w.programs.push_back(std::make_unique<Stream>(0));
    raa::mem::System sys{cfg, raa::mem::HierarchyMode::cache_only};
    benchmark::DoNotOptimize(sys.run(w));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_MemsimAccessThroughput)->Arg(1 << 14);

void BM_VpuGatherInstruction(benchmark::State& state) {
  raa::vec::Vpu vpu{raa::vec::VpuConfig{.mvl = 64, .lanes = 4}};
  std::vector<raa::vec::Elem> mem(4096);
  raa::vec::Vreg idx(64);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = (i * 67) % 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vpu.vgather(mem.data(), idx));
    vpu.sync();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VpuGatherInstruction);

void BM_VpuVpiInstruction(benchmark::State& state) {
  raa::vec::Vpu vpu{raa::vec::VpuConfig{.mvl = 64, .lanes = 4}};
  raa::vec::Vreg in(64);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = i % 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vpu.vpi(in));
    vpu.sync();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VpuVpiInstruction);

void BM_SolverSpmv(benchmark::State& state) {
  const auto a = raa::solver::laplacian_2d(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)));
  std::vector<double> x(a.n, 1.0), y(a.n);
  for (auto _ : state) {
    raa::solver::spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SolverSpmv)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
