// Micro-benchmarks of the substrates themselves: task spawn/dependence-
// tracking throughput of the runtime, simulated-access throughput of the
// memory-hierarchy model, vector-instruction throughput of the VPU model,
// and SpMV of the solver.
//
// Self-timed: a tiny doubling-calibration loop replaces the former Google
// Benchmark dependency, so this binary always builds (ROADMAP open item).
//
// Flags:
//   --filter=SUB     run only benchmarks whose name contains SUB
//   --min-time=S     per-benchmark target measurement time (default 0.25)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "memsim/system.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "solver/csr.hpp"
#include "vector/vpu.hpp"

namespace {

/// Keep `v` observable so the optimizer cannot delete the computation.
template <typename T>
inline void do_not_optimize(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

struct Result {
  std::string name;
  std::uint64_t iters = 0;
  double secs = 0.0;
  double items_per_iter = 0.0;

  double ns_per_iter() const { return secs / static_cast<double>(iters) * 1e9; }
  double items_per_sec() const {
    return items_per_iter * static_cast<double>(iters) / secs;
  }
};

/// Run `body` in doubling batches until the measured time reaches
/// `min_time` seconds, then report the final batch.
template <typename Fn>
Result run_case(const std::string& name, double items_per_iter, double min_time,
                Fn&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up (first-touch allocations, caches)
  std::uint64_t iters = 1;
  double secs = 0.0;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) body();
    secs = std::chrono::duration<double>(clock::now() - t0).count();
    if (secs >= min_time || iters >= (std::uint64_t{1} << 40)) break;
    iters *= 2;
  }
  return Result{name, iters, secs, items_per_iter};
}

}  // namespace

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  const std::string filter = cli.get_string("filter", "");
  const double min_time = cli.get_double("min-time", 0.25);

  std::vector<Result> results;
  const auto wants = [&](const char* name) {
    return filter.empty() || std::string{name}.find(filter) != std::string::npos;
  };

  if (wants("BM_RuntimeSpawnIndependent")) {
    constexpr int kTasks = 1024;
    results.push_back(run_case(
        "BM_RuntimeSpawnIndependent/1024", kTasks, min_time, [] {
          raa::rt::Runtime rt;  // serial: measures spawn + bookkeeping cost
          for (int i = 0; i < kTasks; ++i) rt.spawn([] {});
          rt.taskwait();
        }));
  }

  if (wants("BM_RuntimeSpawnWithDeps")) {
    constexpr int kTasks = 1024;
    std::vector<double> slots(16);
    results.push_back(run_case(
        "BM_RuntimeSpawnWithDeps/1024", kTasks, min_time, [&] {
          raa::rt::Runtime rt;
          for (int i = 0; i < kTasks; ++i)
            rt.spawn({raa::rt::inout(slots[static_cast<std::size_t>(i) % 16])},
                     [] {});
          rt.taskwait();
        }));
  }

  // --- micro_steal_throughput -------------------------------------------
  // Host throughput of the work-stealing executor: wall-clock only,
  // informational — simulated metrics never depend on these numbers.

  if (wants("BM_StealSpawnStorm")) {
    // A storm of independent tasks spawned from the main thread: measures
    // injection, wakeup, deque churn and steal traffic across policies.
    constexpr int kTasks = 2048;
    for (const auto policy : {raa::rt::SchedulerPolicy::work_stealing,
                              raa::rt::SchedulerPolicy::fifo}) {
      for (const unsigned workers : {2u, 4u}) {
        const std::string name = std::string{"BM_StealSpawnStorm/"} +
                                 to_string(policy) + "/w" +
                                 std::to_string(workers);
        results.push_back(run_case(name, kTasks, min_time, [=] {
          raa::rt::Runtime rt{{.num_workers = workers, .policy = policy}};
          std::atomic<std::uint64_t> sink{0};
          for (int i = 0; i < kTasks; ++i)
            rt.spawn([&] { sink.fetch_add(1, std::memory_order_relaxed); });
          rt.taskwait();
          do_not_optimize(sink);
        }));
      }
    }
  }

  if (wants("BM_StealNestedFib")) {
    // Recursive nested spawn (silent_async + corun): owner-deque pushes
    // and cooperative joins, the divide-and-conquer shape.
    constexpr unsigned kN = 15;  // ~1970 tasks per iteration
    std::function<std::uint64_t(raa::rt::Runtime&, unsigned)> fib =
        [&fib](raa::rt::Runtime& rt, unsigned n) -> std::uint64_t {
      if (n < 2) return n;
      std::uint64_t a = 0, b = 0;
      rt.silent_async([&] { a = fib(rt, n - 1); });
      rt.silent_async([&] { b = fib(rt, n - 2); });
      rt.corun();
      return a + b;
    };
    for (const unsigned workers : {0u, 4u}) {
      const std::string name =
          "BM_StealNestedFib/15/w" + std::to_string(workers);
      results.push_back(run_case(name, 1973, min_time, [&, workers] {
        raa::rt::Runtime rt{{.num_workers = workers}};
        std::uint64_t r = 0;
        rt.spawn([&] { r = fib(rt, kN); });
        rt.taskwait();
        do_not_optimize(r);
      }));
    }
  }

  if (wants("BM_MemsimAccessThroughput")) {
    // One strided stream through the cache side of a 16-tile system.
    constexpr std::uint64_t kAccesses = 1 << 14;
    raa::mem::SystemConfig cfg;
    cfg.tiles = 16;
    cfg.mesh_x = cfg.mesh_y = 4;
    struct Stream final : raa::mem::CoreProgram {
      std::uint64_t i = 0, n;
      explicit Stream(std::uint64_t count) : n(count) {}
      bool next(raa::mem::Access& out) override {
        if (i >= n) return false;
        out = raa::mem::Access{(1 << 20) + i * 8, false,
                               raa::mem::RefClass::random_noalias, 0};
        ++i;
        return true;
      }
    };
    results.push_back(run_case(
        "BM_MemsimAccessThroughput/16384", static_cast<double>(kAccesses),
        min_time, [&] {
          raa::mem::Workload w;
          w.name = "micro";
          w.programs.push_back(std::make_unique<Stream>(kAccesses));
          for (unsigned c = 1; c < cfg.tiles; ++c)
            w.programs.push_back(std::make_unique<Stream>(0));
          raa::mem::System sys{cfg, raa::mem::HierarchyMode::cache_only};
          do_not_optimize(sys.run(w));
        }));
  }

  // --- obs layer overhead ------------------------------------------------
  // The tracing macros' cost in each of their three states. "Disabled"
  // (no session) is the one the zero-overhead gate pins: a single relaxed
  // load + untaken branch, so its ns/iter must sit at the measurement
  // floor next to BM_ObsCounterAdd-style raw atomics.

  if (wants("BM_ObsEmitDisabled")) {
    constexpr int kEvents = 1024;
    results.push_back(run_case(
        "BM_ObsEmitDisabled/1024", kEvents, min_time, [] {
          for (int i = 0; i < kEvents; ++i)
            RAA_OBS_HOST_EVENT(app, mark, instant,
                               static_cast<std::uint64_t>(i), 0u);
        }));
  }

  if (wants("BM_ObsEmitEnabled")) {
    constexpr int kEvents = 1024;
    raa::obs::start();
    results.push_back(run_case(
        "BM_ObsEmitEnabled/1024", kEvents, min_time, [] {
          for (int i = 0; i < kEvents; ++i)
            RAA_OBS_HOST_EVENT(app, mark, instant,
                               static_cast<std::uint64_t>(i), 0u);
        }));
    do_not_optimize(raa::obs::stop());
  }

  if (wants("BM_ObsCounterAdd")) {
    constexpr int kOps = 1024;
    raa::obs::Counter& c =
        raa::obs::Registry::instance().counter("bench.obs_counter");
    results.push_back(run_case("BM_ObsCounterAdd/1024", kOps, min_time, [&] {
      for (int i = 0; i < kOps; ++i) c.add();
      do_not_optimize(c.get());
    }));
  }

  if (wants("BM_VpuGatherInstruction")) {
    raa::vec::Vpu vpu{raa::vec::VpuConfig{.mvl = 64, .lanes = 4}};
    std::vector<raa::vec::Elem> mem(4096);
    raa::vec::Vreg idx(64);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = (i * 67) % 4096;
    results.push_back(
        run_case("BM_VpuGatherInstruction", 64, min_time, [&] {
          do_not_optimize(vpu.vgather(mem.data(), idx));
          vpu.sync();
        }));
  }

  if (wants("BM_VpuVpiInstruction")) {
    raa::vec::Vpu vpu{raa::vec::VpuConfig{.mvl = 64, .lanes = 4}};
    raa::vec::Vreg in(64);
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = i % 7;
    results.push_back(run_case("BM_VpuVpiInstruction", 64, min_time, [&] {
      do_not_optimize(vpu.vpi(in));
      vpu.sync();
    }));
  }

  if (wants("BM_SolverSpmv")) {
    const auto a = raa::solver::laplacian_2d(128, 128);
    std::vector<double> x(a.n, 1.0), y(a.n);
    results.push_back(run_case(
        "BM_SolverSpmv/128", static_cast<double>(a.nnz()), min_time, [&] {
          raa::solver::spmv(a, x, y);
          do_not_optimize(y.data());
        }));
  }

  if (results.empty()) {
    std::fprintf(stderr, "no benchmark matches --filter=%s\n",
                 filter.c_str());
    return 2;
  }

  std::printf("%-36s %12s %14s %14s\n", "benchmark", "iterations",
              "ns/iter", "items/s");
  for (const auto& r : results)
    std::printf("%-36s %12llu %14.1f %14.4g\n", r.name.c_str(),
                static_cast<unsigned long long>(r.iters), r.ns_per_iter(),
                r.items_per_sec());
  return 0;
}
