// Figure 2 / §3.1 — criticality-aware DVFS through the Runtime Support
// Unit: performance and EDP improvements over static scheduling on a
// 32-core machine, plus the scaling of the reconfiguration mechanism
// (software-only locks vs the RSU) with the core count.
//
// Paper reference values: +6.6% performance and +20.0% EDP over static
// scheduling on a simulated 32-core processor; the software-only
// reconfiguration cost "rises with the number of cores".
//
// Flags: --cores=32 --task-cycles=1000000 (plus the harness flags, see
// bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "rsu/rsu.hpp"
#include "runtime/graph.hpp"

RAA_BENCHMARK("fig2_criticality_rsu", "§3.1 Figure 2") {
  const raa::Cli& cli = ctx.cli;
  const auto cores = static_cast<unsigned>(cli.get_int("cores", 32));
  const double c = cli.get_double("task-cycles", 1.0e6);  // ~500us tasks
  ctx.report.set_param("cores", std::to_string(cores));

  using raa::tdg::Graph;
  using raa::tdg::Synthetic;
  struct Workload {
    const char* name;
    Graph graph;
  };
  const std::vector<Workload> workloads = {
      {"cholesky-8", Synthetic::cholesky(8, c)},
      {"cholesky-10", Synthetic::cholesky(10, c)},
      {"pipeline-64x8", Synthetic::pipeline(64, 8, c)},
      {"layered-narrow", Synthetic::layered_random(40, 8, 2, c / 4, c, 7)},
      {"layered-medium", Synthetic::layered_random(30, 12, 3, c / 4, c, 9)},
      {"chain-100", Synthetic::chain(100, c)},
  };

  if (ctx.printing())
    std::printf(
        "Sec. 3.1: criticality-aware DVFS vs static scheduling, %u cores "
        "(paper: +6.6%% perf, +20.0%% EDP)\n\n",
        cores);

  raa::sim::MachineConfig machine{.cores = cores};
  raa::Table table{{"workload", "parallelism", "perf RSU", "EDP RSU",
                    "perf SW-DVFS", "EDP SW-DVFS"}};
  std::vector<double> perf, edp;
  for (const auto& w : workloads) {
    const auto study = raa::rsu::run_criticality_study(w.graph, machine);
    perf.push_back(study.perf_improvement_rsu());
    edp.push_back(study.edp_improvement_rsu());
    ctx.report.record(std::string{"perf_improvement/"} + w.name,
                      study.perf_improvement_rsu(), "frac");
    ctx.report.record(std::string{"edp_improvement/"} + w.name,
                      study.edp_improvement_rsu(), "frac");
    const auto pct = [](double x) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * x);
      return std::string{buf};
    };
    table.row(w.name, w.graph.parallelism(),
              pct(study.perf_improvement_rsu()),
              pct(study.edp_improvement_rsu()),
              pct(study.perf_improvement_sw()),
              pct(study.edp_improvement_sw()));
  }
  ctx.report.record("perf_improvement/avg", raa::mean(perf), "frac", 0.066);
  ctx.report.record("edp_improvement/avg", raa::mean(edp), "frac", 0.20);
  if (ctx.printing()) {
    table.print(std::cout);
    std::printf(
        "\nmeasured avg: perf %+.1f%%, EDP %+.1f%%  (paper: +6.6%% / "
        "+20.0%%)\n\n",
        100.0 * raa::mean(perf), 100.0 * raa::mean(edp));
  }

  // --- mechanism scaling: per-switch cost vs core count ---
  if (ctx.printing())
    std::printf("reconfiguration mechanism cost vs core count\n");
  raa::Table scaling{{"cores", "SW stall/switch (ns)", "RSU stall/switch (ns)"}};
  for (const unsigned p : {8u, 16u, 32u, 64u, 128u}) {
    // A wide fork-join forces simultaneous reconfiguration on all cores.
    const Graph g = Synthetic::fork_join(p, 2.0 * c, c / 8);
    raa::sim::MachineConfig m{.cores = p};
    raa::rsu::CriticalityGovernor sw{
        {.slack_fraction = 0.0, .reconfig = raa::rsu::software_dvfs()}};
    (void)raa::sim::replay(g, m, raa::sim::priority_bottom_level(), &sw);
    raa::rsu::CriticalityGovernor hw{
        {.slack_fraction = 0.0, .reconfig = raa::rsu::rsu_hardware()}};
    (void)raa::sim::replay(g, m, raa::sim::priority_bottom_level(), &hw);
    const auto per = [](const raa::rsu::CriticalityGovernor& gov) {
      return gov.reconfig_count() > 0
                 ? gov.reconfig_stall_ns() /
                       static_cast<double>(gov.reconfig_count())
                 : 0.0;
    };
    const std::string suffix = "/cores" + std::to_string(p);
    ctx.report.record("sw_stall_per_switch" + suffix, per(sw), "ns");
    ctx.report.record("rsu_stall_per_switch" + suffix, per(hw), "ns");
    scaling.row(static_cast<int>(p), per(sw), per(hw));
  }
  if (ctx.printing()) {
    scaling.print(std::cout);
    std::printf(
        "\nSW-only cost grows with cores (global-lock serialisation); the RSU "
        "stays flat — the Figure 2 motivation.\n");
  }
}
