// Ablation — §4 checkpoint interval: overhead of the rollback scheme as a
// function of the checkpoint period, against the (interval-free) FEIR.
//
// Flags: --grid=192 --scale=1 (grid multiplier for larger scenarios; plus
// the harness flags, see bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "solver/cg.hpp"

RAA_BENCHMARK("ablation_ckpt_interval", "§4 checkpoint-interval ablation") {
  const raa::Cli& cli = ctx.cli;
  const auto scale =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("scale", 1)));
  const auto grid =
      static_cast<std::size_t>(cli.get_int("grid", 192)) * scale;
  ctx.report.set_param("grid", std::to_string(grid));
  ctx.report.set_param("scale", std::to_string(scale));
  const auto a = raa::solver::laplacian_2d(grid, grid);
  const std::vector<double> b(a.n, 1.0);

  std::vector<double> x;
  const auto ideal = raa::solver::solve_cg(
      a, b, x, raa::solver::CgOptions{.rel_tolerance = 1e-8});
  const auto inject_at = ideal.iterations / 2;

  const auto with = [&](raa::solver::Recovery rec, std::size_t interval) {
    raa::solver::CgOptions opt;
    opt.rel_tolerance = 1e-8;
    opt.recovery = rec;
    opt.checkpoint_interval = interval;
    opt.fault =
        raa::solver::FaultSpec{.enabled = true, .iteration = inject_at};
    std::vector<double> x2;
    return raa::solver::solve_cg(a, b, x2, opt);
  };

  if (ctx.printing())
    std::printf(
        "Ablation: checkpoint interval (2-D Poisson %zux%zu, DUE at "
        "iteration %zu of %zu)\n\n",
        grid, grid, inject_at, ideal.iterations);
  raa::Table t{{"mechanism", "interval", "time overhead", "iterations"}};
  const auto pct = [&](double time_s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.2f%%",
                  100.0 * (time_s / ideal.time_s - 1.0));
    return std::string{buf};
  };
  for (const std::size_t interval : {10u, 50u, 100u, 500u, 1000u}) {
    const auto r = with(raa::solver::Recovery::checkpoint, interval);
    ctx.report.record(
        "ckpt_overhead_frac/interval" + std::to_string(interval),
        r.time_s / ideal.time_s - 1.0, "frac");
    t.row("checkpoint", static_cast<long>(interval), pct(r.time_s),
          static_cast<long>(r.iterations));
  }
  const auto feir = with(raa::solver::Recovery::feir, 1000);
  ctx.report.record("overhead_frac/feir", feir.time_s / ideal.time_s - 1.0,
                    "frac");
  t.row("feir", "-", pct(feir.time_s), static_cast<long>(feir.iterations));
  const auto afeir = with(raa::solver::Recovery::afeir, 1000);
  ctx.report.record("overhead_frac/afeir",
                    afeir.time_s / ideal.time_s - 1.0, "frac");
  t.row("afeir", "-", pct(afeir.time_s),
        static_cast<long>(afeir.iterations));
  if (ctx.printing()) {
    t.print(std::cout);
    std::printf(
        "\nShort intervals pay constant checkpoint copies, long intervals "
        "pay rollback re-execution; FEIR avoids the trade-off entirely.\n");
  }
}
