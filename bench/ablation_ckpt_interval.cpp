// Ablation — §4 checkpoint interval: overhead of the rollback scheme as a
// function of the checkpoint period, against the (interval-free) FEIR.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "solver/cg.hpp"

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  const auto grid = static_cast<std::size_t>(cli.get_int("grid", 192));
  const auto a = raa::solver::laplacian_2d(grid, grid);
  const std::vector<double> b(a.n, 1.0);

  std::vector<double> x;
  const auto ideal = raa::solver::solve_cg(
      a, b, x, raa::solver::CgOptions{.rel_tolerance = 1e-8});
  const auto inject_at = ideal.iterations / 2;

  const auto with = [&](raa::solver::Recovery rec, std::size_t interval) {
    raa::solver::CgOptions opt;
    opt.rel_tolerance = 1e-8;
    opt.recovery = rec;
    opt.checkpoint_interval = interval;
    opt.fault =
        raa::solver::FaultSpec{.enabled = true, .iteration = inject_at};
    std::vector<double> x2;
    return raa::solver::solve_cg(a, b, x2, opt);
  };

  std::printf(
      "Ablation: checkpoint interval (2-D Poisson %zux%zu, DUE at iteration "
      "%zu of %zu)\n\n",
      grid, grid, inject_at, ideal.iterations);
  raa::Table t{{"mechanism", "interval", "time overhead", "iterations"}};
  const auto pct = [&](double time_s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.2f%%",
                  100.0 * (time_s / ideal.time_s - 1.0));
    return std::string{buf};
  };
  for (const std::size_t interval : {10u, 50u, 100u, 500u, 1000u}) {
    const auto r = with(raa::solver::Recovery::checkpoint, interval);
    t.row("checkpoint", static_cast<long>(interval), pct(r.time_s),
          static_cast<long>(r.iterations));
  }
  const auto feir = with(raa::solver::Recovery::feir, 1000);
  t.row("feir", "-", pct(feir.time_s), static_cast<long>(feir.iterations));
  const auto afeir = with(raa::solver::Recovery::afeir, 1000);
  t.row("afeir", "-", pct(afeir.time_s),
        static_cast<long>(afeir.iterations));
  t.print(std::cout);
  std::printf(
      "\nShort intervals pay constant checkpoint copies, long intervals pay "
      "rollback re-execution; FEIR avoids the trade-off entirely.\n");
  return 0;
}
