#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace raa::bench {

std::vector<Spec>& registry() {
  static std::vector<Spec> specs;
  return specs;
}

int register_bench(Spec spec) {
  registry().push_back(std::move(spec));
  return 0;
}

int harness_main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};

  std::vector<Spec> specs = registry();
  std::sort(specs.begin(), specs.end(),
            [](const Spec& a, const Spec& b) { return a.name < b.name; });

  if (cli.get_bool("list", false)) {
    for (const auto& s : specs) std::printf("%s\n", s.name.c_str());
    return 0;
  }
  if (cli.get_bool("help", false)) {
    std::printf(
        "usage: %s [--reps=N] [--json=PATH] [--only=NAME] [--list] "
        "[bench-specific flags]\n",
        argc > 0 ? argv[0] : "bench");
    return 0;
  }

  const std::string only = cli.get_string("only", "");
  if (!only.empty()) {
    std::erase_if(specs, [&](const Spec& s) { return s.name != only; });
    if (specs.empty()) {
      std::fprintf(stderr, "error: no registered benchmark named '%s'; "
                           "use --list to see the choices\n",
                   only.c_str());
      return 2;
    }
  }

  const int reps =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("reps", 1)));
  report::RunReport run{reps};
  using clock = std::chrono::steady_clock;
  const auto run_start = clock::now();
  for (const auto& spec : specs) {
    if (specs.size() > 1)
      std::printf("==== %s ====\n", spec.name.c_str());
    report::BenchReport& bench_report =
        run.benchmark(spec.name, spec.paper_ref);
    double bench_secs = 0.0;
    double bench_accesses = 0.0;
    double bench_tasks = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      Context ctx{cli, bench_report, rep, reps};
      const auto t0 = clock::now();
      spec.fn(ctx);
      const double secs = std::chrono::duration<double>(clock::now() - t0)
                              .count();
      // Host wall-clock capture: informational metrics, serialized for the
      // perf trajectory but exempt from the baseline comparison gate.
      bench_report.record_info("wall_seconds", secs, "s");
      if (secs > 0.0 && ctx.sim_accesses > 0.0)
        bench_report.record_info("accesses_per_second",
                                 ctx.sim_accesses / secs, "1/s");
      if (secs > 0.0 && ctx.sim_tasks > 0.0)
        bench_report.record_info("tasks_per_second", ctx.sim_tasks / secs,
                                 "1/s");
      bench_secs += secs;
      bench_accesses += ctx.sim_accesses;
      bench_tasks += ctx.sim_tasks;
    }
    if (bench_secs > 0.0) {
      std::printf("[wall] %s: %.2f s", spec.name.c_str(), bench_secs);
      if (bench_accesses > 0.0)
        std::printf(", %.3g sim-accesses/s", bench_accesses / bench_secs);
      if (bench_tasks > 0.0)
        std::printf(", %.3g sim-tasks/s", bench_tasks / bench_secs);
      std::printf("\n");
    }
    if (specs.size() > 1) std::printf("\n");
  }
  run.set_wall_seconds(
      std::chrono::duration<double>(clock::now() - run_start).count());

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::string error;
    if (!run.write_file(json_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu benchmark%s, reps=%d)\n", json_path.c_str(),
                run.benchmarks().size(),
                run.benchmarks().size() == 1 ? "" : "s", reps);
  }
  return 0;
}

}  // namespace raa::bench

int main(int argc, char** argv) {
  return raa::bench::harness_main(argc, argv);
}
