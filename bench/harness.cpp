#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/exit_codes.hpp"
#include "exec/parallel.hpp"

namespace raa::bench {

namespace {

using clock = std::chrono::steady_clock;

/// One scenario unit: a single repetition of a single benchmark, with a
/// private report so units can run concurrently and merge in order.
struct UnitResult {
  report::BenchReport report;
  double secs = 0.0;
  double accesses = 0.0;
  double tasks = 0.0;
};

UnitResult run_unit(const Spec& spec, const raa::Cli& cli, int rep, int reps,
                    exec::Pool* pool, bool quiet) {
  UnitResult unit{report::BenchReport{spec.name, spec.paper_ref}};
  Context ctx{cli, unit.report, rep, reps};
  ctx.pool = pool;
  ctx.quiet = quiet;
  if (cli.has("seed")) {
    ctx.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0));
    // Surface the override in the report: results under a non-default
    // seed are a different experiment than the checked-in baseline.
    unit.report.set_param("seed", std::to_string(*ctx.seed));
  }
  const auto t0 = clock::now();
  spec.fn(ctx);
  unit.secs = std::chrono::duration<double>(clock::now() - t0).count();
  // Host wall-clock capture: informational metrics, serialized for the
  // perf trajectory but exempt from the baseline comparison gate.
  unit.report.record_info("wall_seconds", unit.secs, "s");
  if (unit.secs > 0.0 && ctx.sim_accesses > 0.0)
    unit.report.record_info("accesses_per_second",
                            ctx.sim_accesses / unit.secs, "1/s");
  if (unit.secs > 0.0 && ctx.sim_tasks > 0.0)
    unit.report.record_info("tasks_per_second", ctx.sim_tasks / unit.secs,
                            "1/s");
  unit.accesses = ctx.sim_accesses;
  unit.tasks = ctx.sim_tasks;
  return unit;
}

void print_bench_wall(const Spec& spec, double secs, double accesses,
                      double tasks) {
  if (secs <= 0.0) return;
  std::printf("[wall] %s: %.2f s", spec.name.c_str(), secs);
  if (accesses > 0.0) std::printf(", %.3g sim-accesses/s", accesses / secs);
  if (tasks > 0.0) std::printf(", %.3g sim-tasks/s", tasks / secs);
  std::printf("\n");
}

}  // namespace

std::vector<Spec>& registry() {
  static std::vector<Spec> specs;
  return specs;
}

int register_bench(Spec spec) {
  registry().push_back(std::move(spec));
  return 0;
}

int harness_main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};

  std::vector<Spec> specs = registry();
  std::sort(specs.begin(), specs.end(),
            [](const Spec& a, const Spec& b) { return a.name < b.name; });

  if (cli.get_bool("list", false)) {
    for (const auto& s : specs) std::printf("%s\n", s.name.c_str());
    return raa::kExitOk;
  }
  if (cli.get_bool("help", false)) {
    std::printf(
        "usage: %s [--reps=N] [--jobs=N] [--seed=N] [--json=PATH] "
        "[--only=NAME] [--list] [bench-specific flags]\n",
        argc > 0 ? argv[0] : "bench");
    return raa::kExitOk;
  }

  const std::string only = cli.get_string("only", "");
  if (!only.empty()) {
    std::erase_if(specs, [&](const Spec& s) { return s.name != only; });
    if (specs.empty()) {
      std::fprintf(stderr, "error: no registered benchmark named '%s'; "
                           "use --list to see the choices\n",
                   only.c_str());
      return raa::kExitUsage;
    }
  }

  const int reps =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("reps", 1)));
  const int jobs =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("jobs", 1)));
  report::RunReport run{reps};
  const auto run_start = clock::now();

  // Scenario units: every (benchmark, repetition) pair, spec-major. Unit
  // reports merge into the run in exactly this order for any --jobs, so
  // the serialized JSON structure — and every gated metric value — is
  // independent of how units were scheduled.
  struct Unit {
    const Spec* spec;
    int rep;
  };
  std::vector<Unit> units;
  units.reserve(specs.size() * static_cast<std::size_t>(reps));
  for (const auto& spec : specs)
    for (int rep = 0; rep < reps; ++rep) units.push_back({&spec, rep});

  // Per-spec wall totals, accumulated at merge time.
  std::vector<double> spec_secs(specs.size(), 0.0);
  std::vector<double> spec_accesses(specs.size(), 0.0);
  std::vector<double> spec_tasks(specs.size(), 0.0);
  const auto merge_unit = [&](std::size_t index, UnitResult&& unit) {
    const Unit& u = units[index];
    const std::size_t s = static_cast<std::size_t>(u.spec - specs.data());
    run.benchmark(u.spec->name, u.spec->paper_ref).absorb(unit.report);
    spec_secs[s] += unit.secs;
    spec_accesses[s] += unit.accesses;
    spec_tasks[s] += unit.tasks;
    if (u.rep == reps - 1 && jobs > 1) {
      // Parallel runs suppress the in-body tables; the per-benchmark wall
      // summary still prints, in registration order, as specs complete.
      if (specs.size() > 1) std::printf("==== %s ====\n", u.spec->name.c_str());
      print_bench_wall(*u.spec, spec_secs[s], spec_accesses[s], spec_tasks[s]);
    }
  };

  if (jobs == 1) {
    for (std::size_t i = 0; i < units.size(); ++i) {
      const Unit& u = units[i];
      if (u.rep == 0 && specs.size() > 1)
        std::printf("==== %s ====\n", u.spec->name.c_str());
      merge_unit(i, run_unit(*u.spec, cli, u.rep, reps, nullptr, false));
      if (u.rep == reps - 1) {
        const std::size_t s =
            static_cast<std::size_t>(u.spec - specs.data());
        print_bench_wall(*u.spec, spec_secs[s], spec_accesses[s],
                         spec_tasks[s]);
        if (specs.size() > 1) std::printf("\n");
      }
    }
  } else {
    // jobs - 1 workers (no more than there are units to run); the
    // merging thread is the remaining lane (it help-runs units while
    // waiting for the next in-order result).
    exec::Pool pool{static_cast<unsigned>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs - 1), units.size()))};
    exec::ordered_reduce<UnitResult>(
        pool, units.size(),
        [&](std::size_t i) {
          const Unit& u = units[i];
          return run_unit(*u.spec, cli, u.rep, reps, &pool, /*quiet=*/true);
        },
        merge_unit);
  }
  run.set_wall_seconds(
      std::chrono::duration<double>(clock::now() - run_start).count());

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::string error;
    if (!run.write_file(json_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return raa::kExitFailure;
    }
    std::printf("wrote %s (%zu benchmark%s, reps=%d)\n", json_path.c_str(),
                run.benchmarks().size(),
                run.benchmarks().size() == 1 ? "" : "s", reps);
  }
  return raa::kExitOk;
}

}  // namespace raa::bench

int main(int argc, char** argv) {
  return raa::bench::harness_main(argc, argv);
}
