#include "harness.hpp"

#include <algorithm>
#include <cstdio>

namespace raa::bench {

std::vector<Spec>& registry() {
  static std::vector<Spec> specs;
  return specs;
}

int register_bench(Spec spec) {
  registry().push_back(std::move(spec));
  return 0;
}

int harness_main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};

  std::vector<Spec> specs = registry();
  std::sort(specs.begin(), specs.end(),
            [](const Spec& a, const Spec& b) { return a.name < b.name; });

  if (cli.get_bool("list", false)) {
    for (const auto& s : specs) std::printf("%s\n", s.name.c_str());
    return 0;
  }
  if (cli.get_bool("help", false)) {
    std::printf(
        "usage: %s [--reps=N] [--json=PATH] [--only=NAME] [--list] "
        "[bench-specific flags]\n",
        argc > 0 ? argv[0] : "bench");
    return 0;
  }

  const std::string only = cli.get_string("only", "");
  if (!only.empty()) {
    std::erase_if(specs, [&](const Spec& s) { return s.name != only; });
    if (specs.empty()) {
      std::fprintf(stderr, "error: no registered benchmark named '%s'; "
                           "use --list to see the choices\n",
                   only.c_str());
      return 2;
    }
  }

  const int reps =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("reps", 1)));
  report::RunReport run{reps};
  for (const auto& spec : specs) {
    if (specs.size() > 1)
      std::printf("==== %s ====\n", spec.name.c_str());
    report::BenchReport& bench_report =
        run.benchmark(spec.name, spec.paper_ref);
    for (int rep = 0; rep < reps; ++rep) {
      Context ctx{cli, bench_report, rep, reps};
      spec.fn(ctx);
    }
    if (specs.size() > 1) std::printf("\n");
  }

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::string error;
    if (!run.write_file(json_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu benchmark%s, reps=%d)\n", json_path.c_str(),
                run.benchmarks().size(),
                run.benchmarks().size() == 1 ? "" : "s", reps);
  }
  return 0;
}

}  // namespace raa::bench

int main(int argc, char** argv) {
  return raa::bench::harness_main(argc, argv);
}
