// Ablation — §3.2's "both serial and parallel variants" of the VPI/VLU
// hardware: VSR sort cycles with each variant across lane counts.
//
// Flags: --n=65536 --scale=1 (element-count multiplier for larger
// scenarios; plus the harness flags, see bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "sort/sorts.hpp"

RAA_BENCHMARK("ablation_vpi_variant", "§3.2 VPI/VLU-variant ablation") {
  const raa::Cli& cli = ctx.cli;
  const auto scale = std::max<std::size_t>(
      1, static_cast<std::size_t>(cli.get_int("scale", 1)));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 65536)) * scale;
  ctx.report.set_param("n", std::to_string(n));
  ctx.report.set_param("scale", std::to_string(scale));

  const auto make_keys = [&](std::uint64_t seed) {
    raa::Rng rng{seed};
    std::vector<raa::vec::Elem> v(n);
    for (auto& x : v) x = rng.below(1ull << 32);
    return v;
  };
  const std::uint64_t seed = ctx.seed_or(1);

  if (ctx.printing())
    std::printf(
        "Ablation: serial vs parallel VPI/VLU hardware (VSR, MVL=64)\n\n");
  raa::Table t{{"lanes", "serial CPT", "parallel CPT", "parallel gain"}};
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    auto d1 = make_keys(seed);
    auto d2 = make_keys(seed);
    const auto ser = raa::sort::run_vector_sort(
        raa::sort::Algorithm::vsr,
        raa::vec::VpuConfig{.mvl = 64, .lanes = lanes, .parallel_vpi = false},
        d1);
    const auto par = raa::sort::run_vector_sort(
        raa::sort::Algorithm::vsr,
        raa::vec::VpuConfig{.mvl = 64, .lanes = lanes, .parallel_vpi = true},
        d2);
    const std::string suffix = "/lanes" + std::to_string(lanes);
    ctx.report.record("serial_cpt" + suffix, ser.cpt(n), "cycles/tuple");
    ctx.report.record("parallel_cpt" + suffix, par.cpt(n), "cycles/tuple");
    ctx.report.record("parallel_gain" + suffix,
                      static_cast<double>(ser.cycles) /
                          static_cast<double>(par.cycles),
                      "x");
    char gain[32];
    std::snprintf(gain, sizeof gain, "%.2fx",
                  static_cast<double>(ser.cycles) /
                      static_cast<double>(par.cycles));
    t.row(static_cast<int>(lanes), ser.cpt(n), par.cpt(n),
          std::string{gain});
  }
  if (ctx.printing()) {
    t.print(std::cout);
    std::printf(
        "\nWith one lane the serial variant is already competitive (the "
        "paper's 'works well both with and without parallel lockstepped "
        "lanes'); at higher lane counts the serial unit becomes the "
        "bottleneck and the parallel variant pays off.\n");
  }
}
