// Figure 3 — "Speedup over a scalar baseline for different vectorized
// sorting algorithms. Different maximum vector lengths (MVL) and lanes are
// considered."
//
// Paper reference values: VSR sort reaches 7.9x-11.7x with a single lane
// and 14.9x-20.6x with four lanes (across MVLs); VSR is ~3.4x faster than
// the next-best vectorised sort; its cycles-per-tuple stays constant in n.
//
// Flags: --n=65536 (plus the harness flags, see bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "sort/sorts.hpp"

namespace {

std::vector<raa::vec::Elem> make_keys(std::size_t n, std::uint64_t seed) {
  raa::Rng rng{seed};
  std::vector<raa::vec::Elem> v(n);
  for (auto& x : v) x = rng.below(1ull << 32);
  return v;
}

}  // namespace

RAA_BENCHMARK("fig3_vsr_sort", "§3.2 Figure 3") {
  const raa::Cli& cli = ctx.cli;
  const auto n = static_cast<std::size_t>(cli.get_int("n", 65536));
  ctx.report.set_param("n", std::to_string(n));
  // Every key array below derives from this seed (--seed overrides).
  const std::uint64_t seed = ctx.seed_or(1);

  raa::vec::ScalarCore scalar_core;
  auto scalar_data = make_keys(n, seed);
  const auto scalar =
      raa::sort::scalar_radix_sort(scalar_core, scalar_data);
  ctx.report.record("scalar_radix_cpt", scalar.cpt(n), "cycles/tuple");
  if (ctx.printing())
    std::printf(
        "Figure 3: vectorised sorting, n=%zu 32-bit keys; scalar radix "
        "baseline CPT=%.1f\n\n",
        n, scalar.cpt(n));

  // --- VSR speedup grid over MVL x lanes (the figure's main content) ---
  if (ctx.printing())
    std::printf("VSR sort speedup over the scalar baseline\n");
  raa::Table grid{{"lanes", "MVL=8", "MVL=16", "MVL=32", "MVL=64"}};
  for (const unsigned lanes : {1u, 2u, 4u}) {
    std::vector<std::string> row{std::to_string(lanes)};
    for (const unsigned mvl : {8u, 16u, 32u, 64u}) {
      auto data = make_keys(n, seed);
      const auto st = raa::sort::run_vector_sort(
          raa::sort::Algorithm::vsr,
          raa::vec::VpuConfig{.mvl = mvl, .lanes = lanes}, data);
      const double speedup = static_cast<double>(scalar.cycles) /
                             static_cast<double>(st.cycles);
      ctx.report.record("vsr_speedup/lanes" + std::to_string(lanes) +
                            "_mvl" + std::to_string(mvl),
                        speedup, "x");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx", speedup);
      row.push_back(buf);
    }
    grid.row(std::move(row));
  }
  if (ctx.printing()) {
    grid.print(std::cout);
    std::printf(
        "(paper: max 7.9x-11.7x at 1 lane, 14.9x-20.6x at 4 lanes)\n\n");
  }

  // --- algorithm comparison at MVL=64, 4 lanes ---
  if (ctx.printing())
    std::printf("algorithm comparison (MVL=64, 4 lanes)\n");
  raa::Table cmp{{"algorithm", "CPT", "speedup vs scalar"}};
  double best_other = 1e300;
  double vsr_cycles = 0.0;
  for (const auto algo :
       {raa::sort::Algorithm::vsr, raa::sort::Algorithm::vector_radix,
        raa::sort::Algorithm::vector_quicksort,
        raa::sort::Algorithm::bitonic}) {
    auto data = make_keys(n, seed);
    const auto st = raa::sort::run_vector_sort(
        algo, raa::vec::VpuConfig{.mvl = 64, .lanes = 4}, data);
    if (algo == raa::sort::Algorithm::vsr)
      vsr_cycles = static_cast<double>(st.cycles);
    else
      best_other = std::min(best_other, static_cast<double>(st.cycles));
    ctx.report.record(std::string{"cpt/"} + raa::sort::to_string(algo),
                      st.cpt(n), "cycles/tuple");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx",
                  static_cast<double>(scalar.cycles) /
                      static_cast<double>(st.cycles));
    cmp.row(raa::sort::to_string(algo), st.cpt(n), std::string{buf});
  }
  ctx.report.record("vsr_vs_next_best", best_other / vsr_cycles, "x", 3.4);
  if (ctx.printing()) {
    cmp.print(std::cout);
    std::printf(
        "\nVSR vs next-best vectorised sort: %.2fx  (paper: ~3.4x)\n\n",
        best_other / vsr_cycles);
  }

  // --- CPT flatness in n (the O(k*n) claim) ---
  if (ctx.printing())
    std::printf("VSR cycles-per-tuple vs input size (MVL=64, 4 lanes)\n");
  raa::Table flat{{"n", "CPT"}};
  for (const std::size_t size : {16384u, 65536u, 262144u}) {
    auto data = make_keys(size, seed + 1);
    const auto st = raa::sort::run_vector_sort(
        raa::sort::Algorithm::vsr,
        raa::vec::VpuConfig{.mvl = 64, .lanes = 4}, data);
    ctx.report.record("vsr_cpt/n" + std::to_string(size), st.cpt(size),
                      "cycles/tuple");
    flat.row(static_cast<long>(size), st.cpt(size));
  }
  if (ctx.printing()) {
    flat.print(std::cout);
    std::printf(
        "(flat CPT: the paper's highly-desirable O(k*n) property)\n");
  }
}
