// Figure 3 — "Speedup over a scalar baseline for different vectorized
// sorting algorithms. Different maximum vector lengths (MVL) and lanes are
// considered."
//
// Paper reference values: VSR sort reaches 7.9x-11.7x with a single lane
// and 14.9x-20.6x with four lanes (across MVLs); VSR is ~3.4x faster than
// the next-best vectorised sort; its cycles-per-tuple stays constant in n.
//
// Flags: --n=65536
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sort/sorts.hpp"

namespace {

std::vector<raa::vec::Elem> make_keys(std::size_t n, std::uint64_t seed) {
  raa::Rng rng{seed};
  std::vector<raa::vec::Elem> v(n);
  for (auto& x : v) x = rng.below(1ull << 32);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  const auto n = static_cast<std::size_t>(cli.get_int("n", 65536));

  raa::vec::ScalarCore scalar_core;
  auto scalar_data = make_keys(n, 1);
  const auto scalar =
      raa::sort::scalar_radix_sort(scalar_core, scalar_data);
  std::printf(
      "Figure 3: vectorised sorting, n=%zu 32-bit keys; scalar radix "
      "baseline CPT=%.1f\n\n",
      n, scalar.cpt(n));

  // --- VSR speedup grid over MVL x lanes (the figure's main content) ---
  std::printf("VSR sort speedup over the scalar baseline\n");
  raa::Table grid{{"lanes", "MVL=8", "MVL=16", "MVL=32", "MVL=64"}};
  for (const unsigned lanes : {1u, 2u, 4u}) {
    std::vector<std::string> row{std::to_string(lanes)};
    for (const unsigned mvl : {8u, 16u, 32u, 64u}) {
      auto data = make_keys(n, 1);
      const auto st = raa::sort::run_vector_sort(
          raa::sort::Algorithm::vsr,
          raa::vec::VpuConfig{.mvl = mvl, .lanes = lanes}, data);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx",
                    static_cast<double>(scalar.cycles) /
                        static_cast<double>(st.cycles));
      row.push_back(buf);
    }
    grid.row(std::move(row));
  }
  grid.print(std::cout);
  std::printf(
      "(paper: max 7.9x-11.7x at 1 lane, 14.9x-20.6x at 4 lanes)\n\n");

  // --- algorithm comparison at MVL=64, 4 lanes ---
  std::printf("algorithm comparison (MVL=64, 4 lanes)\n");
  raa::Table cmp{{"algorithm", "CPT", "speedup vs scalar"}};
  double best_other = 1e300;
  double vsr_cycles = 0.0;
  for (const auto algo :
       {raa::sort::Algorithm::vsr, raa::sort::Algorithm::vector_radix,
        raa::sort::Algorithm::vector_quicksort,
        raa::sort::Algorithm::bitonic}) {
    auto data = make_keys(n, 1);
    const auto st = raa::sort::run_vector_sort(
        algo, raa::vec::VpuConfig{.mvl = 64, .lanes = 4}, data);
    if (algo == raa::sort::Algorithm::vsr)
      vsr_cycles = static_cast<double>(st.cycles);
    else
      best_other = std::min(best_other, static_cast<double>(st.cycles));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx",
                  static_cast<double>(scalar.cycles) /
                      static_cast<double>(st.cycles));
    cmp.row(raa::sort::to_string(algo), st.cpt(n), std::string{buf});
  }
  cmp.print(std::cout);
  std::printf(
      "\nVSR vs next-best vectorised sort: %.2fx  (paper: ~3.4x)\n\n",
      best_other / vsr_cycles);

  // --- CPT flatness in n (the O(k*n) claim) ---
  std::printf("VSR cycles-per-tuple vs input size (MVL=64, 4 lanes)\n");
  raa::Table flat{{"n", "CPT"}};
  for (const std::size_t size : {16384u, 65536u, 262144u}) {
    auto data = make_keys(size, 2);
    const auto st = raa::sort::run_vector_sort(
        raa::sort::Algorithm::vsr,
        raa::vec::VpuConfig{.mvl = 64, .lanes = 4}, data);
    flat.row(static_cast<long>(size), st.cpt(size));
  }
  flat.print(std::cout);
  std::printf("(flat CPT: the paper's highly-desirable O(k*n) property)\n");
  return 0;
}
