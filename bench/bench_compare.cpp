// Baseline comparison driver for the perf-trend CI: diffs a
// BENCH_results.json (produced by raa_bench_all --json=...) against a
// checked-in bench/baselines/*.json and exits nonzero when any metric
// drifts beyond its tolerance or disappears. See docs/BENCHMARKS.md for
// the schema and workflow.
//
// Flags:
//   --results=PATH     results file to check (required)
//   --baseline=PATH    baseline file to check against (required)
//   --tolerance=F      default relative tolerance (default 0.05); a
//                      per-metric "tolerance" field in the baseline wins
//   --report-only      always exit 0 on comparison findings (I/O or schema
//                      errors still fail); used by CI while a trend is
//                      being established
//   --verbose          print every metric row, not just the violations
//   --wall-summary     print the informational host-throughput metrics
//                      (wall_seconds, accesses_per_second, tasks_per_second)
//                      found in the results file; these are never gated
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/table.hpp"
#include "report/compare.hpp"

namespace {

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::ifstream in{path};
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_json(const std::string& path, raa::json::Value& out) {
  std::string text, error;
  if (!read_file(path, text, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  auto parsed = raa::json::Value::parse(text, &error);
  if (!parsed) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out = std::move(*parsed);
  return true;
}

std::string fmt(double v, const char* spec = "%.6g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

/// Print one "[throughput] bench: wall 1.2s, 3.4e+06 accesses/s" line per
/// benchmark that recorded informational host metrics.
void print_wall_summary(const raa::json::Value& results) {
  const auto* benches = results.find("benchmarks");
  if (!benches || !benches->is_array()) return;
  for (const auto& b : benches->as_array()) {
    const auto* name = b.find("name");
    const auto* metrics = b.find("metrics");
    if (!name || !name->is_string() || !metrics || !metrics->is_array())
      continue;
    double wall = -1.0, aps = -1.0, tps = -1.0;
    for (const auto& m : metrics->as_array()) {
      const auto* mn = m.find("name");
      const auto* median = m.find("median");
      if (!mn || !mn->is_string() || !median || !median->is_number())
        continue;
      if (mn->as_string() == "wall_seconds") wall = median->as_number();
      if (mn->as_string() == "accesses_per_second")
        aps = median->as_number();
      if (mn->as_string() == "tasks_per_second") tps = median->as_number();
    }
    if (wall < 0.0 && aps < 0.0 && tps < 0.0) continue;
    std::printf("[throughput] %s:", name->as_string().c_str());
    if (wall >= 0.0) std::printf(" wall %.3gs", wall);
    if (aps >= 0.0) std::printf(", %.3g accesses/s", aps);
    if (tps >= 0.0) std::printf(", %.3g tasks/s", tps);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  const std::string results_path = cli.get_string("results", "");
  const std::string baseline_path = cli.get_string("baseline", "");
  if (results_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare --results=PATH --baseline=PATH "
                 "[--tolerance=F] [--report-only] [--verbose]\n");
    return raa::kExitUsage;
  }
  const bool report_only = cli.get_bool("report-only", false);
  const bool verbose = cli.get_bool("verbose", false);
  const bool wall_summary = cli.get_bool("wall-summary", false);

  raa::json::Value results, baseline;
  if (!load_json(results_path, results) ||
      !load_json(baseline_path, baseline))
    return raa::kExitUsage;

  raa::report::CompareOptions options;
  options.default_tolerance = cli.get_double("tolerance", 0.05);

  raa::report::CompareResult cmp;
  try {
    cmp = raa::report::compare(baseline, results, options);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return raa::kExitUsage;
  }

  raa::Table table{{"benchmark", "metric", "baseline", "measured", "rel",
                    "tol", "status"}};
  for (const auto& d : cmp.deltas) {
    if (!verbose && d.kind == raa::report::DeltaKind::ok) continue;
    table.row(d.benchmark, d.metric, fmt(d.baseline),
              d.kind == raa::report::DeltaKind::missing ? "-"
                                                        : fmt(d.measured),
              fmt(100.0 * d.rel, "%.2f%%"), fmt(100.0 * d.tolerance, "%.1f%%"),
              raa::report::to_string(d.kind));
  }
  if (table.rows() > 0) table.print(std::cout);

  if (wall_summary) print_wall_summary(results);

  const std::size_t violations = cmp.violations();
  std::printf(
      "%zu baseline metric%s compared: %zu ok, %zu violation%s; %zu metric%s "
      "only in the results; %zu informational metric%s not gated\n",
      cmp.deltas.size(), cmp.deltas.size() == 1 ? "" : "s",
      cmp.deltas.size() - violations, violations,
      violations == 1 ? "" : "s", cmp.extra_metrics,
      cmp.extra_metrics == 1 ? "" : "s", cmp.informational_skipped,
      cmp.informational_skipped == 1 ? "" : "s");
  if (violations > 0 && report_only)
    std::printf("(report-only mode: not failing the build)\n");
  return violations > 0 && !report_only ? raa::kExitFailure : raa::kExitOk;
}
