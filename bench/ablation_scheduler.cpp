// Ablation — ready-queue policy of the TDG replay: FIFO vs bottom-level
// (CATS-style) priority across workload families and machine widths.
// Quantifies how much of the Sec. 3.1 gain comes from *ordering* alone
// (before any DVFS is applied).
//
// Flags: --scale=1 (graph-size multiplier for larger scenarios; plus the
// harness flags, see bench/harness.hpp)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "obs/counters.hpp"
#include "runtime/graph.hpp"
#include "runtime/runtime.hpp"
#include "simcore/tdg_sim.hpp"

RAA_BENCHMARK("ablation_scheduler", "§3.1 scheduling-policy ablation") {
  using raa::tdg::Synthetic;
  const auto scale = static_cast<unsigned>(
      std::max<std::int64_t>(1, ctx.cli.get_int("scale", 1)));
  ctx.report.set_param("scale", std::to_string(scale));
  const double c = 1.0e6;
  struct W {
    const char* name;
    raa::tdg::Graph g;
  };
  const std::vector<W> workloads = {
      {"cholesky-10", Synthetic::cholesky(10 * scale, c)},
      {"layered-random",
       Synthetic::layered_random(25 * scale, 20, 3, c / 4, c, 3)},
      {"pipeline-48x6", Synthetic::pipeline(48 * scale, 6, c)},
      {"skewed-mix", [&] {
         // Long chain + many independent shorts: FIFO's worst case.
         raa::tdg::Graph g;
         for (unsigned i = 0; i < 120 * scale; ++i) g.add_node(c / 4);
         raa::tdg::NodeId prev = raa::tdg::kNoNode;
         for (unsigned i = 0; i < 20 * scale; ++i) {
           const auto v = g.add_node(c);
           if (prev != raa::tdg::kNoNode) g.add_edge(prev, v);
           prev = v;
         }
         return g;
       }()},
  };

  if (ctx.printing())
    std::printf(
        "Ablation: ready-queue policy (makespan FIFO / bottom-level)\n\n");
  raa::Table t{{"workload", "8 cores", "16 cores", "32 cores"}};
  for (const auto& w : workloads) {
    std::vector<std::string> row{w.name};
    for (const unsigned cores : {8u, 16u, 32u}) {
      const raa::sim::MachineConfig m{.cores = cores};
      const auto fifo =
          raa::sim::replay(w.g, m, raa::sim::priority_fifo());
      const auto blevel =
          raa::sim::replay(w.g, m, raa::sim::priority_bottom_level());
      ctx.add_tasks(2.0 * static_cast<double>(w.g.node_count()));
      const double ratio = fifo.makespan_ns / blevel.makespan_ns;
      ctx.report.record(std::string{"makespan_ratio/"} + w.name + "_cores" +
                            std::to_string(cores),
                        ratio, "x");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3fx", ratio);
      row.push_back(buf);
    }
    t.row(std::move(row));
  }
  if (ctx.printing()) {
    t.print(std::cout);
    std::printf(
        "\nvalues > 1: criticality-ordered scheduling alone already "
        "shortens the makespan; DVFS boosting (fig2 bench) stacks on "
        "top.\n");
  }

  // --- micro_steal_throughput (informational) ---------------------------
  // Host throughput of the work-stealing executor underneath the runtime:
  // spawn a storm of tiny tasks and time the drain. Recorded with
  // record_info — host wall-clock numbers are machine-dependent by nature
  // and must never gate; the simulated makespan_ratio metrics above are
  // the gated ones and are independent of host scheduling by
  // construction (see docs/ARCHITECTURE.md, "Why simulated metrics
  // cannot move").
  // The numbers are read from the obs counter registry — the same
  // "rt.tasks_executed"/"exec.steals" gauges the runtime and executor
  // publish for everything else — as deltas across the storm, so the
  // bench and RuntimeStats can never drift apart (single source of
  // truth; see docs/OBSERVABILITY.md).
  {
    const unsigned host_workers = 4;
    const int storm = static_cast<int>(2048 * scale);
    ctx.report.set_param("host_workers", std::to_string(host_workers));
    auto& reg = raa::obs::Registry::instance();
    const std::uint64_t tasks_before = reg.value("rt.tasks_executed");
    const std::uint64_t steals_before = reg.value("exec.steals");
    const auto t0 = std::chrono::steady_clock::now();
    raa::rt::Runtime rt{{.num_workers = host_workers}};
    std::atomic<std::uint64_t> sink{0};
    for (int i = 0; i < storm; ++i)
      rt.spawn([&] { sink.fetch_add(1, std::memory_order_relaxed); });
    rt.taskwait();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Sampled while rt is alive: its gauges detach on destruction.
    const std::uint64_t tasks = reg.value("rt.tasks_executed") - tasks_before;
    const std::uint64_t steals = reg.value("exec.steals") - steals_before;
    ctx.report.record_info("host_tasks_per_second",
                           static_cast<double>(tasks) / std::max(secs, 1e-9),
                           "tasks/s");
    ctx.report.record_info("host_steal_count", static_cast<double>(steals),
                           "steals");
    if (ctx.printing())
      std::printf(
          "\nhost executor (informational): %llu tasks on %u workers, "
          "%.3g tasks/s, %llu steals\n",
          static_cast<unsigned long long>(tasks), host_workers,
          static_cast<double>(tasks) / std::max(secs, 1e-9),
          static_cast<unsigned long long>(steals));
  }
}
