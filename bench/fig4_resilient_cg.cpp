// Figure 4 — "CG execution example with a single error occurring at the
// same time for all implemented mechanisms": convergence (log10 relative
// residual) over time for Ideal / Ckpt / Lossy Restart / FEIR / AFEIR.
//
// Paper reference shape: the checkpoint scheme rolls back (visible time
// overhead), the lossy restart converges at a shallower slope, FEIR tracks
// the ideal run closely and AFEIR has an even smaller overhead.
//
// The matrix is a 2-D Poisson stand-in for thermal2 (see the substitution
// table in docs/ARCHITECTURE.md);
// --grid sets the side (n = grid^2).
//
// Flags: --grid=256 --inject-frac=0.5 --ckpt-interval=1000 --series (plus
// the harness flags, see bench/harness.hpp)
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "solver/cg.hpp"

namespace {

raa::solver::CgResult run(const raa::solver::Csr& a,
                          std::span<const double> b,
                          raa::solver::Recovery rec, std::size_t inject_at,
                          std::size_t ckpt_interval) {
  raa::solver::CgOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.recovery = rec;
  opt.checkpoint_interval = ckpt_interval;
  if (rec != raa::solver::Recovery::none)
    opt.fault = raa::solver::FaultSpec{.enabled = true,
                                       .iteration = inject_at,
                                       .target = raa::solver::FaultTarget::x,
                                       .block = 5,
                                       .num_blocks = 16};
  std::vector<double> x;
  return raa::solver::solve_cg(a, b, x, opt);
}

}  // namespace

RAA_BENCHMARK("fig4_resilient_cg", "§4 Figure 4") {
  const raa::Cli& cli = ctx.cli;
  const auto grid = static_cast<std::size_t>(cli.get_int("grid", 256));
  const double inject_frac = cli.get_double("inject-frac", 0.5);
  const auto ckpt_interval =
      static_cast<std::size_t>(cli.get_int("ckpt-interval", 1000));
  const bool series = cli.get_bool("series", false);
  ctx.report.set_param("grid", std::to_string(grid));
  ctx.report.set_param("ckpt_interval", std::to_string(ckpt_interval));

  const auto a = raa::solver::laplacian_2d(grid, grid);
  const std::vector<double> b(a.n, 1.0);
  if (ctx.printing())
    std::printf(
        "Figure 4: CG with one DUE (thermal2 stand-in: 2-D Poisson %zux%zu, "
        "n=%zu, nnz=%zu)\n\n",
        grid, grid, a.n, a.nnz());

  // Ideal run defines the injection point (paper: ~30 s of ~70 s).
  const auto ideal = run(a, b, raa::solver::Recovery::none, 0, ckpt_interval);
  const auto inject_at = static_cast<std::size_t>(
      inject_frac * static_cast<double>(ideal.iterations));

  struct Series {
    const char* name;
    raa::solver::CgResult result;
  };
  const std::vector<Series> all = {
      {"Ideal", ideal},
      {"Ckpt", run(a, b, raa::solver::Recovery::checkpoint, inject_at,
                   ckpt_interval)},
      {"Lossy Restart",
       run(a, b, raa::solver::Recovery::lossy_restart, inject_at,
           ckpt_interval)},
      {"FEIR", run(a, b, raa::solver::Recovery::feir, inject_at,
                   ckpt_interval)},
      {"AFEIR", run(a, b, raa::solver::Recovery::afeir, inject_at,
                    ckpt_interval)},
  };

  raa::Table summary{{"mechanism", "time (ms)", "overhead vs ideal",
                      "iterations", "recovery (us)"}};
  for (const auto& s : all) {
    const std::string key{s.name == std::string{"Lossy Restart"}
                              ? "LossyRestart"
                              : s.name};
    ctx.report.record("time_ms/" + key, 1e3 * s.result.time_s, "ms");
    ctx.report.record("overhead_frac/" + key,
                      s.result.time_s / ideal.time_s - 1.0, "frac");
    ctx.report.record("iterations/" + key,
                      static_cast<double>(s.result.iterations), "iters");
    char over[32], rec[32];
    std::snprintf(over, sizeof over, "%+.2f%%",
                  100.0 * (s.result.time_s / ideal.time_s - 1.0));
    std::snprintf(rec, sizeof rec, "%.1f", 1e6 * s.result.recovery_time_s);
    summary.row(s.name, 1e3 * s.result.time_s, std::string{over},
                static_cast<long>(s.result.iterations), std::string{rec});
  }
  if (ctx.printing()) {
    summary.print(std::cout);
    std::printf(
        "\nDUE injected at iteration %zu (%.0f%% of the ideal solve); paper "
        "shape: Ckpt pays a rollback, Lossy Restart converges slower, FEIR "
        "tracks Ideal, AFEIR overhead is smallest.\n",
        inject_at, 100.0 * inject_frac);
  }

  if (ctx.printing() && series) {
    std::printf("\ntime_ms log10_rel_residual per mechanism\n");
    for (const auto& s : all) {
      std::printf("# %s\n", s.name);
      const auto& tr = s.result.trace;
      const std::size_t step = std::max<std::size_t>(1, tr.size() / 40);
      for (std::size_t i = 0; i < tr.size(); i += step)
        std::printf("%.3f %.3f\n", 1e3 * tr[i].time_s,
                    std::log10(std::max(tr[i].rel_residual, 1e-300)));
    }
  }
}
