// Figure 5 — "Scalability comparison between OmpSs and Pthreads" for
// bodytrack and facesim on a 16-core machine.
//
// Paper reference shape: the OmpSs ports reach ~12x (bodytrack) and ~10x
// (facesim) at 16 cores by overlapping the serial I/O stages with
// computation; the Pthreads originals saturate lower (fork-join barriers).
//
// Scaling is replayed on a simulated machine (this container has one CPU;
// see the substitution table in docs/ARCHITECTURE.md).
// Flags: --cores=16 --frames=30 --scale=1 (frame-count multiplier for
// larger scenarios; plus the harness flags, see bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "apps/miniapps.hpp"
#include "common/table.hpp"
#include "harness.hpp"

RAA_BENCHMARK("fig5_task_scalability", "§5 Figure 5") {
  const raa::Cli& cli = ctx.cli;
  const auto cores = static_cast<unsigned>(cli.get_int("cores", 16));
  const auto scale = std::max<std::size_t>(
      1, static_cast<std::size_t>(cli.get_int("scale", 1)));
  const auto frames =
      static_cast<std::size_t>(cli.get_int("frames", 30)) * scale;
  ctx.report.set_param("cores", std::to_string(cores));
  ctx.report.set_param("frames", std::to_string(frames));
  ctx.report.set_param("scale", std::to_string(scale));

  if (ctx.printing())
    std::printf(
        "Figure 5: OmpSs (dataflow) vs Pthreads (fork-join) scalability on a "
        "simulated %u-core machine\n\n",
        cores);

  struct App {
    const char* name;
    raa::tdg::Graph original;
    raa::tdg::Graph ompss;
  };
  const std::vector<App> apps = {
      {"bodytrack",
       raa::apps::bodytrack_tdg(frames, 32, raa::apps::Style::forkjoin),
       raa::apps::bodytrack_tdg(frames, 32, raa::apps::Style::dataflow)},
      {"facesim",
       raa::apps::facesim_tdg(frames, 32, raa::apps::Style::forkjoin),
       raa::apps::facesim_tdg(frames, 32, raa::apps::Style::dataflow)},
  };

  for (const auto& app : apps) {
    const auto orig = raa::apps::scalability_curve(app.original, cores);
    const auto ompss = raa::apps::scalability_curve(app.ompss, cores);
    // One replay per machine width per variant.
    ctx.add_tasks(static_cast<double>(app.original.node_count() +
                                      app.ompss.node_count()) *
                  static_cast<double>(cores));
    const double paper_at_16 =
        std::string(app.name) == "bodytrack" ? 12.0 : 10.0;
    for (const unsigned p : {cores / 2, cores}) {
      if (p == 0) continue;
      const std::string suffix = "_at" + std::to_string(p);
      ctx.report.record(std::string{"speedup_pthreads/"} + app.name + suffix,
                        orig[p - 1], "x");
      ctx.report.record(
          std::string{"speedup_ompss/"} + app.name + suffix, ompss[p - 1],
          "x", p == 16 ? std::optional<double>{paper_at_16} : std::nullopt);
    }
    if (ctx.printing()) {
      std::printf("%s speedup vs threads (paper: OmpSs ~%.0fx at 16)\n",
                  app.name, paper_at_16);
      raa::Table t{{"threads", "Original (Pthreads)", "OmpSs"}};
      for (unsigned p = 2; p <= cores; p += 2)
        t.row(static_cast<int>(p), orig[p - 1], ompss[p - 1]);
      t.print(std::cout);
      std::printf("\n");
    }
  }
  if (ctx.printing())
    std::printf(
        "The dataflow ports overlap the per-frame serial stage with the "
        "previous frame's parallel work; the fork-join originals cannot.\n");
}
