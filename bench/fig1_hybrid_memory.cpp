// Figure 1 — "Performance, energy and NoC traffic speedup of the hybrid
// memory hierarchy on a 64-core processor with respect to a cache-only
// system" for the NAS-like kernels CG, EP, FT, IS, MG, SP.
//
// Paper reference values: average improvements of 14.7% (execution time),
// 18.5% (energy), 31.2% (NoC traffic); EP shows no degradation.
//
// Flags: --tiles=64 --scale=1 --shards=1 --verbose (plus the harness
// flags, see bench/harness.hpp). `fig1_paper_scale` additionally accepts
// --paper-scale=N (default 8) for the paper-scale working sets.
#include <cstdio>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "kernels/nas.hpp"
#include "memsim/system.hpp"

namespace {

/// Shared body of the default and paper-scale Figure 1 benchmarks.
void run_fig1(raa::bench::Context& ctx, unsigned tiles, unsigned scale) {
  const raa::Cli& cli = ctx.cli;
  raa::mem::SystemConfig cfg;
  cfg.tiles = tiles;
  // Square-ish mesh.
  cfg.mesh_x = 8;
  cfg.mesh_y = cfg.tiles / cfg.mesh_x;
  if (cfg.tiles == 16) cfg.mesh_x = cfg.mesh_y = 4;
  if (cfg.tiles == 32) {
    cfg.mesh_x = 8;
    cfg.mesh_y = 4;
  }
  const bool verbose = cli.get_bool("verbose", false);
  ctx.report.set_param("tiles", std::to_string(cfg.tiles));
  ctx.report.set_param("scale", std::to_string(scale));
  // Host-execution knobs: front-end shards per System::run, plus the
  // harness pool (when --jobs > 1) running the cache_only/hybrid halves
  // concurrently. Neither moves any reported metric (ShardEquivalence).
  const raa::mem::ComparisonOptions copt{
      .shards = static_cast<unsigned>(cli.get_int("shards", 1)),
      .pool = ctx.pool};

  if (ctx.printing())
    std::printf(
        "Figure 1: hybrid SPM+cache hierarchy vs cache-only, %u tiles, "
        "scale %u (paper: avg 1.147x time, 1.185x energy, 1.312x NoC)\n\n",
        cfg.tiles, scale);

  raa::Table table{{"benchmark", "time x", "energy x", "noc x"}};
  std::vector<double> ts, es, ns;
  for (const auto& kernel : raa::kern::nas_kernels()) {
    const auto cmp = raa::mem::run_comparison(
        cfg, [&] { return kernel.make(cfg, scale); }, copt);
    const raa::mem::Metrics& base = cmp.cache_only;
    const raa::mem::Metrics& hybrid = cmp.hybrid;
    ctx.add_accesses(static_cast<double>(base.accesses) +
                     static_cast<double>(hybrid.accesses));
    const double t = base.cycles / hybrid.cycles;
    const double e = base.energy_pj() / hybrid.energy_pj();
    const double n = base.noc_flit_hops / hybrid.noc_flit_hops;
    ts.push_back(t);
    es.push_back(e);
    ns.push_back(n);
    ctx.report.record("time_x/" + kernel.name, t, "x");
    ctx.report.record("energy_x/" + kernel.name, e, "x");
    ctx.report.record("noc_x/" + kernel.name, n, "x");
    table.row(kernel.name, t, e, n);
    if (ctx.printing() && verbose) {
      std::printf(
          "  %s base:   l1m=%llu l2m=%llu dram_rd=%llu prefetch=%llu\n",
          kernel.name.c_str(),
          static_cast<unsigned long long>(base.l1_misses),
          static_cast<unsigned long long>(base.l2_misses),
          static_cast<unsigned long long>(base.dram_line_reads),
          static_cast<unsigned long long>(base.prefetch_fills));
      std::printf(
          "  %s hybrid: spm=%llu dma=%llu guarded=%llu remote_spm=%llu\n",
          kernel.name.c_str(),
          static_cast<unsigned long long>(hybrid.spm_hits),
          static_cast<unsigned long long>(hybrid.dma_transfers),
          static_cast<unsigned long long>(hybrid.guarded_lookups),
          static_cast<unsigned long long>(hybrid.remote_spm_accesses));
    }
  }
  table.row("AVG", raa::mean(ts), raa::mean(es), raa::mean(ns));
  ctx.report.record("time_x/avg", raa::mean(ts), "x", 1.147);
  ctx.report.record("energy_x/avg", raa::mean(es), "x", 1.185);
  ctx.report.record("noc_x/avg", raa::mean(ns), "x", 1.312);
  if (ctx.printing()) {
    table.print(std::cout);
    std::printf(
        "\nmeasured avg improvements: time %+.1f%%, energy %+.1f%%, "
        "NoC %+.1f%%  (paper: +14.7%% / +18.5%% / +31.2%%)\n",
        (raa::mean(ts) - 1.0) * 100.0, (raa::mean(es) - 1.0) * 100.0,
        (raa::mean(ns) - 1.0) * 100.0);
  }
}

}  // namespace

RAA_BENCHMARK("fig1_hybrid_memory", "§2 Figure 1") {
  run_fig1(ctx, static_cast<unsigned>(ctx.cli.get_int("tiles", 64)),
           static_cast<unsigned>(ctx.cli.get_int("scale", 1)));
}

// Paper-scale configuration: the full 64-tile chip with 8x the per-core
// working sets (multi-hundred-KiB per-core partitions, as in the paper's
// NAS class sizes). The flat-line fast path is what lets this fit in the
// bench-smoke CI budget.
RAA_BENCHMARK("fig1_paper_scale", "§2 Figure 1 (paper-scale working sets)") {
  run_fig1(ctx, 64,
           static_cast<unsigned>(ctx.cli.get_int("paper-scale", 8)));
}
