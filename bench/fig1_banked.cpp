// fig1_banked — row-buffer locality sweep under the banked DRAM backend.
//
// The paper's Figure 1 comparison uses a flat DRAM latency, which hides
// the locality axis a real memory controller exposes: linear SPM/DMA
// traffic streams whole row buffers (row hits) while cache-only miss
// streams scatter across banks (conflicts). This bench runs the NAS-like
// kernels under both hierarchy modes with the banked backend across a
// row-buffer-size sweep and reports, per row size:
//   row_hit_rate/<mode>/rbN       mean row-buffer hit fraction
//   row_conflict_rate/<mode>/rbN  mean conflict fraction
//   time_x_flat/<mode>/rbN        mean flat-backend cycles / banked cycles
//
// Flags: --tiles=16 --scale=1 (plus the harness flags, bench/harness.hpp).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "kernels/nas.hpp"
#include "memsim/system.hpp"

namespace {

const char* mode_name(raa::mem::HierarchyMode m) {
  return m == raa::mem::HierarchyMode::hybrid ? "hybrid" : "cache_only";
}

}  // namespace

RAA_BENCHMARK("fig1_banked", "§2 Figure 1 (banked-DRAM row locality)") {
  const raa::Cli& cli = ctx.cli;
  raa::mem::SystemConfig cfg;
  cfg.tiles = static_cast<unsigned>(cli.get_int("tiles", 16));
  cfg.mesh_x = cfg.tiles >= 64 ? 8 : 4;
  cfg.mesh_y = cfg.tiles / cfg.mesh_x;
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 1));
  ctx.report.set_param("tiles", std::to_string(cfg.tiles));
  ctx.report.set_param("scale", std::to_string(scale));

  constexpr unsigned kRowBytes[] = {1024, 2048, 4096};

  if (ctx.printing())
    std::printf(
        "Banked DRAM row-locality sweep: NAS-like kernels, %u tiles, "
        "row buffer 1-4 KiB (flat backend as the timing reference)\n\n",
        cfg.tiles);

  raa::Table table{{"mode", "row KiB", "hit rate", "conflict rate",
                    "time x flat"}};
  for (const auto mode : {raa::mem::HierarchyMode::cache_only,
                          raa::mem::HierarchyMode::hybrid}) {
    // Flat reference cycles per kernel (row size is irrelevant there).
    std::vector<double> flat_cycles;
    for (const auto& kernel : raa::kern::nas_kernels()) {
      raa::mem::Workload w = kernel.make(cfg, scale);
      raa::mem::System sys{cfg, mode};
      const raa::mem::Metrics m = sys.run(w);
      ctx.add_accesses(static_cast<double>(m.accesses));
      flat_cycles.push_back(m.cycles);
    }

    for (const unsigned rb : kRowBytes) {
      raa::mem::SystemConfig bcfg = cfg;
      bcfg.memory.kind = raa::mem::MemBackendKind::banked;
      bcfg.memory.banked.row_bytes = rb;
      std::vector<double> hit, conflict, time_x;
      std::size_t ki = 0;
      for (const auto& kernel : raa::kern::nas_kernels()) {
        raa::mem::Workload w = kernel.make(bcfg, scale);
        raa::mem::System sys{bcfg, mode};
        const raa::mem::Metrics m = sys.run(w);
        ctx.add_accesses(static_cast<double>(m.accesses));
        const double total = static_cast<double>(
            m.dram_row_hits + m.dram_row_misses + m.dram_row_conflicts);
        hit.push_back(total > 0 ? m.dram_row_hits / total : 0.0);
        conflict.push_back(total > 0 ? m.dram_row_conflicts / total : 0.0);
        time_x.push_back(flat_cycles[ki++] / m.cycles);
      }
      const std::string tag =
          std::string{mode_name(mode)} + "/rb" + std::to_string(rb);
      ctx.report.record("row_hit_rate/" + tag, raa::mean(hit), "frac");
      ctx.report.record("row_conflict_rate/" + tag, raa::mean(conflict),
                        "frac");
      ctx.report.record("time_x_flat/" + tag, raa::mean(time_x), "x");
      table.row(mode_name(mode), static_cast<unsigned long>(rb / 1024),
                raa::mean(hit),
                raa::mean(conflict), raa::mean(time_x));
    }
  }
  if (ctx.printing()) table.print(std::cout);
}
