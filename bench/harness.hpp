#pragma once
/// \file harness.hpp
/// Shared entry point for the figure/ablation benches. Each bench source
/// defines its body with RAA_BENCHMARK(name, paper_ref) { ... } instead of
/// main(); linking bench/harness.cpp provides a main() that parses the
/// common flags, runs every registered benchmark and writes the merged
/// machine-readable report:
///
///   --reps=N       repeat each benchmark body N times (default 1); metric
///                  samples accumulate across repetitions
///   --json=PATH    write the merged RunReport (BENCH_results.json schema)
///   --only=NAME    run a single registered benchmark (raa_bench_all)
///   --list         print registered benchmark names and exit
///   --jobs=N       run independent scenario units — every (benchmark,
///                  repetition) pair — across N concurrent lanes
///                  (src/exec/ pool; default 1). Unit reports merge in
///                  registration order regardless of completion order, so
///                  every gated metric of BENCH_results.json is
///                  bit-identical for any N (only the informational wall
///                  metrics move). Table output is suppressed when N > 1.
///   --seed=N       override the deterministic seed of every benchmark
///                  body that draws random data (bodies read it through
///                  ctx.seed_or(default)). The report records the
///                  override as a "seed" parameter; metric values under a
///                  non-default seed will legitimately differ from the
///                  checked-in baseline.
///
/// Single-figure binaries register exactly one benchmark; raa_bench_all
/// links all bench sources and therefore registers all of them. Table
/// output goes to stdout on the first repetition only (guard any direct
/// printing with ctx.printing()).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "exec/pool.hpp"
#include "report/report.hpp"

namespace raa::bench {

/// Passed to every benchmark body.
struct Context {
  const raa::Cli& cli;            ///< parsed command line (bench flags)
  report::BenchReport& report;    ///< record() headline metrics here
  int rep = 0;                    ///< current repetition, 0-based
  int reps = 1;                   ///< total repetitions
  double sim_accesses = 0;        ///< see add_accesses()
  double sim_tasks = 0;           ///< see add_tasks()
  /// The harness pool when --jobs > 1, else null. Bench bodies may run
  /// *independent* sub-units on it (e.g. the cache_only/hybrid halves of
  /// a run_comparison); results must not depend on completion order.
  exec::Pool* pool = nullptr;
  bool quiet = false;  ///< parallel run: suppress table printing
  /// Set when --seed=N was passed; benchmark bodies read it through
  /// seed_or() so any bench can be re-run under a different deterministic
  /// random stream without a rebuild.
  std::optional<std::uint64_t> seed;

  /// The seed a benchmark body should use: the --seed override when
  /// present, else the body's registered default.
  std::uint64_t seed_or(std::uint64_t fallback) const noexcept {
    return seed.value_or(fallback);
  }

  /// True on the repetition whose tables should be printed.
  bool printing() const noexcept { return rep == 0 && !quiet; }

  /// Tell the harness how many simulated memory accesses this repetition
  /// drove; it derives the informational `accesses_per_second` metric
  /// (host throughput trend, exempt from the baseline gate).
  void add_accesses(double n) noexcept { sim_accesses += n; }
  /// Same for replayed/spawned tasks -> `tasks_per_second`.
  void add_tasks(double n) noexcept { sim_tasks += n; }
};

using BenchFn = void (*)(Context&);

struct Spec {
  std::string name;       ///< binary-style name, e.g. "fig1_hybrid_memory"
  std::string paper_ref;  ///< e.g. "§2 Figure 1"
  BenchFn fn = nullptr;
};

/// Registration order across translation units is unspecified; the harness
/// runs benchmarks sorted by name.
std::vector<Spec>& registry();
int register_bench(Spec spec);

/// The shared main(); returns the process exit code.
int harness_main(int argc, char** argv);

}  // namespace raa::bench

#define RAA_BENCH_CONCAT_(a, b) a##b
#define RAA_BENCH_CONCAT(a, b) RAA_BENCH_CONCAT_(a, b)

/// Defines and registers a benchmark body:
///   RAA_BENCHMARK("fig1_hybrid_memory", "§2 Figure 1") { ... use ctx ... }
#define RAA_BENCHMARK(name_str, paper_ref_str)                            \
  static void RAA_BENCH_CONCAT(raa_bench_body_, __LINE__)(                \
      raa::bench::Context&);                                              \
  [[maybe_unused]] static const int RAA_BENCH_CONCAT(raa_bench_reg_,      \
                                                     __LINE__) =          \
      raa::bench::register_bench(                                        \
          {name_str, paper_ref_str,                                      \
           &RAA_BENCH_CONCAT(raa_bench_body_, __LINE__)});               \
  static void RAA_BENCH_CONCAT(raa_bench_body_, __LINE__)(                \
      raa::bench::Context& ctx)
