// Ablation — scratchpad size: how much SPM does the Figure 1 result need?
// Sweeps the per-tile SPM (which bounds how many strided streams can be
// double-buffered) via the DMA chunk size, on the stream-heaviest kernel
// (SP) and the gather-heavy one (CG).
//
// Flags: --tiles=64 --scale=1 --shards=1 (plus the harness flags, see
// bench/harness.hpp)
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "kernels/nas.hpp"
#include "memsim/system.hpp"

RAA_BENCHMARK("ablation_spm_size", "§2 SPM-size ablation") {
  const raa::Cli& cli = ctx.cli;
  raa::mem::SystemConfig base_cfg;
  base_cfg.tiles = static_cast<unsigned>(cli.get_int("tiles", 64));
  const auto scale = static_cast<unsigned>(cli.get_int("scale", 1));
  ctx.report.set_param("tiles", std::to_string(base_cfg.tiles));
  ctx.report.set_param("scale", std::to_string(scale));

  if (ctx.printing())
    std::printf(
        "Ablation: DMA chunk size (per-stream SPM budget) vs hybrid "
        "speedup\n\n");
  raa::Table t{{"chunk KiB", "SP time x", "SP noc x", "CG time x",
                "CG noc x"}};
  for (const unsigned chunk_kib : {1u, 2u, 4u, 8u}) {
    raa::mem::SystemConfig cfg = base_cfg;
    cfg.dma_chunk_bytes = chunk_kib * 1024;
    // Keep the double-buffered footprint inside the SPM.
    cfg.spm_bytes = std::max(cfg.spm_bytes, 16 * cfg.dma_chunk_bytes);
    std::vector<std::string> row{std::to_string(chunk_kib)};
    for (const char* name : {"SP", "CG"}) {
      const auto& kernels = raa::kern::nas_kernels();
      const auto it =
          std::find_if(kernels.begin(), kernels.end(),
                       [&](const auto& k) { return k.name == name; });
      const auto cmp = raa::mem::run_comparison(
          cfg, [&] { return it->make(cfg, scale); },
          raa::mem::ComparisonOptions{
              .shards = static_cast<unsigned>(cli.get_int("shards", 1)),
              .pool = ctx.pool});
      const raa::mem::Metrics& base = cmp.cache_only;
      const raa::mem::Metrics& hyb = cmp.hybrid;
      ctx.add_accesses(static_cast<double>(base.accesses) +
                       static_cast<double>(hyb.accesses));
      const double time_x = base.cycles / hyb.cycles;
      const double noc_x = base.noc_flit_hops / hyb.noc_flit_hops;
      const std::string suffix =
          std::string{"/"} + name + "_chunk" + std::to_string(chunk_kib);
      ctx.report.record("time_x" + suffix, time_x, "x");
      ctx.report.record("noc_x" + suffix, noc_x, "x");
      char a[32], b[32];
      std::snprintf(a, sizeof a, "%.3f", time_x);
      std::snprintf(b, sizeof b, "%.3f", noc_x);
      row.push_back(a);
      row.push_back(b);
    }
    t.row(std::move(row));
  }
  if (ctx.printing()) {
    t.print(std::cout);
    std::printf(
        "\nLarger chunks amortise DMA control and directory transactions; "
        "beyond a few KiB the return diminishes (SPM capacity pressure).\n");
  }
}
