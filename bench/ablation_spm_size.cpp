// Ablation — scratchpad size: how much SPM does the Figure 1 result need?
// Sweeps the per-tile SPM (which bounds how many strided streams can be
// double-buffered) via the DMA chunk size, on the stream-heaviest kernel
// (SP) and the gather-heavy one (CG).
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "kernels/nas.hpp"
#include "memsim/system.hpp"

int main(int argc, char** argv) {
  const raa::Cli cli{argc, argv};
  raa::mem::SystemConfig base_cfg;
  base_cfg.tiles = static_cast<unsigned>(cli.get_int("tiles", 64));

  std::printf(
      "Ablation: DMA chunk size (per-stream SPM budget) vs hybrid speedup\n\n");
  raa::Table t{{"chunk KiB", "SP time x", "SP noc x", "CG time x",
                "CG noc x"}};
  for (const unsigned chunk_kib : {1u, 2u, 4u, 8u}) {
    raa::mem::SystemConfig cfg = base_cfg;
    cfg.dma_chunk_bytes = chunk_kib * 1024;
    // Keep the double-buffered footprint inside the SPM.
    cfg.spm_bytes = std::max(cfg.spm_bytes, 16 * cfg.dma_chunk_bytes);
    std::vector<std::string> row{std::to_string(chunk_kib)};
    for (const char* name : {"SP", "CG"}) {
      const auto& kernels = raa::kern::nas_kernels();
      const auto it =
          std::find_if(kernels.begin(), kernels.end(),
                       [&](const auto& k) { return k.name == name; });
      raa::mem::Metrics base, hyb;
      {
        auto w = it->make(cfg, 1);
        raa::mem::System sys{cfg, raa::mem::HierarchyMode::cache_only};
        base = sys.run(w);
      }
      {
        auto w = it->make(cfg, 1);
        raa::mem::System sys{cfg, raa::mem::HierarchyMode::hybrid};
        hyb = sys.run(w);
      }
      char a[32], b[32];
      std::snprintf(a, sizeof a, "%.3f", base.cycles / hyb.cycles);
      std::snprintf(b, sizeof b, "%.3f",
                    base.noc_flit_hops / hyb.noc_flit_hops);
      row.push_back(a);
      row.push_back(b);
    }
    t.row(std::move(row));
  }
  t.print(std::cout);
  std::printf(
      "\nLarger chunks amortise DMA control and directory transactions; "
      "beyond a few KiB the return diminishes (SPM capacity pressure).\n");
  return 0;
}
