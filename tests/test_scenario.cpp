// Scenario subsystem: declarative parsing/validation, the parameterized
// generators, and the trace record/replay round trip (the determinism
// contract: replaying a recorded run reproduces its Metrics exactly, under
// the serial and the sharded engine alike).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kernels/program.hpp"
#include "memsim/system.hpp"
#include "report/json.hpp"
#include "scenario/generators.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace {

using raa::kern::AddressSpace;
using raa::kern::Phase;
using raa::kern::ScriptedProgram;
using raa::kern::Stream;
using raa::kern::StreamKind;
using raa::mem::Access;
using raa::mem::HierarchyMode;
using raa::mem::Metrics;
using raa::mem::RefClass;
using raa::mem::Region;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;
using raa::scen::Scenario;
using raa::scen::TraceData;

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.tiles = 4;
  cfg.mesh_x = 2;
  cfg.mesh_y = 2;
  cfg.l1_bytes = 4 * 1024;
  cfg.l2_bank_bytes = 16 * 1024;
  cfg.spm_bytes = 8 * 1024;
  cfg.dma_chunk_bytes = 1024;
  return cfg;
}

/// Field-by-field Metrics equality: the record/replay and shard contracts
/// are exact, so even the FP sums must match bit-for-bit.
void expect_metrics_equal(const Metrics& a, const Metrics& b) {
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.noc_flit_hops, b.noc_flit_hops);
  EXPECT_DOUBLE_EQ(a.e_l1, b.e_l1);
  EXPECT_DOUBLE_EQ(a.e_l2, b.e_l2);
  EXPECT_DOUBLE_EQ(a.e_spm, b.e_spm);
  EXPECT_DOUBLE_EQ(a.e_dram, b.e_dram);
  EXPECT_DOUBLE_EQ(a.e_noc, b.e_noc);
  EXPECT_DOUBLE_EQ(a.e_dir, b.e_dir);
  EXPECT_DOUBLE_EQ(a.e_static, b.e_static);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.spm_hits, b.spm_hits);
  EXPECT_EQ(a.dram_line_reads, b.dram_line_reads);
  EXPECT_EQ(a.dram_line_writes, b.dram_line_writes);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.prefetch_fills, b.prefetch_fills);
  EXPECT_EQ(a.dma_transfers, b.dma_transfers);
  EXPECT_EQ(a.guarded_lookups, b.guarded_lookups);
  EXPECT_EQ(a.guarded_to_spm, b.guarded_to_spm);
  EXPECT_EQ(a.remote_spm_accesses, b.remote_spm_accesses);
  // The defaulted operator== must agree with the field-wise comparison.
  EXPECT_TRUE(a == b);
}

/// Drain a program through fill() in `batch`-sized chunks.
std::vector<Access> drain(raa::mem::CoreProgram& p, std::size_t batch) {
  std::vector<Access> all;
  std::vector<Access> buf(batch);
  std::size_t n = 0;
  while ((n = p.fill({buf.data(), buf.size()})) > 0)
    all.insert(all.end(), buf.begin(), buf.begin() + n);
  EXPECT_EQ(p.fill({buf.data(), buf.size()}), 0u);  // stays ended
  return all;
}

bool same_accesses(const std::vector<Access>& a,
                   const std::vector<Access>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].addr != b[i].addr || a[i].is_store != b[i].is_store ||
        a[i].ref != b[i].ref || a[i].gap_cycles != b[i].gap_cycles)
      return false;
  return true;
}

/// Mixed-class scripted workload (strided + guarded rmw + random) used by
/// the record/replay tests.
Workload mixed_workload(const SystemConfig& cfg, std::uint64_t seed) {
  Workload w;
  w.name = "mixed";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part = 2 * cfg.dma_chunk_bytes;
  const Region& shared =
      as.add(w, "shared", cfg.tiles * part, RefClass::strided);
  const Region& priv =
      as.add(w, "private", cfg.tiles * 2048, RefClass::random_noalias);
  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> phases;
    phases.push_back(Phase{
        .streams = {Stream{.region = &shared, .store = (c % 2 == 1),
                           .start = c * part, .stride = 8}},
        .iterations = part / 8,
        .gap_cycles = 2});
    phases.push_back(Phase{
        .streams = {Stream{.region = &shared, .kind = StreamKind::random_rmw,
                           .ref = RefClass::random_unknown, .elem_bytes = 8},
                    Stream{.region = &priv, .kind = StreamKind::random,
                           .ref = RefClass::random_noalias,
                           .slice_bytes = 2048, .slice_base = c * 2048,
                           .elem_bytes = 8}},
        .iterations = 96,
        .gap_cycles = 3});
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed * 131 + c));
  }
  return w;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// --------------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------------

TEST(Generators, ZipfIsDeterministicAndSkewed) {
  raa::scen::ZipfParams p;
  p.slice = {1 << 20, 64 * 1024};
  p.accesses = 4000;
  p.hot_fraction = 0.1;
  p.hot_weight = 0.9;
  p.store_fraction = 0.25;
  raa::scen::ZipfProgram a{p, 42};
  raa::scen::ZipfProgram b{p, 42};
  const auto sa = drain(a, 64);
  const auto sb = drain(b, 1);  // next()-sized batches: same sequence
  EXPECT_EQ(sa.size(), 4000u);
  EXPECT_TRUE(same_accesses(sa, sb));

  const std::uint64_t hot_end =
      p.slice.base + (p.slice.bytes / 10 / 8) * 8;  // ~hot_fraction
  std::size_t hot = 0, stores = 0;
  for (const auto& acc : sa) {
    ASSERT_GE(acc.addr, p.slice.base);
    ASSERT_LT(acc.addr, p.slice.base + p.slice.bytes);
    if (acc.addr < hot_end) ++hot;
    if (acc.is_store) ++stores;
  }
  // hot_weight=0.9 with generous slack; a uniform draw would give ~10%.
  EXPECT_GT(hot, sa.size() * 7 / 10);
  EXPECT_GT(stores, sa.size() / 10);
  EXPECT_LT(stores, sa.size() / 2);

  raa::scen::ZipfProgram c{p, 43};
  EXPECT_FALSE(same_accesses(sa, drain(c, 64)));  // seed matters
}

TEST(Generators, PointerChaseVisitsEveryElementOncePerLap) {
  raa::scen::PointerChaseParams p;
  p.slice = {4096, 512};  // 64 elements
  p.accesses = 128;       // two laps
  raa::scen::PointerChaseProgram a{p, 7};
  const auto s = drain(a, 16);
  ASSERT_EQ(s.size(), 128u);
  std::vector<int> seen(64, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(s[i].is_store);
    seen[(s[i].addr - 4096) / 8]++;
  }
  for (const int k : seen) EXPECT_EQ(k, 1);  // a full cycle
  // Second lap repeats the first.
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(s[i].addr, s[64 + i].addr);
}

TEST(Generators, StencilHaloTapsCrossSlicesAsGuarded) {
  raa::scen::StencilParams p;
  p.in_region = {0, 4 * 256};  // 4 cores x 32 elements
  p.out_region = {1 << 16, 4 * 256};
  p.elem_offset = 32;  // core 1 of 4
  p.elems = 32;
  p.halo = 1;
  p.sweeps = 2;
  p.in_ref = RefClass::strided;
  raa::scen::StencilProgram a{p};
  const auto s = drain(a, 13);
  // Per element: 3 reads + 1 write; 32 elements x 2 sweeps.
  ASSERT_EQ(s.size(), 4u * 32 * 2);
  // First element: taps 31 (left halo, guarded), 32, 33, then write 32.
  EXPECT_EQ(s[0].addr, 31u * 8);
  EXPECT_EQ(s[0].ref, RefClass::random_unknown);
  EXPECT_EQ(s[1].addr, 32u * 8);
  EXPECT_EQ(s[1].ref, RefClass::strided);
  EXPECT_EQ(s[2].addr, 33u * 8);
  EXPECT_TRUE(s[3].is_store);
  EXPECT_EQ(s[3].addr, (1u << 16) + 32u * 8);
  // Last element of the slice reads tap 64 — the right halo, guarded.
  const auto& right_tap = s[4 * 31 + 2];
  EXPECT_EQ(right_tap.addr, 64u * 8);
  EXPECT_EQ(right_tap.ref, RefClass::random_unknown);
}

TEST(Generators, ProducerConsumerAlternatesOwnStoreAndPeerLoad) {
  raa::scen::ProducerConsumerParams p;
  p.ring = {0, 4 * 1024};
  p.slot_bytes = 1024;
  p.core = 0;
  p.cores = 4;
  p.iterations = 200;
  raa::scen::ProducerConsumerProgram a{p};
  const auto s = drain(a, 7);
  ASSERT_EQ(s.size(), 400u);
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    EXPECT_TRUE(s[i].is_store);
    EXPECT_LT(s[i].addr, 1024u);  // own slot (core 0)
    EXPECT_FALSE(s[i + 1].is_store);
    EXPECT_GE(s[i + 1].addr, 3 * 1024u);  // left neighbour = core 3
  }
}

TEST(Generators, BurstyCarriesTheOffGapOnBurstHeads) {
  raa::scen::BurstyParams p;
  p.slice = {0, 8192};
  p.bursts = 5;
  p.burst_len = 50;
  p.gap_on = 2;
  p.gap_off = 777;
  raa::scen::BurstyProgram a{p, 3};
  const auto s = drain(a, 32);
  ASSERT_EQ(s.size(), 250u);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(s[i].gap_cycles, i % 50 == 0 ? 777u : 2u) << i;
}

// --------------------------------------------------------------------------
// Scenario parsing + validation
// --------------------------------------------------------------------------

const char* kScenarioDoc = R"({
  "name": "t",
  "mode": "compare",
  "seed": 5,
  "config": {"tiles": 4, "mesh_x": 2, "mesh_y": 2,
             "l1_bytes": 4096, "l2_bank_bytes": 16384,
             "spm_bytes": 8192, "dma_chunk_bytes": 1024},
  "regions": [
    {"name": "grid", "bytes_per_core": 2048, "class": "strided"},
    {"name": "table", "bytes": 8192, "class": "random_unknown"}
  ],
  "programs": [
    {"cores": [0, 1], "generator": "scripted", "phases": [
      {"iterations": 256, "gap_cycles": 2, "streams": [
        {"region": "grid", "kind": "linear", "stride": 8},
        {"region": "table", "kind": "random_rmw"}
      ]}
    ]},
    {"cores": [2], "generator": "zipf", "region": "table",
     "accesses": 800, "hot_fraction": 0.2, "store_fraction": 0.1}
  ]
})";

TEST(ScenarioParse, ParsesAndInstantiates) {
  std::string err;
  const auto doc = raa::json::Value::parse(kScenarioDoc, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto s = Scenario::parse(*doc, &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->name, "t");
  EXPECT_EQ(s->seed, 5u);
  EXPECT_EQ(s->config.tiles, 4u);
  EXPECT_EQ(s->hierarchy_modes().size(), 2u);
  Workload w = s->instantiate();
  ASSERT_EQ(w.programs.size(), 4u);  // core 3 idles
  ASSERT_EQ(w.regions.size(), 2u);
  EXPECT_EQ(w.regions[0].bytes, 4u * 2048);
  EXPECT_EQ(w.regions[1].bytes, 8192u);
  Access acc;
  EXPECT_FALSE(w.programs[3]->next(acc));  // unclaimed core: empty program

  // Deterministic: two instantiations produce identical streams.
  Workload w2 = s->instantiate();
  for (unsigned c = 0; c < 3; ++c)
    EXPECT_TRUE(same_accesses(drain(*w.programs[c], 33),
                              drain(*w2.programs[c], 65)));
}

TEST(ScenarioParse, ReportsActionableErrors) {
  const auto expect_error = [](const std::string& doc,
                               const std::string& fragment) {
    std::string err;
    const auto v = raa::json::Value::parse(doc, &err);
    ASSERT_TRUE(v.has_value()) << err;
    const auto s = Scenario::parse(*v, &err);
    EXPECT_FALSE(s.has_value()) << "accepted: " << doc;
    EXPECT_NE(err.find(fragment), std::string::npos)
        << "error was: " << err << "\nexpected fragment: " << fragment;
  };
  const std::string base =
      R"("regions": [{"name": "r", "bytes": 4096, "class": "strided"}])";

  expect_error(R"({"mode": "hybrid"})", "missing required key \"name\"");
  expect_error(R"({"name": "t", "typo": 1})", "scenario.typo: unknown key");
  expect_error(R"({"name": "t", "mode": "fast"})", "unknown mode 'fast'");
  expect_error(R"({"name": "t", "config": {"tiles": 8}, )" + base +
                   R"(, "programs": []})",
               "mesh_x * mesh_y");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "memory": {"banked": {"mapping": "hash"}},
                   "programs": []})",
               "unknown mapping 'hash' (want block or xor)");
  expect_error(
      R"({"name": "t", "regions": [{"name": "r", "class": "strided"}]})",
      "exactly one of \"bytes\" or \"bytes_per_core\"");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "zipf",
                       "region": "nope", "accesses": 10}]})",
               "unknown region 'nope'");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "warp"}]})",
               "unknown generator 'warp'");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [
        {"generator": "zipf", "region": "r", "accesses": 10},
        {"cores": [1], "generator": "zipf", "region": "r", "accesses": 10}
      ]})",
               "already claimed by programs[0]");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "scripted", "phases": [
        {"iterations": 1024, "streams": [
          {"region": "r", "kind": "linear", "stride": 8}]}]}]})",
               "runs past its 4096-byte window");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "zipf", "region": "r",
                       "accesses": 10, "slice": "core"}]})",
               "requires a bytes_per_core region");
  // Giant strides must not wrap uint64 past the bounds check.
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "scripted", "phases": [
        {"iterations": 2049, "streams": [
          {"region": "r", "kind": "linear",
           "stride": 9007199254740992}]}]}]})",
               "runs past its 4096-byte window");
  expect_error(R"({"name": "t", )" + base +
                   R"(, "programs": [{"generator": "scripted", "phases": [
        {"iterations": 1, "streams": [
          {"region": "r", "kind": "linear", "start": 4096}]}]}]})",
               "beyond the 4096-byte window");
  // Strided per-core slices must tile whole DMA chunks (the SPM
  // no-overlap contract would abort mid-run otherwise).
  expect_error(
      R"({"name": "t", "regions": [
        {"name": "r", "bytes_per_core": 6144, "class": "strided"}],
        "programs": [{"generator": "scripted", "phases": [
          {"iterations": 8, "streams": [
            {"region": "r", "kind": "linear", "stride": 8}]}]}]})",
      "multiple of dma_chunk_bytes");
}

TEST(ScenarioParse, LoadFileReportsLineAndColumnForSyntaxErrors) {
  const std::string path = temp_path("bad_scenario.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\n  \"name\": \"x\",\n  \"name\": \"y\"\n}\n", f);
  std::fclose(f);
  std::string err;
  EXPECT_FALSE(Scenario::load_file(path, &err).has_value());
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate object key \"name\""), std::string::npos)
      << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

// --------------------------------------------------------------------------
// Trace record / replay
// --------------------------------------------------------------------------

TEST(TraceRoundTrip, ReplayReproducesMetricsSerialAndSharded) {
  const SystemConfig cfg = small_cfg();
  for (const auto mode :
       {HierarchyMode::cache_only, HierarchyMode::hybrid}) {
    // Record a ScriptedProgram run.
    Workload recorded_w = mixed_workload(cfg, 17);
    TraceData trace;
    raa::scen::record_workload(recorded_w, cfg, mode, trace);
    System sys{cfg, mode};
    const Metrics reference = sys.run(recorded_w);
    ASSERT_GT(reference.accesses, 0u);
    ASSERT_EQ(trace.cores.size(), cfg.tiles);

    const auto shared = std::make_shared<const TraceData>(std::move(trace));

    // Serial replay.
    {
      Workload w = raa::scen::make_replay_workload(shared);
      System replay_sys{cfg, mode};
      expect_metrics_equal(reference, replay_sys.run(w));
    }
    // Sharded replay (shards = 4).
    {
      Workload w = raa::scen::make_replay_workload(shared);
      System replay_sys{cfg, mode};
      expect_metrics_equal(
          reference, replay_sys.run(w, raa::mem::RunOptions{.shards = 4}));
    }
  }
}

TEST(TraceRoundTrip, RecordingUnderShardsCapturesTheSameTrace) {
  const SystemConfig cfg = small_cfg();
  Workload w1 = mixed_workload(cfg, 23);
  TraceData serial_trace;
  raa::scen::record_workload(w1, cfg, HierarchyMode::hybrid, serial_trace);
  System s1{cfg, HierarchyMode::hybrid};
  const Metrics m1 = s1.run(w1);

  Workload w2 = mixed_workload(cfg, 23);
  TraceData sharded_trace;
  raa::scen::record_workload(w2, cfg, HierarchyMode::hybrid, sharded_trace);
  System s2{cfg, HierarchyMode::hybrid};
  const Metrics m2 = s2.run(w2, raa::mem::RunOptions{.shards = 4});

  expect_metrics_equal(m1, m2);
  ASSERT_EQ(serial_trace.cores.size(), sharded_trace.cores.size());
  for (std::size_t c = 0; c < serial_trace.cores.size(); ++c) {
    EXPECT_EQ(serial_trace.cores[c].count, sharded_trace.cores[c].count);
    EXPECT_EQ(serial_trace.cores[c].bytes, sharded_trace.cores[c].bytes);
  }
}

TEST(TraceRoundTrip, FileRoundTripPreservesEverything) {
  const SystemConfig cfg = small_cfg();
  Workload w = mixed_workload(cfg, 31);
  TraceData trace;
  raa::scen::record_workload(w, cfg, HierarchyMode::hybrid, trace);
  System sys{cfg, HierarchyMode::hybrid};
  const Metrics reference = sys.run(w);

  const std::string path = temp_path("roundtrip.raat");
  std::string err;
  ASSERT_TRUE(trace.write_file(path, &err)) << err;
  auto loaded = TraceData::read_file(path, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  EXPECT_EQ(loaded->mode, HierarchyMode::hybrid);
  EXPECT_EQ(loaded->name, "mixed");
  EXPECT_EQ(loaded->config.tiles, cfg.tiles);
  EXPECT_EQ(loaded->config.dma_chunk_bytes, cfg.dma_chunk_bytes);
  ASSERT_EQ(loaded->regions.size(), 2u);
  EXPECT_EQ(loaded->regions[0].name, "shared");
  EXPECT_EQ(loaded->regions[1].ref, RefClass::random_noalias);

  Workload replay = raa::scen::make_replay_workload(
      std::make_shared<const TraceData>(std::move(*loaded)));
  System replay_sys{cfg, HierarchyMode::hybrid};
  expect_metrics_equal(reference, replay_sys.run(replay));
}

TEST(TraceRoundTrip, ReadRejectsCorruptFiles) {
  const std::string path = temp_path("corrupt.raat");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace", f);
  std::fclose(f);
  std::string err;
  EXPECT_FALSE(TraceData::read_file(path, &err).has_value());
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
  EXPECT_FALSE(TraceData::read_file(temp_path("missing.raat"), &err)
                   .has_value());
}

TEST(TraceRoundTrip, ReadRejectsInsaneConfigs) {
  // A structurally valid file whose config would divide by zero inside
  // System must fail at read time, not crash at run time.
  TraceData t;
  t.config = small_cfg();
  t.config.line_bytes = 0;
  t.cores.resize(t.config.tiles);
  const std::string path = temp_path("badcfg.raat");
  std::string err;
  ASSERT_TRUE(t.write_file(path, &err)) << err;
  EXPECT_FALSE(TraceData::read_file(path, &err).has_value());
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;

  TraceData t2;
  t2.config = small_cfg();
  t2.cores.resize(t2.config.tiles + 1);  // stream count != tiles
  ASSERT_TRUE(t2.write_file(path, &err)) << err;
  EXPECT_FALSE(TraceData::read_file(path, &err).has_value());
  EXPECT_NE(err.find("does not match config tiles"), std::string::npos)
      << err;
}

// --------------------------------------------------------------------------
// End to end: scenario -> run, shards=1 vs shards=4
// --------------------------------------------------------------------------

TEST(ScenarioRun, ShardsOneAndFourAreFieldIdentical) {
  std::string err;
  const auto doc = raa::json::Value::parse(kScenarioDoc, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto s = Scenario::parse(*doc, &err);
  ASSERT_TRUE(s.has_value()) << err;
  for (const HierarchyMode mode : s->hierarchy_modes()) {
    Workload w1 = s->instantiate();
    System sys1{s->config, mode};
    const Metrics m1 = sys1.run(w1, raa::mem::RunOptions{.shards = 1});
    ASSERT_GT(m1.accesses, 0u);
    Workload w4 = s->instantiate();
    System sys4{s->config, mode};
    expect_metrics_equal(m1,
                         sys4.run(w4, raa::mem::RunOptions{.shards = 4}));
  }
}

}  // namespace
