// Tests for criticality analysis and the RSU / software-DVFS governors:
// turbo for critical tasks, power-budget enforcement, serialization cost of
// the software mechanism, and the end-to-end §3.1 study harness.
#include <gtest/gtest.h>

#include "rsu/criticality.hpp"
#include "rsu/rsu.hpp"
#include "runtime/graph.hpp"
#include "simcore/tdg_sim.hpp"

namespace {

using raa::rsu::critical_tasks;
using raa::rsu::critical_work_fraction;
using raa::rsu::CriticalityGovernor;
using raa::rsu::rsu_hardware;
using raa::rsu::run_criticality_study;
using raa::rsu::software_dvfs;
using raa::sim::MachineConfig;
using raa::sim::replay;
using raa::tdg::Graph;
using raa::tdg::Synthetic;

Graph diamond() {
  Graph g;
  const auto a = g.add_node(1.0, "a");
  const auto b = g.add_node(2.0, "b");
  const auto c = g.add_node(5.0, "c");
  const auto d = g.add_node(1.0, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(Criticality, MarksLongestPathOnly) {
  const auto mask = critical_tasks(diamond(), 0.0);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(mask[3]);
}

TEST(Criticality, SlackWidensTheBand) {
  // b's path length is 4 of cp 7; slack >= 3/7 marks it too.
  const auto tight = critical_tasks(diamond(), 0.20);
  EXPECT_FALSE(tight[1]);
  const auto loose = critical_tasks(diamond(), 0.45);
  EXPECT_TRUE(loose[1]);
}

TEST(Criticality, ProgrammerHintIncluded) {
  Graph g = diamond();
  g.node(1).critical_hint = true;
  const auto with_hint = critical_tasks(g, 0.0, true);
  EXPECT_TRUE(with_hint[1]);
  const auto without = critical_tasks(g, 0.0, false);
  EXPECT_FALSE(without[1]);
}

TEST(Criticality, WorkFraction) {
  const Graph g = diamond();
  const auto mask = critical_tasks(g, 0.0);
  EXPECT_NEAR(critical_work_fraction(g, mask), 7.0 / 9.0, 1e-12);
}

TEST(Criticality, ChainIsFullyCritical) {
  const auto g = Synthetic::chain(5, 2.0);
  const auto mask = critical_tasks(g, 0.0);
  for (const bool m : mask) EXPECT_TRUE(m);
}

TEST(Governor, CriticalTasksGetTurboOthersLow) {
  const Graph g = diamond();
  // Generous budget: this test checks the frequency *policy* in isolation.
  MachineConfig m{.cores = 2, .power_budget_w = 1000.0};
  CriticalityGovernor gov{{.slack_fraction = 0.0, .reconfig = rsu_hardware()}};
  const auto r = replay(g, m, raa::sim::priority_bottom_level(), &gov);
  // a, c, d critical -> 2.4 GHz; b non-critical -> 1.6 GHz (one below nominal)
  EXPECT_DOUBLE_EQ(r.timeline[0].op.freq_ghz, 2.4);
  EXPECT_DOUBLE_EQ(r.timeline[1].op.freq_ghz, 1.6);
  EXPECT_DOUBLE_EQ(r.timeline[2].op.freq_ghz, 2.4);
  EXPECT_DOUBLE_EQ(r.timeline[3].op.freq_ghz, 2.4);
}

TEST(Governor, PowerBudgetDegradesSecondTurbo) {
  // Two independent critical tasks on 2 cores with a budget that fits one
  // turbo + one lowest-point core only.
  Graph g;
  g.add_node(100.0, "t0", true);
  g.add_node(100.0, "t1", true);
  MachineConfig m{.cores = 2};
  const double turbo_w = m.power.busy_w(m.dvfs.highest());
  const double lowest_w = m.power.busy_w(m.dvfs.lowest());
  m.power_budget_w = turbo_w + lowest_w + 0.01;

  CriticalityGovernor gov{{.slack_fraction = 0.0, .reconfig = rsu_hardware()}};
  const auto r = replay(g, m, raa::sim::priority_fifo(), &gov);
  EXPECT_DOUBLE_EQ(r.timeline[0].op.freq_ghz, 2.4);
  EXPECT_DOUBLE_EQ(r.timeline[1].op.freq_ghz, 0.8);
  EXPECT_GE(gov.budget_denials(), 1u);
}

TEST(Governor, BudgetNeverUpgradesNonCritical) {
  // Non-critical tasks ask for `low`; even with budget to spare they must
  // not be granted more than requested.
  const auto g = Synthetic::fork_join(6, 10.0, 1000.0);
  MachineConfig m{.cores = 4};
  CriticalityGovernor gov{{.slack_fraction = 0.0}};
  const auto r = replay(g, m, raa::sim::priority_bottom_level(), &gov);
  for (const auto& p : r.timeline) {
    if (!gov.critical_mask()[p.task]) {
      EXPECT_LE(p.op.freq_ghz, 1.6);
    }
  }
}

TEST(Governor, SoftwareMechanismSerializesSwitches) {
  // Wide fork-join: many cores switch "simultaneously"; the software path
  // must queue them while the RSU path does not.
  const auto g = Synthetic::fork_join(32, 1000.0, 10.0);
  MachineConfig m{.cores = 32};

  CriticalityGovernor sw{{.slack_fraction = 0.0, .reconfig = software_dvfs()}};
  const auto r_sw = replay(g, m, raa::sim::priority_bottom_level(), &sw);

  CriticalityGovernor hw{{.slack_fraction = 0.0, .reconfig = rsu_hardware()}};
  const auto r_hw = replay(g, m, raa::sim::priority_bottom_level(), &hw);

  EXPECT_GT(sw.reconfig_stall_ns(), hw.reconfig_stall_ns() * 5.0);
  EXPECT_GE(r_sw.makespan_ns, r_hw.makespan_ns);
}

TEST(Governor, SoftwareOverheadGrowsWithCores) {
  // The §3.1 scaling claim: per-switch effective cost rises with core count
  // under the software mechanism.
  double prev_stall_per_switch = 0.0;
  for (const unsigned cores : {8u, 32u, 128u}) {
    const auto g = Synthetic::fork_join(cores, 2000.0, 10.0);
    MachineConfig m{.cores = cores};
    CriticalityGovernor sw{
        {.slack_fraction = 0.0, .reconfig = software_dvfs()}};
    (void)replay(g, m, raa::sim::priority_bottom_level(), &sw);
    const double per_switch =
        sw.reconfig_stall_ns() / std::max<double>(1.0, static_cast<double>(
            sw.reconfig_count()));
    EXPECT_GT(per_switch, prev_stall_per_switch);
    prev_stall_per_switch = per_switch;
  }
}

TEST(Study, CholeskyOnManycoreImprovesPerfAndEdp) {
  // The headline §3.1 configuration class: a dependency-rich,
  // critical-path-bound TDG on a 32-core machine with realistic task sizes
  // (~500 us). The criticality-aware RSU configuration must beat the static
  // baseline on both makespan and EDP.
  const auto g = Synthetic::cholesky(8, 1.0e6);
  MachineConfig m{.cores = 32};
  const auto study = run_criticality_study(g, m, 0.05);
  EXPECT_GT(study.perf_improvement_rsu(), 0.0);
  EXPECT_GT(study.edp_improvement_rsu(), 0.05);
  // The RSU mechanism is at least as good as software DVFS.
  EXPECT_LE(study.cats_rsu.makespan_ns,
            study.cats_sw.makespan_ns * (1.0 + 1e-9));
}

TEST(Study, ResultRatiosConsistent) {
  const auto g = Synthetic::layered_random(20, 48, 3, 500.0, 3000.0, 42);
  MachineConfig m{.cores = 32};
  const auto study = run_criticality_study(g, m, 0.05);
  const double perf = study.perf_improvement_rsu();
  EXPECT_NEAR(study.fifo_nominal.makespan_ns,
              study.cats_rsu.makespan_ns * (1.0 + perf), 1e-6);
}

TEST(Governor, MaskMatchesGraphAnalysis) {
  const auto g = Synthetic::cholesky(6);
  MachineConfig m{.cores = 8};
  CriticalityGovernor gov{{.slack_fraction = 0.0}};
  (void)replay(g, m, raa::sim::priority_bottom_level(), &gov);
  EXPECT_EQ(gov.critical_mask(), critical_tasks(g, 0.0));
}

}  // namespace
