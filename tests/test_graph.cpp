// Tests for the Task Dependency Graph: topological order, bottom/top levels,
// critical-path analyses and the synthetic graph builders used by the §3.1
// experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "runtime/graph.hpp"

namespace {

using raa::tdg::Graph;
using raa::tdg::NodeId;
using raa::tdg::Synthetic;

Graph diamond() {
  // a(1) -> b(2), c(5); b,c -> d(1).  Critical path: a-c-d = 7.
  Graph g;
  const auto a = g.add_node(1.0, "a");
  const auto b = g.add_node(2.0, "b");
  const auto c = g.add_node(5.0, "c");
  const auto d = g.add_node(1.0, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(Graph, CountsNodesAndEdges) {
  const Graph g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_DOUBLE_EQ(g.total_cost(), 9.0);
}

TEST(Graph, TopoOrderRespectsEdges) {
  const Graph g = diamond();
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId v = 0; v < 4; ++v)
    for (const NodeId s : g.successors(v)) EXPECT_LT(pos[v], pos[s]);
}

TEST(Graph, CriticalPathOfDiamond) {
  const Graph g = diamond();
  EXPECT_DOUBLE_EQ(g.critical_path_length(), 7.0);
  const auto path = g.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);  // a
  EXPECT_EQ(path[1], 2u);  // c
  EXPECT_EQ(path[2], 3u);  // d
}

TEST(Graph, CriticalNodesMarksOnlyLongestPath) {
  const Graph g = diamond();
  const auto crit = g.critical_nodes();
  EXPECT_TRUE(crit[0]);
  EXPECT_FALSE(crit[1]);  // b is slack
  EXPECT_TRUE(crit[2]);
  EXPECT_TRUE(crit[3]);
}

TEST(Graph, BottomAndTopLevels) {
  const Graph g = diamond();
  const auto b = g.bottom_levels();
  EXPECT_DOUBLE_EQ(b[3], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
  EXPECT_DOUBLE_EQ(b[2], 6.0);
  EXPECT_DOUBLE_EQ(b[0], 7.0);
  const auto t = g.top_levels();
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 1.0);
  EXPECT_DOUBLE_EQ(t[2], 1.0);
  EXPECT_DOUBLE_EQ(t[3], 6.0);
}

TEST(Graph, ParallelismOfForkJoin) {
  const Graph g = Synthetic::fork_join(10, 5.0, 1.0);
  // total = 2*1 + 10*5 = 52; cp = 1 + 5 + 1 = 7.
  EXPECT_DOUBLE_EQ(g.total_cost(), 52.0);
  EXPECT_DOUBLE_EQ(g.critical_path_length(), 7.0);
  EXPECT_NEAR(g.parallelism(), 52.0 / 7.0, 1e-12);
}

TEST(Graph, CycleDetection) {
  Graph g;
  const auto a = g.add_node(1.0);
  const auto b = g.add_node(1.0);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.topo_order(), std::logic_error);
}

TEST(Graph, SelfEdgeRejected) {
  Graph g;
  const auto a = g.add_node(1.0);
  EXPECT_THROW(g.add_edge(a, a), std::logic_error);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  Graph g;
  g.add_node(1.0);
  EXPECT_THROW(g.add_edge(0, 5), std::logic_error);
}

TEST(Graph, EmptyGraphAnalyses) {
  const Graph g;
  EXPECT_DOUBLE_EQ(g.critical_path_length(), 0.0);
  EXPECT_TRUE(g.critical_path().empty());
  EXPECT_DOUBLE_EQ(g.parallelism(), 0.0);
}

TEST(Graph, DotContainsAllNodes) {
  const Graph g = diamond();
  const std::string dot = g.to_dot();
  for (const char* name : {"\"a", "\"b", "\"c", "\"d"})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Synthetic, ChainCriticalPathEqualsTotal) {
  const Graph g = Synthetic::chain(20, 2.0);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.edge_count(), 19u);
  EXPECT_DOUBLE_EQ(g.critical_path_length(), 40.0);
  EXPECT_DOUBLE_EQ(g.parallelism(), 1.0);
}

TEST(Synthetic, CholeskyTaskCounts) {
  // For t tiles: potrf = t, trsm = t(t-1)/2, syrk = t(t-1)/2,
  // gemm = t(t-1)(t-2)/6.
  const std::size_t t = 5;
  const Graph g = Synthetic::cholesky(t);
  const std::size_t expected =
      t + t * (t - 1) / 2 + t * (t - 1) / 2 + t * (t - 1) * (t - 2) / 6;
  EXPECT_EQ(g.node_count(), expected);
  EXPECT_NO_THROW(g.topo_order());
  EXPECT_GT(g.parallelism(), 1.5);  // Cholesky has real task parallelism
}

TEST(Synthetic, CholeskyPotrfChainOrdered) {
  const Graph g = Synthetic::cholesky(4);
  // potrf_k must precede potrf_{k+1} transitively; check via topo position.
  const auto order = g.topo_order();
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::vector<std::size_t> potrf_pos;
  for (const auto& n : g.nodes())
    if (n.label.rfind("potrf", 0) == 0) potrf_pos.push_back(pos[n.id]);
  ASSERT_EQ(potrf_pos.size(), 4u);
  EXPECT_TRUE(std::is_sorted(potrf_pos.begin(), potrf_pos.end()));
}

TEST(Synthetic, LayeredRandomDeterministic) {
  const Graph a = Synthetic::layered_random(6, 8, 3, 1.0, 4.0, 99);
  const Graph b = Synthetic::layered_random(6, 8, 3, 1.0, 4.0, 99);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(a.node(v).cost, b.node(v).cost);
    EXPECT_EQ(a.successors(v), b.successors(v));
  }
}

TEST(Synthetic, LayeredRandomEdgesOnlyBetweenAdjacentLayers) {
  const std::size_t layers = 5, width = 4;
  const Graph g = Synthetic::layered_random(layers, width, 2, 1.0, 2.0, 7);
  ASSERT_EQ(g.node_count(), layers * width);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::size_t lv = v / width;
    for (const NodeId s : g.successors(v)) EXPECT_EQ(s / width, lv + 1);
  }
}

TEST(Synthetic, PipelineWavefront) {
  const Graph g = Synthetic::pipeline(3, 4, 1.0);
  EXPECT_EQ(g.node_count(), 12u);
  // cp = frames + stages - 1 steps of cost 1.
  EXPECT_DOUBLE_EQ(g.critical_path_length(), 6.0);
}

TEST(Synthetic, ForkJoinDegrees) {
  const Graph g = Synthetic::fork_join(6, 2.0, 1.0);
  EXPECT_EQ(g.successors(0).size(), 6u);   // fork
  EXPECT_EQ(g.predecessors(1).size(), 6u); // join
}

}  // namespace
