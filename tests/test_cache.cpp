// Unit tests for the set-associative cache model: set mapping, LRU order,
// eviction/dirty victims, index_shift for banked caches.
#include <gtest/gtest.h>

#include "memsim/cache.hpp"

namespace {

using raa::mem::Cache;
using raa::mem::LineState;

constexpr unsigned kLine = 64;

TEST(Cache, Geometry) {
  const Cache c{8 * 1024, 4, kLine};
  EXPECT_EQ(c.sets(), 32u);
  EXPECT_EQ(c.assoc(), 4u);
}

TEST(Cache, MissThenHit) {
  Cache c{1024, 2, kLine};
  EXPECT_EQ(c.access(0), LineState::invalid);
  c.insert(0, LineState::shared, 7);
  EXPECT_EQ(c.access(0), LineState::shared);
  EXPECT_EQ(c.value(0), 7u);
}

TEST(Cache, SameSetConflictEvictsLru) {
  // 1 KiB, 2-way, 64B lines -> 8 sets. Lines 0, 8*64, 16*64 share set 0.
  Cache c{1024, 2, kLine};
  const std::uint64_t a = 0, b = 8 * kLine, d = 16 * kLine;
  c.insert(a, LineState::shared, 1);
  c.insert(b, LineState::shared, 2);
  c.access(a);  // make b the LRU
  const auto victim = c.insert(d, LineState::shared, 3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, b);
  EXPECT_FALSE(victim->dirty);
  EXPECT_TRUE(c.contains(a));
  EXPECT_TRUE(c.contains(d));
  EXPECT_FALSE(c.contains(b));
}

TEST(Cache, DirtyVictimCarriesValue) {
  Cache c{1024, 2, kLine};
  c.insert(0, LineState::modified, 42);
  c.insert(8 * kLine, LineState::shared, 1);
  const auto victim = c.insert(16 * kLine, LineState::shared, 2);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 0u);
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(victim->value, 42u);
}

TEST(Cache, InsertPrefersInvalidWay) {
  Cache c{1024, 2, kLine};
  c.insert(0, LineState::shared, 1);
  // Second way of the set is free; no victim.
  EXPECT_FALSE(c.insert(8 * kLine, LineState::shared, 2).has_value());
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c{1024, 2, kLine};
  c.insert(0, LineState::modified, 9);
  const auto dropped = c.invalidate(0);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_TRUE(dropped->dirty);
  EXPECT_EQ(dropped->value, 9u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.invalidate(0).has_value());  // idempotent
}

TEST(Cache, StateTransitions) {
  Cache c{1024, 2, kLine};
  c.insert(0, LineState::shared, 1);
  c.set_state(0, LineState::modified);
  EXPECT_EQ(c.state(0), LineState::modified);
  c.set_value(0, 5);
  EXPECT_EQ(c.value(0), 5u);
}

TEST(Cache, OccupancyTracksResidentLines) {
  Cache c{1024, 2, kLine};
  EXPECT_EQ(c.occupancy(), 0u);
  c.insert(0, LineState::shared, 0);
  c.insert(64, LineState::shared, 0);
  EXPECT_EQ(c.occupancy(), 2u);
  c.invalidate(0);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, HashedIndexSpreadsStridedLines) {
  // A bank that only sees every 8th line (stride == set count): without
  // hashing everything aliases into set 0 (2-way keeps only 2 of 16 lines);
  // with index hashing the lines spread across sets.
  Cache flat{1024, 2, kLine, /*hashed_index=*/false};
  Cache hashed{1024, 2, kLine, /*hashed_index=*/true};
  for (std::uint64_t i = 0; i < 16; ++i) {
    flat.insert(i * 8 * kLine, LineState::shared, i);
    hashed.insert(i * 8 * kLine, LineState::shared, i);
  }
  EXPECT_EQ(flat.occupancy(), 2u);
  EXPECT_GT(hashed.occupancy(), 8u);
}

TEST(Cache, FullAssocSweepParam) {
  for (const unsigned assoc : {1u, 2u, 4u, 8u}) {
    Cache c{4096, assoc, kLine};
    const unsigned sets = c.sets();
    // Fill one set completely, then one more insert must evict.
    for (unsigned i = 0; i < assoc; ++i)
      c.insert(static_cast<std::uint64_t>(i) * sets * kLine,
               LineState::shared, i);
    const auto victim = c.insert(
        static_cast<std::uint64_t>(assoc) * sets * kLine, LineState::shared,
        99);
    EXPECT_TRUE(victim.has_value()) << "assoc=" << assoc;
    EXPECT_EQ(victim->line_addr, 0u) << "LRU should be the first insert";
  }
}

}  // namespace
