// Work-stealing executor tests (exec/wsq.hpp, exec/stealing.hpp) and the
// StealEquivalence determinism contract.
//
//  * WorkStealingDeque: owner LIFO / thief FIFO semantics, ring growth,
//    and owner/thief interleaving stress — spawn storms, steal-all
//    drains, and the single-element pop-vs-steal race (exactly one side
//    may win, nothing is ever lost or duplicated).
//  * Notifier / StealingExecutor: parked workers wake on submission,
//    nested submits from inside workers (owner-deque pushes) all run.
//  * Runtime nested spawn: silent_async() children join implicitly at
//    body end, corun() joins cooperatively mid-body, recursive
//    divide-and-conquer (fib) is correct across policies/worker counts.
//  * StealEquivalence: the captured TDG — and every simulated metric
//    raa::sim::replay derives from it (the fig5/ablation_scheduler
//    pipeline) — is field-identical no matter how many host workers or
//    which scheduling policy executed the tasks. Host scheduling decides
//    wall-clock only; simulated numbers must not move.
//
// Stress iteration counts scale with RAA_STRESS_ITERS (see the
// stealing_stress CTest entry in tests/CMakeLists.txt, run under TSan
// in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "apps/miniapps.hpp"
#include "exec/stealing.hpp"
#include "exec/wsq.hpp"
#include "runtime/runtime.hpp"
#include "simcore/tdg_sim.hpp"

namespace {

using raa::exec::StealingExecutor;
using raa::exec::WorkStealingDeque;
using raa::rt::Runtime;
using raa::rt::RuntimeOptions;
using raa::rt::SchedulerPolicy;

/// Stress budget: RAA_STRESS_ITERS overrides (the stealing-stress CTest
/// entry raises it; plain tier1 runs stay fast).
unsigned stress_iters(unsigned dflt) {
  if (const char* s = std::getenv("RAA_STRESS_ITERS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return dflt;
}

void spin_until(const std::function<bool()>& pred) {
  while (!pred()) std::this_thread::yield();
}

// --- WorkStealingDeque ----------------------------------------------------

TEST(WorkStealingDeque, OwnerPopsLifoThievesStealFifo) {
  int vals[6] = {0, 1, 2, 3, 4, 5};
  WorkStealingDeque<int*> dq;
  EXPECT_TRUE(dq.empty());
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);

  for (int& v : vals) dq.push(&v);
  EXPECT_EQ(dq.size(), 6);
  EXPECT_EQ(*dq.pop(), 5);      // owner side: newest first
  EXPECT_EQ(*dq.steal(), 0);    // thief side: oldest first
  EXPECT_EQ(*dq.steal(), 1);
  EXPECT_EQ(*dq.pop(), 4);
  EXPECT_EQ(*dq.pop(), 3);
  EXPECT_EQ(*dq.pop(), 2);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_TRUE(dq.empty());
}

TEST(WorkStealingDeque, GrowsPastInitialCapacityWithoutLoss) {
  const int n = 1000;
  std::vector<int> vals(n);
  std::iota(vals.begin(), vals.end(), 0);
  WorkStealingDeque<int*> dq{2};  // force repeated doubling
  EXPECT_EQ(dq.capacity(), 2);
  for (int& v : vals) dq.push(&v);
  EXPECT_GE(dq.capacity(), n);
  for (int i = n - 1; i >= 0; --i) {
    int* p = dq.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);  // LIFO, contents intact across growth
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

// Spawn storm: the owner pushes (and occasionally pops) while thieves
// steal everything they can. Every item must be consumed exactly once.
TEST(WorkStealingDeque, OwnerThiefInterleavingStress) {
  const unsigned n = stress_iters(20000);
  const unsigned kThieves = 3;
  std::vector<int> items(n);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::atomic<int>> seen(n);
  std::atomic<unsigned> consumed{0};

  WorkStealingDeque<int*> dq{4};  // small: growth under contention
  const auto consume = [&](int* p) {
    seen[static_cast<unsigned>(*p)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::jthread> thieves;
  for (unsigned t = 0; t < kThieves; ++t)
    thieves.emplace_back([&] {
      while (consumed.load(std::memory_order_relaxed) < n) {
        if (int* p = dq.steal())
          consume(p);
        else
          std::this_thread::yield();
      }
    });

  // Owner: push all, popping every few pushes (interleaves the bottom
  // index against in-flight steals), then drain.
  for (unsigned i = 0; i < n; ++i) {
    dq.push(&items[i]);
    if (i % 5 == 4) {
      if (int* p = dq.pop()) consume(p);
    }
  }
  while (consumed.load(std::memory_order_relaxed) < n) {
    if (int* p = dq.pop())
      consume(p);
    else
      std::this_thread::yield();
  }
  thieves.clear();  // join

  EXPECT_EQ(consumed.load(), n);
  for (unsigned i = 0; i < n; ++i)
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  EXPECT_TRUE(dq.empty());
}

// The classic Chase–Lev hazard: one element left, owner pop races a
// thief steal. Exactly one side must win every round.
TEST(WorkStealingDeque, SingleElementPopStealRace) {
  const unsigned rounds = stress_iters(20000) / 40;  // default 500
  WorkStealingDeque<int*> dq;
  int x = 42;
  unsigned owner_wins = 0;
  std::atomic<unsigned> thief_wins{0};
  std::barrier<> sync{2};

  std::jthread thief([&] {
    for (unsigned r = 0; r < rounds; ++r) {
      sync.arrive_and_wait();  // item is in
      if (dq.steal() != nullptr) thief_wins.fetch_add(1);
      sync.arrive_and_wait();  // round settled
    }
  });
  for (unsigned r = 0; r < rounds; ++r) {
    dq.push(&x);
    sync.arrive_and_wait();
    if (dq.pop() != nullptr) ++owner_wins;
    sync.arrive_and_wait();
    ASSERT_TRUE(dq.empty());
  }
  thief.join();
  EXPECT_EQ(owner_wins + thief_wins.load(), rounds);
}

// --- Notifier -------------------------------------------------------------

TEST(Notifier, TwoPhaseParkWakesOnNotify) {
  raa::exec::Notifier n;
  std::atomic<bool> flag{false};
  std::atomic<bool> parked_once{false};
  std::jthread consumer([&] {
    for (;;) {
      if (flag.load(std::memory_order_acquire)) return;
      const std::uint64_t e = n.prepare_wait();
      if (flag.load(std::memory_order_acquire)) {  // re-check after announce
        n.cancel_wait();
        return;
      }
      parked_once.store(true, std::memory_order_release);
      n.commit_wait(e);
    }
  });
  spin_until([&] { return parked_once.load(std::memory_order_acquire); });
  flag.store(true, std::memory_order_release);
  n.notify_one();  // a lost wakeup here would hang the join below
  consumer.join();
}

// --- StealingExecutor -----------------------------------------------------

TEST(StealingExecutor, RunsEverySubmittedItemExactlyOnce) {
  const unsigned n = stress_iters(20000) / 2;
  std::vector<std::atomic<int>> ran(n);
  std::atomic<unsigned> done{0};
  StealingExecutor ex{
      {.num_workers = 4, .seed = 9},
      [&](void* item, unsigned worker) {
        ASSERT_LT(worker, 4u);  // items only run on worker threads here
        const auto idx = reinterpret_cast<std::uintptr_t>(item) - 1;
        ran[idx].fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
      }};
  for (std::uintptr_t i = 0; i < n; ++i)
    ex.submit(reinterpret_cast<void*>(i + 1), ex.num_workers());
  spin_until([&] { return done.load(std::memory_order_relaxed) >= n; });
  ex.shutdown();
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
  EXPECT_LE(ex.steal_count(), static_cast<std::uint64_t>(n));
}

// Spawn storm from inside the workers: every item of depth d submits two
// of depth d-1 through the owner-deque fast path; the full binary tree
// must run. Exercises push/pop/steal under real worker contention.
TEST(StealingExecutor, NestedSubmitsFromWorkersAllRun) {
  const unsigned depth = 11;  // 2^12 - 1 = 4095 items
  std::atomic<std::uint64_t> executed{0};
  StealingExecutor* self = nullptr;
  StealingExecutor ex{
      {.num_workers = 3, .seed = 11},
      [&](void* item, unsigned worker) {
        executed.fetch_add(1, std::memory_order_relaxed);
        const auto d = reinterpret_cast<std::uintptr_t>(item) - 1;
        if (d > 0) {
          self->submit(reinterpret_cast<void*>(d), worker);
          self->submit(reinterpret_cast<void*>(d), worker);
        }
      }};
  self = &ex;
  ex.submit(reinterpret_cast<void*>(std::uintptr_t{depth} + 1),
            ex.num_workers());
  const std::uint64_t expected = (std::uint64_t{1} << (depth + 1)) - 1;
  spin_until(
      [&] { return executed.load(std::memory_order_relaxed) >= expected; });
  ex.shutdown();
  EXPECT_EQ(executed.load(), expected);
}

TEST(StealingExecutor, ExternalThreadTryPopHelps) {
  std::atomic<int> ran{0};
  StealingExecutor ex{{.num_workers = 0, .seed = 1},
                      [&](void*, unsigned) { ran.fetch_add(1); }};
  ex.submit(reinterpret_cast<void*>(std::uintptr_t{1}), 0);
  ex.submit(reinterpret_cast<void*>(std::uintptr_t{2}), 0);
  // No workers: the external thread drains through try_pop.
  void* a = ex.try_pop(ex.num_workers());
  void* b = ex.try_pop(ex.num_workers());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a), 2u);  // external side: LIFO
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b), 1u);
  EXPECT_EQ(ex.try_pop(ex.num_workers()), nullptr);
  EXPECT_EQ(ran.load(), 0);  // try_pop hands the item over, never runs it
}

// --- Runtime nested spawn (silent_async / corun) --------------------------

TEST(NestedSpawn, ImplicitJoinBeforeDependantsRun) {
  for (const unsigned workers : {0u, 4u}) {
    Runtime rt{{.num_workers = workers}};
    std::atomic<int> children_done{0};
    int observed = -1;
    double token = 0.0;
    rt.spawn({raa::rt::out(token)}, [&] {
      for (int i = 0; i < 64; ++i)
        rt.silent_async(
            [&] { children_done.fetch_add(1, std::memory_order_relaxed); });
      // No corun(): the runtime must join the children before releasing
      // the dependant below.
    });
    rt.spawn({raa::rt::in(token)}, [&] {
      observed = children_done.load(std::memory_order_relaxed);
    });
    rt.taskwait();
    EXPECT_EQ(observed, 64) << "workers=" << workers;
  }
}

TEST(NestedSpawn, CorunJoinsChildrenMidBody) {
  for (const unsigned workers : {0u, 2u}) {
    Runtime rt{{.num_workers = workers}};
    std::atomic<int> done{0};
    int after_corun = -1;
    int after_second = -1;
    rt.spawn([&] {
      for (int i = 0; i < 16; ++i)
        rt.silent_async([&] { done.fetch_add(1); });
      rt.corun();
      after_corun = done.load();
      for (int i = 0; i < 8; ++i)
        rt.silent_async([&] { done.fetch_add(1); });
      rt.corun();
      after_second = done.load();
    });
    rt.taskwait();
    EXPECT_EQ(after_corun, 16) << "workers=" << workers;
    EXPECT_EQ(after_second, 24) << "workers=" << workers;
  }
}

TEST(NestedSpawn, GrandchildrenJoinTransitively) {
  Runtime rt{{.num_workers = 2}};
  std::atomic<int> leaves{0};
  rt.spawn([&] {
    for (int i = 0; i < 4; ++i)
      rt.silent_async([&] {
        for (int j = 0; j < 4; ++j)
          rt.silent_async([&] { leaves.fetch_add(1); });
        // no corun: each child implicit-joins its own 4 leaves
      });
  });
  rt.taskwait();
  EXPECT_EQ(leaves.load(), 16);
}

TEST(NestedSpawn, DeepChainOfNestedJoins) {
  Runtime rt{{.num_workers = 1}};
  std::atomic<unsigned> depth_reached{0};
  std::function<void(unsigned)> descend = [&](unsigned d) {
    depth_reached.fetch_add(1);
    if (d > 0) {
      rt.silent_async([&, d] { descend(d - 1); });
      rt.corun();
    }
  };
  rt.spawn([&] { descend(64); });
  rt.taskwait();
  EXPECT_EQ(depth_reached.load(), 65u);
}

TEST(NestedSpawn, OutsideTaskBodyActsLikePlainSpawn) {
  Runtime rt{{.num_workers = 2}};
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) rt.silent_async([&] { ran.fetch_add(1); });
  rt.corun();  // outside a task body: equivalent to taskwait()
  EXPECT_EQ(ran.load(), 32);
  const auto st = rt.stats();
  EXPECT_EQ(st.tasks_spawned, 32u);
  EXPECT_EQ(st.tasks_executed, 32u);
}

std::uint64_t fib_reference(unsigned n) {
  return n < 2 ? n : fib_reference(n - 1) + fib_reference(n - 2);
}

std::uint64_t fib_nested(Runtime& rt, unsigned n) {
  if (n < 2) return n;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  rt.silent_async([&rt, &a, n] { a = fib_nested(rt, n - 1); });
  rt.silent_async([&rt, &b, n] { b = fib_nested(rt, n - 2); });
  rt.corun();
  return a + b;
}

TEST(NestedSpawn, RecursiveFibAcrossPoliciesAndWorkers) {
  const std::uint64_t want = fib_reference(14);  // 377; ~1200 tasks
  for (const auto policy :
       {SchedulerPolicy::work_stealing, SchedulerPolicy::fifo,
        SchedulerPolicy::lifo, SchedulerPolicy::criticality_first}) {
    for (const unsigned workers : {0u, 4u}) {
      Runtime rt{{.num_workers = workers, .policy = policy}};
      std::uint64_t got = 0;
      rt.spawn([&] { got = fib_nested(rt, 14); });
      rt.taskwait();
      EXPECT_EQ(got, want) << to_string(policy) << " workers=" << workers;
    }
  }
}

// --- StealEquivalence -----------------------------------------------------
//
// The contract this PR must not break: simulated metrics are a pure
// function of the captured TDG, and the captured TDG is a pure function
// of the spawn sequence (ids are assigned in spawn order, costs come
// from cost_hints, edges from the dependence registry) — never of which
// host worker ran what, how often work was stolen, or the policy.

/// A deterministic mixed DAG: chains, a reduction fan-in, independent
/// blocks, criticality annotations — spawned from the calling thread
/// with fixed cost hints.
raa::tdg::Graph captured_graph(unsigned workers, SchedulerPolicy policy) {
  Runtime rt{{.num_workers = workers, .policy = policy, .seed = 5}};
  std::vector<double> cell(8, 0.0);
  double acc = 0.0;
  // Stage 1: producers.
  for (int i = 0; i < 8; ++i)
    rt.spawn({raa::rt::out(cell[static_cast<unsigned>(i)])},
             [&cell, i] { cell[static_cast<unsigned>(i)] += i; },
             {.label = "p" + std::to_string(i),
              .cost_hint = 1.0e5 * (1 + i % 3)});
  // Stage 2: chain over cell[0] (serialized inout).
  for (int s = 0; s < 6; ++s)
    rt.spawn({raa::rt::inout(cell[0])}, [&cell] { cell[0] *= 1.5; },
             {.label = "chain" + std::to_string(s),
              .criticality = s % 2 ? raa::rt::Criticality::critical
                                   : raa::rt::Criticality::normal,
              .cost_hint = 2.0e5});
  // Stage 3: reduction reading everything.
  std::vector<raa::rt::Dep> deps;
  for (auto& c : cell) deps.push_back(raa::rt::in(c));
  deps.push_back(raa::rt::out(acc));
  rt.spawn(deps,
           [&] {
             for (const double c : cell) acc += c;
           },
           {.label = "reduce", .cost_hint = 5.0e5});
  // Stage 4: independent tail noise.
  for (int i = 0; i < 12; ++i)
    rt.spawn([] {}, {.label = "t" + std::to_string(i), .cost_hint = 4.0e4});
  rt.taskwait();
  return rt.graph();
}

void expect_graphs_identical(const raa::tdg::Graph& a,
                             const raa::tdg::Graph& b,
                             const std::string& what) {
  ASSERT_EQ(a.node_count(), b.node_count()) << what;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << what;
  for (raa::tdg::NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.node(v).cost, b.node(v).cost) << what << " node " << v;
    EXPECT_EQ(a.node(v).label, b.node(v).label) << what << " node " << v;
    EXPECT_EQ(a.node(v).critical_hint, b.node(v).critical_hint)
        << what << " node " << v;
    EXPECT_EQ(a.successors(v), b.successors(v)) << what << " node " << v;
  }
}

void expect_replays_identical(const raa::tdg::Graph& a,
                              const raa::tdg::Graph& b,
                              const std::string& what) {
  for (const unsigned cores : {8u, 16u, 32u}) {
    const raa::sim::MachineConfig m{.cores = cores};
    for (const bool blevel : {false, true}) {
      const auto prio = blevel ? raa::sim::priority_bottom_level()
                               : raa::sim::priority_fifo();
      const auto ra = raa::sim::replay(a, m, prio);
      const auto rb = raa::sim::replay(b, m, prio);
      const std::string ctx =
          what + " cores=" + std::to_string(cores) +
          (blevel ? " blevel" : " fifo");
      // Exact equality, not tolerance: these are the gated simulated
      // metrics, and host scheduling must be invisible to them.
      EXPECT_EQ(ra.makespan_ns, rb.makespan_ns) << ctx;
      EXPECT_EQ(ra.energy_j, rb.energy_j) << ctx;
      EXPECT_EQ(ra.busy_ns, rb.busy_ns) << ctx;
      EXPECT_EQ(ra.stall_ns, rb.stall_ns) << ctx;
      EXPECT_EQ(ra.freq_switches, rb.freq_switches) << ctx;
    }
  }
}

TEST(StealEquivalence, CapturedGraphAndReplayInvariantAcrossHosts) {
  // Serial reference: no workers, central FIFO.
  const raa::tdg::Graph ref = captured_graph(0, SchedulerPolicy::fifo);
  for (const auto policy :
       {SchedulerPolicy::fifo, SchedulerPolicy::lifo,
        SchedulerPolicy::work_stealing, SchedulerPolicy::criticality_first}) {
    for (const unsigned workers : {1u, 2u, 4u, 8u}) {
      const std::string what = std::string{to_string(policy)} + "/w" +
                               std::to_string(workers);
      const raa::tdg::Graph g = captured_graph(workers, policy);
      expect_graphs_identical(ref, g, what);
      expect_replays_identical(ref, g, what);
    }
  }
}

// fig5's inputs are analytic TDGs (apps::*_tdg never touches the host
// runtime), so the strongest host-side attack is concurrent churn: a
// stealing runtime hammering all cores while the curves are computed.
TEST(StealEquivalence, Fig5CurvesUnmovedByConcurrentStealingRuntime) {
  using raa::apps::Style;
  const auto body = raa::apps::bodytrack_tdg(6, 8, Style::dataflow);
  const auto face = raa::apps::facesim_tdg(6, 16, Style::forkjoin);
  const auto quiet_body = raa::apps::scalability_curve(body, 8);
  const auto quiet_face = raa::apps::scalability_curve(face, 8);

  Runtime churn{{.num_workers = 4}};
  std::atomic<std::uint64_t> sink{0};
  for (int i = 0; i < 256; ++i)
    churn.spawn([&] {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int k = 0; k < 500; ++k) h = h * 6364136223846793005ULL + 1;
      sink.fetch_add(h, std::memory_order_relaxed);
    });

  const auto busy_body = raa::apps::scalability_curve(body, 8);
  const auto busy_face = raa::apps::scalability_curve(face, 8);
  churn.taskwait();

  EXPECT_EQ(quiet_body, busy_body);
  EXPECT_EQ(quiet_face, busy_face);
  EXPECT_GT(churn.stats().tasks_executed, 0u);
}

// Ablation-shaped check: replay the ablation bench's serial-vs-parallel
// question directly — the *host* runtime executes a workload while we
// replay its captured graph; steal counts may be anything, simulated
// makespans may not change.
TEST(StealEquivalence, StealsHappenButSimulatedMetricsHoldStill) {
  const raa::tdg::Graph ref = captured_graph(0, SchedulerPolicy::fifo);
  const raa::tdg::Graph g =
      captured_graph(8, SchedulerPolicy::work_stealing);
  expect_replays_identical(ref, g, "ws/w8");
  // (No assertion on steal_count: it is informational and host-timing
  // dependent by design — see Scheduler::steal_count().)
}

}  // namespace
