// The unified tracing & counters layer (src/obs/): session lifecycle and
// ring semantics, the counter/gauge/histogram registry, the Chrome
// trace-event exporter, and the two cross-layer contracts the issue pins:
// TraceDeterminism (sim-clock trace bytes are a function of the workload
// alone, identical for any shard count) and the disabled path (no session
// => no ring allocations, and tracing never perturbs gated metrics).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "kernels/program.hpp"
#include "memsim/system.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "report/json.hpp"

namespace {

using raa::kern::AddressSpace;
using raa::kern::Phase;
using raa::kern::ScriptedProgram;
using raa::kern::Stream;
using raa::mem::HierarchyMode;
using raa::mem::Metrics;
using raa::mem::RefClass;
using raa::mem::Region;
using raa::mem::RunOptions;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;

namespace obs = raa::obs;

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = 4;
  cfg.mesh_y = 4;
  return cfg;
}

/// Strided per-core stream (the SPM/DMA shape), enough work to exercise
/// DRAM, DMA and epoch events.
Workload strided_workload(const SystemConfig& cfg, std::uint64_t elems) {
  Workload w;
  w.name = "obs_stream";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part =
      (elems * 8 + cfg.dma_chunk_bytes - 1) / cfg.dma_chunk_bytes *
      cfg.dma_chunk_bytes;
  const Region& r = as.add(w, "data", cfg.tiles * part, RefClass::strided);
  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> ph;
    ph.push_back(Phase{
        .streams = {Stream{.region = &r, .store = false, .start = c * part,
                           .stride = 8}},
        .iterations = elems,
        .gap_cycles = 2});
    w.programs.push_back(std::make_unique<ScriptedProgram>(std::move(ph), c));
  }
  return w;
}

// --- session & ring semantics ----------------------------------------------

TEST(ObsSession, LifecycleAndEventRoundTrip) {
  EXPECT_FALSE(obs::active());
  EXPECT_FALSE(obs::enabled());
  ASSERT_TRUE(obs::start());
  EXPECT_TRUE(obs::active());
  EXPECT_FALSE(obs::start());  // second start refused, session intact

  obs::set_thread_name("obs-test-main");
  obs::emit_sim(obs::Cat::memsim, obs::Name::dram_complete,
                obs::Phase::instant, 123.5, 7, 9,
                static_cast<std::uint8_t>(obs::kRowHit << obs::kRowShift));
  obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::begin, 1, 2);
  obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::end, 3, 4);

  const obs::Trace t = obs::stop();
  EXPECT_FALSE(obs::active());
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.threads.size(), 1u);
  EXPECT_EQ(t.threads[0], "obs-test-main");

  const obs::Event& e = t.events[0];
  EXPECT_EQ(e.cat, obs::Cat::memsim);
  EXPECT_EQ(e.name, obs::Name::dram_complete);
  EXPECT_EQ(e.phase, obs::Phase::instant);
  EXPECT_TRUE(e.flags & obs::kFlagHasSim);
  EXPECT_EQ((e.flags >> obs::kRowShift) & 0x3, obs::kRowHit);
  EXPECT_DOUBLE_EQ(e.sim_ts, 123.5);
  EXPECT_EQ(e.a0, 7u);
  EXPECT_EQ(e.a1, 9u);
  EXPECT_EQ(e.slot, 0u);

  EXPECT_FALSE(t.events[1].flags & obs::kFlagHasSim);
  EXPECT_EQ(t.events[1].phase, obs::Phase::begin);
  EXPECT_EQ(t.events[2].phase, obs::Phase::end);
  // Host stamps are monotone within one thread's ring.
  EXPECT_LE(t.events[1].host_ns, t.events[2].host_ns);
}

TEST(ObsSession, OverflowOverwritesOldestAndCounts) {
  obs::SessionOptions opt;
  opt.ring_capacity = 64;  // already a power of two, the configured minimum
  ASSERT_TRUE(obs::start(opt));
  for (std::uint64_t i = 0; i < 100; ++i)
    obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::instant, i, 0);
  const obs::Trace t = obs::stop();
  ASSERT_EQ(t.events.size(), 64u);
  EXPECT_EQ(t.dropped, 36u);
  // The survivors are the newest 64, still in emission order.
  EXPECT_EQ(t.events.front().a0, 36u);
  EXPECT_EQ(t.events.back().a0, 99u);
}

TEST(ObsSession, PerThreadRingsGetOwnSlots) {
  ASSERT_TRUE(obs::start());
  obs::set_thread_name("main-ring");
  obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::instant, 1, 0);
  std::thread worker{[] {
    obs::set_thread_name("worker-ring");
    obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::instant, 2, 0);
  }};
  worker.join();
  const obs::Trace t = obs::stop();
  ASSERT_EQ(t.events.size(), 2u);
  ASSERT_EQ(t.threads.size(), 2u);
  EXPECT_NE(t.events[0].slot, t.events[1].slot);
  for (const obs::Event& e : t.events) {
    const std::string& name = t.threads[e.slot];
    if (e.a0 == 1)
      EXPECT_EQ(name, "main-ring");
    else
      EXPECT_EQ(name, "worker-ring");
  }
}

TEST(ObsSession, NoSessionMeansNoRingsAndNoAllocations) {
  ASSERT_FALSE(obs::active());
  const std::uint64_t allocs_before = obs::ring_allocations();
  for (int i = 0; i < 1000; ++i)
    RAA_OBS_HOST_EVENT(app, mark, instant,
                       static_cast<std::uint64_t>(i), 0u);
  obs::emit_host(obs::Cat::app, obs::Name::mark, obs::Phase::instant, 1, 2);
  EXPECT_EQ(obs::ring_allocations(), allocs_before);
}

// --- counter / gauge / histogram registry ----------------------------------

TEST(ObsCounters, InterningReturnsStableCells) {
  auto& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test.stable_cell");
  obs::Counter& b = reg.counter("test.stable_cell");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.get();
  b.add(3);
  EXPECT_EQ(a.get(), before + 3);
  EXPECT_EQ(reg.value("test.stable_cell"), before + 3);
}

TEST(ObsCounters, ExternalGaugesSumWithOwnedAndDetach) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.gauge_sum").add(5);
  std::uint64_t g1 = 10, g2 = 100;
  const std::uint64_t t1 =
      reg.attach_external("test.gauge_sum", [&g1] { return g1; });
  const std::uint64_t t2 =
      reg.attach_external("test.gauge_sum", [&g2] { return g2; });
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t2, t1);
  EXPECT_EQ(reg.value("test.gauge_sum"), 115u);
  reg.detach_external(t1);
  EXPECT_EQ(reg.value("test.gauge_sum"), 105u);
  reg.detach_external(t2);
  EXPECT_EQ(reg.value("test.gauge_sum"), 5u);
  reg.detach_external(t2);  // double-detach is a no-op
}

TEST(ObsCounters, HistogramLogBuckets) {
  auto& reg = obs::Registry::instance();
  obs::Histogram& h = reg.histogram("test.latency_hist");
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
}

TEST(ObsCounters, SnapshotJsonIsSortedAndComplete) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.snap_b").add(2);
  reg.counter("test.snap_a").add(1);
  reg.histogram("test.snap_hist").record(5);
  const raa::json::Value snap = reg.snapshot_json();
  ASSERT_TRUE(snap.is_object());
  const raa::json::Value* counters = snap.find("counters");
  ASSERT_TRUE(counters && counters->is_object());
  const raa::json::Value* a = counters->find("test.snap_a");
  const raa::json::Value* b = counters->find("test.snap_b");
  ASSERT_TRUE(a && a->is_number());
  ASSERT_TRUE(b && b->is_number());
  EXPECT_GE(a->as_number(), 1.0);
  EXPECT_GE(b->as_number(), 2.0);
  // Names are emitted sorted: the document order of the two keys is fixed.
  const std::string text = snap.dump(0);
  EXPECT_LT(text.find("test.snap_a"), text.find("test.snap_b"));
  const raa::json::Value* hists = snap.find("histograms");
  ASSERT_TRUE(hists && hists->is_object());
  const raa::json::Value* h = hists->find("test.snap_hist");
  ASSERT_TRUE(h && h->is_object());
  ASSERT_TRUE(h->find("count") && h->find("count")->is_number());
  EXPECT_GE(h->find("count")->as_number(), 1.0);
  ASSERT_TRUE(h->find("buckets") && h->find("buckets")->is_array());
}

// --- Chrome trace exporter -------------------------------------------------

TEST(TraceExport, ClockParserRoundTrips) {
  using raa::obs::TraceClock;
  EXPECT_EQ(obs::parse_trace_clock("sim"), TraceClock::sim);
  EXPECT_EQ(obs::parse_trace_clock("host"), TraceClock::host);
  EXPECT_EQ(obs::parse_trace_clock("dual"), TraceClock::dual);
  EXPECT_FALSE(obs::parse_trace_clock("wall").has_value());
  EXPECT_STREQ(obs::trace_clock_str(TraceClock::dual), "dual");
}

/// Hand-built trace: one sim B/E pair, one sim complete, one host-only
/// instant. Lets the test pin exporter behaviour without a live session.
obs::Trace sample_trace() {
  obs::Trace t;
  t.threads = {"main"};
  obs::Event b;
  b.sim_ts = 10.0;
  b.host_ns = 1000;
  b.name = obs::Name::epoch;
  b.cat = obs::Cat::memsim;
  b.phase = obs::Phase::begin;
  b.flags = obs::kFlagHasSim;
  t.events.push_back(b);

  obs::Event x;
  x.sim_ts = 50.0;  // stamped at END; exporter must render ts=30, dur=20
  x.host_ns = 2000;
  x.name = obs::Name::dma_chunk;
  x.cat = obs::Cat::memsim;
  x.phase = obs::Phase::complete;
  x.flags = obs::kFlagHasSim;
  x.a0 = std::bit_cast<std::uint64_t>(20.0);
  x.a1 = 4u | (8u << 16) | (std::uint64_t{3} << 32);
  t.events.push_back(x);

  obs::Event e;
  e.sim_ts = 90.0;
  e.host_ns = 3000;
  e.name = obs::Name::epoch;
  e.cat = obs::Cat::memsim;
  e.phase = obs::Phase::end;
  e.flags = obs::kFlagHasSim;
  t.events.push_back(e);

  obs::Event h;
  h.host_ns = 1500;
  h.name = obs::Name::steal_success;
  h.cat = obs::Cat::exec;
  h.phase = obs::Phase::instant;
  t.events.push_back(h);
  return t;
}

TEST(TraceExport, SimClockFiltersAndRendersSpans) {
  const std::string text =
      obs::chrome_trace_json(sample_trace(), obs::TraceClock::sim);
  std::string error;
  const auto doc = raa::json::Value::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const raa::json::Value* events = doc->find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  // 2 metadata + B + X + E; the host-only instant is filtered out.
  ASSERT_EQ(events->as_array().size(), 5u);
  const raa::json::Value& x = events->as_array()[3];
  ASSERT_TRUE(x.find("ph") && x.find("ph")->as_string() == "X");
  EXPECT_DOUBLE_EQ(x.find("ts")->as_number(), 30.0);   // 50 - dur
  EXPECT_DOUBLE_EQ(x.find("dur")->as_number(), 20.0);
  const raa::json::Value* args = x.find("args");
  ASSERT_TRUE(args);
  EXPECT_DOUBLE_EQ(args->find("lines")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(args->find("dram_lines")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(args->find("core")->as_number(), 3.0);
  const raa::json::Value* other = doc->find("otherData");
  ASSERT_TRUE(other);
  EXPECT_EQ(other->find("schema")->as_string(), "raa-trace");
  EXPECT_EQ(other->find("clock")->as_string(), "sim");
}

TEST(TraceExport, HostAndDualClockKeepAllEvents) {
  const obs::Trace t = sample_trace();
  const std::string host = obs::chrome_trace_json(t, obs::TraceClock::host);
  const auto hdoc = raa::json::Value::parse(host);
  ASSERT_TRUE(hdoc.has_value());
  // process meta + 1 thread meta + all 4 events.
  EXPECT_EQ(hdoc->find("traceEvents")->as_array().size(), 6u);

  const std::string dual = obs::chrome_trace_json(t, obs::TraceClock::dual);
  const auto ddoc = raa::json::Value::parse(dual);
  ASSERT_TRUE(ddoc.has_value());
  // sim lane (2 meta + 3 events) + host lane (2 meta + 4 events).
  EXPECT_EQ(ddoc->find("traceEvents")->as_array().size(), 11u);
}

// --- cross-layer contracts -------------------------------------------------

/// The sim-clock trace is part of the determinism contract: its bytes are
/// a function of the workload alone, for any shard count.
TEST(TraceDeterminism, SimTraceBytesIdenticalAcrossShards) {
  const SystemConfig cfg = small_cfg();
  std::string texts[2];
  const unsigned shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(obs::start());
    System sys{cfg, HierarchyMode::hybrid};
    Workload w = strided_workload(cfg, 512);
    RunOptions ro;
    ro.shards = shard_counts[i];
    sys.run(w, ro);
    const obs::Trace t = obs::stop();
    EXPECT_EQ(t.dropped, 0u);
    texts[i] = obs::chrome_trace_json(t, obs::TraceClock::sim);
  }
  EXPECT_GT(texts[0].size(), 1000u);  // a real trace, not an empty shell
  EXPECT_EQ(texts[0], texts[1]);
}

/// Tracing must observe, never perturb: gated metrics are bit-identical
/// with a session active and without one.
TEST(TraceDeterminism, TracingDoesNotPerturbMetrics) {
  const SystemConfig cfg = small_cfg();
  Metrics plain;
  {
    System sys{cfg, HierarchyMode::hybrid};
    Workload w = strided_workload(cfg, 256);
    plain = sys.run(w);
  }
  ASSERT_TRUE(obs::start());
  Metrics traced;
  {
    System sys{cfg, HierarchyMode::hybrid};
    Workload w = strided_workload(cfg, 256);
    traced = sys.run(w);
  }
  const obs::Trace t = obs::stop();
  EXPECT_FALSE(t.events.empty());
  EXPECT_TRUE(plain == traced);
}

}  // namespace
