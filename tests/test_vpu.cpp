// Tests for the vector ISA simulator: functional semantics of every
// instruction (with special attention to the proposed VPI/VLU), and the
// chained-block timing model.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "vector/vpu.hpp"

namespace {

using raa::vec::Elem;
using raa::vec::Mask;
using raa::vec::Vpu;
using raa::vec::VpuConfig;
using raa::vec::Vreg;

Vpu make_vpu(unsigned mvl = 64, unsigned lanes = 4, bool par_vpi = true) {
  return Vpu{VpuConfig{.mvl = mvl, .lanes = lanes, .parallel_vpi = par_vpi}};
}

TEST(VpuFunctional, LoadStoreRoundTrip) {
  Vpu vpu = make_vpu();
  std::vector<Elem> mem{5, 4, 3, 2, 1};
  const Vreg v = vpu.vload(mem.data(), 5);
  std::vector<Elem> out(5);
  vpu.vstore(out.data(), v);
  EXPECT_EQ(out, mem);
}

TEST(VpuFunctional, GatherScatter) {
  Vpu vpu = make_vpu();
  std::vector<Elem> mem{10, 20, 30, 40};
  const Vreg g = vpu.vgather(mem.data(), {3, 0, 2});
  EXPECT_EQ(g, (Vreg{40, 10, 30}));
  vpu.vscatter(mem.data(), {1, 3}, {99, 77});
  EXPECT_EQ(mem, (std::vector<Elem>{10, 99, 30, 77}));
}

TEST(VpuFunctional, MaskedScatterWritesOnlyMasked) {
  Vpu vpu = make_vpu();
  std::vector<Elem> mem{0, 0, 0};
  vpu.vscatter_masked(mem.data(), {0, 1, 2}, {5, 6, 7}, {1, 0, 1});
  EXPECT_EQ(mem, (std::vector<Elem>{5, 0, 7}));
}

TEST(VpuFunctional, ArithmeticOps) {
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vadd({1, 2}, {10, 20}), (Vreg{11, 22}));
  EXPECT_EQ(vpu.vsub({10, 20}, {1, 2}), (Vreg{9, 18}));
  EXPECT_EQ(vpu.vadd_s({1, 2}, 5), (Vreg{6, 7}));
  EXPECT_EQ(vpu.vand_s({0xFF, 0x101}, 0xF0), (Vreg{0xF0, 0x00}));
  EXPECT_EQ(vpu.vshr_s({256, 512}, 8), (Vreg{1, 2}));
  EXPECT_EQ(vpu.vshl_s({1, 2}, 4), (Vreg{16, 32}));
  EXPECT_EQ(vpu.vxor_s({0b1010, 0b0110}, 0b1100), (Vreg{0b0110, 0b1010}));
  EXPECT_EQ(vpu.vmin({3, 9}, {5, 2}), (Vreg{3, 2}));
  EXPECT_EQ(vpu.vmax({3, 9}, {5, 2}), (Vreg{5, 9}));
}

TEST(VpuFunctional, IotaBroadcastSelect) {
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.viota(4), (Vreg{0, 1, 2, 3}));
  EXPECT_EQ(vpu.vbroadcast(7, 3), (Vreg{7, 7, 7}));
  EXPECT_EQ(vpu.vselect({1, 0, 1}, {1, 2, 3}, {9, 8, 7}), (Vreg{1, 8, 3}));
}

TEST(VpuFunctional, CompareAndCompress) {
  Vpu vpu = make_vpu();
  const Mask m = vpu.vcmp_lt_s({1, 5, 3, 9}, 4);
  EXPECT_EQ(m, (Mask{1, 0, 1, 0}));
  EXPECT_EQ(vpu.vcompress({1, 5, 3, 9}, m), (Vreg{1, 3}));
  EXPECT_EQ(vpu.vmask_not(m), (Mask{0, 1, 0, 1}));
  EXPECT_EQ(vpu.vmask_popcount(m), 2u);
}

TEST(VpuFunctional, PermuteAndReduce) {
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vpermute({10, 20, 30}, {2, 2, 0}), (Vreg{30, 30, 10}));
  EXPECT_EQ(vpu.vreduce_add({1, 2, 3, 4}), 10u);
  EXPECT_EQ(vpu.vreduce_max({1, 7, 3}), 7u);
}

TEST(VpuFunctional, VpiKnownExample) {
  // "Each element of the output asserts exactly how many instances of a
  // value in the corresponding element of the input have been seen before."
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vpi({3, 1, 3, 3, 1, 2}), (Vreg{0, 0, 1, 2, 1, 0}));
}

TEST(VpuFunctional, VluKnownExample) {
  // Marks the last instance of each distinct value.
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vlu({3, 1, 3, 3, 1, 2}), (Mask{0, 0, 0, 1, 1, 1}));
}

TEST(VpuFunctional, VpiAllDistinctIsZero) {
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vpi({9, 8, 7}), (Vreg{0, 0, 0}));
  EXPECT_EQ(vpu.vlu({9, 8, 7}), (Mask{1, 1, 1}));
}

TEST(VpuFunctional, VpiAllEqualCountsUp) {
  Vpu vpu = make_vpu();
  EXPECT_EQ(vpu.vpi({4, 4, 4, 4}), (Vreg{0, 1, 2, 3}));
  EXPECT_EQ(vpu.vlu({4, 4, 4, 4}), (Mask{0, 0, 0, 1}));
}

class VpiVluProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VpiVluProperty, MatchBruteForce) {
  raa::Rng rng{GetParam()};
  Vpu vpu = make_vpu();
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(64);
    Vreg in(n);
    for (auto& v : in) v = rng.below(8);  // few distinct -> many duplicates
    const Vreg got_vpi = vpu.vpi(in);
    const Mask got_vlu = vpu.vlu(in);
    std::map<Elem, Elem> seen;
    std::map<Elem, std::size_t> last;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got_vpi[i], seen[in[i]]++);
      last[in[i]] = i;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const bool is_last = last[in[i]] == i;
      EXPECT_EQ(got_vlu[i] != 0, is_last);
    }
    // Invariant linking the two: at the last instance, vpi == count - 1.
    for (std::size_t i = 0; i < n; ++i) {
      if (got_vlu[i]) {
        EXPECT_EQ(got_vpi[i] + 1, seen[in[i]]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VpiVluProperty, ::testing::Values(1, 2, 3));

// --- timing model -------------------------------------------------------

TEST(VpuTiming, UnitLoadBlock) {
  Vpu vpu = make_vpu(64, 1);
  std::vector<Elem> mem(64);
  (void)vpu.vload(mem.data(), 64);
  vpu.sync();
  // issue(1) + mem latency(20) + 64/1 lanes.
  EXPECT_EQ(vpu.cycles(), 1u + 20u + 64u);
}

TEST(VpuTiming, LanesDivideArithmeticTime) {
  for (const unsigned lanes : {1u, 2u, 4u, 8u}) {
    Vpu vpu = make_vpu(64, lanes);
    (void)vpu.vadd(Vreg(64, 1), Vreg(64, 2));
    vpu.sync();
    EXPECT_EQ(vpu.cycles(), 1u + 64u / lanes) << lanes;
  }
}

TEST(VpuTiming, GatherSerializesThroughIndexedPort) {
  Vpu vpu1 = make_vpu(64, 1);
  Vpu vpu4 = make_vpu(64, 4);
  std::vector<Elem> mem(64);
  const Vreg idx = [&] {
    Vreg v(64);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }();
  (void)vpu1.vgather(mem.data(), idx);
  vpu1.sync();
  (void)vpu4.vgather(mem.data(), idx);
  vpu4.sync();
  EXPECT_EQ(vpu1.cycles(), 1u + 20u + 64u);       // 1 elem/cycle
  EXPECT_EQ(vpu4.cycles(), 1u + 20u + 64u / 2u);  // indexed tput = lanes/2
}

TEST(VpuTiming, SerialVsParallelVpi) {
  Vpu serial = make_vpu(64, 4, /*par_vpi=*/false);
  Vpu parallel = make_vpu(64, 4, /*par_vpi=*/true);
  const Vreg in(64, 3);
  (void)serial.vpi(in);
  serial.sync();
  (void)parallel.vpi(in);
  parallel.sync();
  EXPECT_EQ(serial.cycles(), 1u + 64u);            // VL serial cycles
  EXPECT_EQ(parallel.cycles(), 1u + 2u * 16u);     // 2*ceil(VL/lanes)
  EXPECT_LT(parallel.cycles(), serial.cycles());
}

TEST(VpuTiming, ChainedBlockIsBottleneckBound) {
  // One load + three dependent arithmetic ops, 4 lanes: ALU occupancy
  // 3*16 = 48 > mem 16 -> block = 4 issues + latency + 48.
  Vpu vpu = make_vpu(64, 4);
  std::vector<Elem> mem(64, 1);
  Vreg v = vpu.vload(mem.data(), 64);
  v = vpu.vadd_s(v, 1);
  v = vpu.vadd_s(v, 1);
  v = vpu.vadd_s(v, 1);
  vpu.sync();
  EXPECT_EQ(vpu.cycles(), 4u * 1u + 20u + 48u);
}

TEST(VpuTiming, MemLatencyChargedOncePerBlock) {
  Vpu vpu = make_vpu(64, 4);
  std::vector<Elem> mem(256, 1);
  for (int i = 0; i < 4; ++i) (void)vpu.vload(mem.data() + 64 * i, 64);
  vpu.sync();
  // 4 issues + one latency + 4*16 mem occupancy (chained streaming).
  EXPECT_EQ(vpu.cycles(), 4u + 20u + 64u);
}

TEST(VpuTiming, SyncWithoutWorkIsFree) {
  Vpu vpu = make_vpu();
  vpu.sync();
  vpu.sync();
  EXPECT_EQ(vpu.cycles(), 0u);
}

TEST(VpuTiming, ScalarWorkSerializes) {
  Vpu vpu = make_vpu();
  vpu.scalar_work(100);
  EXPECT_EQ(vpu.cycles(), 100u);
}

TEST(VpuTiming, InstructionsCounted) {
  Vpu vpu = make_vpu();
  (void)vpu.viota(8);
  (void)vpu.vadd_s(Vreg{1}, 1);
  EXPECT_EQ(vpu.instructions(), 2u);
}

}  // namespace
