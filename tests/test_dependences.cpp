// Tests for the byte-range dependence registry: RAW/WAR/WAW semantics,
// partial overlaps, segment splitting, and a randomized property test that
// checks the derived orderings against a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "runtime/dependences.hpp"

namespace {

using raa::rt::AccessMode;
using raa::rt::Dep;
using raa::rt::DependenceRegistry;
using raa::rt::TaskId;

std::vector<TaskId> reg(DependenceRegistry& r, TaskId id,
                        std::initializer_list<Dep> deps) {
  std::vector<TaskId> preds;
  r.register_task(id, std::vector<Dep>(deps), preds);
  std::sort(preds.begin(), preds.end());
  return preds;
}

Dep dep(std::uintptr_t base, std::size_t bytes, AccessMode m) {
  return Dep{base, bytes, m};
}

TEST(Dependences, ReadAfterWrite) {
  DependenceRegistry r;
  EXPECT_TRUE(reg(r, 0, {dep(100, 8, AccessMode::write)}).empty());
  EXPECT_EQ(reg(r, 1, {dep(100, 8, AccessMode::read)}),
            (std::vector<TaskId>{0}));
}

TEST(Dependences, WriteAfterRead) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  reg(r, 1, {dep(100, 8, AccessMode::read)});
  reg(r, 2, {dep(100, 8, AccessMode::read)});
  // Writer depends on both readers (WAR) and the previous writer (WAW).
  EXPECT_EQ(reg(r, 3, {dep(100, 8, AccessMode::write)}),
            (std::vector<TaskId>{0, 1, 2}));
}

TEST(Dependences, WriteAfterWrite) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  EXPECT_EQ(reg(r, 1, {dep(100, 8, AccessMode::write)}),
            (std::vector<TaskId>{0}));
}

TEST(Dependences, ReadersDoNotDependOnEachOther) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  EXPECT_EQ(reg(r, 1, {dep(100, 8, AccessMode::read)}),
            (std::vector<TaskId>{0}));
  EXPECT_EQ(reg(r, 2, {dep(100, 8, AccessMode::read)}),
            (std::vector<TaskId>{0}));  // not {0, 1}
}

TEST(Dependences, DisjointRangesAreIndependent) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  EXPECT_TRUE(reg(r, 1, {dep(200, 8, AccessMode::write)}).empty());
  EXPECT_TRUE(reg(r, 2, {dep(108, 8, AccessMode::write)}).empty());
}

TEST(Dependences, PartialOverlapDetected) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 16, AccessMode::write)});
  // Overlaps the tail [108, 116).
  EXPECT_EQ(reg(r, 1, {dep(108, 16, AccessMode::read)}),
            (std::vector<TaskId>{0}));
  // Touches only the non-overlapped tail [116, 124): depends on task 1's
  // write?  No: task 1 only read. A write to [116, 124) conflicts with
  // task 1's read (WAR on [116, 124)).
  EXPECT_EQ(reg(r, 2, {dep(116, 8, AccessMode::write)}),
            (std::vector<TaskId>{1}));
}

TEST(Dependences, SplitKeepsMiddleIndependent) {
  DependenceRegistry r;
  reg(r, 0, {dep(0, 30, AccessMode::write)});
  reg(r, 1, {dep(10, 10, AccessMode::write)});  // overwrites the middle
  // A read of the middle must depend on task 1 only.
  EXPECT_EQ(reg(r, 2, {dep(12, 4, AccessMode::read)}),
            (std::vector<TaskId>{1}));
  // A read of the head still depends on task 0.
  EXPECT_EQ(reg(r, 3, {dep(0, 4, AccessMode::read)}),
            (std::vector<TaskId>{0}));
}

TEST(Dependences, ReadWriteActsAsBoth) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  reg(r, 1, {dep(100, 8, AccessMode::readwrite)});
  EXPECT_EQ(reg(r, 2, {dep(100, 8, AccessMode::read)}),
            (std::vector<TaskId>{1}));
}

TEST(Dependences, InoutChainSerializes) {
  DependenceRegistry r;
  for (TaskId t = 0; t < 5; ++t) {
    const auto preds = reg(r, t, {dep(100, 8, AccessMode::readwrite)});
    if (t == 0)
      EXPECT_TRUE(preds.empty());
    else
      EXPECT_EQ(preds, (std::vector<TaskId>{t - 1}));
  }
}

TEST(Dependences, MultipleDepsUnionPredecessors) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  reg(r, 1, {dep(200, 8, AccessMode::write)});
  EXPECT_EQ(reg(r, 2,
                {dep(100, 8, AccessMode::read), dep(200, 8, AccessMode::read)}),
            (std::vector<TaskId>{0, 1}));
}

TEST(Dependences, OwnDepsDoNotSelfDepend) {
  DependenceRegistry r;
  // Task reads and writes overlapping ranges of its own.
  const auto preds = reg(r, 0,
                         {dep(100, 16, AccessMode::read),
                          dep(104, 4, AccessMode::write)});
  EXPECT_TRUE(preds.empty());
}

TEST(Dependences, ZeroByteDepIgnored) {
  DependenceRegistry r;
  reg(r, 0, {dep(100, 8, AccessMode::write)});
  EXPECT_TRUE(reg(r, 1, {dep(100, 0, AccessMode::read)}).empty());
}

TEST(Dependences, SegmentCountGrowsAndClears) {
  DependenceRegistry r;
  reg(r, 0, {dep(0, 10, AccessMode::write)});
  reg(r, 1, {dep(20, 10, AccessMode::write)});
  EXPECT_GE(r.segment_count(), 2u);
  r.clear();
  EXPECT_EQ(r.segment_count(), 0u);
}

// ---------------------------------------------------------------------------
// Property test: compare against a brute-force byte-level oracle.
// ---------------------------------------------------------------------------

struct OracleAccess {
  TaskId task;
  std::uintptr_t lo, hi;
  bool writes, reads;
};

// For each new access, the oracle scans all earlier accesses byte-agnostic:
// a dependence exists iff ranges overlap and at least one side writes,
// BUT only against the *latest* conflicting chain — to mirror registry
// semantics (reads depend on last writer only; writes depend on last writer
// and readers since). We reproduce that with per-byte last-writer/readers.
struct Oracle {
  std::map<std::uintptr_t, TaskId> last_writer;               // per byte
  std::map<std::uintptr_t, std::vector<TaskId>> readers;      // per byte

  std::vector<TaskId> add(TaskId t, std::uintptr_t lo, std::uintptr_t hi,
                          AccessMode m) {
    std::vector<TaskId> preds;
    const bool writes = m != AccessMode::read;
    const bool reads = m != AccessMode::write;
    const auto push = [&](TaskId id) {
      if (id != t && id != raa::rt::kNoTask &&
          std::find(preds.begin(), preds.end(), id) == preds.end())
        preds.push_back(id);
    };
    for (std::uintptr_t b = lo; b < hi; ++b) {
      const auto w = last_writer.find(b);
      const TaskId writer = w == last_writer.end() ? raa::rt::kNoTask
                                                   : w->second;
      if (reads) push(writer);
      if (writes) {
        push(writer);
        for (const TaskId r : readers[b]) push(r);
        last_writer[b] = t;
        readers[b].clear();
      } else {
        readers[b].push_back(t);
      }
    }
    std::sort(preds.begin(), preds.end());
    return preds;
  }
};

TEST(Dependences, RandomizedMatchesByteOracle) {
  raa::Rng rng{2024};
  for (int trial = 0; trial < 20; ++trial) {
    DependenceRegistry reg_;
    Oracle oracle;
    for (TaskId t = 0; t < 60; ++t) {
      const std::uintptr_t lo = 1 + rng.below(64);
      const std::size_t len = 1 + rng.below(16);
      const auto mode = static_cast<AccessMode>(rng.below(3));
      std::vector<TaskId> got;
      const Dep d{lo, len, mode};
      reg_.register_task(t, std::vector<Dep>{d}, got);
      std::sort(got.begin(), got.end());
      const auto want = oracle.add(t, lo, lo + len, mode);
      ASSERT_EQ(got, want) << "trial " << trial << " task " << t;
    }
  }
}

}  // namespace
