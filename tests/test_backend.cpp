// Unit and equivalence tests of the DRAM timing backends
// (memsim/backend.hpp).
//
//  * FlatBackend/BankedBackend FSM unit tests drive a backend directly
//    through enqueue/tick with a recording completion callback and check
//    hand-computed row-hit/miss/conflict/refresh latencies, FR-FCFS
//    ordering and burst aggregation.
//  * BackendEquivalence pins the refactor: the flat backend routed
//    through the MemBackend interface must reproduce the pre-backend
//    simulator's Metrics bit-for-bit. The goldens below were captured
//    from the last pre-refactor build (hexfloat, so FP sums are exact).
//  * BankedShardEquivalence extends the determinism contract to the
//    banked model: metrics are field-identical for any shard count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "kernels/program.hpp"
#include "memsim/backend.hpp"
#include "memsim/system.hpp"

namespace {

using raa::kern::AddressSpace;
using raa::kern::Phase;
using raa::kern::ScriptedProgram;
using raa::kern::Stream;
using raa::kern::StreamKind;
using raa::mem::BankedBackend;
using raa::mem::BurstTiming;
using raa::mem::FlatBackend;
using raa::mem::HierarchyMode;
using raa::mem::LineReq;
using raa::mem::MemBackendKind;
using raa::mem::Metrics;
using raa::mem::RefClass;
using raa::mem::Region;
using raa::mem::RunOptions;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;

// --- backend FSM unit tests ----------------------------------------------

/// One completed request as seen by the callback.
struct Done {
  LineReq req;
  double latency = 0.0;
};

std::vector<Done>* capture(raa::mem::MemBackend& b) {
  static thread_local std::vector<Done> log;
  log.clear();
  b.set_completion(
      [](const LineReq& r, double lat) { log.push_back({r, lat}); });
  return &log;
}

/// Single channel, single bank, refresh off: every latency is a closed-form
/// function of t_rp/t_rcd/t_cas/line_cycles.
BankedBackend::Params unit_params() {
  BankedBackend::Params p;
  p.channels = 1;
  p.banks_per_channel = 1;
  p.row_bytes = 2048;
  p.t_rp = 40;
  p.t_rcd = 40;
  p.t_cas = 40;
  p.line_cycles = 4;
  p.refresh_interval = 0;
  return p;
}

LineReq read_at(std::uint64_t line, double issue, bool burst = false) {
  return LineReq{LineReq::Kind::read, line, 0, issue, burst};
}

void drain(raa::mem::MemBackend& b) {
  while (!b.idle()) b.tick();
}

TEST(BankedBackend, RowMissOpensTheRow) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));
  drain(b);
  ASSERT_EQ(log->size(), 1u);
  // Closed bank: activate + column access + data burst.
  EXPECT_DOUBLE_EQ((*log)[0].latency, 40 + 40 + 4);
  EXPECT_EQ(b.stats().row_misses, 1u);
  EXPECT_EQ(b.stats().row_hits, 0u);
  EXPECT_EQ(b.stats().line_reads, 1u);
}

TEST(BankedBackend, RowHitSkipsActivate) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));  // opens row 0, done at 84
  drain(b);
  b.enqueue(read_at(64, 100.0));  // same row, bank already idle
  drain(b);
  ASSERT_EQ(log->size(), 2u);
  EXPECT_DOUBLE_EQ((*log)[1].latency, 40 + 4);  // t_cas + line_cycles
  EXPECT_EQ(b.stats().row_hits, 1u);
  EXPECT_EQ(b.stats().row_misses, 1u);
}

TEST(BankedBackend, RowConflictAddsPrecharge) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));  // opens row 0
  drain(b);
  b.enqueue(read_at(2048, 200.0));  // row 1: precharge + activate + cas
  drain(b);
  ASSERT_EQ(log->size(), 2u);
  EXPECT_DOUBLE_EQ((*log)[1].latency, 40 + 40 + 40 + 4);
  EXPECT_EQ(b.stats().row_conflicts, 1u);
}

// A/B over the bank-hash address mapping: a two-block ping-pong whose
// stride aliases the bank interleave. Under the plain block mapping both
// blocks land on bank 0 with different rows — every access after the
// first is a row conflict. The XOR hash folds the row bits in, spreading
// the same two blocks across both banks: two cold misses, then row hits.
TEST(BankedBackend, XorMappingBreaksStrideRowConflicts) {
  BankedBackend::Params p = unit_params();
  p.banks_per_channel = 2;
  // Blocks 0 and 2: within-channel ids 0 and 2, rows 0 and 1.
  //   block:  bank = within % 2      -> both on bank 0 (conflict ping-pong)
  //   xor:    bank = (within^row)%2  -> banks 0 and 1 (no shared bank)
  const std::uint64_t a = 0;
  const std::uint64_t b_addr = 2 * p.row_bytes;

  const auto run = [&](raa::mem::BankMapping mapping) {
    p.mapping = mapping;
    BankedBackend b{p, 1};
    auto* log = capture(b);
    double at = 0.0;
    for (int i = 0; i < 4; ++i) {
      b.enqueue(read_at(a, at));
      drain(b);
      b.enqueue(read_at(b_addr, at + 500.0));
      drain(b);
      at += 1000.0;
    }
    EXPECT_EQ(log->size(), 8u);
    return b.stats();
  };

  const auto block = run(raa::mem::BankMapping::block);
  EXPECT_EQ(block.row_misses, 1u);
  EXPECT_EQ(block.row_conflicts, 7u);
  EXPECT_EQ(block.row_hits, 0u);

  const auto hashed = run(raa::mem::BankMapping::xor_hash);
  EXPECT_EQ(hashed.row_misses, 2u);
  EXPECT_EQ(hashed.row_conflicts, 0u);
  EXPECT_EQ(hashed.row_hits, 6u);
}

TEST(BankedBackend, RefreshClosesRowsAndBlocksTheBank) {
  BankedBackend::Params p = unit_params();
  p.refresh_interval = 1000;
  p.refresh_cycles = 128;
  BankedBackend b{p, 1};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));  // opens row 0 well before the refresh
  drain(b);
  // One elapsed interval (at t=1000) fires before this request; the open
  // row is closed again, so the same row misses instead of hitting.
  b.enqueue(read_at(64, 1500.0));
  drain(b);
  ASSERT_EQ(log->size(), 2u);
  EXPECT_DOUBLE_EQ((*log)[1].latency, 40 + 40 + 4);
  EXPECT_EQ(b.stats().refreshes, 1u);
  EXPECT_EQ(b.stats().row_hits, 0u);
  EXPECT_EQ(b.stats().row_misses, 2u);

  // A request arriving inside the refresh window waits it out: the bank
  // is blocked until 2000 + 128, then activate + cas + burst.
  b.enqueue(read_at(64, 2010.0));
  drain(b);
  ASSERT_EQ(log->size(), 3u);
  EXPECT_DOUBLE_EQ((*log)[2].latency, (2128.0 - 2010.0) + 40 + 40 + 4);
  EXPECT_EQ(b.stats().refreshes, 2u);
}

TEST(BankedBackend, FrFcfsPrefersOldestRowHit) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  // Three queued before any service: A(row 0), B(row 1), C(row 0).
  b.enqueue(read_at(0, 0.0));     // A
  b.enqueue(read_at(2048, 0.0));  // B
  b.enqueue(read_at(64, 0.0));    // C
  drain(b);
  ASSERT_EQ(log->size(), 3u);
  // A (oldest, no row open) first; it opens row 0, so C jumps B.
  EXPECT_EQ((*log)[0].req.line, 0u);
  EXPECT_EQ((*log)[1].req.line, 64u);
  EXPECT_EQ((*log)[2].req.line, 2048u);
  EXPECT_EQ(b.stats().row_hits, 1u);       // C
  EXPECT_EQ(b.stats().row_misses, 1u);     // A
  EXPECT_EQ(b.stats().row_conflicts, 1u);  // B
}

TEST(BankedBackend, WritesOccupyTimingButCountSeparately) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  b.enqueue(LineReq{LineReq::Kind::write, 0, 0, 0.0, false});
  drain(b);
  b.enqueue(read_at(64, 0.0));  // issued at 0 but the write holds the bank
  drain(b);
  ASSERT_EQ(log->size(), 2u);
  EXPECT_EQ(b.stats().line_writes, 1u);
  EXPECT_EQ(b.stats().line_reads, 1u);
  // Write done at 84; read waits, hits the row the write opened:
  // max(0+40 after ready 84 -> 124, bus 84) + 4.
  EXPECT_DOUBLE_EQ((*log)[1].latency, 84 + 40 + 4);
}

TEST(BankedBackend, BurstAggregatesServiceAndCadence) {
  BankedBackend b{unit_params(), 1};
  capture(b);
  b.begin_burst();
  for (std::uint64_t line = 0; line < 4 * 64; line += 64)
    b.enqueue(read_at(line, 0.0, /*burst=*/true));
  drain(b);
  // Same row: miss at 84, then hits every t_cas+line_cycles on the bus.
  const BurstTiming bt = b.finish_burst(4, 4);
  EXPECT_DOUBLE_EQ(bt.service, 84.0);
  EXPECT_DOUBLE_EQ(bt.cadence, 216.0 - 84.0);

  // Lines streamed from L2 ride at the DMA cadence on top.
  b.begin_burst();
  for (std::uint64_t line = 0; line < 4 * 64; line += 64)
    b.enqueue(read_at(line, 0.0, /*burst=*/true));
  drain(b);
  const BurstTiming bt2 = b.finish_burst(6, 4);
  EXPECT_DOUBLE_EQ(bt2.cadence, bt.cadence + 2.0 * 4);
}

TEST(BankedBackend, ChannelsInterleaveRowBlocks) {
  BankedBackend::Params p = unit_params();
  p.channels = 2;
  BankedBackend b{p, 1};
  capture(b);
  // Blocks 0 and 1 land on different channels: both serviced as misses
  // with no bus interference between them.
  b.enqueue(read_at(0, 0.0));
  b.enqueue(read_at(2048, 0.0));
  drain(b);
  EXPECT_EQ(b.stats().row_misses, 2u);
  EXPECT_EQ(b.stats().row_conflicts, 0u);
}

TEST(BankedBackend, BeginRunResetsAllState) {
  BankedBackend b{unit_params(), 1};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));
  drain(b);
  b.begin_run();
  EXPECT_EQ(b.stats().line_reads, 0u);
  b.enqueue(read_at(64, 0.0));  // same row as before; must MISS after reset
  drain(b);
  EXPECT_EQ(b.stats().row_misses, 1u);
  EXPECT_EQ(b.stats().row_hits, 0u);
  EXPECT_DOUBLE_EQ(log->back().latency, 40 + 40 + 4);
}

TEST(FlatBackend, FixedLatencyAndEnergy) {
  FlatBackend::Params p;  // defaults: 120 / 4 / 1200.0
  FlatBackend b{p};
  auto* log = capture(b);
  b.enqueue(read_at(0, 0.0));
  ASSERT_EQ(log->size(), 1u);  // synchronous completion
  EXPECT_DOUBLE_EQ((*log)[0].latency, 120.0);
  b.enqueue(LineReq{LineReq::Kind::write, 64, 0, 0.0, false});
  ASSERT_EQ(log->size(), 2u);
  EXPECT_DOUBLE_EQ((*log)[1].latency, 0.0);  // writebacks latency-hidden
  EXPECT_EQ(b.stats().line_reads, 1u);
  EXPECT_EQ(b.stats().line_writes, 1u);
  EXPECT_DOUBLE_EQ(b.stats().energy_pj, 2 * 1200.0);
  EXPECT_TRUE(b.idle());
  const BurstTiming bt = b.finish_burst(16, 7);
  EXPECT_DOUBLE_EQ(bt.service, 120.0);
  EXPECT_DOUBLE_EQ(bt.cadence, 16 * 4.0);
  EXPECT_EQ(b.stats().row_hits + b.stats().row_misses +
                b.stats().row_conflicts + b.stats().refreshes,
            0u);
}

// --- equivalence suites --------------------------------------------------

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = 4;
  cfg.mesh_y = 4;
  return cfg;
}

/// Replica of test_memsim.cpp's mixed workload (every access class, DMA
/// map/unmap, guarded redirection, the prefetcher) — the same workload the
/// pre-refactor goldens below were captured from.
Workload mixed_workload(const SystemConfig& cfg, std::uint64_t seed) {
  raa::Rng rng{seed};
  Workload w;
  w.name = "mixed";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part = 2 * cfg.dma_chunk_bytes;
  const Region& shared =
      as.add(w, "shared", cfg.tiles * part, RefClass::strided);
  const Region& priv =
      as.add(w, "private", cfg.tiles * 2048, RefClass::random_noalias);

  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> phases;
    const unsigned rounds = 2 + static_cast<unsigned>(rng.below(2));
    for (unsigned k = 0; k < rounds; ++k) {
      phases.push_back(Phase{
          .streams = {Stream{.region = &shared, .store = (k % 2 == 1),
                             .start = c * part, .stride = 8}},
          .iterations = part / 8,
          .gap_cycles = static_cast<std::uint32_t>(rng.below(6))});
      phases.push_back(Phase{
          .streams = {Stream{.region = &shared, .kind = StreamKind::random_rmw,
                             .ref = RefClass::random_unknown,
                             .elem_bytes = 8},
                      Stream{.region = &priv, .kind = StreamKind::random,
                             .ref = RefClass::random_noalias,
                             .slice_bytes = 2048, .slice_base = c * 2048,
                             .elem_bytes = 8}},
          .iterations = 64 + rng.below(96),
          .gap_cycles = static_cast<std::uint32_t>(rng.below(8))});
    }
    w.programs.push_back(std::make_unique<ScriptedProgram>(
        std::move(phases), seed * 131 + c));
  }
  return w;
}

/// Pre-refactor Metrics, field for field (hexfloat => bit-exact doubles).
struct Golden {
  double cycles, noc_flit_hops;
  double e_l1, e_l2, e_spm, e_dram, e_noc, e_dir, e_static;
  std::uint64_t accesses, l1_hits, l1_misses, l2_hits, l2_misses, spm_hits;
  std::uint64_t dram_line_reads, dram_line_writes;
  std::uint64_t invalidations, writebacks, prefetch_fills, dma_transfers;
  std::uint64_t guarded_lookups, guarded_to_spm, remote_spm_accesses;
};

struct GoldenCase {
  std::uint64_t seed;
  HierarchyMode mode;
  Golden want;
};

// Captured at the commit preceding the backend refactor: small_cfg +
// mixed_workload(seed), System{cfg, mode}.run, default (flat) parameters.
const GoldenCase kGolden[] = {
    {11u, HierarchyMode::cache_only,
     Golden{0x1.b4f4p+15, 0x1.5c89p+18, 0x1.1309cp+20, 0x1.4028p+17, 0x0p+0,
            0x1.77258p+21, 0x1.0566cp+20, 0x1.8e08p+16, 0x1.b4f4p+20, 54226u,
            48439u, 5787u, 171u, 2561u, 0u, 2561u, 0u, 5394u, 16u, 2519u, 0u,
            0u, 0u, 0u}},
    {11u, HierarchyMode::hybrid,
     Golden{0x1.461ap+15, 0x1.490e4p+18, 0x1.3542p+17, 0x1.3236p+18,
            0x1.34b38p+18, 0x1.77258p+21, 0x1.ed956p+19, 0x1.6bcp+15,
            0x1.461ap+20, 54226u, 6208u, 2640u, 1635u, 519u, 45261u, 2561u,
            0u, 1598u, 68u, 50u, 80u, 8844u, 4418u, 4009u}},
    {23u, HierarchyMode::cache_only,
     Golden{0x1.9588p+15, 0x1.5238cp+18, 0x1.14348p+20, 0x1.458cp+17, 0x0p+0,
            0x1.77p+21, 0x1.fb552p+19, 0x1.8138p+16, 0x1.9588p+20, 54611u,
            48954u, 5657u, 218u, 2560u, 0u, 2560u, 0u, 5207u, 5u, 2471u, 0u,
            0u, 0u, 0u}},
    {23u, HierarchyMode::hybrid,
     Golden{0x1.299ap+15, 0x1.4606p+18, 0x1.1e5ap+17, 0x1.376dp+18,
            0x1.3c1b8p+18, 0x1.77p+21, 0x1.e909p+19, 0x1.5598p+15,
            0x1.299ap+20, 54611u, 5783u, 2499u, 1591u, 524u, 46205u, 2560u,
            0u, 1501u, 71u, 40u, 82u, 8418u, 4345u, 3943u}},
    {47u, HierarchyMode::cache_only,
     Golden{0x1.86ap+15, 0x1.5ce3cp+18, 0x1.0dd7p+20, 0x1.3fcep+17, 0x0p+0,
            0x1.77p+21, 0x1.05aadp+20, 0x1.9118p+16, 0x1.86ap+20, 53121u,
            47378u, 5743u, 169u, 2560u, 0u, 2560u, 0u, 5451u, 6u, 2574u, 0u,
            0u, 0u, 0u}},
    {47u, HierarchyMode::hybrid,
     Golden{0x1.167ep+15, 0x1.45284p+18, 0x1.3212p+17, 0x1.2a2fp+18,
            0x1.2c6cp+18, 0x1.77p+21, 0x1.e7bc6p+19, 0x1.6b18p+15,
            0x1.167ep+20, 53121u, 6125u, 2621u, 1630u, 515u, 44232u, 2560u,
            0u, 1557u, 64u, 43u, 78u, 8790u, 4439u, 4040u}},
    {95u, HierarchyMode::cache_only,
     Golden{0x1.9e98p+15, 0x1.30c1cp+18, 0x1.e9e78p+19, 0x1.33f8p+17, 0x0p+0,
            0x1.77p+21, 0x1.c922ap+19, 0x1.5f8p+16, 0x1.9e98p+20, 48387u,
            43339u, 5048u, 68u, 2560u, 0u, 2560u, 0u, 4669u, 13u, 2388u, 0u,
            0u, 0u, 0u}},
    {95u, HierarchyMode::hybrid,
     Golden{0x1.36c8p+15, 0x1.27f04p+18, 0x1.0a8cp+17, 0x1.089cp+18,
            0x1.141c8p+18, 0x1.77p+21, 0x1.bbe86p+19, 0x1.41f8p+15,
            0x1.36c8p+20, 48387u, 5311u, 2349u, 1437u, 519u, 40595u, 2560u,
            0u, 1315u, 62u, 48u, 72u, 7682u, 3863u, 3469u}},
    {191u, HierarchyMode::cache_only,
     Golden{0x1.af6cp+15, 0x1.7af94p+18, 0x1.2d2b8p+20, 0x1.5414p+17, 0x0p+0,
            0x1.77p+21, 0x1.1c3afp+20, 0x1.afb8p+16, 0x1.af6cp+20, 59435u,
            53071u, 6364u, 342u, 2560u, 0u, 2560u, 0u, 5990u, 9u, 2601u, 0u,
            0u, 0u, 0u}},
    {191u, HierarchyMode::hybrid,
     Golden{0x1.4b7cp+15, 0x1.68efp+18, 0x1.4e2cp+17, 0x1.5e19p+18,
            0x1.54f08p+18, 0x1.77p+21, 0x1.0eb34p+20, 0x1.8808p+15,
            0x1.4b7cp+20, 59435u, 6753u, 2852u, 1869u, 522u, 49675u, 2560u,
            0u, 1814u, 77u, 45u, 88u, 9586u, 4774u, 4317u}},
};

class BackendEquivalence : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(BackendEquivalence, FlatThroughInterfaceMatchesPreRefactorMetrics) {
  const GoldenCase& g = GetParam();
  const SystemConfig cfg = small_cfg();  // memory defaults to flat
  Workload w = mixed_workload(cfg, g.seed);
  System sys{cfg, g.mode};
  const Metrics m = sys.run(w);
  // Doubles compared with == on purpose: the contract is bit-identity.
  EXPECT_EQ(m.cycles, g.want.cycles);
  EXPECT_EQ(m.noc_flit_hops, g.want.noc_flit_hops);
  EXPECT_EQ(m.e_l1, g.want.e_l1);
  EXPECT_EQ(m.e_l2, g.want.e_l2);
  EXPECT_EQ(m.e_spm, g.want.e_spm);
  EXPECT_EQ(m.e_dram, g.want.e_dram);
  EXPECT_EQ(m.e_noc, g.want.e_noc);
  EXPECT_EQ(m.e_dir, g.want.e_dir);
  EXPECT_EQ(m.e_static, g.want.e_static);
  EXPECT_EQ(m.accesses, g.want.accesses);
  EXPECT_EQ(m.l1_hits, g.want.l1_hits);
  EXPECT_EQ(m.l1_misses, g.want.l1_misses);
  EXPECT_EQ(m.l2_hits, g.want.l2_hits);
  EXPECT_EQ(m.l2_misses, g.want.l2_misses);
  EXPECT_EQ(m.spm_hits, g.want.spm_hits);
  EXPECT_EQ(m.dram_line_reads, g.want.dram_line_reads);
  EXPECT_EQ(m.dram_line_writes, g.want.dram_line_writes);
  EXPECT_EQ(m.invalidations, g.want.invalidations);
  EXPECT_EQ(m.writebacks, g.want.writebacks);
  EXPECT_EQ(m.prefetch_fills, g.want.prefetch_fills);
  EXPECT_EQ(m.dma_transfers, g.want.dma_transfers);
  EXPECT_EQ(m.guarded_lookups, g.want.guarded_lookups);
  EXPECT_EQ(m.guarded_to_spm, g.want.guarded_to_spm);
  EXPECT_EQ(m.remote_spm_accesses, g.want.remote_spm_accesses);
  // The pre-refactor simulator had no row-buffer model at all.
  EXPECT_EQ(m.dram_row_hits, 0u);
  EXPECT_EQ(m.dram_row_misses, 0u);
  EXPECT_EQ(m.dram_row_conflicts, 0u);
  EXPECT_EQ(m.dram_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, BackendEquivalence, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string{"seed"} + std::to_string(info.param.seed) + "_" +
             (info.param.mode == HierarchyMode::hybrid ? "hybrid"
                                                       : "cache_only");
    });

// --- banked determinism --------------------------------------------------

SystemConfig banked_cfg() {
  SystemConfig cfg = small_cfg();
  cfg.memory.kind = MemBackendKind::banked;
  // A short interval so refreshes actually fire inside the test run.
  cfg.memory.banked.refresh_interval = 2048;
  return cfg;
}

class BankedShardEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BankedShardEquivalence, MetricsIdenticalForAnyShardCount) {
  const std::uint64_t seed = GetParam();
  const SystemConfig cfg = banked_cfg();
  for (const auto mode :
       {HierarchyMode::cache_only, HierarchyMode::hybrid}) {
    Workload w1 = mixed_workload(cfg, seed);
    System serial{cfg, mode};
    const Metrics ref = serial.run(w1);
    // The banked model must actually engage on this workload.
    EXPECT_EQ(ref.dram_row_hits + ref.dram_row_misses + ref.dram_row_conflicts,
              ref.dram_line_reads + ref.dram_line_writes);
    EXPECT_GT(ref.dram_row_hits, 0u);
    for (const unsigned shards : {2u, 4u, 8u}) {
      Workload w = mixed_workload(cfg, seed);
      System sys{cfg, mode};
      const Metrics m = sys.run(w, RunOptions{.shards = shards});
      EXPECT_TRUE(m == ref) << "shards=" << shards << " diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankedShardEquivalence,
                         ::testing::Values(13u, 61u, 251u));

TEST(BankedBackendSystem, TimingDiffersFromFlatButWorkDoesNot) {
  const SystemConfig flat_cfg = small_cfg();
  const SystemConfig bank_cfg = banked_cfg();
  Workload wf = mixed_workload(flat_cfg, 7);
  Workload wb = mixed_workload(bank_cfg, 7);
  System fs{flat_cfg, HierarchyMode::hybrid};
  System bs{bank_cfg, HierarchyMode::hybrid};
  const Metrics mf = fs.run(wf);
  const Metrics mb = bs.run(wb);
  // Same functional simulation: identical work counters...
  EXPECT_EQ(mf.accesses, mb.accesses);
  EXPECT_EQ(mf.dram_line_reads, mb.dram_line_reads);
  // ...different timing model: cycles diverge and refreshes fire.
  EXPECT_NE(mf.cycles, mb.cycles);
  EXPECT_GT(mb.dram_refreshes, 0u);
}

}  // namespace
