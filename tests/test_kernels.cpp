// Tests for the workload generators: the scripted-program interpreter, the
// address-space layout invariants (chunk alignment, region disjointness),
// and end-to-end runs of every NAS-like kernel under both hierarchy modes
// (the Figure 1 experiment at test scale).
#include <gtest/gtest.h>

#include <set>

#include "kernels/nas.hpp"
#include "kernels/program.hpp"
#include "memsim/system.hpp"

namespace {

using raa::kern::AddressSpace;
using raa::kern::nas_kernels;
using raa::kern::Phase;
using raa::kern::ScriptedProgram;
using raa::kern::Stream;
using raa::kern::StreamKind;
using raa::mem::Access;
using raa::mem::HierarchyMode;
using raa::mem::Metrics;
using raa::mem::RefClass;
using raa::mem::Region;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;

SystemConfig test_cfg() {
  SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = 4;
  cfg.mesh_y = 4;
  return cfg;
}

/// A phase list mixing linear, random and rmw streams — the rmw pairs make
/// odd batch sizes interesting (a pair can straddle a fill() boundary).
std::vector<Phase> mixed_phases(const Region& lin, const Region& rnd) {
  std::vector<Phase> ph;
  ph.push_back(Phase{
      .streams = {Stream{.region = &lin, .stride = 8},
                  Stream{.region = &rnd, .kind = StreamKind::random_rmw,
                         .ref = RefClass::random_unknown, .elem_bytes = 8}},
      .iterations = 37,
      .gap_cycles = 3});
  ph.push_back(Phase{.streams = {}, .iterations = 5});  // empty: skipped
  ph.push_back(Phase{
      .streams = {Stream{.region = &rnd, .kind = StreamKind::random,
                         .store = true, .ref = RefClass::random_noalias,
                         .elem_bytes = 8}},
      .iterations = 29,
      .gap_cycles = 1});
  return ph;
}

TEST(ScriptedProgram, FillMatchesNextExactly) {
  Workload w;
  AddressSpace as{4096};
  const Region& lin = as.add(w, "lin", 4096, RefClass::strided);
  const Region& rnd = as.add(w, "rnd", 4096, RefClass::random_unknown);

  // Pull the same deterministic program one access at a time...
  ScriptedProgram one{mixed_phases(lin, rnd), 99};
  std::vector<Access> via_next;
  Access a;
  while (one.next(a)) via_next.push_back(a);
  ASSERT_FALSE(via_next.empty());

  // ...and in batches of awkward sizes (7 does not divide the rmw pairs,
  // so pending stores must carry across fill() calls).
  for (const std::size_t batch : {1u, 2u, 7u, 64u, 1000u}) {
    ScriptedProgram many{mixed_phases(lin, rnd), 99};
    std::vector<Access> via_fill;
    std::vector<Access> buf(batch);
    for (;;) {
      const std::size_t n = many.fill({buf.data(), batch});
      via_fill.insert(via_fill.end(), buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(n));
      if (n == 0) break;
    }
    ASSERT_EQ(via_fill.size(), via_next.size()) << "batch=" << batch;
    for (std::size_t i = 0; i < via_next.size(); ++i) {
      EXPECT_EQ(via_fill[i].addr, via_next[i].addr) << i;
      EXPECT_EQ(via_fill[i].is_store, via_next[i].is_store) << i;
      EXPECT_EQ(via_fill[i].ref, via_next[i].ref) << i;
      EXPECT_EQ(via_fill[i].gap_cycles, via_next[i].gap_cycles) << i;
    }
    // fill() stays 0 after end of stream.
    EXPECT_EQ(many.fill({buf.data(), batch}), 0u);
  }
}

TEST(ScriptedProgram, LinearStreamAddresses) {
  Workload w;
  AddressSpace as{4096};
  const Region& r = as.add(w, "r", 4096, RefClass::strided);
  std::vector<Phase> ph;
  ph.push_back(Phase{
      .streams = {Stream{.region = &r, .start = 64, .stride = 8}},
      .iterations = 3,
      .gap_cycles = 5});
  ScriptedProgram p{std::move(ph), 1};
  Access a;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(p.next(a));
    EXPECT_EQ(a.addr, r.base + 64 + static_cast<std::uint64_t>(i) * 8);
    EXPECT_FALSE(a.is_store);
    EXPECT_EQ(a.gap_cycles, 5u);
  }
  EXPECT_FALSE(p.next(a));
}

TEST(ScriptedProgram, ZipAlternatesStreams) {
  Workload w;
  AddressSpace as{4096};
  const Region& r1 = as.add(w, "a", 4096, RefClass::strided);
  const Region& r2 = as.add(w, "b", 4096, RefClass::strided);
  std::vector<Phase> ph;
  ph.push_back(Phase{
      .streams = {Stream{.region = &r1, .stride = 8},
                  Stream{.region = &r2, .store = true, .stride = 8}},
      .iterations = 2,
      .gap_cycles = 0});
  ScriptedProgram p{std::move(ph), 1};
  Access a;
  ASSERT_TRUE(p.next(a));
  EXPECT_EQ(a.addr, r1.base);
  ASSERT_TRUE(p.next(a));
  EXPECT_EQ(a.addr, r2.base);
  EXPECT_TRUE(a.is_store);
  ASSERT_TRUE(p.next(a));
  EXPECT_EQ(a.addr, r1.base + 8);
  ASSERT_TRUE(p.next(a));
  EXPECT_EQ(a.addr, r2.base + 8);
  EXPECT_FALSE(p.next(a));
}

TEST(ScriptedProgram, RmwEmitsLoadStorePair) {
  Workload w;
  AddressSpace as{4096};
  const Region& r = as.add(w, "r", 4096, RefClass::random_unknown);
  std::vector<Phase> ph;
  ph.push_back(Phase{
      .streams = {Stream{.region = &r, .kind = StreamKind::random_rmw,
                         .ref = RefClass::random_unknown, .elem_bytes = 8}},
      .iterations = 4,
      .gap_cycles = 2});
  ScriptedProgram p{std::move(ph), 7};
  Access a;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(p.next(a));
    EXPECT_FALSE(a.is_store);
    const auto addr = a.addr;
    ASSERT_TRUE(p.next(a));
    EXPECT_TRUE(a.is_store);
    EXPECT_EQ(a.addr, addr);
    EXPECT_EQ(a.gap_cycles, 0u);  // back-to-back with the load
  }
  EXPECT_FALSE(p.next(a));
}

TEST(ScriptedProgram, RandomStaysInSlice) {
  Workload w;
  AddressSpace as{4096};
  const Region& r = as.add(w, "r", 64 * 1024, RefClass::random_noalias);
  std::vector<Phase> ph;
  ph.push_back(Phase{
      .streams = {Stream{.region = &r, .kind = StreamKind::random,
                         .ref = RefClass::random_noalias,
                         .slice_bytes = 4096, .slice_base = 8192,
                         .elem_bytes = 8}},
      .iterations = 500,
      .gap_cycles = 0});
  ScriptedProgram p{std::move(ph), 3};
  Access a;
  while (p.next(a)) {
    EXPECT_GE(a.addr, r.base + 8192);
    EXPECT_LT(a.addr, r.base + 8192 + 4096);
  }
}

TEST(ScriptedProgram, DeterministicInSeed) {
  Workload w;
  AddressSpace as{4096};
  const Region& r = as.add(w, "r", 64 * 1024, RefClass::random_noalias);
  const auto make = [&] {
    std::vector<Phase> ph;
    ph.push_back(Phase{
        .streams = {Stream{.region = &r, .kind = StreamKind::random,
                           .ref = RefClass::random_noalias, .elem_bytes = 8}},
        .iterations = 100,
        .gap_cycles = 0});
    return ScriptedProgram{std::move(ph), 11};
  };
  auto p1 = make();
  auto p2 = make();
  Access a1, a2;
  while (p1.next(a1)) {
    ASSERT_TRUE(p2.next(a2));
    EXPECT_EQ(a1.addr, a2.addr);
  }
}

TEST(AddressSpace, RegionsDisjointAndAligned) {
  Workload w;
  AddressSpace as{4096};
  as.add(w, "a", 1000, RefClass::strided);
  as.add(w, "b", 5000, RefClass::strided);
  as.add(w, "c", 4096, RefClass::strided);
  for (const auto& r : w.regions) EXPECT_EQ(r.base % 4096, 0u) << r.name;
  for (std::size_t i = 0; i < w.regions.size(); ++i)
    for (std::size_t j = i + 1; j < w.regions.size(); ++j) {
      const auto& a = w.regions[i];
      const auto& b = w.regions[j];
      EXPECT_TRUE(a.base + a.bytes <= b.base || b.base + b.bytes <= a.base);
    }
}

// --- per-kernel structure checks ---------------------------------------

TEST(NasKernels, AllSixPresentInPaperOrder) {
  const auto& ks = nas_kernels();
  ASSERT_EQ(ks.size(), 6u);
  EXPECT_EQ(ks[0].name, "CG");
  EXPECT_EQ(ks[1].name, "EP");
  EXPECT_EQ(ks[2].name, "FT");
  EXPECT_EQ(ks[3].name, "IS");
  EXPECT_EQ(ks[4].name, "MG");
  EXPECT_EQ(ks[5].name, "SP");
}

TEST(NasKernels, OneProgramPerTile) {
  const SystemConfig cfg = test_cfg();
  for (const auto& k : nas_kernels()) {
    const Workload w = k.make(cfg, 1);
    EXPECT_EQ(w.programs.size(), cfg.tiles) << k.name;
    EXPECT_FALSE(w.regions.empty()) << k.name;
  }
}

TEST(NasKernels, CgHasGatherAndStridedStreams) {
  const SystemConfig cfg = test_cfg();
  Workload w = raa::kern::make_cg(cfg, 1);
  std::set<RefClass> classes;
  Access a;
  int n = 0;
  while (w.programs[0]->next(a) && n++ < 20000) classes.insert(a.ref);
  EXPECT_TRUE(classes.contains(RefClass::strided));
  EXPECT_TRUE(classes.contains(RefClass::random_noalias));
}

TEST(NasKernels, IsHasUnknownAliasUpdates) {
  const SystemConfig cfg = test_cfg();
  Workload w = raa::kern::make_is(cfg, 1);
  bool unknown_store = false;
  Access a;
  int n = 0;
  while (w.programs[0]->next(a) && n++ < 20000)
    unknown_store |= (a.ref == RefClass::random_unknown && a.is_store);
  EXPECT_TRUE(unknown_store);
}

TEST(NasKernels, EpIsComputeBound) {
  const SystemConfig cfg = test_cfg();
  Workload w = raa::kern::make_ep(cfg, 1);
  std::uint64_t gap = 0, accesses = 0;
  Access a;
  while (w.programs[0]->next(a)) {
    gap += a.gap_cycles;
    ++accesses;
  }
  // Compute cycles dominate: > 10 gap cycles per access on average.
  EXPECT_GT(gap, 10 * accesses);
}

// --- end-to-end Figure 1 shape at test scale ----------------------------

struct KernelRun {
  std::string name;
  Metrics base, hybrid;
};

KernelRun run_both(const std::string& name, unsigned scale) {
  const SystemConfig cfg = test_cfg();
  const auto& ks = nas_kernels();
  const auto it = std::find_if(ks.begin(), ks.end(),
                               [&](const auto& k) { return k.name == name; });
  RAA_CHECK(it != ks.end());
  KernelRun out;
  out.name = name;
  {
    Workload w = it->make(cfg, scale);
    System sys{cfg, HierarchyMode::cache_only};
    out.base = sys.run(w);
  }
  {
    Workload w = it->make(cfg, scale);
    System sys{cfg, HierarchyMode::hybrid};
    out.hybrid = sys.run(w);
  }
  return out;
}

class NasEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(NasEndToEnd, RunsCoherentlyInBothModes) {
  // The simulator's internal oracle throws on any stale value, so simply
  // completing both runs is a strong protocol check.
  const KernelRun r = run_both(GetParam(), 1);
  EXPECT_GT(r.base.accesses, 0u);
  EXPECT_EQ(r.base.accesses, r.hybrid.accesses);
  EXPECT_GT(r.base.cycles, 0.0);
  EXPECT_GT(r.hybrid.cycles, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NasEndToEnd,
                         ::testing::Values("CG", "EP", "FT", "IS", "MG",
                                           "SP"));

TEST(NasEndToEnd, SpGainsMostEpUnchanged) {
  const KernelRun sp = run_both("SP", 1);
  const KernelRun ep = run_both("EP", 1);
  // SP is stream-dominated: the hybrid hierarchy must win clearly.
  EXPECT_GT(sp.base.cycles / sp.hybrid.cycles, 1.05);
  EXPECT_GT(sp.base.noc_flit_hops / sp.hybrid.noc_flit_hops, 1.1);
  // EP never touches the SPM: identical behaviour, no degradation.
  EXPECT_NEAR(ep.base.cycles / ep.hybrid.cycles, 1.0, 1e-9);
  EXPECT_EQ(ep.hybrid.spm_hits, 0u);
}

TEST(NasEndToEnd, HybridNeverDegradesTime) {
  for (const char* name : {"CG", "FT", "IS", "MG", "SP"}) {
    const KernelRun r = run_both(name, 1);
    EXPECT_GE(r.base.cycles / r.hybrid.cycles, 0.99) << name;
  }
}

TEST(NasEndToEnd, StridedKernelsUseDma) {
  for (const char* name : {"CG", "FT", "MG", "SP"}) {
    const KernelRun r = run_both(name, 1);
    EXPECT_GT(r.hybrid.dma_transfers, 0u) << name;
    EXPECT_GT(r.hybrid.spm_hits, 0u) << name;
  }
}

}  // namespace
