// Tests for raa_common: PRNG determinism and distribution sanity, statistics
// helpers, the table printer, the CLI parser and the process-exit-code
// contract.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using raa::Rng;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1{7}, parent2{7};
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
  // Parent and child should not mirror each other.
  Rng p{7};
  Rng c = p.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (p() == c());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r{3};
  std::array<int, 8> hits{};
  for (int i = 0; i < 8000; ++i) ++hits[r.below(8)];
  for (const int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(Rng, RangeInclusive) {
  Rng r{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{11};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, SummaryKnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = raa::summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummaryEmpty) {
  const auto s = raa::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, GeomeanKnown) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(raa::geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanSingle) {
  const std::vector<double> xs{3.5};
  EXPECT_NEAR(raa::geomean(xs), 3.5, 1e-12);
}

TEST(Stats, MeanKnown) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(raa::mean(xs), 2.0);
}

TEST(Stats, RelDiff) {
  EXPECT_NEAR(raa::rel_diff(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_EQ(raa::rel_diff(0.0, 0.0), 0.0);
}

TEST(Table, AlignsAndPrintsAllRows) {
  raa::Table t{{"name", "x"}};
  t.row("CG", 1.25);
  t.row("longer-name", 10.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("1.250"), std::string::npos);
  EXPECT_NE(out.find("10.500"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Cli, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--n=128", "--alpha=0.5", "--mode=hybrid",
                        "--verbose"};
  const raa::Cli cli{5, argv};
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("mode", ""), "hybrid");
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("n"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, MalformedValueFallsBack) {
  const char* argv[] = {"prog", "--n=abc"};
  const raa::Cli cli{2, argv};
  EXPECT_EQ(cli.get_int("n", 9), 9);
}

TEST(ExitCodes, NumericValuesAreAFrozenContract) {
  // Downstream scripts and the CI shell tests switch on these numbers
  // (docs in common/exit_codes.hpp). Changing any value is a breaking
  // change; the list is append-only.
  EXPECT_EQ(raa::kExitOk, 0);
  EXPECT_EQ(raa::kExitFailure, 1);
  EXPECT_EQ(raa::kExitUsage, 2);
  EXPECT_EQ(raa::kExitBadScenario, 3);
  EXPECT_EQ(raa::kExitPartialFleet, 4);
}

TEST(ExitCodes, NamesMatchTheDocumentedTaxonomy) {
  EXPECT_STREQ(raa::to_string(raa::kExitOk), "ok");
  EXPECT_STREQ(raa::to_string(raa::kExitFailure), "failure");
  EXPECT_STREQ(raa::to_string(raa::kExitUsage), "usage");
  EXPECT_STREQ(raa::to_string(raa::kExitBadScenario), "bad-scenario");
  EXPECT_STREQ(raa::to_string(raa::kExitPartialFleet), "partial-fleet");
}

}  // namespace
