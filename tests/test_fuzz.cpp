// Fuzzing layer: seeded scenario generation (deterministic, always
// parse-valid, every region referenced), the serialize -> parse round
// trip, the marker-divergence shrinker contract, the budgeted driver's
// summary determinism, and property tests for the trace codec (random
// streams round-trip byte-identically; truncated/corrupted RAAT files
// fail with a clear error instead of undefined behaviour).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/genscenario.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"
#include "report/json.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace {

using raa::Rng;
using raa::fuzz::GenLimits;
using raa::mem::Access;
using raa::mem::RefClass;
using raa::scen::Scenario;
using raa::scen::TraceData;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Small limits keep the simulation legs of the oracle battery fast.
GenLimits small_limits() {
  GenLimits lim;
  lim.max_accesses = 512;
  return lim;
}

bool has_marker(const Scenario& s) {
  for (const auto& r : s.regions)
    if (r.name.rfind(raa::fuzz::kMarkerRegionName, 0) == 0) return true;
  return false;
}

// --- generation -----------------------------------------------------------

TEST(FuzzGen, DeterministicInSeedAndIndex) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull})
    for (std::uint64_t i = 0; i < 5; ++i) {
      const Scenario a = raa::fuzz::generate_scenario(seed, i);
      const Scenario b = raa::fuzz::generate_scenario(seed, i);
      EXPECT_TRUE(a == b) << "seed=" << seed << " index=" << i;
      EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
    }
}

TEST(FuzzGen, IndexVariesTheScenario) {
  std::set<std::string> dumps;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Scenario s = raa::fuzz::generate_scenario(9, i);
    s.name.clear();  // the name embeds the index; variety must be deeper
    s.description.clear();
    dumps.insert(s.to_json().dump(0));
  }
  EXPECT_GE(dumps.size(), 8u);
}

TEST(FuzzGen, GeneratedScenariosParseRoundTripFieldIdentical) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull})
    for (std::uint64_t i = 0; i < 25; ++i) {
      const Scenario s = raa::fuzz::generate_scenario(seed, i);
      std::string err;
      const auto parsed = Scenario::parse(s.to_json(), &err);
      ASSERT_TRUE(parsed.has_value())
          << "seed=" << seed << " index=" << i << ": " << err;
      EXPECT_TRUE(*parsed == s) << "seed=" << seed << " index=" << i;
      EXPECT_FALSE(s.first_unreferenced_region().has_value())
          << "seed=" << seed << " index=" << i;
    }
}

TEST(FuzzGen, OracleBatteryAgreesOnGeneratedScenarios) {
  raa::fuzz::OracleOptions opt;
  opt.shards = 2;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const Scenario s = raa::fuzz::generate_scenario(5, i, small_limits());
    const auto div = raa::fuzz::check_oracles(s, opt);
    EXPECT_FALSE(div.has_value())
        << "index=" << i << ": oracle " << raa::fuzz::to_string(div->oracle)
        << " diverged: " << div->detail;
  }
}

// --- marker injection and shrinking --------------------------------------

TEST(FuzzMarker, InjectionKeepsScenarioParseValid) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    Scenario s = raa::fuzz::generate_scenario(21, i);
    raa::fuzz::inject_marker_divergence(s);
    EXPECT_TRUE(has_marker(s));
    std::string err;
    const auto parsed = Scenario::parse(s.to_json(), &err);
    ASSERT_TRUE(parsed.has_value()) << "index=" << i << ": " << err;
    EXPECT_TRUE(*parsed == s) << "index=" << i;
    EXPECT_FALSE(s.first_unreferenced_region().has_value());
  }
}

TEST(FuzzMarker, OracleFailsExactlyOnMarkerScenarios) {
  raa::fuzz::OracleOptions opt;
  opt.shards = 2;
  opt.check_marker = true;
  Scenario s = raa::fuzz::generate_scenario(5, 0, small_limits());
  EXPECT_FALSE(raa::fuzz::check_oracles(s, opt).has_value());
  raa::fuzz::inject_marker_divergence(s);
  const auto div = raa::fuzz::check_oracles(s, opt);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->oracle, raa::fuzz::Oracle::marker);
}

TEST(FuzzShrink, MinimizesInjectedMarkerDivergence) {
  Scenario s = raa::fuzz::generate_scenario(13, 2, small_limits());
  raa::fuzz::inject_marker_divergence(s);
  raa::fuzz::OracleOptions opt;
  opt.shards = 2;
  opt.check_marker = true;

  raa::fuzz::ShrinkStats stats;
  const Scenario shrunk = raa::fuzz::shrink_scenario(
      s,
      [&](const Scenario& cand) {
        const auto d = raa::fuzz::check_oracles(cand, opt);
        return d && d->oracle == raa::fuzz::Oracle::marker;
      },
      &stats);

  // The minimal scenario that still carries the synthetic bug: one marker
  // region, one single-core program touching it, a 1x1 chip.
  ASSERT_EQ(shrunk.regions.size(), 1u);
  EXPECT_TRUE(has_marker(shrunk));
  ASSERT_EQ(shrunk.programs.size(), 1u);
  EXPECT_LE(shrunk.programs[0].cores.size(), 1u);
  EXPECT_EQ(shrunk.config.tiles, 1u);
  EXPECT_LE(shrunk.regions[0].bytes, 64u);
  EXPECT_GE(stats.accepted, 1u);

  // Still a valid scenario file — a repro raa_sim can load unchanged.
  std::string err;
  const auto parsed = Scenario::parse(shrunk.to_json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(*parsed == shrunk);
}

// --- the budgeted driver --------------------------------------------------

TEST(FuzzDriver, SummaryIsDeterministic) {
  raa::fuzz::FuzzOptions opt;
  opt.seed = 17;
  opt.budget_runs = 3;
  opt.shards = 2;
  opt.limits = small_limits();
  opt.quiet = true;
  opt.out_dir = temp_path("fuzz_det_a");
  const auto a = raa::fuzz::run_fuzz(opt);
  opt.out_dir = temp_path("fuzz_det_b");
  const auto b = raa::fuzz::run_fuzz(opt);
  EXPECT_EQ(a.summary.dump(2), b.summary.dump(2));
  EXPECT_EQ(a.divergences, 0u);
  EXPECT_TRUE(a.error.empty()) << a.error;
  const auto* status = a.summary.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->as_string(), "ok");
}

TEST(FuzzDriver, InjectedDivergenceWritesLoadableRepro) {
  raa::fuzz::FuzzOptions opt;
  opt.seed = 29;
  opt.budget_runs = 1;
  opt.shards = 2;
  opt.limits = small_limits();
  opt.quiet = true;
  opt.inject_marker = true;
  opt.out_dir = temp_path("fuzz_marker_out");
  const auto res = raa::fuzz::run_fuzz(opt);
  EXPECT_TRUE(res.error.empty()) << res.error;
  ASSERT_EQ(res.divergences, 1u);

  std::string err;
  const auto repro =
      Scenario::load_file(opt.out_dir + "/repro_i0.json", &err);
  ASSERT_TRUE(repro.has_value()) << err;
  EXPECT_TRUE(has_marker(*repro));
  EXPECT_FALSE(repro->first_unreferenced_region().has_value());

  const auto trace = TraceData::read_file(opt.out_dir + "/repro_i0.raat", &err);
  ASSERT_TRUE(trace.has_value()) << err;
  EXPECT_EQ(trace->cores.size(), repro->config.tiles);
}

// --- trace codec properties -----------------------------------------------

std::vector<Access> random_accesses(Rng& rng, std::size_t n) {
  static constexpr RefClass kClasses[] = {
      RefClass::strided, RefClass::random_noalias, RefClass::random_unknown};
  std::vector<Access> v;
  std::uint64_t addr = rng.below(1u << 20) * 8;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.below(5)) {
      case 0: addr += 64; break;                      // repeat-delta run
      case 1: break;                                  // zero delta
      case 2: addr = rng.below(std::uint64_t{1} << 40); break;  // far jump
      case 3: addr += rng.below(4096); break;         // small forward
      default: addr -= std::min(addr, rng.below(4096)); break;  // backward
    }
    Access a;
    a.addr = addr;
    a.is_store = rng.chance(0.3);
    a.ref = kClasses[rng.below(3)];
    a.gap_cycles =
        rng.chance(0.25) ? static_cast<std::uint32_t>(rng.below(100000)) : 0;
    v.push_back(a);
  }
  return v;
}

TEST(FuzzTraceCodec, RandomStreamsRoundTripByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng{seed};
    const std::size_t n = 1 + rng.below(800);
    const std::vector<Access> in = random_accesses(rng, n);
    const TraceData::CoreStream enc = raa::scen::encode_accesses(in);
    EXPECT_EQ(enc.count, in.size());
    const std::vector<Access> out = raa::scen::decode_stream(enc);
    ASSERT_EQ(out.size(), in.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].addr, in[i].addr) << "seed=" << seed << " i=" << i;
      EXPECT_EQ(out[i].is_store, in[i].is_store);
      EXPECT_EQ(out[i].ref, in[i].ref);
      EXPECT_EQ(out[i].gap_cycles, in[i].gap_cycles);
    }
    // Re-encoding the decoded stream reproduces the exact bytes: the
    // encoding is canonical, not merely invertible.
    const TraceData::CoreStream enc2 = raa::scen::encode_accesses(out);
    EXPECT_EQ(enc.bytes, enc2.bytes) << "seed=" << seed;
  }
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TraceData codec_trace() {
  TraceData t;
  t.mode = raa::mem::HierarchyMode::cache_only;
  t.name = "codec_fixture";
  raa::mem::Region r;
  r.name = "data";
  r.base = 0;
  r.bytes = std::uint64_t{1} << 41;
  r.ref = RefClass::random_noalias;
  t.regions.push_back(std::move(r));
  Rng rng{99};
  t.cores.push_back(raa::scen::encode_accesses(random_accesses(rng, 200)));
  t.cores.resize(t.config.tiles);  // read_file wants one stream per tile
  return t;
}

TEST(FuzzTraceCodec, TruncatedFilesFailWithClearError) {
  const std::string path = temp_path("fuzz_codec_trunc.raat");
  const TraceData t = codec_trace();
  std::string err;
  ASSERT_TRUE(t.write_file(path, &err)) << err;
  const std::vector<char> whole = slurp(path);
  ASSERT_FALSE(whole.empty());
  ASSERT_TRUE(TraceData::read_file(path, &err).has_value()) << err;

  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{8},
        whole.size() / 2, whole.size() - 1}) {
    const std::string cut_path = temp_path("fuzz_codec_cut.raat");
    spit(cut_path, {whole.begin(), whole.begin() + static_cast<long>(cut)});
    err.clear();
    const auto broken = TraceData::read_file(cut_path, &err);
    EXPECT_FALSE(broken.has_value()) << "cut=" << cut;
    EXPECT_FALSE(err.empty()) << "cut=" << cut;
  }
}

TEST(FuzzTraceCodec, CorruptedBytesNeverCrashTheLoader) {
  const std::string path = temp_path("fuzz_codec_flip.raat");
  const TraceData t = codec_trace();
  std::string err;
  ASSERT_TRUE(t.write_file(path, &err)) << err;
  const std::vector<char> whole = slurp(path);

  // Flip every byte of the header region (magic, version, config walk,
  // mode/flags) and a sample of the stream bytes: the loader must either
  // reject with a message or accept a benignly different trace — never
  // crash or read out of bounds (ASan/UBSan jobs run this too).
  Rng rng{7};
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < std::min<std::size_t>(whole.size(), 64); ++i)
    positions.push_back(i);
  for (int i = 0; i < 64; ++i) positions.push_back(rng.below(whole.size()));
  for (const std::size_t pos : positions) {
    std::vector<char> mutated = whole;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xFF);
    const std::string flip_path = temp_path("fuzz_codec_flipped.raat");
    spit(flip_path, mutated);
    err.clear();
    const auto loaded = TraceData::read_file(flip_path, &err);
    if (!loaded.has_value()) {
      EXPECT_FALSE(err.empty()) << "pos=" << pos;
    }
  }
}

// --- degenerate-scenario rejection (raa_sim exit-3 companion) -------------

TEST(FuzzScenario, FirstUnreferencedRegionFindsTheOrphan) {
  const char* doc = R"({
    "name": "orphan_check",
    "config": {"tiles": 2, "mesh_x": 2, "mesh_y": 1},
    "regions": [
      {"name": "data", "class": "random_noalias", "bytes": 1024},
      {"name": "orphan", "class": "random_unknown", "bytes": 2048}
    ],
    "programs": [
      {"generator": "zipf", "region": "data", "accesses": 64}
    ]
  })";
  std::string err;
  const auto v = raa::json::Value::parse(doc, &err);
  ASSERT_TRUE(v.has_value()) << err;
  const auto s = Scenario::parse(*v, &err);
  ASSERT_TRUE(s.has_value()) << err;
  const auto unref = s->first_unreferenced_region();
  ASSERT_TRUE(unref.has_value());
  EXPECT_EQ(*unref, 1u);
  EXPECT_EQ(s->regions[*unref].name, "orphan");
}

}  // namespace
