// Tests for the §4 resilient-CG stack: CSR construction and kernels, CG
// convergence, DUE injection, and the exactness / ordering properties of
// the four recovery schemes (Figure 4's qualitative claims).
#include <gtest/gtest.h>

#include <cmath>

#include "solver/cg.hpp"
#include "solver/csr.hpp"

namespace {

using raa::solver::CgOptions;
using raa::solver::CgResult;
using raa::solver::Csr;
using raa::solver::FaultSpec;
using raa::solver::FaultTarget;
using raa::solver::laplacian_2d;
using raa::solver::laplacian_3d;
using raa::solver::Recovery;
using raa::solver::solve_cg;

std::vector<double> ones(std::size_t n) { return std::vector<double>(n, 1.0); }

TEST(Csr, Laplacian2dStructure) {
  const Csr a = laplacian_2d(3, 3);
  EXPECT_EQ(a.n, 9u);
  // 9 diagonal + 2*(edges): 12 horizontal+vertical edges x2 = 24 -> 33.
  EXPECT_EQ(a.nnz(), 33u);
  // Corner row has 3 entries, centre row 5.
  EXPECT_EQ(a.row_ptr[1] - a.row_ptr[0], 3u);
  EXPECT_EQ(a.row_ptr[5] - a.row_ptr[4], 5u);
}

TEST(Csr, LaplacianIsSymmetric) {
  const Csr a = laplacian_2d(5, 4);
  // Check A == A^T entry-wise via dense mirror.
  std::vector<std::vector<double>> dense(a.n, std::vector<double>(a.n, 0.0));
  for (std::size_t r = 0; r < a.n; ++r)
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k)
      dense[r][a.col[k]] = a.val[k];
  for (std::size_t i = 0; i < a.n; ++i)
    for (std::size_t j = 0; j < a.n; ++j)
      EXPECT_DOUBLE_EQ(dense[i][j], dense[j][i]);
}

TEST(Csr, SpmvMatchesDense) {
  const Csr a = laplacian_2d(4, 4);
  std::vector<double> x(a.n);
  for (std::size_t i = 0; i < a.n; ++i) x[i] = static_cast<double>(i + 1);
  std::vector<double> y(a.n);
  raa::solver::spmv(a, x, y);
  // Row 5 (interior point of 4x4 grid: index 5 = (1,1)):
  // 4*x[5] - x[1] - x[4] - x[6] - x[9].
  EXPECT_DOUBLE_EQ(y[5], 4 * x[5] - x[1] - x[4] - x[6] - x[9]);
}

TEST(Csr, PartialSpmvMatchesFull) {
  const Csr a = laplacian_2d(6, 5);
  std::vector<double> x(a.n, 2.5);
  std::vector<double> full(a.n), part(a.n, -1.0);
  raa::solver::spmv(a, x, full);
  raa::solver::spmv_rows(a, x, part, 10, 20);
  for (std::size_t i = 10; i < 20; ++i) EXPECT_DOUBLE_EQ(part[i], full[i]);
}

TEST(Csr, PrincipalSubmatrix) {
  const Csr a = laplacian_2d(4, 4);
  const Csr s = raa::solver::principal_submatrix(a, 4, 12);
  EXPECT_EQ(s.n, 8u);
  // Diagonal preserved.
  for (std::size_t r = 0; r < s.n; ++r) {
    double diag = 0.0;
    for (std::size_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k)
      if (s.col[k] == r) diag = s.val[k];
    EXPECT_DOUBLE_EQ(diag, 4.0);
  }
}

TEST(Csr, Blas1Helpers) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(raa::solver::dot(a, b), 32.0);
  raa::solver::axpy(2.0, a, b);
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
  raa::solver::xpby(a, 0.5, b);
  EXPECT_EQ(b, (std::vector<double>{4, 6.5, 9}));
  EXPECT_DOUBLE_EQ(raa::solver::norm2(std::vector<double>{3, 4}), 5.0);
}

TEST(Cg, ConvergesOn2dPoisson) {
  const Csr a = laplacian_2d(32, 32);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult res = solve_cg(a, b, x, CgOptions{.rel_tolerance = 1e-9});
  EXPECT_TRUE(res.converged);
  // Verify the solution: || b - A x || / || b || <= ~1e-9.
  std::vector<double> ax(a.n);
  raa::solver::spmv(a, x, ax);
  raa::solver::axpy(-1.0, b, ax);
  EXPECT_LT(raa::solver::norm2(ax) / raa::solver::norm2(b), 1e-8);
}

TEST(Cg, ConvergesOn3dPoisson) {
  const Csr a = laplacian_3d(8, 8, 8);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult res = solve_cg(a, b, x, CgOptions{.rel_tolerance = 1e-8});
  EXPECT_TRUE(res.converged);
}

TEST(Cg, TraceIsMonotoneInTime) {
  const Csr a = laplacian_2d(24, 24);
  std::vector<double> x;
  const CgResult res = solve_cg(a, ones(a.n), x, CgOptions{});
  ASSERT_GT(res.trace.size(), 2u);
  for (std::size_t i = 1; i < res.trace.size(); ++i)
    EXPECT_GE(res.trace[i].time_s, res.trace[i - 1].time_s);
  EXPECT_LT(res.trace.back().rel_residual, res.trace.front().rel_residual);
}

TEST(Cg, InnerCgSolvesSmallSystem) {
  const Csr a = laplacian_2d(8, 8);
  const auto b = ones(a.n);
  std::vector<double> x(a.n, 0.0);
  const std::size_t it = raa::solver::inner_cg(a, b, x, 1e-12, 1000);
  EXPECT_GT(it, 0u);
  std::vector<double> ax(a.n);
  raa::solver::spmv(a, x, ax);
  raa::solver::axpy(-1.0, b, ax);
  EXPECT_LT(raa::solver::norm2(ax), 1e-10);
}

// --- fault injection + recovery -----------------------------------------

CgOptions faulty(Recovery rec, std::size_t inject_at,
                 FaultTarget target = FaultTarget::x) {
  return CgOptions{
      .max_iterations = 20000,
      .rel_tolerance = 1e-8,
      .recovery = rec,
      .checkpoint_interval = 50,
      .fault = FaultSpec{.enabled = true,
                         .iteration = inject_at,
                         .target = target,
                         .block = 3,
                         .num_blocks = 16},
  };
}

struct Fig4Runs {
  CgResult ideal, ckpt, restart, feir, afeir;
};

Fig4Runs run_fig4(std::size_t grid = 40, std::size_t inject_at = 60) {
  const Csr a = laplacian_2d(grid, grid);
  const auto b = ones(a.n);
  Fig4Runs runs;
  std::vector<double> x;
  runs.ideal = solve_cg(a, b, x, CgOptions{.rel_tolerance = 1e-8});
  runs.ckpt = solve_cg(a, b, x, faulty(Recovery::checkpoint, inject_at));
  runs.restart = solve_cg(a, b, x, faulty(Recovery::lossy_restart, inject_at));
  runs.feir = solve_cg(a, b, x, faulty(Recovery::feir, inject_at));
  runs.afeir = solve_cg(a, b, x, faulty(Recovery::afeir, inject_at));
  return runs;
}

TEST(Recovery, AllSchemesConverge) {
  const Fig4Runs r = run_fig4();
  EXPECT_TRUE(r.ideal.converged);
  EXPECT_TRUE(r.ckpt.converged);
  EXPECT_TRUE(r.restart.converged);
  EXPECT_TRUE(r.feir.converged);
  EXPECT_TRUE(r.afeir.converged);
}

TEST(Recovery, Figure4Ordering) {
  // The paper's qualitative result: ideal <= afeir <= feir < {ckpt, restart}.
  const Fig4Runs r = run_fig4();
  EXPECT_LE(r.ideal.time_s, r.afeir.time_s);
  EXPECT_LE(r.afeir.time_s, r.feir.time_s * (1.0 + 1e-12));
  EXPECT_LT(r.feir.time_s, r.ckpt.time_s);
  EXPECT_LT(r.feir.time_s, r.restart.time_s);
}

TEST(Recovery, FeirConvergenceCloseToIdeal) {
  // Exact recovery: iteration count within a handful of the ideal run.
  const Fig4Runs r = run_fig4();
  EXPECT_LE(r.feir.iterations, r.ideal.iterations + 5);
}

TEST(Recovery, LossyRestartNeedsMoreIterations) {
  const Fig4Runs r = run_fig4();
  EXPECT_GT(r.restart.iterations, r.ideal.iterations);
}

TEST(Recovery, CheckpointRedoesWork) {
  const Fig4Runs r = run_fig4();
  // Rollback to iteration 50 from 60 -> >= ~10 redone iterations.
  EXPECT_GE(r.ckpt.iterations, r.ideal.iterations + 8);
}

TEST(Recovery, FeirRecoversExactly) {
  // Direct algebraic check: solve to convergence with a fault; the final
  // solution must satisfy the system as well as the ideal run.
  const Csr a = laplacian_2d(40, 40);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult res = solve_cg(a, b, x, faulty(Recovery::feir, 60));
  ASSERT_TRUE(res.converged);
  std::vector<double> ax(a.n);
  raa::solver::spmv(a, x, ax);
  raa::solver::axpy(-1.0, b, ax);
  EXPECT_LT(raa::solver::norm2(ax) / raa::solver::norm2(b), 1e-7);
  EXPECT_GT(res.inner_iterations, 0u);
}

TEST(Recovery, FeirResidualJumpIsSmall) {
  // The residual right after recovery must be close to the pre-fault one
  // (exactness) — unlike lossy restart, which visibly jumps.
  const auto trace_jump = [](const CgResult& res, std::size_t inject_at) {
    double before = 0.0, after = 0.0;
    for (std::size_t i = 1; i < res.trace.size(); ++i) {
      if (res.trace[i].iteration == inject_at &&
          res.trace[i - 1].iteration == inject_at) {
        before = res.trace[i - 1].rel_residual;
        after = res.trace[i].rel_residual;
        break;
      }
    }
    return std::make_pair(before, after);
  };
  const Csr a = laplacian_2d(40, 40);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult feir = solve_cg(a, b, x, faulty(Recovery::feir, 60));
  const CgResult lossy =
      solve_cg(a, b, x, faulty(Recovery::lossy_restart, 60));
  const auto [fb, fa] = trace_jump(feir, 60);
  const auto [lb, la] = trace_jump(lossy, 60);
  ASSERT_GT(fb, 0.0);
  ASSERT_GT(lb, 0.0);
  EXPECT_LT(fa / fb, 1.5);   // essentially unchanged
  EXPECT_GT(la / lb, 2.0);   // visible setback
}

TEST(Recovery, RFaultRecomputedExactly) {
  const Csr a = laplacian_2d(32, 32);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult res =
      solve_cg(a, b, x, faulty(Recovery::feir, 40, FaultTarget::r));
  EXPECT_TRUE(res.converged);
  std::vector<double> ideal_x;
  const CgResult ideal = solve_cg(a, b, ideal_x, CgOptions{});
  EXPECT_LE(res.iterations, ideal.iterations + 5);
}

TEST(Recovery, PFaultStillConverges) {
  const Csr a = laplacian_2d(32, 32);
  const auto b = ones(a.n);
  std::vector<double> x;
  const CgResult res =
      solve_cg(a, b, x, faulty(Recovery::feir, 40, FaultTarget::p));
  EXPECT_TRUE(res.converged);
}

TEST(Recovery, UnprotectedFaultMayStallOrMisconverge) {
  // Sanity: with recovery == none and a fault flagged, the fault is simply
  // not injected (the "Ideal" series); this documents the API contract.
  const Csr a = laplacian_2d(24, 24);
  const auto b = ones(a.n);
  std::vector<double> x;
  CgOptions opt = faulty(Recovery::none, 30);
  const CgResult res = solve_cg(a, b, x, opt);
  EXPECT_TRUE(res.converged);
}

TEST(Recovery, AsyncOverheadSmallerThanSync) {
  const Fig4Runs r = run_fig4();
  EXPECT_LT(r.afeir.recovery_time_s, r.feir.recovery_time_s);
}

class CkptIntervalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CkptIntervalSweep, ConvergesForAllIntervals) {
  const Csr a = laplacian_2d(32, 32);
  const auto b = ones(a.n);
  std::vector<double> x;
  CgOptions opt = faulty(Recovery::checkpoint, 60);
  opt.checkpoint_interval = GetParam();
  const CgResult res = solve_cg(a, b, x, opt);
  EXPECT_TRUE(res.converged) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Intervals, CkptIntervalSweep,
                         ::testing::Values(10, 25, 50, 100, 1000));

}  // namespace
