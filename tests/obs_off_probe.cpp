// Compile-time-off probe for the tracing gate (built with RAA_OBS_DISABLED
// on this target only). The obs libraries themselves are compiled once,
// unconditionally — the gate lives entirely in the obs.hpp macros — so this
// TU's instrumentation sites must vanish while the linked library code keeps
// working. The probe asserts, with a live session:
//   - RAA_OBS_ENABLED is 0 and the macros emit nothing from this TU;
//   - emitting nothing allocates no rings on this thread;
//   - a simulator run still produces bit-identical metrics whether or not
//     a session is active (tracing observes, never perturbs).
// Exit 0 on success, 1 with a diagnostic on the first failed check.

#include <cstdio>
#include <cstdint>
#include <memory>
#include <vector>

#include "kernels/program.hpp"
#include "memsim/system.hpp"
#include "obs/obs.hpp"

#if RAA_OBS_ENABLED
#error "obs_off_probe must be compiled with RAA_OBS_DISABLED"
#endif

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "obs_off_probe: FAIL: %s\n", what);
    ++failures;
  }
}

raa::mem::Workload tiny_workload(const raa::mem::SystemConfig& cfg) {
  using namespace raa::kern;
  raa::mem::Workload w;
  w.name = "off_probe";
  AddressSpace as{cfg.dma_chunk_bytes};
  const raa::mem::Region& r =
      as.add(w, "data", cfg.tiles * cfg.dma_chunk_bytes,
             raa::mem::RefClass::strided);
  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> ph;
    ph.push_back(Phase{
        .streams = {Stream{.region = &r, .store = false,
                           .start = c * cfg.dma_chunk_bytes, .stride = 8}},
        .iterations = cfg.dma_chunk_bytes / 8,
        .gap_cycles = 1});
    w.programs.push_back(std::make_unique<ScriptedProgram>(std::move(ph), c));
  }
  return w;
}

}  // namespace

int main() {
  namespace obs = raa::obs;
  raa::mem::SystemConfig cfg;
  cfg.tiles = 4;
  cfg.mesh_x = 2;
  cfg.mesh_y = 2;

  // Baseline metrics without any session.
  raa::mem::Metrics plain;
  {
    raa::mem::System sys{cfg, raa::mem::HierarchyMode::hybrid};
    raa::mem::Workload w = tiny_workload(cfg);
    plain = sys.run(w);
  }

  // This TU's macro sites are dead code: with a session active, hammering
  // them records nothing and allocates no ring for this thread.
  check(obs::start(), "start() begins a session");
  const std::uint64_t allocs_before = obs::ring_allocations();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    RAA_OBS_HOST_EVENT(app, mark, instant, i, i + 1);
    RAA_OBS_SIM_EVENT(memsim, dram_enqueue, instant,
                      static_cast<double>(i), i, 0u);
  }
  check(obs::ring_allocations() == allocs_before,
        "disabled macros allocate no rings");

  // The linked (gate-on) library still works under the active session, and
  // tracing does not perturb the simulated metrics.
  raa::mem::Metrics traced;
  {
    raa::mem::System sys{cfg, raa::mem::HierarchyMode::hybrid};
    raa::mem::Workload w = tiny_workload(cfg);
    traced = sys.run(w);
  }
  const obs::Trace t = obs::stop();
  check(traced == plain, "gated metrics identical with tracing active");

  // Every drained event came from the instrumented library, none from this
  // TU's dead macro sites (our a0/a1 pattern never appears as a mark).
  for (const obs::Event& e : t.events)
    check(!(e.name == obs::Name::mark && e.cat == obs::Cat::app),
          "no events from disabled macro sites");

  if (failures == 0) std::printf("obs_off_probe: ok (%zu library events)\n",
                                 t.events.size());
  return failures == 0 ? 0 : 1;
}
