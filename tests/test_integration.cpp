// Cross-layer integration tests: the paper's central loop is
// (1) the runtime executes an annotated task program and captures the TDG,
// (2) architecture components consume that TDG — criticality analysis,
//     DVFS governors, machine-model replay.
// These tests drive real task programs through the whole chain.
#include <gtest/gtest.h>

#include "apps/miniapps.hpp"
#include "rsu/criticality.hpp"
#include "rsu/rsu.hpp"
#include "runtime/runtime.hpp"
#include "simcore/tdg_sim.hpp"

namespace {

using raa::rt::Criticality;
using raa::rt::Runtime;
using raa::sim::MachineConfig;
using raa::sim::replay;

TEST(Integration, CapturedGraphReplaysWithSpeedup) {
  // Execute the dataflow bodytrack port for real, then replay its captured
  // TDG (costs = measured durations) on wider simulated machines.
  const raa::apps::BodytrackParams p{.frames = 6, .particles = 64,
                                     .chunks = 8, .pixels = 1024};
  Runtime rt;
  (void)raa::apps::bodytrack_parallel(p, rt, raa::apps::Style::dataflow);
  const auto g = rt.graph();
  ASSERT_EQ(g.node_count(), p.frames * (p.chunks + 2));

  const auto r1 = replay(g, MachineConfig{.cores = 1},
                         raa::sim::priority_bottom_level());
  const auto r8 = replay(g, MachineConfig{.cores = 8},
                         raa::sim::priority_bottom_level());
  EXPECT_GT(r1.makespan_ns, 0.0);
  EXPECT_GT(r1.makespan_ns / r8.makespan_ns, 1.5)
      << "measured-cost TDG must expose real parallelism";
}

TEST(Integration, ProgrammerHintsReachTheGovernor) {
  // Tasks annotated critical by the programmer (Sec. 3.1: "task criticality
  // can be simply annotated") must be boosted by the governor even when
  // graph analysis alone would not mark them.
  Runtime rt;
  double slots[8] = {};
  for (int i = 0; i < 8; ++i) {
    rt.spawn({raa::rt::out(slots[i])}, [] {},
             {.label = "t" + std::to_string(i),
              .criticality = i == 3 ? Criticality::critical
                                    : Criticality::normal,
              .cost_hint = 1000.0});
  }
  rt.taskwait();
  auto g = rt.graph();

  raa::rsu::CriticalityGovernor gov{
      {.slack_fraction = 0.0, .reconfig = raa::rsu::rsu_hardware()}};
  MachineConfig m{.cores = 2, .power_budget_w = 1000.0};
  const auto r = replay(g, m, raa::sim::priority_bottom_level(), &gov);
  // All eight tasks are independent and equal-cost: all are "on a longest
  // path" -> everything is turbo. Check instead with unequal costs:
  // the hinted task must be boosted regardless of its slack.
  Runtime rt2;
  double a = 0.0, b = 0.0;
  rt2.spawn({raa::rt::out(a)}, [] {}, {.cost_hint = 10000.0});
  rt2.spawn({raa::rt::out(b)}, [] {},
            {.criticality = Criticality::critical, .cost_hint = 10.0});
  rt2.taskwait();
  const auto g2 = rt2.graph();
  raa::rsu::CriticalityGovernor gov2{
      {.slack_fraction = 0.0, .reconfig = raa::rsu::rsu_hardware()}};
  const auto r2 = replay(g2, m, raa::sim::priority_bottom_level(), &gov2);
  EXPECT_DOUBLE_EQ(r2.timeline[1].op.freq_ghz, 2.4)
      << "hinted tiny task boosted";
  EXPECT_DOUBLE_EQ(r2.timeline[0].op.freq_ghz, 2.4)
      << "long task is the actual critical path";
  (void)r;
}

TEST(Integration, CriticalityStudyOnRuntimeCapturedGraph) {
  // The full Sec. 3.1 study applied to a TDG captured from a real dataflow
  // execution (facesim port) with synthetic per-task cost hints removed —
  // measured nanosecond costs are used as cycles.
  const raa::apps::FacesimParams p{.frames = 8, .nodes = 1024,
                                   .partitions = 16};
  Runtime rt;
  (void)raa::apps::facesim_parallel(p, rt, raa::apps::Style::dataflow);
  const auto g = rt.graph();
  const auto study =
      raa::rsu::run_criticality_study(g, MachineConfig{.cores = 16});
  // No fixed band (measured costs vary with host load); but the study must
  // be internally consistent and the RSU never worse than software DVFS.
  EXPECT_GT(study.fifo_nominal.makespan_ns, 0.0);
  EXPECT_LE(study.cats_rsu.makespan_ns,
            study.cats_sw.makespan_ns * (1.0 + 1e-9));
}

TEST(Integration, WorkHelpingExecutesEverythingWithoutWorkers) {
  // The whole dataflow facesim app runs to completion on zero workers
  // (pure work-helping in taskwait): no deadlock, correct results.
  const raa::apps::FacesimParams p{.frames = 4, .nodes = 256,
                                   .partitions = 4};
  const auto expect = raa::apps::facesim_serial(p);
  Runtime rt{{.num_workers = 0}};
  const auto got =
      raa::apps::facesim_parallel(p, rt, raa::apps::Style::dataflow);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(rt.stats().tasks_executed, rt.stats().tasks_spawned);
}

TEST(Integration, TraceAndGraphAgree) {
  const raa::apps::BodytrackParams p{.frames = 3, .particles = 32,
                                     .chunks = 4, .pixels = 256};
  Runtime rt{{.num_workers = 2}};
  (void)raa::apps::bodytrack_parallel(p, rt, raa::apps::Style::dataflow);
  const auto g = rt.graph();
  const auto trace = rt.trace();
  ASSERT_EQ(trace.size(), g.node_count());
  // Every dependence edge is respected by the measured timestamps.
  std::vector<std::uint64_t> end_ns(g.node_count());
  std::vector<std::uint64_t> start_ns(g.node_count());
  for (const auto& rec : trace) {
    end_ns[rec.task] = rec.end_ns;
    start_ns[rec.task] = rec.start_ns;
  }
  for (raa::tdg::NodeId v = 0; v < g.node_count(); ++v)
    for (const auto s : g.successors(v))
      EXPECT_LE(end_ns[v], start_ns[s]) << v << " -> " << s;
}

TEST(Integration, SchedulerPoliciesAllRunTheApps) {
  using raa::rt::SchedulerPolicy;
  const raa::apps::BodytrackParams p{.frames = 4, .particles = 32,
                                     .chunks = 4, .pixels = 256};
  const auto expect = raa::apps::bodytrack_serial(p);
  for (const auto policy :
       {SchedulerPolicy::fifo, SchedulerPolicy::lifo,
        SchedulerPolicy::work_stealing, SchedulerPolicy::criticality_first}) {
    Runtime rt{{.num_workers = 3, .policy = policy}};
    const auto got =
        raa::apps::bodytrack_parallel(p, rt, raa::apps::Style::dataflow);
    EXPECT_EQ(got, expect) << raa::rt::to_string(policy);
  }
}

}  // namespace
