// Tests for the benchmark report layer (src/report/): JSON writer
// escaping and round-trips, BenchReport statistics across repetitions, and
// the baseline-comparison tolerance logic that gates the perf-trend CI.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "report/compare.hpp"
#include "report/json.hpp"
#include "report/report.hpp"

namespace {

using raa::json::Value;

// --------------------------------------------------------------------------
// JSON writer: escaping
// --------------------------------------------------------------------------

TEST(JsonEscape, QuotesBackslashesAndControls) {
  EXPECT_EQ(raa::json::escape("plain"), "plain");
  EXPECT_EQ(raa::json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(raa::json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(raa::json::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(raa::json::escape("\b\f"), "\\b\\f");
  EXPECT_EQ(raa::json::escape(std::string{"x\x01y", 3}), "x\\u0001y");
}

TEST(JsonEscape, Utf8PassesThrough) {
  EXPECT_EQ(raa::json::escape("§3.2 µbench"), "§3.2 µbench");
}

TEST(JsonDump, StringsAreQuotedAndEscaped) {
  EXPECT_EQ(Value{"he said \"hi\""}.dump(), "\"he said \\\"hi\\\"\"");
}

TEST(JsonDump, Numbers) {
  EXPECT_EQ(Value{64}.dump(), "64");
  EXPECT_EQ(Value{1.5}.dump(), "1.5");
  EXPECT_EQ(Value{-0.25}.dump(), "-0.25");
  // JSON has no NaN/Inf; they degrade to null.
  EXPECT_EQ(Value{std::nan("")}.dump(), "null");
  EXPECT_EQ(Value{HUGE_VAL}.dump(), "null");
}

TEST(JsonDump, CompactAndPretty) {
  Value v{raa::json::Object{}};
  v.set("a", 1);
  v.set("b", raa::json::Array{Value{true}, Value{nullptr}});
  EXPECT_EQ(v.dump(), "{\"a\":1,\"b\":[true,null]}");
  EXPECT_EQ(v.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}");
}

TEST(JsonDump, ObjectsPreserveInsertionOrder) {
  Value v{raa::json::Object{}};
  v.set("zebra", 1);
  v.set("alpha", 2);
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2}");
  v.set("zebra", 3);  // overwrite keeps position
  EXPECT_EQ(v.dump(), "{\"zebra\":3,\"alpha\":2}");
}

// --------------------------------------------------------------------------
// JSON parser + round-trips
// --------------------------------------------------------------------------

TEST(JsonParse, RoundTripsANestedDocument) {
  Value doc{raa::json::Object{}};
  doc.set("name", "fig3 \"vsr\"\n");
  doc.set("ok", true);
  doc.set("nothing", nullptr);
  doc.set("x", 1.147);
  Value arr{raa::json::Array{}};
  arr.push_back(1);
  arr.push_back("two");
  Value inner{raa::json::Object{}};
  inner.set("k", -3.5e-2);
  arr.push_back(std::move(inner));
  doc.set("list", std::move(arr));

  for (const int indent : {0, 2, 4}) {
    const auto parsed = Value::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(*parsed, doc) << "indent=" << indent;
  }
}

TEST(JsonParse, AcceptsEscapesAndUnicode) {
  const auto v = Value::parse(R"("a\u0041\n\t\\\" \u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "aA\n\t\\\" \xC3\xA9");
  // Surrogate pair: U+1F600.
  const auto emoji = Value::parse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(emoji.has_value());
  EXPECT_EQ(emoji->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string err;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "\"\\u12G4\"", "\"\\uD800\"", "nullx"}) {
    err.clear();
    EXPECT_FALSE(Value::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  std::string err;
  // The stray token sits on line 3, column 10.
  EXPECT_FALSE(
      Value::parse("{\n  \"a\": 1,\n  \"b\":   oops\n}", &err).has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("column 10"), std::string::npos) << err;

  err.clear();
  EXPECT_FALSE(Value::parse("[1, 2] trailing", &err).has_value());
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
  EXPECT_NE(err.find("line 1, column 8"), std::string::npos) << err;

  // Single-line documents report column positions too.
  err.clear();
  EXPECT_FALSE(Value::parse("{\"a\":}", &err).has_value());
  EXPECT_NE(err.find("line 1, column 6"), std::string::npos) << err;
}

TEST(JsonParse, RejectsDuplicateObjectKeys) {
  std::string err;
  EXPECT_FALSE(
      Value::parse("{\n  \"tiles\": 4,\n  \"tiles\": 8\n}", &err)
          .has_value());
  EXPECT_NE(err.find("duplicate object key \"tiles\""), std::string::npos)
      << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;

  // Same key in *different* objects is fine.
  EXPECT_TRUE(Value::parse(R"([{"a": 1}, {"a": 2}])").has_value());
  EXPECT_TRUE(Value::parse(R"({"outer": {"a": 1}, "a": 2})").has_value());
}

TEST(JsonParse, FindLooksUpObjectMembers) {
  const auto v = Value::parse(R"({"a": 1, "b": {"c": "x"}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->find("b"), nullptr);
  ASSERT_NE(v->find("b")->find("c"), nullptr);
  EXPECT_EQ(v->find("b")->find("c")->as_string(), "x");
  EXPECT_EQ(v->find("missing"), nullptr);
  EXPECT_EQ(v->find("a")->find("nested-in-number"), nullptr);
}

// --------------------------------------------------------------------------
// common/stats median (new for the report layer)
// --------------------------------------------------------------------------

TEST(Stats, Median) {
  EXPECT_EQ(raa::median({}), 0.0);
  const double one[] = {3.0};
  EXPECT_EQ(raa::median(one), 3.0);
  const double odd[] = {9.0, 1.0, 5.0};
  EXPECT_EQ(raa::median(odd), 5.0);
  const double even[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(raa::median(even), 2.5);
}

// --------------------------------------------------------------------------
// BenchReport aggregation across repetitions
// --------------------------------------------------------------------------

TEST(BenchReport, AggregatesSamplesAcrossReps) {
  raa::report::BenchReport r{"fig_test", "§0 Figure 0"};
  r.record("speedup", 2.0, "x", 3.4);
  r.record("speedup", 4.0);
  r.record("speedup", 3.0);
  ASSERT_EQ(r.metrics().size(), 1u);
  const auto& m = r.metrics().front();
  EXPECT_EQ(m.unit(), "x");
  ASSERT_TRUE(m.paper_value().has_value());
  EXPECT_DOUBLE_EQ(*m.paper_value(), 3.4);
  const auto s = m.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(m.median(), 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(BenchReport, AbsorbAppendsSamplesInInsertionOrder) {
  // The parallel bench harness records each repetition into a private
  // report and absorbs them in registration order: the merged report must
  // be indistinguishable from serially recording into one report.
  raa::report::BenchReport serial{"fig_test", "§0"};
  serial.set_param("tiles", "64");
  serial.record("time_x", 1.0, "x", 1.147);
  serial.record("noc_x", 3.0, "x");
  serial.record("time_x", 2.0);
  serial.record("noc_x", 4.0);

  raa::report::BenchReport rep0{"fig_test", "§0"};
  rep0.set_param("tiles", "64");
  rep0.record("time_x", 1.0, "x", 1.147);
  rep0.record("noc_x", 3.0, "x");
  raa::report::BenchReport rep1{"fig_test", "§0"};
  rep1.set_param("tiles", "64");
  rep1.record("time_x", 2.0, "x", 1.147);
  rep1.record("noc_x", 4.0, "x");
  raa::report::BenchReport merged{"fig_test", "§0"};
  merged.absorb(rep0);
  merged.absorb(rep1);

  EXPECT_EQ(merged.to_json().dump(2), serial.to_json().dump(2));
}

TEST(BenchReport, AbsorbKeepsInformationalFlagAndUnitFromFirstSeen) {
  raa::report::BenchReport a{"b", "§0"};
  a.record_info("wall_seconds", 0.5, "s");
  raa::report::BenchReport b{"b", "§0"};
  b.record_info("wall_seconds", 0.7, "s");
  a.absorb(b);
  ASSERT_EQ(a.metrics().size(), 1u);
  EXPECT_TRUE(a.metrics().front().informational());
  EXPECT_EQ(a.metrics().front().unit(), "s");
  EXPECT_EQ(a.metrics().front().samples().size(), 2u);
}

TEST(BenchReport, MetricJsonShape) {
  raa::report::BenchReport r{"fig_test", "§0"};
  r.record("m", 1.0, "ns");
  r.record("m", 2.0);
  const auto j = r.to_json();
  EXPECT_EQ(j.find("name")->as_string(), "fig_test");
  const auto& metrics = j.find("metrics")->as_array();
  ASSERT_EQ(metrics.size(), 1u);
  for (const char* field :
       {"name", "unit", "count", "min", "median", "mean", "max", "stddev",
        "samples"})
    EXPECT_NE(metrics[0].find(field), nullptr) << field;
  EXPECT_EQ(metrics[0].find("samples")->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(metrics[0].find("median")->as_number(), 1.5);
  // No paper value recorded -> the field is omitted.
  EXPECT_EQ(metrics[0].find("paper_value"), nullptr);
}

TEST(RunReport, SchemaHeaderAndEnvironment) {
  raa::report::RunReport run{3};
  run.benchmark("b1", "§1").record("m", 1.0);
  const auto j = run.to_json();
  EXPECT_EQ(j.find("schema")->as_string(), raa::report::kSchemaName);
  EXPECT_EQ(j.find("schema_version")->as_number(),
            raa::report::kSchemaVersion);
  EXPECT_EQ(j.find("reps")->as_number(), 3);
  const auto* env = j.find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_FALSE(env->find("build_type")->as_string().empty());
  EXPECT_FALSE(env->find("compiler")->as_string().empty());
  EXPECT_FALSE(env->find("git_sha")->as_string().empty());
  // Round-trips through the parser.
  EXPECT_TRUE(Value::parse(j.dump(2)).has_value());
}

TEST(RunReport, BenchmarkIsGetOrCreate) {
  raa::report::RunReport run{1};
  auto& a = run.benchmark("b", "§1");
  auto& b = run.benchmark("b", "§1");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(run.benchmarks().size(), 1u);
}

// --------------------------------------------------------------------------
// Baseline-comparison tolerance logic
// --------------------------------------------------------------------------

Value report_json(double median_value,
                  std::optional<double> tolerance = std::nullopt) {
  raa::report::RunReport run{1};
  run.benchmark("bench", "§1").record("metric", median_value);
  Value j = run.to_json();
  if (tolerance) {
    auto& metric =
        j.find("benchmarks")->as_array()[0].find("metrics")->as_array()[0];
    metric.set("tolerance", *tolerance);
  }
  return j;
}

TEST(Compare, WithinDefaultToleranceIsOk) {
  const auto cmp =
      raa::report::compare(report_json(100.0), report_json(104.0));
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_EQ(cmp.deltas[0].kind, raa::report::DeltaKind::ok);
  EXPECT_TRUE(cmp.ok());
}

TEST(Compare, BeyondToleranceIsARegressionBothDirections) {
  for (const double measured : {94.0, 106.0}) {
    const auto cmp =
        raa::report::compare(report_json(100.0), report_json(measured));
    ASSERT_EQ(cmp.deltas.size(), 1u);
    EXPECT_EQ(cmp.deltas[0].kind, raa::report::DeltaKind::regression)
        << measured;
    EXPECT_FALSE(cmp.ok());
    EXPECT_EQ(cmp.violations(), 1u);
  }
}

TEST(Compare, PerMetricToleranceOverridesDefault) {
  // 20% drift: fails at the 5% default, passes with a 0.25 override.
  EXPECT_FALSE(
      raa::report::compare(report_json(100.0), report_json(120.0)).ok());
  EXPECT_TRUE(
      raa::report::compare(report_json(100.0, 0.25), report_json(120.0))
          .ok());
  // An override can also tighten below the default.
  EXPECT_FALSE(
      raa::report::compare(report_json(100.0, 0.001), report_json(102.0))
          .ok());
}

TEST(Compare, CustomDefaultTolerance) {
  raa::report::CompareOptions opts;
  opts.default_tolerance = 0.5;
  EXPECT_TRUE(
      raa::report::compare(report_json(100.0), report_json(140.0), opts)
          .ok());
}

TEST(Compare, MissingMetricFails) {
  auto baseline = report_json(100.0);
  raa::report::RunReport other{1};
  other.benchmark("bench", "§1").record("renamed_metric", 100.0);
  const auto cmp = raa::report::compare(baseline, other.to_json());
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_EQ(cmp.deltas[0].kind, raa::report::DeltaKind::missing);
  EXPECT_FALSE(cmp.ok());
  // The renamed metric shows up as results-only.
  EXPECT_EQ(cmp.extra_metrics, 1u);
}

TEST(Compare, MissingBenchmarkFails) {
  raa::report::RunReport empty{1};
  const auto cmp =
      raa::report::compare(report_json(100.0), empty.to_json());
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_EQ(cmp.deltas[0].kind, raa::report::DeltaKind::missing);
}

TEST(Compare, ExtraMetricsInResultsDoNotFail) {
  raa::report::RunReport run{1};
  auto& b = run.benchmark("bench", "§1");
  b.record("metric", 100.0);
  b.record("new_metric", 1.0);
  const auto cmp = raa::report::compare(report_json(100.0), run.to_json());
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.extra_metrics, 1u);
}

TEST(Compare, ZeroBaselineOnlyMatchesZero) {
  EXPECT_TRUE(raa::report::compare(report_json(0.0), report_json(0.0)).ok());
  EXPECT_FALSE(
      raa::report::compare(report_json(0.0), report_json(0.001)).ok());
}

TEST(Compare, MalformedBaselineMetricFailsLoudly) {
  // A baseline missing a "median" (e.g. a bad hand-edit while re-applying
  // tolerance overrides) must be a schema error, not a vacuous pass.
  auto baseline = report_json(100.0);
  auto& metric = baseline.find("benchmarks")
                     ->as_array()[0]
                     .find("metrics")
                     ->as_array()[0];
  auto& members = metric.as_object();
  std::erase_if(members, [](const auto& kv) { return kv.first == "median"; });
  EXPECT_THROW(raa::report::compare(baseline, report_json(100.0)),
               std::runtime_error);

  auto no_name = report_json(100.0);
  auto& bench = no_name.find("benchmarks")->as_array()[0];
  std::erase_if(bench.as_object(),
                [](const auto& kv) { return kv.first == "name"; });
  EXPECT_THROW(raa::report::compare(no_name, report_json(100.0)),
               std::runtime_error);
}

TEST(Compare, RejectsNonSchemaDocuments) {
  const auto not_a_report = *Value::parse(R"({"benchmarks": []})");
  EXPECT_THROW(raa::report::compare(not_a_report, report_json(1.0)),
               std::runtime_error);
  EXPECT_THROW(raa::report::compare(report_json(1.0), not_a_report),
               std::runtime_error);
  EXPECT_THROW(raa::report::compare(Value{1.0}, report_json(1.0)),
               std::runtime_error);
}

// --------------------------------------------------------------------------
// Informational (host wall-clock) metrics
// --------------------------------------------------------------------------

TEST(BenchReport, InformationalMetricSerializesFlag) {
  raa::report::BenchReport r{"bench", "§1"};
  r.record_info("wall_seconds", 1.25, "s");
  r.record("speedup", 2.0, "x");
  const auto j = r.to_json();
  const auto& metrics = j.find("metrics")->as_array();
  ASSERT_EQ(metrics.size(), 2u);
  const auto* info = metrics[0].find("informational");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->as_bool());
  // Simulated metrics never carry the flag.
  EXPECT_EQ(metrics[1].find("informational"), nullptr);
}

TEST(RunReport, WallSecondsSerialized) {
  raa::report::RunReport run{1};
  run.benchmark("b", "§1").record("m", 1.0);
  EXPECT_EQ(run.to_json().find("wall_seconds"), nullptr);  // unset: omitted
  run.set_wall_seconds(3.5);
  const auto j = run.to_json();
  ASSERT_NE(j.find("wall_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(j.find("wall_seconds")->as_number(), 3.5);
}

/// Baseline with one gated metric plus one informational metric whose
/// value is wildly off in the results — the comparison must not gate it.
TEST(Compare, InformationalMetricsAreExemptFromTheGate) {
  const auto make = [](double gated, double wall) {
    raa::report::RunReport run{1};
    auto& b = run.benchmark("bench", "§1");
    b.record("metric", gated);
    b.record_info("wall_seconds", wall, "s");
    return run.to_json();
  };
  // 10x host wall-clock drift, simulated metric unchanged: still ok.
  const auto cmp = raa::report::compare(make(100.0, 1.0), make(100.0, 10.0));
  EXPECT_TRUE(cmp.ok());
  ASSERT_EQ(cmp.deltas.size(), 1u);  // only the gated metric was compared
  EXPECT_EQ(cmp.deltas[0].metric, "metric");
  EXPECT_EQ(cmp.informational_skipped, 1u);

  // Even an informational metric *missing* from the results must not fail
  // (a bench may legitimately skip throughput accounting on some hosts).
  raa::report::RunReport no_wall{1};
  no_wall.benchmark("bench", "§1").record("metric", 100.0);
  const auto cmp2 =
      raa::report::compare(make(100.0, 1.0), no_wall.to_json());
  EXPECT_TRUE(cmp2.ok());
  EXPECT_EQ(cmp2.informational_skipped, 1u);
}

}  // namespace
