// Tests of the parallel-execution substrate (src/exec/): worker lifecycle,
// the task pool's work-helping waits and deterministic failure reporting,
// parallel_for, and — most load-bearing — ordered_reduce's submission-order
// merge under adversarial completion order (the property every parallel
// consumer in the repo leans on for determinism).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "exec/worker_pool.hpp"

namespace {

using raa::exec::Pool;
using raa::exec::WorkerPool;

TEST(WorkerPool, RunsLoopPerThreadAndJoins) {
  std::atomic<unsigned> started{0};
  WorkerPool wp;
  wp.start(3, [&](std::stop_token stop, unsigned) {
    started.fetch_add(1);
    while (!stop.stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_EQ(wp.size(), 3u);
  wp.join();
  EXPECT_EQ(started.load(), 3u);
  EXPECT_EQ(wp.size(), 0u);
  // Restartable after join.
  wp.start(1, [](std::stop_token, unsigned) {});
  wp.join();
}

TEST(PoolTest, RunsSubmittedTasks) {
  Pool pool{2};
  std::atomic<int> sum{0};
  Pool::Group g;
  for (int i = 1; i <= 100; ++i)
    pool.submit(g, [&sum, i] { sum.fetch_add(i); });
  pool.wait(g);
  EXPECT_EQ(sum.load(), 5050);
}

TEST(PoolTest, ZeroWorkersRunsEverythingInlineInWait) {
  // A pool without threads is a valid serial executor: the waiting thread
  // runs every task itself, in submission order.
  Pool pool{0};
  std::vector<int> order;
  Pool::Group g;
  for (int i = 0; i < 8; ++i) pool.submit(g, [&order, i] { order.push_back(i); });
  pool.wait(g);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(PoolTest, NestedSubmissionDoesNotStarve) {
  // A task submits subtasks to its own (single-worker) pool and waits on
  // them; the helping wait runs them instead of deadlocking.
  Pool pool{1};
  std::atomic<int> inner_done{0};
  Pool::Group outer;
  pool.submit(outer, [&] {
    Pool::Group inner;
    for (int i = 0; i < 4; ++i)
      pool.submit(inner, [&] { inner_done.fetch_add(1); });
    pool.wait(inner);
  });
  pool.wait(outer);
  EXPECT_EQ(inner_done.load(), 4);
}

TEST(PoolTest, ReuseAcrossRuns) {
  // One pool serves many submit/wait rounds (every System::run and bench
  // unit reuses the pool it is handed).
  Pool pool{2};
  long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    Pool::Group g;
    for (int i = 0; i < 32; ++i) pool.submit(g, [&sum] { sum.fetch_add(1); });
    pool.wait(g);
    total += sum.load();
  }
  EXPECT_EQ(total, 20 * 32);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  Pool pool{3};
  std::vector<std::atomic<int>> hits(1000);
  raa::exec::parallel_for(pool, 0, 1000, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  Pool pool{1};
  raa::exec::parallel_for(pool, 5, 5, 4,
                          [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelFor, ExceptionPropagatesAndPoolStaysUsable) {
  Pool pool{2};
  std::atomic<int> ran{0};
  EXPECT_THROW(
      raa::exec::parallel_for(pool, 0, 100, 10,
                              [&](std::size_t lo, std::size_t) {
                                ran.fetch_add(1);
                                if (lo == 50) throw std::runtime_error("boom");
                              }),
      std::runtime_error);
  // Every chunk still ran (failures do not cancel siblings)...
  EXPECT_EQ(ran.load(), 10);
  // ...and the pool is reusable afterwards.
  std::atomic<int> after{0};
  raa::exec::parallel_for(pool, 0, 10, 1,
                          [&](std::size_t, std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelFor, LowestIndexExceptionWins) {
  // Two chunks fail; the lower submission index is reported regardless of
  // which failure was *observed* first.
  Pool pool{4};
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      raa::exec::parallel_for(pool, 0, 8, 1, [&](std::size_t lo, std::size_t) {
        if (lo == 2) {
          std::this_thread::sleep_for(std::chrono::milliseconds(3));
          throw std::runtime_error("early-index, late-finishing");
        }
        if (lo == 6) throw std::runtime_error("late-index, fast-failing");
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early-index, late-finishing");
    }
  }
}

TEST(OrderedReduce, MergesInSubmissionOrderUnderAdversarialJitter) {
  // Tasks finish in roughly *reverse* submission order (later tasks sleep
  // less); the merge must still observe 0, 1, 2, ... n-1.
  Pool pool{4};
  constexpr std::size_t n = 24;
  std::vector<std::size_t> merged;
  raa::exec::ordered_reduce<std::size_t>(
      pool, n,
      [&](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds(200 * (n - i)));
        return i;
      },
      [&](std::size_t i, std::size_t&& value) {
        EXPECT_EQ(i, value);
        merged.push_back(value);
      });
  ASSERT_EQ(merged.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(merged[i], i);
}

TEST(OrderedReduce, MergePrefixSurvivesTaskFailure) {
  // Task 5 throws: results 0..4 still merge, everything still runs, and
  // the exception surfaces after the prefix.
  Pool pool{2};
  std::vector<std::size_t> merged;
  std::atomic<int> ran{0};
  EXPECT_THROW(raa::exec::ordered_reduce<std::size_t>(
                   pool, 10,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 5) throw std::runtime_error("task 5");
                     return i;
                   },
                   [&](std::size_t, std::size_t&& v) { merged.push_back(v); }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 10);
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], i);
}

TEST(OrderedReduce, WorksOnZeroWorkerPool) {
  Pool pool{0};
  long sum = 0;
  raa::exec::ordered_reduce<long>(
      pool, 100, [](std::size_t i) { return static_cast<long>(i); },
      [&](std::size_t, long&& v) { sum += v; });
  EXPECT_EQ(sum, 4950);
}

TEST(PoolWaitFor, ZeroWorkerPoolHelpsInlineAndResetsGroup) {
  // On a zero-worker pool the waiter itself must run every queued task,
  // so a generous deadline behaves exactly like wait(): true, group reset
  // and reusable.
  Pool pool{0};
  std::atomic<int> ran{0};
  Pool::Group g;
  for (int i = 0; i < 8; ++i) pool.submit(g, [&ran] { ++ran; });
  EXPECT_TRUE(pool.wait_for(g, std::chrono::seconds(30)));
  EXPECT_EQ(ran.load(), 8);
  pool.submit(g, [&ran] { ++ran; });  // reset group is reusable
  EXPECT_TRUE(pool.wait_for(g, std::chrono::seconds(30)));
  EXPECT_EQ(ran.load(), 9);
}

TEST(PoolWaitFor, ExpiresOnStuckTaskThenCompletesAfterRelease) {
  // A task pinned on a flag must make wait_for return false at the
  // deadline without resetting the group; once the flag is released the
  // same group completes under a plain wait(). The waiter must not call
  // wait_for until the *worker* has adopted the task: a helping waiter
  // that dequeued it itself would run the pinned loop inline and never
  // reach its own deadline check.
  Pool pool{1};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  Pool::Group g;
  pool.submit(g, [&] {
    started = true;
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ran = true;
  });
  while (!started.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(pool.wait_for(g, std::chrono::milliseconds(50)));
  EXPECT_FALSE(ran.load());
  release = true;
  pool.wait(g);
  EXPECT_TRUE(ran.load());
}

TEST(PoolWaitFor, RethrowsLowestIndexErrorOnCompletion) {
  // Deadline met -> identical error contract to wait(): the
  // lowest-submission-index exception wins regardless of finish order.
  Pool pool{0};
  Pool::Group g;
  pool.submit(g, [] { throw std::runtime_error("first"); });
  pool.submit(g, [] { throw std::runtime_error("second"); });
  try {
    (void)pool.wait_for(g, std::chrono::seconds(30));
    FAIL() << "expected the first task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(PoolShutdown, DropsPendingTasksOnZeroWorkerPool) {
  // Destroying a pool with tasks still queued (a violated Group contract)
  // must drop them unrun — deterministically observable on a zero-worker
  // pool, where nothing else could possibly run them.
  std::atomic<int> ran{0};
  Pool::Group g;  // outlives the pool on purpose
  {
    Pool pool{0};
    for (int i = 0; i < 16; ++i) pool.submit(g, [&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(PoolShutdown, JoinsWorkersWithJobsStillQueued) {
  // Shutdown racing a half-drained queue: the dtor must stop and join the
  // workers without running the whole backlog or deadlocking. Counts are
  // loose by design — TSan value is the clean teardown, not a number.
  std::atomic<int> ran{0};
  Pool::Group g;
  {
    Pool pool{2};
    for (int i = 0; i < 64; ++i)
      pool.submit(g, [&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
  }
  EXPECT_LE(ran.load(), 64);
}

TEST(PoolTest, HelpWhileRunsTasksUntilConditionFlips) {
  // help_while on a zero-worker pool must run the queued task that flips
  // the condition (this is exactly how the sharded memsim commit loop
  // adopts producer batches).
  Pool pool{0};
  bool ready = false;
  Pool::Group g;
  pool.submit(g, [&ready] { ready = true; });
  pool.help_while([&] { return !ready; });
  EXPECT_TRUE(ready);
  pool.wait(g);
}

}  // namespace
