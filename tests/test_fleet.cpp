// Tests for the fleet batch engine (src/fleet/): manifest parsing and
// validation, seed derivation, glob matching, and — the load-bearing
// suite — FleetEquivalence: every gated byte of the per-job results and
// the merged index is identical for any lane count and any completion
// order, and injected faults degrade exactly the injected jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "fleet/fleet.hpp"
#include "fleet/job.hpp"
#include "fleet/manifest.hpp"
#include "report/json.hpp"

namespace {

using raa::fleet::ErrorKind;
using raa::fleet::FleetOptions;
using raa::fleet::FleetResult;
using raa::fleet::JobStatus;
using raa::fleet::Manifest;
using raa::fleet::run_fleet;
using raa::json::Value;

// --- fixtures -----------------------------------------------------------

/// Write a small self-contained scenario file and return its path.
std::string write_scenario(const std::string& name, unsigned accesses,
                           const std::string& mode = "compare") {
  const std::string path = ::testing::TempDir() + name + ".json";
  std::ofstream out{path};
  out << R"({
  "name": ")" << name << R"(",
  "mode": ")" << mode << R"(",
  "seed": 5,
  "config": {"tiles": 4, "mesh_x": 2, "mesh_y": 2},
  "regions": [
    {"name": "data", "bytes_per_core": 4096, "class": "strided"}
  ],
  "programs": [
    {"generator": "pointer_chase", "region": "data", "accesses": )"
      << accesses << R"(, "gap_cycles": 1}
  ]
})";
  return path;
}

/// A three-job manifest over freshly written scenario files.
Manifest small_manifest() {
  Manifest m;
  m.name = "unit";
  m.seed = 101;
  for (const char* id : {"alpha", "beta", "gamma"}) {
    raa::fleet::JobSpec job;
    job.id = id;
    job.scenario = write_scenario(std::string{"fleet_"} + id, 400);
    m.jobs.push_back(std::move(job));
  }
  return m;
}

/// The index with its quarantined host-dependent block removed — what the
/// determinism contract actually covers.
Value gated_index(const FleetResult& r) {
  Value v = r.index;
  auto& obj = v.as_object();
  std::erase_if(obj, [](const raa::json::Member& m) {
    return m.first == "informational";
  });
  return v;
}

// --- manifest parsing ---------------------------------------------------

TEST(Manifest, ParsesAndRoundTrips) {
  const std::string text = R"({
    "schema": "raa-fleet-manifest",
    "schema_version": 1,
    "name": "demo",
    "seed": 9,
    "defaults": {"mode": "hybrid", "retries": 2, "timeout_ms": 500},
    "jobs": [
      {"id": "a", "scenario": "a.json"},
      {"id": "b", "trace": "b.raat", "shards": 4, "seed": 3},
      {"id": "c", "scenario": "c.json", "backend": "banked"}
    ]
  })";
  std::string error;
  const auto doc = Value::parse(text, &error);
  ASSERT_TRUE(doc) << error;
  const auto m = Manifest::parse(*doc, &error);
  ASSERT_TRUE(m) << error;
  EXPECT_EQ(m->name, "demo");
  EXPECT_EQ(m->seed, 9u);
  EXPECT_EQ(m->defaults.mode, "hybrid");
  EXPECT_EQ(m->defaults.retries, 2u);
  EXPECT_EQ(m->defaults.timeout_ms, 500u);
  ASSERT_EQ(m->jobs.size(), 3u);
  EXPECT_EQ(m->jobs[1].trace, "b.raat");
  EXPECT_EQ(m->jobs[1].limits.shards, 4u);
  EXPECT_EQ(m->jobs[1].seed, 3u);
  EXPECT_EQ(m->jobs[2].limits.backend, "banked");

  // to_json() -> parse() is the identity.
  const auto again = Manifest::parse(m->to_json(), &error);
  ASSERT_TRUE(again) << error;
  EXPECT_EQ(*again, *m);
}

TEST(Manifest, RejectsInvalidDocumentsWithJsonPaths) {
  const auto reject = [](const std::string& text,
                         const std::string& needle) {
    std::string error;
    const auto doc = Value::parse(text, &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_FALSE(Manifest::parse(*doc, &error));
    EXPECT_NE(error.find(needle), std::string::npos) << error;
  };
  reject(R"({"jobs": []})", "at least one job");
  reject(R"({"jobz": 1})", "unknown key");
  reject(R"({"schema": "raa-bench-results", "jobs": [{"id": "a",
             "scenario": "x"}]})",
         "raa-fleet-manifest");
  reject(R"({"jobs": [{"id": "a"}]})", "exactly one of");
  reject(R"({"jobs": [{"id": "a", "scenario": "x", "trace": "y"}]})",
         "exactly one of");
  reject(R"({"jobs": [{"id": "a/b", "scenario": "x"}]})", "A-Za-z0-9");
  reject(R"({"jobs": [{"id": "a", "scenario": "x"},
                      {"id": "a", "scenario": "y"}]})",
         "duplicate job id");
  reject(R"({"jobs": [{"id": "a", "scenario": "x", "mode": "hybird"}]})",
         "unknown mode");
  reject(R"({"jobs": [{"id": "a", "scenario": "x", "shards": 0}]})",
         "shards >= 1");
  reject(R"({"jobs": [{"id": "a", "scenario": "x", "seed": -1}]})",
         "non-negative");
}

TEST(Manifest, LimitsLayerJobOverDefaultsOverFallback) {
  raa::fleet::JobLimits job, defaults, fallback;
  defaults.mode = "hybrid";
  defaults.retries = 2;
  fallback.mode = "cache_only";
  fallback.shards = 8;
  fallback.timeout_ms = 99;
  job.timeout_ms = 5;
  const auto eff = job.or_else(defaults).or_else(fallback);
  EXPECT_EQ(eff.mode, "hybrid");     // defaults beat fallback
  EXPECT_EQ(eff.retries, 2u);        // from defaults
  EXPECT_EQ(eff.shards, 8u);         // only fallback sets it
  EXPECT_EQ(eff.timeout_ms, 5u);     // job entry wins
}

TEST(Manifest, DerivedSeedsDependOnIdNotPosition) {
  const std::uint64_t a = raa::fleet::derive_job_seed(7, "alpha");
  EXPECT_EQ(a, raa::fleet::derive_job_seed(7, "alpha"));  // pure
  EXPECT_NE(a, raa::fleet::derive_job_seed(7, "beta"));
  EXPECT_NE(a, raa::fleet::derive_job_seed(8, "alpha"));
}

TEST(Manifest, GlobMatchesShellStyle) {
  using raa::fleet::glob_match;
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("gen_i*", "gen_i42"));
  EXPECT_FALSE(glob_match("gen_i*", "gem_i42"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*chase*", "pointer_chase_v2"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("**", "x"));
}

// --- FleetEquivalence: the determinism contract -------------------------

TEST(FleetEquivalence, ResultsAndIndexAreByteIdenticalForAnyLaneCount) {
  FleetOptions opt;
  opt.manifest = small_manifest();

  opt.jobs = 1;
  const FleetResult r1 = run_fleet(opt);
  opt.jobs = 2;
  const FleetResult r2 = run_fleet(opt);
  opt.jobs = 8;
  const FleetResult r8 = run_fleet(opt);

  ASSERT_EQ(r1.exit_code, raa::kExitOk);
  ASSERT_EQ(r2.exit_code, raa::kExitOk);
  ASSERT_EQ(r8.exit_code, raa::kExitOk);
  const std::string i1 = gated_index(r1).dump(2);
  EXPECT_EQ(i1, gated_index(r2).dump(2));
  EXPECT_EQ(i1, gated_index(r8).dump(2));
  ASSERT_EQ(r1.records.size(), 3u);
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    EXPECT_EQ(r1.records[i].result.dump(2), r2.records[i].result.dump(2));
    EXPECT_EQ(r1.records[i].result.dump(2), r8.records[i].result.dump(2));
  }
}

TEST(FleetEquivalence, ShuffledManifestGivesSameSeedsAndResultsPerJob) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult fwd = run_fleet(opt);

  std::reverse(opt.manifest.jobs.begin(), opt.manifest.jobs.end());
  opt.jobs = 2;
  const FleetResult rev = run_fleet(opt);

  ASSERT_EQ(fwd.records.size(), rev.records.size());
  for (const auto& a : fwd.records) {
    const auto b = std::find_if(
        rev.records.begin(), rev.records.end(),
        [&](const auto& r) { return r.id == a.id; });
    ASSERT_NE(b, rev.records.end()) << a.id;
    EXPECT_EQ(a.seed, b->seed) << a.id;
    EXPECT_EQ(a.result.dump(2), b->result.dump(2)) << a.id;
  }
}

TEST(FleetEquivalence, InjectedFailureDegradesOnlyTheInjectedJob) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult clean = run_fleet(opt);
  ASSERT_EQ(clean.exit_code, raa::kExitOk);

  opt.inject_fail = "beta";
  opt.jobs = 2;
  const FleetResult faulty = run_fleet(opt);
  EXPECT_EQ(faulty.exit_code, raa::kExitPartialFleet);
  EXPECT_EQ(faulty.failed, 1u);
  EXPECT_EQ(faulty.ok, 2u);
  for (std::size_t i = 0; i < faulty.records.size(); ++i) {
    const auto& r = faulty.records[i];
    if (r.id == "beta") {
      EXPECT_EQ(r.status, JobStatus::failed);
      EXPECT_EQ(r.error, ErrorKind::injected);
      EXPECT_EQ(r.attempts, 1u);
    } else {
      EXPECT_EQ(r.status, JobStatus::ok);
      // The healthy jobs' gated bytes are unchanged by the failure.
      EXPECT_EQ(r.result.dump(2), clean.records[i].result.dump(2));
    }
  }
}

TEST(FleetEquivalence, InjectedHangTimesOutAndReclaimsTheLane) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult clean = run_fleet(opt);

  opt.inject_hang = "alpha";
  opt.manifest.jobs[0].limits.timeout_ms = 100;
  opt.jobs = 2;
  const FleetResult faulty = run_fleet(opt);
  EXPECT_EQ(faulty.exit_code, raa::kExitPartialFleet);
  EXPECT_EQ(faulty.timeout, 1u);
  EXPECT_EQ(faulty.ok, 2u);
  EXPECT_EQ(faulty.records[0].status, JobStatus::timeout);
  EXPECT_EQ(faulty.records[0].error, ErrorKind::cancelled);
  // The other jobs ran to completion on the reclaimed lanes, unchanged.
  for (std::size_t i = 1; i < faulty.records.size(); ++i)
    EXPECT_EQ(faulty.records[i].result.dump(2),
              clean.records[i].result.dump(2));
}

TEST(FleetEquivalence, TransientFailureRetriesToSuccess) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult clean = run_fleet(opt);

  opt.inject_flaky = "gamma";
  opt.fallback.retries = 1;
  opt.backoff_base_ms = 1;  // keep the test fast
  const FleetResult retried = run_fleet(opt);
  EXPECT_EQ(retried.exit_code, raa::kExitOk);
  EXPECT_EQ(retried.retried_ok, 1u);
  const auto& r = retried.records[2];
  EXPECT_EQ(r.id, "gamma");
  EXPECT_EQ(r.status, JobStatus::retried_ok);
  EXPECT_EQ(r.attempts, 2u);
  // A retried success converges on the same gated bytes as a clean run.
  EXPECT_EQ(r.result.dump(2), clean.records[2].result.dump(2));
}

TEST(FleetEquivalence, RetriesExhaustOnPersistentTimeout) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  opt.inject_hang = "beta";
  opt.manifest.jobs[1].limits.timeout_ms = 50;
  opt.manifest.jobs[1].limits.retries = 1;
  opt.backoff_base_ms = 1;
  const FleetResult res = run_fleet(opt);
  EXPECT_EQ(res.exit_code, raa::kExitPartialFleet);
  EXPECT_EQ(res.records[1].status, JobStatus::timeout);
  EXPECT_EQ(res.records[1].attempts, 2u);  // deadline hit both attempts
}

// --- degradation edges --------------------------------------------------

TEST(Fleet, AllJobsFailingExitsWithTotalFailure) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  opt.inject_fail = "*";
  const FleetResult res = run_fleet(opt);
  EXPECT_EQ(res.exit_code, raa::kExitFailure);
  EXPECT_EQ(res.failed, 3u);
}

TEST(Fleet, FailFastSkipsUnstartedJobs) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  opt.inject_fail = "alpha";
  opt.fail_fast = true;
  opt.jobs = 1;  // serial lanes: alpha fails before beta/gamma launch
  const FleetResult res = run_fleet(opt);
  EXPECT_EQ(res.records[0].status, JobStatus::failed);
  EXPECT_EQ(res.skipped, 2u);
  EXPECT_EQ(res.records[1].status, JobStatus::skipped);
  EXPECT_EQ(res.records[2].status, JobStatus::skipped);
  EXPECT_EQ(res.exit_code, raa::kExitFailure);  // nothing succeeded
}

TEST(Fleet, UnparseableScenarioIsAClassifiedJobFailureNotACrash) {
  const std::string bad = ::testing::TempDir() + "fleet_bad.json";
  std::ofstream{bad} << "{ this is not json";
  FleetOptions opt;
  opt.manifest = small_manifest();
  raa::fleet::JobSpec job;
  job.id = "broken";
  job.scenario = bad;
  opt.manifest.jobs.push_back(std::move(job));
  const FleetResult res = run_fleet(opt);
  EXPECT_EQ(res.exit_code, raa::kExitPartialFleet);
  EXPECT_EQ(res.records[3].status, JobStatus::failed);
  EXPECT_EQ(res.records[3].error, ErrorKind::parse);
  EXPECT_EQ(res.ok, 3u);
}

TEST(Fleet, HangInjectionWithoutDeadlineIsAConfigError) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  opt.inject_hang = "alpha";  // no timeout anywhere
  const FleetResult res = run_fleet(opt);
  EXPECT_EQ(res.exit_code, raa::kExitUsage);
  EXPECT_NE(res.error.find("inject-hang"), std::string::npos);
}

TEST(Fleet, IndexRecordsSchemaCountsAndPerJobSeeds) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult res = run_fleet(opt);
  const Value& idx = res.index;
  ASSERT_TRUE(idx.find("schema"));
  EXPECT_EQ(idx.find("schema")->as_string(), "raa-fleet-index");
  EXPECT_EQ(idx.find("status")->as_string(), "ok");
  EXPECT_EQ(idx.find("counts")->find("ok")->as_number(), 3.0);
  const auto& jobs = idx.find("jobs")->as_array();
  ASSERT_EQ(jobs.size(), 3u);
  // Seeds are decimal strings (64-bit exact) matching the derivation.
  EXPECT_EQ(jobs[0].find("seed")->as_string(),
            std::to_string(raa::fleet::derive_job_seed(101, "alpha")));
  ASSERT_TRUE(idx.find("informational"));
  EXPECT_TRUE(idx.find("informational")->find("wall_seconds"));
}

TEST(FleetEquivalence, InformationalJobWallSpansCoverManifestInOrder) {
  FleetOptions opt;
  opt.manifest = small_manifest();
  const FleetResult res = run_fleet(opt);
  ASSERT_EQ(res.exit_code, raa::kExitOk);

  // job_wall_ms lives inside the quarantined informational block (values
  // are host-dependent), but its *shape* is deterministic: one entry per
  // manifest job, in manifest order.
  const Value* info = res.index.find("informational");
  ASSERT_TRUE(info);
  const Value* spans = info->find("job_wall_ms");
  ASSERT_TRUE(spans && spans->is_array());
  const auto& arr = spans->as_array();
  ASSERT_EQ(arr.size(), 3u);
  const char* ids[] = {"alpha", "beta", "gamma"};
  for (std::size_t i = 0; i < arr.size(); ++i) {
    ASSERT_TRUE(arr[i].find("id"));
    EXPECT_EQ(arr[i].find("id")->as_string(), ids[i]);
    ASSERT_TRUE(arr[i].find("wall_ms"));
    EXPECT_GE(arr[i].find("wall_ms")->as_number(), 0.0);
  }

  // And the gated index stays free of it: stripping informational removes
  // every host-dependent field (the byte-determinism contract upstream).
  EXPECT_EQ(gated_index(res).dump(2).find("job_wall_ms"), std::string::npos);
}

}  // namespace
