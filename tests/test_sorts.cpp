// Tests for the §3.2 sorting algorithms: functional correctness of all four
// vectorised sorts across sizes/distributions/machine shapes, plus the
// headline performance relations of Figure 3 (VSR best, more lanes faster,
// CPT flat in n).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "sort/sorts.hpp"

namespace {

using raa::sort::Algorithm;
using raa::sort::run_vector_sort;
using raa::sort::SortStats;
using raa::vec::Elem;
using raa::vec::VpuConfig;

std::vector<Elem> make_data(std::size_t n, const std::string& dist,
                            std::uint64_t seed) {
  raa::Rng rng{seed};
  std::vector<Elem> v(n);
  if (dist == "uniform") {
    for (auto& x : v) x = rng.below(1ull << 32);
  } else if (dist == "all_equal") {
    std::fill(v.begin(), v.end(), 12345u);
  } else if (dist == "sorted") {
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
  } else if (dist == "reverse") {
    for (std::size_t i = 0; i < n; ++i) v[i] = n - i;
  } else if (dist == "few_uniques") {
    for (auto& x : v) x = rng.below(16) * 1000;
  }
  return v;
}

using Case = std::tuple<Algorithm, std::size_t, const char*>;

class SortCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(SortCorrectness, MatchesStdSort) {
  const auto [algo, n, dist] = GetParam();
  std::vector<Elem> data = make_data(n, dist, 42 + n);
  std::vector<Elem> expect = data;
  std::sort(expect.begin(), expect.end());
  const VpuConfig cfg{.mvl = 64, .lanes = 4};
  const SortStats st = run_vector_sort(algo, cfg, data);
  EXPECT_EQ(data, expect);
  if (n > 1) {
    EXPECT_GT(st.cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsSizesDistributions, SortCorrectness,
    ::testing::Combine(
        ::testing::Values(Algorithm::vsr, Algorithm::vector_radix,
                          Algorithm::vector_quicksort, Algorithm::bitonic),
        ::testing::Values<std::size_t>(0, 1, 2, 63, 64, 65, 1000, 4096),
        ::testing::Values("uniform", "all_equal", "sorted", "reverse",
                          "few_uniques")),
    [](const auto& pinfo) {
      return std::string(raa::sort::to_string(std::get<0>(pinfo.param))) +
             "_n" + std::to_string(std::get<1>(pinfo.param)) + "_" +
             std::get<2>(pinfo.param);
    });

class SortMachineShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(SortMachineShapes, VsrCorrectAcrossMvlAndLanes) {
  const auto [mvl, lanes] = GetParam();
  std::vector<Elem> data = make_data(3000, "uniform", 7);
  std::vector<Elem> expect = data;
  std::sort(expect.begin(), expect.end());
  (void)run_vector_sort(Algorithm::vsr,
                        VpuConfig{.mvl = mvl, .lanes = lanes}, data);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SortMachineShapes,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& pinfo) {
      return "mvl" + std::to_string(std::get<0>(pinfo.param)) + "_l" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(SortPerf, ScalarBaselineCostsAreCharged) {
  raa::vec::ScalarCore core;
  std::vector<Elem> data = make_data(4096, "uniform", 3);
  const SortStats st = raa::sort::scalar_radix_sort(core, data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  // Scalar radix: tens of cycles per element over 4 passes.
  EXPECT_GT(st.cpt(4096), 50.0);
  EXPECT_LT(st.cpt(4096), 400.0);
}

TEST(SortPerf, VsrSpeedupOverScalarInPaperBand) {
  const std::size_t n = 16384;
  std::vector<Elem> scalar_data = make_data(n, "uniform", 11);
  raa::vec::ScalarCore core;
  const SortStats scalar = raa::sort::scalar_radix_sort(core, scalar_data);

  // Single lane: the paper reports 7.9x - 11.7x at the largest MVL.
  std::vector<Elem> d1 = make_data(n, "uniform", 11);
  const SortStats one_lane =
      run_vector_sort(Algorithm::vsr, VpuConfig{.mvl = 64, .lanes = 1}, d1);
  const double s1 = static_cast<double>(scalar.cycles) /
                    static_cast<double>(one_lane.cycles);
  EXPECT_GT(s1, 4.0);
  EXPECT_LT(s1, 16.0);

  // Four lanes: 14.9x - 20.6x in the paper; must beat the single lane.
  std::vector<Elem> d4 = make_data(n, "uniform", 11);
  const SortStats four_lanes =
      run_vector_sort(Algorithm::vsr, VpuConfig{.mvl = 64, .lanes = 4}, d4);
  const double s4 = static_cast<double>(scalar.cycles) /
                    static_cast<double>(four_lanes.cycles);
  EXPECT_GT(s4, 1.5 * s1);
  EXPECT_LT(s4, 30.0);
}

TEST(SortPerf, VsrBeatsEveryOtherVectorSort) {
  const std::size_t n = 16384;
  const VpuConfig cfg{.mvl = 64, .lanes = 4};
  std::vector<Elem> d = make_data(n, "uniform", 5);
  const SortStats vsr = run_vector_sort(Algorithm::vsr, cfg, d);
  for (const Algorithm other :
       {Algorithm::vector_radix, Algorithm::vector_quicksort,
        Algorithm::bitonic}) {
    std::vector<Elem> d2 = make_data(n, "uniform", 5);
    const SortStats st = run_vector_sort(other, cfg, d2);
    EXPECT_GT(st.cycles, vsr.cycles) << raa::sort::to_string(other);
  }
}

TEST(SortPerf, LargerMvlNeverSlowerForVsr) {
  const std::size_t n = 16384;
  std::uint64_t prev = ~0ull;
  for (const unsigned mvl : {8u, 16u, 32u, 64u}) {
    std::vector<Elem> d = make_data(n, "uniform", 9);
    const SortStats st =
        run_vector_sort(Algorithm::vsr, VpuConfig{.mvl = mvl, .lanes = 1}, d);
    EXPECT_LE(st.cycles, prev) << mvl;
    prev = st.cycles;
  }
}

TEST(SortPerf, VsrCptFlatInInputSize) {
  // O(k*n): cycles-per-tuple must stay ~constant as n grows (the paper
  // calls this out as the key asymptotic property).
  const VpuConfig cfg{.mvl = 64, .lanes = 4};
  std::vector<Elem> small = make_data(16384, "uniform", 1);
  std::vector<Elem> large = make_data(65536, "uniform", 2);
  const double cpt_small =
      run_vector_sort(Algorithm::vsr, cfg, small).cpt(16384);
  const double cpt_large =
      run_vector_sort(Algorithm::vsr, cfg, large).cpt(65536);
  EXPECT_NEAR(cpt_large / cpt_small, 1.0, 0.10);
}

TEST(SortPerf, BitonicGrowsSuperlinearly) {
  const VpuConfig cfg{.mvl = 64, .lanes = 4};
  std::vector<Elem> small = make_data(4096, "uniform", 1);
  std::vector<Elem> large = make_data(16384, "uniform", 2);
  const double cpt_small =
      run_vector_sort(Algorithm::bitonic, cfg, small).cpt(4096);
  const double cpt_large =
      run_vector_sort(Algorithm::bitonic, cfg, large).cpt(16384);
  EXPECT_GT(cpt_large, cpt_small * 1.15);  // n log^2 n
}

TEST(SortPerf, SerialVpiVariantStillCorrectAndSlower) {
  const std::size_t n = 8192;
  std::vector<Elem> d1 = make_data(n, "uniform", 13);
  std::vector<Elem> d2 = d1;
  std::vector<Elem> expect = d1;
  std::sort(expect.begin(), expect.end());
  const SortStats par = run_vector_sort(
      Algorithm::vsr, VpuConfig{.mvl = 64, .lanes = 4, .parallel_vpi = true},
      d1);
  const SortStats ser = run_vector_sort(
      Algorithm::vsr, VpuConfig{.mvl = 64, .lanes = 4, .parallel_vpi = false},
      d2);
  EXPECT_EQ(d1, expect);
  EXPECT_EQ(d2, expect);
  EXPECT_GE(ser.cycles, par.cycles);
}

TEST(SortPerf, ScalarQuicksortCharged) {
  raa::vec::ScalarCore core;
  std::vector<Elem> data = make_data(10000, "uniform", 21);
  const SortStats st = raa::sort::scalar_quicksort(core, data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_GT(st.cycles, 0u);
}

}  // namespace
