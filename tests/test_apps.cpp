// Tests for the §5 mini-apps: the three implementations of each app agree
// bit-for-bit, the TDG structures encode (or forbid) cross-frame overlap,
// and the simulated scalability reproduces Figure 5's qualitative result
// (the dataflow port scales past the fork-join original).
#include <gtest/gtest.h>

#include "apps/miniapps.hpp"

namespace {

using raa::apps::BodytrackParams;
using raa::apps::bodytrack_parallel;
using raa::apps::bodytrack_serial;
using raa::apps::bodytrack_tdg;
using raa::apps::FacesimParams;
using raa::apps::facesim_parallel;
using raa::apps::facesim_serial;
using raa::apps::facesim_tdg;
using raa::apps::scalability_curve;
using raa::apps::Style;

class AppEquivalence
    : public ::testing::TestWithParam<std::tuple<Style, unsigned>> {};

TEST_P(AppEquivalence, BodytrackMatchesSerial) {
  const auto [style, workers] = GetParam();
  const BodytrackParams p{.frames = 8, .particles = 64, .chunks = 8,
                          .pixels = 512};
  const auto expect = bodytrack_serial(p);
  raa::rt::Runtime rt{{.num_workers = workers}};
  const auto got = bodytrack_parallel(p, rt, style);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], expect[i]) << i;
}

TEST_P(AppEquivalence, FacesimMatchesSerial) {
  const auto [style, workers] = GetParam();
  const FacesimParams p{.frames = 6, .nodes = 512, .partitions = 8};
  const auto expect = facesim_serial(p);
  raa::rt::Runtime rt{{.num_workers = workers}};
  const auto got = facesim_parallel(p, rt, style);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], expect[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    StylesWorkers, AppEquivalence,
    ::testing::Combine(::testing::Values(Style::forkjoin, Style::dataflow),
                       ::testing::Values(0u, 2u, 4u)),
    [](const auto& pinfo) {
      return std::string(raa::apps::to_string(std::get<0>(pinfo.param))) +
             "_w" + std::to_string(std::get<1>(pinfo.param));
    });

TEST(AppTdg, ForkjoinForbidsCrossFrameOverlap) {
  // In the fork-join structure, io of frame f+1 is ordered after the
  // estimate of frame f: the graph's critical path equals the full serial
  // frame chain of io+chunk+est stage costs.
  const auto fj = bodytrack_tdg(10, 16, Style::forkjoin);
  const auto df = bodytrack_tdg(10, 16, Style::dataflow);
  EXPECT_EQ(fj.node_count(), df.node_count());
  EXPECT_GT(fj.critical_path_length(), df.critical_path_length());
}

TEST(AppTdg, DataflowParallelismHigher) {
  const auto fj = facesim_tdg(12, 16, Style::forkjoin);
  const auto df = facesim_tdg(12, 16, Style::dataflow);
  EXPECT_GT(df.parallelism(), fj.parallelism());
}

TEST(AppTdg, RuntimeCapturedGraphMatchesStructure) {
  // The dataflow run's captured TDG must show io -> chunk -> estimate
  // ordering plus the io chain (same shape the synthetic builder encodes).
  const BodytrackParams p{.frames = 3, .particles = 32, .chunks = 4,
                          .pixels = 128};
  raa::rt::Runtime rt;
  (void)bodytrack_parallel(p, rt, Style::dataflow);
  const auto g = rt.graph();
  // 3 frames x (1 io + 4 chunks + 1 est) = 18 tasks.
  EXPECT_EQ(g.node_count(), 18u);
  EXPECT_NO_THROW(g.topo_order());
  EXPECT_GT(g.parallelism(), 1.0);
}

TEST(Scalability, Figure5Shape) {
  // bodytrack: original saturates ~7x, the OmpSs port reaches ~12x at 16
  // cores; facesim: ~6x vs ~10x.
  const auto bt_fj =
      scalability_curve(bodytrack_tdg(30, 32, Style::forkjoin), 16);
  const auto bt_df =
      scalability_curve(bodytrack_tdg(30, 32, Style::dataflow), 16);
  const auto fs_fj =
      scalability_curve(facesim_tdg(24, 32, Style::forkjoin), 16);
  const auto fs_df =
      scalability_curve(facesim_tdg(24, 32, Style::dataflow), 16);

  EXPECT_GT(bt_df[15], 10.0);
  EXPECT_LT(bt_fj[15], bt_df[15]);
  EXPECT_LT(bt_fj[15], 9.0);

  EXPECT_GT(fs_df[15], 8.0);
  EXPECT_LT(fs_fj[15], fs_df[15]);
  EXPECT_LT(fs_fj[15], 8.0);
}

TEST(Scalability, CurvesMonotoneNonDecreasing) {
  for (const Style s : {Style::forkjoin, Style::dataflow}) {
    const auto curve = scalability_curve(bodytrack_tdg(20, 32, s), 16);
    ASSERT_EQ(curve.size(), 16u);
    EXPECT_NEAR(curve[0], 1.0, 1e-9);
    for (std::size_t i = 1; i < curve.size(); ++i)
      EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
}

TEST(Scalability, OneCoreSpeedupIsOne) {
  const auto curve = scalability_curve(facesim_tdg(8, 8, Style::dataflow), 1);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0], 1.0, 1e-9);
}

}  // namespace
