// System-level tests of the memory-hierarchy simulator: NoC geometry, MSI
// protocol behaviour through the directory, SPM/DMA software caching, the
// guarded-access path of the hybrid coherence protocol, and randomized
// protocol property tests (the system self-checks that every load is served
// the value of the last store).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "kernels/program.hpp"
#include "memsim/linetable.hpp"
#include "memsim/noc.hpp"
#include "memsim/system.hpp"

namespace {

using raa::kern::AddressSpace;
using raa::kern::Phase;
using raa::kern::ScriptedProgram;
using raa::kern::Stream;
using raa::kern::StreamKind;
using raa::mem::Access;
using raa::mem::CoreProgram;
using raa::mem::HierarchyMode;
using raa::mem::LineInfo;
using raa::mem::LineStore;
using raa::mem::LineTable;
using raa::mem::Metrics;
using raa::mem::Noc;
using raa::mem::RefClass;
using raa::mem::Region;
using raa::mem::System;
using raa::mem::SystemConfig;
using raa::mem::Workload;

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = 4;
  cfg.mesh_y = 4;
  return cfg;
}

/// A hand-rolled program from an explicit access list.
class ListProgram final : public CoreProgram {
 public:
  explicit ListProgram(std::vector<Access> accesses)
      : accesses_(std::move(accesses)) {}
  bool next(Access& out) override {
    if (pos_ >= accesses_.size()) return false;
    out = accesses_[pos_++];
    return true;
  }

 private:
  std::vector<Access> accesses_;
  std::size_t pos_ = 0;
};

/// Workload with one explicit per-core access list; unspecified cores idle.
Workload list_workload(const SystemConfig& cfg,
                       std::vector<std::vector<Access>> per_core,
                       std::vector<Region> regions = {}) {
  Workload w;
  w.name = "list";
  w.regions.assign(regions.begin(), regions.end());
  per_core.resize(cfg.tiles);
  for (auto& v : per_core)
    w.programs.push_back(std::make_unique<ListProgram>(std::move(v)));
  return w;
}

TEST(Noc, HopsAreManhattan) {
  const Noc noc{small_cfg()};
  EXPECT_EQ(noc.hops(0, 0), 0u);
  EXPECT_EQ(noc.hops(0, 3), 3u);    // same row
  EXPECT_EQ(noc.hops(0, 12), 3u);   // same column
  EXPECT_EQ(noc.hops(0, 15), 6u);   // opposite corner
  EXPECT_EQ(noc.hops(5, 10), 2u);
  EXPECT_EQ(noc.hops(10, 5), 2u);   // symmetric
}

TEST(Noc, LatencyAndTraffic) {
  const SystemConfig cfg = small_cfg();
  const Noc noc{cfg};
  // 2 hops, 9 flits: head = 2*(2+1), serialization = 8.
  EXPECT_EQ(noc.latency(2, 9), 2 * 3 + 8u);
  EXPECT_EQ(noc.latency(0, 9), 0u);  // local
  EXPECT_DOUBLE_EQ(noc.traffic(2, 9), 18.0);
  EXPECT_DOUBLE_EQ(noc.energy(2, 9), 18.0 * cfg.e_flit_hop);
}

TEST(Noc, NearestMcIsACorner) {
  const Noc noc{small_cfg()};
  EXPECT_EQ(noc.nearest_mc(0), 0u);
  EXPECT_EQ(noc.nearest_mc(3), 3u);
  EXPECT_EQ(noc.nearest_mc(15), 15u);
  EXPECT_EQ(noc.nearest_mc(5), 0u);  // (1,1) closest to corner (0,0)
}

TEST(System, ColdMissThenHit) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  auto w = list_workload(cfg, {{
                             Access{4096, false, RefClass::random_noalias, 0},
                             Access{4096, false, RefClass::random_noalias, 0},
                             Access{4100, false, RefClass::random_noalias, 0},
                         }});
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.accesses, 3u);
  EXPECT_EQ(m.l1_misses, 1u);  // same line afterwards
  EXPECT_EQ(m.l1_hits, 2u);
  EXPECT_EQ(m.l2_misses, 1u);
  EXPECT_EQ(m.dram_line_reads, 1u);
  EXPECT_GT(m.cycles, 0.0);
  EXPECT_GT(m.energy_pj(), 0.0);
}

TEST(System, SecondCoreLoadServedOnChip) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  // Core 0 loads the line (granted Exclusive); core 1's later load is
  // forwarded from core 0 — exactly one DRAM fetch happens.
  auto w = list_workload(
      cfg, {{Access{8192, false, RefClass::random_noalias, 0}},
            {Access{8192, false, RefClass::random_noalias, 100}}});
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.l1_misses, 2u);
  EXPECT_EQ(m.dram_line_reads, 1u);
  EXPECT_EQ(m.invalidations, 0u);
}

TEST(System, StoreInvalidatesSharers) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  // Cores 0..3 read the line; then core 4 (much later) writes it.
  std::vector<std::vector<Access>> acc(cfg.tiles);
  for (unsigned c = 0; c < 4; ++c)
    acc[c] = {Access{16384, false, RefClass::random_noalias, 10 * c}};
  acc[4] = {Access{16384, true, RefClass::random_noalias, 5000}};
  auto w = list_workload(cfg, std::move(acc));
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.invalidations, 4u);
}

TEST(System, OwnerForwardsModifiedData) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  // Core 0 writes (owns M), then core 1 reads: the value must be forwarded
  // (the built-in oracle would throw on a stale read).
  auto w = list_workload(
      cfg, {{Access{32768, true, RefClass::random_noalias, 0}},
            {Access{32768, false, RefClass::random_noalias, 5000}}});
  EXPECT_NO_THROW({
    const Metrics m = sys.run(w);
    EXPECT_EQ(m.invalidations, 0u);  // read downgrades, does not invalidate
  });
}

TEST(System, WriteWriteMigratesOwnership) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  auto w = list_workload(
      cfg, {{Access{32768, true, RefClass::random_noalias, 0}},
            {Access{32768, true, RefClass::random_noalias, 5000},
             Access{32768, false, RefClass::random_noalias, 0}}});
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.invalidations, 1u);  // previous owner dropped
  EXPECT_EQ(m.l1_hits, 1u);        // core 1 re-reads its own M line
}

TEST(System, CapacityEvictionWritesBack) {
  SystemConfig cfg = small_cfg();
  cfg.l1_bytes = 1024;  // 16 lines, 4-way -> 4 sets
  System sys{cfg, HierarchyMode::cache_only};
  // Store to 64 distinct lines mapping across sets: must evict dirty lines.
  std::vector<Access> acc;
  for (std::uint64_t i = 0; i < 64; ++i)
    acc.push_back(Access{1 << 20 | (i * 64), true,
                         RefClass::random_noalias, 0});
  auto w = list_workload(cfg, {std::move(acc)});
  const Metrics m = sys.run(w);
  EXPECT_GT(m.writebacks, 0u);
}

// --- SPM / hybrid path ------------------------------------------------

Workload strided_workload(const SystemConfig& cfg, std::uint64_t elems,
                          bool store, std::uint32_t gap) {
  Workload w;
  w.name = "stream";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part =
      (elems * 8 + cfg.dma_chunk_bytes - 1) / cfg.dma_chunk_bytes *
      cfg.dma_chunk_bytes;
  const Region& r = as.add(w, "data", cfg.tiles * part, RefClass::strided);
  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> ph;
    ph.push_back(Phase{
        .streams = {Stream{.region = &r, .store = store, .start = c * part,
                           .stride = 8}},
        .iterations = elems,
        .gap_cycles = gap});
    w.programs.push_back(std::make_unique<ScriptedProgram>(std::move(ph), c));
  }
  return w;
}

TEST(System, StridedStreamUsesSpmInHybrid) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::hybrid};
  auto w = strided_workload(cfg, 4096, false, 2);
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.spm_hits, 16u * 4096u);
  EXPECT_EQ(m.l1_hits + m.l1_misses, 0u);  // nothing through the caches
  EXPECT_GT(m.dma_transfers, 0u);
  // 4096 elems x 8B = 32 KiB per core = 8 chunks.
  EXPECT_EQ(m.dma_transfers, 16u * 8u);
}

TEST(System, SameStreamThroughCachesInBaseline) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::cache_only};
  auto w = strided_workload(cfg, 4096, false, 2);
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.spm_hits, 0u);
  // The stream prefetcher covers the stream after a short warmup: almost
  // everything hits, the lines arrive as prefetch fills.
  EXPECT_LT(m.l1_misses, 16u * 8u);
  EXPECT_GT(m.prefetch_fills, 16u * 4096u / 8u * 9u / 10u);
  EXPECT_EQ(m.l1_hits + m.l1_misses, 16u * 4096u);
}

TEST(System, HybridBeatsCacheOnlyOnStreams) {
  const SystemConfig cfg = small_cfg();
  auto wa = strided_workload(cfg, 8192, false, 2);
  auto wb = strided_workload(cfg, 8192, false, 2);
  System base{cfg, HierarchyMode::cache_only};
  System hyb{cfg, HierarchyMode::hybrid};
  const Metrics mb = base.run(wa);
  const Metrics mh = hyb.run(wb);
  EXPECT_LT(mh.cycles, mb.cycles);
  EXPECT_LT(mh.energy_pj(), mb.energy_pj());
  // Cold read-only streams are near NoC parity (the data crosses the mesh
  // once either way); the protocol's NoC wins come from write streams and
  // control elimination, covered by the kernel-level tests.
  EXPECT_LT(mh.noc_flit_hops, mb.noc_flit_hops * 1.25);
}

TEST(System, DirtyChunksAreWrittenBack) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::hybrid};
  auto w = strided_workload(cfg, 1024, true, 2);
  const Metrics m = sys.run(w);
  // 1024 elems x 8B = 8 KiB = 2 chunks per core, all dirty; DMA is
  // L2-backed, so the writebacks land in the home banks (not DRAM).
  EXPECT_EQ(m.writebacks, 16u * 2u);
  EXPECT_EQ(m.dram_line_writes, 0u);  // L2 easily holds the working set
}

TEST(System, DoubleBufferingHidesDmaWhenComputeBound) {
  const SystemConfig cfg = small_cfg();
  // gap=16: plenty of compute per element; DMA latency ~ hundreds of cycles
  // per 64-line chunk while compute per chunk is 512*16 cycles.
  auto wa = strided_workload(cfg, 8192, false, 16);
  System hyb{cfg, HierarchyMode::hybrid};
  const Metrics m = hyb.run(wa);
  // Lower bound: pure compute+spm time; stalls should add <5%.
  const double ideal = 8192.0 * (16 + cfg.lat_spm_hit);
  EXPECT_LT(m.cycles, ideal * 1.05);
}

TEST(System, GuardedAccessFindsSpmMappedData) {
  SystemConfig cfg = small_cfg();
  Workload w;
  w.name = "guarded";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& r = as.add(w, "shared", 16 * 4096, RefClass::strided);

  // Core 0: strided writes over its chunk-aligned slice (SPM-mapped, slow
  // enough to still be mapped when core 1 probes).
  std::vector<Phase> p0;
  p0.push_back(Phase{
      .streams = {Stream{.region = &r, .store = true, .start = 0,
                         .stride = 8}},
      .iterations = 512,
      .gap_cycles = 4});
  // Core 1: guarded loads into core 0's slice, delayed so the mapping
  // exists.
  std::vector<Access> acc1;
  for (int i = 0; i < 64; ++i)
    acc1.push_back(Access{r.base + static_cast<std::uint64_t>(i) * 64, false,
                          RefClass::random_unknown,
                          i == 0 ? 800u : 4u});
  w.programs.push_back(std::make_unique<ScriptedProgram>(std::move(p0), 1));
  w.programs.push_back(std::make_unique<ListProgram>(std::move(acc1)));
  for (unsigned c = 2; c < cfg.tiles; ++c)
    w.programs.push_back(std::make_unique<ListProgram>(std::vector<Access>{}));

  System sys{cfg, HierarchyMode::hybrid};
  const Metrics m = sys.run(w);
  EXPECT_GT(m.guarded_lookups, 0u);
  EXPECT_GT(m.guarded_to_spm, 0u);
  EXPECT_GT(m.remote_spm_accesses, 0u);
}

TEST(System, GuardedStoreToMappedChunkForcesWriteback) {
  SystemConfig cfg = small_cfg();
  Workload w;
  w.name = "guarded_store";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& r = as.add(w, "shared", 16 * 4096, RefClass::strided);

  // Core 0 reads its slice (clean chunk); core 1 guarded-stores into it;
  // the final flush must write the chunk back even though the owner never
  // stored.
  std::vector<Phase> p0;
  p0.push_back(Phase{
      .streams = {Stream{.region = &r, .start = 0, .stride = 8}},
      .iterations = 512,
      .gap_cycles = 4});
  std::vector<Access> acc1 = {
      Access{r.base + 128, true, RefClass::random_unknown, 600}};
  w.programs.push_back(std::make_unique<ScriptedProgram>(std::move(p0), 1));
  w.programs.push_back(std::make_unique<ListProgram>(std::move(acc1)));
  for (unsigned c = 2; c < cfg.tiles; ++c)
    w.programs.push_back(std::make_unique<ListProgram>(std::vector<Access>{}));

  System sys{cfg, HierarchyMode::hybrid};
  const Metrics m = sys.run(w);
  EXPECT_GT(m.guarded_to_spm, 0u);
  EXPECT_GT(m.writebacks, 0u);  // dirty-tagged chunk flushed at unmap
}

TEST(System, GuardedFallsThroughToCacheWhenUnmapped) {
  const SystemConfig cfg = small_cfg();
  System sys{cfg, HierarchyMode::hybrid};
  auto w = list_workload(
      cfg, {{Access{1 << 21, false, RefClass::random_unknown, 0},
             Access{1 << 21, true, RefClass::random_unknown, 0}}});
  const Metrics m = sys.run(w);
  EXPECT_EQ(m.guarded_lookups, 2u);
  EXPECT_EQ(m.guarded_to_spm, 0u);
  EXPECT_EQ(m.l1_misses, 1u);
  EXPECT_EQ(m.l1_hits, 1u);
}

// --- protocol property test -------------------------------------------

// FT-like random mixture: every core strided-walks its slice of a shared
// region (SPM-mapped in chunks) while scattering guarded stores/loads over
// the whole region, with random gaps. The System's internal oracle throws
// on any stale value, so "runs to completion" is the property.
class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, NoStaleDataUnderRandomInterleavings) {
  SystemConfig cfg = small_cfg();
  const std::uint64_t seed = GetParam();
  raa::Rng rng{seed};
  Workload w;
  w.name = "fuzz";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part = 2 * cfg.dma_chunk_bytes;
  const Region& r = as.add(w, "shared", cfg.tiles * part, RefClass::strided);

  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> phases;
    const unsigned rounds = 2 + static_cast<unsigned>(rng.below(3));
    for (unsigned k = 0; k < rounds; ++k) {
      // Strided pass over own slice (alternating load/store rounds).
      phases.push_back(Phase{
          .streams = {Stream{.region = &r, .store = (k % 2 == 1),
                             .start = c * part, .stride = 8}},
          .iterations = part / 8,
          .gap_cycles = static_cast<std::uint32_t>(rng.below(6))});
      // Guarded scatter over the whole region.
      phases.push_back(Phase{
          .streams = {Stream{.region = &r, .kind = StreamKind::random_rmw,
                             .ref = RefClass::random_unknown,
                             .elem_bytes = 8}},
          .iterations = 64 + rng.below(128),
          .gap_cycles = static_cast<std::uint32_t>(rng.below(8))});
    }
    w.programs.push_back(std::make_unique<ScriptedProgram>(
        std::move(phases), seed * 97 + c));
  }

  System sys{cfg, HierarchyMode::hybrid};
  Metrics m;
  ASSERT_NO_THROW(m = sys.run(w));  // oracle inside would throw on staleness
  EXPECT_GT(m.guarded_lookups, 0u);
  EXPECT_GT(m.spm_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- line table --------------------------------------------------------

TEST(LineTable, DefaultsEncodeAbsence) {
  LineTable t{64};
  EXPECT_EQ(t.peek(0), nullptr);  // untouched: no page allocated
  const LineInfo& li = t.at(1 << 20);
  EXPECT_EQ(li.dram, 0u);
  EXPECT_EQ(li.oracle, 0u);
  EXPECT_EQ(li.sharers, 0u);
  EXPECT_EQ(li.prefetch_mask, 0u);
  EXPECT_EQ(li.owner, -1);
  EXPECT_FALSE(li.spm_mapped);
  EXPECT_FALSE(li.spm_valid);
}

TEST(LineTable, RecordsArePerLineAndPersistent) {
  LineTable t{64};
  t.at(64 * 7).dram = 111;
  t.at(64 * 8).dram = 222;
  EXPECT_EQ(t.at(64 * 7).dram, 111u);
  EXPECT_EQ(t.at(64 * 8).dram, 222u);
  // peek sees the same records without allocating.
  ASSERT_NE(t.peek(64 * 7), nullptr);
  EXPECT_EQ(t.peek(64 * 7)->dram, 111u);
}

TEST(LineTable, PageBoundaryNeighboursAreDistinct) {
  LineTable t{64};
  // Last line of page 0 and first line of page 1.
  const std::uint64_t last = (LineTable::kPageLines - 1) * 64;
  const std::uint64_t first = LineTable::kPageLines * 64;
  t.at(last).oracle = 1;
  t.at(first).oracle = 2;
  EXPECT_EQ(t.at(last).oracle, 1u);
  EXPECT_EQ(t.at(first).oracle, 2u);
  EXPECT_EQ(t.pages_allocated(), 2u);
}

TEST(LineTable, SparseAddressesAllocateOnlyTouchedPages) {
  LineTable t{64};
  t.at(0);
  t.at(std::uint64_t{1} << 30);  // ~16M lines away
  EXPECT_EQ(t.pages_allocated(), 2u);
  EXPECT_GT(t.page_slots(), 2u);  // top-level vector is sparse (null slots)
  // A line between the two touched pages is still unallocated.
  EXPECT_EQ(t.peek(std::uint64_t{1} << 25), nullptr);
}

TEST(LineTable, UnmapSemanticsViaFlags) {
  LineTable t{64};
  LineInfo& li = t.at(4096);
  li.spm_mapped = true;
  li.spm_tile = 3;
  li.spm_chunk_tag = 42;
  li.spm_valid = true;
  li.spm_value = 7;
  // Unmap = clearing the flags; the record itself stays.
  li.spm_valid = false;
  li.spm_mapped = false;
  const LineInfo& again = t.at(4096);
  EXPECT_FALSE(again.spm_mapped);
  EXPECT_FALSE(again.spm_valid);
  EXPECT_EQ(again.spm_chunk_tag, 42u);  // stale tag is fine: gated by flags
}

TEST(LineTable, ClearDropsEverything) {
  LineTable t{64};
  t.at(128).dram = 9;
  t.clear();
  EXPECT_EQ(t.pages_allocated(), 0u);
  EXPECT_EQ(t.peek(128), nullptr);
  EXPECT_EQ(t.at(128).dram, 0u);
}

TEST(LineTable, HashedBackendMatchesPagedOnRandomOps) {
  LineTable paged{64, LineStore::paged};
  LineTable hashed{64, LineStore::hashed};
  raa::Rng rng{7};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t line = rng.below(1 << 16) * 64;
    LineInfo& a = paged.at(line);
    LineInfo& b = hashed.at(line);
    EXPECT_EQ(a.dram, b.dram);
    EXPECT_EQ(a.sharers, b.sharers);
    const std::uint64_t v = rng();
    a.dram = v;
    b.dram = v;
    a.sharers = v >> 32;
    b.sharers = v >> 32;
  }
}

TEST(LineTable, NonPowerOfTwoLineSize) {
  LineTable t{96};
  t.at(96 * 5).dram = 5;
  t.at(96 * 6).dram = 6;
  EXPECT_EQ(t.at(96 * 5).dram, 5u);
  EXPECT_EQ(t.at(96 * 6).dram, 6u);
}

// --- flat-path vs reference-path equivalence ---------------------------

/// FT-like mixed-class workload: strided SPM streams over per-core slices,
/// guarded rmw scatter over the shared region, and random no-alias traffic
/// in a cache-served region. Exercises every access class plus DMA
/// map/unmap, guarded redirection, and the prefetcher.
Workload mixed_workload(const SystemConfig& cfg, std::uint64_t seed) {
  raa::Rng rng{seed};
  Workload w;
  w.name = "mixed";
  AddressSpace as{cfg.dma_chunk_bytes};
  const std::uint64_t part = 2 * cfg.dma_chunk_bytes;
  const Region& shared =
      as.add(w, "shared", cfg.tiles * part, RefClass::strided);
  const Region& priv =
      as.add(w, "private", cfg.tiles * 2048, RefClass::random_noalias);

  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> phases;
    const unsigned rounds = 2 + static_cast<unsigned>(rng.below(2));
    for (unsigned k = 0; k < rounds; ++k) {
      phases.push_back(Phase{
          .streams = {Stream{.region = &shared, .store = (k % 2 == 1),
                             .start = c * part, .stride = 8}},
          .iterations = part / 8,
          .gap_cycles = static_cast<std::uint32_t>(rng.below(6))});
      phases.push_back(Phase{
          .streams = {Stream{.region = &shared, .kind = StreamKind::random_rmw,
                             .ref = RefClass::random_unknown,
                             .elem_bytes = 8},
                      Stream{.region = &priv, .kind = StreamKind::random,
                             .ref = RefClass::random_noalias,
                             .slice_bytes = 2048, .slice_base = c * 2048,
                             .elem_bytes = 8}},
          .iterations = 64 + rng.below(96),
          .gap_cycles = static_cast<std::uint32_t>(rng.below(8))});
    }
    w.programs.push_back(std::make_unique<ScriptedProgram>(
        std::move(phases), seed * 131 + c));
  }
  return w;
}

/// Field-by-field Metrics equality (the equivalence contract is exact:
/// both paths execute the identical simulation, so even the FP sums match
/// bit-for-bit).
void expect_metrics_equal(const Metrics& a, const Metrics& b) {
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.noc_flit_hops, b.noc_flit_hops);
  EXPECT_DOUBLE_EQ(a.e_l1, b.e_l1);
  EXPECT_DOUBLE_EQ(a.e_l2, b.e_l2);
  EXPECT_DOUBLE_EQ(a.e_spm, b.e_spm);
  EXPECT_DOUBLE_EQ(a.e_dram, b.e_dram);
  EXPECT_DOUBLE_EQ(a.e_noc, b.e_noc);
  EXPECT_DOUBLE_EQ(a.e_dir, b.e_dir);
  EXPECT_DOUBLE_EQ(a.e_static, b.e_static);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.spm_hits, b.spm_hits);
  EXPECT_EQ(a.dram_line_reads, b.dram_line_reads);
  EXPECT_EQ(a.dram_line_writes, b.dram_line_writes);
  EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
  EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
  EXPECT_EQ(a.dram_row_conflicts, b.dram_row_conflicts);
  EXPECT_EQ(a.dram_refreshes, b.dram_refreshes);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.prefetch_fills, b.prefetch_fills);
  EXPECT_EQ(a.dma_transfers, b.dma_transfers);
  EXPECT_EQ(a.guarded_lookups, b.guarded_lookups);
  EXPECT_EQ(a.guarded_to_spm, b.guarded_to_spm);
  EXPECT_EQ(a.remote_spm_accesses, b.remote_spm_accesses);
}

class StoreEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreEquivalence, FlatAndHashedPathsProduceIdenticalMetrics) {
  const std::uint64_t seed = GetParam();
  const SystemConfig cfg = small_cfg();
  for (const auto mode :
       {HierarchyMode::cache_only, HierarchyMode::hybrid}) {
    auto wa = mixed_workload(cfg, seed);
    auto wb = mixed_workload(cfg, seed);
    System flat{cfg, mode, LineStore::paged};
    System ref{cfg, mode, LineStore::hashed};
    const Metrics ma = flat.run(wa);
    const Metrics mb = ref.run(wb);
    expect_metrics_equal(ma, mb);
    EXPECT_GT(ma.accesses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalence,
                         ::testing::Values(11, 23, 47, 95, 191));

// --- sharded vs serial equivalence -------------------------------------
//
// The sharded engine (System::run with RunOptions) decouples access-stream
// generation onto concurrent producer lanes but commits every protocol
// transition in the serial interleave order; these tests pin the contract
// that its Metrics are *field-identical* to the serial engine for any
// shard count — which proves determinism even on hosts where no parallel
// speedup is observable.

class ShardEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardEquivalence, ShardedRunMatchesSerialInterleave) {
  const std::uint64_t seed = GetParam();
  const SystemConfig cfg = small_cfg();
  for (const auto mode :
       {HierarchyMode::cache_only, HierarchyMode::hybrid}) {
    auto ws = mixed_workload(cfg, seed);
    System serial{cfg, mode};
    const Metrics reference = serial.run(ws);
    ASSERT_GT(reference.accesses, 0u);
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
      auto w = mixed_workload(cfg, seed);
      System sys{cfg, mode};
      const Metrics m = sys.run(w, raa::mem::RunOptions{.shards = shards});
      expect_metrics_equal(reference, m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalence,
                         ::testing::Values(13, 29, 61, 127, 251));

TEST(ShardedRun, ExternalZeroWorkerPoolRunsInline) {
  // An external pool with no workers degrades to inline fills inside the
  // commit loop's helping wait — the fully deterministic fallback.
  const SystemConfig cfg = small_cfg();
  auto ws = mixed_workload(cfg, 7);
  auto wp = mixed_workload(cfg, 7);
  System serial{cfg, HierarchyMode::hybrid};
  System sharded{cfg, HierarchyMode::hybrid};
  raa::exec::Pool pool{0};
  const Metrics a = serial.run(ws);
  const Metrics b =
      sharded.run(wp, raa::mem::RunOptions{.shards = 4, .pool = &pool});
  expect_metrics_equal(a, b);
}

TEST(ShardedRun, SystemAndPoolReuseAcrossRuns) {
  // Back-to-back runs on one System carry cache/DRAM state forward; the
  // sharded engine must match the serial engine's carried state exactly.
  const SystemConfig cfg = small_cfg();
  System serial{cfg, HierarchyMode::hybrid};
  System sharded{cfg, HierarchyMode::hybrid};
  raa::exec::Pool pool{2};
  for (const std::uint64_t seed : {3u, 5u, 9u}) {
    auto ws = mixed_workload(cfg, seed);
    auto wp = mixed_workload(cfg, seed);
    const Metrics a = serial.run(ws);
    const Metrics b =
        sharded.run(wp, raa::mem::RunOptions{.shards = 4, .pool = &pool});
    expect_metrics_equal(a, b);
  }
}

TEST(ShardedRun, ComparisonHalvesIndependentOfPool) {
  const SystemConfig cfg = small_cfg();
  const auto make = [&] { return mixed_workload(cfg, 17); };
  const auto serial = raa::mem::run_comparison(cfg, make);
  raa::exec::Pool pool{2};
  const auto parallel = raa::mem::run_comparison(
      cfg, make, raa::mem::ComparisonOptions{.shards = 2, .pool = &pool});
  expect_metrics_equal(serial.cache_only, parallel.cache_only);
  expect_metrics_equal(serial.hybrid, parallel.hybrid);
}

TEST(ShardedRun, PropagatesProtocolViolations) {
  // A protocol self-check failure inside the commit loop must unwind
  // cleanly through the producer machinery (drained, not deadlocked).
  const SystemConfig cfg = small_cfg();
  Workload w;
  w.name = "conflict";
  // Two cores write the same strided chunk -> SPM map conflict check.
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& shared =
      as.add(w, "shared", cfg.dma_chunk_bytes, RefClass::strided);
  for (unsigned c = 0; c < cfg.tiles; ++c) {
    std::vector<Phase> phases;
    phases.push_back(Phase{
        .streams = {Stream{.region = &shared, .store = true, .start = 0,
                           .stride = 8}},
        .iterations = 16});
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), 1));
  }
  System sys{cfg, HierarchyMode::hybrid};
  EXPECT_THROW(sys.run(w, raa::mem::RunOptions{.shards = 4}),
               std::logic_error);
}

TEST(System, CheckFailureIsCatchableAsTypedCheckError) {
  // The robustness contract the fleet engine is built on: a RAA_CHECK
  // failure inside System::run must surface as raa::CheckError — a typed,
  // catchable exception — never an abort(). The wrong-program-count check
  // in begin_run is the cheapest deterministic trigger.
  const SystemConfig cfg = small_cfg();
  Workload w;
  w.name = "undersized";  // no programs at all, cfg.tiles expected
  System sys{cfg, HierarchyMode::hybrid};
  try {
    sys.run(w);
    FAIL() << "expected RAA_CHECK to throw";
  } catch (const raa::CheckError& e) {
    EXPECT_NE(std::string{e.what()}.find("one program per tile"),
              std::string::npos);
  }
  // CheckError derives from std::logic_error, so pre-existing catch
  // sites (e.g. PropagatesProtocolViolations above) keep working.
  Workload w2;
  System sys2{cfg, HierarchyMode::cache_only};
  EXPECT_THROW(sys2.run(w2), std::logic_error);
}

TEST(System, DeterministicMetrics) {
  const SystemConfig cfg = small_cfg();
  auto wa = strided_workload(cfg, 2048, true, 3);
  auto wb = strided_workload(cfg, 2048, true, 3);
  System s1{cfg, HierarchyMode::hybrid};
  System s2{cfg, HierarchyMode::hybrid};
  const Metrics a = s1.run(wa);
  const Metrics b = s2.run(wb);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy_pj(), b.energy_pj());
  EXPECT_DOUBLE_EQ(a.noc_flit_hops, b.noc_flit_hops);
}

}  // namespace
