// Tests for the tasking runtime: dependence-ordered execution, taskwait
// semantics, graph/trace capture, scheduler policies and a randomized
// multi-worker stress test.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace {

using raa::rt::Criticality;
using raa::rt::Dep;
using raa::rt::Runtime;
using raa::rt::RuntimeOptions;
using raa::rt::SchedulerPolicy;
using raa::rt::TaskAttrs;

TEST(Runtime, RunsASingleTask) {
  Runtime rt;
  int x = 0;
  rt.spawn([&] { x = 42; });
  rt.taskwait();
  EXPECT_EQ(x, 42);
}

TEST(Runtime, RawDependenceOrdersProducerConsumer) {
  Runtime rt;
  double a = 0.0, b = 0.0;
  rt.spawn({raa::rt::out(a)}, [&] { a = 10.0; });
  rt.spawn({raa::rt::in(a), raa::rt::out(b)}, [&] { b = a * 2.0; });
  rt.taskwait();
  EXPECT_DOUBLE_EQ(b, 20.0);
}

TEST(Runtime, InoutChainAccumulates) {
  Runtime rt;
  long v = 0;
  for (int i = 1; i <= 10; ++i)
    rt.spawn({raa::rt::inout(v)}, [&v, i] { v = v * 10 + i % 10; });
  rt.taskwait();
  EXPECT_EQ(v, 1234567890L);
}

TEST(Runtime, IndependentTasksAllRun) {
  Runtime rt{{.num_workers = 3}};
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) rt.spawn([&] { count.fetch_add(1); });
  rt.taskwait();
  EXPECT_EQ(count.load(), 100);
}

TEST(Runtime, TaskwaitIsReusable) {
  Runtime rt;
  int x = 0;
  rt.spawn([&] { x = 1; });
  rt.taskwait();
  EXPECT_EQ(x, 1);
  rt.spawn([&] { x = 2; });
  rt.taskwait();
  EXPECT_EQ(x, 2);
}

TEST(Runtime, DestructorDrainsPendingTasks) {
  int x = 0;
  {
    Runtime rt{{.num_workers = 2}};
    for (int i = 0; i < 50; ++i) rt.spawn([&x] {
      // Benign: tasks write disjoint... actually same var; use atomic-free
      // increment guarded by inout dependence instead.
    });
    double slot = 0.0;
    for (int i = 0; i < 20; ++i)
      rt.spawn({raa::rt::inout(slot)}, [&x] { ++x; });
    // No taskwait: the destructor must run everything.
  }
  EXPECT_EQ(x, 20);
}

TEST(Runtime, NestedSpawnsExecute) {
  Runtime rt{{.num_workers = 2}};
  std::atomic<int> leaves{0};
  for (int i = 0; i < 4; ++i) {
    rt.spawn([&rt, &leaves] {
      for (int j = 0; j < 8; ++j) rt.spawn([&leaves] { ++leaves; });
    });
  }
  rt.taskwait();
  EXPECT_EQ(leaves.load(), 32);
}

TEST(Runtime, TaskwaitInsideTaskBodyRejected) {
  Runtime rt{{.num_workers = 1}};
  std::atomic<bool> threw{false};
  rt.spawn([&] {
    try {
      rt.taskwait();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  rt.taskwait();
  EXPECT_TRUE(threw.load());
}

TEST(Runtime, CapturedGraphMatchesSpawns) {
  Runtime rt;
  double a = 0.0, b = 0.0, c = 0.0;
  rt.spawn({raa::rt::out(a)}, [&] { a = 1.0; }, {.label = "A"});
  rt.spawn({raa::rt::out(b)}, [&] { b = 2.0; }, {.label = "B"});
  rt.spawn({raa::rt::in(a), raa::rt::in(b), raa::rt::out(c)},
           [&] { c = a + b; }, {.label = "C"});
  rt.taskwait();
  const auto g = rt.graph();
  ASSERT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(2).label, "C");
  // C depends on A and B.
  const auto preds = g.predecessors(2);
  EXPECT_EQ(preds.size(), 2u);
  // Measured costs are positive after execution.
  for (const auto& n : g.nodes()) EXPECT_GT(n.cost, 0.0);
}

TEST(Runtime, CostHintOverridesMeasuredCost) {
  Runtime rt;
  rt.spawn([] {}, {.cost_hint = 123.0});
  rt.taskwait();
  EXPECT_DOUBLE_EQ(rt.graph().node(0).cost, 123.0);
}

TEST(Runtime, CriticalHintLandsInGraph) {
  Runtime rt;
  rt.spawn([] {}, {.criticality = Criticality::critical});
  rt.spawn([] {});
  rt.taskwait();
  EXPECT_TRUE(rt.graph().node(0).critical_hint);
  EXPECT_FALSE(rt.graph().node(1).critical_hint);
}

TEST(Runtime, TraceRecordsEveryTask) {
  Runtime rt{{.num_workers = 2}};
  for (int i = 0; i < 25; ++i) rt.spawn([] {});
  rt.taskwait();
  const auto trace = rt.trace();
  ASSERT_EQ(trace.size(), 25u);
  for (const auto& rec : trace) EXPECT_LE(rec.start_ns, rec.end_ns);
}

TEST(Runtime, StatsCountSpawnsAndEdges) {
  Runtime rt;
  double a = 0.0;
  rt.spawn({raa::rt::out(a)}, [&] { a = 1.0; });
  rt.spawn({raa::rt::in(a)}, [&] { (void)a; });
  rt.taskwait();
  const auto s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, 2u);
  EXPECT_EQ(s.tasks_executed, 2u);
  EXPECT_EQ(s.edges, 1u);
}

TEST(Runtime, SerialModeExecutesInSpawnOrderFifo) {
  Runtime rt{{.num_workers = 0, .policy = SchedulerPolicy::fifo}};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) rt.spawn([&order, i] { order.push_back(i); });
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Runtime, SerialModeLifoReversesIndependentTasks) {
  Runtime rt{{.num_workers = 0, .policy = SchedulerPolicy::lifo}};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) rt.spawn([&order, i] { order.push_back(i); });
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Runtime, CriticalityFirstPolicyPrefersCriticalTasks) {
  Runtime rt{{.num_workers = 0, .policy = SchedulerPolicy::criticality_first}};
  std::vector<std::string> order;
  rt.spawn([&] { order.push_back("n1"); });
  rt.spawn([&] { order.push_back("n2"); });
  rt.spawn([&] { order.push_back("crit"); },
           {.criticality = Criticality::critical});
  rt.taskwait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "crit");
}

TEST(Runtime, ParallelForCoversRangeExactlyOnce) {
  Runtime rt{{.num_workers = 3}};
  std::vector<std::atomic<int>> hits(1000);
  raa::rt::parallel_for(rt, 0, 1000, 16,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                        });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runtime, ParallelForEmptyRange) {
  Runtime rt;
  bool ran = false;
  raa::rt::parallel_for(rt, 10, 10, 4,
                        [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// Stress: random dependence patterns over a bank of slots; per-slot inout
// chains must execute in spawn order regardless of workers/policy.
class RuntimeStress
    : public ::testing::TestWithParam<std::tuple<unsigned, SchedulerPolicy>> {
};

TEST_P(RuntimeStress, PerSlotChainsExecuteInSpawnOrder) {
  const auto [workers, policy] = GetParam();
  Runtime rt{{.num_workers = workers, .policy = policy}};
  constexpr int kSlots = 16;
  constexpr int kTasks = 400;
  std::array<double, kSlots> slots{};
  std::array<std::vector<int>, kSlots> sequence;  // protected by deps
  raa::Rng rng{77};

  for (int t = 0; t < kTasks; ++t) {
    const int s = static_cast<int>(rng.below(kSlots));
    rt.spawn({raa::rt::inout(slots[static_cast<std::size_t>(s)])},
             [&sequence, s, t] {
               sequence[static_cast<std::size_t>(s)].push_back(t);
             });
  }
  rt.taskwait();

  int total = 0;
  for (const auto& seq : sequence) {
    EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end()));
    total += static_cast<int>(seq.size());
  }
  EXPECT_EQ(total, kTasks);
  EXPECT_EQ(rt.stats().tasks_executed, static_cast<std::uint64_t>(kTasks));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, RuntimeStress,
    ::testing::Combine(::testing::Values(0u, 1u, 4u),
                       ::testing::Values(SchedulerPolicy::fifo,
                                         SchedulerPolicy::lifo,
                                         SchedulerPolicy::work_stealing,
                                         SchedulerPolicy::criticality_first)),
    [](const auto& param_info) {
      return "w" + std::to_string(std::get<0>(param_info.param)) + "_" +
             raa::rt::to_string(std::get<1>(param_info.param));
    });

// Diamond joins: many fork-join diamonds; the join must observe both sides.
TEST(Runtime, DiamondJoinSeesBothBranches) {
  Runtime rt{{.num_workers = 4}};
  for (int rep = 0; rep < 50; ++rep) {
    double a = 0.0, b = 0.0, c = 0.0, d = 0.0;
    rt.spawn({raa::rt::out(a)}, [&a] { a = 1.0; });
    rt.spawn({raa::rt::in(a), raa::rt::out(b)}, [&a, &b] { b = a + 1.0; });
    rt.spawn({raa::rt::in(a), raa::rt::out(c)}, [&a, &c] { c = a + 2.0; });
    rt.spawn({raa::rt::in(b), raa::rt::in(c), raa::rt::out(d)},
             [&b, &c, &d] { d = b + c; });
    rt.taskwait();
    ASSERT_DOUBLE_EQ(d, 5.0);
  }
}

TEST(Runtime, GraphParallelismReflectsStructure) {
  // 1 chain of 10 vs 10 independent: parallelism ~1 vs ~10.
  Runtime chain_rt;
  double v = 0.0;
  for (int i = 0; i < 10; ++i)
    chain_rt.spawn({raa::rt::inout(v)}, [] {}, {.cost_hint = 5.0});
  chain_rt.taskwait();
  EXPECT_NEAR(chain_rt.graph().parallelism(), 1.0, 1e-9);

  Runtime wide_rt;
  for (int i = 0; i < 10; ++i) wide_rt.spawn([] {}, {.cost_hint = 5.0});
  wide_rt.taskwait();
  EXPECT_NEAR(wide_rt.graph().parallelism(), 10.0, 1e-9);
}

}  // namespace
