// Tests for the TDG replay simulator: analytic makespans on known graphs,
// energy accounting, priority policies, governor hooks, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/graph.hpp"
#include "simcore/tdg_sim.hpp"

namespace {

using raa::sim::DvfsTable;
using raa::sim::FreqDecision;
using raa::sim::MachineConfig;
using raa::sim::OperatingPoint;
using raa::sim::PowerModel;
using raa::sim::replay;
using raa::tdg::Graph;
using raa::tdg::Synthetic;

MachineConfig machine(unsigned cores) { return MachineConfig{.cores = cores}; }

constexpr double kNomGhz = 2.0;  // DvfsTable::typical() nominal frequency

TEST(DvfsTable, TypicalShape) {
  const auto t = DvfsTable::typical();
  EXPECT_EQ(t.points().size(), 5u);
  EXPECT_DOUBLE_EQ(t.lowest().freq_ghz, 0.8);
  EXPECT_DOUBLE_EQ(t.highest().freq_ghz, 2.4);
  EXPECT_DOUBLE_EQ(t.nominal().freq_ghz, 2.0);
  EXPECT_DOUBLE_EQ(t.at_most(1.7).freq_ghz, 1.6);
  EXPECT_DOUBLE_EQ(t.at_most(0.1).freq_ghz, 0.8);  // clamps to lowest
}

TEST(PowerModel, MonotoneInVoltageAndFrequency) {
  const PowerModel p;
  const OperatingPoint lo{0.8, 0.7}, hi{2.4, 1.15};
  EXPECT_LT(p.busy_w(lo), p.busy_w(hi));
  EXPECT_LT(p.idle_w(lo), p.busy_w(lo));
  EXPECT_NEAR(p.dynamic_w({2.0, 1.0}), 1.0, 1e-12);  // 0.5 * 1 * 2
}

TEST(MachineConfig, DefaultBudgetIsAllCoresNominal) {
  const auto m = machine(32);
  EXPECT_NEAR(m.effective_budget_w(),
              32.0 * m.power.busy_w(m.dvfs.nominal()), 1e-9);
  MachineConfig custom = m;
  custom.power_budget_w = 10.0;
  EXPECT_DOUBLE_EQ(custom.effective_budget_w(), 10.0);
}

TEST(Replay, EmptyGraph) {
  const auto r = replay(Graph{}, machine(4));
  EXPECT_DOUBLE_EQ(r.makespan_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_j, 0.0);
}

TEST(Replay, ChainMakespanIsSerial) {
  const auto g = Synthetic::chain(10, 100.0);
  for (const unsigned cores : {1u, 4u, 32u}) {
    const auto r = replay(g, machine(cores));
    EXPECT_NEAR(r.makespan_ns, 10.0 * 100.0 / kNomGhz, 1e-9) << cores;
  }
}

TEST(Replay, IndependentTasksScaleWithCores) {
  Graph g;
  for (int i = 0; i < 64; ++i) g.add_node(100.0);
  // 64 equal tasks: ceil(64/P) rounds of 50ns at nominal.
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = replay(g, machine(cores));
    const double rounds = std::ceil(64.0 / cores);
    EXPECT_NEAR(r.makespan_ns, rounds * 50.0, 1e-9) << cores;
  }
}

TEST(Replay, ForkJoinAnalytic) {
  const auto g = Synthetic::fork_join(8, 100.0, 20.0);
  const auto r = replay(g, machine(4));
  // fork 10ns, 2 waves of 50ns, join 10ns (at 2 GHz).
  EXPECT_NEAR(r.makespan_ns, 10.0 + 2 * 50.0 + 10.0, 1e-9);
}

TEST(Replay, TimelineRespectsDependences) {
  const auto g = Synthetic::cholesky(6);
  const auto r = replay(g, machine(8));
  ASSERT_EQ(r.timeline.size(), g.node_count());
  for (raa::tdg::NodeId v = 0; v < g.node_count(); ++v)
    for (const auto s : g.successors(v))
      EXPECT_LE(r.timeline[v].end_ns, r.timeline[s].start_ns + 1e-9);
}

TEST(Replay, TimelineNoCoreOverlap) {
  const auto g = Synthetic::layered_random(8, 16, 3, 50.0, 200.0, 5);
  const auto r = replay(g, machine(4));
  // Group placements by core and check disjointness.
  std::vector<std::vector<raa::sim::PlacedTask>> per_core(4);
  for (const auto& p : r.timeline) per_core[p.core].push_back(p);
  for (auto& v : per_core) {
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.start_ns < b.start_ns; });
    for (std::size_t i = 1; i < v.size(); ++i)
      EXPECT_LE(v[i - 1].end_ns, v[i].start_ns + 1e-9);
  }
}

TEST(Replay, SingleTaskEnergyAnalytic) {
  Graph g;
  g.add_node(200.0);
  const auto m = machine(1);
  const auto r = replay(g, m);
  const double dur_ns = 200.0 / kNomGhz;
  EXPECT_NEAR(r.makespan_ns, dur_ns, 1e-9);
  EXPECT_NEAR(r.energy_j, m.power.busy_w(m.dvfs.nominal()) * dur_ns * 1e-9,
              1e-15);
}

TEST(Replay, IdleCoresLeak) {
  Graph g;
  g.add_node(200.0);
  const auto m1 = machine(1);
  const auto m4 = machine(4);
  const auto r1 = replay(g, m1);
  const auto r4 = replay(g, m4);
  // Same makespan, but 3 extra idle cores leak.
  EXPECT_NEAR(r4.makespan_ns, r1.makespan_ns, 1e-9);
  const double extra =
      3.0 * m4.power.idle_w(m4.dvfs.nominal()) * r1.makespan_ns * 1e-9;
  EXPECT_NEAR(r4.energy_j - r1.energy_j, extra, 1e-15);
}

TEST(Replay, UtilizationBounds) {
  const auto g = Synthetic::layered_random(10, 8, 2, 10.0, 100.0, 3);
  const auto r = replay(g, machine(4));
  EXPECT_GT(r.utilization(4), 0.0);
  EXPECT_LE(r.utilization(4), 1.0 + 1e-12);
}

TEST(Replay, DeterministicAcrossRuns) {
  const auto g = Synthetic::layered_random(12, 24, 4, 10.0, 500.0, 11);
  const auto a = replay(g, machine(8), raa::sim::priority_bottom_level());
  const auto b = replay(g, machine(8), raa::sim::priority_bottom_level());
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].core, b.timeline[i].core);
    EXPECT_DOUBLE_EQ(a.timeline[i].start_ns, b.timeline[i].start_ns);
  }
}

TEST(Replay, BottomLevelPriorityBeatsFifoOnSkewedDag) {
  // One long chain plus many short independent tasks, few cores: running the
  // chain head first is crucial; FIFO (spawn order puts shorts first) lags.
  Graph g;
  // 30 short tasks spawned "first".
  for (int i = 0; i < 30; ++i) g.add_node(100.0);
  // A chain of 10 long tasks spawned "after".
  raa::tdg::NodeId prev = raa::tdg::kNoNode;
  for (int i = 0; i < 10; ++i) {
    const auto v = g.add_node(300.0);
    if (prev != raa::tdg::kNoNode) g.add_edge(prev, v);
    prev = v;
  }
  const auto fifo = replay(g, machine(2), raa::sim::priority_fifo());
  const auto blevel = replay(g, machine(2), raa::sim::priority_bottom_level());
  EXPECT_LT(blevel.makespan_ns, fifo.makespan_ns);
}

// A governor that alternates between two operating points to exercise the
// switch counter and the stall accounting.
class AlternatingGovernor final : public raa::sim::FrequencyGovernor {
 public:
  void prepare(const Graph&, const MachineConfig& m) override {
    a_ = m.dvfs.lowest();
    b_ = m.dvfs.highest();
  }
  FreqDecision on_task_start(raa::tdg::NodeId task, unsigned,
                             double) override {
    return {(task % 2 == 0) ? a_ : b_, 7.0};
  }

 private:
  OperatingPoint a_, b_;
};

TEST(Replay, GovernorStallsAndSwitchesCounted) {
  const auto g = Synthetic::chain(6, 100.0);
  AlternatingGovernor gov;
  const auto r = replay(g, machine(1), raa::sim::priority_fifo(), &gov);
  EXPECT_EQ(r.freq_switches, 6u);  // every task flips the single core
  EXPECT_NEAR(r.stall_ns, 6 * 7.0, 1e-9);
  // Makespan = stalls + alternating durations at 0.8 / 2.4 GHz.
  const double expect =
      6 * 7.0 + 3 * (100.0 / 0.8) + 3 * (100.0 / 2.4);
  EXPECT_NEAR(r.makespan_ns, expect, 1e-9);
}

TEST(Replay, MoreCoresNeverSlower) {
  const auto g = Synthetic::cholesky(8);
  double prev = 1e300;
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto r = replay(g, machine(cores), raa::sim::priority_bottom_level());
    EXPECT_LE(r.makespan_ns, prev * (1.0 + 1e-9)) << cores;
    prev = r.makespan_ns;
  }
}

TEST(Replay, MakespanLowerBounds) {
  const auto g = Synthetic::cholesky(7);
  const unsigned cores = 4;
  const auto r = replay(g, machine(cores), raa::sim::priority_bottom_level());
  const double cp_ns = g.critical_path_length() / kNomGhz;
  const double work_ns = g.total_cost() / kNomGhz / cores;
  EXPECT_GE(r.makespan_ns, cp_ns - 1e-9);
  EXPECT_GE(r.makespan_ns, work_ns - 1e-9);
}

}  // namespace
