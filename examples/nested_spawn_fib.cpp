// Nested parallelism: recursive fibonacci with silent_async() + corun().
//
// Unlike quickstart.cpp, the task graph here is not known up front — each
// task *discovers* its children while running and joins them cooperatively
// (the joining worker runs or steals other ready tasks instead of
// blocking, so a handful of workers can drive thousands of nested tasks
// without deadlock). This is the divide-and-conquer shape the
// work-stealing executor exists for: every silent_async() from a worker
// lands in that worker's own deque (LIFO, cache-hot), and idle workers
// steal from the opposite end.
//
// Self-checking: exits non-zero if the parallel result disagrees with the
// sequential one.
#include <cstdio>
#include <cstdint>

#include "runtime/runtime.hpp"

namespace {

std::uint64_t fib_seq(unsigned n) {
  return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2);
}

std::uint64_t fib_par(raa::rt::Runtime& rt, unsigned n) {
  if (n < 2) return n;
  std::uint64_t left = 0;
  std::uint64_t right = 0;
  rt.silent_async([&rt, &left, n] { left = fib_par(rt, n - 1); });
  rt.silent_async([&rt, &right, n] { right = fib_par(rt, n - 2); });
  rt.corun();  // run/steal until both children (and their subtrees) finish
  return left + right;
}

}  // namespace

int main() {
  const unsigned n = 18;
  raa::rt::Runtime rt{{.num_workers = 3}};

  std::uint64_t result = 0;
  // The root body runs on a worker; everything below it is nested spawn.
  rt.spawn([&] { result = fib_par(rt, n); }, {.label = "fib_root"});
  rt.taskwait();

  const std::uint64_t expect = fib_seq(n);
  const auto stats = rt.stats();
  std::printf("fib(%u) = %llu (expected %llu)\n", n,
              static_cast<unsigned long long>(result),
              static_cast<unsigned long long>(expect));
  std::printf("tasks executed: %llu, steals: %llu\n",
              static_cast<unsigned long long>(stats.tasks_executed),
              static_cast<unsigned long long>(stats.steals));
  if (result != expect) {
    std::fprintf(stderr, "FAIL: nested-spawn result mismatch\n");
    return 1;
  }
  return 0;
}
