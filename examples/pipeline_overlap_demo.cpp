// Programmability demo (Sec. 5): the same particle-filter tracker written
// fork-join style (the Pthreads original) and dataflow style (the OmpSs
// port) — identical results, but the dataflow version overlaps the serial
// I/O stage of frame i+1 with the computation of frame i, which is where
// the Figure 5 scalability gap comes from.
#include <cstdio>

#include "apps/miniapps.hpp"

int main() {
  const raa::apps::BodytrackParams params{.frames = 10, .particles = 128,
                                          .chunks = 16, .pixels = 1024};

  const auto serial = raa::apps::bodytrack_serial(params);

  raa::rt::Runtime rt_fj{{.num_workers = 2}};
  const auto forkjoin =
      raa::apps::bodytrack_parallel(params, rt_fj, raa::apps::Style::forkjoin);

  raa::rt::Runtime rt_df{{.num_workers = 2}};
  const auto dataflow =
      raa::apps::bodytrack_parallel(params, rt_df, raa::apps::Style::dataflow);

  bool equal = true;
  for (std::size_t f = 0; f < params.frames; ++f)
    equal &= (serial[f] == forkjoin[f] && serial[f] == dataflow[f]);
  std::printf("serial == forkjoin == dataflow: %s\n",
              equal ? "yes (bit-identical)" : "NO");

  const auto g_fj = rt_fj.graph();
  const auto g_df = rt_df.graph();
  std::printf("\ncaptured TDGs (forkjoin vs dataflow):\n");
  std::printf("  tasks:        %6zu vs %zu\n", g_fj.node_count(),
              g_df.node_count());
  std::printf("  parallelism:  %6.2f vs %.2f\n", g_fj.parallelism(),
              g_df.parallelism());

  std::printf("\nsimulated speedup at 16 cores (Figure 5):\n");
  const auto fj_curve = raa::apps::scalability_curve(
      raa::apps::bodytrack_tdg(30, 32, raa::apps::Style::forkjoin), 16);
  const auto df_curve = raa::apps::scalability_curve(
      raa::apps::bodytrack_tdg(30, 32, raa::apps::Style::dataflow), 16);
  std::printf("  Pthreads original: %.1fx\n  OmpSs port:        %.1fx\n",
              fj_curve.back(), df_curve.back());
  return 0;
}
