// VSR sort demo (Sec. 3.2): sort keys on the simulated vector processor
// with the proposed VPI/VLU instructions and compare against the scalar
// baseline and the other vectorised sorts.
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "sort/sorts.hpp"

int main() {
  constexpr std::size_t kN = 32768;
  raa::Rng rng{7};
  const auto fresh = [&] {
    std::vector<raa::vec::Elem> v(kN);
    raa::Rng r{7};
    for (auto& x : v) x = r.below(1ull << 32);
    return v;
  };

  raa::vec::ScalarCore scalar_core;
  auto sdata = fresh();
  const auto scalar = raa::sort::scalar_radix_sort(scalar_core, sdata);
  std::printf("sorting %zu 32-bit keys; scalar radix: %.1f cycles/tuple\n\n",
              kN, scalar.cpt(kN));

  const raa::vec::VpuConfig cfg{.mvl = 64, .lanes = 4};
  std::printf("vector machine: MVL=%u, %u lanes, parallel VPI/VLU\n",
              cfg.mvl, cfg.lanes);
  for (const auto algo :
       {raa::sort::Algorithm::vsr, raa::sort::Algorithm::vector_radix,
        raa::sort::Algorithm::vector_quicksort,
        raa::sort::Algorithm::bitonic}) {
    auto data = fresh();
    const auto st = raa::sort::run_vector_sort(algo, cfg, data);
    const bool ok = std::is_sorted(data.begin(), data.end());
    std::printf("  %-17s %7.1f cycles/tuple  %6.2fx vs scalar  [%s]\n",
                raa::sort::to_string(algo), st.cpt(kN),
                static_cast<double>(scalar.cycles) /
                    static_cast<double>(st.cycles),
                ok ? "sorted" : "BROKEN");
  }

  // Show VPI/VLU directly.
  raa::vec::Vpu vpu{cfg};
  const raa::vec::Vreg in{3, 1, 3, 3, 1, 2};
  const auto prior = vpu.vpi(in);
  const auto last = vpu.vlu(in);
  std::printf("\nVPI/VLU on {3,1,3,3,1,2}:\n  vpi -> {");
  for (std::size_t i = 0; i < prior.size(); ++i)
    std::printf("%s%llu", i ? "," : "",
                static_cast<unsigned long long>(prior[i]));
  std::printf("}\n  vlu -> {");
  for (std::size_t i = 0; i < last.size(); ++i)
    std::printf("%s%d", i ? "," : "", last[i] ? 1 : 0);
  std::printf("}\n");
  return 0;
}
