// Hybrid memory hierarchy demo (Sec. 2): run one NAS-like kernel on a small
// tiled manycore under both configurations and show where the accesses went
// and what it cost.
#include <cstdio>

#include "kernels/nas.hpp"
#include "memsim/system.hpp"

namespace {

void report(const char* tag, const raa::mem::Metrics& m) {
  std::printf("%s\n", tag);
  std::printf("  cycles        %12.0f\n", m.cycles);
  std::printf("  energy (uJ)   %12.2f\n", m.energy_pj() * 1e-6);
  std::printf("  NoC flit-hops %12.0f\n", m.noc_flit_hops);
  std::printf("  L1 hits/misses     %10llu / %llu\n",
              static_cast<unsigned long long>(m.l1_hits),
              static_cast<unsigned long long>(m.l1_misses));
  std::printf("  SPM hits           %10llu\n",
              static_cast<unsigned long long>(m.spm_hits));
  std::printf("  DMA transfers      %10llu\n",
              static_cast<unsigned long long>(m.dma_transfers));
  std::printf("  guarded accesses   %10llu (to SPM: %llu)\n",
              static_cast<unsigned long long>(m.guarded_lookups),
              static_cast<unsigned long long>(m.guarded_to_spm));
}

}  // namespace

int main() {
  raa::mem::SystemConfig cfg;
  cfg.tiles = 16;
  cfg.mesh_x = cfg.mesh_y = 4;

  std::printf(
      "FT kernel (strided FFT passes + transpose with unknown aliasing) on "
      "a 16-tile mesh\n\n");
  raa::mem::Metrics base, hybrid;
  {
    auto w = raa::kern::make_ft(cfg, 1);
    raa::mem::System sys{cfg, raa::mem::HierarchyMode::cache_only};
    base = sys.run(w);
  }
  {
    auto w = raa::kern::make_ft(cfg, 1);
    raa::mem::System sys{cfg, raa::mem::HierarchyMode::hybrid};
    hybrid = sys.run(w);
  }
  report("cache-only baseline:", base);
  std::printf("\n");
  report("hybrid SPM+cache (co-designed coherence protocol):", hybrid);
  std::printf("\nspeedups: time %.3fx, energy %.3fx, NoC %.3fx\n",
              base.cycles / hybrid.cycles,
              base.energy_pj() / hybrid.energy_pj(),
              base.noc_flit_hops / hybrid.noc_flit_hops);
  return 0;
}
