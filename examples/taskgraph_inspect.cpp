// Task-graph inspection: build a tiled-Cholesky TDG, compute criticality
// (Sec. 3.1), replay it on simulated machines of different widths, and dump
// Graphviz with the critical path highlighted.
#include <cstdio>

#include "rsu/criticality.hpp"
#include "runtime/graph.hpp"
#include "simcore/tdg_sim.hpp"

int main() {
  const auto g = raa::tdg::Synthetic::cholesky(5, 1000.0);
  std::printf("tiled Cholesky (5x5 tiles): %zu tasks, %zu edges\n",
              g.node_count(), g.edge_count());
  std::printf("critical path: %.0f cycles, parallelism: %.2f\n",
              g.critical_path_length(), g.parallelism());

  const auto mask = raa::rsu::critical_tasks(g, 0.05);
  std::size_t critical = 0;
  for (const bool m : mask) critical += m;
  std::printf("critical tasks (5%% slack band): %zu of %zu (%.0f%% of work)\n",
              critical, mask.size(),
              100.0 * raa::rsu::critical_work_fraction(g, mask));

  for (const unsigned cores : {1u, 4u, 16u, 64u}) {
    const auto r = raa::sim::replay(g, raa::sim::MachineConfig{.cores = cores},
                                    raa::sim::priority_bottom_level());
    std::printf("  %2u cores: makespan %8.0f ns, utilisation %.0f%%\n", cores,
                r.makespan_ns, 100.0 * r.utilization(cores));
  }

  std::printf("\nGraphviz (critical path filled):\n%s",
              raa::tdg::Synthetic::cholesky(3, 1000.0).to_dot().c_str());
  return 0;
}
