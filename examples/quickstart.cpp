// Quickstart: the task-based programming model of the Runtime-Aware
// Architecture. Annotate what each task reads and writes; the runtime
// derives the Task Dependency Graph and runs tasks out of order — "in the
// same way as superscalar processors manage ILP" (paper, Sec. 1).
#include <cstdio>

#include "runtime/runtime.hpp"

int main() {
  raa::rt::Runtime rt{{.num_workers = 2}};

  // A tiny dataflow program: two producers, a combiner, a consumer.
  double a = 0.0, b = 0.0, c = 0.0;
  rt.spawn({raa::rt::out(a)}, [&] { a = 21.0; }, {.label = "produce_a"});
  rt.spawn({raa::rt::out(b)}, [&] { b = 2.0; }, {.label = "produce_b"});
  rt.spawn({raa::rt::in(a), raa::rt::in(b), raa::rt::out(c)},
           [&] { c = a * b; }, {.label = "combine"});
  rt.spawn({raa::rt::in(c)},
           [&] { std::printf("combine produced: %.1f\n", c); },
           {.label = "consume"});
  rt.taskwait();

  // The runtime captured the TDG while executing: inspect it.
  const auto graph = rt.graph();
  std::printf("tasks: %zu, dependence edges: %zu\n", graph.node_count(),
              graph.edge_count());
  std::printf("available task parallelism: %.2f\n", graph.parallelism());
  const auto stats = rt.stats();
  std::printf("executed %llu tasks on %u workers (+ the main thread)\n",
              static_cast<unsigned long long>(stats.tasks_executed),
              rt.num_workers());
  return 0;
}
