// Resilient CG demo (Sec. 4): inject a Detected-Uncorrected-Error into the
// iterate of a CG solve and recover it exactly with FEIR (forward error
// interpolation recovery), comparing against checkpoint/rollback.
#include <cstdio>

#include "solver/cg.hpp"

int main() {
  const auto a = raa::solver::laplacian_2d(96, 96);
  const std::vector<double> b(a.n, 1.0);
  std::printf("CG on a 2-D Poisson system, n=%zu (thermal2 stand-in)\n\n",
              a.n);

  std::vector<double> x;
  const auto ideal = raa::solver::solve_cg(
      a, b, x, raa::solver::CgOptions{.rel_tolerance = 1e-8});
  std::printf("ideal run: %zu iterations, %.2f ms simulated\n",
              ideal.iterations, 1e3 * ideal.time_s);

  const auto inject = ideal.iterations / 2;
  for (const auto rec :
       {raa::solver::Recovery::checkpoint,
        raa::solver::Recovery::lossy_restart, raa::solver::Recovery::feir,
        raa::solver::Recovery::afeir}) {
    raa::solver::CgOptions opt;
    opt.rel_tolerance = 1e-8;
    opt.recovery = rec;
    opt.checkpoint_interval = 100;
    opt.fault = raa::solver::FaultSpec{.enabled = true, .iteration = inject};
    std::vector<double> x2;
    const auto r = raa::solver::solve_cg(a, b, x2, opt);
    std::printf(
        "%-14s DUE at iter %4zu: %4zu iterations, %.2f ms (+%.2f%%), "
        "recovery %5.1f us\n",
        raa::solver::to_string(rec), inject, r.iterations, 1e3 * r.time_s,
        100.0 * (r.time_s / ideal.time_s - 1.0), 1e6 * r.recovery_time_s);
  }
  std::printf(
      "\nFEIR reconstructs the lost block exactly from r = b - A*x (inner "
      "solve on A_II); AFEIR runs that solve as a task off the critical "
      "path.\n");
  return 0;
}
