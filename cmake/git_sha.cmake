# Build-time git sha capture (cmake -P script mode).
#
# Writes ${OUT} defining RAA_GIT_SHA with the current short HEAD sha. Runs
# on every build (the generating target is always considered out of date),
# but the header is only touched when the sha actually changed, so nothing
# recompiles between commits. This replaces the old configure-time capture,
# which went stale whenever commits landed without a reconfigure and made
# BENCH_results.json report the wrong provenance.
#
# Expected -D inputs: OUT (header path), SOURCE_DIR (repo root),
# GIT_EXECUTABLE (may be empty/NOTFOUND -> "unknown").

set(sha "unknown")
if(GIT_EXECUTABLE AND NOT GIT_EXECUTABLE STREQUAL "GIT_EXECUTABLE-NOTFOUND")
  execute_process(
    COMMAND "${GIT_EXECUTABLE}" -C "${SOURCE_DIR}" rev-parse --short HEAD
    OUTPUT_VARIABLE _sha
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET
    RESULT_VARIABLE _rc)
  if(_rc EQUAL 0 AND NOT _sha STREQUAL "")
    set(sha "${_sha}")
  endif()
endif()

set(_content "// Generated at build time by cmake/git_sha.cmake - do not edit.
#define RAA_GIT_SHA \"${sha}\"
")

file(WRITE "${OUT}.tmp" "${_content}")
execute_process(COMMAND ${CMAKE_COMMAND} -E copy_if_different
                "${OUT}.tmp" "${OUT}")
file(REMOVE "${OUT}.tmp")
