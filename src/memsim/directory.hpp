#pragma once
/// \file directory.hpp
/// Full-map home-node directory for the cache side of the hierarchy, plus
/// the SPM-mapping directory of the co-designed protocol (§2): "the hybrid
/// memory hierarchy is extended with a set of directories and filters that
/// track what part of the data set is mapped and not mapped to the SPMs."

#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"

namespace raa::mem {

/// Cache-coherence directory entry for one line. `sharers` may contain
/// stale bits after silent S-evictions (as in real sparse directories);
/// spurious invalidations are harmless.
struct DirEntry {
  std::uint64_t sharers = 0;  ///< bitmask over tiles (<= 64 tiles)
  int owner = -1;             ///< tile holding the line Modified, or -1
};

/// Full-map directory over all home banks (the home tile is implied by the
/// line address, so a single map suffices).
class Directory {
 public:
  DirEntry& entry(std::uint64_t line_addr) { return map_[line_addr]; }

  bool has_entry(std::uint64_t line_addr) const {
    return map_.contains(line_addr);
  }

  static std::uint64_t bit(unsigned tile) noexcept {
    return std::uint64_t{1} << tile;
  }

  void add_sharer(std::uint64_t line_addr, unsigned tile) {
    map_[line_addr].sharers |= bit(tile);
  }
  void remove_sharer(std::uint64_t line_addr, unsigned tile) {
    map_[line_addr].sharers &= ~bit(tile);
  }
  void set_owner(std::uint64_t line_addr, int tile) {
    map_[line_addr].owner = tile;
  }

  std::size_t entries() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, DirEntry> map_;
};

/// Where a line currently mapped to some SPM lives, and the bookkeeping
/// needed to mark its chunk dirty on remote (guarded) stores.
struct SpmMapping {
  unsigned tile = 0;        ///< SPM slice holding the line
  std::uint32_t chunk_tag = 0;  ///< id of the software-cache chunk
};

/// The SPM-mapping directory: line -> SPM location. The per-tile *filter*
/// of the paper is an idealised membership test over this map (a real
/// implementation distributes it; the traffic/latency of consulting it is
/// charged by the system model, the *contents* are exact).
class SpmDirectory {
 public:
  void map_line(std::uint64_t line_addr, unsigned tile,
                std::uint32_t chunk_tag) {
    map_[line_addr] = SpmMapping{tile, chunk_tag};
  }

  void unmap_line(std::uint64_t line_addr) { map_.erase(line_addr); }

  /// nullptr when the line is not SPM-mapped.
  const SpmMapping* lookup(std::uint64_t line_addr) const {
    const auto it = map_.find(line_addr);
    return it == map_.end() ? nullptr : &it->second;
  }

  std::size_t mapped_lines() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, SpmMapping> map_;
};

}  // namespace raa::mem
