#pragma once
/// \file spm.hpp
/// Scratchpad tiling software-cache state (§2): the compiler transforms
/// strided references to run through per-core, per-region DMA-managed
/// chunks with double buffering. This header holds the chunk bookkeeping;
/// the timing/energy of DMA transfers is charged by the system model.

#include <cstdint>

#include "common/check.hpp"

namespace raa::mem {

/// One (core, strided-region) software cache: which chunk is resident,
/// whether it was written, and when its prefetch completes (double-buffer
/// overlap model: the DMA for the next chunk is issued when the current one
/// is entered; switching earlier than its completion stalls the core).
struct SoftwareCacheState {
  static constexpr std::uint64_t kNoChunk = ~std::uint64_t{0};

  std::uint64_t current_chunk = kNoChunk;  ///< chunk index within region
  bool dirty = false;
  bool open = false;  ///< stream touched at least once (slot reserved)
  double prefetch_done_cycle = 0.0;
  std::uint32_t chunk_tag = 0;  ///< unique id of the resident chunk
};

/// Per-tile SPM capacity accounting. Chunks are allocated double-buffered
/// (2x chunk size per active stream) like the paper's tiling software
/// caches; exceeding the SPM capacity is a configuration error.
class SpmAllocator {
 public:
  SpmAllocator(unsigned spm_bytes, unsigned chunk_bytes)
      : capacity_(spm_bytes), chunk_bytes_(chunk_bytes) {}

  /// Reserve a double-buffered stream slot.
  void reserve_stream() {
    used_ += 2 * chunk_bytes_;
    RAA_CHECK_MSG(used_ <= capacity_,
                  "SPM capacity exceeded: too many strided streams for "
                  "spm_bytes/dma_chunk_bytes");
  }

  unsigned used_bytes() const noexcept { return used_; }
  unsigned capacity_bytes() const noexcept { return capacity_; }

 private:
  unsigned capacity_ = 0;
  unsigned chunk_bytes_ = 0;
  unsigned used_ = 0;
};

}  // namespace raa::mem
