#include "memsim/system.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <mutex>
#include <optional>

#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace raa::mem {

const char* to_string(RefClass c) noexcept {
  switch (c) {
    case RefClass::strided: return "strided";
    case RefClass::random_noalias: return "random_noalias";
    case RefClass::random_unknown: return "random_unknown";
  }
  return "?";
}

namespace {

/// Flat index-min tournament (loser) tree over the core ids, keyed by
/// (clock, core id) lexicographically — the same deterministic
/// interleaving order the old std::priority_queue<pair<double, unsigned>>
/// produced, without a pop/push pair per access. After the winning core's
/// clock advances, one replay along its leaf-to-root path (exactly
/// ceil(log2(n)) comparisons, no swaps of sibling subtrees) restores the
/// winner. Finished cores are retired by setting their key to +infinity.
class CoreHeap {
 public:
  CoreHeap(std::vector<double>& clock, unsigned n)
      : clock_(clock), remaining_(n) {
    // Round the leaf count up to a power of two; surplus leaves hold the
    // +inf sentinel so they lose every match.
    leaves_ = 1;
    while (leaves_ < n) leaves_ *= 2;
    key_.assign(leaves_, kInf);
    for (unsigned i = 0; i < n; ++i) key_[i] = 0.0;
    loser_.assign(leaves_, 0);
    init_tree();
  }

  bool empty() const noexcept { return remaining_ == 0; }
  unsigned top() const noexcept { return winner_; }

  /// Re-seat the winner after its clock increased.
  void sift_top() {
    key_[winner_] = clock_[winner_];
    replay();
  }

  /// Retire the winner (its stream ended).
  void pop_top() {
    key_[winner_] = kInf;
    --remaining_;
    if (remaining_ > 0) replay();
  }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Lexicographic (key, id); surplus/retired leaves carry +inf keys and
  /// n <= 64, so an id tie-break among +inf leaves is still total.
  /// Branchless on purpose: match outcomes are data-dependent and would
  /// mispredict roughly every other replay step otherwise.
  bool before(unsigned a, unsigned b) const noexcept {
    const double ka = key_[a];
    const double kb = key_[b];
    return (ka < kb) | ((ka == kb) & (a < b));
  }

  void init_tree() {
    // Play every pair bottom-up; node i of loser_ (i >= 1) stores the
    // loser of the match below it, winners propagate to the root.
    std::vector<unsigned> w(2 * leaves_);
    for (unsigned i = 0; i < leaves_; ++i) w[leaves_ + i] = i;
    for (unsigned i = leaves_ - 1; i >= 1; --i) {
      const unsigned a = w[2 * i];
      const unsigned b = w[2 * i + 1];
      const bool a_wins = before(a, b);
      w[i] = a_wins ? a : b;
      loser_[i] = a_wins ? b : a;
    }
    winner_ = w[1];
  }

  /// Replay the matches on the current winner's path to the root
  /// (branchless: unconditional store + conditional moves per level; the
  /// carried winner's key stays in a register).
  void replay() {
    unsigned w = winner_;
    double kw = key_[w];
    for (unsigned node = (leaves_ + w) / 2; node >= 1; node /= 2) {
      const unsigned other = loser_[node];
      const double ko = key_[other];
      const bool lose = (ko < kw) | ((ko == kw) & (other < w));
      loser_[node] = lose ? w : other;
      w = lose ? other : w;
      kw = lose ? ko : kw;
    }
    winner_ = w;
  }

  std::vector<double>& clock_;
  std::vector<double> key_;      ///< per-leaf key (+inf = retired/surplus)
  std::vector<unsigned> loser_;  ///< loser_[i]: losing leaf at node i
  unsigned leaves_ = 0;
  unsigned winner_ = 0;
  unsigned remaining_ = 0;
};

}  // namespace

System::System(const SystemConfig& config, HierarchyMode mode,
               LineStore store)
    : cfg_(config),
      mode_(mode),
      noc_(config),
      lines_(config.line_bytes, store) {
  RAA_CHECK(cfg_.tiles <= 64);  // directory sharer mask is a 64-bit word
  line_pow2_ = std::has_single_bit(cfg_.line_bytes);
  chunk_pow2_ = std::has_single_bit(cfg_.dma_chunk_bytes);
  tiles_pow2_ = std::has_single_bit(cfg_.tiles);
  if (chunk_pow2_)
    chunk_shift_ = static_cast<unsigned>(std::countr_zero(cfg_.dma_chunk_bytes));
  flits_line_ = cfg_.flits_per_line();
  l1_.reserve(cfg_.tiles);
  l2_.reserve(cfg_.tiles);
  for (unsigned t = 0; t < cfg_.tiles; ++t) {
    l1_.emplace_back(cfg_.l1_bytes, cfg_.l1_assoc, cfg_.line_bytes);
    // Hashed set index: uniform under the chunk-granular bank interleaving.
    l2_.emplace_back(cfg_.l2_bank_bytes, cfg_.l2_assoc, cfg_.line_bytes,
                     /*hashed_index=*/true);
    spm_alloc_.emplace_back(cfg_.spm_bytes, cfg_.dma_chunk_bytes);
  }
  core_clock_.assign(cfg_.tiles, 0.0);
  stream_trackers_.assign(cfg_.tiles, {});
  tracker_rr_.assign(cfg_.tiles, 0);
  backend_ = make_backend(cfg_);
  backend_->set_completion([this](const LineReq& req, double latency) {
    // Demand reads are the only completions a core blocks on; writeback
    // and burst completions merely advance the backend's timing state.
    if (req.kind == LineReq::Kind::read && !req.burst) {
      read_done_ = true;
      read_latency_ = latency;
    }
#if RAA_OBS_ENABLED
    if (obs::enabled()) {
      // Classify this request's row outcome by the delta of the backend's
      // row counters since the previous completion — exact, because the
      // backend services requests one at a time on the commit thread and
      // updates its stats before firing the completion. FlatBackend never
      // moves the row counters, so flat traces carry "none".
      const BackendStats& bs = backend_->stats();
      std::uint8_t row = obs::kRowNone;
      if (bs.row_hits != obs_rows_.hits)
        row = obs::kRowHit;
      else if (bs.row_misses != obs_rows_.misses)
        row = obs::kRowMiss;
      else if (bs.row_conflicts != obs_rows_.conflicts)
        row = obs::kRowConflict;
      obs_rows_ = {bs.row_hits, bs.row_misses, bs.row_conflicts};
      obs::emit_sim(obs::Cat::memsim, obs::Name::dram_complete,
                    obs::Phase::instant, now_,
                    std::bit_cast<std::uint64_t>(latency), req.line,
                    static_cast<std::uint8_t>(row << obs::kRowShift));
    }
#endif
  });
}

unsigned System::dram_read(std::uint64_t line, unsigned mc) {
  read_done_ = false;
  RAA_OBS_SIM_EVENT(memsim, dram_enqueue, instant, now_, line,
                    static_cast<std::uint64_t>(mc));
  backend_->enqueue(LineReq{LineReq::Kind::read, line, mc, now_, false});
  while (!read_done_) backend_->tick();
  return static_cast<unsigned>(read_latency_);
}

unsigned System::send(unsigned from, unsigned to, unsigned flits) {
  const unsigned h = noc_.hops(from, to);
  metrics_.noc_flit_hops += noc_.traffic(h, flits);
  metrics_.e_noc += noc_.energy(h, flits);
  return noc_.latency(h, flits);
}

void System::check_load_value(const LineInfo& li,
                              std::uint64_t served) const {
  RAA_CHECK_MSG(served == li.oracle,
                "coherence violation: load served stale data");
}

void System::l2_install(std::uint64_t line, std::uint64_t value, bool dirty) {
  const unsigned home = home_of(line);
  Cache& bank = l2_[home];
  if (const std::size_t w = bank.probe(line); w != Cache::kMiss) {
    bank.set_value_of(w, value);
    if (dirty) bank.set_state_of(w, LineState::modified);
    return;
  }
  l2_insert_absent(home, line, value, dirty);
}

void System::l2_insert_absent(unsigned home, std::uint64_t line,
                              std::uint64_t value, bool dirty) {
  const auto victim =
      l2_[home].insert(line, dirty ? LineState::modified : LineState::shared,
                       value);
  if (victim && victim->dirty) {
    lines_.at(victim->line_addr).dram = victim->value;
    const unsigned mc = noc_.nearest_mc(home);
    RAA_OBS_SIM_EVENT(memsim, dram_enqueue, instant, now_, victim->line_addr,
                      static_cast<std::uint64_t>(mc) | (1u << 8));
    backend_->enqueue(
        LineReq{LineReq::Kind::write, victim->line_addr, mc, now_, false});
    send(home, mc, flits_line_);
  }
}

void System::l1_install(unsigned core, std::uint64_t line, LineState st,
                        std::uint64_t value) {
  const auto victim = l1_[core].insert(line, st, value);
  if (!victim) return;
  if (victim->dirty) {
    // Write the modified victim back to its home L2 bank.
    ++metrics_.writebacks;
    send(core, home_of(victim->line_addr), flits_line_);
    l2_install(victim->line_addr, victim->value, /*dirty=*/true);
    LineInfo& e = lines_.at(victim->line_addr);
    if (e.owner == static_cast<int>(core)) e.owner = -1;
  } else if (victim->state == LineState::exclusive) {
    // Clean-exclusive eviction: the directory thinks we own the line, so a
    // small eviction notice keeps it sound (no data payload).
    send(core, home_of(victim->line_addr), 1);
    LineInfo& e = lines_.at(victim->line_addr);
    if (e.owner == static_cast<int>(core)) e.owner = -1;
  }
  // Shared victims are dropped silently (no directory message, no line
  // record touched), leaving a stale sharer bit behind — as in real
  // sparse directories.
}

unsigned System::invalidate_sharers(std::uint64_t line, LineInfo& li,
                                    int except_core) {
  // Walk only the set sharer bits (ascending tile order, as before).
  std::uint64_t mask = li.sharers;
  if (except_core >= 0) mask &= ~bit(static_cast<unsigned>(except_core));
  li.sharers =
      except_core >= 0 ? bit(static_cast<unsigned>(except_core)) : 0;
  if (mask == 0) return 0;

  const unsigned home = home_of(line);
  unsigned worst = 0;
  while (mask != 0) {
    const unsigned t = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    // Invalidation + ack round trip.
    const unsigned rt = send(home, t, 1) + send(t, home, 1);
    worst = std::max(worst, rt);
    const auto dropped = l1_[t].invalidate(line);
    if (dropped) {
      ++metrics_.invalidations;
      RAA_CHECK_MSG(!dropped->dirty,
                    "protocol bug: invalidating a Modified sharer");
    }
  }
  return worst;
}

unsigned System::fetch_line(unsigned core, std::uint64_t line, LineInfo& li,
                            std::uint64_t& value, bool for_store) {
  const unsigned home = home_of(line);
  unsigned lat = send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  RAA_CHECK(li.owner != static_cast<int>(core));

  if (li.owner >= 0) {
    // Another L1 holds the line Modified or Exclusive: forward.
    const auto owner = static_cast<unsigned>(li.owner);
    Cache& oc = l1_[owner];
    const std::size_t ow = oc.probe(line);
    RAA_CHECK(ow != Cache::kMiss);
    const LineState owner_state = oc.state_of(ow);
    RAA_CHECK(owner_state == LineState::modified ||
              owner_state == LineState::exclusive);
    const bool was_dirty = owner_state == LineState::modified;
    value = oc.value_of(ow);
    lat += send(home, owner, 1) + cfg_.lat_l1_hit +
           send(owner, core, flits_line_);
    metrics_.e_l1 += cfg_.e_l1_hit;
    if (for_store) {
      oc.invalidate_way(ow);
      ++metrics_.invalidations;
      li.owner = static_cast<std::int8_t>(core);
      li.sharers = bit(core);
    } else {
      // Owner downgrades to Shared; dirty data is reflected to the home.
      oc.set_state_of(ow, LineState::shared);
      if (was_dirty) {
        send(owner, home, flits_line_);
        l2_install(line, value, /*dirty=*/true);
      }
      li.owner = -1;
      li.sharers |= bit(owner) | bit(core);
    }
    return lat;
  }

  if (const std::size_t lw = l2_[home].probe_touch(line);
      lw != Cache::kMiss) {
    // L2 hit at home.
    ++metrics_.l2_hits;
    metrics_.e_l2 += cfg_.e_l2;
    value = l2_[home].value_of(lw);
    lat += cfg_.lat_l2_hit + send(home, core, flits_line_);
  } else {
    // Fetch from DRAM through the nearest memory controller.
    ++metrics_.l2_misses;
    metrics_.e_l2 += cfg_.e_l2;  // tag probe
    const unsigned mc = noc_.nearest_mc(home);
    value = li.dram;
    lat += send(home, mc, 1) + dram_read(line, mc) +
           send(mc, home, flits_line_) +
           send(home, core, flits_line_);
    // The probe above just missed, so skip l2_install's redundant re-probe.
    l2_insert_absent(home, line, value, /*dirty=*/false);
  }

  if (for_store) {
    lat += invalidate_sharers(line, li, static_cast<int>(core));
    li.owner = static_cast<std::int8_t>(core);
    li.sharers = bit(core);
  } else if (li.sharers == 0) {
    // No other copy anywhere: grant clean-exclusive (MESI E).
    li.owner = static_cast<std::int8_t>(core);
    li.sharers = bit(core);
    exclusive_grant_ = true;
  } else {
    li.sharers |= bit(core);
  }
  return lat;
}

unsigned System::upgrade_to_modified(unsigned core, std::uint64_t line,
                                     LineInfo& li) {
  const unsigned home = home_of(line);
  unsigned lat = send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  lat += invalidate_sharers(line, li, static_cast<int>(core));
  lat += send(home, core, 1);  // upgrade ack
  li.owner = static_cast<std::int8_t>(core);
  li.sharers = bit(core);
  return lat;
}

unsigned System::cache_access(unsigned core, std::uint64_t line, LineInfo& li,
                              bool store) {
  unsigned lat = cfg_.lat_l1_hit;
  Cache& l1 = l1_[core];
  if (const std::size_t w = l1.probe_touch(line); w != Cache::kMiss) {
    ++metrics_.l1_hits;
    metrics_.e_l1 += cfg_.e_l1_hit;
    if (store) {
      const LineState st = l1.state_of(w);
      if (st == LineState::shared) {
        lat += upgrade_to_modified(core, line, li);
        l1.set_state_of(w, LineState::modified);
      } else if (st == LineState::exclusive) {
        // MESI silent upgrade.
        l1.set_state_of(w, LineState::modified);
      }
      const std::uint64_t v = fresh_version();
      l1.set_value_of(w, v);
      li.oracle = v;
      if (li.prefetch_mask & bit(core)) {
        li.prefetch_mask &= ~bit(core);
        prefetch(core, line + cfg_.line_bytes);
      }
    } else {
      check_load_value(li, l1.value_of(w));
      if (li.prefetch_mask & bit(core)) {
        // First demand hit on a prefetched line: keep the stream rolling.
        li.prefetch_mask &= ~bit(core);
        prefetch(core, line + cfg_.line_bytes);
      }
    }
    return lat;
  }

  ++metrics_.l1_misses;
  metrics_.e_l1 += cfg_.e_l1_probe;
  std::uint64_t value = 0;
  exclusive_grant_ = false;
  lat += fetch_line(core, line, li, value, store);
  if (store) {
    const std::uint64_t v = fresh_version();
    l1_install(core, line, LineState::modified, v);
    li.oracle = v;
  } else {
    l1_install(core, line,
               exclusive_grant_ ? LineState::exclusive : LineState::shared,
               value);
    check_load_value(li, value);
  }

  // Stream detection: a miss that continues a tracked sequential stream
  // triggers a next-line prefetch (tagged prefetcher).
  auto& trackers = stream_trackers_[core];
  const std::uint64_t next = line + cfg_.line_bytes;
  bool matched = false;
  for (std::uint64_t& t : trackers) {
    if (t == line) {
      t = next;
      matched = true;
      break;
    }
  }
  if (matched) {
    prefetch(core, next);
  } else {
    trackers[tracker_rr_[core]] = next;
    tracker_rr_[core] = (tracker_rr_[core] + 1) % trackers.size();
  }
  return lat;
}

void System::prefetch(unsigned core, std::uint64_t line) {
  if (l1_[core].contains(line)) return;
  LineInfo& li = lines_.at(line);
  if (mode_ == HierarchyMode::hybrid && li.spm_mapped)
    return;  // mapped data is served by the SPM side
  std::uint64_t value = 0;
  exclusive_grant_ = false;
  (void)fetch_line(core, line, li, value, /*for_store=*/false);  // hidden
  l1_install(core, line,
             exclusive_grant_ ? LineState::exclusive : LineState::shared,
             value);
  li.prefetch_mask |= bit(core);
  ++metrics_.prefetch_fills;
}

double System::dma_map_chunk(unsigned core, const Region& region,
                             std::uint64_t chunk_index,
                             std::uint32_t chunk_tag, bool fetch) {
  const std::uint64_t chunk_base =
      region.base + chunk_index * cfg_.dma_chunk_bytes;
  const std::uint64_t chunk_end =
      std::min(region.base + region.bytes, chunk_base + cfg_.dma_chunk_bytes);
  const unsigned mc = noc_.nearest_mc(core);
  const unsigned home = home_of(chunk_base);  // one home per chunk
  unsigned lines = 0;
  unsigned dram_lines = 0;
  unsigned l2_lines = 0;

  // One SPM-directory transaction covers the chunk.
  metrics_.e_dir += cfg_.e_dir;
  send(core, home, 1);
  backend_->begin_burst();

  for (std::uint64_t line = chunk_base; line < chunk_end;
       line += cfg_.line_bytes) {
    ++lines;
    LineInfo& li = lines_.at(line);
    RAA_CHECK_MSG(!li.spm_mapped,
                  "SPM map conflict: strided chunks of different cores "
                  "overlap (kernel classification bug)");
    std::uint64_t value = 0;
    bool from_cache_side = false;

    // DMA fills are L2-backed: take the line from the home bank when
    // present. The L2 copy is *kept* (it cannot be read while the line is
    // mapped — the filter redirects guarded accesses, and no-alias
    // references never touch mapped data); a dirty unmap overwrites it.
    if (fetch) {
      if (const std::size_t w = l2_[home].probe_touch(line);
          w != Cache::kMiss) {
        value = l2_[home].value_of(w);
        from_cache_side = true;
        ++l2_lines;
        metrics_.e_l2 += cfg_.e_l2;
      }
    }
    if (li.owner >= 0) {
      // A Modified/Exclusive L1 copy supersedes everything; collect it,
      // reflect it to the home bank, and invalidate the owner.
      const auto owner = static_cast<unsigned>(li.owner);
      value = l1_[owner].value(line);
      from_cache_side = true;
      l1_[owner].invalidate(line);
      ++metrics_.invalidations;
      send(home, owner, 1);
      if (fetch) send(owner, core, flits_line_);
      l2_install(line, value, /*dirty=*/true);
      li.owner = -1;
      li.sharers = 0;
    } else if (li.sharers != 0) {
      // Shared L1 copies would go stale behind SPM writes: invalidate now.
      invalidate_sharers(line, li, -1);
    }
    if (fetch) {
      if (!from_cache_side) {
        value = li.dram;
        ++dram_lines;
        RAA_OBS_SIM_EVENT(memsim, dram_enqueue, instant, now_, line,
                          static_cast<std::uint64_t>(mc) | (1u << 9));
        backend_->enqueue(
            LineReq{LineReq::Kind::read, line, mc, now_, /*burst=*/true});
        // The fill allocates in the home L2 bank on the way (L2-backed
        // DMA), so later re-maps of the same data stay on chip. The fetch
        // probe above already missed, so insert without re-probing.
        l2_insert_absent(home, line, value, /*dirty=*/false);
        metrics_.e_l2 += cfg_.e_l2;
      }
      li.spm_value = value;
      li.spm_valid = true;
      metrics_.e_spm += cfg_.e_spm;  // SPM fill write
    }
    // Write-allocated chunks: lines become valid in the SPM as they are
    // written (spm_valid is the per-line validity mask).
    li.spm_mapped = true;
    li.spm_tile = static_cast<std::uint8_t>(core);
    li.spm_chunk_tag = chunk_tag;
  }

  // Bulk data legs: DMA moves whole bursts (one header per burst), which is
  // where the protocol's NoC savings over per-line cache messages come from.
  const unsigned payload = cfg_.line_bytes / 8;
  if (dram_lines > 0) {
    send(mc, home, dram_lines * payload + 1);
    send(home, core, dram_lines * payload + 1);
  }
  if (l2_lines > 0) send(home, core, l2_lines * payload + 1);

  ++metrics_.dma_transfers;
  double lat = 0.0;
  if (!fetch) {
    // Write-allocate: only the directory transaction is on the path.
    lat = noc_.latency(noc_.hops(core, home), 1) * 2.0 + cfg_.lat_dir;
  } else {
    // Pipelined DMA latency: request + access latency of the slowest
    // source + per-line cadence + data head flight. The backend times the
    // DRAM half of the burst; L2-sourced lines cost lat_l2_hit at the head.
    while (!backend_->idle()) backend_->tick();
    const BurstTiming bt = backend_->finish_burst(lines, dram_lines);
    const double src_lat =
        dram_lines > 0 ? bt.service : static_cast<double>(cfg_.lat_l2_hit);
    lat = noc_.latency(noc_.hops(core, mc), 1) + src_lat + bt.cadence +
          noc_.latency(noc_.hops(mc, core), flits_line_);
  }
  // Complete-phase events are stamped at their END (exporter subtracts
  // the duration); the chunk's DMA occupies [now_, now_ + lat).
  RAA_OBS_SIM_EVENT(memsim, dma_chunk, complete, now_ + lat,
                    std::bit_cast<std::uint64_t>(lat),
                    static_cast<std::uint64_t>(lines) |
                        (static_cast<std::uint64_t>(dram_lines) << 16) |
                        (static_cast<std::uint64_t>(core) << 32));
  return lat;
}

void System::dma_unmap_chunk(unsigned core, const Region& region,
                             SoftwareCacheState& st) {
  if (st.current_chunk == SoftwareCacheState::kNoChunk) return;
  const std::uint64_t chunk_base =
      region.base + st.current_chunk * cfg_.dma_chunk_bytes;
  const std::uint64_t chunk_end =
      std::min(region.base + region.bytes, chunk_base + cfg_.dma_chunk_bytes);
  const bool dirty = st.dirty || dirty_tag(st.chunk_tag);
  const unsigned home = home_of(chunk_base);

  unsigned dirty_lines = 0;
  for (std::uint64_t line = chunk_base; line < chunk_end;
       line += cfg_.line_bytes) {
    LineInfo& li = lines_.at(line);
    if (dirty && li.spm_valid) {
      // Write back the valid lines to the home L2 bank (L2-backed DMA);
      // DRAM is updated lazily on L2 eviction like any other dirty line.
      // Write-allocated chunks write back only the lines actually written.
      metrics_.e_spm += cfg_.e_spm;  // SPM read for the writeback
      l2_install(line, li.spm_value, /*dirty=*/true);
      ++dirty_lines;
    }
    li.spm_valid = false;
    li.spm_mapped = false;
  }
  if (dirty_lines > 0)
    send(core, home, dirty_lines * (cfg_.line_bytes / 8) + 1);  // one burst
  // SPM-directory update for the chunk.
  metrics_.e_dir += cfg_.e_dir;
  send(core, home, 1);
  if (dirty) ++metrics_.writebacks;
  if (st.chunk_tag < dirty_tags_.size()) dirty_tags_[st.chunk_tag] = 0;
  st.current_chunk = SoftwareCacheState::kNoChunk;
  st.dirty = false;
}

unsigned System::spm_access(unsigned core, std::size_t region_idx,
                            const Region& region, std::uint64_t addr,
                            std::uint64_t line, bool store) {
  SoftwareCacheState& st = streams_[core * region_count_ + region_idx];
  if (!st.open) {
    st.open = true;
    spm_alloc_[core].reserve_stream();
    st.prefetch_done_cycle = -1.0;  // first touch: full DMA latency
  }

  const std::uint64_t chunk = chunk_pow2_
                                  ? (addr - region.base) >> chunk_shift_
                                  : (addr - region.base) / cfg_.dma_chunk_bytes;
  unsigned lat = 0;
  if (chunk != st.current_chunk) {
    dma_unmap_chunk(core, region, st);
    const double now = core_clock_[core];
    // A store-triggered switch marks an output chunk: write-allocate, no
    // DMA-in (the tiling software cache knows out() tiles are overwritten).
    const double dma_lat = dma_map_chunk(core, region, chunk,
                                         ++chunk_tag_counter_, !store);
    double stall = 0.0;
    if (st.prefetch_done_cycle < 0.0) {
      stall = dma_lat;  // nothing prefetched yet
    } else {
      stall = std::max(0.0, st.prefetch_done_cycle - now);
    }
    // Double buffering: the DMA for the *next* chunk is kicked off now and
    // overlaps with the compute on this chunk.
    st.prefetch_done_cycle = now + stall + dma_lat;
    st.current_chunk = chunk;
    st.chunk_tag = chunk_tag_counter_;
    st.dirty = false;
    lat += static_cast<unsigned>(stall);
  }

  LineInfo& li = lines_.at(line);
  lat += cfg_.lat_spm_hit;
  metrics_.e_spm += cfg_.e_spm;
  ++metrics_.spm_hits;
  if (store) {
    const std::uint64_t v = fresh_version();
    li.spm_value = v;
    li.spm_valid = true;
    li.oracle = v;
    st.dirty = true;
  } else {
    RAA_CHECK(li.spm_valid);
    check_load_value(li, li.spm_value);
  }
  return lat;
}

unsigned System::guarded_access(unsigned core, std::uint64_t line,
                                bool store) {
  unsigned lat = cfg_.lat_filter;
  metrics_.e_dir += cfg_.e_filter;
  ++metrics_.guarded_lookups;

  LineInfo& li = lines_.at(line);
  if (!li.spm_mapped) return lat + cache_access(core, line, li, store);

  ++metrics_.guarded_to_spm;
  if (store) {
    if (li.spm_tile != core) {
      ++metrics_.remote_spm_accesses;
      lat += send(core, li.spm_tile, 1) + send(li.spm_tile, core, 1);
    }
    lat += cfg_.lat_spm_hit;
    metrics_.e_spm += cfg_.e_spm;
    ++metrics_.spm_hits;
    const std::uint64_t v = fresh_version();
    li.spm_value = v;
    li.spm_valid = true;
    li.oracle = v;
    mark_dirty_tag(li.spm_chunk_tag);
    return lat;
  }

  if (li.spm_valid) {
    if (li.spm_tile != core) {
      ++metrics_.remote_spm_accesses;
      lat += send(core, li.spm_tile, 1) +
             send(li.spm_tile, core, flits_line_);
    }
    lat += cfg_.lat_spm_hit;
    metrics_.e_spm += cfg_.e_spm;
    ++metrics_.spm_hits;
    check_load_value(li, li.spm_value);
    return lat;
  }

  // Mapped write-allocated chunk, line not yet written: the valid copy is
  // still below (home L2 / DRAM). Served uncached so no stale L1 copy can
  // form behind the upcoming SPM write.
  const unsigned home = home_of(line);
  lat += send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  std::uint64_t value = 0;
  if (const std::size_t w = l2_[home].probe_touch(line);
      w != Cache::kMiss) {
    ++metrics_.l2_hits;
    metrics_.e_l2 += cfg_.e_l2;
    value = l2_[home].value_of(w);
    lat += cfg_.lat_l2_hit + send(home, core, flits_line_);
  } else {
    const unsigned mc = noc_.nearest_mc(home);
    value = li.dram;
    lat += send(home, mc, 1) + dram_read(line, mc) +
           send(mc, home, flits_line_) +
           send(home, core, flits_line_);
    l2_insert_absent(home, line, value, /*dirty=*/false);
  }
  check_load_value(li, value);
  return lat;
}

void System::flush_all_software_caches() {
  RAA_CHECK(workload_ != nullptr);
  // Deterministic (core, region) order — the old hash-map iteration order
  // was arbitrary; flush-time L2 evictions are now reproducible.
  for (unsigned core = 0; core < cfg_.tiles; ++core) {
    for (std::size_t r = 0; r < region_count_; ++r) {
      SoftwareCacheState& st = streams_[core * region_count_ + r];
      if (!st.open) continue;
      dma_unmap_chunk(core, run_regions_[r], st);
    }
  }
}

void System::begin_run(Workload& workload) {
  RAA_CHECK_MSG(workload.programs.size() == cfg_.tiles,
                "workload must provide one program per tile");
  workload_ = &workload;
  metrics_ = Metrics{};
  core_clock_.assign(cfg_.tiles, 0.0);
  backend_->begin_run();
  now_ = 0.0;
  obs_rows_ = {};
  RAA_OBS_SIM_EVENT(memsim, epoch, begin, 0.0,
                    static_cast<std::uint64_t>(cfg_.tiles),
                    static_cast<std::uint64_t>(mode_));
  region_count_ = workload.regions.size();
  streams_.assign(cfg_.tiles * std::max<std::size_t>(region_count_, 1), {});
  // Flatten the region deque: the per-access region checks index it hard.
  run_regions_.assign(workload.regions.begin(), workload.regions.end());
}

Metrics System::finish_run() {
  // Flush-time DMA/writeback traffic is issued at the makespan clock.
  now_ = *std::max_element(core_clock_.begin(), core_clock_.end());
  flush_all_software_caches();
  while (!backend_->idle()) backend_->tick();  // drain queued writebacks
  const BackendStats& bs = backend_->stats();
  metrics_.dram_line_reads = bs.line_reads;
  metrics_.dram_line_writes = bs.line_writes;
  metrics_.dram_row_hits = bs.row_hits;
  metrics_.dram_row_misses = bs.row_misses;
  metrics_.dram_row_conflicts = bs.row_conflicts;
  metrics_.dram_refreshes = bs.refreshes;
  metrics_.e_dram = bs.energy_pj;
  metrics_.cycles = now_;
  metrics_.e_static = metrics_.cycles * static_cast<double>(cfg_.tiles) *
                      cfg_.e_static_per_tile_cycle;
  RAA_OBS_SIM_EVENT(memsim, epoch, end, now_, metrics_.accesses,
                    metrics_.dram_line_reads);
  workload_ = nullptr;
  return metrics_;
}

void System::step(unsigned core, const Access& acc,
                  std::size_t& last_region) {
  core_clock_[core] += acc.gap_cycles;
  now_ = core_clock_[core];

  unsigned lat = 0;
  const std::uint64_t line = line_of(acc.addr);
  if (mode_ == HierarchyMode::hybrid) {
    switch (acc.ref) {
      case RefClass::strided: {
        // Resolve the region (streams revisit the same region, so the
        // memoised index almost always hits).
        std::size_t r = last_region;
        if (r >= region_count_ || !run_regions_[r].contains(acc.addr)) {
          r = 0;
          while (r < region_count_ && !run_regions_[r].contains(acc.addr))
            ++r;
          RAA_CHECK_MSG(r < region_count_,
                        "strided access outside any declared region");
          last_region = r;
        }
        lat = spm_access(core, r, run_regions_[r], acc.addr, line,
                         acc.is_store);
        break;
      }
      case RefClass::random_noalias: {
        // Compiler contract: no-alias references never touch SPM-mapped
        // data. A violation would be a kernel classification bug.
        LineInfo& li = lines_.at(line);
        RAA_CHECK(!li.spm_mapped);
        lat = cache_access(core, line, li, acc.is_store);
        break;
      }
      case RefClass::random_unknown:
        lat = guarded_access(core, line, acc.is_store);
        break;
    }
  } else {
    lat = cache_access(core, line, lines_.at(line), acc.is_store);
  }

  core_clock_[core] += lat;
}

Metrics System::run_serial(Workload& workload) {
  begin_run(workload);

  // Per-core batched pull state: one virtual fill() per kBatch accesses.
  constexpr unsigned kBatch = 64;
  struct CoreState {
    std::array<Access, kBatch> buf;
    unsigned head = 0;
    unsigned count = 0;
    std::size_t last_region = 0;  ///< streams are strongly region-local
  };
  std::vector<CoreState> cores(cfg_.tiles);

  // Advance the core with the smallest local clock (deterministic
  // interleaving; ties resolved by core id).
  CoreHeap order{core_clock_, cfg_.tiles};

  while (!order.empty()) {
    const unsigned core = order.top();
    CoreState& cs = cores[core];
    if (cs.head == cs.count) {
      cs.count = static_cast<unsigned>(
          workload.programs[core]->fill({cs.buf.data(), kBatch}));
      cs.head = 0;
      if (cs.count == 0) {  // core finished
        order.pop_top();
        continue;
      }
      metrics_.accesses += cs.count;  // counted per batch, not per access
    }
    step(core, cs.buf[cs.head++], cs.last_region);
    order.sift_top();
  }

  return finish_run();
}

namespace {

/// Accesses per producer fill in the sharded engine. Larger than the
/// serial engine's pull batch: each generation crosses a mutex and the
/// pool queue once. Batch size never changes the stream content (fill()
/// only chunks the per-core sequence), so it is invisible in the Metrics.
constexpr unsigned kShardBatch = 256;

/// One core's double-buffered access channel between its producer lane
/// (fills generation g into slot g % 2) and the commit loop (consumes
/// generations in order). All cross-thread fields are guarded by `m`; the
/// buffer itself is handed off through the ready flag: a slot belongs to
/// exactly one side at a time.
struct ShardChannel {
  std::mutex m;
  std::array<Access, kShardBatch> buf[2];
  unsigned count[2] = {0, 0};
  bool ready[2] = {false, false};
  unsigned pending_gen = 0;  ///< next generation the producer will fill
  bool paused = true;        ///< no producer task queued or running
  bool ended = false;        ///< fill() returned 0 (terminal) or cancelled

  // Commit-loop-only fields (single thread, unguarded).
  unsigned head = 0;       ///< consume index into the adopted slot
  unsigned adopted = 0;    ///< count of the adopted slot
  unsigned gen = 0;        ///< generation currently consumed
  bool started = false;    ///< first generation adopted yet?
  std::size_t last_region = 0;
};

}  // namespace

Metrics System::run_sharded(Workload& workload, unsigned shards,
                            exec::Pool* pool) {
  begin_run(workload);

  // A private pool contributes shards - 1 producer threads; the commit
  // thread is the remaining lane (it helps run fills while it waits).
  std::optional<exec::Pool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(shards - 1);
    pool = &*own_pool;
  }

  std::vector<ShardChannel> channels(cfg_.tiles);
  exec::Pool::Group group;
  std::atomic<bool> cancel{false};

  // Producer lane for one generation of one core: fill the slot, publish
  // it, and chain the next generation if its slot is already free. Each
  // core has at most one producer task in flight, so its CoreProgram is
  // only ever touched by one thread at a time.
  std::function<void(unsigned)> produce = [&](unsigned core) {
    ShardChannel& ch = channels[core];
    unsigned gen;
    {
      const std::scoped_lock lock{ch.m};
      gen = ch.pending_gen;
    }
    const unsigned slot = gen & 1;
    const unsigned count =
        cancel.load(std::memory_order_relaxed)
            ? 0
            : static_cast<unsigned>(workload.programs[core]->fill(
                  {ch.buf[slot].data(), kShardBatch}));
    bool chain = false;
    {
      const std::scoped_lock lock{ch.m};
      ch.count[slot] = count;
      ch.ready[slot] = true;
      ch.pending_gen = gen + 1;
      if (count == 0) {
        ch.ended = true;  // fill() stays 0 from here on; stop producing
        ch.paused = true;
      } else if (!ch.ready[(gen + 1) & 1]) {
        chain = true;  // next slot is free: keep this lane hot
      } else {
        ch.paused = true;  // both slots full; commit loop resumes us
      }
    }
    if (chain) pool->submit(group, [&produce, core] { produce(core); });
  };

  for (unsigned core = 0; core < cfg_.tiles; ++core) {
    channels[core].paused = false;
    pool->submit(group, [&produce, core] { produce(core); });
  }

  // The commit loop: identical interleave, adoption and retirement order
  // as run_serial — it merely swaps the inline fill() for adopting the
  // producer-filled slot of the next generation.
  auto commit = [&] {
    CoreHeap order{core_clock_, cfg_.tiles};
    while (!order.empty()) {
      const unsigned core = order.top();
      ShardChannel& ch = channels[core];
      if (!ch.started || ch.head == ch.adopted) {
        // Release the consumed slot and wake its paused producer.
        if (ch.started) {
          bool resume = false;
          {
            const std::scoped_lock lock{ch.m};
            ch.ready[ch.gen & 1] = false;
            if (ch.paused && !ch.ended) {
              ch.paused = false;
              resume = true;
            }
          }
          if (resume) pool->submit(group, [&produce, core] { produce(core); });
          ++ch.gen;
        }
        // Adopt the next generation (helping the pool while it is not
        // ready; a failed producer also ends the wait — see below).
        const unsigned slot = ch.gen & 1;
        pool->help_while(
            [&] {
              if (pool->failed(group)) return false;
              const std::scoped_lock lock{ch.m};
              return !ch.ready[slot];
            },
            &group);
        {
          const std::scoped_lock lock{ch.m};
          if (!ch.ready[slot]) {
            RAA_CHECK_MSG(false, "shard producer failed");  // rethrown below
          }
          ch.adopted = ch.count[slot];
        }
        ch.started = true;
        ch.head = 0;
        if (ch.adopted == 0) {  // core finished
          order.pop_top();
          continue;
        }
        metrics_.accesses += ch.adopted;
      }
      step(core, ch.buf[ch.gen & 1][ch.head++], ch.last_region);
      order.sift_top();
    }
  };

  try {
    commit();
  } catch (...) {
    // Unwind without dangling references: stop the producer chains and
    // drain the pool. A producer failure surfaces with priority (its
    // exception index precedes the commit loop's reaction to it).
    cancel.store(true, std::memory_order_relaxed);
    if (std::exception_ptr err = pool->wait_collect(group))
      std::rethrow_exception(err);
    throw;
  }
  pool->wait(group);

  return finish_run();
}

Metrics System::run(Workload& workload) { return run_serial(workload); }

Metrics System::run(Workload& workload, const RunOptions& options) {
  const unsigned shards =
      std::clamp(options.shards, 1u, std::max(1u, cfg_.tiles));
  if (shards <= 1 && options.pool == nullptr) return run_serial(workload);
  return run_sharded(workload, shards, options.pool);
}

ComparisonResult run_comparison(const SystemConfig& config,
                                const std::function<Workload()>& make_workload,
                                const ComparisonOptions& options) {
  const auto half = [&](HierarchyMode mode) {
    Workload w = make_workload();
    System sys{config, mode, options.store};
    return sys.run(w, RunOptions{options.shards, options.pool});
  };
  ComparisonResult result;
  if (options.pool == nullptr) {
    result.cache_only = half(HierarchyMode::cache_only);
    result.hybrid = half(HierarchyMode::hybrid);
    return result;
  }
  // Concurrent halves, assigned by submission index: index 0 is always
  // cache_only no matter which half finishes first.
  exec::ordered_reduce<Metrics>(
      *options.pool, 2,
      [&](std::size_t i) {
        return half(i == 0 ? HierarchyMode::cache_only
                           : HierarchyMode::hybrid);
      },
      [&](std::size_t i, Metrics&& m) {
        (i == 0 ? result.cache_only : result.hybrid) = std::move(m);
      });
  return result;
}

Metrics run_with_store(const SystemConfig& config, HierarchyMode mode,
                       Workload& workload, LineStore store,
                       const RunOptions& options) {
  System sys{config, mode, store};
  return sys.run(workload, options);
}

}  // namespace raa::mem
