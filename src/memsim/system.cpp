#include "memsim/system.hpp"

#include <algorithm>
#include <queue>

namespace raa::mem {

const char* to_string(RefClass c) noexcept {
  switch (c) {
    case RefClass::strided: return "strided";
    case RefClass::random_noalias: return "random_noalias";
    case RefClass::random_unknown: return "random_unknown";
  }
  return "?";
}

System::System(const SystemConfig& config, HierarchyMode mode)
    : cfg_(config), mode_(mode), noc_(config) {
  RAA_CHECK(cfg_.tiles <= 64);  // directory sharer mask is a 64-bit word
  l1_.reserve(cfg_.tiles);
  l2_.reserve(cfg_.tiles);
  for (unsigned t = 0; t < cfg_.tiles; ++t) {
    l1_.emplace_back(cfg_.l1_bytes, cfg_.l1_assoc, cfg_.line_bytes);
    // Hashed set index: uniform under the chunk-granular bank interleaving.
    l2_.emplace_back(cfg_.l2_bank_bytes, cfg_.l2_assoc, cfg_.line_bytes,
                     /*hashed_index=*/true);
    spm_alloc_.emplace_back(cfg_.spm_bytes, cfg_.dma_chunk_bytes);
  }
  core_clock_.assign(cfg_.tiles, 0.0);
  stream_trackers_.assign(cfg_.tiles, {});
  tracker_rr_.assign(cfg_.tiles, 0);
  prefetched_.assign(cfg_.tiles, {});
}

unsigned System::send(unsigned from, unsigned to, unsigned flits) {
  const unsigned h = noc_.hops(from, to);
  metrics_.noc_flit_hops += noc_.traffic(h, flits);
  metrics_.e_noc += noc_.energy(h, flits);
  return noc_.latency(h, flits);
}

std::uint64_t System::dram_value(std::uint64_t line) const {
  const auto it = dram_.find(line);
  return it == dram_.end() ? 0 : it->second;
}

void System::dram_write(std::uint64_t line, std::uint64_t value) {
  dram_[line] = value;
}

void System::check_load_value(std::uint64_t line, std::uint64_t served) const {
  const auto it = reference_.find(line);
  const std::uint64_t expect = it == reference_.end() ? 0 : it->second;
  RAA_CHECK_MSG(served == expect,
                "coherence violation: load served stale data (line " +
                    std::to_string(line) + ")");
}

void System::record_store(std::uint64_t line, std::uint64_t version) {
  reference_[line] = version;
}

void System::l2_install(std::uint64_t line, std::uint64_t value, bool dirty) {
  const unsigned home = home_of(line);
  Cache& bank = l2_[home];
  if (bank.contains(line)) {
    bank.set_value(line, value);
    if (dirty) bank.set_state(line, LineState::modified);
    return;
  }
  const auto victim =
      bank.insert(line, dirty ? LineState::modified : LineState::shared,
                  value);
  if (victim && victim->dirty) {
    dram_write(victim->line_addr, victim->value);
    ++metrics_.dram_line_writes;
    metrics_.e_dram += cfg_.e_dram_line;
    send(home, noc_.nearest_mc(home), cfg_.flits_per_line());
  }
}

void System::l1_install(unsigned core, std::uint64_t line, LineState st,
                        std::uint64_t value) {
  const auto victim = l1_[core].insert(line, st, value);
  if (!victim) return;
  DirEntry& e = directory_.entry(victim->line_addr);
  if (victim->dirty) {
    // Write the modified victim back to its home L2 bank.
    ++metrics_.writebacks;
    send(core, home_of(victim->line_addr), cfg_.flits_per_line());
    l2_install(victim->line_addr, victim->value, /*dirty=*/true);
    if (e.owner == static_cast<int>(core)) e.owner = -1;
  } else if (victim->state == LineState::exclusive) {
    // Clean-exclusive eviction: the directory thinks we own the line, so a
    // small eviction notice keeps it sound (no data payload).
    send(core, home_of(victim->line_addr), 1);
    if (e.owner == static_cast<int>(core)) e.owner = -1;
  }
  // Shared victims are dropped silently (no directory message), leaving a
  // stale sharer bit behind — as in real sparse directories.
}

unsigned System::invalidate_sharers(std::uint64_t line, int except_core) {
  DirEntry& e = directory_.entry(line);
  const unsigned home = home_of(line);
  unsigned worst = 0;
  for (unsigned t = 0; t < cfg_.tiles; ++t) {
    if (static_cast<int>(t) == except_core) continue;
    if ((e.sharers & Directory::bit(t)) == 0) continue;
    // Invalidation + ack round trip.
    const unsigned rt = send(home, t, 1) + send(t, home, 1);
    worst = std::max(worst, rt);
    const auto dropped = l1_[t].invalidate(line);
    if (dropped) {
      ++metrics_.invalidations;
      RAA_CHECK_MSG(!dropped->dirty,
                    "protocol bug: invalidating a Modified sharer");
    }
  }
  e.sharers = except_core >= 0 ? Directory::bit(
                                     static_cast<unsigned>(except_core))
                               : 0;
  return worst;
}

unsigned System::fetch_line(unsigned core, std::uint64_t line,
                            std::uint64_t& value, bool for_store) {
  const unsigned home = home_of(line);
  unsigned lat = send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  DirEntry& e = directory_.entry(line);
  RAA_CHECK(e.owner != static_cast<int>(core));

  if (e.owner >= 0) {
    // Another L1 holds the line Modified or Exclusive: forward.
    const auto owner = static_cast<unsigned>(e.owner);
    const LineState owner_state = l1_[owner].state(line);
    RAA_CHECK(owner_state == LineState::modified ||
              owner_state == LineState::exclusive);
    const bool was_dirty = owner_state == LineState::modified;
    value = l1_[owner].value(line);
    lat += send(home, owner, 1) + cfg_.lat_l1_hit +
           send(owner, core, cfg_.flits_per_line());
    metrics_.e_l1 += cfg_.e_l1_hit;
    if (for_store) {
      l1_[owner].invalidate(line);
      ++metrics_.invalidations;
      e.owner = static_cast<int>(core);
      e.sharers = Directory::bit(core);
    } else {
      // Owner downgrades to Shared; dirty data is reflected to the home.
      l1_[owner].set_state(line, LineState::shared);
      if (was_dirty) {
        send(owner, home, cfg_.flits_per_line());
        l2_install(line, value, /*dirty=*/true);
      }
      e.owner = -1;
      e.sharers |= Directory::bit(owner) | Directory::bit(core);
    }
    return lat;
  }

  if (l2_[home].access(line) != LineState::invalid) {
    // L2 hit at home.
    ++metrics_.l2_hits;
    metrics_.e_l2 += cfg_.e_l2;
    value = l2_[home].value(line);
    lat += cfg_.lat_l2_hit + send(home, core, cfg_.flits_per_line());
  } else {
    // Fetch from DRAM through the nearest memory controller.
    ++metrics_.l2_misses;
    metrics_.e_l2 += cfg_.e_l2;  // tag probe
    const unsigned mc = noc_.nearest_mc(home);
    value = dram_value(line);
    ++metrics_.dram_line_reads;
    metrics_.e_dram += cfg_.e_dram_line;
    lat += send(home, mc, 1) + cfg_.lat_dram +
           send(mc, home, cfg_.flits_per_line()) +
           send(home, core, cfg_.flits_per_line());
    l2_install(line, value, /*dirty=*/false);
  }

  if (for_store) {
    lat += invalidate_sharers(line, static_cast<int>(core));
    e.owner = static_cast<int>(core);
    e.sharers = Directory::bit(core);
  } else if (e.sharers == 0) {
    // No other copy anywhere: grant clean-exclusive (MESI E).
    e.owner = static_cast<int>(core);
    e.sharers = Directory::bit(core);
    exclusive_grant_ = true;
  } else {
    e.sharers |= Directory::bit(core);
  }
  return lat;
}

unsigned System::upgrade_to_modified(unsigned core, std::uint64_t line) {
  const unsigned home = home_of(line);
  unsigned lat = send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  lat += invalidate_sharers(line, static_cast<int>(core));
  lat += send(home, core, 1);  // upgrade ack
  DirEntry& e = directory_.entry(line);
  e.owner = static_cast<int>(core);
  e.sharers = Directory::bit(core);
  return lat;
}

unsigned System::cache_access(unsigned core, std::uint64_t line, bool store) {
  unsigned lat = cfg_.lat_l1_hit;
  const LineState st = l1_[core].access(line);
  if (st != LineState::invalid) {
    ++metrics_.l1_hits;
    metrics_.e_l1 += cfg_.e_l1_hit;
    if (store) {
      if (st == LineState::shared) {
        lat += upgrade_to_modified(core, line);
        l1_[core].set_state(line, LineState::modified);
      } else if (st == LineState::exclusive) {
        // MESI silent upgrade.
        l1_[core].set_state(line, LineState::modified);
      }
      const std::uint64_t v = fresh_version();
      l1_[core].set_value(line, v);
      record_store(line, v);
      if (prefetched_[core].erase(line) > 0) {
        prefetch(core, line + cfg_.line_bytes);
      }
    } else {
      check_load_value(line, l1_[core].value(line));
      if (prefetched_[core].erase(line) > 0) {
        // First demand hit on a prefetched line: keep the stream rolling.
        prefetch(core, line + cfg_.line_bytes);
      }
    }
    return lat;
  }

  ++metrics_.l1_misses;
  metrics_.e_l1 += cfg_.e_l1_probe;
  std::uint64_t value = 0;
  exclusive_grant_ = false;
  lat += fetch_line(core, line, value, store);
  if (store) {
    const std::uint64_t v = fresh_version();
    l1_install(core, line, LineState::modified, v);
    record_store(line, v);
  } else {
    l1_install(core, line,
               exclusive_grant_ ? LineState::exclusive : LineState::shared,
               value);
    check_load_value(line, value);
  }

  // Stream detection: a miss that continues a tracked sequential stream
  // triggers a next-line prefetch (tagged prefetcher).
  auto& trackers = stream_trackers_[core];
  const std::uint64_t next = line + cfg_.line_bytes;
  bool matched = false;
  for (std::uint64_t& t : trackers) {
    if (t == line) {
      t = next;
      matched = true;
      break;
    }
  }
  if (matched) {
    prefetch(core, next);
  } else {
    trackers[tracker_rr_[core]] = next;
    tracker_rr_[core] = (tracker_rr_[core] + 1) % trackers.size();
  }
  return lat;
}

void System::prefetch(unsigned core, std::uint64_t line) {
  if (l1_[core].contains(line)) return;
  if (mode_ == HierarchyMode::hybrid &&
      spm_directory_.lookup(line) != nullptr)
    return;  // mapped data is served by the SPM side
  std::uint64_t value = 0;
  exclusive_grant_ = false;
  (void)fetch_line(core, line, value, /*for_store=*/false);  // latency hidden
  l1_install(core, line,
             exclusive_grant_ ? LineState::exclusive : LineState::shared,
             value);
  prefetched_[core].insert(line);
  ++metrics_.prefetch_fills;
}

double System::dma_map_chunk(unsigned core, const Region& region,
                             std::uint64_t chunk_index,
                             std::uint32_t chunk_tag, bool fetch) {
  const std::uint64_t chunk_base =
      region.base + chunk_index * cfg_.dma_chunk_bytes;
  const std::uint64_t chunk_end =
      std::min(region.base + region.bytes, chunk_base + cfg_.dma_chunk_bytes);
  const unsigned mc = noc_.nearest_mc(core);
  const unsigned home = home_of(chunk_base);  // one home per chunk
  unsigned lines = 0;
  unsigned dram_lines = 0;
  unsigned l2_lines = 0;

  // One SPM-directory transaction covers the chunk.
  metrics_.e_dir += cfg_.e_dir;
  send(core, home, 1);

  for (std::uint64_t line = chunk_base; line < chunk_end;
       line += cfg_.line_bytes) {
    ++lines;
    const SpmMapping* prev = spm_directory_.lookup(line);
    RAA_CHECK_MSG(prev == nullptr,
                  "SPM map conflict: strided chunks of different cores "
                  "overlap (kernel classification bug)");
    DirEntry& e = directory_.entry(line);
    std::uint64_t value = 0;
    bool from_cache_side = false;

    // DMA fills are L2-backed: take the line from the home bank when
    // present. The L2 copy is *kept* (it cannot be read while the line is
    // mapped — the filter redirects guarded accesses, and no-alias
    // references never touch mapped data); a dirty unmap overwrites it.
    if (fetch && l2_[home].access(line) != LineState::invalid) {
      value = l2_[home].value(line);
      from_cache_side = true;
      ++l2_lines;
      metrics_.e_l2 += cfg_.e_l2;
    }
    if (e.owner >= 0) {
      // A Modified/Exclusive L1 copy supersedes everything; collect it,
      // reflect it to the home bank, and invalidate the owner.
      const auto owner = static_cast<unsigned>(e.owner);
      value = l1_[owner].value(line);
      from_cache_side = true;
      l1_[owner].invalidate(line);
      ++metrics_.invalidations;
      send(home, owner, 1);
      if (fetch) send(owner, core, cfg_.flits_per_line());
      l2_install(line, value, /*dirty=*/true);
      e.owner = -1;
      e.sharers = 0;
    } else if (e.sharers != 0) {
      // Shared L1 copies would go stale behind SPM writes: invalidate now.
      invalidate_sharers(line, -1);
    }
    if (fetch) {
      if (!from_cache_side) {
        value = dram_value(line);
        ++metrics_.dram_line_reads;
        ++dram_lines;
        metrics_.e_dram += cfg_.e_dram_line;
        // The fill allocates in the home L2 bank on the way (L2-backed
        // DMA), so later re-maps of the same data stay on chip.
        l2_install(line, value, /*dirty=*/false);
        metrics_.e_l2 += cfg_.e_l2;
      }
      spm_values_[line] = value;
      metrics_.e_spm += cfg_.e_spm;  // SPM fill write
    }
    // Write-allocated chunks: lines become valid in the SPM as they are
    // written (spm_values_ presence is the per-line validity mask).
    spm_directory_.map_line(line, core, chunk_tag);
  }

  // Bulk data legs: DMA moves whole bursts (one header per burst), which is
  // where the protocol's NoC savings over per-line cache messages come from.
  const unsigned payload = cfg_.line_bytes / 8;
  if (dram_lines > 0) {
    send(mc, home, dram_lines * payload + 1);
    send(home, core, dram_lines * payload + 1);
  }
  if (l2_lines > 0) send(home, core, l2_lines * payload + 1);

  ++metrics_.dma_transfers;
  if (!fetch) {
    // Write-allocate: only the directory transaction is on the path.
    return noc_.latency(noc_.hops(core, home), 1) * 2.0 + cfg_.lat_dir;
  }
  // Pipelined DMA latency: request + access latency of the slowest source
  // + per-line cadence + data head flight.
  const unsigned src_lat = dram_lines > 0 ? cfg_.lat_dram : cfg_.lat_l2_hit;
  const double lat =
      noc_.latency(noc_.hops(core, mc), 1) + src_lat +
      static_cast<double>(lines) * cfg_.dram_cycles_per_line +
      noc_.latency(noc_.hops(mc, core), cfg_.flits_per_line());
  return lat;
}

void System::dma_unmap_chunk(unsigned core, const Region& region,
                             SoftwareCacheState& st) {
  if (st.current_chunk == SoftwareCacheState::kNoChunk) return;
  const std::uint64_t chunk_base =
      region.base + st.current_chunk * cfg_.dma_chunk_bytes;
  const std::uint64_t chunk_end =
      std::min(region.base + region.bytes, chunk_base + cfg_.dma_chunk_bytes);
  const bool dirty = st.dirty || dirty_tags_.contains(st.chunk_tag);
  const unsigned home = home_of(chunk_base);

  unsigned dirty_lines = 0;
  for (std::uint64_t line = chunk_base; line < chunk_end;
       line += cfg_.line_bytes) {
    const auto vit = spm_values_.find(line);
    if (dirty && vit != spm_values_.end()) {
      // Write back the valid lines to the home L2 bank (L2-backed DMA);
      // DRAM is updated lazily on L2 eviction like any other dirty line.
      // Write-allocated chunks write back only the lines actually written.
      metrics_.e_spm += cfg_.e_spm;  // SPM read for the writeback
      l2_install(line, vit->second, /*dirty=*/true);
      ++dirty_lines;
    }
    if (vit != spm_values_.end()) spm_values_.erase(vit);
    spm_directory_.unmap_line(line);
  }
  if (dirty_lines > 0)
    send(core, home, dirty_lines * (cfg_.line_bytes / 8) + 1);  // one burst
  // SPM-directory update for the chunk.
  metrics_.e_dir += cfg_.e_dir;
  send(core, home, 1);
  if (dirty) ++metrics_.writebacks;
  dirty_tags_.erase(st.chunk_tag);
  st.current_chunk = SoftwareCacheState::kNoChunk;
  st.dirty = false;
}

unsigned System::spm_access(unsigned core, std::size_t region_idx,
                            const Region& region, std::uint64_t addr,
                            bool store) {
  const StreamKey key{core, region_idx};
  auto [it, inserted] = streams_.try_emplace(key);
  SoftwareCacheState& st = it->second;
  if (inserted) {
    spm_alloc_[core].reserve_stream();
    st.prefetch_done_cycle = -1.0;  // first touch: full DMA latency
  }

  const std::uint64_t chunk = (addr - region.base) / cfg_.dma_chunk_bytes;
  unsigned lat = 0;
  if (chunk != st.current_chunk) {
    dma_unmap_chunk(core, region, st);
    const double now = core_clock_[core];
    // A store-triggered switch marks an output chunk: write-allocate, no
    // DMA-in (the tiling software cache knows out() tiles are overwritten).
    const double dma_lat = dma_map_chunk(core, region, chunk,
                                         ++chunk_tag_counter_, !store);
    double stall = 0.0;
    if (st.prefetch_done_cycle < 0.0) {
      stall = dma_lat;  // nothing prefetched yet
    } else {
      stall = std::max(0.0, st.prefetch_done_cycle - now);
    }
    // Double buffering: the DMA for the *next* chunk is kicked off now and
    // overlaps with the compute on this chunk.
    st.prefetch_done_cycle = now + stall + dma_lat;
    st.current_chunk = chunk;
    st.chunk_tag = chunk_tag_counter_;
    st.dirty = false;
    lat += static_cast<unsigned>(stall);
  }

  const std::uint64_t line = line_of(addr);
  lat += cfg_.lat_spm_hit;
  metrics_.e_spm += cfg_.e_spm;
  ++metrics_.spm_hits;
  if (store) {
    const std::uint64_t v = fresh_version();
    spm_values_[line] = v;
    record_store(line, v);
    st.dirty = true;
  } else {
    const auto vit = spm_values_.find(line);
    RAA_CHECK(vit != spm_values_.end());
    check_load_value(line, vit->second);
  }
  return lat;
}

unsigned System::guarded_access(unsigned core, std::uint64_t addr,
                                bool store) {
  const std::uint64_t line = line_of(addr);
  unsigned lat = cfg_.lat_filter;
  metrics_.e_dir += cfg_.e_filter;
  ++metrics_.guarded_lookups;

  const SpmMapping* m = spm_directory_.lookup(line);
  if (m == nullptr) return lat + cache_access(core, line, store);

  ++metrics_.guarded_to_spm;
  if (store) {
    if (m->tile != core) {
      ++metrics_.remote_spm_accesses;
      lat += send(core, m->tile, 1) + send(m->tile, core, 1);
    }
    lat += cfg_.lat_spm_hit;
    metrics_.e_spm += cfg_.e_spm;
    ++metrics_.spm_hits;
    const std::uint64_t v = fresh_version();
    spm_values_[line] = v;
    record_store(line, v);
    dirty_tags_.insert(m->chunk_tag);
    return lat;
  }

  const auto vit = spm_values_.find(line);
  if (vit != spm_values_.end()) {
    if (m->tile != core) {
      ++metrics_.remote_spm_accesses;
      lat += send(core, m->tile, 1) +
             send(m->tile, core, cfg_.flits_per_line());
    }
    lat += cfg_.lat_spm_hit;
    metrics_.e_spm += cfg_.e_spm;
    ++metrics_.spm_hits;
    check_load_value(line, vit->second);
    return lat;
  }

  // Mapped write-allocated chunk, line not yet written: the valid copy is
  // still below (home L2 / DRAM). Served uncached so no stale L1 copy can
  // form behind the upcoming SPM write.
  const unsigned home = home_of(line);
  lat += send(core, home, 1) + cfg_.lat_dir;
  metrics_.e_dir += cfg_.e_dir;
  std::uint64_t value = 0;
  if (l2_[home].access(line) != LineState::invalid) {
    ++metrics_.l2_hits;
    metrics_.e_l2 += cfg_.e_l2;
    value = l2_[home].value(line);
    lat += cfg_.lat_l2_hit + send(home, core, cfg_.flits_per_line());
  } else {
    const unsigned mc = noc_.nearest_mc(home);
    value = dram_value(line);
    ++metrics_.dram_line_reads;
    metrics_.e_dram += cfg_.e_dram_line;
    lat += send(home, mc, 1) + cfg_.lat_dram +
           send(mc, home, cfg_.flits_per_line()) +
           send(home, core, cfg_.flits_per_line());
    l2_install(line, value, /*dirty=*/false);
  }
  check_load_value(line, value);
  return lat;
}

void System::flush_all_software_caches() {
  for (auto& [key, st] : streams_) {
    RAA_CHECK(workload_ != nullptr && key.region < workload_->regions.size());
    dma_unmap_chunk(key.core, workload_->regions[key.region], st);
  }
}

Metrics System::run(Workload& workload) {
  RAA_CHECK_MSG(workload.programs.size() == cfg_.tiles,
                "workload must provide one program per tile");
  workload_ = &workload;
  metrics_ = Metrics{};
  core_clock_.assign(cfg_.tiles, 0.0);
  streams_.clear();

  // Cache region lookup per core: streams are strongly region-local.
  std::vector<std::size_t> last_region(cfg_.tiles, 0);

  // Advance the core with the smallest local clock (deterministic
  // interleaving; ties resolved by core id).
  using Slot = std::pair<double, unsigned>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> order;
  for (unsigned c = 0; c < cfg_.tiles; ++c) order.emplace(0.0, c);

  Access acc;
  while (!order.empty()) {
    const auto [clock, core] = order.top();
    order.pop();
    if (!workload.programs[core]->next(acc)) continue;  // core finished
    ++metrics_.accesses;
    core_clock_[core] = clock + acc.gap_cycles;

    unsigned lat = 0;
    const std::uint64_t line = line_of(acc.addr);
    if (mode_ == HierarchyMode::hybrid) {
      switch (acc.ref) {
        case RefClass::strided: {
          // Resolve the region (streams revisit the same region, so the
          // memoised index almost always hits).
          std::size_t r = last_region[core];
          if (r >= workload.regions.size() ||
              !workload.regions[r].contains(acc.addr)) {
            r = 0;
            while (r < workload.regions.size() &&
                   !workload.regions[r].contains(acc.addr))
              ++r;
            RAA_CHECK_MSG(r < workload.regions.size(),
                          "strided access outside any declared region");
            last_region[core] = r;
          }
          lat = spm_access(core, r, workload.regions[r], acc.addr,
                           acc.is_store);
          break;
        }
        case RefClass::random_noalias:
          // Compiler contract: no-alias references never touch SPM-mapped
          // data. A violation would be a kernel classification bug.
          RAA_CHECK(spm_directory_.lookup(line) == nullptr);
          lat = cache_access(core, line, acc.is_store);
          break;
        case RefClass::random_unknown:
          lat = guarded_access(core, acc.addr, acc.is_store);
          break;
      }
    } else {
      lat = cache_access(core, line, acc.is_store);
    }

    core_clock_[core] += lat;
    order.emplace(core_clock_[core], core);
  }

  flush_all_software_caches();

  metrics_.cycles = *std::max_element(core_clock_.begin(), core_clock_.end());
  metrics_.e_static = metrics_.cycles * static_cast<double>(cfg_.tiles) *
                      cfg_.e_static_per_tile_cycle;
  workload_ = nullptr;
  return metrics_;
}

}  // namespace raa::mem
