#pragma once
/// \file access.hpp
/// The memory-access stream interface between workloads (kernels/) and the
/// hierarchy simulator (system.hpp).
///
/// §2 of the paper: the compiler classifies every memory reference as
///   * strided            — mapped to the SPMs through tiling software
///                          caches (DMA-managed chunks);
///   * random, no-alias   — served by the cache hierarchy;
///   * random, unknown    — a *guarded* access: the hardware decides at
///                          run time which memory holds the valid copy.
/// The classification is an attribute of the reference (i.e. of the access
/// stream), mirroring what the compiler derives statically.

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace raa::mem {

/// Compiler reference class (see file comment).
enum class RefClass : std::uint8_t {
  strided,
  random_noalias,
  random_unknown,
};

const char* to_string(RefClass c) noexcept;

/// One memory access issued by a core.
struct Access {
  std::uint64_t addr = 0;        ///< byte address
  bool is_store = false;
  RefClass ref = RefClass::random_noalias;
  /// Compute cycles the core spends *before* this access (models the
  /// non-memory work between two references).
  std::uint32_t gap_cycles = 0;
};

/// A per-core access-stream generator. Streams are pulled lazily so multi-
/// million-access workloads never materialise a trace. The simulator pulls
/// through `fill()` in batches, amortising the virtual dispatch over up to
/// a buffer's worth of accesses; `next()` remains as the single-access
/// shim for hand-rolled programs and tests.
class CoreProgram {
 public:
  virtual ~CoreProgram() = default;
  /// Produce the next access; false at end of stream.
  virtual bool next(Access& out) = 0;
  /// Produce up to out.size() accesses (in stream order); returns how many
  /// were written. 0 means end of stream — and must stay 0 thereafter. The
  /// default loops next(); generators override it to batch.
  virtual std::size_t fill(std::span<Access> out) {
    std::size_t n = 0;
    while (n < out.size() && next(out[n])) ++n;
    return n;
  }
};

/// A declared data region with its compiler classification. The hybrid
/// system maps `strided` regions to the SPM tiling software-cache; the
/// guarded-access filter answers membership queries against the currently
/// mapped chunks.
struct Region {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  RefClass ref = RefClass::strided;

  bool contains(std::uint64_t addr) const noexcept {
    return addr >= base && addr < base + bytes;
  }
};

/// A complete multi-core workload: one program per core plus the region
/// table (the "compiler output"). Regions live in a deque so that
/// references handed out during construction stay valid as more regions
/// are added.
struct Workload {
  std::string name;
  std::deque<Region> regions;
  std::vector<std::unique_ptr<CoreProgram>> programs;  ///< one per core
};

}  // namespace raa::mem
