#pragma once
/// \file cache.hpp
/// Set-associative write-back cache with true-LRU replacement. Used for the
/// private L1-D caches and the shared L2 banks. The cache tracks per-line
/// coherence state (MSI for L1s; L2 lines are either present or not, with
/// sharer bookkeeping held by the directory) and a functional value so the
/// protocol tests can assert that no access ever observes stale data.
///
/// Storage is struct-of-arrays: the tag words scanned by every probe live
/// in their own densely packed array (one host cache line covers an 8-way
/// set), while LRU stamps, values and states are touched only on hits and
/// mutations. With multi-megabyte simulated L2 banks the tag scan is the
/// memory-bound part of the simulator's hot path, and the split cuts the
/// host lines touched per miss probe by 4x.
///
/// Hot paths use the way-handle API (`probe` / `probe_touch` returning a
/// way index, `kMiss` on miss) so one associative scan serves all the
/// state/value reads and writes of an access. The scalar convenience
/// methods remain for tests and cold paths.

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace raa::mem {

/// L1 MESI state. `exclusive` is clean-exclusive: granted on a load when no
/// other cache holds the line, so a later store upgrades silently.
enum class LineState : std::uint8_t { invalid, shared, exclusive, modified };

/// Lookup/insert result describing a victim that had to be evicted.
struct Victim {
  std::uint64_t line_addr = 0;
  bool dirty = false;  ///< was Modified (needs writeback)
  LineState state = LineState::invalid;
  std::uint64_t value = 0;
};

/// A set-associative cache keyed by line address (addresses are already
/// line-aligned when they reach the cache).
class Cache {
 public:
  /// probe/probe_touch miss marker.
  static constexpr std::size_t kMiss = ~std::size_t{0};

  /// `hashed_index` selects the set by hashing the line index instead of a
  /// plain modulo — what LLC banks do to stay uniform under arbitrary
  /// address interleavings (chunk-granular banking would otherwise alias
  /// all of a bank's chunks into a small set window).
  Cache(unsigned capacity_bytes, unsigned assoc, unsigned line_bytes,
        bool hashed_index = false)
      : assoc_(assoc), line_bytes_(line_bytes), hashed_index_(hashed_index) {
    RAA_CHECK(assoc > 0 && line_bytes > 0);
    RAA_CHECK(capacity_bytes % (assoc * line_bytes) == 0);
    sets_ = capacity_bytes / (assoc * line_bytes);
    line_pow2_ = std::has_single_bit(line_bytes);
    if (line_pow2_)
      line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
    sets_pow2_ = std::has_single_bit(sets_);
    const std::size_t n = static_cast<std::size_t>(sets_) * assoc_;
    tags_.assign(n, kNoLine);
    values_.assign(n, 0);
    lru_.assign(n, 0);
    states_.assign(n, LineState::invalid);
  }

  unsigned sets() const noexcept { return sets_; }
  unsigned assoc() const noexcept { return assoc_; }

  /// Way-handle lookup: the resident way's index, or kMiss. No LRU touch.
  std::size_t probe(std::uint64_t line_addr) const {
    const std::size_t base = set_base(line_addr);
    for (unsigned i = 0; i < assoc_; ++i)
      if (tags_[base + i] == line_addr) return base + i;
    return kMiss;
  }

  /// Way-handle lookup that touches LRU on hit (a demand access).
  std::size_t probe_touch(std::uint64_t line_addr) {
    const std::size_t w = probe(line_addr);
    if (w != kMiss) lru_[w] = ++clock_;
    return w;
  }

  // Way-handle accessors. `way` must come from a probe hit on this cache;
  // handles stay valid until the way is evicted or invalidated.
  LineState state_of(std::size_t way) const { return states_[way]; }
  void set_state_of(std::size_t way, LineState s) {
    RAA_CHECK(s != LineState::invalid);  // use invalidate()
    states_[way] = s;
  }
  std::uint64_t value_of(std::size_t way) const { return values_[way]; }
  void set_value_of(std::size_t way, std::uint64_t value) {
    values_[way] = value;
  }
  /// Drop a resident way (its victim record is the caller's to assemble).
  void invalidate_way(std::size_t way) {
    tags_[way] = kNoLine;
    states_[way] = LineState::invalid;
  }

  /// True when the line is present (state != invalid).
  bool contains(std::uint64_t line_addr) const {
    return probe(line_addr) != kMiss;
  }

  LineState state(std::uint64_t line_addr) const {
    const std::size_t w = probe(line_addr);
    return w == kMiss ? LineState::invalid : states_[w];
  }

  /// Probe and, on hit, touch LRU. Returns the state (invalid on miss).
  LineState access(std::uint64_t line_addr) {
    const std::size_t w = probe_touch(line_addr);
    return w == kMiss ? LineState::invalid : states_[w];
  }

  std::uint64_t value(std::uint64_t line_addr) const {
    const std::size_t w = probe(line_addr);
    RAA_CHECK(w != kMiss);
    return values_[w];
  }

  void set_value(std::uint64_t line_addr, std::uint64_t value) {
    const std::size_t w = probe(line_addr);
    RAA_CHECK(w != kMiss);
    values_[w] = value;
  }

  void set_state(std::uint64_t line_addr, LineState s) {
    const std::size_t w = probe(line_addr);
    RAA_CHECK(w != kMiss);
    set_state_of(w, s);
  }

  /// Insert a line (must not be present); returns the evicted victim, if
  /// any. The inserted line becomes MRU. The duplicate check rides the
  /// victim scan, so insertion costs a single pass over the set's tags.
  std::optional<Victim> insert(std::uint64_t line_addr, LineState s,
                               std::uint64_t value) {
    RAA_CHECK(s != LineState::invalid);
    const std::size_t base = set_base(line_addr);
    std::size_t slot = kMiss;
    std::size_t lru = kMiss;
    for (unsigned i = 0; i < assoc_; ++i) {
      const std::size_t w = base + i;
      if (tags_[w] == kNoLine) {
        if (slot == kMiss) slot = w;
        continue;
      }
      RAA_CHECK(tags_[w] != line_addr);  // must not already be present
      if (lru == kMiss || lru_[w] < lru_[lru]) lru = w;
    }
    std::optional<Victim> victim;
    if (slot == kMiss) {
      RAA_CHECK(lru != kMiss);
      victim = Victim{tags_[lru], states_[lru] == LineState::modified,
                      states_[lru], values_[lru]};
      slot = lru;
    }
    tags_[slot] = line_addr;
    states_[slot] = s;
    values_[slot] = value;
    lru_[slot] = ++clock_;
    return victim;
  }

  /// Drop a line if present; returns its victim record (for writeback).
  std::optional<Victim> invalidate(std::uint64_t line_addr) {
    const std::size_t w = probe(line_addr);
    if (w == kMiss) return std::nullopt;
    const Victim v{tags_[w], states_[w] == LineState::modified, states_[w],
                   values_[w]};
    invalidate_way(w);
    return v;
  }

  /// Number of resident lines (diagnostics).
  std::size_t occupancy() const {
    std::size_t n = 0;
    for (const std::uint64_t t : tags_)
      if (t != kNoLine) ++n;
    return n;
  }

 private:
  /// Tag sentinel for an empty way. Line addresses are line-aligned, so
  /// all-ones can never collide with a real line.
  static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};

  std::size_t set_base(std::uint64_t line_addr) const {
    std::uint64_t index =
        line_pow2_ ? line_addr >> line_shift_ : line_addr / line_bytes_;
    if (hashed_index_) {
      std::uint64_t h = index;  // SplitMix64 finalizer as index hash
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      index = h ^ (h >> 31);
    }
    const std::uint64_t set =
        sets_pow2_ ? index & (sets_ - 1) : index % sets_;
    return static_cast<std::size_t>(set) * assoc_;
  }

  unsigned sets_ = 0;
  unsigned assoc_ = 0;
  unsigned line_bytes_ = 0;
  unsigned line_shift_ = 0;
  bool line_pow2_ = false;
  bool sets_pow2_ = false;
  bool hashed_index_ = false;
  std::uint64_t clock_ = 0;
  // Struct-of-arrays (see file comment): tags are the probe-scan target,
  // the rest is touched on hits/mutations only.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> lru_;
  std::vector<LineState> states_;
};

}  // namespace raa::mem
