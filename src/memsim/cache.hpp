#pragma once
/// \file cache.hpp
/// Set-associative write-back cache with true-LRU replacement. Used for the
/// private L1-D caches and the shared L2 banks. The cache tracks per-line
/// coherence state (MSI for L1s; L2 lines are either present or not, with
/// sharer bookkeeping held by the directory) and a functional value so the
/// protocol tests can assert that no access ever observes stale data.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace raa::mem {

/// L1 MESI state. `exclusive` is clean-exclusive: granted on a load when no
/// other cache holds the line, so a later store upgrades silently.
enum class LineState : std::uint8_t { invalid, shared, exclusive, modified };

/// Lookup/insert result describing a victim that had to be evicted.
struct Victim {
  std::uint64_t line_addr = 0;
  bool dirty = false;  ///< was Modified (needs writeback)
  LineState state = LineState::invalid;
  std::uint64_t value = 0;
};

/// A set-associative cache keyed by line address (addresses are already
/// line-aligned when they reach the cache).
class Cache {
 public:
  /// `hashed_index` selects the set by hashing the line index instead of a
  /// plain modulo — what LLC banks do to stay uniform under arbitrary
  /// address interleavings (chunk-granular banking would otherwise alias
  /// all of a bank's chunks into a small set window).
  Cache(unsigned capacity_bytes, unsigned assoc, unsigned line_bytes,
        bool hashed_index = false)
      : assoc_(assoc), line_bytes_(line_bytes), hashed_index_(hashed_index) {
    RAA_CHECK(assoc > 0 && line_bytes > 0);
    RAA_CHECK(capacity_bytes % (assoc * line_bytes) == 0);
    sets_ = capacity_bytes / (assoc * line_bytes);
    ways_.assign(static_cast<std::size_t>(sets_) * assoc_, Way{});
  }

  unsigned sets() const noexcept { return sets_; }
  unsigned assoc() const noexcept { return assoc_; }

  /// True when the line is present (state != invalid).
  bool contains(std::uint64_t line_addr) const {
    return find(line_addr) != nullptr;
  }

  LineState state(std::uint64_t line_addr) const {
    const Way* w = find(line_addr);
    return w ? w->state : LineState::invalid;
  }

  /// Probe and, on hit, touch LRU. Returns the state (invalid on miss).
  LineState access(std::uint64_t line_addr) {
    Way* w = find_mut(line_addr);
    if (w == nullptr) return LineState::invalid;
    touch(w);
    return w->state;
  }

  std::uint64_t value(std::uint64_t line_addr) const {
    const Way* w = find(line_addr);
    RAA_CHECK(w != nullptr);
    return w->value;
  }

  void set_value(std::uint64_t line_addr, std::uint64_t value) {
    Way* w = find_mut(line_addr);
    RAA_CHECK(w != nullptr);
    w->value = value;
  }

  void set_state(std::uint64_t line_addr, LineState s) {
    Way* w = find_mut(line_addr);
    RAA_CHECK(w != nullptr);
    RAA_CHECK(s != LineState::invalid);  // use invalidate()
    w->state = s;
  }

  /// Insert a line (must not be present); returns the evicted victim, if
  /// any. The inserted line becomes MRU.
  std::optional<Victim> insert(std::uint64_t line_addr, LineState s,
                               std::uint64_t value) {
    RAA_CHECK(s != LineState::invalid);
    RAA_CHECK(find(line_addr) == nullptr);
    Way* slot = nullptr;
    Way* lru = nullptr;
    const std::size_t base = set_base(line_addr);
    for (unsigned i = 0; i < assoc_; ++i) {
      Way& w = ways_[base + i];
      if (w.state == LineState::invalid) {
        slot = &w;
        break;
      }
      if (lru == nullptr || w.lru < lru->lru) lru = &w;
    }
    std::optional<Victim> victim;
    if (slot == nullptr) {
      RAA_CHECK(lru != nullptr);
      victim = Victim{lru->line_addr, lru->state == LineState::modified,
                      lru->state, lru->value};
      slot = lru;
    }
    slot->line_addr = line_addr;
    slot->state = s;
    slot->value = value;
    touch(slot);
    return victim;
  }

  /// Drop a line if present; returns its victim record (for writeback).
  std::optional<Victim> invalidate(std::uint64_t line_addr) {
    Way* w = find_mut(line_addr);
    if (w == nullptr) return std::nullopt;
    const Victim v{w->line_addr, w->state == LineState::modified, w->state,
                   w->value};
    w->state = LineState::invalid;
    return v;
  }

  /// Number of resident lines (diagnostics).
  std::size_t occupancy() const {
    std::size_t n = 0;
    for (const Way& w : ways_)
      if (w.state != LineState::invalid) ++n;
    return n;
  }

 private:
  struct Way {
    std::uint64_t line_addr = 0;
    std::uint64_t value = 0;
    std::uint64_t lru = 0;
    LineState state = LineState::invalid;
  };

  std::size_t set_base(std::uint64_t line_addr) const {
    std::uint64_t index = line_addr / line_bytes_;
    if (hashed_index_) {
      std::uint64_t h = index;  // SplitMix64 finalizer as index hash
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      index = h ^ (h >> 31);
    }
    return static_cast<std::size_t>(index % sets_) * assoc_;
  }

  const Way* find(std::uint64_t line_addr) const {
    const std::size_t base = set_base(line_addr);
    for (unsigned i = 0; i < assoc_; ++i) {
      const Way& w = ways_[base + i];
      if (w.state != LineState::invalid && w.line_addr == line_addr) return &w;
    }
    return nullptr;
  }
  Way* find_mut(std::uint64_t line_addr) {
    return const_cast<Way*>(find(line_addr));
  }

  void touch(Way* w) { w->lru = ++clock_; }

  unsigned sets_ = 0;
  unsigned assoc_ = 0;
  unsigned line_bytes_ = 0;
  bool hashed_index_ = false;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_;
};

}  // namespace raa::mem
