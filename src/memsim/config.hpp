#pragma once
/// \file config.hpp
/// Configuration and cost constants of the tiled-manycore memory-hierarchy
/// simulator (§2, Figure 1).
///
/// The modelled chip is the one the paper's hybrid-hierarchy study targets:
/// 64 tiles on an 8x8 mesh, each tile with a core, a private L1-D and (in
/// the hybrid configuration) a scratchpad slice; a distributed shared L2
/// (one bank per tile, line-interleaved, home-node directory embedded);
/// DRAM behind memory controllers at the mesh corners.
///
/// Latency constants are in core cycles and energy constants in picojoules;
/// the orders of magnitude follow the usual CACTI/McPAT-class numbers for a
/// ~22 nm manycore (SPM access cheaper than a tag+data associative cache
/// lookup, DRAM two orders above SRAM, NoC energy per flit-hop). Only
/// *relative* magnitudes matter for the reproduced speedups.

#include <cstdint>

namespace raa::mem {

/// Which DRAM-timing model serves line fills and writebacks (see
/// memsim/backend.hpp for the MemBackend interface and both models).
enum class MemBackendKind : std::uint8_t {
  flat,    ///< fixed-latency DRAM — the original model, baseline-identical
  banked,  ///< per-channel/bank FSMs: open-row policy, FR-FCFS, refresh
};

/// Parameters of the flat (fixed-latency) model. These are the former
/// loose SystemConfig fields `lat_dram`/`dram_cycles_per_line`/
/// `e_dram_line`, now owned by FlatBackend; the scenario parser keeps the
/// old config-level keys as aliases into this struct.
struct FlatBackendParams {
  unsigned lat_dram = 120;            ///< cycles per line access
  unsigned dram_cycles_per_line = 4;  ///< bandwidth term for DMA bursts
  double e_dram_line = 1200.0;        ///< pJ per line read/write

  friend bool operator==(const FlatBackendParams&,
                         const FlatBackendParams&) = default;
};

/// How a row block is mapped to a bank within its channel.
enum class BankMapping : std::uint8_t {
  block,     ///< bank = (block / channels) % banks — plain interleave
  xor_hash,  ///< bank index XOR-folded with the row — spreads strided
             ///< streams whose stride aliases the bank count ("xor")
};

/// Parameters of the banked model. Timings are DDR-class in core cycles:
/// a row hit costs t_cas + line_cycles, an activate-on-closed-bank adds
/// t_rcd, a row conflict adds a precharge (t_rp) on top — so with the
/// defaults a conflict lands on the flat model's 120 cycles and a hit is
/// ~3x cheaper, which is exactly the locality axis the flat model hides.
struct BankedBackendParams {
  unsigned channels = 2;          ///< independent channels per controller
  unsigned banks_per_channel = 8;
  /// Address-to-bank hash. `block` keeps the original interleave (and the
  /// pre-mapping baseline numbers); `xor_hash` folds the row bits in, the
  /// classic defence against power-of-two strides camping on one bank.
  BankMapping mapping = BankMapping::block;
  unsigned row_bytes = 2048;      ///< row-buffer size
  unsigned t_rp = 40;             ///< precharge (close a conflicting row)
  unsigned t_rcd = 40;            ///< activate (open a row)
  unsigned t_cas = 40;            ///< column access on the open row
  unsigned line_cycles = 4;       ///< data-burst cycles per line on the bus
  /// Cycles between all-bank refreshes per channel (0 disables refresh).
  unsigned refresh_interval = 8192;
  unsigned refresh_cycles = 128;  ///< banks blocked per refresh (tRFC)
  /// Streaming cadence for burst lines served from L2, not DRAM.
  unsigned dma_cycles_per_line = 4;
  double e_line = 1200.0;      ///< pJ per line transferred
  double e_activate = 300.0;   ///< pJ per row activation
  double e_refresh = 600.0;    ///< pJ per all-bank refresh

  friend bool operator==(const BankedBackendParams&,
                         const BankedBackendParams&) = default;
};

/// Backend selection + both parameter sets (the unselected one is inert,
/// but kept so scenario round trips are field-identical).
struct MemoryConfig {
  MemBackendKind kind = MemBackendKind::flat;
  FlatBackendParams flat;
  BankedBackendParams banked;

  friend bool operator==(const MemoryConfig&, const MemoryConfig&) = default;
};

/// Chip-level configuration. Defaults reproduce the Figure 1 system.
struct SystemConfig {
  // --- topology ---
  unsigned tiles = 64;   ///< cores; must equal mesh_x * mesh_y
  unsigned mesh_x = 8;
  unsigned mesh_y = 8;
  unsigned mem_controllers = 4;  ///< placed at the mesh corners

  // --- line / capacity ---
  unsigned line_bytes = 64;
  unsigned l1_bytes = 32 * 1024;
  unsigned l1_assoc = 8;  ///< 8-way: NAS multi-stream sweeps need >= 6 ways
  unsigned l2_bank_bytes = 512 * 1024;  ///< per tile
  unsigned l2_assoc = 8;
  unsigned spm_bytes = 64 * 1024;       ///< per tile (hybrid only)
  unsigned dma_chunk_bytes = 4 * 1024;  ///< software-cache tile size

  // --- latencies (cycles) ---
  unsigned lat_l1_hit = 2;
  unsigned lat_spm_hit = 1;
  unsigned lat_l2_hit = 8;
  unsigned lat_dir = 2;  ///< directory/filter consultation at home
  /// Local SPM-filter lookup for guarded accesses. 1 cycle: the lookup
  /// overlaps the L1 tag probe (as in the ISCA'15 design).
  unsigned lat_filter = 1;
  unsigned lat_router = 2;     ///< per hop
  unsigned lat_link = 1;       ///< per hop

  // --- energies (pJ) ---
  double e_l1_hit = 20.0;
  double e_l1_probe = 8.0;    ///< miss probe (tag check only)
  double e_spm = 6.0;         ///< SPM access: no tag array, no associativity
  double e_l2 = 60.0;
  double e_dir = 8.0;
  double e_filter = 2.0;
  double e_flit_hop = 3.0;
  /// Chip static power expressed as pJ per core-cycle (leakage of the full
  /// tile incl. its slice of the uncore).
  double e_static_per_tile_cycle = 2.0;

  // --- DRAM timing model (memsim/backend.hpp) ---
  MemoryConfig memory;

  unsigned lines_per_chunk() const { return dma_chunk_bytes / line_bytes; }
  /// Flits for one line payload: 1 header + line/8B payload flits.
  unsigned flits_per_line() const { return 1 + line_bytes / 8; }

  /// Exact field-wise equality (the scenario serializer's round-trip
  /// contract — generate -> serialize -> parse — is field-identical).
  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

/// Which hierarchy the system models (the Figure 1 comparison).
enum class HierarchyMode : std::uint8_t {
  cache_only,  ///< baseline: everything through the cache hierarchy
  hybrid,      ///< SPM+cache with the co-designed coherence protocol
};

/// Aggregated simulation results.
struct Metrics {
  double cycles = 0.0;  ///< makespan: max per-core clock
  double noc_flit_hops = 0.0;

  // Energy breakdown (pJ).
  double e_l1 = 0.0, e_l2 = 0.0, e_spm = 0.0, e_dram = 0.0, e_noc = 0.0;
  double e_dir = 0.0, e_static = 0.0;

  // Event counters.
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t spm_hits = 0;
  std::uint64_t dram_line_reads = 0, dram_line_writes = 0;
  // Banked-backend row-buffer behaviour (always 0 under the flat model).
  std::uint64_t dram_row_hits = 0, dram_row_misses = 0;
  std::uint64_t dram_row_conflicts = 0, dram_refreshes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetch_fills = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t guarded_lookups = 0;
  std::uint64_t guarded_to_spm = 0;
  std::uint64_t remote_spm_accesses = 0;

  double energy_pj() const {
    return e_l1 + e_l2 + e_spm + e_dram + e_noc + e_dir + e_static;
  }

  /// Exact (bit-for-bit, including the FP sums) equality. The simulator's
  /// determinism contracts — sharded vs serial, trace record vs replay —
  /// are *exact*, so equality here is ==, not a tolerance.
  friend bool operator==(const Metrics&, const Metrics&) = default;
};

}  // namespace raa::mem
