#pragma once
/// \file system.hpp
/// The tiled-manycore memory-hierarchy simulator (§2, Figure 1).
///
/// Trace-driven, functional + timing + energy. Each core consumes its
/// access stream in program order, blocking on memory; cores interleave
/// deterministically (the core with the smallest local clock advances
/// next). Shared state — L2 banks, directory, SPM mappings — is updated
/// atomically per access.
///
/// Two configurations:
///  * cache_only: every access goes through L1 -> home L2 bank (+directory)
///    -> DRAM with an MSI invalidation protocol;
///  * hybrid: strided references run through DMA-managed SPM chunks,
///    random/no-alias references through the caches, and random/unknown
///    references are *guarded*: a filter decides at run time whether the
///    valid copy lives in an SPM or in the cache hierarchy (the paper's
///    co-designed coherence protocol).
///
/// The simulator keeps a functional value per line end-to-end (L1/L2/SPM/
/// DRAM) and checks on every load that the value served equals the value
/// of the last store in simulation order — i.e. that the protocol never
/// serves stale data. This check is what the protocol unit tests lean on,
/// and it stays enabled in benches (it would fail loudly on a protocol
/// bug).
///
/// Hot-path engineering: all per-line bookkeeping (DRAM/oracle/SPM values,
/// directory, SPM mappings, prefetch tags) lives in one flat line table
/// (linetable.hpp) fetched once per access; cores interleave through a
/// flat index-min heap sifted in place; access streams are pulled in
/// batches through CoreProgram::fill. The `LineStore::hashed` backend
/// preserves the old per-access-hash shape for equivalence testing.
///
/// Host parallelism: run(workload, RunOptions{.shards = N}) decouples the
/// access-stream front end onto N concurrent producer lanes (src/exec/)
/// while the protocol commit stays in serial interleave order, keeping
/// the Metrics field-identical to the serial engine for every N (pinned
/// by the ShardEquivalence suite; design note in docs/ARCHITECTURE.md).

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "memsim/access.hpp"
#include "memsim/backend.hpp"
#include "memsim/cache.hpp"
#include "memsim/config.hpp"
#include "memsim/linetable.hpp"
#include "memsim/noc.hpp"
#include "memsim/spm.hpp"

namespace raa::exec {
class Pool;
}  // namespace raa::exec

namespace raa::mem {

/// Execution options for System::run. The simulated outcome is a pure
/// function of the workload: *any* shards/pool combination produces
/// Metrics field-identical to the serial interleave (the ShardEquivalence
/// suite pins this). Sharding decouples the access-stream front end —
/// CoreProgram::fill batch generation into per-core double-buffered
/// channels — onto concurrent producer lanes, while the protocol commit
/// loop consumes the channels in the exact serial interleave order, so
/// every shared-state transition (L2 banks, directory, line values,
/// version/tag counters, metrics) happens in the identical sequence.
struct RunOptions {
  /// Concurrent front-end lanes. 1 = the fully serial engine.
  unsigned shards = 1;
  /// Pool to run the shard producers on. Null with shards > 1 spawns a
  /// private pool of shards - 1 workers (the committing thread is the
  /// remaining lane). An external pool may have any worker count — even
  /// zero: fills then run inline inside the commit loop's helping wait.
  exec::Pool* pool = nullptr;
};

/// See file comment.
class System {
 public:
  System(const SystemConfig& config, HierarchyMode mode,
         LineStore store = LineStore::paged);

  /// Run a workload to completion and return the metrics. The workload's
  /// programs are consumed. Requires programs.size() == config.tiles.
  Metrics run(Workload& workload);

  /// As above, with sharded front-end execution (see RunOptions).
  Metrics run(Workload& workload, const RunOptions& options);

  HierarchyMode mode() const noexcept { return mode_; }
  const SystemConfig& config() const noexcept { return cfg_; }
  LineStore line_store() const noexcept { return lines_.store(); }

 private:
  static std::uint64_t bit(unsigned tile) noexcept {
    return std::uint64_t{1} << tile;
  }

  std::uint64_t line_of(std::uint64_t addr) const {
    return line_pow2_ ? addr & ~std::uint64_t{cfg_.line_bytes - 1}
                      : addr / cfg_.line_bytes * cfg_.line_bytes;
  }
  /// Home L2 bank. Interleaved at DMA-chunk granularity so a chunk has a
  /// single home: the SPM-directory transaction is one message and DMA
  /// transfers are single bursts (per-line interleaving would shatter every
  /// chunk across all banks).
  unsigned home_of(std::uint64_t line_addr) const {
    const std::uint64_t chunk = chunk_pow2_
                                    ? line_addr >> chunk_shift_
                                    : line_addr / cfg_.dma_chunk_bytes;
    return static_cast<unsigned>(
        tiles_pow2_ ? chunk & (cfg_.tiles - 1) : chunk % cfg_.tiles);
  }

  /// Account one message (traffic + energy) and return its latency.
  unsigned send(unsigned from, unsigned to, unsigned flits);

  /// Blocking demand read on the DRAM backend: enqueue, tick until the
  /// completion fires, return the latency. Commit-thread only.
  unsigned dram_read(std::uint64_t line, unsigned mc);

  // --- value plumbing (functional coherence model) ---
  std::uint64_t fresh_version() { return ++version_counter_; }
  void check_load_value(const LineInfo& li, std::uint64_t served) const;

  // --- cache-path protocol actions (return latency in cycles) ---
  unsigned cache_access(unsigned core, std::uint64_t line, LineInfo& li,
                        bool store);
  /// Tagged next-line stream prefetch into `core`'s L1 (latency hidden,
  /// traffic and energy fully charged).
  void prefetch(unsigned core, std::uint64_t line);
  unsigned upgrade_to_modified(unsigned core, std::uint64_t line,
                               LineInfo& li);
  /// Fetch the line for `core`; fills `value` with the coherent data and
  /// returns latency. Handles owner forwarding / L2 / DRAM.
  unsigned fetch_line(unsigned core, std::uint64_t line, LineInfo& li,
                      std::uint64_t& value, bool for_store);
  void l1_install(unsigned core, std::uint64_t line, LineState st,
                  std::uint64_t value);
  void l2_install(std::uint64_t line, std::uint64_t value, bool dirty);
  /// l2_install for a line the caller just probed absent (skips re-probe).
  void l2_insert_absent(unsigned home, std::uint64_t line,
                        std::uint64_t value, bool dirty);
  /// Invalidate every L1 copy except `except_core` (-1: all); returns the
  /// latency of the farthest invalidation round trip from the home.
  unsigned invalidate_sharers(std::uint64_t line, LineInfo& li,
                              int except_core);

  // --- SPM path ---
  unsigned spm_access(unsigned core, std::size_t region_idx,
                      const Region& region, std::uint64_t addr,
                      std::uint64_t line, bool store);
  /// Map a chunk into `core`'s SPM slice. With `fetch`, DMA-in the valid
  /// copies (invalidating cached ones); without (write-allocated output
  /// chunk) only the coherence actions run and lines become valid in the
  /// SPM as they are written. Returns the DMA latency (before overlap).
  double dma_map_chunk(unsigned core, const Region& region,
                       std::uint64_t chunk_index, std::uint32_t chunk_tag,
                       bool fetch);
  void dma_unmap_chunk(unsigned core, const Region& region,
                       SoftwareCacheState& st);
  /// `line` is the (already line-aligned) address of the access.
  unsigned guarded_access(unsigned core, std::uint64_t line, bool store);

  // --- chunk-tag dirty bits (guarded remote stores) ---
  void mark_dirty_tag(std::uint32_t tag) {
    if (tag >= dirty_tags_.size()) {
      // Geometric growth, seeded from the tag counter: tags are handed
      // out sequentially, so one-element resize(tag + 1) steps would copy
      // the bitmap quadratically over a run.
      std::size_t n = std::max<std::size_t>(2 * dirty_tags_.size(), 64);
      n = std::max(n, std::size_t{tag} + 1);
      n = std::max(n, std::size_t{chunk_tag_counter_} + 1);
      dirty_tags_.resize(n, 0);
    }
    dirty_tags_[tag] = 1;
  }
  bool dirty_tag(std::uint32_t tag) const {
    return tag < dirty_tags_.size() && dirty_tags_[tag] != 0;
  }

  void flush_all_software_caches();

  // --- run engine (system.cpp) ---
  /// Reset per-run state and flatten the workload's region table.
  void begin_run(Workload& workload);
  /// Flush software caches, finalise cycles/static energy, detach.
  Metrics finish_run();
  /// Simulate one access of `core` end to end (clock advance + protocol).
  /// `last_region` memoises the core's region lookup across accesses.
  void step(unsigned core, const Access& acc, std::size_t& last_region);
  Metrics run_serial(Workload& workload);
  Metrics run_sharded(Workload& workload, unsigned shards, exec::Pool* pool);

  SystemConfig cfg_;
  HierarchyMode mode_;
  Noc noc_;
  bool line_pow2_ = false;
  bool chunk_pow2_ = false;
  bool tiles_pow2_ = false;
  unsigned chunk_shift_ = 0;
  unsigned flits_line_ = 0;  ///< cfg_.flits_per_line(), cached

  std::vector<Cache> l1_;  ///< one per tile
  /// One bank per tile. L2 line state encodes cleanliness: shared = clean,
  /// modified = dirty w.r.t. DRAM.
  std::vector<Cache> l2_;
  /// All per-line state: DRAM/oracle/SPM values, directory entry, SPM
  /// mapping, prefetch tags. One record per line, one lookup per access.
  LineTable lines_;

  /// (core, region) software-cache states, flat: core * region_count + r.
  /// Sized at the start of run() from the workload's region table.
  std::vector<SoftwareCacheState> streams_;
  std::size_t region_count_ = 0;
  /// Flat copy of the workload's region deque for the run (hot lookups).
  std::vector<Region> run_regions_;
  /// Chunks dirtied by *remote* guarded stores, indexed by chunk tag
  /// (tags are handed out sequentially, so a flat bitmap replaces a set).
  std::vector<std::uint8_t> dirty_tags_;
  std::vector<SpmAllocator> spm_alloc_;
  const Workload* workload_ = nullptr;

  std::vector<double> core_clock_;
  std::uint64_t version_counter_ = 0;
  std::uint32_t chunk_tag_counter_ = 0;
  Metrics metrics_;

  /// DRAM timing model (memsim/backend.hpp). Only ever driven from the
  /// commit thread, so its state evolves identically for any shard count.
  std::unique_ptr<MemBackend> backend_;
  double now_ = 0.0;  ///< commit-loop clock handed to the backend
  bool read_done_ = false;
  double read_latency_ = 0.0;

  /// Row-counter snapshot at the previous backend completion: the delta
  /// classifies each completed request as row hit/miss/conflict for the
  /// dram.complete trace event (backend services are serial on the
  /// commit thread, so the delta is exact). Reset by begin_run.
  struct ObsRowSnap {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t conflicts = 0;
  } obs_rows_;

  // Stream-prefetcher state (per core): 8 sequential-stream trackers; the
  // prefetched-but-not-yet-used "tag" bit lives in LineInfo::prefetch_mask.
  std::vector<std::array<std::uint64_t, 8>> stream_trackers_;
  std::vector<std::size_t> tracker_rr_;
  /// Set by fetch_line when the last load fill was granted Exclusive.
  bool exclusive_grant_ = false;
};

/// Convenience: run `make_workload()` under both configurations and return
/// {cache_only, hybrid} metrics. Used by tests and the Figure 1 bench.
struct ComparisonResult {
  Metrics cache_only;
  Metrics hybrid;

  double time_speedup() const { return cache_only.cycles / hybrid.cycles; }
  double energy_speedup() const {
    return cache_only.energy_pj() / hybrid.energy_pj();
  }
  double noc_speedup() const {
    return cache_only.noc_flit_hops / hybrid.noc_flit_hops;
  }
};

/// Options for run_comparison.
struct ComparisonOptions {
  /// Forwarded to each half's System::run (front-end sharding).
  unsigned shards = 1;
  /// When set, the two halves — independent System instances over
  /// independently built workloads — run concurrently on this pool, with
  /// results assigned by submission index (cache_only first), never by
  /// completion order. `make_workload` must then be safe to call from two
  /// threads at once. Null runs the halves back to back.
  exec::Pool* pool = nullptr;
  LineStore store = LineStore::paged;
};

/// Build and run `make_workload()` under both hierarchy configurations.
/// Each half constructs its own System, so the halves are independent by
/// construction and the metrics are identical for every options
/// combination.
ComparisonResult run_comparison(const SystemConfig& config,
                                const std::function<Workload()>& make_workload,
                                const ComparisonOptions& options = {});

/// Run `workload` to completion on a fresh System with an explicit
/// per-line state backend. This is the differential hook the scenario
/// fuzzer drives: the paged and hashed LineTable backends must produce
/// field-identical Metrics for every workload (the StoreEquivalence
/// contract), so any mismatch here is a simulator bug, not a workload
/// property.
Metrics run_with_store(const SystemConfig& config, HierarchyMode mode,
                       Workload& workload, LineStore store,
                       const RunOptions& options = {});

}  // namespace raa::mem
