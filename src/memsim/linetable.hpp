#pragma once
/// \file linetable.hpp
/// Flat, line-indexed storage for every per-line fact the hierarchy
/// simulator tracks. The simulated address space is bump-allocated and
/// dense (kern::AddressSpace), so the per-access hash maps the simulator
/// historically paid for — DRAM values, the store oracle, SPM values, the
/// coherence directory, the SPM-mapping directory and the per-core
/// prefetch-tag sets — collapse into ONE consolidated `LineInfo` record
/// per line, stored in demand-allocated dense pages. A typical access then
/// does a single shift+index instead of 4–6 hash probes.
///
/// Two backends share the same API:
///  * `paged`  — the fast path: a sparse top-level page vector of dense
///    fixed-size pages (the production configuration);
///  * `hashed` — the old-shape reference path: one hash probe (plus a
///    pointer chase) per lookup. Kept for the equivalence test suite,
///    which runs whole workloads through both backends and asserts the
///    Metrics are identical field-by-field.
///
/// Reference stability: a `LineInfo&` returned by `at()` stays valid until
/// `clear()` — pages are never moved or freed while the table lives, and
/// the hashed backend boxes each record. The simulator relies on this to
/// hold a line's record across victim evictions that create other lines.

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace raa::mem {

/// Everything the simulator knows about one cache line, consolidated.
/// Defaults encode absence exactly like a missing hash-map entry used to:
/// DRAM/oracle values default to 0, no SPM mapping, no directory state,
/// no prefetch tags.
struct LineInfo {
  std::uint64_t dram = 0;    ///< functional DRAM value
  std::uint64_t oracle = 0;  ///< value of the last store in simulation order
  std::uint64_t spm_value = 0;      ///< valid only when `spm_valid`
  std::uint64_t sharers = 0;        ///< directory sharer bitmask (<=64 tiles)
  std::uint64_t prefetch_mask = 0;  ///< cores holding the line prefetch-tagged
  std::uint32_t spm_chunk_tag = 0;  ///< software-cache chunk id when mapped
  /// Tile holding the line Modified/Exclusive, or -1. int8 keeps the
  /// record at exactly 48 bytes (tiles <= 64).
  std::int8_t owner = -1;
  std::uint8_t spm_tile = 0;  ///< SPM slice holding the line when mapped
  bool spm_mapped = false;    ///< line currently mapped to some SPM
  bool spm_valid = false;     ///< SPM holds a valid copy (per-line validity)
};
static_assert(sizeof(LineInfo) == 48);

/// Which storage backend a LineTable (and hence a System) uses.
enum class LineStore : std::uint8_t {
  paged,   ///< sparse page vector of dense pages (fast path)
  hashed,  ///< hash map per line (old-shape reference path, tests only)
};

/// See file comment.
class LineTable {
 public:
  /// Lines per page. 4096 lines x 64 B = a 256 KiB address span per page;
  /// one page is ~224 KiB of LineInfo, so dense workload regions amortise
  /// the allocation while sparse address spaces stay cheap.
  static constexpr unsigned kPageLineBits = 12;
  static constexpr std::size_t kPageLines = std::size_t{1} << kPageLineBits;

  explicit LineTable(unsigned line_bytes, LineStore store = LineStore::paged)
      : line_bytes_(line_bytes), store_(store) {
    RAA_CHECK(line_bytes > 0);
    line_pow2_ = std::has_single_bit(line_bytes);
    if (line_pow2_)
      line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
  }

  LineStore store() const noexcept { return store_; }

  /// Get-or-create the record for a (line-aligned) address.
  LineInfo& at(std::uint64_t line_addr) {
    const std::uint64_t idx = index_of(line_addr);
    if (store_ == LineStore::paged) {
      const std::size_t page = static_cast<std::size_t>(idx >> kPageLineBits);
      if (page >= pages_.size()) pages_.resize(page + 1);
      auto& p = pages_[page];
      if (!p) p = std::make_unique<Page>();
      return (*p)[idx & (kPageLines - 1)];
    }
    auto& slot = map_[idx];
    if (!slot) slot = std::make_unique<LineInfo>();
    return *slot;
  }

  /// Read-only lookup that never allocates. Returns nullptr when the line
  /// was never touched (paged: page not allocated; hashed: no entry). A
  /// null result is equivalent to a default-constructed LineInfo.
  const LineInfo* peek(std::uint64_t line_addr) const {
    const std::uint64_t idx = index_of(line_addr);
    if (store_ == LineStore::paged) {
      const std::size_t page = static_cast<std::size_t>(idx >> kPageLineBits);
      if (page >= pages_.size() || !pages_[page]) return nullptr;
      return &(*pages_[page])[idx & (kPageLines - 1)];
    }
    const auto it = map_.find(idx);
    return it == map_.end() ? nullptr : it->second.get();
  }

  /// Drop every record (invalidates all references).
  void clear() {
    pages_.clear();
    map_.clear();
  }

  /// Allocated page count (paged backend; 0 under hashed). Diagnostics.
  std::size_t pages_allocated() const noexcept {
    std::size_t n = 0;
    for (const auto& p : pages_)
      if (p) ++n;
    return n;
  }

  /// Size of the top-level page vector (paged backend). Diagnostics.
  std::size_t page_slots() const noexcept { return pages_.size(); }

 private:
  using Page = std::array<LineInfo, kPageLines>;

  std::uint64_t index_of(std::uint64_t line_addr) const {
    return line_pow2_ ? line_addr >> line_shift_ : line_addr / line_bytes_;
  }

  unsigned line_bytes_;
  unsigned line_shift_ = 0;
  bool line_pow2_ = false;
  LineStore store_;
  std::vector<std::unique_ptr<Page>> pages_;
  /// Hashed backend boxes records so references survive rehashing.
  std::unordered_map<std::uint64_t, std::unique_ptr<LineInfo>> map_;
};

}  // namespace raa::mem
