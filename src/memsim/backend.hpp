#pragma once
/// \file backend.hpp
/// The memsim/DRAM boundary: a narrow, pluggable memory-timing back end
/// in the shape of DRAMsim3's `MemorySystem` and Ramulator's `Memory`
/// front end — `enqueue(LineReq)` / `tick()` / a completion callback —
/// so the protocol simulator never reads timing constants directly.
///
/// Two implementations:
///  * FlatBackend — fixed per-line latency/energy, the original model.
///    Completes requests synchronously at enqueue; with the default
///    parameters every gated metric is bit-identical to the pre-backend
///    simulator (pinned by the BackendEquivalence suite).
///  * BankedBackend — per-channel/bank FSMs with an open-row policy
///    (row-buffer hit / miss / conflict timing), an FR-FCFS command
///    queue per channel, and periodic all-bank refresh.
///
/// Determinism contract: a backend instance is only ever driven from the
/// simulator's serial commit loop (the same thread that owns all protocol
/// state), so its timing state evolves in the exact commit order for any
/// `--shards` value — banked runs are field-identical serial vs sharded,
/// exactly like every other metric (ShardEquivalence + the fuzzer's
/// backend oracle pin this). Backends hold no global/static state.
///
/// Ownership split: the backend owns the DRAM counters and DRAM energy
/// (BackendStats); System folds them into Metrics in finish_run. NoC
/// legs to/from the memory controller stay on the System side.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "memsim/config.hpp"

namespace raa::mem {

/// One line-granular request crossing the memsim/DRAM boundary.
struct LineReq {
  enum class Kind : std::uint8_t {
    read,   ///< demand fill — the core blocks on the completion latency
    write,  ///< eviction writeback — latency-hidden, still occupies timing
  };
  Kind kind = Kind::read;
  std::uint64_t line = 0;  ///< line-aligned address
  unsigned mc = 0;         ///< memory controller the request enters at
  double issue = 0.0;      ///< commit-loop clock at issue
  bool burst = false;      ///< DMA-burst member, timed via finish_burst
};

/// Aggregate timing of one DMA burst (System::dma_map_chunk): the burst
/// stalls the core for `service` (request to first line available) and
/// then streams at `cadence` cycles total for the remaining lines.
struct BurstTiming {
  double service = 0.0;
  double cadence = 0.0;
};

/// Counters and energy owned by the backend; System copies them into the
/// corresponding Metrics fields at finish_run.
struct BackendStats {
  std::uint64_t line_reads = 0;
  std::uint64_t line_writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t refreshes = 0;
  double energy_pj = 0.0;

  friend bool operator==(const BackendStats&, const BackendStats&) = default;
};

/// See file comment. Completion callbacks fire from enqueue() or tick(),
/// always on the calling (commit) thread, and report the request's
/// latency in cycles relative to its issue time.
class MemBackend {
 public:
  using Completion = std::function<void(const LineReq&, double latency)>;

  virtual ~MemBackend() = default;

  virtual MemBackendKind kind() const noexcept = 0;
  /// Reset all timing/queue state and stats. Systems are reused across
  /// runs and core clocks restart at 0, so backends must fully reset.
  virtual void begin_run() = 0;
  /// Queue one request. May complete it synchronously.
  virtual void enqueue(const LineReq& req) = 0;
  /// Service queued commands; fires completions for finished requests.
  /// Guaranteed to make progress while requests are pending.
  virtual void tick() = 0;
  virtual bool idle() const noexcept = 0;
  /// Bracket a DMA burst: begin_burst() before the burst's enqueues,
  /// finish_burst() after the backend drained (idle()). `total_lines`
  /// counts every line of the chunk, `dram_lines` the subset that came
  /// from DRAM (the rest streamed from the home L2 bank).
  virtual void begin_burst() = 0;
  virtual BurstTiming finish_burst(unsigned total_lines,
                                   unsigned dram_lines) = 0;

  void set_completion(Completion cb) { complete_ = std::move(cb); }
  const BackendStats& stats() const noexcept { return stats_; }

 protected:
  void completed(const LineReq& req, double latency) {
    if (complete_) complete_(req, latency);
  }

  Completion complete_;
  BackendStats stats_;
};

/// Fixed-latency DRAM: every read costs Params::lat_dram, bursts stream
/// at dram_cycles_per_line, writes are free in time; each line moved
/// costs e_dram_line. Synchronous: enqueue() completes the request.
class FlatBackend final : public MemBackend {
 public:
  using Params = FlatBackendParams;

  explicit FlatBackend(const Params& params) : p_(params) {}

  MemBackendKind kind() const noexcept override {
    return MemBackendKind::flat;
  }
  void begin_run() override { stats_ = BackendStats{}; }
  void enqueue(const LineReq& req) override;
  void tick() override {}
  bool idle() const noexcept override { return true; }
  void begin_burst() override {}
  BurstTiming finish_burst(unsigned total_lines,
                           unsigned dram_lines) override;

 private:
  Params p_;
};

/// Banked DRAM. Address interleave below the controller: row-buffer-sized
/// blocks rotate across the controller's channels, then across the banks
/// of a channel — so a linear sweep streams whole rows per bank while
/// spreading consecutive rows over channels.
///
/// Per request (FR-FCFS pick: oldest row hit, else oldest):
///   ready     = max(issue, bank busy; pending refreshes applied first)
///   row_lat   = t_cas (hit) | t_rcd+t_cas (closed) | t_rp+t_rcd+t_cas
///               (conflict — a different row is open)
///   done      = max(ready + row_lat, channel bus free) + line_cycles
/// Every refresh_interval cycles a channel closes all rows and blocks its
/// banks for refresh_cycles (0 disables refresh).
class BankedBackend final : public MemBackend {
 public:
  using Params = BankedBackendParams;

  BankedBackend(const Params& params, unsigned mem_controllers);

  MemBackendKind kind() const noexcept override {
    return MemBackendKind::banked;
  }
  void begin_run() override;
  void enqueue(const LineReq& req) override;
  void tick() override;
  bool idle() const noexcept override { return pending_ == 0; }
  void begin_burst() override;
  BurstTiming finish_burst(unsigned total_lines,
                           unsigned dram_lines) override;

 private:
  static constexpr std::uint64_t kNoRow =
      std::numeric_limits<std::uint64_t>::max();

  struct Bank {
    std::uint64_t open_row = kNoRow;
    double busy_until = 0.0;
  };
  struct Pending {
    LineReq req;
    std::uint64_t seq = 0;  ///< arrival order (the FCFS half of FR-FCFS)
    std::uint64_t row = 0;
    unsigned bank = 0;
  };
  struct Channel {
    std::vector<Bank> banks;
    std::vector<Pending> queue;
    double bus_free = 0.0;
    double next_refresh = 0.0;
  };

  void service_one(Channel& ch);

  Params p_;
  unsigned mem_controllers_;
  std::vector<Channel> channels_;  ///< mem_controllers * p_.channels
  std::uint64_t seq_ = 0;
  std::size_t pending_ = 0;
  // Burst window (one burst in flight at a time, commit-loop invariant).
  double burst_issue_ = 0.0;
  double burst_first_done_ = 0.0;
  double burst_last_done_ = 0.0;
  bool burst_seen_ = false;
};

const char* to_string(MemBackendKind kind) noexcept;
const char* to_string(BankMapping mapping) noexcept;

/// Instantiate the backend selected by `config.memory`.
std::unique_ptr<MemBackend> make_backend(const SystemConfig& config);

}  // namespace raa::mem
