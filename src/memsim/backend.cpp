#include "memsim/backend.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::mem {

const char* to_string(MemBackendKind kind) noexcept {
  switch (kind) {
    case MemBackendKind::flat: return "flat";
    case MemBackendKind::banked: return "banked";
  }
  return "?";
}

const char* to_string(BankMapping mapping) noexcept {
  switch (mapping) {
    case BankMapping::block: return "block";
    case BankMapping::xor_hash: return "xor";
  }
  return "?";
}

std::unique_ptr<MemBackend> make_backend(const SystemConfig& config) {
  switch (config.memory.kind) {
    case MemBackendKind::flat:
      return std::make_unique<FlatBackend>(config.memory.flat);
    case MemBackendKind::banked:
      return std::make_unique<BankedBackend>(config.memory.banked,
                                             config.mem_controllers);
  }
  RAA_CHECK_MSG(false, "unknown memory backend kind");
  return nullptr;
}

// --- FlatBackend --------------------------------------------------------

void FlatBackend::enqueue(const LineReq& req) {
  stats_.energy_pj += p_.e_dram_line;
  if (req.kind == LineReq::Kind::read) {
    ++stats_.line_reads;
    completed(req, static_cast<double>(p_.lat_dram));
  } else {
    ++stats_.line_writes;
    completed(req, 0.0);  // writebacks are latency-hidden
  }
}

BurstTiming FlatBackend::finish_burst(unsigned total_lines,
                                      unsigned /*dram_lines*/) {
  // The pre-backend formula: the slowest source's access latency once,
  // then a flat per-line cadence over the whole chunk.
  return BurstTiming{
      static_cast<double>(p_.lat_dram),
      static_cast<double>(total_lines) * p_.dram_cycles_per_line};
}

// --- BankedBackend ------------------------------------------------------

BankedBackend::BankedBackend(const Params& params, unsigned mem_controllers)
    : p_(params), mem_controllers_(std::max(mem_controllers, 1u)) {
  // Degenerate parameters would divide by zero in the address decode.
  p_.channels = std::max(p_.channels, 1u);
  p_.banks_per_channel = std::max(p_.banks_per_channel, 1u);
  p_.row_bytes = std::max(p_.row_bytes, 1u);
  channels_.resize(std::size_t{mem_controllers_} * p_.channels);
  for (Channel& ch : channels_) ch.banks.resize(p_.banks_per_channel);
  begin_run();
}

void BankedBackend::begin_run() {
  stats_ = BackendStats{};
  seq_ = 0;
  pending_ = 0;
  burst_seen_ = false;
  for (Channel& ch : channels_) {
    ch.queue.clear();
    ch.bus_free = 0.0;
    ch.next_refresh = static_cast<double>(p_.refresh_interval);
    for (Bank& b : ch.banks) {
      b.open_row = kNoRow;
      b.busy_until = 0.0;
    }
  }
}

void BankedBackend::enqueue(const LineReq& req) {
  const std::uint64_t block = req.line / p_.row_bytes;
  Channel& ch = channels_[std::size_t{req.mc % mem_controllers_} *
                              p_.channels +
                          block % p_.channels];
  Pending pend;
  pend.req = req;
  pend.seq = seq_++;
  const std::uint64_t within = block / p_.channels;
  pend.row = within / p_.banks_per_channel;
  // XOR bank hash: fold the row bits into the bank index so a stride
  // that advances exactly banks_per_channel row-blocks (and would camp
  // on one bank, row-conflicting forever) rotates across banks instead.
  const std::uint64_t bank_bits =
      p_.mapping == BankMapping::xor_hash ? (within ^ pend.row) : within;
  pend.bank = static_cast<unsigned>(bank_bits % p_.banks_per_channel);
  ch.queue.push_back(pend);
  ++pending_;
}

void BankedBackend::tick() {
  // One command per channel per tick, channels in fixed index order —
  // independent controllers, deterministic service sequence.
  for (Channel& ch : channels_) {
    if (!ch.queue.empty()) service_one(ch);
  }
}

void BankedBackend::service_one(Channel& ch) {
  // FR-FCFS: the oldest request whose row is open in its bank wins; if no
  // request hits an open row, plain FCFS (oldest overall).
  std::size_t best = 0;
  bool best_hit = false;
  for (std::size_t i = 0; i < ch.queue.size(); ++i) {
    const Pending& cand = ch.queue[i];
    const bool hit = ch.banks[cand.bank].open_row == cand.row;
    const bool better =
        (hit && !best_hit) ||
        (hit == best_hit && cand.seq < ch.queue[best].seq);
    if (i == 0 || better) {
      best = i;
      best_hit = hit;
    }
  }
  const Pending pend = ch.queue[best];
  ch.queue.erase(ch.queue.begin() +
                 static_cast<std::ptrdiff_t>(best));
  --pending_;

  Bank& bank = ch.banks[pend.bank];

  // Periodic all-bank refresh: every elapsed interval up to this
  // request's earliest start closes all rows and blocks the banks.
  if (p_.refresh_interval > 0) {
    while (ch.next_refresh <=
           std::max(pend.req.issue, bank.busy_until)) {
      const double end = ch.next_refresh + p_.refresh_cycles;
      for (Bank& b : ch.banks) {
        b.open_row = kNoRow;
        b.busy_until = std::max(b.busy_until, end);
      }
      ++stats_.refreshes;
      stats_.energy_pj += p_.e_refresh;
      ch.next_refresh += static_cast<double>(p_.refresh_interval);
    }
  }

  const double ready = std::max(pend.req.issue, bank.busy_until);
  unsigned row_lat = p_.t_cas;
  if (bank.open_row == pend.row) {
    ++stats_.row_hits;
  } else {
    row_lat += p_.t_rcd;
    stats_.energy_pj += p_.e_activate;
    if (bank.open_row == kNoRow) {
      ++stats_.row_misses;
    } else {
      ++stats_.row_conflicts;
      row_lat += p_.t_rp;
    }
    bank.open_row = pend.row;
  }

  const double done =
      std::max(ready + row_lat, ch.bus_free) + p_.line_cycles;
  bank.busy_until = done;
  ch.bus_free = done;

  stats_.energy_pj += p_.e_line;
  if (pend.req.kind == LineReq::Kind::read) {
    ++stats_.line_reads;
    if (pend.req.burst) {
      if (!burst_seen_ || pend.req.issue < burst_issue_)
        burst_issue_ = pend.req.issue;
      if (!burst_seen_ || done < burst_first_done_)
        burst_first_done_ = done;
      if (!burst_seen_ || done > burst_last_done_)
        burst_last_done_ = done;
      burst_seen_ = true;
    }
  } else {
    ++stats_.line_writes;
  }
  completed(pend.req, done - pend.req.issue);
}

void BankedBackend::begin_burst() { burst_seen_ = false; }

BurstTiming BankedBackend::finish_burst(unsigned total_lines,
                                        unsigned dram_lines) {
  RAA_CHECK(pending_ == 0);
  BurstTiming bt;
  if (dram_lines > 0 && burst_seen_) {
    bt.service = burst_first_done_ - burst_issue_;
    bt.cadence = burst_last_done_ - burst_first_done_;
  }
  // Lines streamed from the home L2 bank ride the same burst at the DMA
  // engine's cadence.
  const unsigned l2_lines = total_lines - std::min(dram_lines, total_lines);
  bt.cadence += static_cast<double>(l2_lines) * p_.dma_cycles_per_line;
  return bt;
}

}  // namespace raa::mem
