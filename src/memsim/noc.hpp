#pragma once
/// \file noc.hpp
/// 2-D mesh network-on-chip model: XY routing distances, latency and
/// traffic/energy accounting. The NoC is not contention-simulated; Figure 1
/// compares *traffic volumes* (flit-hops), which this model counts exactly.

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "memsim/config.hpp"

namespace raa::mem {

/// Mesh geometry + accounting helpers. Stateless except for the config;
/// per-tile coordinates and the nearest memory controller are precomputed
/// at construction so the per-message accounting on the simulator's hot
/// path does no division.
class Noc {
 public:
  explicit Noc(const SystemConfig& cfg) : cfg_(cfg) {
    RAA_CHECK(cfg.mesh_x * cfg.mesh_y == cfg.tiles);
    x_.resize(cfg.tiles);
    y_.resize(cfg.tiles);
    for (unsigned t = 0; t < cfg.tiles; ++t) {
      x_[t] = static_cast<std::uint8_t>(t % cfg.mesh_x);
      y_[t] = static_cast<std::uint8_t>(t / cfg.mesh_x);
    }
    nearest_mc_.resize(cfg.tiles);
    for (unsigned t = 0; t < cfg.tiles; ++t)
      nearest_mc_[t] = compute_nearest_mc(t);
  }

  unsigned x_of(unsigned tile) const noexcept { return x_[tile]; }
  unsigned y_of(unsigned tile) const noexcept { return y_[tile]; }

  /// Manhattan distance (XY routing hop count).
  unsigned hops(unsigned from, unsigned to) const noexcept {
    const int dx = static_cast<int>(x_[from]) - static_cast<int>(x_[to]);
    const int dy = static_cast<int>(y_[from]) - static_cast<int>(y_[to]);
    return static_cast<unsigned>((dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy));
  }

  /// One-way latency of a message of `flits` flits over `hops` hops
  /// (wormhole: head latency + serialization).
  unsigned latency(unsigned hop_count, unsigned flits) const noexcept {
    if (hop_count == 0) return 0;
    return hop_count * (cfg_.lat_router + cfg_.lat_link) + (flits - 1);
  }

  /// Traffic contribution (flit-hops) of the same message.
  double traffic(unsigned hop_count, unsigned flits) const noexcept {
    return static_cast<double>(hop_count) * static_cast<double>(flits);
  }

  /// Energy (pJ) of the same message.
  double energy(unsigned hop_count, unsigned flits) const noexcept {
    return traffic(hop_count, flits) * cfg_.e_flit_hop;
  }

  /// The memory controller tile closest to `tile` (MCs sit at the corners).
  unsigned nearest_mc(unsigned tile) const noexcept {
    return nearest_mc_[tile];
  }

 private:
  unsigned compute_nearest_mc(unsigned tile) const noexcept {
    const unsigned corners[4] = {
        0, cfg_.mesh_x - 1, cfg_.tiles - cfg_.mesh_x, cfg_.tiles - 1};
    unsigned best = corners[0];
    unsigned best_h = hops(tile, best);
    const unsigned n_mc = cfg_.mem_controllers < 4 ? cfg_.mem_controllers : 4;
    for (unsigned i = 1; i < n_mc; ++i) {
      const unsigned h = hops(tile, corners[i]);
      if (h < best_h) {
        best_h = h;
        best = corners[i];
      }
    }
    return best;
  }

  SystemConfig cfg_;
  std::vector<std::uint8_t> x_, y_;   ///< per-tile mesh coordinates
  std::vector<unsigned> nearest_mc_;  ///< per-tile closest controller
};

}  // namespace raa::mem
