#pragma once
/// \file noc.hpp
/// 2-D mesh network-on-chip model: XY routing distances, latency and
/// traffic/energy accounting. The NoC is not contention-simulated; Figure 1
/// compares *traffic volumes* (flit-hops), which this model counts exactly.

#include <cstdint>

#include "common/check.hpp"
#include "memsim/config.hpp"

namespace raa::mem {

/// Mesh geometry + accounting helpers. Stateless except for the config.
class Noc {
 public:
  explicit Noc(const SystemConfig& cfg) : cfg_(cfg) {
    RAA_CHECK(cfg.mesh_x * cfg.mesh_y == cfg.tiles);
  }

  unsigned x_of(unsigned tile) const noexcept { return tile % cfg_.mesh_x; }
  unsigned y_of(unsigned tile) const noexcept { return tile / cfg_.mesh_x; }

  /// Manhattan distance (XY routing hop count).
  unsigned hops(unsigned from, unsigned to) const noexcept {
    const int dx = static_cast<int>(x_of(from)) - static_cast<int>(x_of(to));
    const int dy = static_cast<int>(y_of(from)) - static_cast<int>(y_of(to));
    return static_cast<unsigned>((dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy));
  }

  /// One-way latency of a message of `flits` flits over `hops` hops
  /// (wormhole: head latency + serialization).
  unsigned latency(unsigned hop_count, unsigned flits) const noexcept {
    if (hop_count == 0) return 0;
    return hop_count * (cfg_.lat_router + cfg_.lat_link) + (flits - 1);
  }

  /// Traffic contribution (flit-hops) of the same message.
  double traffic(unsigned hop_count, unsigned flits) const noexcept {
    return static_cast<double>(hop_count) * static_cast<double>(flits);
  }

  /// Energy (pJ) of the same message.
  double energy(unsigned hop_count, unsigned flits) const noexcept {
    return traffic(hop_count, flits) * cfg_.e_flit_hop;
  }

  /// The memory controller tile closest to `tile` (MCs sit at the corners).
  unsigned nearest_mc(unsigned tile) const noexcept {
    const unsigned corners[4] = {
        0, cfg_.mesh_x - 1, cfg_.tiles - cfg_.mesh_x, cfg_.tiles - 1};
    unsigned best = corners[0];
    unsigned best_h = hops(tile, best);
    const unsigned n_mc = cfg_.mem_controllers < 4 ? cfg_.mem_controllers : 4;
    for (unsigned i = 1; i < n_mc; ++i) {
      const unsigned h = hops(tile, corners[i]);
      if (h < best_h) {
        best_h = h;
        best = corners[i];
      }
    }
    return best;
  }

 private:
  SystemConfig cfg_;
};

}  // namespace raa::mem
