#pragma once
/// \file compare.hpp
/// Baseline comparison for benchmark reports: diff a BENCH_results.json
/// against a checked-in bench/baselines/*.json with a per-metric relative
/// tolerance. Both files use the RunReport schema; the baseline may add a
/// "tolerance" field on any metric to override the default. The compared
/// value is the per-metric "median".

#include <cstddef>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace raa::report {

struct CompareOptions {
  /// Relative tolerance (rel_diff) applied when the baseline metric does
  /// not carry its own "tolerance" field.
  double default_tolerance = 0.05;
};

enum class DeltaKind {
  ok,          ///< within tolerance
  regression,  ///< |rel diff| beyond tolerance
  missing,     ///< metric present in the baseline, absent from the results
};

const char* to_string(DeltaKind k) noexcept;

/// One baseline metric's verdict.
struct MetricDelta {
  std::string benchmark;
  std::string metric;
  double baseline = 0.0;
  double measured = 0.0;   ///< 0 when missing
  double rel = 0.0;        ///< rel_diff(baseline, measured)
  double tolerance = 0.0;  ///< tolerance applied to this metric
  DeltaKind kind = DeltaKind::ok;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;  ///< one entry per gated baseline metric
  std::size_t extra_metrics = 0;    ///< in the results but not the baseline
  /// Baseline metrics carrying `"informational": true` (host wall-clock,
  /// throughput): recorded for trends, never gated — host noise must not
  /// fail CI.
  std::size_t informational_skipped = 0;

  std::size_t violations() const noexcept;
  bool ok() const noexcept { return violations() == 0; }
};

/// Diff `results` against `baseline`. Throws std::runtime_error when either
/// document is not a schema-versioned RunReport.
CompareResult compare(const json::Value& baseline, const json::Value& results,
                      const CompareOptions& options = {});

}  // namespace raa::report
