#include "report/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace raa::json {

namespace {

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

void dump_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

void dump_value(std::string& out, const Value& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(out, v.as_number());
  } else if (v.is_string()) {
    out.push_back('"');
    out += escape(v.as_string());
    out.push_back('"');
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      dump_value(out, a[i], indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      out.push_back('"');
      out += escape(o[i].first);
      out += indent > 0 ? "\": " : "\":";
      dump_value(out, o[i].second, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

/// Recursive-descent parser over a string_view; single-error, tagged with
/// the line/column (1-based) of the offending byte so hand-edited inputs
/// (scenario files) get an actionable diagnostic.
struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string err;

  static constexpr int kMaxDepth = 64;

  std::string position(std::size_t at) const {
    std::size_t line = 1;
    std::size_t bol = 0;  // offset of the current line's first byte
    for (std::size_t k = 0; k < at && k < s.size(); ++k) {
      if (s[k] == '\n') {
        ++line;
        bol = k + 1;
      }
    }
    return "line " + std::to_string(line) + ", column " +
           std::to_string(at - bol + 1);
  }

  bool fail(const std::string& msg) { return fail_at(msg, i); }

  bool fail_at(const std::string& msg, std::size_t at) {
    if (err.empty()) err = msg + " at " + position(at);
    return false;
  }

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }

  bool consume(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) == word) {
      i += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool hex4(unsigned& out) {
    if (i + 4 > s.size()) return fail("truncated \\u escape");
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + static_cast<std::size_t>(k)];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    i += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (true) {
      if (i >= s.size()) return fail("unterminated string");
      const char c = s[i++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i >= s.size()) return fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (i + 1 < s.size() && s[i] == '\\' && s[i + 1] == 'u') {
              i += 2;
              unsigned lo = 0;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(double& out) {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-'))
      ++i;
    const auto res = std::from_chars(s.data() + start, s.data() + i, out);
    if (res.ec != std::errc{} || res.ptr != s.data() + i) {
      i = start;
      return fail("bad number");
    }
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Value{nullptr};
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Value{true};
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Value{false};
      return true;
    }
    if (c == '"') {
      std::string str;
      if (!parse_string(str)) return false;
      out = Value{std::move(str)};
      return true;
    }
    if (c == '[') {
      ++i;
      Array arr;
      skip_ws();
      if (consume(']')) {
        out = Value{std::move(arr)};
        return true;
      }
      while (true) {
        Value elem;
        if (!parse_value(elem, depth + 1)) return false;
        arr.push_back(std::move(elem));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
      out = Value{std::move(arr)};
      return true;
    }
    if (c == '{') {
      ++i;
      Object obj;
      skip_ws();
      if (consume('}')) {
        out = Value{std::move(obj)};
        return true;
      }
      while (true) {
        skip_ws();
        const std::size_t key_pos = i;
        std::string key;
        if (!parse_string(key)) return false;
        for (const auto& member : obj)
          if (member.first == key)
            return fail_at("duplicate object key \"" + escape(key) + "\"",
                           key_pos);
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value val;
        if (!parse_value(val, depth + 1)) return false;
        obj.emplace_back(std::move(key), std::move(val));
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
      out = Value{std::move(obj)};
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      double d = 0;
      if (!parse_number(d)) return false;
      out = Value{d};
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

Value* Value::find(std::string_view key) noexcept {
  return const_cast<Value*>(static_cast<const Value*>(this)->find(key));
}

Value& Value::set(std::string key, Value v) {
  if (is_null()) v_ = Object{};
  auto& obj = as_object();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj.emplace_back(std::move(key), std::move(v));
  return obj.back().second;
}

void Value::push_back(Value v) {
  if (is_null()) v_ = Array{};
  as_array().push_back(std::move(v));
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(out, *this, indent, 0);
  return out;
}

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  Parser p{text};
  Value v;
  if (!p.parse_value(v, 0)) {
    if (error) *error = p.err;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    if (error) *error = "trailing characters at " + p.position(p.i);
    return std::nullopt;
  }
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace raa::json
