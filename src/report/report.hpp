#pragma once
/// \file report.hpp
/// Machine-readable benchmark reports. Every figure/ablation bench records
/// its headline numbers into a BenchReport; a RunReport aggregates all
/// benchmarks of one invocation plus the environment (build type, compiler,
/// git sha) and serialises to the BENCH_results.json schema documented in
/// docs/BENCHMARKS.md. Repetition statistics (min/median/mean/stddev) reuse
/// common/stats.

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "report/json.hpp"

namespace raa::report {

/// Bumped whenever the JSON layout changes incompatibly; compare refuses
/// to diff files with a different version.
inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "raa-bench-results";

/// Schema marker of the fuzz summary raa_fuzz emits (src/fuzz/). Kept in
/// the report layer next to the bench schema so every machine-readable
/// artifact the repo produces declares itself in one place.
inline constexpr int kFuzzSchemaVersion = 1;
inline constexpr const char* kFuzzSchemaName = "raa-fuzz-summary";

/// Schema markers of the fleet artifacts (src/fleet/): the job manifest
/// raa_fleet ingests and the merged per-run index it always writes.
inline constexpr int kFleetManifestSchemaVersion = 1;
inline constexpr const char* kFleetManifestSchemaName = "raa-fleet-manifest";
inline constexpr int kFleetIndexSchemaVersion = 1;
inline constexpr const char* kFleetIndexSchemaName = "raa-fleet-index";

/// Pretty-print any JSON value to a file (trailing newline included);
/// returns false and fills `error` on I/O failure. Shared by the fuzz
/// summary/repro writers and ad-hoc tools so file handling lives once.
bool write_json_file(const json::Value& v, const std::string& path,
                     std::string* error = nullptr);

/// Build/toolchain provenance embedded in every report.
struct Environment {
  std::string build_type;  ///< CMake config (Release, Debug, ...)
  std::string compiler;    ///< e.g. "GCC 12.2.0"
  std::string git_sha;     ///< configure-time short sha, or "unknown"
  std::string os;          ///< "linux", "darwin", ...

  static Environment capture();
  json::Value to_json() const;
};

/// One metric: a named series of per-repetition samples plus metadata.
/// `informational` marks host-dependent measurements (wall-clock seconds,
/// accesses/sec): they are serialized like any other metric so trends
/// accumulate, but the baseline comparison never gates on them (host noise
/// must not fail CI — see docs/BENCHMARKS.md).
class Metric {
 public:
  Metric(std::string name, std::string unit, std::optional<double> paper_value,
         bool informational = false)
      : name_(std::move(name)),
        unit_(std::move(unit)),
        paper_value_(paper_value),
        informational_(informational) {}

  const std::string& name() const noexcept { return name_; }
  const std::string& unit() const noexcept { return unit_; }
  std::optional<double> paper_value() const noexcept { return paper_value_; }
  bool informational() const noexcept { return informational_; }
  const std::vector<double>& samples() const noexcept { return samples_; }

  void add_sample(double v) { samples_.push_back(v); }

  /// count/mean/stddev/min/max over the samples (common/stats Welford).
  Summary summary() const noexcept;
  double median() const;

  json::Value to_json() const;

 private:
  std::string name_;
  std::string unit_;
  std::optional<double> paper_value_;
  bool informational_ = false;
  std::vector<double> samples_;
};

/// Per-benchmark aggregation: parameters + metrics.
class BenchReport {
 public:
  BenchReport(std::string name, std::string paper_ref)
      : name_(std::move(name)), paper_ref_(std::move(paper_ref)) {}

  const std::string& name() const noexcept { return name_; }

  /// Record the effective value of a bench parameter (e.g. tiles=64).
  /// Re-setting a key overwrites; repetition-idempotent.
  void set_param(const std::string& key, const std::string& value);

  /// Get-or-create a metric. unit/paper_value/informational are taken
  /// from the first call for a given name; later calls just return the
  /// series.
  Metric& metric(const std::string& name, const std::string& unit = "",
                 std::optional<double> paper_value = std::nullopt,
                 bool informational = false);

  /// Shorthand: metric(...).add_sample(value).
  void record(const std::string& name, double value,
              const std::string& unit = "",
              std::optional<double> paper_value = std::nullopt);

  /// Record a host-dependent (informational) sample: serialized into the
  /// report but exempt from the baseline comparison's two-sided gate.
  void record_info(const std::string& name, double value,
                   const std::string& unit = "");

  /// Merge another report of the same benchmark into this one: params
  /// overwrite, metric samples append in `other`'s insertion order. The
  /// parallel bench harness records each (benchmark, repetition) unit
  /// into a private BenchReport and absorbs them in registration order,
  /// which keeps the merged JSON identical to a serial run's.
  void absorb(const BenchReport& other);

  const std::vector<Metric>& metrics() const noexcept { return metrics_; }

  json::Value to_json() const;

 private:
  std::string name_;
  std::string paper_ref_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<Metric> metrics_;
};

/// Whole-run aggregation: environment + repetition count + all benchmarks.
class RunReport {
 public:
  explicit RunReport(int reps) : reps_(reps), env_(Environment::capture()) {}

  /// Total host wall-clock of the run (informational; serialized as a
  /// top-level "wall_seconds" field, never compared against baselines).
  void set_wall_seconds(double s) { wall_seconds_ = s; }

  /// Attach an observability snapshot (obs::Registry::snapshot_json()).
  /// Serialized as a quarantined top-level "obs" member that the baseline
  /// comparison never reads; absent unless explicitly set, so reports
  /// from untraced runs are byte-identical to before the obs layer.
  void set_obs(json::Value v) { obs_ = std::move(v); }

  /// Get-or-create the report for one benchmark.
  BenchReport& benchmark(const std::string& name,
                         const std::string& paper_ref);

  const std::vector<BenchReport>& benchmarks() const noexcept {
    return benchmarks_;
  }

  json::Value to_json() const;

  /// Pretty-print to a file; returns false and fills `error` on I/O
  /// failure.
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  int reps_;
  Environment env_;
  std::optional<double> wall_seconds_;
  std::optional<json::Value> obs_;
  std::vector<BenchReport> benchmarks_;
};

}  // namespace raa::report
