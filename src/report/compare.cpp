#include "report/compare.hpp"

#include <stdexcept>

#include "common/stats.hpp"
#include "report/report.hpp"

namespace raa::report {

namespace {

/// Validate the schema header and return the "benchmarks" array.
const json::Array& benchmarks_of(const json::Value& doc, const char* label) {
  const std::string where{label};
  if (!doc.is_object())
    throw std::runtime_error(where + ": not a JSON object");
  const auto* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != kSchemaName)
    throw std::runtime_error(where + ": missing schema marker \"" +
                             kSchemaName + "\"");
  const auto* version = doc.find("schema_version");
  if (!version || !version->is_number() ||
      static_cast<int>(version->as_number()) != kSchemaVersion)
    throw std::runtime_error(where + ": unsupported schema_version (want " +
                             std::to_string(kSchemaVersion) + ")");
  const auto* benches = doc.find("benchmarks");
  if (!benches || !benches->is_array())
    throw std::runtime_error(where + ": missing \"benchmarks\" array");
  return benches->as_array();
}

const std::string* name_of(const json::Value& v) {
  const auto* n = v.find("name");
  return n && n->is_string() ? &n->as_string() : nullptr;
}

/// Find the metric object for benchmark/metric in a benchmarks array.
const json::Value* find_metric(const json::Array& benches,
                               const std::string& bench_name,
                               const std::string& metric_name) {
  for (const auto& b : benches) {
    const auto* bn = name_of(b);
    if (!bn || *bn != bench_name) continue;
    const auto* metrics = b.find("metrics");
    if (!metrics || !metrics->is_array()) return nullptr;
    for (const auto& m : metrics->as_array()) {
      const auto* mn = name_of(m);
      if (mn && *mn == metric_name) return &m;
    }
    return nullptr;
  }
  return nullptr;
}

std::size_t count_metrics(const json::Array& benches) {
  std::size_t n = 0;
  for (const auto& b : benches) {
    const auto* metrics = b.find("metrics");
    if (metrics && metrics->is_array()) n += metrics->as_array().size();
  }
  return n;
}

}  // namespace

const char* to_string(DeltaKind k) noexcept {
  switch (k) {
    case DeltaKind::ok: return "ok";
    case DeltaKind::regression: return "REGRESSION";
    case DeltaKind::missing: return "MISSING";
  }
  return "?";
}

std::size_t CompareResult::violations() const noexcept {
  std::size_t n = 0;
  for (const auto& d : deltas)
    if (d.kind != DeltaKind::ok) ++n;
  return n;
}

CompareResult compare(const json::Value& baseline, const json::Value& results,
                      const CompareOptions& options) {
  const auto& base_benches = benchmarks_of(baseline, "baseline");
  const auto& res_benches = benchmarks_of(results, "results");

  CompareResult out;
  std::size_t matched = 0;
  for (const auto& b : base_benches) {
    const auto* bench_name = name_of(b);
    const auto* metrics = b.find("metrics");
    // A malformed baseline must fail loudly, not silently disable the
    // regression gate for the affected metric.
    if (!bench_name || !metrics || !metrics->is_array())
      throw std::runtime_error(
          "baseline: benchmark entry without \"name\"/\"metrics\"");
    for (const auto& m : metrics->as_array()) {
      const auto* metric_name = name_of(m);
      const auto* base_median = m.find("median");
      if (!metric_name || !base_median || !base_median->is_number())
        throw std::runtime_error(
            "baseline: metric without \"name\"/\"median\" in benchmark \"" +
            *bench_name + "\"");
      // Informational metrics (host wall-clock / throughput) are tracked
      // for trends but exempt from the two-sided gate.
      if (const auto* info = m.find("informational");
          info && info->is_bool() && info->as_bool()) {
        ++out.informational_skipped;
        continue;
      }

      MetricDelta d;
      d.benchmark = *bench_name;
      d.metric = *metric_name;
      d.baseline = base_median->as_number();
      d.tolerance = options.default_tolerance;
      if (const auto* tol = m.find("tolerance");
          tol && tol->is_number())
        d.tolerance = tol->as_number();

      const auto* measured =
          find_metric(res_benches, *bench_name, *metric_name);
      const json::Value* measured_median =
          measured ? measured->find("median") : nullptr;
      if (!measured_median || !measured_median->is_number()) {
        d.kind = DeltaKind::missing;
      } else {
        ++matched;
        d.measured = measured_median->as_number();
        d.rel = rel_diff(d.baseline, d.measured);
        d.kind = d.rel > d.tolerance ? DeltaKind::regression : DeltaKind::ok;
      }
      out.deltas.push_back(std::move(d));
    }
  }
  const std::size_t res_total = count_metrics(res_benches);
  out.extra_metrics = res_total > matched ? res_total - matched : 0;
  return out;
}

}  // namespace raa::report
