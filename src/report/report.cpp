#include "report/report.hpp"

#include <fstream>

// Generated at build time (cmake/git_sha.cmake); defines RAA_GIT_SHA with
// the current short HEAD sha. Guarded so the file also compiles in builds
// that don't wire up the generator.
#ifdef RAA_HAVE_GIT_SHA_HEADER
#include "raa_git_sha.hpp"
#endif

namespace raa::report {

Environment Environment::capture() {
  Environment e;
#ifdef RAA_BUILD_TYPE
  e.build_type = RAA_BUILD_TYPE;
#else
  e.build_type = "unknown";
#endif
#if defined(__clang__)
  e.compiler = "Clang " __clang_version__;
#elif defined(__GNUC__)
  e.compiler = "GCC " __VERSION__;
#else
  e.compiler = "unknown";
#endif
#ifdef RAA_GIT_SHA
  e.git_sha = RAA_GIT_SHA;
#else
  e.git_sha = "unknown";
#endif
#if defined(__linux__)
  e.os = "linux";
#elif defined(__APPLE__)
  e.os = "darwin";
#elif defined(_WIN32)
  e.os = "windows";
#else
  e.os = "unknown";
#endif
  return e;
}

json::Value Environment::to_json() const {
  json::Value v{json::Object{}};
  v.set("build_type", build_type);
  v.set("compiler", compiler);
  v.set("git_sha", git_sha);
  v.set("os", os);
  return v;
}

Summary Metric::summary() const noexcept { return summarize(samples_); }

double Metric::median() const { return raa::median(samples_); }

json::Value Metric::to_json() const {
  json::Value v{json::Object{}};
  v.set("name", name_);
  if (!unit_.empty()) v.set("unit", unit_);
  if (paper_value_) v.set("paper_value", *paper_value_);
  if (informational_) v.set("informational", true);
  const Summary s = summary();
  v.set("count", s.count);
  v.set("min", s.min);
  v.set("median", median());
  v.set("mean", s.mean);
  v.set("max", s.max);
  v.set("stddev", s.stddev);
  json::Value samples{json::Array{}};
  for (const double x : samples_) samples.push_back(x);
  v.set("samples", std::move(samples));
  return v;
}

void BenchReport::set_param(const std::string& key, const std::string& value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  params_.emplace_back(key, value);
}

Metric& BenchReport::metric(const std::string& name, const std::string& unit,
                            std::optional<double> paper_value,
                            bool informational) {
  for (auto& m : metrics_)
    if (m.name() == name) return m;
  metrics_.emplace_back(name, unit, paper_value, informational);
  return metrics_.back();
}

void BenchReport::record(const std::string& name, double value,
                         const std::string& unit,
                         std::optional<double> paper_value) {
  metric(name, unit, paper_value).add_sample(value);
}

void BenchReport::record_info(const std::string& name, double value,
                              const std::string& unit) {
  metric(name, unit, std::nullopt, /*informational=*/true).add_sample(value);
}

void BenchReport::absorb(const BenchReport& other) {
  for (const auto& [k, v] : other.params_) set_param(k, v);
  for (const Metric& m : other.metrics_) {
    Metric& mine =
        metric(m.name(), m.unit(), m.paper_value(), m.informational());
    for (const double s : m.samples()) mine.add_sample(s);
  }
}

json::Value BenchReport::to_json() const {
  json::Value v{json::Object{}};
  v.set("name", name_);
  v.set("paper_reference", paper_ref_);
  if (!params_.empty()) {
    json::Value params{json::Object{}};
    for (const auto& [k, val] : params_) params.set(k, val);
    v.set("params", std::move(params));
  }
  json::Value metrics{json::Array{}};
  for (const auto& m : metrics_) metrics.push_back(m.to_json());
  v.set("metrics", std::move(metrics));
  return v;
}

BenchReport& RunReport::benchmark(const std::string& name,
                                  const std::string& paper_ref) {
  for (auto& b : benchmarks_)
    if (b.name() == name) return b;
  benchmarks_.emplace_back(name, paper_ref);
  return benchmarks_.back();
}

json::Value RunReport::to_json() const {
  json::Value v{json::Object{}};
  v.set("schema", kSchemaName);
  v.set("schema_version", kSchemaVersion);
  v.set("reps", reps_);
  if (wall_seconds_) v.set("wall_seconds", *wall_seconds_);
  v.set("environment", env_.to_json());
  json::Value benches{json::Array{}};
  for (const auto& b : benchmarks_) benches.push_back(b.to_json());
  v.set("benchmarks", std::move(benches));
  if (obs_) v.set("obs", *obs_);
  return v;
}

bool write_json_file(const json::Value& v, const std::string& path,
                     std::string* error) {
  std::ofstream out{path};
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << v.dump(2) << '\n';
  out.flush();
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool RunReport::write_file(const std::string& path, std::string* error) const {
  return write_json_file(to_json(), path, error);
}

}  // namespace raa::report
