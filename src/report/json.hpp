#pragma once
/// \file json.hpp
/// Minimal JSON value with a writer and parser, used by the benchmark
/// report layer (BENCH_results.json, bench/baselines/*.json). Not a
/// general-purpose JSON library: objects preserve insertion order, all
/// numbers are doubles, and there are no custom allocators or SAX hooks —
/// just enough to emit and diff benchmark reports without an external
/// dependency.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace raa::json {

class Value;

/// Arrays are plain vectors of values.
using Array = std::vector<Value>;

/// Objects are insertion-ordered member lists. The parser rejects
/// duplicate keys (a hand-edited scenario/baseline file with a repeated
/// key is almost certainly a mistake, and silently keeping one of the two
/// values would mask it); hand-built Objects may still contain them, and
/// find() returns the first match.
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

/// A JSON document node: null, bool, number, string, array or object.
class Value {
 public:
  Value() noexcept : v_(nullptr) {}
  Value(std::nullptr_t) noexcept : v_(nullptr) {}
  Value(bool b) noexcept : v_(b) {}
  Value(double d) noexcept : v_(d) {}
  Value(int i) noexcept : v_(static_cast<double>(i)) {}
  Value(long i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned long i) noexcept : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string{s}) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  bool is_bool() const noexcept { return holds<bool>(); }
  bool is_number() const noexcept { return holds<double>(); }
  bool is_string() const noexcept { return holds<std::string>(); }
  bool is_array() const noexcept { return holds<Array>(); }
  bool is_object() const noexcept { return holds<Object>(); }

  /// Checked accessors: the caller must have tested the type first.
  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// First member with the given key, or nullptr when absent (or when this
  /// value is not an object).
  const Value* find(std::string_view key) const noexcept;
  Value* find(std::string_view key) noexcept;

  /// Insert or overwrite a member; turns a null value into an object.
  Value& set(std::string key, Value v);

  /// Append to an array; turns a null value into an array.
  void push_back(Value v);

  /// Render as JSON text. indent == 0 produces a compact single line;
  /// indent > 0 pretty-prints with that many spaces per nesting level.
  /// Non-finite numbers are emitted as null (JSON has no NaN/Inf).
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. Returns nullopt on malformed input
  /// (including duplicate object keys) and, when `error` is non-null,
  /// stores a human-readable reason with the 1-based line and column of
  /// the offending byte.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  template <typename T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(v_);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// JSON string escaping (quotes, backslash, control characters); exposed
/// separately so tests can cover it directly. Returns the escaped body
/// without surrounding quotes; non-ASCII bytes pass through (UTF-8).
std::string escape(std::string_view s);

}  // namespace raa::json
