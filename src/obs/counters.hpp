#pragma once
/// \file counters.hpp
/// Named counter/gauge/histogram registry: lazily interned, updated with
/// relaxed atomics, snapshot into JSON as the report layer's quarantined
/// "obs" section. Unlike the event rings this is always compiled in —
/// subsystems use it as their single source of truth for diagnostic
/// counts (satellite: exec.steals / rt.tasks_executed), and an idle
/// counter costs nothing until someone bumps it.
///
/// Two kinds of entries:
///  - owned Counter/Histogram cells, interned by name, stable addresses
///    for the process lifetime (call sites cache the reference once);
///  - external gauges: a callback sampled at snapshot time. Several
///    externals may share one name (e.g. one "exec.steals" per live
///    executor); value() and snapshot_json() sum them. This lets an
///    object whose counters already exist (the executor's per-slot steal
///    cells) surface them without duplicating the count anywhere.

#include <atomic>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "report/json.hpp"

namespace raa::obs {

/// Monotonic relaxed counter. add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucketed histogram: bucket i holds values v with bit_width(v)==i,
/// i.e. bucket 0 is {0}, bucket i>=1 is [2^(i-1), 2^i). 65 buckets cover
/// the full uint64 range; count and sum ride along for means.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  void record(std::uint64_t v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Process-wide registry. Interning takes a mutex; the returned references
/// are stable, so hot paths pay only the relaxed atomic op.
class Registry {
 public:
  static Registry& instance();

  /// Intern (or find) the named counter/histogram.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Attach an external gauge sampled at snapshot/value() time. The
  /// callback must stay valid until detach_external(token) and must not
  /// reenter the registry. Returns a non-zero token.
  using ExternalFn = std::function<std::uint64_t()>;
  std::uint64_t attach_external(std::string name, ExternalFn fn);
  void detach_external(std::uint64_t token) noexcept;

  /// Owned counter value plus the sum of all same-named externals.
  std::uint64_t value(std::string_view name) const;

  /// Snapshot as {"counters": {...}, "histograms": {...}}, names sorted
  /// for stable output. Histogram buckets serialize as [lower_bound,
  /// count] pairs, empty buckets omitted.
  json::Value snapshot_json() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace raa::obs
