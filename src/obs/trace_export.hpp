#pragma once
/// \file trace_export.hpp
/// Chrome trace-event JSON exporter for drained obs::Trace sessions.
/// The emitted files load in chrome://tracing and Perfetto (legacy JSON
/// importer). Three clock modes:
///
///  - sim:  only events carrying a simulated timestamp, ts = cycles
///          (rendered in the viewer as microseconds). These events are
///          all emitted by the serial commit loop, so for a fixed
///          scenario the exported bytes are identical for any --shards /
///          worker count — the TraceDeterminism contract. Host
///          timestamps and thread identities are deliberately omitted.
///  - host: every event on the host steady clock (ts = ns / 1000), one
///          trace tid per emitting thread. Not deterministic, by nature.
///  - dual: both of the above in one file as two trace "processes"
///          (pid 0 = simulated clock, pid 1 = host clock).

#include <optional>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace raa::obs {

enum class TraceClock { sim, host, dual };

/// Parse a --trace-clock= value ("sim" | "host" | "dual").
std::optional<TraceClock> parse_trace_clock(std::string_view s) noexcept;

const char* trace_clock_str(TraceClock clock) noexcept;

/// Render the trace as Chrome trace-event JSON text.
std::string chrome_trace_json(const Trace& trace, TraceClock clock);

/// chrome_trace_json + write to `path`. Returns false and fills `error`
/// (when non-null) on I/O failure.
bool write_chrome_trace(const Trace& trace, const std::string& path,
                        TraceClock clock, std::string* error = nullptr);

}  // namespace raa::obs
