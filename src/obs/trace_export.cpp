/// \file trace_export.cpp
/// Trace -> Chrome trace-event JSON. Events are decoded name-by-name
/// into human-readable args (the ring stores two opaque payload words;
/// the packing contract lives in the instrumentation sites and here).
/// Rendering goes through raa::json::Value so the number formatting is
/// the one deterministic formatter the whole repo shares.

#include "obs/trace_export.hpp"

#include <bit>
#include <cstdio>
#include <utility>

#include "report/json.hpp"

namespace raa::obs {

namespace {

const char* row_str(std::uint8_t flags) noexcept {
  switch ((flags >> kRowShift) & 0x3) {
    case kRowHit:
      return "hit";
    case kRowMiss:
      return "miss";
    case kRowConflict:
      return "conflict";
    default:
      return "none";
  }
}

/// Decode the per-name payload packing into trace args; returns the span
/// duration (in the event's own clock units) for complete-phase events.
double decode_args(const Event& e, json::Value& args) {
  double dur = 0.0;
  switch (e.name) {
    case Name::epoch:
      if (e.phase == Phase::begin) {
        args.set("tiles", static_cast<double>(e.a0));
        args.set("mode", static_cast<double>(e.a1));
      } else {
        args.set("accesses", static_cast<double>(e.a0));
        args.set("dram_line_reads", static_cast<double>(e.a1));
      }
      break;
    case Name::dram_enqueue:
      args.set("line", static_cast<double>(e.a0));
      args.set("mc", static_cast<double>(e.a1 & 0xff));
      args.set("kind", ((e.a1 >> 8) & 1) ? "write" : "read");
      args.set("burst", ((e.a1 >> 9) & 1) != 0);
      break;
    case Name::dram_complete:
      args.set("lat_cycles", std::bit_cast<double>(e.a0));
      args.set("line", static_cast<double>(e.a1));
      args.set("row", row_str(e.flags));
      break;
    case Name::dma_chunk:
      dur = std::bit_cast<double>(e.a0);
      args.set("lines", static_cast<double>(e.a1 & 0xffff));
      args.set("dram_lines", static_cast<double>((e.a1 >> 16) & 0xffff));
      args.set("core", static_cast<double>(e.a1 >> 32));
      break;
    case Name::task_run:
      dur = static_cast<double>(e.a0) / 1000.0;  // ns -> us
      args.set("task", static_cast<double>(e.a1));
      break;
    case Name::task_spawn:
      args.set("task", static_cast<double>(e.a0));
      args.set("deps", static_cast<double>(e.a1));
      break;
    case Name::steal_attempt:
      args.set("worker", static_cast<double>(e.a0));
      break;
    case Name::steal_success:
      args.set("thief", static_cast<double>(e.a0));
      args.set("victim", static_cast<double>(e.a1));
      break;
    case Name::worker_park:
      args.set("worker", static_cast<double>(e.a0));
      break;
    case Name::job:
      args.set("job", static_cast<double>(e.a0));
      if (e.phase == Phase::end) {
        args.set("status", static_cast<double>(e.a1 & 0xff));
        args.set("attempts", static_cast<double>(e.a1 >> 8));
      }
      break;
    case Name::job_retry:
      args.set("job", static_cast<double>(e.a0));
      args.set("attempt", static_cast<double>(e.a1));
      break;
    case Name::job_timeout:
      args.set("job", static_cast<double>(e.a0));
      break;
    case Name::mark:
      args.set("a0", static_cast<double>(e.a0));
      args.set("a1", static_cast<double>(e.a1));
      break;
  }
  return dur;
}

/// One trace-event object. `ts` is in the clock's display unit (cycles
/// for sim, microseconds for host); complete-phase events are stamped at
/// their END in the ring, so the start is ts - dur.
json::Value event_json(const Event& e, double ts, int pid, int tid) {
  json::Value args;
  const double dur = decode_args(e, args);
  json::Value out;
  out.set("name", name_str(e.name));
  out.set("cat", cat_str(e.cat));
  switch (e.phase) {
    case Phase::begin:
      out.set("ph", "B");
      break;
    case Phase::end:
      out.set("ph", "E");
      break;
    case Phase::complete:
      out.set("ph", "X");
      break;
    case Phase::instant:
      out.set("ph", "i");
      out.set("s", "t");
      break;
  }
  out.set("ts", e.phase == Phase::complete ? ts - dur : ts);
  if (e.phase == Phase::complete) out.set("dur", dur);
  out.set("pid", pid);
  out.set("tid", tid);
  out.set("args", std::move(args));
  return out;
}

json::Value meta_json(const char* kind, const std::string& name, int pid,
                      int tid) {
  json::Value args;
  args.set("name", name);
  json::Value out;
  out.set("name", kind);
  out.set("ph", "M");
  out.set("pid", pid);
  out.set("tid", tid);
  out.set("args", std::move(args));
  return out;
}

void append_sim_events(const Trace& trace, int pid, json::Value& events) {
  events.push_back(
      meta_json("process_name", "raa simulated clock (cycles)", pid, 0));
  events.push_back(meta_json("thread_name", "protocol-commit", pid, 0));
  for (const Event& e : trace.events) {
    if (!(e.flags & kFlagHasSim)) continue;
    events.push_back(event_json(e, e.sim_ts, pid, 0));
  }
}

void append_host_events(const Trace& trace, int pid, json::Value& events) {
  events.push_back(meta_json("process_name", "raa host clock", pid, 0));
  for (std::size_t slot = 0; slot < trace.threads.size(); ++slot)
    events.push_back(meta_json("thread_name", trace.threads[slot], pid,
                               static_cast<int>(slot)));
  for (const Event& e : trace.events)
    events.push_back(event_json(e, static_cast<double>(e.host_ns) / 1000.0,
                                pid, static_cast<int>(e.slot)));
}

}  // namespace

std::optional<TraceClock> parse_trace_clock(std::string_view s) noexcept {
  if (s == "sim") return TraceClock::sim;
  if (s == "host") return TraceClock::host;
  if (s == "dual") return TraceClock::dual;
  return std::nullopt;
}

const char* trace_clock_str(TraceClock clock) noexcept {
  switch (clock) {
    case TraceClock::sim:
      return "sim";
    case TraceClock::host:
      return "host";
    case TraceClock::dual:
      return "dual";
  }
  return "unknown";
}

std::string chrome_trace_json(const Trace& trace, TraceClock clock) {
  json::Value events{json::Array{}};
  switch (clock) {
    case TraceClock::sim:
      append_sim_events(trace, 0, events);
      break;
    case TraceClock::host:
      append_host_events(trace, 0, events);
      break;
    case TraceClock::dual:
      append_sim_events(trace, 0, events);
      append_host_events(trace, 1, events);
      break;
  }
  json::Value other;
  other.set("schema", "raa-trace");
  other.set("schema_version", 1);
  other.set("clock", trace_clock_str(clock));
  other.set("dropped", static_cast<double>(trace.dropped));
  json::Value doc;
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("otherData", std::move(other));
  return doc.dump(1) + "\n";
}

bool write_chrome_trace(const Trace& trace, const std::string& path,
                        TraceClock clock, std::string* error) {
  const std::string text = chrome_trace_json(trace, clock);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace raa::obs
