/// \file counters.cpp
/// Registry storage: a deque of named cells (deque => stable addresses
/// across intern calls) plus the external-gauge list, all behind one
/// mutex that only interning, attachment and snapshots take.

#include "obs/counters.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace raa::obs {

struct Registry::Impl {
  struct CounterEntry {
    std::string name;
    Counter cell;
  };
  struct HistogramEntry {
    std::string name;
    Histogram cell;
  };
  struct External {
    std::uint64_t token;
    std::string name;
    ExternalFn fn;
  };

  mutable std::mutex mutex;
  std::deque<CounterEntry> counters;
  std::deque<HistogramEntry> histograms;
  std::vector<External> externals;
  std::uint64_t next_token = 1;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl i;
  return i;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};
  for (auto& e : im.counters)
    if (e.name == name) return e.cell;
  // Atomics make the entries immovable; emplace a default and name it.
  im.counters.emplace_back();
  im.counters.back().name = std::string{name};
  return im.counters.back().cell;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};
  for (auto& e : im.histograms)
    if (e.name == name) return e.cell;
  im.histograms.emplace_back();
  im.histograms.back().name = std::string{name};
  return im.histograms.back().cell;
}

std::uint64_t Registry::attach_external(std::string name, ExternalFn fn) {
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};
  const std::uint64_t token = im.next_token++;
  im.externals.push_back(
      Impl::External{token, std::move(name), std::move(fn)});
  return token;
}

void Registry::detach_external(std::uint64_t token) noexcept {
  if (token == 0) return;
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};
  std::erase_if(im.externals,
                [token](const Impl::External& e) { return e.token == token; });
}

std::uint64_t Registry::value(std::string_view name) const {
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};
  std::uint64_t v = 0;
  for (const auto& e : im.counters)
    if (e.name == name) v += e.cell.get();
  for (const auto& e : im.externals)
    if (e.name == name) v += e.fn();
  return v;
}

json::Value Registry::snapshot_json() const {
  Impl& im = impl();
  const std::scoped_lock lock{im.mutex};

  // Merge owned counters and external gauges, summing same-named
  // entries; std::map gives the sorted order the contract promises.
  std::map<std::string, std::uint64_t> merged;
  for (const auto& e : im.counters) merged[e.name] += e.cell.get();
  for (const auto& e : im.externals) merged[e.name] += e.fn();

  // Start from explicit empty objects so a bare registry snapshots as
  // {"counters": {}, ...}, not null.
  json::Value counters{json::Object{}};
  for (const auto& [name, v] : merged)
    counters.set(name, static_cast<double>(v));

  std::map<std::string, const Histogram*> hists;
  for (const auto& e : im.histograms) hists[e.name] = &e.cell;
  json::Value histograms{json::Object{}};
  for (const auto& [name, h] : hists) {
    json::Value entry;
    entry.set("count", static_cast<double>(h->count()));
    entry.set("sum", static_cast<double>(h->sum()));
    json::Value buckets{json::Array{}};
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = h->bucket(i);
      if (c == 0) continue;
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
      buckets.push_back(json::Value{
          json::Array{json::Value{lo}, json::Value{static_cast<double>(c)}}});
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }

  json::Value out;
  out.set("counters", std::move(counters));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace raa::obs
