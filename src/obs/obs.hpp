#pragma once
/// \file obs.hpp
/// Unified tracing layer: lock-free per-thread bounded event rings with
/// dual timestamps (simulated cycles from memsim's commit clock AND host
/// steady-clock nanoseconds), drained post-run into a raa::obs::Trace.
///
/// Design contract (see docs/OBSERVABILITY.md):
///  - The hot path is one relaxed-atomic bool load when tracing is off,
///    and one TLS lookup + five relaxed word stores + one release store
///    when it is on. No locks, no allocation after a thread's first event.
///  - Compile-time gate: building with -DRAA_OBS_DISABLED (CMake option
///    RAA_OBS=OFF) turns the RAA_OBS_*_EVENT macros into no-ops. The
///    library symbols themselves are identical in both configurations so
///    mixed objects never violate the ODR; a TU compiled with the gate
///    off simply never emits.
///  - Determinism: every simulated-clock event is emitted by the serial
///    protocol commit loop (ROADMAP "parallelism contract"), so the
///    commit thread's ring holds them in an identical sequence for any
///    --shards/worker count. The sim-clock exporter (trace_export.hpp)
///    filters to sim-stamped events and preserves ring order, which makes
///    the exported bytes reproducible (TraceDeterminism suite).
///  - Ring overflow overwrites the oldest records and bumps a drop count;
///    a drain that races an in-flight *host-domain* writer on a wrapped
///    ring can decode one torn logical record (the words are individually
///    atomic, so this is memory-safe and TSan-clean, merely stale).
///    Sim-domain drains happen after the run on the same thread: exact.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifdef RAA_OBS_DISABLED
#define RAA_OBS_ENABLED 0
#else
#define RAA_OBS_ENABLED 1
#endif

namespace raa::obs {

/// Event category — one per instrumented subsystem.
enum class Cat : std::uint8_t { memsim = 0, exec, rt, fleet, app };

/// Interned event names. Adding one: append here AND to kNameStrings in
/// obs.cpp (static_assert pins the sizes together).
enum class Name : std::uint16_t {
  epoch = 0,       ///< memsim run span (B/E), sim clock
  dram_enqueue,    ///< line request handed to the DRAM backend (instant)
  dram_complete,   ///< backend completion; flags carry the row outcome
  dma_chunk,       ///< SPM DMA chunk mapped (complete; a0 = latency bits)
  task_spawn,      ///< runtime task created (instant)
  task_run,        ///< task body execution (complete; a0 = host ns)
  steal_attempt,   ///< executor steal sweep started (instant)
  steal_success,   ///< executor stole an item (instant)
  worker_park,     ///< worker blocked in the Notifier (B/E)
  job,             ///< fleet job span, first submit -> finalize (B/E)
  job_retry,       ///< fleet retry scheduled (instant)
  job_timeout,     ///< fleet watchdog cancelled a job (instant)
  mark             ///< free-form application marker
};

enum class Phase : std::uint8_t { instant = 0, begin, end, complete };

/// Flag bits (8 available). Bit 0: the sim timestamp is valid. Bits 1-2:
/// DRAM row outcome for dram_complete (0 none, 1 hit, 2 miss, 3 conflict).
inline constexpr std::uint8_t kFlagHasSim = 0x01;
inline constexpr unsigned kRowShift = 1;
inline constexpr std::uint8_t kRowNone = 0;
inline constexpr std::uint8_t kRowHit = 1;
inline constexpr std::uint8_t kRowMiss = 2;
inline constexpr std::uint8_t kRowConflict = 3;

/// A decoded event, produced by stop(). The binary ring record is five
/// 64-bit words: [sim bits, host ns, packed ids, a0, a1].
struct Event {
  double sim_ts = 0.0;        ///< simulated cycles; valid iff kFlagHasSim
  std::uint64_t host_ns = 0;  ///< steady-clock ns since session start
  Name name = Name::mark;
  Cat cat = Cat::app;
  Phase phase = Phase::instant;
  std::uint8_t flags = 0;
  std::uint64_t a0 = 0;  ///< payload word 0 (meaning depends on name)
  std::uint64_t a1 = 0;  ///< payload word 1
  std::uint32_t slot = 0;  ///< ring slot == per-session thread index
};

/// Drained session: events grouped by ring (ring order within a slot is
/// emission order), thread names indexed by slot, and the number of
/// records lost to ring wrap-around.
struct Trace {
  std::vector<Event> events;
  std::vector<std::string> threads;
  std::uint64_t dropped = 0;
};

struct SessionOptions {
  /// Events per thread ring; rounded up to a power of two, minimum 64.
  std::size_t ring_capacity = std::size_t{1} << 16;
};

namespace detail {
/// Runtime gate. Read relaxed on every emit attempt; written by
/// start()/stop() under the registry mutex.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while a tracing session is active. The macro fast path.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Record one event on the calling thread's ring. No-op unless a session
/// is active. `flags` should include kFlagHasSim when `sim_ts` is real.
void emit(Cat cat, Name name, Phase phase, std::uint8_t flags, double sim_ts,
          std::uint64_t a0, std::uint64_t a1);

inline void emit_sim(Cat cat, Name name, Phase phase, double sim_ts,
                     std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                     std::uint8_t extra_flags = 0) {
  emit(cat, name, phase, static_cast<std::uint8_t>(kFlagHasSim | extra_flags),
       sim_ts, a0, a1);
}

inline void emit_host(Cat cat, Name name, Phase phase, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0) {
  emit(cat, name, phase, 0, 0.0, a0, a1);
}

/// Begin a session. Returns false (and changes nothing) if one is already
/// active. Rings are allocated lazily, on each thread's first emit.
bool start(const SessionOptions& options = {});

/// True between start() and stop().
bool active() noexcept;

/// End the session and drain every ring. Threads appear in first-emit
/// order (host-timing dependent; the sim exporter does not rely on it).
Trace stop();

/// Process-lifetime count of ring allocations — lets tests assert that a
/// disabled path allocated nothing.
std::uint64_t ring_allocations() noexcept;

/// Label the calling thread in subsequent drains ("exec-w3", "fleet").
void set_thread_name(std::string name);

const char* name_str(Name name) noexcept;
const char* cat_str(Cat cat) noexcept;
const char* phase_str(Phase phase) noexcept;

}  // namespace raa::obs

/// Emission macros — the only entry points instrumented code should use.
/// They compile away entirely under RAA_OBS_DISABLED (the operands are
/// kept type-checked but dead, so sites never grow unused-variable
/// warnings) and cost one relaxed load + branch when tracing is off.
#if RAA_OBS_ENABLED
#define RAA_OBS_SIM_EVENT(cat, name, phase, sim_ts, a0, a1)                  \
  do {                                                                       \
    if (::raa::obs::enabled())                                               \
      ::raa::obs::emit_sim(::raa::obs::Cat::cat, ::raa::obs::Name::name,     \
                           ::raa::obs::Phase::phase, (sim_ts), (a0), (a1));  \
  } while (0)
#define RAA_OBS_SIM_EVENT_F(cat, name, phase, sim_ts, a0, a1, extra_flags)   \
  do {                                                                       \
    if (::raa::obs::enabled())                                               \
      ::raa::obs::emit_sim(::raa::obs::Cat::cat, ::raa::obs::Name::name,     \
                           ::raa::obs::Phase::phase, (sim_ts), (a0), (a1),   \
                           (extra_flags));                                   \
  } while (0)
#define RAA_OBS_HOST_EVENT(cat, name, phase, a0, a1)                         \
  do {                                                                       \
    if (::raa::obs::enabled())                                               \
      ::raa::obs::emit_host(::raa::obs::Cat::cat, ::raa::obs::Name::name,    \
                            ::raa::obs::Phase::phase, (a0), (a1));           \
  } while (0)
#else
#define RAA_OBS_SIM_EVENT(cat, name, phase, sim_ts, a0, a1)                  \
  do {                                                                       \
    if (false) {                                                             \
      static_cast<void>(sim_ts);                                             \
      static_cast<void>(a0);                                                 \
      static_cast<void>(a1);                                                 \
    }                                                                        \
  } while (0)
#define RAA_OBS_SIM_EVENT_F(cat, name, phase, sim_ts, a0, a1, extra_flags)   \
  do {                                                                       \
    if (false) {                                                             \
      static_cast<void>(sim_ts);                                             \
      static_cast<void>(a0);                                                 \
      static_cast<void>(a1);                                                 \
      static_cast<void>(extra_flags);                                        \
    }                                                                        \
  } while (0)
#define RAA_OBS_HOST_EVENT(cat, name, phase, a0, a1)                         \
  do {                                                                       \
    if (false) {                                                             \
      static_cast<void>(a0);                                                 \
      static_cast<void>(a1);                                                 \
    }                                                                        \
  } while (0)
#endif
