/// \file obs.cpp
/// Ring storage and session lifecycle for the tracing layer. The rings
/// store events as arrays of relaxed std::atomic<uint64_t> words (plain
/// MOVs on x86) with the head published by a release store, so concurrent
/// emit/drain is data-race-free under TSan without any locking on the
/// emit path. The registry of rings (one per emitting thread per session)
/// lives behind a mutex that only the slow path — a thread's first emit
/// of a session — and start()/stop() take.

#include "obs/obs.hpp"

#include <bit>
#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

namespace raa::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kWordsPerEvent = 5;

std::uint64_t pack_ids(Name name, Cat cat, Phase phase,
                       std::uint8_t flags) noexcept {
  return static_cast<std::uint64_t>(name) |
         (static_cast<std::uint64_t>(cat) << 16) |
         (static_cast<std::uint64_t>(phase) << 24) |
         (static_cast<std::uint64_t>(flags) << 32);
}

/// One bounded ring, owned by (at most) one writer thread; the drainer
/// reads it under the registry mutex after clearing the enabled gate.
struct Ring {
  explicit Ring(std::size_t capacity_events)
      : capacity(capacity_events),
        mask(capacity_events - 1),
        words(std::make_unique<std::atomic<std::uint64_t>[]>(
            capacity_events * kWordsPerEvent)) {}

  void write(double sim_ts, std::uint64_t host_ns, std::uint64_t packed,
             std::uint64_t a0, std::uint64_t a1) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* w = &words[(h & mask) * kWordsPerEvent];
    w[0].store(std::bit_cast<std::uint64_t>(sim_ts),
               std::memory_order_relaxed);
    w[1].store(host_ns, std::memory_order_relaxed);
    w[2].store(packed, std::memory_order_relaxed);
    w[3].store(a0, std::memory_order_relaxed);
    w[4].store(a1, std::memory_order_relaxed);
    // Publish: a drainer that acquires `head` sees the words above.
    head.store(h + 1, std::memory_order_release);
  }

  const std::size_t capacity;
  const std::size_t mask;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  std::atomic<std::uint64_t> head{0};  ///< events ever written (no wrap)
  std::string name;
  std::uint32_t slot = 0;
};

struct Global {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  ///< current session only
  SessionOptions options;
  std::chrono::steady_clock::time_point session_epoch{};
  /// Bumped by start() and stop(); a TLS cache whose generation differs
  /// re-registers (or, when no session is active, emits nowhere).
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> ring_allocs{0};
};

Global& g() {
  static Global instance;
  return instance;
}

/// The shared_ptr keeps a ring alive for a writer that is mid-emit when
/// stop() drops the registry's reference — such a write lands in a dead
/// ring and is discarded, never a use-after-free.
struct Tls {
  std::shared_ptr<Ring> ring;
  std::uint64_t generation = 0;
  std::string pending_name;
};
thread_local Tls t_tls;

std::size_t round_pow2(std::size_t v) {
  std::size_t c = 64;
  while (c < v && c < (std::size_t{1} << 30)) c <<= 1;
  return c;
}

constexpr const char* kNameStrings[] = {
    "epoch",        "dram.enqueue", "dram.complete", "dma.chunk",
    "task.spawn",   "task.run",     "steal.attempt", "steal.success",
    "worker.park",  "job",          "job.retry",     "job.timeout",
    "mark"};
static_assert(sizeof(kNameStrings) / sizeof(kNameStrings[0]) ==
              static_cast<std::size_t>(Name::mark) + 1);

constexpr const char* kCatStrings[] = {"memsim", "exec", "rt", "fleet",
                                       "app"};
static_assert(sizeof(kCatStrings) / sizeof(kCatStrings[0]) ==
              static_cast<std::size_t>(Cat::app) + 1);

constexpr const char* kPhaseStrings[] = {"instant", "begin", "end",
                                         "complete"};

}  // namespace

void emit(Cat cat, Name name, Phase phase, std::uint8_t flags, double sim_ts,
          std::uint64_t a0, std::uint64_t a1) {
  Global& G = g();
  Tls& tls = t_tls;
  if (!tls.ring ||
      tls.generation != G.generation.load(std::memory_order_acquire)) {
    // Slow path: first emit on this thread for this session (or a stale
    // cache from a previous one). Register a fresh ring.
    const std::scoped_lock lock{G.mutex};
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    auto ring = std::make_shared<Ring>(G.options.ring_capacity);
    ring->slot = static_cast<std::uint32_t>(G.rings.size());
    ring->name = tls.pending_name.empty()
                     ? "thread-" + std::to_string(ring->slot)
                     : tls.pending_name;
    G.rings.push_back(ring);
    G.ring_allocs.fetch_add(1, std::memory_order_relaxed);
    tls.ring = std::move(ring);
    tls.generation = G.generation.load(std::memory_order_relaxed);
  }
  const std::uint64_t host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - G.session_epoch)
          .count());
  tls.ring->write(sim_ts, host_ns, pack_ids(name, cat, phase, flags), a0, a1);
}

bool start(const SessionOptions& options) {
  Global& G = g();
  const std::scoped_lock lock{G.mutex};
  if (detail::g_enabled.load(std::memory_order_relaxed)) return false;
  G.options = options;
  G.options.ring_capacity = round_pow2(options.ring_capacity);
  G.rings.clear();
  G.session_epoch = std::chrono::steady_clock::now();
  G.generation.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
  return true;
}

bool active() noexcept { return enabled(); }

Trace stop() {
  Global& G = g();
  const std::scoped_lock lock{G.mutex};
  detail::g_enabled.store(false, std::memory_order_seq_cst);
  Trace out;
  for (const auto& ring : G.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        head < ring->capacity ? head : static_cast<std::uint64_t>(ring->capacity);
    out.dropped += head - n;
    out.events.reserve(out.events.size() + n);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const std::atomic<std::uint64_t>* w =
          &ring->words[(i & ring->mask) * kWordsPerEvent];
      Event e;
      e.sim_ts = std::bit_cast<double>(w[0].load(std::memory_order_relaxed));
      e.host_ns = w[1].load(std::memory_order_relaxed);
      const std::uint64_t packed = w[2].load(std::memory_order_relaxed);
      e.name = static_cast<Name>(packed & 0xffff);
      e.cat = static_cast<Cat>((packed >> 16) & 0xff);
      e.phase = static_cast<Phase>((packed >> 24) & 0xff);
      e.flags = static_cast<std::uint8_t>((packed >> 32) & 0xff);
      e.a0 = w[3].load(std::memory_order_relaxed);
      e.a1 = w[4].load(std::memory_order_relaxed);
      e.slot = ring->slot;
      out.events.push_back(e);
    }
    out.threads.push_back(ring->name);
  }
  G.rings.clear();
  // Invalidate TLS caches so a thread outliving this session re-registers
  // (or drops out) instead of writing into its retired ring forever.
  G.generation.fetch_add(1, std::memory_order_release);
  return out;
}

std::uint64_t ring_allocations() noexcept {
  return g().ring_allocs.load(std::memory_order_relaxed);
}

void set_thread_name(std::string name) {
  Tls& tls = t_tls;
  tls.pending_name = std::move(name);
  if (tls.ring) {
    Global& G = g();
    const std::scoped_lock lock{G.mutex};
    tls.ring->name = tls.pending_name;
  }
}

const char* name_str(Name name) noexcept {
  const auto i = static_cast<std::size_t>(name);
  return i <= static_cast<std::size_t>(Name::mark) ? kNameStrings[i]
                                                   : "unknown";
}

const char* cat_str(Cat cat) noexcept {
  const auto i = static_cast<std::size_t>(cat);
  return i <= static_cast<std::size_t>(Cat::app) ? kCatStrings[i] : "unknown";
}

const char* phase_str(Phase phase) noexcept {
  const auto i = static_cast<std::size_t>(phase);
  return i < 4 ? kPhaseStrings[i] : "unknown";
}

}  // namespace raa::obs
