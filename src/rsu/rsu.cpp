#include "rsu/rsu.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::rsu {

void CriticalityGovernor::prepare(const tdg::Graph& graph,
                                  const sim::MachineConfig& machine) {
  machine_ = &machine;
  critical_ = critical_tasks(graph, options_.slack_fraction);
  turbo_ = machine.dvfs.highest();
  nominal_ = machine.dvfs.nominal();
  const auto& pts = machine.dvfs.points();
  if (options_.low_point_index >= 0) {
    const auto idx = static_cast<std::size_t>(options_.low_point_index);
    RAA_CHECK(idx < pts.size());
    low_ = pts[idx];
  } else {
    // One step below nominal when available.
    low_ = pts.size() >= 3 ? pts[pts.size() - 3] : pts.front();
  }
  core_op_.assign(machine.cores, nominal_);
  task_power_w_.assign(critical_.size(), 0.0);
  power_in_use_w_ = 0.0;
  lock_free_at_ns_ = 0.0;
  reconfigs_ = 0;
  stall_ns_ = 0.0;
  budget_denials_ = 0;
}

sim::FreqDecision CriticalityGovernor::on_task_start(tdg::NodeId task,
                                                     unsigned core,
                                                     double now_ns) {
  RAA_CHECK(machine_ != nullptr && task < critical_.size());
  sim::OperatingPoint want = critical_[task] ? turbo_ : low_;

  if (options_.enforce_budget) {
    const double budget = machine_->effective_budget_w();
    // Greedy degrade: turbo -> nominal -> low -> lowest until it fits.
    const sim::OperatingPoint candidates[] = {want, nominal_, low_,
                                              machine_->dvfs.lowest()};
    bool granted = false;
    for (const auto& cand : candidates) {
      if (cand.freq_ghz > want.freq_ghz) continue;  // never upgrade
      if (power_in_use_w_ + machine_->power.busy_w(cand) <= budget + 1e-9) {
        if (!(cand == want)) ++budget_denials_;
        want = cand;
        granted = true;
        break;
      }
    }
    if (!granted) {
      // Budget fully committed: run at the lowest point anyway (a real chip
      // would throttle; we account the overshoot as lowest-point power).
      ++budget_denials_;
      want = machine_->dvfs.lowest();
    }
  }

  double stall = 0.0;
  if (!(core_op_[core] == want)) {
    ++reconfigs_;
    if (options_.reconfig.serialized) {
      // The software path takes a global lock: requests queue behind each
      // other, so the effective stall grows with the reconfiguration rate —
      // i.e. with the number of cores.
      const double grant_at = std::max(now_ns, lock_free_at_ns_);
      lock_free_at_ns_ = grant_at + options_.reconfig.latency_ns;
      stall = (grant_at - now_ns) + options_.reconfig.latency_ns;
    } else {
      stall = options_.reconfig.latency_ns;
    }
    core_op_[core] = want;
    stall_ns_ += stall;
  }

  task_power_w_[task] = machine_->power.busy_w(want);
  power_in_use_w_ += task_power_w_[task];
  return {want, stall};
}

void CriticalityGovernor::on_task_end(tdg::NodeId task, unsigned /*core*/,
                                      double /*now_ns*/) {
  RAA_CHECK(task < task_power_w_.size());
  power_in_use_w_ -= task_power_w_[task];
  task_power_w_[task] = 0.0;
  if (power_in_use_w_ < 0.0) power_in_use_w_ = 0.0;  // float dust
}

double CriticalityStudyResult::perf_improvement_sw() const {
  return fifo_nominal.makespan_ns / cats_sw.makespan_ns - 1.0;
}
double CriticalityStudyResult::perf_improvement_rsu() const {
  return fifo_nominal.makespan_ns / cats_rsu.makespan_ns - 1.0;
}
double CriticalityStudyResult::edp_improvement_sw() const {
  return fifo_nominal.edp() / cats_sw.edp() - 1.0;
}
double CriticalityStudyResult::edp_improvement_rsu() const {
  return fifo_nominal.edp() / cats_rsu.edp() - 1.0;
}

CriticalityStudyResult run_criticality_study(const tdg::Graph& graph,
                                             const sim::MachineConfig& machine,
                                             double slack_fraction) {
  CriticalityStudyResult out;
  out.fifo_nominal = sim::replay(graph, machine, sim::priority_fifo());

  CriticalityGovernor sw{{.slack_fraction = slack_fraction,
                          .reconfig = software_dvfs()}};
  out.cats_sw =
      sim::replay(graph, machine, sim::priority_bottom_level(), &sw);

  CriticalityGovernor hw{{.slack_fraction = slack_fraction,
                          .reconfig = rsu_hardware()}};
  out.cats_rsu =
      sim::replay(graph, machine, sim::priority_bottom_level(), &hw);
  return out;
}

}  // namespace raa::rsu
