#include "rsu/criticality.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::rsu {

std::vector<bool> critical_tasks(const tdg::Graph& graph,
                                 double slack_fraction, bool include_hints) {
  RAA_CHECK(slack_fraction >= 0.0 && slack_fraction < 1.0);
  std::vector<bool> mask(graph.node_count(), false);
  if (graph.node_count() == 0) return mask;

  const std::vector<double> top = graph.top_levels();
  const std::vector<double> bottom = graph.bottom_levels();
  const double cp = graph.critical_path_length();
  const double eps = 1e-9 * std::max(1.0, cp);
  const double threshold = (1.0 - slack_fraction) * cp - eps;

  for (std::size_t v = 0; v < mask.size(); ++v) {
    const bool on_path = top[v] + bottom[v] >= threshold;
    const bool hinted =
        include_hints &&
        graph.node(static_cast<tdg::NodeId>(v)).critical_hint;
    mask[v] = on_path || hinted;
  }
  return mask;
}

double critical_work_fraction(const tdg::Graph& graph,
                              const std::vector<bool>& mask) {
  RAA_CHECK(mask.size() == graph.node_count());
  const double total = graph.total_cost();
  if (total <= 0.0) return 0.0;
  double crit = 0.0;
  for (std::size_t v = 0; v < mask.size(); ++v)
    if (mask[v]) crit += graph.node(static_cast<tdg::NodeId>(v)).cost;
  return crit / total;
}

}  // namespace raa::rsu
