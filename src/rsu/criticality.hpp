#pragma once
/// \file criticality.hpp
/// Task criticality analysis (§3.1): "a task is considered critical if it
/// belongs to the critical path of the Task Dependency Graph."
///
/// Two sources are combined:
///   * graph analysis — nodes on (or within a slack band of) a longest path;
///   * programmer hints — the `critical_hint` attribute on graph nodes
///     ("task criticality can be simply annotated by the programmer").

#include <vector>

#include "runtime/graph.hpp"

namespace raa::rsu {

/// Per-node criticality mask. A node is critical when
///   top_level + bottom_level >= (1 - slack_fraction) * critical_path_length
/// or when its critical_hint is set. slack_fraction = 0 marks exactly the
/// longest-path nodes; a small slack (e.g. 0.05) also boosts near-critical
/// tasks, which is what the CATS family of schedulers does in practice.
std::vector<bool> critical_tasks(const tdg::Graph& graph,
                                 double slack_fraction = 0.0,
                                 bool include_hints = true);

/// Fraction of total work that is critical under the mask (diagnostics).
double critical_work_fraction(const tdg::Graph& graph,
                              const std::vector<bool>& mask);

}  // namespace raa::rsu
