#pragma once
/// \file rsu.hpp
/// The Runtime Support Unit (Figure 2) and its software-only counterpart.
///
/// Both governors implement the same *policy* — critical tasks run at turbo,
/// non-critical tasks at an energy-efficient point, subject to the chip
/// power budget ("based on this information and the available power budget,
/// the RSU decides the frequency of each core") — but differ in the
/// *mechanism* cost:
///
///   * SW-only DVFS: every frequency change goes through a global, serialised
///     software path (driver/lock), costing microseconds that queue up as
///     core counts grow — "the cost of reconfiguring the hardware with a
///     software-only solution rises with the number of cores due to locks
///     contention and reconfiguration overhead";
///   * RSU: a small hardware unit performs the change in ~tens of
///     nanoseconds with no serialisation — the "criticality-aware turbo
///     boost mechanism" with "negligible hardware overhead".

#include <cstdint>
#include <vector>

#include "rsu/criticality.hpp"
#include "simcore/tdg_sim.hpp"

namespace raa::rsu {

/// Reconfiguration mechanism parameters.
struct ReconfigModel {
  double latency_ns = 100.0;  ///< one frequency change
  bool serialized = false;    ///< true: changes queue on a global lock
};

/// Canonical mechanisms.
inline ReconfigModel rsu_hardware() { return {.latency_ns = 100.0,
                                              .serialized = false}; }
inline ReconfigModel software_dvfs() { return {.latency_ns = 5000.0,
                                               .serialized = true}; }

/// Criticality-aware DVFS governor (works with sim::replay).
///
/// Frequency policy: critical → highest point, non-critical → `low_point`
/// (default: one step below nominal — slow enough to save energy, fast
/// enough not to stretch the makespan). Grants are checked against the
/// machine power budget; when boosting does not fit, the task falls back to
/// nominal, and when even nominal does not fit, to the lowest point.
class CriticalityGovernor final : public sim::FrequencyGovernor {
 public:
  struct Options {
    double slack_fraction = 0.05;
    ReconfigModel reconfig = rsu_hardware();
    /// Index into the DVFS table for non-critical tasks; -1 = one below
    /// nominal.
    int low_point_index = -1;
    bool enforce_budget = true;
  };

  CriticalityGovernor() : CriticalityGovernor(Options()) {}
  explicit CriticalityGovernor(Options options) : options_(options) {}

  void prepare(const tdg::Graph& graph,
               const sim::MachineConfig& machine) override;
  sim::FreqDecision on_task_start(tdg::NodeId task, unsigned core,
                                  double now_ns) override;
  void on_task_end(tdg::NodeId task, unsigned core, double now_ns) override;

  /// Diagnostics.
  std::uint64_t reconfig_count() const noexcept { return reconfigs_; }
  double reconfig_stall_ns() const noexcept { return stall_ns_; }
  std::uint64_t budget_denials() const noexcept { return budget_denials_; }
  const std::vector<bool>& critical_mask() const noexcept { return critical_; }

 private:
  Options options_;
  const sim::MachineConfig* machine_ = nullptr;
  std::vector<bool> critical_;
  sim::OperatingPoint turbo_{};
  sim::OperatingPoint low_{};
  sim::OperatingPoint nominal_{};

  std::vector<sim::OperatingPoint> core_op_;
  std::vector<double> task_power_w_;  ///< granted power per running task
  double power_in_use_w_ = 0.0;
  double lock_free_at_ns_ = 0.0;  ///< software path serialisation point

  std::uint64_t reconfigs_ = 0;
  double stall_ns_ = 0.0;
  std::uint64_t budget_denials_ = 0;
};

/// Outcome of one §3.1 comparison run.
struct CriticalityStudyResult {
  sim::ReplayResult fifo_nominal;   ///< baseline: static scheduling
  sim::ReplayResult cats_sw;        ///< criticality DVFS, software mechanism
  sim::ReplayResult cats_rsu;       ///< criticality DVFS, RSU mechanism

  double perf_improvement_sw() const;
  double perf_improvement_rsu() const;
  double edp_improvement_sw() const;
  double edp_improvement_rsu() const;
};

/// Run the three configurations on one graph/machine.
CriticalityStudyResult run_criticality_study(
    const tdg::Graph& graph, const sim::MachineConfig& machine,
    double slack_fraction = 0.05);

}  // namespace raa::rsu
