#pragma once
/// \file sorts.hpp
/// The §3.2 sorting algorithms, implemented against the simulated vector
/// ISA (see vector/vpu.hpp):
///
///   * vsr_sort          — the paper's contribution: vectorised LSD radix
///                         sort using VPI/VLU for intra-vector conflict
///                         resolution; bucket table is NOT replicated, so
///                         wide digits (8 bits) and few passes;
///   * vector_radix_sort — prior art (Zagha-Blelloch style): per-slot
///                         replicated counters avoid conflicts without new
///                         instructions, but replication shrinks the digit
///                         (4 bits) and doubles the passes;
///   * vector_quicksort  — compress-based partitioning + in-register
///                         bitonic base case;
///   * bitonic_sort      — full bitonic mergesort (unit-stride friendly but
///                         O(n log^2 n) work);
///   * scalar_radix_sort / scalar_quicksort — the scalar baseline.
///
/// All sorts sort 32-bit keys held in vec::Elem slots, ascending, and are
/// functionally verified against std::sort by the tests.

#include <cstdint>
#include <string>
#include <vector>

#include "vector/scalar_core.hpp"
#include "vector/vpu.hpp"

namespace raa::sort {

/// Cycle outcome of one sort execution.
struct SortStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;

  double cpt(std::size_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(cycles) /
                              static_cast<double>(n);
  }
};

SortStats vsr_sort(vec::Vpu& vpu, std::vector<vec::Elem>& data);
SortStats vector_radix_sort(vec::Vpu& vpu, std::vector<vec::Elem>& data);
SortStats vector_quicksort(vec::Vpu& vpu, std::vector<vec::Elem>& data);
SortStats bitonic_sort(vec::Vpu& vpu, std::vector<vec::Elem>& data);

SortStats scalar_radix_sort(vec::ScalarCore& core,
                            std::vector<vec::Elem>& data);
SortStats scalar_quicksort(vec::ScalarCore& core,
                           std::vector<vec::Elem>& data);

/// Registry used by tests and the Figure 3 bench.
enum class Algorithm {
  vsr,
  vector_radix,
  vector_quicksort,
  bitonic,
};

const char* to_string(Algorithm a) noexcept;

/// Run `algorithm` on a fresh VPU with `config`; returns the stats.
SortStats run_vector_sort(Algorithm algorithm, const vec::VpuConfig& config,
                          std::vector<vec::Elem>& data);

}  // namespace raa::sort
