#include "sort/sorts.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace raa::sort {

using vec::Elem;
using vec::Mask;
using vec::Vpu;
using vec::Vreg;

namespace {

constexpr unsigned kKeyBits = 32;

/// In-register bitonic sort of a power-of-two block (size <= MVL), using
/// permutes + min/max + selects. Pads are the caller's responsibility.
void bitonic_in_register(Vpu& vpu, Vreg& v) {
  const std::size_t n = v.size();
  RAA_CHECK(std::has_single_bit(n));
  const Vreg iota = vpu.viota(n);
  for (std::size_t k = 2; k <= n; k <<= 1) {
    for (std::size_t j = k >> 1; j >= 1; j >>= 1) {
      const Vreg partner_idx = vpu.vxor_s(iota, j);
      const Vreg partner = vpu.vpermute(v, partner_idx);
      const Vreg mi = vpu.vmin(v, partner);
      const Vreg ma = vpu.vmax(v, partner);
      // Keep the min at position i when i is the lower index of the pair
      // XOR the descending region of this k-block.
      Mask keep_min(n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool lower = (i & j) == 0;
        const bool asc = (i & k) == 0;
        keep_min[i] = (lower == asc) ? 1 : 0;
      }
      // The mask is a constant pattern in real code (computed once per
      // (k, j) from iota); charge one ALU op for its formation.
      v = vpu.vselect(keep_min, mi, ma);
      vpu.scalar_work(0);
    }
  }
}

}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::vsr: return "vsr";
    case Algorithm::vector_radix: return "vector_radix";
    case Algorithm::vector_quicksort: return "vector_quicksort";
    case Algorithm::bitonic: return "bitonic";
  }
  return "?";
}

SortStats vsr_sort(Vpu& vpu, std::vector<Elem>& data) {
  const std::size_t n = data.size();
  const unsigned mvl = vpu.mvl();
  constexpr unsigned kDigitBits = 8;  // non-replicated table: wide digit
  constexpr std::size_t kBuckets = 1u << kDigitBits;
  const std::uint64_t start = vpu.cycles();
  const std::uint64_t instr0 = vpu.instructions();

  std::vector<Elem> hist(kBuckets);
  std::vector<Elem> out(n);
  std::vector<Elem>* src = &data;
  std::vector<Elem>* dst = &out;

  for (unsigned shift = 0; shift < kKeyBits; shift += kDigitBits) {
    // --- counting phase ---
    std::fill(hist.begin(), hist.end(), 0);
    for (std::size_t i = 0; i < kBuckets; i += mvl)
      vpu.vstore(hist.data() + i,
                 vpu.vbroadcast(0, std::min<std::size_t>(mvl, kBuckets - i)));
    for (std::size_t base = 0; base < n; base += mvl) {
      const std::size_t len = std::min<std::size_t>(mvl, n - base);
      const Vreg keys = vpu.vload(src->data() + base, len);
      const Vreg digit = vpu.vand_s(vpu.vshr_s(keys, shift), kBuckets - 1);
      const Vreg counts = vpu.vgather(hist.data(), digit);
      // VPI resolves intra-vector duplicates; VLU selects the final writer
      // per distinct digit, so one masked scatter updates the whole table.
      const Vreg prior = vpu.vpi(digit);
      const Mask last = vpu.vlu(digit);
      const Vreg updated = vpu.vadd_s(vpu.vadd(counts, prior), 1);
      vpu.vscatter_masked(hist.data(), digit, updated, last);
    }
    vpu.sync();

    // Exclusive prefix sum over the bucket table (scalar loop; 256 small
    // dependent adds).
    Elem running = 0;
    for (auto& h : hist) {
      const Elem c = h;
      h = running;
      running += c;
    }
    vpu.scalar_work(2 * kBuckets);

    // --- permutation phase ---
    for (std::size_t base = 0; base < n; base += mvl) {
      const std::size_t len = std::min<std::size_t>(mvl, n - base);
      const Vreg keys = vpu.vload(src->data() + base, len);
      const Vreg digit = vpu.vand_s(vpu.vshr_s(keys, shift), kBuckets - 1);
      const Vreg offs = vpu.vgather(hist.data(), digit);
      const Vreg prior = vpu.vpi(digit);
      const Vreg pos = vpu.vadd(offs, prior);
      vpu.vscatter(dst->data(), pos, keys);
      const Mask last = vpu.vlu(digit);
      const Vreg bumped = vpu.vadd_s(pos, 1);
      vpu.vscatter_masked(hist.data(), digit, bumped, last);
    }
    vpu.sync();
    std::swap(src, dst);
  }
  if (src != &data) data = *src;
  return {vpu.cycles() - start, vpu.instructions() - instr0};
}

SortStats vector_radix_sort(Vpu& vpu, std::vector<Elem>& data) {
  const std::size_t n = data.size();
  const unsigned mvl = vpu.mvl();
  // Replicated bookkeeping: one counter row per vector slot forces a
  // narrow digit to keep the table affordable -> twice the passes.
  constexpr unsigned kDigitBits = 4;
  constexpr std::size_t kBuckets = 1u << kDigitBits;
  const unsigned shift_mvl = static_cast<unsigned>(std::countr_zero(
      static_cast<unsigned>(mvl)));
  RAA_CHECK(std::has_single_bit(static_cast<unsigned>(mvl)));
  const std::uint64_t start = vpu.cycles();
  const std::uint64_t instr0 = vpu.instructions();

  // Slot-major segments keep the sort stable (Zagha-Blelloch): slot s owns
  // elements [s*seg, (s+1)*seg).
  const std::size_t seg = (n + mvl - 1) / mvl;
  std::vector<Elem> table(kBuckets * mvl);
  std::vector<Elem> out(n);
  std::vector<Elem>* src = &data;
  std::vector<Elem>* dst = &out;

  for (unsigned shift = 0; shift < kKeyBits; shift += kDigitBits) {
    std::fill(table.begin(), table.end(), 0);
    for (std::size_t i = 0; i < table.size(); i += mvl)
      vpu.vstore(table.data() + i, vpu.vbroadcast(0, mvl));

    const Vreg slots = vpu.viota(mvl);
    // --- counting ---
    for (std::size_t t = 0; t < seg; ++t) {
      // Gather one element per slot (strided access across segments).
      Vreg idx(mvl);
      Mask valid(mvl);
      for (std::size_t s = 0; s < mvl; ++s) {
        const std::size_t i = s * seg + t;
        idx[s] = i < n ? i : 0;
        valid[s] = i < n ? 1 : 0;
      }
      // Index formation is a strided-address mode in hardware (free).
      const Vreg keys = vpu.vgather(src->data(), idx);
      const Vreg digit = vpu.vand_s(vpu.vshr_s(keys, shift), kBuckets - 1);
      const Vreg flat = vpu.vadd(vpu.vshl_s(digit, shift_mvl), slots);
      const Vreg cnt = vpu.vgather(table.data(), flat);
      vpu.vscatter_masked(table.data(), flat, vpu.vadd_s(cnt, 1), valid);
    }
    vpu.sync();

    // Exclusive scan in (digit, slot) order — the replicated table is
    // kBuckets*mvl entries, all walked serially.
    Elem running = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      for (std::size_t s = 0; s < mvl; ++s) {
        Elem& cell = table[d * mvl + s];
        const Elem c = cell;
        cell = running;
        running += c;
      }
    }
    vpu.scalar_work(2 * kBuckets * mvl);

    // --- permutation ---
    for (std::size_t t = 0; t < seg; ++t) {
      Vreg idx(mvl);
      Mask valid(mvl);
      for (std::size_t s = 0; s < mvl; ++s) {
        const std::size_t i = s * seg + t;
        idx[s] = i < n ? i : 0;
        valid[s] = i < n ? 1 : 0;
      }
      const Vreg keys = vpu.vgather(src->data(), idx);
      const Vreg digit = vpu.vand_s(vpu.vshr_s(keys, shift), kBuckets - 1);
      const Vreg flat = vpu.vadd(vpu.vshl_s(digit, shift_mvl), slots);
      const Vreg off = vpu.vgather(table.data(), flat);
      // Clamp invalid slots to a scratch position (element n-1 rewritten
      // by its own valid slot later is avoided by masking).
      vpu.vscatter_masked(dst->data(), off, keys, valid);
      vpu.vscatter_masked(table.data(), flat, vpu.vadd_s(off, 1), valid);
    }
    vpu.sync();
    std::swap(src, dst);
  }
  if (src != &data) data = *src;
  return {vpu.cycles() - start, vpu.instructions() - instr0};
}

SortStats vector_quicksort(Vpu& vpu, std::vector<Elem>& data) {
  const std::size_t n = data.size();
  const unsigned mvl = vpu.mvl();
  const std::uint64_t start = vpu.cycles();
  const std::uint64_t instr0 = vpu.instructions();

  std::vector<std::pair<std::size_t, std::size_t>> stack;  // [lo, hi)
  stack.emplace_back(0, n);
  std::vector<Elem> left, right;

  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    const std::size_t len = hi - lo;
    if (len <= 1) continue;

    if (len <= mvl) {
      // Base case: pad to a power of two and bitonic-sort in registers.
      const std::size_t padded = std::bit_ceil(len);
      Vreg v = vpu.vload(data.data() + lo, len);
      v.resize(padded, ~Elem{0});
      bitonic_in_register(vpu, v);
      v.resize(len);
      vpu.vstore(data.data() + lo, v);
      vpu.sync();
      continue;
    }

    // Median-of-three pivot (scalar).
    const Elem a = data[lo], b = data[lo + len / 2], c = data[hi - 1];
    const Elem pivot = std::max(std::min(a, b), std::min(std::max(a, b), c));
    vpu.scalar_work(12);

    left.clear();
    right.clear();
    for (std::size_t base = lo; base < hi; base += mvl) {
      const std::size_t l = std::min<std::size_t>(mvl, hi - base);
      const Vreg v = vpu.vload(data.data() + base, l);
      const Mask m = vpu.vcmp_lt_s(v, pivot);
      const Vreg lows = vpu.vcompress(v, m);
      const Vreg highs = vpu.vcompress(v, vpu.vmask_not(m));
      left.insert(left.end(), lows.begin(), lows.end());
      right.insert(right.end(), highs.begin(), highs.end());
    }
    // The compressed runs stream back to memory with unit stores.
    for (std::size_t i = 0; i < left.size(); i += mvl) {
      const std::size_t l = std::min<std::size_t>(mvl, left.size() - i);
      vpu.vstore(data.data() + lo + i, Vreg(left.begin() + static_cast<long>(i),
                                            left.begin() + static_cast<long>(i + l)));
    }
    for (std::size_t i = 0; i < right.size(); i += mvl) {
      const std::size_t l = std::min<std::size_t>(mvl, right.size() - i);
      vpu.vstore(data.data() + lo + left.size() + i,
                 Vreg(right.begin() + static_cast<long>(i),
                      right.begin() + static_cast<long>(i + l)));
    }
    vpu.sync();

    const std::size_t mid = lo + left.size();
    if (left.empty() || right.empty()) {
      // All-equal-to-pivot degenerate split: fall back to in-place scalar
      // handling of ties (count-equal partition).
      std::sort(data.begin() + static_cast<long>(lo),
                data.begin() + static_cast<long>(hi));
      vpu.scalar_work(len * 8);
      continue;
    }
    stack.emplace_back(lo, mid);
    stack.emplace_back(mid, hi);
  }
  return {vpu.cycles() - start, vpu.instructions() - instr0};
}

SortStats bitonic_sort(Vpu& vpu, std::vector<Elem>& data) {
  const std::size_t n0 = data.size();
  const unsigned mvl = vpu.mvl();
  const std::uint64_t start = vpu.cycles();
  const std::uint64_t instr0 = vpu.instructions();
  if (n0 <= 1) return {0, 0};
  // Pad to a power of two and to at least one full vector.
  const std::size_t n =
      std::max<std::size_t>(std::bit_ceil(n0), mvl);

  data.resize(n, ~Elem{0});  // pad ascending
  for (std::size_t k = 2; k <= n; k <<= 1) {
    for (std::size_t j = k >> 1; j >= 1; j >>= 1) {
      if (j >= mvl) {
        // Cross-block stage: both halves of every pair are contiguous
        // blocks -> unit-stride loads/stores.
        for (std::size_t base = 0; base < n; base += mvl) {
          if ((base & j) != 0) continue;  // handled with its partner block
          const std::size_t partner = base ^ j;
          const Vreg a = vpu.vload(data.data() + base, mvl);
          const Vreg b = vpu.vload(data.data() + partner, mvl);
          const Vreg mi = vpu.vmin(a, b);
          const Vreg ma = vpu.vmax(a, b);
          const bool asc = (base & k) == 0;
          vpu.vstore(data.data() + base, asc ? mi : ma);
          vpu.vstore(data.data() + partner, asc ? ma : mi);
        }
      } else {
        // In-block stage: permute within registers.
        const Vreg iota = vpu.viota(mvl);
        for (std::size_t base = 0; base < n; base += mvl) {
          Vreg v = vpu.vload(data.data() + base, mvl);
          const Vreg pidx = vpu.vxor_s(iota, j);
          const Vreg partner = vpu.vpermute(v, pidx);
          const Vreg mi = vpu.vmin(v, partner);
          const Vreg ma = vpu.vmax(v, partner);
          Mask keep_min(mvl);
          for (std::size_t i = 0; i < mvl; ++i) {
            const bool lower = (i & j) == 0;
            const bool asc = ((base + i) & k) == 0;
            keep_min[i] = (lower == asc) ? 1 : 0;
          }
          v = vpu.vselect(keep_min, mi, ma);
          vpu.vstore(data.data() + base, v);
        }
      }
      vpu.sync();
    }
  }
  data.resize(n0);
  return {vpu.cycles() - start, vpu.instructions() - instr0};
}

SortStats scalar_radix_sort(vec::ScalarCore& core,
                            std::vector<Elem>& data) {
  const std::size_t n = data.size();
  constexpr unsigned kDigitBits = 8;
  constexpr std::size_t kBuckets = 1u << kDigitBits;
  std::vector<Elem> hist(kBuckets);
  std::vector<Elem> out(n);
  std::vector<Elem>* src = &data;
  std::vector<Elem>* dst = &out;
  const std::uint64_t start = core.cycles();

  for (unsigned shift = 0; shift < kKeyBits; shift += kDigitBits) {
    std::fill(hist.begin(), hist.end(), 0);
    core.store(kBuckets);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t d = (*src)[i] >> shift & (kBuckets - 1);
      ++hist[d];
      // load key; extract digit (2 alu); dependent counter load+add+store;
      // loop branch.
      core.load();
      core.alu(2);
      core.load();
      core.alu();
      core.store();
      core.branch();
    }
    Elem running = 0;
    for (auto& h : hist) {
      const Elem c = h;
      h = running;
      running += c;
      core.load();
      core.alu();
      core.store();
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t d = (*src)[i] >> shift & (kBuckets - 1);
      (*dst)[hist[d]++] = (*src)[i];
      // load key; digit; offset load+increment+store; scattered write of
      // the element; loop branch.
      core.load();
      core.alu(2);
      core.load();
      core.alu();
      core.store();
      core.scattered();
      core.branch();
    }
    std::swap(src, dst);
  }
  if (src != &data) data = *src;
  return {core.cycles() - start, 0};
}

SortStats scalar_quicksort(vec::ScalarCore& core, std::vector<Elem>& data) {
  const std::uint64_t start = core.cycles();
  // Cost-instrumented introsort-style quicksort: ~(2 loads, 1 compare
  // branch, 0.5 swap) per element per level.
  const std::size_t n = data.size();
  std::sort(data.begin(), data.end());
  double levels = 0.0;
  for (std::size_t m = n; m > 16; m >>= 1) ++levels;
  const auto per_elem = static_cast<std::uint64_t>(levels);
  core.load(2 * n * per_elem);
  core.branch(n * per_elem);
  core.store(n * per_elem / 2);
  core.alu(2 * n * per_elem);
  return {core.cycles() - start, 0};
}

SortStats run_vector_sort(Algorithm algorithm, const vec::VpuConfig& config,
                          std::vector<Elem>& data) {
  vec::Vpu vpu{config};
  switch (algorithm) {
    case Algorithm::vsr: return vsr_sort(vpu, data);
    case Algorithm::vector_radix: return vector_radix_sort(vpu, data);
    case Algorithm::vector_quicksort: return vector_quicksort(vpu, data);
    case Algorithm::bitonic: return bitonic_sort(vpu, data);
  }
  RAA_CHECK(false);
  return {};
}

}  // namespace raa::sort
