#pragma once
/// \file graph.hpp
/// Task Dependency Graph (TDG): the runtime's central data structure, also
/// consumed standalone by the simulators (simcore replays TDGs on modelled
/// machines, rsu computes criticality over them).

#include <cstdint>
#include <string>
#include <vector>

namespace raa::tdg {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One task in the graph. `cost` is abstract work (cycles at nominal
/// frequency for the simulators; measured nanoseconds when captured from a
/// real execution).
struct Node {
  NodeId id = kNoNode;
  double cost = 1.0;
  bool critical_hint = false;  ///< programmer annotation (§3.1)
  std::string label;
};

/// A directed acyclic graph of tasks. Construction is append-only (matching
/// how a runtime discovers tasks); analyses are performed on the complete
/// graph.
class Graph {
 public:
  /// Append a node; returns its id (dense, starting at 0).
  NodeId add_node(double cost, std::string label = {},
                  bool critical_hint = false);

  /// Add a dependence edge: `to` cannot start until `from` finishes.
  /// Self-edges and ids out of range are rejected (RAA_CHECK).
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  Node& node(NodeId id) { return nodes_.at(id); }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  const std::vector<NodeId>& successors(NodeId id) const {
    return succ_.at(id);
  }
  const std::vector<NodeId>& predecessors(NodeId id) const {
    return pred_.at(id);
  }

  /// Total work: sum of node costs.
  double total_cost() const noexcept;

  /// Kahn topological order. Throws std::logic_error when the graph has a
  /// cycle (cannot happen for runtime-captured graphs; programmatic
  /// construction is checked here).
  std::vector<NodeId> topo_order() const;

  /// b(v) = cost(v) + max over successors s of b(s). The classic "bottom
  /// level" used for criticality (§3.1): a task is on the critical path iff
  /// t(v) + b(v) == critical_path_length(), with t the top level.
  std::vector<double> bottom_levels() const;

  /// t(v) = max over predecessors p of (t(p) + cost(p)); earliest start time
  /// with unlimited cores.
  std::vector<double> top_levels() const;

  /// Length of the longest cost-weighted path (== makespan on infinitely
  /// many cores).
  double critical_path_length() const;

  /// One maximal-cost path, source to sink, as a node sequence.
  std::vector<NodeId> critical_path() const;

  /// Mark of every node that lies on *some* longest path.
  std::vector<bool> critical_nodes() const;

  /// Average width: total work / critical path length — the paper's notion
  /// of available task parallelism.
  double parallelism() const;

  /// Graphviz dump for inspection (examples use this).
  std::string to_dot() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edge_count_ = 0;
};

/// Builders for the synthetic TDG families used by the §3.1 experiments.
struct Synthetic {
  /// Linear chain of n tasks, each of cost `cost`.
  static Graph chain(std::size_t n, double cost = 1.0);

  /// Fork-join: source -> n parallel tasks -> sink.
  static Graph fork_join(std::size_t width, double cost = 1.0,
                         double serial_cost = 1.0);

  /// Left-looking tiled Cholesky TDG over an t x t tile grid: potrf/trsm/
  /// syrk/gemm tasks with the canonical dependence pattern. Costs follow the
  /// kernels' flop ratios (potrf 1/3, trsm 1, syrk 1, gemm 2 units * b^3).
  static Graph cholesky(std::size_t tiles, double tile_cost = 6.0);

  /// Layered random DAG: `layers` layers of `width` tasks; each task depends
  /// on 1..max_deg uniformly random tasks of the previous layer. Costs are
  /// uniform in [cost_lo, cost_hi]. Deterministic in `seed`.
  static Graph layered_random(std::size_t layers, std::size_t width,
                              std::size_t max_deg, double cost_lo,
                              double cost_hi, std::uint64_t seed);

  /// Pipeline: f frames x s stages; stage j of frame i depends on stage j-1
  /// of frame i and stage j of frame i-1 (classic wavefront pipeline).
  static Graph pipeline(std::size_t frames, std::size_t stages,
                        double stage_cost = 1.0);
};

}  // namespace raa::tdg
