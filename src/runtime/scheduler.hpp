#pragma once
/// \file scheduler.hpp
/// Ready-task scheduling policies for the RAA runtime.
///
/// Per C++ Core Guidelines CP.100 we deliberately avoid hand-rolled
/// lock-free structures: every queue is a plain deque guarded by its own
/// mutex. Tasks in this model are coarse (microseconds and up), so queue
/// contention is noise; correctness and auditability win.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "runtime/task.hpp"

namespace raa::rt {

/// Scheduling policy selector.
enum class SchedulerPolicy : std::uint8_t {
  fifo,              ///< single central FIFO queue
  lifo,              ///< single central LIFO stack (depth-first)
  work_stealing,     ///< per-worker deques; owner LIFO, thieves FIFO
  criticality_first  ///< central queues; critical-annotated tasks first
};

const char* to_string(SchedulerPolicy p) noexcept;

/// Ready-queue with pluggable policy. All operations are thread-safe and
/// non-blocking; parking idle workers is the runtime's job.
class Scheduler {
 public:
  Scheduler(SchedulerPolicy policy, unsigned num_workers, std::uint64_t seed);

  /// Enqueue a ready task. `worker_hint` is the id of the worker that made
  /// it ready (used by work stealing for locality); pass num_workers for
  /// "no affinity" (e.g. the spawning main thread).
  void push(detail::TaskBlock* task, unsigned worker_hint);

  /// Dequeue work for `worker`; nullptr when empty everywhere.
  detail::TaskBlock* pop(unsigned worker);

  SchedulerPolicy policy() const noexcept { return policy_; }

  /// Total steals performed (work_stealing only; diagnostic counter).
  std::uint64_t steal_count() const noexcept;

 private:
  struct LocalQueue {
    std::mutex mutex;
    std::deque<detail::TaskBlock*> tasks;
  };

  detail::TaskBlock* pop_central(unsigned worker);
  detail::TaskBlock* pop_stealing(unsigned worker);

  SchedulerPolicy policy_;
  unsigned num_workers_;

  // Central queues (fifo / lifo / criticality_first).
  std::mutex central_mutex_;
  std::deque<detail::TaskBlock*> central_;
  std::deque<detail::TaskBlock*> central_critical_;

  // Work stealing state.
  std::vector<std::unique_ptr<LocalQueue>> local_;
  std::mutex rng_mutex_;
  Rng rng_;
  std::uint64_t steals_ = 0;
};

}  // namespace raa::rt
