#pragma once
/// \file scheduler.hpp
/// Ready-task scheduling policies for the RAA runtime, built on the
/// work-stealing executor (exec/stealing.hpp).
///
/// The Scheduler owns the worker threads (via the executor) and exposes
/// one push/pop surface for every policy:
///  - `work_stealing` maps straight onto the executor: per-worker
///    lock-free Chase–Lev deques, randomized stealing, parked idle
///    workers.
///  - `fifo` / `lifo` / `criticality_first` keep their central mutexed
///    queues (the ordering *is* the policy — a distributed structure
///    cannot promise global FIFO or strict criticality priority); the
///    executor's workers drain them through its poll hook, so parking
///    and wakeup are shared across all policies.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "exec/stealing.hpp"
#include "runtime/task.hpp"

namespace raa::rt {

/// Scheduling policy selector.
enum class SchedulerPolicy : std::uint8_t {
  fifo,              ///< single central FIFO queue
  lifo,              ///< single central LIFO stack (depth-first)
  work_stealing,     ///< per-worker deques; owner LIFO, thieves FIFO
  criticality_first  ///< central queues; critical-annotated tasks first
};

const char* to_string(SchedulerPolicy p) noexcept;

/// Ready-queue + worker threads. push()/pop() are thread-safe and
/// non-blocking; push() wakes a parked worker. The `run` callback is
/// invoked on a worker thread for every task its loop acquires.
class Scheduler {
 public:
  using RunFn = std::function<void(detail::TaskBlock*, unsigned)>;

  Scheduler(SchedulerPolicy policy, unsigned num_workers, std::uint64_t seed,
            RunFn run);

  /// Joins the workers (shutdown()).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue a ready task and wake a worker. `worker_hint` is the id of
  /// the worker that made it ready (owner-deque push under work
  /// stealing); pass num_workers for "no affinity" (e.g. the spawning
  /// main thread).
  void push(detail::TaskBlock* task, unsigned worker_hint);

  /// Dequeue work on behalf of `worker` (external/helping threads pass
  /// num_workers); nullptr when empty everywhere.
  detail::TaskBlock* pop(unsigned worker);

  /// Stop and join the worker threads. Idempotent. The owner must drain
  /// outstanding work first (the runtime taskwaits in its destructor).
  void shutdown();

  /// Executor-worker id of the calling thread, or num_workers when the
  /// caller is not one of this scheduler's workers.
  unsigned current_worker() const noexcept;

  SchedulerPolicy policy() const noexcept { return policy_; }
  unsigned num_workers() const noexcept { return num_workers_; }

  /// Total steals performed (diagnostic; relaxed-atomic sum, exact only
  /// once the queues are quiescent). Central policies never steal.
  std::uint64_t steal_count() const noexcept;

 private:
  detail::TaskBlock* pop_central();

  SchedulerPolicy policy_;
  unsigned num_workers_;

  // Central queues (fifo / lifo / criticality_first).
  std::mutex central_mutex_;
  std::deque<detail::TaskBlock*> central_;
  std::deque<detail::TaskBlock*> central_critical_;

  exec::StealingExecutor executor_;  ///< owns the worker threads
};

}  // namespace raa::rt
