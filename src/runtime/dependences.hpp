#pragma once
/// \file dependences.hpp
/// Byte-range dependence registry: turns the per-task in/out/inout
/// annotations into TDG edges, exactly like the Nanos++ dependence system.
///
/// Semantics (program order = spawn order):
///   * read  of a range depends on the last writer of every overlapped byte
///     (RAW);
///   * write of a range depends on the last writer (WAW) and on every reader
///     since that writer (WAR), then becomes the new last writer and clears
///     the reader set;
///   * readwrite behaves as read followed by write.
///
/// The registry stores disjoint segments in an ordered map keyed by start
/// address; registering an access splits overlapped segments at the access
/// boundaries, so arbitrary partial overlaps are supported.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "runtime/task.hpp"

namespace raa::rt {

/// See file comment. Not thread-safe: callers serialise registration in
/// spawn order (the runtime holds its graph mutex across registration).
class DependenceRegistry {
 public:
  /// Register `task`'s accesses; appends the ids of tasks it must wait for
  /// into `preds` (excluding `task` itself). `preds` comes back sorted and
  /// deduplicated as a whole — callers pass a fresh (or don't-care-order)
  /// vector; the single sort+dedup replaces a per-candidate linear scan.
  void register_task(TaskId task, std::span<const Dep> deps,
                     std::vector<TaskId>& preds);

  /// Number of distinct segments currently tracked (test/debug aid).
  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Drop all tracked state (e.g. between independent phases).
  void clear() { segments_.clear(); }

 private:
  struct Segment {
    std::uintptr_t end = 0;  ///< one past the last byte
    TaskId writer = kNoTask;
    std::vector<TaskId> readers;  ///< readers since `writer`
  };

  using SegMap = std::map<std::uintptr_t, Segment>;

  /// Ensure segment boundaries exist at `at` (splitting a covering segment).
  void split_at(std::uintptr_t at);

  /// Apply one access [lo, hi) of the given mode for `task`.
  void apply(TaskId task, std::uintptr_t lo, std::uintptr_t hi,
             AccessMode mode, std::vector<TaskId>& preds);

  /// Append a predecessor candidate (duplicates resolved later in bulk).
  static void note_pred(std::vector<TaskId>& preds, TaskId id);
  /// Append `task` to a segment's reader list (adjacent-duplicate safe).
  static void add_reader(Segment& seg, TaskId task);

  SegMap segments_;
};

}  // namespace raa::rt
