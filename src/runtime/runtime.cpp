#include "runtime/runtime.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace raa::rt {

namespace {
/// Identity of the task the current thread is executing, if any. Lets
/// silent_async() link children to their spawning task, corun() find the
/// join target, and taskwait() reject the guaranteed deadlock of being
/// called from inside one of this runtime's own task bodies (the barrier
/// would wait for the caller's own completion). Scoped per runtime so a
/// task body may drive a *different* runtime freely.
struct CurrentTask {
  Runtime* rt = nullptr;
  detail::TaskBlock* task = nullptr;
};
thread_local CurrentTask t_current;
}  // namespace

Runtime::Runtime(RuntimeOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      scheduler_(options.policy, options.num_workers, options.seed,
                 [this](detail::TaskBlock* t, unsigned w) {
                   run_popped(t, w);
                 }) {
  // Expose the per-runtime task counters through the obs registry as
  // external gauges (summed across live runtimes) so ablation_scheduler
  // and RuntimeStats read the very same cells — no duplicated counts.
  auto& reg = obs::Registry::instance();
  obs_spawned_token_ = reg.attach_external("rt.tasks_spawned", [this] {
    const std::scoped_lock lock{graph_mutex_};
    return spawned_;
  });
  obs_executed_token_ = reg.attach_external("rt.tasks_executed", [this] {
    const std::scoped_lock lock{graph_mutex_};
    return executed_;
  });
}

Runtime::~Runtime() {
  taskwait();
  auto& reg = obs::Registry::instance();
  reg.detach_external(obs_spawned_token_);
  reg.detach_external(obs_executed_token_);
  // Stop + join the workers before any member is torn down; after this,
  // member destruction order is irrelevant.
  scheduler_.shutdown();
}

std::uint64_t Runtime::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TaskId Runtime::spawn(std::function<void()> body, TaskAttrs attrs) {
  return spawn_impl({}, std::move(body), std::move(attrs), /*nested=*/false);
}

TaskId Runtime::spawn(std::vector<Dep> deps, std::function<void()> body,
                      TaskAttrs attrs) {
  return spawn_impl(std::move(deps), std::move(body), std::move(attrs),
                    /*nested=*/false);
}

TaskId Runtime::silent_async(std::function<void()> body, TaskAttrs attrs) {
  return spawn_impl({}, std::move(body), std::move(attrs), /*nested=*/true);
}

TaskId Runtime::spawn_impl(std::vector<Dep> deps, std::function<void()> body,
                           TaskAttrs attrs, bool nested) {
  RAA_CHECK(body != nullptr);
  // Spawns from a worker thread go to that worker's own deque (lock-free
  // owner push under work stealing); external threads use the shared slot.
  const unsigned hint = scheduler_.current_worker();
  TaskId id = kNoTask;
  {
    const std::scoped_lock lock{graph_mutex_};
    auto block = std::make_unique<detail::TaskBlock>();
    detail::TaskBlock* t = block.get();
    id = static_cast<TaskId>(tasks_.size());
    t->id = id;
    t->body = std::move(body);
    t->attrs = std::move(attrs);
    if (nested && t_current.rt == this && t_current.task != nullptr) {
      t->parent = t_current.task;
      ++t->parent->children;
    }
    tasks_.push_back(std::move(block));
    ++spawned_;

    std::vector<TaskId> preds;
    registry_.register_task(id, deps, preds);

    if (options_.capture_graph) {
      const double cost =
          t->attrs.cost_hint > 0.0 ? t->attrs.cost_hint : 1.0;
      const tdg::NodeId node = captured_.add_node(
          cost, t->attrs.label,
          t->attrs.criticality == Criticality::critical);
      RAA_CHECK(node == id);  // ids are dense and aligned with the graph
      for (const TaskId p : preds) captured_.add_edge(p, id);
    }

    for (const TaskId p : preds) {
      detail::TaskBlock* pred = tasks_[p].get();
      if (!pred->finished) {
        pred->successors.push_back(t);
        ++t->pending_preds;
      }
    }
    if (t->pending_preds == 0) {
      scheduler_.push(t, hint);  // push wakes a parked worker itself
      ++ready_count_;
    }
    RAA_OBS_HOST_EVENT(rt, task_spawn, instant, static_cast<std::uint64_t>(id),
                       preds.size());
  }
  return id;
}

void Runtime::execute(detail::TaskBlock* task, unsigned worker_id) {
  TraceRecord rec;
  rec.task = task->id;
  rec.worker = worker_id;
  rec.start_ns = now_ns();
  {
    const CurrentTask outer = t_current;
    t_current = CurrentTask{this, task};
    task->body();
    // Implicit join: children spawned via silent_async() that the body
    // did not corun() must finish before this task completes and its
    // dependants are released.
    corun_children(task, worker_id);
    t_current = outer;
  }
  rec.end_ns = now_ns();
  RAA_OBS_HOST_EVENT(rt, task_run, complete, rec.end_ns - rec.start_ns,
                     static_cast<std::uint64_t>(task->id));

  std::vector<detail::TaskBlock*> newly_ready;
  {
    const std::scoped_lock lock{graph_mutex_};
    task->finished = true;
    task->body = nullptr;  // release captured state promptly
    task->trace = rec;
    ++executed_;
    trace_.push_back(rec);
    if (options_.capture_graph && task->attrs.cost_hint <= 0.0) {
      // Replace the placeholder cost with the measured duration (>= 1ns so
      // graph analyses never see zero-cost nodes).
      captured_.node(task->id).cost =
          std::max<double>(1.0, static_cast<double>(rec.end_ns - rec.start_ns));
    }
    for (detail::TaskBlock* succ : task->successors) {
      RAA_CHECK(succ->pending_preds > 0);
      if (--succ->pending_preds == 0) newly_ready.push_back(succ);
    }
    for (detail::TaskBlock* succ : newly_ready) {
      scheduler_.push(succ, worker_id);
      ++ready_count_;
    }
    if (task->parent != nullptr) {
      RAA_CHECK(task->parent->children > 0);
      --task->parent->children;  // may unblock the parent's corun/join
    }
  }
  // Workers park inside the executor and are woken by scheduler_.push();
  // done_cv_ wakes threads blocked in taskwait()/corun() on completion
  // events (barrier reached, children drained, work newly available).
  done_cv_.notify_all();
}

void Runtime::run_popped(detail::TaskBlock* task, unsigned worker_id) {
  {
    const std::scoped_lock lock{graph_mutex_};
    RAA_CHECK(ready_count_ > 0);
    --ready_count_;
  }
  execute(task, worker_id);
}

bool Runtime::run_one(unsigned worker_id) {
  detail::TaskBlock* t = scheduler_.pop(worker_id);
  if (t == nullptr) return false;
  run_popped(t, worker_id);
  return true;
}

void Runtime::corun() {
  if (t_current.rt != this || t_current.task == nullptr) {
    taskwait();
    return;
  }
  corun_children(t_current.task, scheduler_.current_worker());
}

void Runtime::corun_children(detail::TaskBlock* task, unsigned worker_id) {
  for (;;) {
    {
      const std::scoped_lock lock{graph_mutex_};
      if (task->children == 0) return;
    }
    // Children outstanding: help run ready tasks (our children, or
    // anything else — stealing unrelated work is what keeps every
    // worker busy during a join).
    if (run_one(worker_id)) continue;
    std::unique_lock lock{graph_mutex_};
    if (task->children == 0) return;
    done_cv_.wait(lock, [&] {
      return task->children == 0 || ready_count_ > 0;
    });
    if (task->children == 0) return;
  }
}

void Runtime::taskwait() {
  RAA_CHECK_MSG(t_current.rt != this,
                "taskwait() called from inside a task body; the barrier "
                "covers all tasks and would deadlock — use corun() for a "
                "nested join");
  // The caller helps execute tasks (worker id = num_workers: the shared
  // "external" slot of the scheduler).
  const unsigned self = scheduler_.current_worker();
  for (;;) {
    if (run_one(self)) continue;
    std::unique_lock lock{graph_mutex_};
    if (executed_ == spawned_) return;
    // Nothing ready but tasks still in flight on workers: wait for a
    // completion (which may also make new tasks ready).
    done_cv_.wait(lock, [&] {
      return executed_ == spawned_ || ready_count_ > 0;
    });
    if (executed_ == spawned_) return;
  }
}

tdg::Graph Runtime::graph() const {
  const std::scoped_lock lock{graph_mutex_};
  return captured_;
}

std::vector<TraceRecord> Runtime::trace() const {
  const std::scoped_lock lock{graph_mutex_};
  std::vector<TraceRecord> out = trace_;
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.end_ns < b.end_ns;
            });
  return out;
}

RuntimeStats Runtime::stats() const {
  const std::scoped_lock lock{graph_mutex_};
  return RuntimeStats{spawned_, executed_, captured_.edge_count(),
                      scheduler_.steal_count()};
}

void parallel_for(Runtime& rt, std::size_t begin, std::size_t end,
                  std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  RAA_CHECK(begin <= end && chunks > 0);
  const std::size_t n = end - begin;
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    rt.spawn([body, lo, hi] { body(lo, hi); });
  }
  rt.taskwait();
}

}  // namespace raa::rt
