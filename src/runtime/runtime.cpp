#include "runtime/runtime.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::rt {

namespace {
/// True while the current thread is inside a task body. taskwait() is a
/// barrier over *all* tasks, so calling it from a task body (whose own
/// completion the barrier would wait for) is a guaranteed deadlock; we
/// detect and reject it instead.
thread_local bool t_in_task_body = false;
}  // namespace

Runtime::Runtime(RuntimeOptions options)
    : options_(options),
      scheduler_(options.policy, options.num_workers, options.seed),
      epoch_(std::chrono::steady_clock::now()) {
  try {
    workers_.start(options_.num_workers,
                   [this](std::stop_token stop, unsigned w) {
                     worker_loop(stop, w);
                   });
  } catch (...) {
    // Thread exhaustion mid-spawn: the workers that did start sleep on
    // work_cv_ and must be woken to observe the stop, or the jthread
    // destructors would join forever.
    {
      const std::scoped_lock lock{graph_mutex_};
      workers_.request_stop();
    }
    work_cv_.notify_all();
    workers_.join();
    throw;
  }
}

Runtime::~Runtime() {
  taskwait();
  {
    // Under the mutex: a worker is either between its predicate check and
    // the wait (still holds the mutex, so this blocks until it sleeps) or
    // already waiting — either way the notify below cannot be lost.
    const std::scoped_lock lock{graph_mutex_};
    workers_.request_stop();
  }
  work_cv_.notify_all();  // wake sleepers so they observe the stop
  workers_.join();
}

std::uint64_t Runtime::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TaskId Runtime::spawn(std::function<void()> body, TaskAttrs attrs) {
  return spawn(std::vector<Dep>{}, std::move(body), std::move(attrs));
}

TaskId Runtime::spawn(std::vector<Dep> deps, std::function<void()> body,
                      TaskAttrs attrs) {
  RAA_CHECK(body != nullptr);
  bool ready = false;
  TaskId id = kNoTask;
  {
    const std::scoped_lock lock{graph_mutex_};
    auto block = std::make_unique<detail::TaskBlock>();
    detail::TaskBlock* t = block.get();
    id = static_cast<TaskId>(tasks_.size());
    t->id = id;
    t->body = std::move(body);
    t->attrs = std::move(attrs);
    tasks_.push_back(std::move(block));
    ++spawned_;

    std::vector<TaskId> preds;
    registry_.register_task(id, deps, preds);

    if (options_.capture_graph) {
      const double cost =
          t->attrs.cost_hint > 0.0 ? t->attrs.cost_hint : 1.0;
      const tdg::NodeId node = captured_.add_node(
          cost, t->attrs.label,
          t->attrs.criticality == Criticality::critical);
      RAA_CHECK(node == id);  // ids are dense and aligned with the graph
      for (const TaskId p : preds) captured_.add_edge(p, id);
    }

    for (const TaskId p : preds) {
      detail::TaskBlock* pred = tasks_[p].get();
      if (!pred->finished) {
        pred->successors.push_back(t);
        ++t->pending_preds;
      }
    }
    ready = (t->pending_preds == 0);
    if (ready) {
      scheduler_.push(t, options_.num_workers);  // no worker affinity
      ++ready_count_;
    }
  }
  if (ready) work_cv_.notify_one();
  return id;
}

void Runtime::execute(detail::TaskBlock* task, unsigned worker_id) {
  TraceRecord rec;
  rec.task = task->id;
  rec.worker = worker_id;
  rec.start_ns = now_ns();
  {
    const bool outer = t_in_task_body;
    t_in_task_body = true;
    task->body();
    t_in_task_body = outer;
  }
  rec.end_ns = now_ns();

  std::vector<detail::TaskBlock*> newly_ready;
  {
    const std::scoped_lock lock{graph_mutex_};
    task->finished = true;
    task->body = nullptr;  // release captured state promptly
    task->trace = rec;
    ++executed_;
    trace_.push_back(rec);
    if (options_.capture_graph && task->attrs.cost_hint <= 0.0) {
      // Replace the placeholder cost with the measured duration (>= 1ns so
      // graph analyses never see zero-cost nodes).
      captured_.node(task->id).cost =
          std::max<double>(1.0, static_cast<double>(rec.end_ns - rec.start_ns));
    }
    for (detail::TaskBlock* succ : task->successors) {
      RAA_CHECK(succ->pending_preds > 0);
      if (--succ->pending_preds == 0) newly_ready.push_back(succ);
    }
    for (detail::TaskBlock* succ : newly_ready) {
      scheduler_.push(succ, worker_id);
      ++ready_count_;
    }
  }
  if (!newly_ready.empty()) {
    if (newly_ready.size() == 1)
      work_cv_.notify_one();
    else
      work_cv_.notify_all();
  }
  done_cv_.notify_all();
}

bool Runtime::run_one(unsigned worker_id) {
  detail::TaskBlock* t = scheduler_.pop(worker_id);
  if (t == nullptr) return false;
  {
    const std::scoped_lock lock{graph_mutex_};
    RAA_CHECK(ready_count_ > 0);
    --ready_count_;
  }
  execute(t, worker_id);
  return true;
}

void Runtime::worker_loop(std::stop_token stop, unsigned worker_id) {
  while (!stop.stop_requested()) {
    if (run_one(worker_id)) continue;
    std::unique_lock lock{graph_mutex_};
    work_cv_.wait(lock, [&] {
      return ready_count_ > 0 || stop.stop_requested();
    });
  }
}

void Runtime::taskwait() {
  RAA_CHECK_MSG(!t_in_task_body,
                "taskwait() called from inside a task body; the barrier "
                "covers all tasks and would deadlock");
  // The caller helps execute tasks (worker id = num_workers: the shared
  // "external" slot of the scheduler).
  const unsigned self = options_.num_workers;
  for (;;) {
    if (run_one(self)) continue;
    std::unique_lock lock{graph_mutex_};
    if (executed_ == spawned_) return;
    // Nothing ready but tasks still in flight on workers: wait for a
    // completion (which may also make new tasks ready).
    done_cv_.wait(lock, [&] {
      return executed_ == spawned_ || ready_count_ > 0;
    });
    if (executed_ == spawned_) return;
  }
}

tdg::Graph Runtime::graph() const {
  const std::scoped_lock lock{graph_mutex_};
  return captured_;
}

std::vector<TraceRecord> Runtime::trace() const {
  const std::scoped_lock lock{graph_mutex_};
  std::vector<TraceRecord> out = trace_;
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.end_ns < b.end_ns;
            });
  return out;
}

RuntimeStats Runtime::stats() const {
  const std::scoped_lock lock{graph_mutex_};
  return RuntimeStats{spawned_, executed_, captured_.edge_count(),
                      scheduler_.steal_count()};
}

void parallel_for(Runtime& rt, std::size_t begin, std::size_t end,
                  std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  RAA_CHECK(begin <= end && chunks > 0);
  const std::size_t n = end - begin;
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    rt.spawn([body, lo, hi] { body(lo, hi); });
  }
  rt.taskwait();
}

}  // namespace raa::rt
