#include "runtime/scheduler.hpp"

#include "common/check.hpp"

namespace raa::rt {

const char* to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::fifo: return "fifo";
    case SchedulerPolicy::lifo: return "lifo";
    case SchedulerPolicy::work_stealing: return "work_stealing";
    case SchedulerPolicy::criticality_first: return "criticality_first";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerPolicy policy, unsigned num_workers,
                     std::uint64_t seed, RunFn run)
    : policy_(policy),
      num_workers_(num_workers),
      executor_(
          exec::StealingExecutor::Options{.num_workers = num_workers,
                                          .seed = seed},
          // Worker drain loop -> runtime task execution.
          [run = std::move(run)](void* item, unsigned w) {
            run(static_cast<detail::TaskBlock*>(item), w);
          },
          // Central policies park on the executor's notifier like
          // everyone else; its workers reach the central queues through
          // this poll hook. Under work_stealing the deques are the only
          // source.
          policy == SchedulerPolicy::work_stealing
              ? exec::StealingExecutor::PollFn{}
              : [this](unsigned) -> void* { return pop_central(); }) {}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::shutdown() { executor_.shutdown(); }

unsigned Scheduler::current_worker() const noexcept {
  return executor_.current_worker();
}

void Scheduler::push(detail::TaskBlock* task, unsigned worker_hint) {
  RAA_CHECK(task != nullptr);
  switch (policy_) {
    case SchedulerPolicy::fifo:
    case SchedulerPolicy::lifo: {
      {
        const std::scoped_lock lock{central_mutex_};
        central_.push_back(task);
      }
      executor_.notify_one();
      return;
    }
    case SchedulerPolicy::criticality_first: {
      {
        const std::scoped_lock lock{central_mutex_};
        if (task->attrs.criticality == Criticality::critical)
          central_critical_.push_back(task);
        else
          central_.push_back(task);
      }
      executor_.notify_one();
      return;
    }
    case SchedulerPolicy::work_stealing:
      executor_.submit(task, worker_hint);
      return;
  }
}

detail::TaskBlock* Scheduler::pop(unsigned worker) {
  if (policy_ == SchedulerPolicy::work_stealing)
    return static_cast<detail::TaskBlock*>(executor_.try_pop(worker));
  // Central policies: external threads go straight to the central
  // queues — the executor's deques and injection queue are never used.
  return pop_central();
}

detail::TaskBlock* Scheduler::pop_central() {
  const std::scoped_lock lock{central_mutex_};
  if (!central_critical_.empty()) {
    detail::TaskBlock* t = central_critical_.front();
    central_critical_.pop_front();
    return t;
  }
  if (central_.empty()) return nullptr;
  detail::TaskBlock* t = nullptr;
  if (policy_ == SchedulerPolicy::lifo) {
    t = central_.back();
    central_.pop_back();
  } else {
    t = central_.front();
    central_.pop_front();
  }
  return t;
}

std::uint64_t Scheduler::steal_count() const noexcept {
  return executor_.steal_count();
}

}  // namespace raa::rt
