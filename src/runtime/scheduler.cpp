#include "runtime/scheduler.hpp"

#include "common/check.hpp"

namespace raa::rt {

const char* to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::fifo: return "fifo";
    case SchedulerPolicy::lifo: return "lifo";
    case SchedulerPolicy::work_stealing: return "work_stealing";
    case SchedulerPolicy::criticality_first: return "criticality_first";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerPolicy policy, unsigned num_workers,
                     std::uint64_t seed)
    : policy_(policy), num_workers_(num_workers), rng_(seed) {
  if (policy_ == SchedulerPolicy::work_stealing) {
    // One extra slot (index num_workers_) for pushes without worker
    // affinity, e.g. from the spawning main thread.
    local_.reserve(num_workers_ + 1);
    for (unsigned i = 0; i <= num_workers_; ++i)
      local_.push_back(std::make_unique<LocalQueue>());
  }
}

void Scheduler::push(detail::TaskBlock* task, unsigned worker_hint) {
  RAA_CHECK(task != nullptr);
  switch (policy_) {
    case SchedulerPolicy::fifo:
    case SchedulerPolicy::lifo: {
      const std::scoped_lock lock{central_mutex_};
      central_.push_back(task);
      return;
    }
    case SchedulerPolicy::criticality_first: {
      const std::scoped_lock lock{central_mutex_};
      if (task->attrs.criticality == Criticality::critical)
        central_critical_.push_back(task);
      else
        central_.push_back(task);
      return;
    }
    case SchedulerPolicy::work_stealing: {
      const unsigned slot = worker_hint <= num_workers_ ? worker_hint
                                                        : num_workers_;
      LocalQueue& q = *local_[slot];
      const std::scoped_lock lock{q.mutex};
      q.tasks.push_back(task);
      return;
    }
  }
}

detail::TaskBlock* Scheduler::pop(unsigned worker) {
  return policy_ == SchedulerPolicy::work_stealing ? pop_stealing(worker)
                                                   : pop_central(worker);
}

detail::TaskBlock* Scheduler::pop_central(unsigned /*worker*/) {
  const std::scoped_lock lock{central_mutex_};
  if (!central_critical_.empty()) {
    detail::TaskBlock* t = central_critical_.front();
    central_critical_.pop_front();
    return t;
  }
  if (central_.empty()) return nullptr;
  detail::TaskBlock* t = nullptr;
  if (policy_ == SchedulerPolicy::lifo) {
    t = central_.back();
    central_.pop_back();
  } else {
    t = central_.front();
    central_.pop_front();
  }
  return t;
}

detail::TaskBlock* Scheduler::pop_stealing(unsigned worker) {
  const unsigned self = worker <= num_workers_ ? worker : num_workers_;
  {  // Own queue: LIFO for cache locality.
    LocalQueue& q = *local_[self];
    const std::scoped_lock lock{q.mutex};
    if (!q.tasks.empty()) {
      detail::TaskBlock* t = q.tasks.back();
      q.tasks.pop_back();
      return t;
    }
  }
  // Steal: FIFO from a rotating sequence of victims starting at a random
  // offset (randomised to avoid convoying).
  unsigned start = 0;
  {
    const std::scoped_lock lock{rng_mutex_};
    start = static_cast<unsigned>(rng_.below(num_workers_ + 1));
  }
  for (unsigned k = 0; k <= num_workers_; ++k) {
    const unsigned victim = (start + k) % (num_workers_ + 1);
    if (victim == self) continue;
    LocalQueue& q = *local_[victim];
    const std::scoped_lock lock{q.mutex};
    if (!q.tasks.empty()) {
      detail::TaskBlock* t = q.tasks.front();
      q.tasks.pop_front();
      {
        const std::scoped_lock rlock{rng_mutex_};
        ++steals_;
      }
      return t;
    }
  }
  return nullptr;
}

std::uint64_t Scheduler::steal_count() const noexcept { return steals_; }

}  // namespace raa::rt
