#pragma once
/// \file runtime.hpp
/// Public facade of the RAA tasking runtime (the paper's OmpSs/Nanos-like
/// layer): spawn tasks with data-region annotations, let the runtime build
/// the Task Dependency Graph and execute tasks out-of-order on a
/// work-stealing worker pool, then inspect the captured TDG and execution
/// trace.
///
/// Example:
/// \code
///   raa::rt::Runtime rt{{.num_workers = 4}};
///   double a = 0, b = 0;
///   rt.spawn({raa::rt::out(a)}, [&] { a = produce(); });
///   rt.spawn({raa::rt::out(b)}, [&] { b = produce(); });
///   rt.spawn({raa::rt::in(a), raa::rt::in(b)}, [&] { consume(a + b); });
///   rt.taskwait();
/// \endcode
///
/// Nested parallelism (taskflow-shaped): a running task body may spawn
/// children with silent_async() and cooperatively join them with corun();
/// children a body leaves unjoined are joined implicitly before the task
/// completes.
/// \code
///   rt.spawn([&] {
///     rt.silent_async([&] { left = fib(n - 1); });
///     rt.silent_async([&] { right = fib(n - 2); });
///     rt.corun();  // runs/steals tasks until both children finished
///     result = left + right;
///   });
/// \endcode

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/dependences.hpp"
#include "runtime/graph.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace raa::rt {

/// Construction-time options.
struct RuntimeOptions {
  /// Worker threads in addition to the calling thread. The caller also
  /// executes tasks while blocked in taskwait() ("work helping"), so
  /// num_workers == 0 gives a valid serial runtime.
  unsigned num_workers = 0;
  SchedulerPolicy policy = SchedulerPolicy::work_stealing;
  /// Capture the TDG and execution trace (cheap; on by default — the whole
  /// point of a runtime-aware architecture is that this graph exists).
  bool capture_graph = true;
  std::uint64_t seed = 1;
};

/// Aggregate execution statistics.
struct RuntimeStats {
  std::uint64_t tasks_spawned = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t edges = 0;
  std::uint64_t steals = 0;
};

/// The tasking runtime. Thread-compatible: any thread (including task
/// bodies, for nested parallelism) may call spawn(); taskwait() may be
/// called from the constructor thread or from threads outside any task
/// body of this runtime (it is a full barrier over all spawned tasks).
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});

  /// Blocks until all tasks finish, then joins the workers.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Submit a task. `deps` lists the byte ranges the task reads/writes;
  /// the runtime orders it after every conflicting earlier task.
  TaskId spawn(std::vector<Dep> deps, std::function<void()> body,
               TaskAttrs attrs = {});

  /// Convenience overload without dependences (embarrassingly parallel).
  TaskId spawn(std::function<void()> body, TaskAttrs attrs = {});

  /// Nested spawn: a dependence-free child task. When called from inside
  /// a task body of this runtime, the child is linked to the running task
  /// — the parent will not complete (and its dependants will not be
  /// released) until the child has finished, joined either cooperatively
  /// via corun() or implicitly when the body returns. From any other
  /// thread this is equivalent to spawn() with no dependences.
  TaskId silent_async(std::function<void()> body, TaskAttrs attrs = {});

  /// Cooperative join: from inside a task body of this runtime, run/steal
  /// ready tasks until every child the current task spawned so far via
  /// silent_async() has finished (parking, not spinning, when nothing is
  /// ready). From any other thread, behaves as taskwait().
  void corun();

  /// Full barrier: returns when every task spawned so far has finished.
  /// The calling thread executes ready tasks while it waits. Must not be
  /// called from inside a task body of this runtime (use corun() there).
  void taskwait();

  /// Snapshot of the captured TDG. Node costs are the measured execution
  /// times in nanoseconds (0 for unfinished tasks, cost_hint if provided
  /// and the task has not run). Call after taskwait() for a stable view.
  tdg::Graph graph() const;

  /// Execution trace (one record per finished task), ordered by end time.
  std::vector<TraceRecord> trace() const;

  RuntimeStats stats() const;

  unsigned num_workers() const noexcept { return options_.num_workers; }

 private:
  TaskId spawn_impl(std::vector<Dep> deps, std::function<void()> body,
                    TaskAttrs attrs, bool nested);

  /// Run one ready task if available. Returns false when no task was ready.
  bool run_one(unsigned worker_id);

  /// Scheduler callback: bookkeeping for a popped task, then execute().
  void run_popped(detail::TaskBlock* task, unsigned worker_id);

  void execute(detail::TaskBlock* task, unsigned worker_id);

  /// Cooperatively run/steal until task->children == 0.
  void corun_children(detail::TaskBlock* task, unsigned worker_id);

  std::uint64_t now_ns() const;

  RuntimeOptions options_;

  /// Graph mutex: guards task-block state transitions, the dependence
  /// registry, the captured graph and counters. Task bodies run unlocked.
  mutable std::mutex graph_mutex_;
  std::condition_variable done_cv_;  ///< signalled on task completion
  DependenceRegistry registry_;
  std::deque<std::unique_ptr<detail::TaskBlock>> tasks_;  // stable addresses
  tdg::Graph captured_;
  std::vector<std::pair<TaskId, TaskId>> captured_edges_;
  std::vector<TraceRecord> trace_;
  std::uint64_t spawned_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t ready_count_ = 0;  ///< tasks inside the scheduler

  /// Registry external-gauge handles ("rt.tasks_spawned" /
  /// "rt.tasks_executed"): the counters above stay the single source of
  /// truth — RuntimeStats and the obs registry both read them. Detached
  /// in the destructor before any member is torn down.
  std::uint64_t obs_spawned_token_ = 0;
  std::uint64_t obs_executed_token_ = 0;

  std::chrono::steady_clock::time_point epoch_;

  /// Owns the worker threads (exec::StealingExecutor under the policy
  /// facade). Declared last so everything it may touch outlives it; the
  /// destructor additionally drains + shuts it down explicitly.
  Scheduler scheduler_;
};

/// Parallel-for convenience built on the runtime: splits [begin, end) into
/// `chunks` tasks (no dependences) and taskwaits. Used by the mini-apps.
void parallel_for(Runtime& rt, std::size_t begin, std::size_t end,
                  std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace raa::rt
