#include "runtime/dependences.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::rt {

void DependenceRegistry::add_unique(std::vector<TaskId>& v, TaskId id) {
  if (id == kNoTask) return;
  if (std::find(v.begin(), v.end(), id) == v.end()) v.push_back(id);
}

void DependenceRegistry::split_at(std::uintptr_t at) {
  auto it = segments_.upper_bound(at);
  if (it == segments_.begin()) return;
  --it;
  const std::uintptr_t seg_lo = it->first;
  Segment& seg = it->second;
  if (seg_lo < at && at < seg.end) {
    Segment right = seg;  // copies writer + readers
    seg.end = at;
    segments_.emplace(at, std::move(right));
  }
}

void DependenceRegistry::apply(TaskId task, std::uintptr_t lo,
                               std::uintptr_t hi, AccessMode mode,
                               std::vector<TaskId>& preds) {
  RAA_CHECK(lo < hi);
  split_at(lo);
  split_at(hi);

  // Walk existing segments overlapping [lo, hi); fill gaps with fresh
  // segments so the new access is recorded everywhere.
  std::uintptr_t cursor = lo;
  auto it = segments_.lower_bound(lo);
  const bool reads = mode != AccessMode::write;
  const bool writes = mode != AccessMode::read;

  const auto touch = [&](Segment& seg) {
    if (reads) {
      add_unique(preds, seg.writer);  // RAW
    }
    if (writes) {
      add_unique(preds, seg.writer);              // WAW
      for (const TaskId r : seg.readers)          // WAR
        add_unique(preds, r);
      seg.writer = task;
      seg.readers.clear();
    } else {
      add_unique(seg.readers, task);
    }
  };

  while (cursor < hi) {
    if (it == segments_.end() || it->first >= hi) {
      // Tail gap [cursor, hi).
      Segment fresh;
      fresh.end = hi;
      if (writes) {
        fresh.writer = task;
      } else {
        fresh.writer = kNoTask;
        fresh.readers.push_back(task);
      }
      it = segments_.emplace(cursor, std::move(fresh)).first;
      ++it;
      cursor = hi;
      break;
    }
    if (it->first > cursor) {
      // Gap [cursor, it->first).
      Segment fresh;
      fresh.end = it->first;
      if (writes) {
        fresh.writer = task;
      } else {
        fresh.readers.push_back(task);
      }
      segments_.emplace(cursor, std::move(fresh));
      cursor = it->first;
      continue;
    }
    // Segment starting exactly at cursor; boundaries guarantee it ends
    // within [lo, hi].
    RAA_CHECK(it->second.end <= hi);
    touch(it->second);
    cursor = it->second.end;
    ++it;
  }

  // A task's own earlier access must not appear as its predecessor.
  std::erase(preds, task);
}

void DependenceRegistry::register_task(TaskId task, std::span<const Dep> deps,
                                       std::vector<TaskId>& preds) {
  for (const Dep& d : deps) {
    if (d.bytes == 0) continue;
    apply(task, d.base, d.base + d.bytes, d.mode, preds);
  }
}

}  // namespace raa::rt
