#include "runtime/dependences.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::rt {

namespace {
/// First reader-capacity reservation: most segments see a handful of
/// readers between writers; reserving up front avoids the 1->2->4 growth
/// reallocations that used to dominate reader-list churn.
constexpr std::size_t kReaderReserve = 8;
}  // namespace

void DependenceRegistry::note_pred(std::vector<TaskId>& preds, TaskId id) {
  // Duplicates are fine here: register_task sort+dedups once at the end,
  // which replaces the old O(preds) linear scan per candidate.
  if (id != kNoTask) preds.push_back(id);
}

void DependenceRegistry::add_reader(Segment& seg, TaskId task) {
  // All of a task's registrations are applied back-to-back, so a duplicate
  // reader entry can only be the immediately preceding one.
  if (!seg.readers.empty() && seg.readers.back() == task) return;
  if (seg.readers.empty()) seg.readers.reserve(kReaderReserve);
  seg.readers.push_back(task);
}

void DependenceRegistry::split_at(std::uintptr_t at) {
  auto it = segments_.upper_bound(at);
  if (it == segments_.begin()) return;
  --it;
  const std::uintptr_t seg_lo = it->first;
  Segment& seg = it->second;
  if (seg_lo < at && at < seg.end) {
    Segment right = seg;  // copies writer + readers
    seg.end = at;
    segments_.emplace(at, std::move(right));
  }
}

void DependenceRegistry::apply(TaskId task, std::uintptr_t lo,
                               std::uintptr_t hi, AccessMode mode,
                               std::vector<TaskId>& preds) {
  RAA_CHECK(lo < hi);
  split_at(lo);
  split_at(hi);

  // Walk existing segments overlapping [lo, hi); fill gaps with fresh
  // segments so the new access is recorded everywhere.
  std::uintptr_t cursor = lo;
  auto it = segments_.lower_bound(lo);
  const bool reads = mode != AccessMode::write;
  const bool writes = mode != AccessMode::read;

  const auto touch = [&](Segment& seg) {
    if (reads) {
      note_pred(preds, seg.writer);  // RAW
    }
    if (writes) {
      note_pred(preds, seg.writer);         // WAW
      for (const TaskId r : seg.readers)    // WAR
        note_pred(preds, r);
      seg.writer = task;
      seg.readers.clear();  // keeps capacity for the next reader epoch
    } else {
      add_reader(seg, task);
    }
  };

  while (cursor < hi) {
    if (it == segments_.end() || it->first >= hi) {
      // Tail gap [cursor, hi).
      Segment fresh;
      fresh.end = hi;
      if (writes) {
        fresh.writer = task;
      } else {
        fresh.writer = kNoTask;
        add_reader(fresh, task);
      }
      it = segments_.emplace(cursor, std::move(fresh)).first;
      ++it;
      cursor = hi;
      break;
    }
    if (it->first > cursor) {
      // Gap [cursor, it->first).
      Segment fresh;
      fresh.end = it->first;
      if (writes) {
        fresh.writer = task;
      } else {
        add_reader(fresh, task);
      }
      segments_.emplace(cursor, std::move(fresh));
      cursor = it->first;
      continue;
    }
    // Segment starting exactly at cursor; boundaries guarantee it ends
    // within [lo, hi].
    RAA_CHECK(it->second.end <= hi);
    touch(it->second);
    cursor = it->second.end;
    ++it;
  }
}

void DependenceRegistry::register_task(TaskId task, std::span<const Dep> deps,
                                       std::vector<TaskId>& preds) {
  for (const Dep& d : deps) {
    if (d.bytes == 0) continue;
    apply(task, d.base, d.base + d.bytes, d.mode, preds);
  }
  // One sort+dedup per registration instead of an O(preds) membership scan
  // per candidate predecessor (the old add_unique was quadratic in the
  // reader count of hot ranges). A task's own earlier accesses must not
  // appear as its predecessors.
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  std::erase(preds, task);
}

}  // namespace raa::rt
