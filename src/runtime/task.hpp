#pragma once
/// \file task.hpp
/// Task descriptors for the RAA tasking runtime: data-access annotations
/// (the OmpSs in/out/inout clauses), programmer attributes, and the internal
/// task control block.
///
/// The programming model follows §1 of the paper: parallel programs are
/// decomposed into tasks annotated with the data they read and write; the
/// runtime derives a Task Dependency Graph (TDG) and executes tasks
/// out-of-order, "in the same way as superscalar processors manage ILP".

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace raa::rt {

/// Runtime-assigned task identifier; ids are dense and start at 0, so they
/// double as TDG node ids.
using TaskId = std::uint32_t;

inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// How a task accesses a registered data region (OmpSs in/out/inout).
enum class AccessMode : std::uint8_t {
  read,       ///< in:    task reads the region
  write,      ///< out:   task overwrites the region entirely
  readwrite,  ///< inout: task reads then updates the region
};

/// A data-region annotation: a byte range plus an access mode. Regions are
/// identified by address, exactly like OmpSs dependences over contiguous
/// data (§5 notes the standard syntax covers contiguous footprints only).
struct Dep {
  std::uintptr_t base = 0;
  std::size_t bytes = 0;
  AccessMode mode = AccessMode::read;

  friend bool operator==(const Dep&, const Dep&) = default;
};

/// in(x): task reads object x.
template <typename T>
Dep in(const T& object) {
  return {reinterpret_cast<std::uintptr_t>(&object), sizeof(T),
          AccessMode::read};
}
/// out(x): task overwrites object x.
template <typename T>
Dep out(T& object) {
  return {reinterpret_cast<std::uintptr_t>(&object), sizeof(T),
          AccessMode::write};
}
/// inout(x): task reads and updates object x.
template <typename T>
Dep inout(T& object) {
  return {reinterpret_cast<std::uintptr_t>(&object), sizeof(T),
          AccessMode::readwrite};
}
/// Span overloads: annotate a contiguous array section.
template <typename T>
Dep in(std::span<const T> s) {
  return {reinterpret_cast<std::uintptr_t>(s.data()), s.size_bytes(),
          AccessMode::read};
}
template <typename T>
Dep out(std::span<T> s) {
  return {reinterpret_cast<std::uintptr_t>(s.data()), s.size_bytes(),
          AccessMode::write};
}
template <typename T>
Dep inout(std::span<T> s) {
  return {reinterpret_cast<std::uintptr_t>(s.data()), s.size_bytes(),
          AccessMode::readwrite};
}

/// Programmer-visible criticality hint (§3.1: "task criticality can be
/// simply annotated by the programmer").
enum class Criticality : std::uint8_t { normal, critical };

/// Optional per-task attributes.
struct TaskAttrs {
  std::string label;                              ///< for traces / DOT dumps
  Criticality criticality = Criticality::normal;  ///< scheduling hint
  double cost_hint = 0.0;  ///< expected work (arbitrary units); 0 = unknown
};

/// One record of the execution trace: which worker ran the task and when
/// (steady-clock nanoseconds since runtime construction).
struct TraceRecord {
  TaskId task = kNoTask;
  std::uint32_t worker = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

namespace detail {

/// Internal task control block. Guarded by the runtime's graph mutex except
/// where noted; task bodies execute outside any lock.
struct TaskBlock {
  TaskId id = kNoTask;
  std::function<void()> body;
  TaskAttrs attrs;

  /// Number of not-yet-finished predecessors. Guarded by the graph mutex.
  std::uint32_t pending_preds = 0;
  /// Direct successors discovered at their spawn time.
  std::vector<TaskBlock*> successors;
  bool finished = false;

  /// Nested-spawn linkage (Runtime::silent_async): the task whose body
  /// spawned this one, and the count of this task's own live children.
  /// Both guarded by the graph mutex; a task completes only after its
  /// children count has drained back to zero (implicit join).
  TaskBlock* parent = nullptr;
  std::uint32_t children = 0;

  /// Filled after execution.
  TraceRecord trace;
};

}  // namespace detail
}  // namespace raa::rt
