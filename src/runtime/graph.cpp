#include "runtime/graph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace raa::tdg {

NodeId Graph::add_node(double cost, std::string label, bool critical_hint) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, cost, critical_hint, std::move(label)});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void Graph::add_edge(NodeId from, NodeId to) {
  RAA_CHECK(from < nodes_.size() && to < nodes_.size());
  RAA_CHECK_MSG(from != to, "self-dependence");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
}

double Graph::total_cost() const noexcept {
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.cost;
  return sum;
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<std::uint32_t> in_deg(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    in_deg[v] = static_cast<std::uint32_t>(pred_[v].size());

  std::deque<NodeId> frontier;
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    if (in_deg[v] == 0) frontier.push_back(static_cast<NodeId>(v));

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    for (const NodeId s : succ_[v])
      if (--in_deg[s] == 0) frontier.push_back(s);
  }
  if (order.size() != nodes_.size())
    throw std::logic_error("tdg::Graph::topo_order: graph has a cycle");
  return order;
}

std::vector<double> Graph::bottom_levels() const {
  const std::vector<NodeId> order = topo_order();
  std::vector<double> b(nodes_.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    double best = 0.0;
    for (const NodeId s : succ_[v]) best = std::max(best, b[s]);
    b[v] = nodes_[v].cost + best;
  }
  return b;
}

std::vector<double> Graph::top_levels() const {
  const std::vector<NodeId> order = topo_order();
  std::vector<double> t(nodes_.size(), 0.0);
  for (const NodeId v : order) {
    double best = 0.0;
    for (const NodeId p : pred_[v]) best = std::max(best, t[p] + nodes_[p].cost);
    t[v] = best;
  }
  return t;
}

double Graph::critical_path_length() const {
  double best = 0.0;
  for (const double b : bottom_levels()) best = std::max(best, b);
  return best;
}

std::vector<NodeId> Graph::critical_path() const {
  if (nodes_.empty()) return {};
  const std::vector<double> b = bottom_levels();

  // Start at a source with maximal bottom level, then greedily follow the
  // successor that carries the remaining longest path.
  NodeId cur = kNoNode;
  double best = -1.0;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (!pred_[v].empty()) continue;
    if (b[v] > best) {
      best = b[v];
      cur = static_cast<NodeId>(v);
    }
  }
  RAA_CHECK(cur != kNoNode);

  std::vector<NodeId> path{cur};
  while (!succ_[cur].empty()) {
    NodeId next = kNoNode;
    double next_b = -1.0;
    for (const NodeId s : succ_[cur]) {
      if (b[s] > next_b) {
        next_b = b[s];
        next = s;
      }
    }
    cur = next;
    path.push_back(cur);
  }
  return path;
}

std::vector<bool> Graph::critical_nodes() const {
  std::vector<bool> mark(nodes_.size(), false);
  if (nodes_.empty()) return mark;
  const std::vector<double> b = bottom_levels();
  const std::vector<double> t = top_levels();
  const double cp = critical_path_length();
  // Tolerance: costs are doubles; membership uses a relative epsilon.
  const double eps = 1e-9 * std::max(1.0, cp);
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    mark[v] = (t[v] + b[v] >= cp - eps);
  return mark;
}

double Graph::parallelism() const {
  const double cp = critical_path_length();
  return cp > 0.0 ? total_cost() / cp : 0.0;
}

std::string Graph::to_dot() const {
  std::ostringstream os;
  os << "digraph tdg {\n  rankdir=TB;\n";
  const std::vector<bool> crit = critical_nodes();
  for (const Node& n : nodes_) {
    os << "  n" << n.id << " [label=\""
       << (n.label.empty() ? ("t" + std::to_string(n.id)) : n.label) << "\\n"
       << n.cost << "\"";
    if (crit[n.id]) os << ", style=filled, fillcolor=salmon";
    os << "];\n";
  }
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    for (const NodeId s : succ_[v]) os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

Graph Synthetic::chain(std::size_t n, double cost) {
  Graph g;
  NodeId prev = kNoNode;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = g.add_node(cost, "c" + std::to_string(i));
    if (prev != kNoNode) g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

Graph Synthetic::fork_join(std::size_t width, double cost,
                           double serial_cost) {
  Graph g;
  const NodeId src = g.add_node(serial_cost, "fork");
  const NodeId sink_id = g.add_node(serial_cost, "join");
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId v = g.add_node(cost, "w" + std::to_string(i));
    g.add_edge(src, v);
    g.add_edge(v, sink_id);
  }
  return g;
}

Graph Synthetic::cholesky(std::size_t tiles, double tile_cost) {
  Graph g;
  const auto t = tiles;
  // id grids; kNoNode marks "not created".
  std::vector<std::vector<NodeId>> trsm(t, std::vector<NodeId>(t, kNoNode));
  std::vector<std::vector<NodeId>> panel(t, std::vector<NodeId>(t, kNoNode));
  // panel[j][i] = last task that updated tile (i, j) (i >= j).

  for (std::size_t k = 0; k < t; ++k) {
    const NodeId potrf =
        g.add_node(tile_cost / 3.0, "potrf" + std::to_string(k), true);
    if (panel[k][k] != kNoNode) g.add_edge(panel[k][k], potrf);
    panel[k][k] = potrf;

    for (std::size_t i = k + 1; i < t; ++i) {
      const NodeId ts = g.add_node(
          tile_cost, "trsm" + std::to_string(k) + "_" + std::to_string(i));
      g.add_edge(potrf, ts);
      if (panel[k][i] != kNoNode) g.add_edge(panel[k][i], ts);
      trsm[k][i] = ts;
      panel[k][i] = ts;
    }
    for (std::size_t i = k + 1; i < t; ++i) {
      for (std::size_t j = k + 1; j <= i; ++j) {
        const bool diag = (i == j);
        const NodeId upd =
            g.add_node(diag ? tile_cost : 2.0 * tile_cost,
                       (diag ? "syrk" : "gemm") + std::to_string(k) + "_" +
                           std::to_string(i) + "_" + std::to_string(j));
        g.add_edge(trsm[k][i], upd);
        if (!diag) g.add_edge(trsm[k][j], upd);
        if (panel[j][i] != kNoNode) g.add_edge(panel[j][i], upd);
        panel[j][i] = upd;
      }
    }
  }
  return g;
}

Graph Synthetic::layered_random(std::size_t layers, std::size_t width,
                                std::size_t max_deg, double cost_lo,
                                double cost_hi, std::uint64_t seed) {
  RAA_CHECK(layers > 0 && width > 0 && max_deg > 0);
  Rng rng{seed};
  Graph g;
  std::vector<NodeId> prev;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    std::vector<NodeId> cur;
    cur.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      const double cost = rng.uniform(cost_lo, cost_hi);
      const NodeId v = g.add_node(
          cost, "L" + std::to_string(layer) + "_" + std::to_string(i));
      if (!prev.empty()) {
        const std::size_t deg =
            1 + static_cast<std::size_t>(rng.below(max_deg));
        // Sample `deg` distinct predecessors from the previous layer.
        std::vector<NodeId> pool = prev;
        rng.shuffle(pool);
        for (std::size_t d = 0; d < deg && d < pool.size(); ++d)
          g.add_edge(pool[d], v);
      }
      cur.push_back(v);
    }
    prev = std::move(cur);
  }
  return g;
}

Graph Synthetic::pipeline(std::size_t frames, std::size_t stages,
                          double stage_cost) {
  Graph g;
  std::vector<std::vector<NodeId>> id(frames, std::vector<NodeId>(stages));
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t s = 0; s < stages; ++s) {
      id[f][s] = g.add_node(
          stage_cost, "f" + std::to_string(f) + "s" + std::to_string(s));
      if (s > 0) g.add_edge(id[f][s - 1], id[f][s]);
      if (f > 0) g.add_edge(id[f - 1][s], id[f][s]);
    }
  }
  return g;
}

}  // namespace raa::tdg
