#pragma once
/// \file worker_pool.hpp
/// Thread-lifecycle substrate shared by every layer that owns worker
/// threads (the tasking runtime's workers, exec::Pool's executors). Owns a
/// set of std::jthread running a caller-supplied loop; the loop observes
/// the stop token. Extracted from the runtime so thread spawn/stop/join
/// policy lives in one place instead of being re-rolled per layer.

#include <functional>
#include <stop_token>
#include <thread>
#include <vector>

namespace raa::exec {

/// Owns `count` threads, each running `loop(stop_token, index)`. The loop
/// is expected to return promptly once the token signals stop (after being
/// woken by whatever condition variable it sleeps on — waking sleepers is
/// the caller's job, WorkerPool only requests the stop).
class WorkerPool {
 public:
  using Loop = std::function<void(std::stop_token, unsigned)>;

  WorkerPool() = default;
  /// request_stop() + join via jthread RAII. Callers whose loops sleep on
  /// a condition variable must stop-and-notify *before* destruction.
  ~WorkerPool() = default;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn `count` threads. Valid on a fresh pool or after join().
  void start(unsigned count, Loop loop);

  /// Ask every thread to stop; returns immediately.
  void request_stop();

  /// Join all threads; the pool can then be start()ed again.
  void join();

  unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  std::vector<std::jthread> threads_;
};

}  // namespace raa::exec
