#include "exec/stealing.hpp"

#include <string>
#include <thread>

#include "common/check.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace raa::exec {

namespace {
/// Owner identity of the current thread: set for the lifetime of a
/// worker_loop, so submit() can prove an owner-deque push is legal and
/// current_worker() can answer without a map lookup.
thread_local const StealingExecutor* t_exec = nullptr;
thread_local unsigned t_worker = 0;

/// Failed-acquire yields before a worker parks on the notifier. Short:
/// parking is cheap (one mutex + condvar) and the single-hardware-thread
/// CI container punishes spinning hard.
constexpr int kYieldRounds = 16;
}  // namespace

StealingExecutor::StealingExecutor(Options options, RunFn run, PollFn poll)
    : options_(options), run_(std::move(run)), poll_(std::move(poll)) {
  RAA_CHECK(run_ != nullptr);
  const unsigned n = options_.num_workers;
  if (options_.steal_rounds == 0) options_.steal_rounds = 1;
  deques_.reserve(n);
  rng_.reserve(n);
  std::uint64_t sm = options_.seed;
  for (unsigned w = 0; w < n; ++w) {
    deques_.push_back(std::make_unique<WorkStealingDeque<void*>>());
    rng_.emplace_back(splitmix64(sm));  // deterministic per-worker stream
  }
  steals_ = std::make_unique<std::atomic<std::uint64_t>[]>(n + 1);
  for (unsigned w = 0; w <= n; ++w)
    steals_[w].store(0, std::memory_order_relaxed);
  // Surface the per-slot cells in the counter registry without copying
  // them: an external gauge summed under "exec.steals" across all live
  // executors. Detached in shutdown(), before any member is torn down.
  obs_token_ = obs::Registry::instance().attach_external(
      "exec.steals", [this] { return steal_count(); });
  try {
    pool_.start(n, [this](std::stop_token stop, unsigned w) {
      worker_loop(stop, w);
    });
  } catch (...) {
    // Thread exhaustion mid-start: wake the workers that did start so
    // their parked commit_wait observes the stop, then join.
    pool_.request_stop();
    notifier_.notify_all();
    pool_.join();
    throw;
  }
}

StealingExecutor::~StealingExecutor() { shutdown(); }

void StealingExecutor::shutdown() {
  if (obs_token_ != 0) {
    // After detach returns, no snapshot is mid-call into our gauge.
    obs::Registry::instance().detach_external(obs_token_);
    obs_token_ = 0;
  }
  pool_.request_stop();
  notifier_.notify_all();
  pool_.join();
}

unsigned StealingExecutor::current_worker() const noexcept {
  return t_exec == this ? t_worker : options_.num_workers;
}

void StealingExecutor::submit(void* item, unsigned hint) {
  RAA_CHECK(item != nullptr);
  if (hint < options_.num_workers && t_exec == this && t_worker == hint) {
    deques_[hint]->push(item);  // owner push: lock-free fast path
  } else {
    const std::scoped_lock lock{inject_mutex_};
    injected_.push_back(item);
  }
  notifier_.notify_one();
}

void* StealingExecutor::pop_injected(bool lifo) {
  const std::scoped_lock lock{inject_mutex_};
  if (injected_.empty()) return nullptr;
  void* item = lifo ? injected_.back() : injected_.front();
  if (lifo)
    injected_.pop_back();
  else
    injected_.pop_front();
  return item;
}

void* StealingExecutor::try_pop(unsigned worker) {
  const unsigned n = options_.num_workers;
  const unsigned self = worker <= n ? worker : n;
  if (self < n) {
    if (void* item = deques_[self]->pop()) return item;
  } else if (void* item = pop_injected(/*lifo=*/true)) {
    return item;
  }
  if (void* item = steal_sweep(self)) return item;
  if (poll_ != nullptr) return poll_(self);
  return nullptr;
}

void* StealingExecutor::steal_sweep(unsigned self) {
  RAA_OBS_HOST_EVENT(exec, steal_attempt, instant, self, 0);
  const unsigned n = options_.num_workers;
  // Victim space: the n worker deques plus the injection queue as victim
  // index n (stolen FIFO — oldest external submission first).
  const unsigned victims = n + 1;
  for (unsigned round = 0; round < options_.steal_rounds; ++round) {
    // Randomized start breaks convoys. Workers draw from their own
    // deterministic stream; external threads share a rotating counter
    // (their victim order is not part of any determinism contract).
    unsigned start = 0;
    if (self < n)
      start = static_cast<unsigned>(rng_[self].below(victims));
    else
      start = static_cast<unsigned>(
          ext_start_.fetch_add(1, std::memory_order_relaxed) % victims);
    for (unsigned k = 0; k < victims; ++k) {
      const unsigned v = (start + k) % victims;
      if (v == self) continue;
      void* item = v < n ? deques_[v]->steal()
                         : pop_injected(/*lifo=*/false);
      if (item != nullptr) {
        steals_[self].fetch_add(1, std::memory_order_relaxed);
        RAA_OBS_HOST_EVENT(exec, steal_success, instant, self, v);
        return item;
      }
    }
  }
  return nullptr;
}

std::uint64_t StealingExecutor::steal_count() const noexcept {
  std::uint64_t total = 0;
  for (unsigned w = 0; w <= options_.num_workers; ++w)
    total += steals_[w].load(std::memory_order_relaxed);
  return total;
}

void StealingExecutor::worker_loop(std::stop_token stop, unsigned w) {
  t_exec = this;
  t_worker = w;
#if RAA_OBS_ENABLED
  obs::set_thread_name("exec-w" + std::to_string(w));
#endif
  while (!stop.stop_requested()) {
    if (void* item = try_pop(w)) {
      run_(item, w);
      continue;
    }
    // Brief yield backoff: absorbs the push-right-after-empty-check
    // window without the full park/unpark round trip.
    void* item = nullptr;
    for (int i = 0; i < kYieldRounds && item == nullptr; ++i) {
      std::this_thread::yield();
      item = try_pop(w);
    }
    if (item != nullptr) {
      run_(item, w);
      continue;
    }
    // Two-phase park. The stop re-check sits after prepare_wait():
    // shutdown() requests the stop *before* notify_all(), so either we
    // read the flag here, or our epoch ticket predates the bump and
    // commit_wait() returns immediately.
    const std::uint64_t epoch = notifier_.prepare_wait();
    if (stop.stop_requested()) {
      notifier_.cancel_wait();
      break;
    }
    item = try_pop(w);
    if (item != nullptr) {
      notifier_.cancel_wait();
      run_(item, w);
      continue;
    }
    RAA_OBS_HOST_EVENT(exec, worker_park, begin, w, 0);
    notifier_.commit_wait(epoch);
    RAA_OBS_HOST_EVENT(exec, worker_park, end, w, 0);
  }
  t_exec = nullptr;
}

}  // namespace raa::exec
