#pragma once
/// \file stealing.hpp
/// Work-stealing executor: per-worker Chase–Lev deques (exec/wsq.hpp), a
/// mutexed injection queue for items submitted from outside the worker
/// set, randomized victim selection with deterministic per-worker RNG
/// seeds, and a two-phase condvar Notifier so idle workers park instead
/// of spinning.
///
/// The executor is payload-agnostic: it moves `void*` items and calls a
/// user RunFn on each. The tasking runtime's Scheduler adapts its
/// TaskBlock* queues onto it; policies that need central ordering
/// (fifo/criticality) plug a PollFn in as an extra work source.
///
/// Host-throughput disclaimer (why this cannot move simulated metrics):
/// everything here decides only *which host thread* runs a task and
/// *when* in wall-clock time. The simulated numbers — fig5 scalability,
/// ablation makespans — are computed by raa::sim::replay over a captured
/// TDG whose node ids, costs (when cost_hints are given) and edges are
/// fixed at spawn time; no replay input depends on host scheduling.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "exec/worker_pool.hpp"
#include "exec/wsq.hpp"

namespace raa::exec {

/// Two-phase parking protocol (the shape of Eigen's EventCount, reduced
/// to a single epoch): a would-be sleeper *announces* itself
/// (prepare_wait: waiters_ increment, then epoch read), re-checks its
/// work sources, and only then sleeps (commit_wait) — it actually blocks
/// only if the epoch is unchanged. A producer makes work visible first,
/// then reads waiters_ behind a seq_cst fence (Dekker-style: either the
/// producer sees the waiter and bumps the epoch, or the waiter's
/// re-check — sequenced after its seq_cst waiters_ increment — sees the
/// produced work). The epoch is bumped under the mutex, so a bump between
/// prepare_wait and commit_wait can never be missed: commit_wait's
/// predicate reads it under the same mutex.
class Notifier {
 public:
  /// Phase 1: announce intent to sleep. Returns the epoch ticket to pass
  /// to commit_wait(). The caller MUST re-check its work sources between
  /// prepare_wait() and commit_wait()/cancel_wait().
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_acquire);
  }

  /// Abandon a prepared wait (work was found on the re-check).
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Phase 2: sleep until the epoch moves past `epoch`.
  void commit_wait(std::uint64_t epoch) {
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != epoch;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

 private:
  void notify(bool all) {
    // Pairs with the waiter's seq_cst waiters_ increment: the producer's
    // work is published before this barrier, so if we read waiters_ == 0
    // here the waiter's subsequent source re-check will see that work.
    // Under TSan the fence is replaced by a seq_cst RMW of waiters_ itself
    // (reads the latest value in modification order — a strictly stronger
    // Dekker half that GCC's -Wtsan can model; see wsq.hpp).
    if constexpr (detail::kTsan) {
      if (waiters_.fetch_add(0, std::memory_order_seq_cst) == 0) return;
    } else {
      detail::fence_seq_cst();
      if (waiters_.load(std::memory_order_relaxed) == 0) return;
    }
    {
      const std::scoped_lock lock{mutex_};
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (all)
      cv_.notify_all();
    else
      cv_.notify_one();
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> waiters_{0};
};

/// Work-stealing executor over `num_workers` threads. Items are opaque
/// non-null pointers; `run` is invoked on the worker that acquired the
/// item. Thread-safe: submit()/try_pop() may be called from any thread.
class StealingExecutor {
 public:
  /// Called with (item, worker) — worker == num_workers when an external
  /// thread ran the item through try_pop().
  using RunFn = std::function<void(void*, unsigned)>;
  /// Optional extra work source consulted after the deques and the
  /// injection queue are dry (central-queue policies). Must be
  /// thread-safe and non-blocking; returns nullptr when empty.
  using PollFn = std::function<void*(unsigned)>;

  struct Options {
    unsigned num_workers = 0;
    std::uint64_t seed = 1;       ///< per-worker victim RNGs derive from it
    unsigned steal_rounds = 2;    ///< full victim sweeps before giving up
  };

  StealingExecutor(Options options, RunFn run, PollFn poll = nullptr);

  /// shutdown() — safe if already shut down.
  ~StealingExecutor();

  StealingExecutor(const StealingExecutor&) = delete;
  StealingExecutor& operator=(const StealingExecutor&) = delete;

  /// Make `item` available and wake a worker. When the calling thread is
  /// worker `hint` of this executor, the item goes to that worker's own
  /// deque (LIFO, lock-free); otherwise to the injection queue.
  void submit(void* item, unsigned hint);

  /// Non-blocking acquire for thread `worker` (external threads pass
  /// num_workers): own source first, then steal sweep, then poll.
  /// Returns nullptr when everything is dry.
  void* try_pop(unsigned worker);

  /// Wake one parked worker / all parked workers (e.g. for shutdown or
  /// after bulk submission).
  void notify_one() { notifier_.notify_one(); }
  void notify_all() { notifier_.notify_all(); }

  /// Stop and join the workers. Idempotent; called by the destructor.
  /// Items still queued are NOT run — drain before shutting down.
  void shutdown();

  /// Id of the calling thread within this executor, or num_workers when
  /// the caller is not one of our workers.
  unsigned current_worker() const noexcept;

  /// Total successful steals (sum over workers + external threads, each
  /// counter bumped with relaxed atomics — a diagnostic, not a fence).
  std::uint64_t steal_count() const noexcept;

  unsigned num_workers() const noexcept { return options_.num_workers; }

 private:
  void worker_loop(std::stop_token stop, unsigned w);
  void* steal_sweep(unsigned w);
  void* pop_injected(bool lifo);

  Options options_;
  RunFn run_;
  PollFn poll_;

  /// One deque per worker; slot w is owned by worker thread w.
  std::vector<std::unique_ptr<WorkStealingDeque<void*>>> deques_;

  /// Items submitted by non-worker threads (spawns from main, from
  /// another runtime's workers, ...). Plain mutexed deque: external
  /// submitters pop the back (LIFO, matching the owner side of a deque),
  /// workers steal the front.
  std::mutex inject_mutex_;
  std::deque<void*> injected_;

  /// Per-worker deterministic victim RNGs (slot w touched only by worker
  /// w); external threads rotate via ext_start_ instead.
  std::vector<Rng> rng_;
  std::atomic<std::uint64_t> ext_start_{0};

  /// Per-slot steal counters, slot num_workers = external threads. These
  /// cells are the single source of truth for steal counts: the obs
  /// counter registry samples them through an "exec.steals" external
  /// gauge attached for the executor's lifetime (see stealing.cpp), so
  /// no second copy of the count exists anywhere.
  std::unique_ptr<std::atomic<std::uint64_t>[]> steals_;
  std::uint64_t obs_token_ = 0;  ///< registry external-gauge handle

  Notifier notifier_;
  WorkerPool pool_;  ///< last member: threads die before the state above
};

}  // namespace raa::exec
