#include "exec/parallel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::exec {

void parallel_for(Pool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  RAA_CHECK(begin <= end && grain > 0);
  if (begin == end) return;
  Pool::Group group;
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit(group, [&body, lo, hi] { body(lo, hi); });
  }
  pool.wait(group);
}

}  // namespace raa::exec
