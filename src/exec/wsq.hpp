#pragma once
/// \file wsq.hpp
/// Chase–Lev work-stealing deque (the weak-memory-model formulation of
/// Lê, Pop, Cohen & Zappa Nardelli, PPoPP'13): a single *owner* thread
/// pushes and pops at the bottom (LIFO, for locality of freshly spawned
/// work), any number of *thief* threads steal from the top (FIFO, so the
/// oldest — typically largest — task migrates). The only atomic
/// read-modify-write on the fast path is the compare-exchange that
/// arbitrates the last-element race between the owner and a thief.
///
/// The ring buffer grows on demand. Retired arrays are kept alive until
/// the deque is destroyed: a thief may still be reading a slot of an old
/// array after the owner swapped in a bigger one, and the CAS on `top_`
/// (not the array load) decides whether that read is used — so retired
/// storage must stay valid, but its *contents* never need to.
///
/// This deliberately breaks with the Core Guidelines CP.100 stance the
/// previous scheduler took ("no hand-rolled lock-free structures"): the
/// structure is a verbatim transcription of a published, model-checked
/// algorithm, confined to this one file, and swept by the TSan CI job
/// plus the owner/thief stress suite in tests/test_stealing.cpp.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"

// Thread sanitizer cannot model std::atomic_thread_fence (GCC rejects it
// outright under -Werror=tsan), so under TSan the lock-free code in this
// layer runs the *fence-free* formulation: fences drop out and the
// fence-adjacent accesses are promoted to seq_cst — the original
// sequentially-consistent Chase–Lev, which TSan models precisely. Outside
// TSan the cheaper fence-based weak-memory version runs.
#if defined(__SANITIZE_THREAD__)
#define RAA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAA_TSAN 1
#endif
#endif

namespace raa::exec {

namespace detail {
#ifdef RAA_TSAN
inline constexpr bool kTsan = true;
#else
inline constexpr bool kTsan = false;
#endif

/// seq_cst under TSan (fence-free formulation), `mo` otherwise.
constexpr std::memory_order sc_or(std::memory_order mo) noexcept {
  return kTsan ? std::memory_order_seq_cst : mo;
}

inline void fence_seq_cst() noexcept {
  if constexpr (!kTsan)
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

inline void fence_release() noexcept {
  if constexpr (!kTsan)
    std::atomic_thread_fence(std::memory_order_release);
}
}  // namespace detail

/// Single-owner / multi-thief deque of trivially copyable `T` where `T{}`
/// is the reserved "empty" sentinel (use pointers). push() and pop() may
/// only be called by the owner thread; steal() by any thread.
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit WorkStealingDeque(std::int64_t capacity = 256) {
    std::int64_t c = 2;
    while (c < capacity) c *= 2;
    ring_.store(new Ring(c), std::memory_order_relaxed);
  }

  ~WorkStealingDeque() {
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Never fails; grows the ring when full.
  void push(T item) {
    RAA_CHECK(item != T{});
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->store(b, item);
    detail::fence_release();
    bottom_.store(b + 1, detail::sc_or(std::memory_order_relaxed));
  }

  /// Owner only. Returns T{} when the deque is empty (or a thief won the
  /// race for the final element).
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, detail::sc_or(std::memory_order_relaxed));
    detail::fence_seq_cst();
    std::int64_t t = top_.load(detail::sc_or(std::memory_order_relaxed));
    T item{};
    if (t <= b) {
      item = a->load(b);
      if (t == b) {
        // Single element left: race a concurrent steal for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          item = T{};  // thief won
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    }
    return item;
  }

  /// Any thread. Returns T{} when empty or when another thief (or the
  /// owner's pop) won the race — callers treat both as "try elsewhere".
  T steal() {
    std::int64_t t = top_.load(detail::sc_or(std::memory_order_acquire));
    detail::fence_seq_cst();
    const std::int64_t b = bottom_.load(detail::sc_or(std::memory_order_acquire));
    T item{};
    if (t < b) {
      // The array load must not be reordered before the top_ load above
      // (acquire), and the CAS below validates that slot t was still ours.
      Ring* a = ring_.load(std::memory_order_acquire);
      item = a->load(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        return T{};  // lost the race; `item` may be stale — discard it
    }
    return item;
  }

  /// Approximate (racy) — for stats and tests that quiesce first.
  std::int64_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }
  bool empty() const noexcept { return size() == 0; }

  std::int64_t capacity() const noexcept {
    return ring_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  /// Power-of-two ring of atomic slots, indexed modulo capacity.
  struct Ring {
    explicit Ring(std::int64_t c)
        : capacity(c), mask(c - 1),
          slots(std::make_unique<std::atomic<T>[]>(static_cast<std::size_t>(c))) {}

    T load(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    void store(std::int64_t i, T v) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(
          v, std::memory_order_relaxed);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  /// Owner only: double the ring, copying live entries [t, b).
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->store(i, old->load(i));
    retired_.push_back(old);  // thieves may still be reading it
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<Ring*> retired_;  ///< owner-only; freed in the destructor
};

}  // namespace raa::exec
