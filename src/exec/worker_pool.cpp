#include "exec/worker_pool.hpp"

#include "common/check.hpp"

namespace raa::exec {

void WorkerPool::start(unsigned count, Loop loop) {
  RAA_CHECK_MSG(threads_.empty(),
                "WorkerPool::start on a pool that is already running");
  RAA_CHECK(loop != nullptr || count == 0);
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    threads_.emplace_back(
        [loop, i](std::stop_token stop) { loop(stop, i); });
}

void WorkerPool::request_stop() {
  for (auto& t : threads_) t.request_stop();
}

void WorkerPool::join() {
  request_stop();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

}  // namespace raa::exec
