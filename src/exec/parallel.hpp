#pragma once
/// \file parallel.hpp
/// Structured-parallelism primitives over exec::Pool.
///
///  * parallel_for — chunked index-range fan-out with a joining wait; the
///    exception of the lowest-index failed chunk propagates.
///  * ordered_reduce — fan out n independent tasks and merge their results
///    on the *calling thread, strictly in submission order*, regardless of
///    the order in which they complete. This is what keeps every parallel
///    consumer in the repo deterministic: bench --jobs merges scenario
///    reports in registration order, run_comparison assigns the
///    cache_only/hybrid halves by index, never by finishing time.
///
/// Both entry points help-run queued tasks while waiting (see pool.hpp),
/// so they compose: a parallel_for body may call ordered_reduce on the
/// same pool.

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "exec/pool.hpp"

namespace raa::exec {

/// Split [begin, end) into chunks of at most `grain` indices, run
/// body(lo, hi) for each chunk across the pool (the caller helps), and
/// return when all chunks finished. If chunks threw, rethrows the
/// exception of the lowest-index chunk.
void parallel_for(Pool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Run task(0..n-1) across the pool and call merge(i, result_i) on the
/// calling thread in index order. merge(i) runs as soon as result i is
/// available and all results < i are merged — completion order never
/// reorders the reduction. If task i throws, results 0..i-1 are still
/// merged, every task still runs to completion, and the lowest-index
/// exception is rethrown.
template <class R, class TaskFn, class MergeFn>
void ordered_reduce(Pool& pool, std::size_t n, TaskFn&& task, MergeFn&& merge) {
  if (n == 0) return;
  struct Slot {
    std::optional<R> value;
    bool done = false;  ///< true once the task finished (value empty: threw)
  };
  std::vector<Slot> slots(n);
  std::mutex mutex;  // guards slots
  Pool::Group group;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit(group, [&, i] {
      try {
        R r = task(i);
        const std::scoped_lock lock{mutex};
        slots[i].value = std::move(r);
        slots[i].done = true;
      } catch (...) {
        {
          const std::scoped_lock lock{mutex};
          slots[i].done = true;
        }
        throw;  // captured by the pool under the group's submission index
      }
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    pool.help_while(
        [&] {
          const std::scoped_lock lock{mutex};
          return !slots[i].done;
        },
        &group);
    std::optional<R> value;
    {
      const std::scoped_lock lock{mutex};
      value = std::move(slots[i].value);
    }
    if (!value) break;  // task i failed; drain and rethrow below
    try {
      merge(i, std::move(*value));
    } catch (...) {
      // Drain before unwinding: the remaining tasks reference the slots.
      (void)pool.wait_collect(group);
      throw;
    }
  }
  pool.wait(group);
}

}  // namespace raa::exec
