#include "exec/pool.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace raa::exec {

Pool::Pool(unsigned workers) {
  try {
    workers_.start(workers, [this](std::stop_token stop, unsigned) {
      worker_loop(stop);
    });
  } catch (...) {
    // Thread exhaustion mid-spawn: wake and join the workers that did
    // start (their CV predicate is only re-evaluated on notify, so the
    // jthread destructors' bare request_stop would hang) and propagate.
    shutdown_workers();
    throw;
  }
}

void Pool::shutdown_workers() {
  {
    const std::scoped_lock lock{mutex_};
    stopping_ = true;
  }
  workers_.request_stop();
  cv_.notify_all();
  workers_.join();
}

Pool::~Pool() {
  shutdown_workers();
  // Leftover tasks mean a group was destroyed without wait() — a contract
  // violation; its lambdas' captures may already dangle, so dropping them
  // unrun is the only safe option.
  queue_.clear();
}

void Pool::submit(Group& g, std::function<void()> fn) {
  RAA_CHECK(fn != nullptr);
  {
    const std::scoped_lock lock{mutex_};
    queue_.push_back(Task{std::move(fn), &g, g.submitted++});
    ++epoch_;
  }
  cv_.notify_all();
}

bool Pool::run_one(const Group* only) {
  Task task;
  {
    const std::scoped_lock lock{mutex_};
    auto it = queue_.begin();
    if (only != nullptr)
      it = std::find_if(queue_.begin(), queue_.end(),
                        [only](const Task& t) { return t.group == only; });
    if (it == queue_.end()) return false;
    task = std::move(*it);
    queue_.erase(it);
  }
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::scoped_lock lock{mutex_};
    Group& g = *task.group;
    ++g.finished;
    if (error && (!g.error || task.index < g.error_index)) {
      // Move, don't share: the group's reference must be the only one, so
      // the exception object is freed by whoever finally takes it (the
      // waiter), never by a worker racing the waiter's rethrow-and-read.
      g.error = std::move(error);
      g.error_index = task.index;
    }
    ++epoch_;
  }
  cv_.notify_all();
  return true;
}

void Pool::worker_loop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    if (run_one()) continue;
    std::unique_lock lock{mutex_};
    cv_.wait(lock,
             [&] { return !queue_.empty() || stopping_ || stop.stop_requested(); });
  }
}

void Pool::help_while(const std::function<bool()>& not_ready,
                      const Group* only) {
  for (;;) {
    std::uint64_t seen;
    {
      const std::scoped_lock lock{mutex_};
      seen = epoch_;
    }
    // Predicate runs with no pool lock held: it may take external locks
    // (the sharded simulator checks per-core channel state here).
    if (!not_ready()) return;
    if (run_one(only)) continue;
    std::unique_lock lock{mutex_};
    // Any enqueue/completion since `seen` was captured re-tests the
    // predicate instead of sleeping through its flip.
    cv_.wait(lock, [&] { return epoch_ != seen; });
  }
}

bool Pool::failed(const Group& g) const {
  const std::scoped_lock lock{mutex_};
  return g.error != nullptr;
}

std::exception_ptr Pool::take_error(Group& g) {
  const std::scoped_lock lock{mutex_};
  std::exception_ptr error = std::exchange(g.error, nullptr);
  g.submitted = 0;
  g.finished = 0;
  g.error_index = 0;
  return error;
}

void Pool::wait(Group& g) {
  if (std::exception_ptr error = wait_collect(g))
    std::rethrow_exception(error);
}

std::exception_ptr Pool::wait_collect(Group& g) {
  help_while(
      [&] {
        const std::scoped_lock lock{mutex_};
        return g.finished < g.submitted;
      },
      &g);
  return take_error(g);
}

bool Pool::wait_for(Group& g, std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool done;
    std::uint64_t seen;
    {
      const std::scoped_lock lock{mutex_};
      done = g.finished >= g.submitted;
      seen = epoch_;
    }
    if (done) break;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    if (run_one(&g)) continue;
    std::unique_lock lock{mutex_};
    // Same missed-wakeup guard as help_while: any enqueue/completion since
    // `seen` re-tests the group instead of sleeping through its finish.
    if (!cv_.wait_until(lock, deadline, [&] { return epoch_ != seen; }))
      return false;
  }
  if (std::exception_ptr error = take_error(g))
    std::rethrow_exception(error);
  return true;
}

}  // namespace raa::exec
