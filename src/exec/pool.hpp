#pragma once
/// \file pool.hpp
/// Bounded task-queue executor: the reusable parallel-execution substrate
/// under the sharded memory simulator (memsim/system.cpp) and the bench
/// harness's --jobs fan-out.
///
/// Design points that the layers above rely on:
///  * Work-helping waits. Any thread blocked in wait()/help_while() pops
///    and runs queued tasks itself — restricted to the group it is
///    waiting on, so a waiter makes progress on exactly the work it
///    needs and never executes unrelated tasks inside its own timing
///    window. A Pool with zero worker threads is therefore a valid
///    (deterministic, inline) executor, and a task may submit subtasks
///    to its own pool and wait on them without risking worker starvation
///    deadlock.
///  * Deterministic failure reporting. Every task carries its submission
///    index within its Group; wait() rethrows the exception of the
///    *lowest-index* failed task, independent of completion order.
///  * Reuse. Groups reset on wait(); a pool is submitted to repeatedly
///    over its lifetime (every System::run, every bench unit).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>

#include "exec/worker_pool.hpp"

namespace raa::exec {

/// See file comment.
class Pool {
 public:
  /// Tracks one batch of submitted tasks. Owned by the submitting scope,
  /// which must wait() it before destruction; all bookkeeping fields are
  /// guarded by the pool mutex.
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

   private:
    friend class Pool;
    std::size_t submitted = 0;
    std::size_t finished = 0;
    /// Submission index of the first (lowest-index) failed task.
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  /// Spawns `workers` threads. 0 is valid: every task then runs inline in
  /// some thread's wait()/help_while().
  explicit Pool(unsigned workers);

  /// Joins the workers. Tasks still queued — possible only when a Group
  /// was destroyed without wait(), violating its contract — are dropped
  /// unrun (their captures may already dangle).
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned workers() const noexcept { return workers_.size(); }

  /// Enqueue `fn` under `g`. Runs on a worker or inside a helping wait;
  /// may be called from inside a task (nested submission).
  void submit(Group& g, std::function<void()> fn);

  /// Help-run queued tasks *of `g`* until every task of `g` has finished,
  /// then rethrow the lowest-index captured exception (if any). Resets
  /// `g`. Helping is group-restricted on purpose: a waiter must never
  /// execute unrelated work inside its own timing window (the bench
  /// harness records per-unit wall clocks around these waits), and the
  /// awaited tasks are by definition queued or already running, so
  /// restricted helping cannot starve.
  void wait(Group& g);

  /// wait() variant that returns the error instead of throwing (for
  /// cancellation paths that are already unwinding). Resets `g`.
  std::exception_ptr wait_collect(Group& g);

  /// Deadline-aware wait(): like wait(), but gives up once `timeout` has
  /// elapsed. Returns true when every task of `g` finished (then resets
  /// `g` and rethrows the lowest-index error exactly like wait()); false
  /// on expiry, leaving `g` *unreset* — the caller may keep working and
  /// wait()/wait_for() the same group again later. Helping is
  /// group-restricted as in wait(), and the deadline is only observed
  /// between helped tasks: on a zero-worker pool a single long task can
  /// overshoot it, so deadline supervisors (the fleet watchdog) should
  /// run on a pool with workers >= 1 and pair the expiry with cooperative
  /// cancellation of the task itself.
  bool wait_for(Group& g, std::chrono::nanoseconds timeout);

  /// True once any task of `g` has finished with an exception.
  bool failed(const Group& g) const;

  /// Help-run queued tasks while `not_ready()` returns true. Between
  /// tasks the predicate is re-evaluated with no pool lock held (it may
  /// take its own locks); when no runnable task is queued the caller
  /// sleeps until any task is enqueued or finishes. With `only` set,
  /// helping is restricted to that group's tasks (see wait()). The
  /// condition must be flipped by a task of this pool (or already be
  /// false), else this never returns.
  void help_while(const std::function<bool()>& not_ready,
                  const Group* only = nullptr);

 private:
  struct Task {
    std::function<void()> fn;
    Group* group = nullptr;
    std::size_t index = 0;
  };

  /// Pop-and-run one queued task — the oldest overall, or the oldest of
  /// `only`'s — and return true; false when none was eligible.
  bool run_one(const Group* only = nullptr);
  void worker_loop(std::stop_token stop);
  /// Stop, wake and join the worker threads.
  void shutdown_workers();
  std::exception_ptr take_error(Group& g);

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< signalled on enqueue and completion
  std::deque<Task> queue_;
  /// Bumped on every enqueue/completion; helping waiters use it to avoid
  /// missed wakeups between predicate check and sleep.
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;
  WorkerPool workers_;
};

}  // namespace raa::exec
