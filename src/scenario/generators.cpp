#include "scenario/generators.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace raa::scen {

namespace {

std::uint64_t slice_elems(const Slice& s, std::uint32_t elem_bytes) {
  RAA_CHECK(elem_bytes > 0);
  const std::uint64_t n = s.bytes / elem_bytes;
  RAA_CHECK_MSG(n > 0, "slice smaller than one element");
  return n;
}

}  // namespace

// --- zipf hot-set ---------------------------------------------------------

ZipfProgram::ZipfProgram(const ZipfParams& p, std::uint64_t seed)
    : p_(p), rng_(seed) {
  const std::uint64_t elems = slice_elems(p_.slice, p_.elem_bytes);
  RAA_CHECK(p_.hot_fraction > 0.0 && p_.hot_fraction < 1.0);
  RAA_CHECK(p_.hot_weight >= 0.0 && p_.hot_weight <= 1.0);
  hot_elems_ = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(p_.hot_fraction * static_cast<double>(elems)),
      1, elems - 1);
  cold_elems_ = elems - hot_elems_;
}

std::size_t ZipfProgram::fill(std::span<mem::Access> out) {
  std::size_t n = 0;
  while (n < out.size() && done_ < p_.accesses) {
    const bool hot = rng_.chance(p_.hot_weight);
    const std::uint64_t idx =
        hot ? rng_.below(hot_elems_) : hot_elems_ + rng_.below(cold_elems_);
    const bool store =
        p_.store_fraction > 0.0 && rng_.chance(p_.store_fraction);
    out[n++] = mem::Access{p_.slice.base + idx * p_.elem_bytes, store, p_.ref,
                           p_.gap_cycles};
    ++done_;
  }
  return n;
}

// --- pointer chase --------------------------------------------------------

PointerChaseProgram::PointerChaseProgram(const PointerChaseParams& p,
                                         std::uint64_t seed)
    : p_(p) {
  const std::uint64_t elems = slice_elems(p_.slice, p_.elem_bytes);
  RAA_CHECK_MSG(elems >= 2, "pointer chase needs at least two elements");
  RAA_CHECK_MSG(elems <= (1ull << 26),
                "pointer-chase slice too large to materialise the cycle");
  // Sattolo's algorithm: a uniformly random single-cycle permutation, so
  // the walk visits every element exactly once per lap.
  next_.resize(elems);
  for (std::uint64_t i = 0; i < elems; ++i)
    next_[i] = static_cast<std::uint32_t>(i);
  Rng rng{seed};
  for (std::uint64_t i = elems - 1; i > 0; --i)
    std::swap(next_[i], next_[rng.below(i)]);
}

std::size_t PointerChaseProgram::fill(std::span<mem::Access> out) {
  std::size_t n = 0;
  while (n < out.size() && done_ < p_.accesses) {
    out[n++] = mem::Access{p_.slice.base + pos_ * p_.elem_bytes, false, p_.ref,
                           p_.gap_cycles};
    pos_ = next_[pos_];
    ++done_;
  }
  return n;
}

// --- stencil halo ---------------------------------------------------------

StencilProgram::StencilProgram(const StencilParams& p) : p_(p) {
  in_elems_ = slice_elems(p_.in_region, p_.elem_bytes);
  RAA_CHECK(p_.elems > 0);
  RAA_CHECK_MSG(p_.elem_offset + p_.elems <= in_elems_,
                "stencil slice runs past the input region");
  RAA_CHECK_MSG(
      (p_.elem_offset + p_.elems) * p_.elem_bytes <= p_.out_region.bytes,
      "stencil slice runs past the output region");
}

std::size_t StencilProgram::fill(std::span<mem::Access> out) {
  const std::uint32_t taps = 2 * p_.halo + 1;
  std::size_t n = 0;
  while (n < out.size() && sweep_ < p_.sweeps) {
    const std::uint64_t g = p_.elem_offset + i_;  // global element index
    if (tap_ < taps) {
      // Tap window around g, clamped to the grid: edge taps of interior
      // cores land in the neighbouring core's slice (the halo).
      std::uint64_t t = g + tap_;
      t = t < p_.halo ? 0 : t - p_.halo;
      t = std::min(t, in_elems_ - 1);
      const bool local = t >= p_.elem_offset && t < p_.elem_offset + p_.elems;
      out[n++] =
          mem::Access{p_.in_region.base + t * p_.elem_bytes, false,
                      local ? p_.in_ref : p_.halo_ref,
                      tap_ == 0 ? p_.gap_cycles : 0};
      ++tap_;
    } else {
      out[n++] = mem::Access{p_.out_region.base + g * p_.elem_bytes, true,
                             p_.out_ref, 0};
      tap_ = 0;
      if (++i_ >= p_.elems) {
        i_ = 0;
        ++sweep_;
      }
    }
  }
  return n;
}

// --- producer / consumer --------------------------------------------------

ProducerConsumerProgram::ProducerConsumerProgram(
    const ProducerConsumerParams& p)
    : p_(p) {
  RAA_CHECK(p_.cores > 0 && p_.core < p_.cores);
  RAA_CHECK(p_.slot_bytes > 0);
  RAA_CHECK_MSG(p_.slot_bytes * p_.cores <= p_.ring.bytes,
                "ring region smaller than cores * slot_bytes");
  slot_elems_ = slice_elems(Slice{0, p_.slot_bytes}, p_.elem_bytes);
  own_base_ = p_.ring.base + std::uint64_t{p_.core} * p_.slot_bytes;
  const unsigned peer = (p_.core + p_.cores - 1) % p_.cores;
  peer_base_ = p_.ring.base + std::uint64_t{peer} * p_.slot_bytes;
}

std::size_t ProducerConsumerProgram::fill(std::span<mem::Access> out) {
  std::size_t n = 0;
  while (n < out.size() && it_ < p_.iterations) {
    const std::uint64_t off = (it_ % slot_elems_) * p_.elem_bytes;
    if (!consuming_) {
      out[n++] = mem::Access{own_base_ + off, true, p_.ref, p_.gap_cycles};
      consuming_ = true;
    } else {
      out[n++] = mem::Access{peer_base_ + off, false, p_.ref, 0};
      consuming_ = false;
      ++it_;
    }
  }
  return n;
}

// --- bursty on/off --------------------------------------------------------

BurstyProgram::BurstyProgram(const BurstyParams& p, std::uint64_t seed)
    : p_(p), rng_(seed) {
  elems_ = slice_elems(p_.slice, p_.elem_bytes);
  RAA_CHECK(p_.burst_len > 0);
}

std::size_t BurstyProgram::fill(std::span<mem::Access> out) {
  std::size_t n = 0;
  while (n < out.size() && burst_ < p_.bursts) {
    const bool store =
        p_.store_fraction > 0.0 && rng_.chance(p_.store_fraction);
    out[n++] = mem::Access{p_.slice.base + rng_.below(elems_) * p_.elem_bytes,
                           store, p_.ref, i_ == 0 ? p_.gap_off : p_.gap_on};
    if (++i_ >= p_.burst_len) {
      i_ = 0;
      ++burst_;
    }
  }
  return n;
}

}  // namespace raa::scen
