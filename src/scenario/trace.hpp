#pragma once
/// \file trace.hpp
/// Compact binary access traces: record any CoreProgram's stream while it
/// runs, persist the whole run (config + mode + regions + per-core
/// streams) as one self-contained file, and replay it later through the
/// batched CoreProgram::fill path.
///
/// Why per-core streams and not one interleaved log: the simulator's
/// interleave is *derived* (the core with the smallest local clock runs
/// next), so the per-core program-order streams are the complete, minimal
/// description of a run — replaying them through the same System
/// reproduces every interleave decision, hence Metrics field-identical to
/// the recorded run (pinned by tests/test_scenario.cpp). Recording works
/// under any shard count: each core's program is only ever pulled by one
/// lane at a time, and the bytes captured are identical for every N.
///
/// Encoding (little-endian, unsigned LEB128 varints): one flags byte per
/// access — store bit, 2-bit ref class, has-gap bit, repeat-delta bit —
/// followed by a zigzag varint address delta (omitted when the delta
/// repeats the previous one) and a varint gap (when present). Linear
/// streams therefore cost ~1 byte/access; random streams ~4-6.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "memsim/access.hpp"
#include "memsim/config.hpp"

namespace raa::scen {

inline constexpr std::uint32_t kTraceVersion = 2;

/// A fully self-contained recorded run: everything System::run needs to
/// reproduce the simulation bit-for-bit.
struct TraceData {
  mem::SystemConfig config;
  mem::HierarchyMode mode = mem::HierarchyMode::cache_only;
  std::string name;
  std::vector<mem::Region> regions;

  struct CoreStream {
    std::uint64_t count = 0;  ///< accesses encoded in `bytes`
    std::vector<std::uint8_t> bytes;
  };
  std::vector<CoreStream> cores;

  /// Serialize / deserialize the single-file format. Both return false and
  /// fill `error` (when non-null) on I/O or format problems.
  bool write_file(const std::string& path, std::string* error = nullptr) const;
  static std::optional<TraceData> read_file(const std::string& path,
                                            std::string* error = nullptr);
};

/// Encode a raw access sequence with the per-access trace codec (the same
/// encoder record_workload drives); exposed so property tests and tools
/// can exercise the codec without a simulation run.
TraceData::CoreStream encode_accesses(std::span<const mem::Access> accesses);

/// Decode one encoded core stream back into accesses. Throws
/// (std::logic_error via RAA_CHECK) on a malformed stream; streams loaded
/// through TraceData::read_file are pre-validated and never throw here.
std::vector<mem::Access> decode_stream(const TraceData::CoreStream& cs);

/// Wrap every program of `w` so a subsequent System::run records each
/// core's access stream into `trace` (whose regions/cores are reset from
/// the workload). `trace` must outlive the run and must not be moved while
/// recording. config/mode/name are captured for the file header.
void record_workload(mem::Workload& w, const mem::SystemConfig& config,
                     mem::HierarchyMode mode, TraceData& trace);

/// Build a workload that replays `trace` (regions copied, one TraceProgram
/// per recorded core). The returned programs share ownership of the trace.
mem::Workload make_replay_workload(std::shared_ptr<const TraceData> trace);

/// CoreProgram streaming one recorded core stream back in batches.
class TraceProgram final : public mem::CoreProgram {
 public:
  TraceProgram(std::shared_ptr<const TraceData> trace, std::size_t core);

  bool next(mem::Access& out) override { return fill({&out, 1}) == 1; }
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  std::shared_ptr<const TraceData> trace_;  ///< keeps the bytes alive
  const std::uint8_t* p_ = nullptr;
  const std::uint8_t* end_ = nullptr;
  std::uint64_t remaining_ = 0;
  std::uint64_t prev_addr_ = 0;
  std::int64_t prev_delta_ = 0;
};

}  // namespace raa::scen
