#include "scenario/trace.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"

namespace raa::scen {

namespace {

constexpr char kMagic[4] = {'R', 'A', 'A', 'T'};

// Per-access flags byte.
constexpr std::uint8_t kFlagStore = 1u << 0;
constexpr std::uint8_t kFlagRefShift = 1;  // bits 1-2
constexpr std::uint8_t kFlagRefMask = 0x3;
constexpr std::uint8_t kFlagHasGap = 1u << 3;
constexpr std::uint8_t kFlagRepeatDelta = 1u << 4;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    RAA_CHECK_MSG(p < end, "truncated trace stream");
    const std::uint8_t b = *p++;
    v |= std::uint64_t{b & 0x7Fu} << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    RAA_CHECK_MSG(shift < 64, "overlong varint in trace stream");
  }
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Encoder for one core's stream (also the recorder's per-core state).
struct Encoder {
  TraceData::CoreStream* out = nullptr;
  std::uint64_t prev_addr = 0;
  std::int64_t prev_delta = 0;

  void encode(const mem::Access& a) {
    const std::int64_t delta =
        static_cast<std::int64_t>(a.addr - prev_addr);  // wrapping
    std::uint8_t flags =
        static_cast<std::uint8_t>((static_cast<unsigned>(a.ref) & kFlagRefMask)
                                  << kFlagRefShift);
    if (a.is_store) flags |= kFlagStore;
    if (a.gap_cycles != 0) flags |= kFlagHasGap;
    if (delta == prev_delta) flags |= kFlagRepeatDelta;
    out->bytes.push_back(flags);
    if (delta != prev_delta) put_varint(out->bytes, zigzag(delta));
    if (a.gap_cycles != 0) put_varint(out->bytes, a.gap_cycles);
    prev_addr = a.addr;
    prev_delta = delta;
    ++out->count;
  }
};

/// Pass-through CoreProgram that encodes everything the inner program
/// produces. Owns the inner program; the encoder writes into the
/// TraceData's per-core stream (stable storage owned by the caller).
class RecordingProgram final : public mem::CoreProgram {
 public:
  RecordingProgram(std::unique_ptr<mem::CoreProgram> inner,
                   TraceData::CoreStream* out)
      : inner_(std::move(inner)) {
    enc_.out = out;
  }

  bool next(mem::Access& out) override { return fill({&out, 1}) == 1; }

  std::size_t fill(std::span<mem::Access> out) override {
    const std::size_t n = inner_->fill(out);
    for (std::size_t i = 0; i < n; ++i) enc_.encode(out[i]);
    return n;
  }

 private:
  std::unique_ptr<mem::CoreProgram> inner_;
  Encoder enc_;
};

// --- fixed-width file-header helpers (little-endian) ----------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  std::string err;

  bool fail(const char* msg) {
    if (err.empty()) err = msg;
    return false;
  }
  bool need(std::size_t n, const char* what) {
    return static_cast<std::size_t>(end - p) >= n ? true : fail(what);
  }
  bool u32(std::uint32_t& v) {
    if (!need(4, "truncated header")) return false;
    v = 0;
    for (int k = 0; k < 4; ++k) v |= std::uint32_t{p[k]} << (8 * k);
    p += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!need(8, "truncated header")) return false;
    v = 0;
    for (int k = 0; k < 8; ++k) v |= std::uint64_t{p[k]} << (8 * k);
    p += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool varint(std::uint64_t& v) {
    v = 0;
    unsigned shift = 0;
    while (true) {
      if (!need(1, "truncated varint")) return false;
      const std::uint8_t b = *p++;
      v |= std::uint64_t{b & 0x7Fu} << shift;
      if (!(b & 0x80)) return true;
      shift += 7;
      if (shift >= 64) return fail("overlong varint");
    }
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!varint(n)) return false;
    if (!need(n, "truncated string")) return false;
    s.assign(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

/// Validate that an encoded core stream decodes cleanly: exactly `count`
/// accesses, every varint complete, and no trailing bytes. read_file runs
/// this over every stream so a truncated or bit-flipped file fails with a
/// diagnostic at load time instead of tripping RAA_CHECK (or worse) deep
/// inside a replay run.
const char* validate_stream(const TraceData::CoreStream& cs) {
  const std::uint8_t* p = cs.bytes.data();
  const std::uint8_t* end = p + cs.bytes.size();
  const auto skip_varint = [&]() -> const char* {
    unsigned shift = 0;
    while (true) {
      if (p >= end) return "truncated varint";
      const std::uint8_t b = *p++;
      if (!(b & 0x80)) return nullptr;
      shift += 7;
      if (shift >= 64) return "overlong varint";
    }
  };
  for (std::uint64_t i = 0; i < cs.count; ++i) {
    if (p >= end) return "stream ends before its access count";
    const std::uint8_t flags = *p++;
    if (!(flags & kFlagRepeatDelta))
      if (const char* e = skip_varint()) return e;
    if (flags & kFlagHasGap)
      if (const char* e = skip_varint()) return e;
  }
  if (p != end) return "trailing bytes after the last access";
  return nullptr;
}

/// SystemConfig fields in serialization order. Keeping the walk in one
/// template means writer and reader cannot drift apart.
template <typename U32, typename F64>
void walk_config(mem::SystemConfig& c, U32&& u32, F64&& f64) {
  u32(c.tiles), u32(c.mesh_x), u32(c.mesh_y), u32(c.mem_controllers);
  u32(c.line_bytes), u32(c.l1_bytes), u32(c.l1_assoc), u32(c.l2_bank_bytes);
  u32(c.l2_assoc), u32(c.spm_bytes), u32(c.dma_chunk_bytes);
  u32(c.lat_l1_hit), u32(c.lat_spm_hit), u32(c.lat_l2_hit), u32(c.lat_dir);
  u32(c.lat_filter), u32(c.memory.flat.lat_dram), u32(c.lat_router);
  u32(c.lat_link), u32(c.memory.flat.dram_cycles_per_line);
  f64(c.e_l1_hit), f64(c.e_l1_probe), f64(c.e_spm), f64(c.e_l2);
  f64(c.e_dir), f64(c.e_filter), f64(c.memory.flat.e_dram_line),
      f64(c.e_flit_hop);
  f64(c.e_static_per_tile_cycle);
}

/// Banked-backend parameters in serialization order (trace version 2).
/// Zero is legal for the t_* and refresh fields, so these stay out of the
/// walk_config nonzero sanity sweep and get their own range check.
template <typename U32, typename F64>
void walk_banked(mem::BankedBackendParams& b, U32&& u32, F64&& f64) {
  u32(b.channels), u32(b.banks_per_channel), u32(b.row_bytes);
  u32(b.t_rp), u32(b.t_rcd), u32(b.t_cas), u32(b.line_cycles);
  u32(b.refresh_interval), u32(b.refresh_cycles), u32(b.dma_cycles_per_line);
  f64(b.e_line), f64(b.e_activate), f64(b.e_refresh);
}

}  // namespace

bool TraceData::write_file(const std::string& path, std::string* error) const {
  std::vector<std::uint8_t> buf;
  for (const char m : kMagic) buf.push_back(static_cast<std::uint8_t>(m));
  put_u32(buf, kTraceVersion);
  mem::SystemConfig c = config;
  walk_config(
      c, [&](unsigned v) { put_u32(buf, v); },
      [&](double v) { put_f64(buf, v); });
  put_u32(buf, static_cast<std::uint32_t>(c.memory.kind));
  walk_banked(
      c.memory.banked, [&](unsigned v) { put_u32(buf, v); },
      [&](double v) { put_f64(buf, v); });
  buf.push_back(mode == mem::HierarchyMode::hybrid ? 1 : 0);
  put_str(buf, name);
  put_u32(buf, static_cast<std::uint32_t>(regions.size()));
  for (const auto& r : regions) {
    put_str(buf, r.name);
    put_u64(buf, r.base);
    put_u64(buf, r.bytes);
    buf.push_back(static_cast<std::uint8_t>(r.ref));
  }
  put_u32(buf, static_cast<std::uint32_t>(cores.size()));
  for (const auto& cs : cores) {
    put_u64(buf, cs.count);
    put_varint(buf, cs.bytes.size());
    buf.insert(buf.end(), cs.bytes.begin(), cs.bytes.end());
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

std::optional<TraceData> TraceData::read_file(const std::string& path,
                                              std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<TraceData> {
    if (error) *error = path + ": " + msg;
    return std::nullopt;
  };

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return fail("cannot open for reading");
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    buf.insert(buf.end(), chunk, chunk + got);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return fail("read error");

  Reader rd{buf.data(), buf.data() + buf.size()};
  if (!rd.need(4, "truncated magic") || std::memcmp(rd.p, kMagic, 4) != 0)
    return fail("not a RAA trace file (bad magic)");
  rd.p += 4;
  std::uint32_t version = 0;
  if (!rd.u32(version)) return fail(rd.err);
  if (version != kTraceVersion)
    return fail("unsupported trace version " + std::to_string(version) +
                " (want " + std::to_string(kTraceVersion) + ")");

  TraceData t;
  bool ok = true;
  walk_config(
      t.config, [&](unsigned& v) {
        std::uint32_t x = 0;
        ok = ok && rd.u32(x);
        v = x;
      },
      [&](double& v) { ok = ok && rd.f64(v); });
  if (!ok) return fail(rd.err);
  // Config sanity: these fields come from an untrusted file but feed
  // straight into System setup (divisions, mesh construction). Apply the
  // same rules the scenario parser enforces.
  {
    bool bad = false;
    walk_config(
        t.config, [&](unsigned& v) { bad = bad || v == 0; },
        [&](double& v) { bad = bad || !(v >= 0.0); });
    if (bad) return fail("config field out of range (zero or negative)");
    if (t.config.tiles != t.config.mesh_x * t.config.mesh_y)
      return fail("config tiles != mesh_x * mesh_y");
    if (t.config.dma_chunk_bytes % t.config.line_bytes != 0)
      return fail("config dma_chunk_bytes not a multiple of line_bytes");
  }
  std::uint32_t backend_kind = 0;
  if (!rd.u32(backend_kind)) return fail(rd.err);
  if (backend_kind > 1) return fail("bad memory backend kind");
  t.config.memory.kind = static_cast<mem::MemBackendKind>(backend_kind);
  walk_banked(
      t.config.memory.banked, [&](unsigned& v) {
        std::uint32_t x = 0;
        ok = ok && rd.u32(x);
        v = x;
      },
      [&](double& v) { ok = ok && rd.f64(v); });
  if (!ok) return fail(rd.err);
  {
    const mem::BankedBackendParams& b = t.config.memory.banked;
    if (b.channels == 0 || b.banks_per_channel == 0 || b.row_bytes == 0 ||
        b.line_cycles == 0 || b.dma_cycles_per_line == 0)
      return fail("banked memory field out of range (zero)");
    if (!(b.e_line >= 0.0) || !(b.e_activate >= 0.0) ||
        !(b.e_refresh >= 0.0))
      return fail("banked memory energy out of range (negative)");
  }
  if (!rd.need(1, "truncated mode")) return fail(rd.err);
  const std::uint8_t mode_byte = *rd.p++;
  if (mode_byte > 1) return fail("bad hierarchy mode byte");
  t.mode = mode_byte ? mem::HierarchyMode::hybrid
                     : mem::HierarchyMode::cache_only;
  if (!rd.str(t.name)) return fail(rd.err);

  std::uint32_t region_count = 0;
  if (!rd.u32(region_count)) return fail(rd.err);
  for (std::uint32_t i = 0; i < region_count; ++i) {
    mem::Region r;
    if (!rd.str(r.name) || !rd.u64(r.base) || !rd.u64(r.bytes))
      return fail(rd.err);
    if (!rd.need(1, "truncated region class")) return fail(rd.err);
    const std::uint8_t ref = *rd.p++;
    if (ref > 2) return fail("bad region class byte");
    r.ref = static_cast<mem::RefClass>(ref);
    t.regions.push_back(std::move(r));
  }

  std::uint32_t core_count = 0;
  if (!rd.u32(core_count)) return fail(rd.err);
  if (core_count != t.config.tiles)
    return fail("core stream count (" + std::to_string(core_count) +
                ") does not match config tiles (" +
                std::to_string(t.config.tiles) + ")");
  for (std::uint32_t i = 0; i < core_count; ++i) {
    CoreStream cs;
    std::uint64_t nbytes = 0;
    if (!rd.u64(cs.count) || !rd.varint(nbytes)) return fail(rd.err);
    if (!rd.need(nbytes, "truncated core stream")) return fail(rd.err);
    cs.bytes.assign(rd.p, rd.p + nbytes);
    rd.p += nbytes;
    if (const char* e = validate_stream(cs))
      return fail("core stream " + std::to_string(i) + " is corrupt: " + e);
    t.cores.push_back(std::move(cs));
  }
  if (rd.p != rd.end) return fail("trailing bytes after last core stream");
  return t;
}

TraceData::CoreStream encode_accesses(std::span<const mem::Access> accesses) {
  TraceData::CoreStream cs;
  Encoder enc;
  enc.out = &cs;
  for (const mem::Access& a : accesses) enc.encode(a);
  return cs;
}

std::vector<mem::Access> decode_stream(const TraceData::CoreStream& cs) {
  auto trace = std::make_shared<TraceData>();
  trace->cores.push_back(cs);
  TraceProgram prog{std::move(trace), 0};
  std::vector<mem::Access> out(cs.count);
  const std::size_t n = prog.fill({out.data(), out.size()});
  RAA_CHECK_MSG(n == cs.count, "stream decoded short of its access count");
  return out;
}

void record_workload(mem::Workload& w, const mem::SystemConfig& config,
                     mem::HierarchyMode mode, TraceData& trace) {
  trace.config = config;
  trace.mode = mode;
  trace.name = w.name;
  trace.regions.assign(w.regions.begin(), w.regions.end());
  trace.cores.clear();
  trace.cores.resize(w.programs.size());
  for (std::size_t c = 0; c < w.programs.size(); ++c)
    w.programs[c] = std::make_unique<RecordingProgram>(
        std::move(w.programs[c]), &trace.cores[c]);
}

mem::Workload make_replay_workload(std::shared_ptr<const TraceData> trace) {
  RAA_CHECK(trace != nullptr);
  mem::Workload w;
  w.name = trace->name;
  for (const auto& r : trace->regions) w.regions.push_back(r);
  for (std::size_t c = 0; c < trace->cores.size(); ++c)
    w.programs.push_back(std::make_unique<TraceProgram>(trace, c));
  return w;
}

TraceProgram::TraceProgram(std::shared_ptr<const TraceData> trace,
                           std::size_t core)
    : trace_(std::move(trace)) {
  RAA_CHECK(trace_ != nullptr && core < trace_->cores.size());
  const auto& cs = trace_->cores[core];
  p_ = cs.bytes.data();
  end_ = p_ + cs.bytes.size();
  remaining_ = cs.count;
}

std::size_t TraceProgram::fill(std::span<mem::Access> out) {
  std::size_t n = 0;
  while (n < out.size() && remaining_ > 0) {
    RAA_CHECK_MSG(p_ < end_, "trace stream ends before its access count");
    const std::uint8_t flags = *p_++;
    std::int64_t delta = prev_delta_;
    if (!(flags & kFlagRepeatDelta)) delta = unzigzag(get_varint(p_, end_));
    std::uint32_t gap = 0;
    if (flags & kFlagHasGap)
      gap = static_cast<std::uint32_t>(get_varint(p_, end_));
    const std::uint64_t addr =
        prev_addr_ + static_cast<std::uint64_t>(delta);  // wrapping
    out[n++] = mem::Access{
        addr, (flags & kFlagStore) != 0,
        static_cast<mem::RefClass>((flags >> kFlagRefShift) & kFlagRefMask),
        gap};
    prev_addr_ = addr;
    prev_delta_ = delta;
    --remaining_;
  }
  return n;
}

}  // namespace raa::scen
