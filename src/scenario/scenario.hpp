#pragma once
/// \file scenario.hpp
/// Declarative scenario descriptions: a JSON file names the chip
/// configuration, the hierarchy mode(s), the data regions and a per-core
/// program for each region — either a scripted phase/stream body (the
/// full expressive power of kernels/program.hpp) or one of the
/// parameterized generators (generators.hpp). `Scenario::instantiate()`
/// lowers the description onto a `mem::Workload`, so any workload a file
/// can describe runs through the unmodified `System::run` — no C++, no
/// recompilation.
///
/// The schema is documented in docs/BENCHMARKS.md; the checked-in corpus
/// lives in `scenarios/`. Parsing is strict: unknown keys, dangling region
/// references, out-of-range cores and ill-sized streams are all errors
/// with a JSON-path context (the json layer supplies line/column for
/// syntax errors), because scenario files are edited by hand.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernels/program.hpp"
#include "memsim/access.hpp"
#include "memsim/config.hpp"
#include "report/json.hpp"

namespace raa::scen {

/// Which hierarchy configuration(s) a scenario runs under. `compare` runs
/// both and reports the hybrid-vs-cache-only speedups (the Figure 1
/// shape, generalised to arbitrary workloads).
enum class ScenarioMode : std::uint8_t { cache_only, hybrid, compare };

const char* to_string(ScenarioMode m) noexcept;
std::optional<ScenarioMode> scenario_mode_from(std::string_view s) noexcept;

/// A declared data region. Exactly one of `bytes` (one shared extent) or
/// `bytes_per_core` (tiles consecutive per-core slices) is non-zero;
/// addresses are assigned at instantiate() time, DMA-chunk aligned.
struct RegionSpec {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t bytes_per_core = 0;
  mem::RefClass ref = mem::RefClass::strided;

  friend bool operator==(const RegionSpec&, const RegionSpec&) = default;
};

/// One stream of a scripted phase (see kernels/program.hpp). Offsets are
/// relative to the stream's window: the core's slice when `per_core_slice`
/// (requires a bytes_per_core region), else the whole region.
struct StreamSpec {
  std::size_t region = 0;  ///< index into Scenario::regions
  kern::StreamKind kind = kern::StreamKind::linear;
  bool store = false;
  std::optional<mem::RefClass> ref;  ///< default: the region's class
  std::uint64_t start = 0;
  std::uint64_t stride = 8;
  std::uint32_t elem_bytes = 8;
  bool per_core_slice = false;

  friend bool operator==(const StreamSpec&, const StreamSpec&) = default;
};

struct PhaseSpec {
  std::uint64_t iterations = 0;
  std::uint32_t gap_cycles = 0;
  std::vector<StreamSpec> streams;

  friend bool operator==(const PhaseSpec&, const PhaseSpec&) = default;
};

/// The program kind a scenario assigns to a set of cores.
enum class GenKind : std::uint8_t {
  scripted,
  zipf,
  pointer_chase,
  stencil,
  producer_consumer,
  bursty,
};

/// One "programs" entry: which cores it covers and either a scripted
/// phase list or the parameters of a generator. A flat struct (unused
/// fields stay at their defaults) keeps the parser and the lowering in
/// plain sight; the per-kind constraints are enforced at parse time.
struct ProgramSpec {
  std::vector<unsigned> cores;  ///< empty = every core
  GenKind kind = GenKind::scripted;

  // scripted
  std::vector<PhaseSpec> phases;

  // generators (region indices into Scenario::regions)
  std::size_t region = 0;
  std::size_t out_region = 0;  ///< stencil only
  bool per_core_slice = false;
  std::optional<mem::RefClass> ref;
  std::optional<mem::RefClass> halo_ref;  ///< stencil only
  std::uint64_t accesses = 0;    ///< zipf, pointer_chase
  std::uint64_t iterations = 0;  ///< producer_consumer
  std::uint64_t bursts = 0;      ///< bursty
  std::uint64_t burst_len = 0;
  std::uint32_t sweeps = 1;  ///< stencil
  std::uint32_t halo = 1;
  std::uint32_t elem_bytes = 8;
  std::uint32_t gap_cycles = 0;
  std::uint32_t gap_on = 0;  ///< bursty
  std::uint32_t gap_off = 1000;
  double hot_fraction = 0.1;  ///< zipf
  double hot_weight = 0.9;
  double store_fraction = 0.0;  ///< zipf, bursty

  friend bool operator==(const ProgramSpec&, const ProgramSpec&) = default;
};

/// A parsed, validated scenario. Deterministic: instantiate() is a pure
/// function of the spec (including `seed`), so two calls produce
/// workloads with bit-identical access streams.
struct Scenario {
  std::string name;
  std::string description;
  ScenarioMode mode = ScenarioMode::compare;
  std::uint64_t seed = 1;
  mem::SystemConfig config;
  std::vector<RegionSpec> regions;
  std::vector<ProgramSpec> programs;

  /// The concrete hierarchy modes to simulate (compare = both).
  std::vector<mem::HierarchyMode> hierarchy_modes() const;

  /// Parse + validate a JSON document / file. On failure returns nullopt
  /// and stores an actionable message (JSON-path or line/column context)
  /// in `error` when non-null.
  static std::optional<Scenario> parse(const json::Value& doc,
                                       std::string* error = nullptr);
  static std::optional<Scenario> load_file(const std::string& path,
                                           std::string* error = nullptr);

  /// Lower onto a runnable workload: lay the regions out in the simulated
  /// address space and build one program per core (cores no entry covers
  /// get an empty program).
  mem::Workload instantiate() const;

  /// Serialize back to the JSON schema parse() accepts. The round trip is
  /// field-identical: parse(to_json()) == *this for any parse-valid
  /// scenario (numbers go through shortest-round-trip formatting, and
  /// every per-generator key parse() reads is emitted explicitly). This
  /// is what lets the fuzzer persist generated scenarios and shrunken
  /// repro artifacts as files raa_sim accepts unchanged.
  json::Value to_json() const;

  /// Index of the first declared region no program ever references — a
  /// region "claimed by zero cores". parse() accepts such scenarios (the
  /// struct is still well-formed), but drivers should reject them:
  /// simulating a region nobody touches silently skews the address-space
  /// layout for no workload effect. nullopt when every region is used.
  std::optional<std::size_t> first_unreferenced_region() const;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

}  // namespace raa::scen
