#pragma once
/// \file generators.hpp
/// Parameterized access-pattern generators for the scenario subsystem.
///
/// The NAS factories (kernels/nas.cpp) hard-code six access structures;
/// these generators open the space up: each is a `mem::CoreProgram` whose
/// pattern is a pure function of a small parameter struct plus a 64-bit
/// seed, so a scenario file can describe workloads the repo never compiled
/// in. All of them implement the batched `fill` entry point directly (the
/// simulator's stream-side hot path); `next()` is the one-access shim over
/// the same generator, so both entry points yield the identical sequence.
///
/// The five patterns:
///  * zipf hot-set        — skewed reuse: a hot fraction of the region
///                          absorbs most accesses (contended tables,
///                          caches-love-it / SPM-tiling-hates-it);
///  * pointer chase       — a random permutation cycle walked one element
///                          at a time (linked-list traversal, no locality);
///  * stencil halo        — per-core grid sweeps whose edge taps cross into
///                          the neighbouring cores' slices (halo exchange);
///  * producer/consumer   — each core writes its slot of a shared ring and
///                          reads its left neighbour's (pipeline sharing);
///  * bursty on/off       — bursts of back-to-back random accesses
///                          separated by long idle gaps (interactive or
///                          phase-changing load).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "memsim/access.hpp"

namespace raa::scen {

/// Base for all generators: `next()` as the single-access shim over the
/// batched `fill` every subclass implements.
class GenProgram : public mem::CoreProgram {
 public:
  bool next(mem::Access& out) final { return fill({&out, 1}) == 1; }
};

/// A resolved address window inside a region: the span a generator draws
/// from (the whole region, or one core's slice of it).
struct Slice {
  std::uint64_t base = 0;   ///< absolute byte address of the window start
  std::uint64_t bytes = 0;  ///< window length
};

// --- zipf hot-set ---------------------------------------------------------

struct ZipfParams {
  Slice slice;
  std::uint64_t accesses = 0;
  std::uint32_t elem_bytes = 8;
  /// Leading fraction of the slice that forms the hot set (elements
  /// [0, hot_fraction * elems)); must leave both sets non-empty.
  double hot_fraction = 0.1;
  /// Probability an access lands in the hot set.
  double hot_weight = 0.9;
  double store_fraction = 0.0;
  std::uint32_t gap_cycles = 0;
  mem::RefClass ref = mem::RefClass::random_noalias;
};

class ZipfProgram final : public GenProgram {
 public:
  ZipfProgram(const ZipfParams& p, std::uint64_t seed);
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  ZipfParams p_;
  Rng rng_;
  std::uint64_t hot_elems_ = 0;
  std::uint64_t cold_elems_ = 0;
  std::uint64_t done_ = 0;
};

// --- pointer chase --------------------------------------------------------

struct PointerChaseParams {
  Slice slice;
  std::uint64_t accesses = 0;
  std::uint32_t elem_bytes = 8;
  std::uint32_t gap_cycles = 0;
  mem::RefClass ref = mem::RefClass::random_noalias;
};

/// Walks a seed-determined Sattolo cycle over the slice's elements: every
/// element is visited before any repeats, and consecutive addresses are
/// decorrelated — the classic latency-bound linked-list traversal.
class PointerChaseProgram final : public GenProgram {
 public:
  PointerChaseProgram(const PointerChaseParams& p, std::uint64_t seed);
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  PointerChaseParams p_;
  std::vector<std::uint32_t> next_;  ///< permutation: element -> successor
  std::uint64_t pos_ = 0;
  std::uint64_t done_ = 0;
};

// --- stencil halo ---------------------------------------------------------

struct StencilParams {
  /// Input grid: the full region (taps clamp to it) ...
  Slice in_region;
  /// ... of which this core sweeps [elem_offset, elem_offset + elems).
  std::uint64_t elem_offset = 0;
  std::uint64_t elems = 0;
  /// Output grid; the core writes its own [elem_offset, ...) slice.
  Slice out_region;
  std::uint32_t halo = 1;  ///< taps per side: reads i-halo .. i+halo
  std::uint32_t sweeps = 1;
  std::uint32_t elem_bytes = 8;
  std::uint32_t gap_cycles = 0;
  mem::RefClass in_ref = mem::RefClass::strided;
  mem::RefClass out_ref = mem::RefClass::strided;
  /// Class of taps that land outside this core's own slice. The compiler
  /// can prove interior taps stay in the local tile, but boundary taps may
  /// alias chunks other cores have SPM-mapped — so they default to the
  /// guarded class (strided would break the no-overlap tiling contract).
  mem::RefClass halo_ref = mem::RefClass::random_unknown;
};

/// (2*halo+1)-point 1-D stencil: per element, reads the tap window from
/// the input grid (edge taps reach into the neighbouring cores' slices —
/// the halo exchange), then writes the output element. No RNG: the
/// sequence is a pure function of the parameters.
class StencilProgram final : public GenProgram {
 public:
  explicit StencilProgram(const StencilParams& p);
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  StencilParams p_;
  std::uint64_t in_elems_ = 0;  ///< total elements in the input region
  std::uint32_t sweep_ = 0;
  std::uint64_t i_ = 0;    ///< element index within this core's slice
  std::uint32_t tap_ = 0;  ///< 0..2*halo reads, then the write
};

// --- producer / consumer --------------------------------------------------

struct ProducerConsumerParams {
  /// The shared ring region; core c owns slot [c*slot_bytes, (c+1)*...).
  Slice ring;
  std::uint64_t slot_bytes = 0;
  unsigned core = 0;
  unsigned cores = 1;
  std::uint64_t iterations = 0;
  std::uint32_t elem_bytes = 8;
  std::uint32_t gap_cycles = 0;
  mem::RefClass ref = mem::RefClass::random_unknown;
};

/// Per iteration: store the next element of the core's own slot, then load
/// the same offset from the left neighbour's slot (offsets rotate through
/// the slot). Models neighbour pipelines; with ref = random_unknown the
/// traffic goes through the guarded-access filter.
class ProducerConsumerProgram final : public GenProgram {
 public:
  explicit ProducerConsumerProgram(const ProducerConsumerParams& p);
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  ProducerConsumerParams p_;
  std::uint64_t own_base_ = 0;
  std::uint64_t peer_base_ = 0;
  std::uint64_t slot_elems_ = 0;
  std::uint64_t it_ = 0;
  bool consuming_ = false;  ///< second half of the store/load pair
};

// --- bursty on/off --------------------------------------------------------

struct BurstyParams {
  Slice slice;
  std::uint64_t bursts = 0;
  std::uint64_t burst_len = 0;     ///< accesses per burst
  std::uint32_t gap_on = 0;        ///< gap between accesses inside a burst
  std::uint32_t gap_off = 1000;    ///< idle gap carried by each burst head
  double store_fraction = 0.0;
  std::uint32_t elem_bytes = 8;
  mem::RefClass ref = mem::RefClass::random_noalias;
};

class BurstyProgram final : public GenProgram {
 public:
  BurstyProgram(const BurstyParams& p, std::uint64_t seed);
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  BurstyParams p_;
  Rng rng_;
  std::uint64_t elems_ = 0;
  std::uint64_t burst_ = 0;
  std::uint64_t i_ = 0;  ///< access index within the current burst
};

}  // namespace raa::scen
