#include "scenario/scenario.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "memsim/backend.hpp"
#include "scenario/generators.hpp"

namespace raa::scen {

namespace {

using json::Value;

/// Largest double that still represents integers exactly.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

/// Shared error sink: first failure wins, every message carries the JSON
/// path of the offending value.
struct Ctx {
  std::string* error = nullptr;

  bool fail(const std::string& path, const std::string& msg) {
    if (error && error->empty()) *error = path + ": " + msg;
    return false;
  }
};

bool to_u64(Ctx& c, const Value& v, const std::string& path,
            std::uint64_t& out) {
  if (!v.is_number()) return c.fail(path, "expected a non-negative integer");
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > kMaxExactInt)
    return c.fail(path, "expected a non-negative integer");
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool to_u32(Ctx& c, const Value& v, const std::string& path,
            std::uint32_t& out) {
  std::uint64_t x = 0;
  if (!to_u64(c, v, path, x)) return false;
  if (x > std::numeric_limits<std::uint32_t>::max())
    return c.fail(path, "value does not fit in 32 bits");
  out = static_cast<std::uint32_t>(x);
  return true;
}

bool to_fraction(Ctx& c, const Value& v, const std::string& path,
                 double& out) {
  if (!v.is_number() || v.as_number() < 0.0 || v.as_number() > 1.0)
    return c.fail(path, "expected a number in [0, 1]");
  out = v.as_number();
  return true;
}

bool to_str(Ctx& c, const Value& v, const std::string& path,
            std::string& out) {
  if (!v.is_string()) return c.fail(path, "expected a string");
  out = v.as_string();
  return true;
}

bool to_bool(Ctx& c, const Value& v, const std::string& path, bool& out) {
  if (!v.is_bool()) return c.fail(path, "expected true or false");
  out = v.as_bool();
  return true;
}

/// Optional-field helpers: absent leaves the default in place.
template <typename T, typename Fn>
bool opt(Ctx& c, const Value& obj, const std::string& path, const char* key,
         Fn&& to, T& out) {
  const Value* v = obj.find(key);
  return v == nullptr || to(c, *v, path + "." + key, out);
}

template <typename T, typename Fn>
bool req(Ctx& c, const Value& obj, const std::string& path, const char* key,
         Fn&& to, T& out) {
  const Value* v = obj.find(key);
  if (v == nullptr)
    return c.fail(path, std::string{"missing required key \""} + key + "\"");
  return to(c, *v, path + "." + key, out);
}

/// Strict schema: every key must be in the allowed list.
bool check_keys(Ctx& c, const Value& obj, const std::string& path,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) return c.fail(path + "." + key, "unknown key");
  }
  return true;
}

bool to_ref_class(Ctx& c, const Value& v, const std::string& path,
                  mem::RefClass& out) {
  std::string s;
  if (!to_str(c, v, path, s)) return false;
  if (s == "strided")
    out = mem::RefClass::strided;
  else if (s == "random_noalias")
    out = mem::RefClass::random_noalias;
  else if (s == "random_unknown")
    out = mem::RefClass::random_unknown;
  else
    return c.fail(path, "unknown reference class '" + s +
                            "' (want strided, random_noalias or "
                            "random_unknown)");
  return true;
}

bool to_opt_ref_class(Ctx& c, const Value& v, const std::string& path,
                      std::optional<mem::RefClass>& out) {
  mem::RefClass r = mem::RefClass::strided;
  if (!to_ref_class(c, v, path, r)) return false;
  out = r;
  return true;
}

bool to_stream_kind(Ctx& c, const Value& v, const std::string& path,
                    kern::StreamKind& out) {
  std::string s;
  if (!to_str(c, v, path, s)) return false;
  if (s == "linear")
    out = kern::StreamKind::linear;
  else if (s == "random")
    out = kern::StreamKind::random;
  else if (s == "random_rmw")
    out = kern::StreamKind::random_rmw;
  else
    return c.fail(path, "unknown stream kind '" + s +
                            "' (want linear, random or random_rmw)");
  return true;
}

bool parse_config(Ctx& c, const Value& v, const std::string& path,
                  mem::SystemConfig& cfg) {
  if (!v.is_object()) return c.fail(path, "expected an object");
  for (const auto& [key, val] : v.as_object()) {
    const std::string p = path + "." + key;
    unsigned* u = nullptr;
    double* d = nullptr;
    if (key == "tiles") u = &cfg.tiles;
    else if (key == "mesh_x") u = &cfg.mesh_x;
    else if (key == "mesh_y") u = &cfg.mesh_y;
    else if (key == "mem_controllers") u = &cfg.mem_controllers;
    else if (key == "line_bytes") u = &cfg.line_bytes;
    else if (key == "l1_bytes") u = &cfg.l1_bytes;
    else if (key == "l1_assoc") u = &cfg.l1_assoc;
    else if (key == "l2_bank_bytes") u = &cfg.l2_bank_bytes;
    else if (key == "l2_assoc") u = &cfg.l2_assoc;
    else if (key == "spm_bytes") u = &cfg.spm_bytes;
    else if (key == "dma_chunk_bytes") u = &cfg.dma_chunk_bytes;
    else if (key == "lat_l1_hit") u = &cfg.lat_l1_hit;
    else if (key == "lat_spm_hit") u = &cfg.lat_spm_hit;
    else if (key == "lat_l2_hit") u = &cfg.lat_l2_hit;
    else if (key == "lat_dir") u = &cfg.lat_dir;
    else if (key == "lat_filter") u = &cfg.lat_filter;
    // lat_dram / dram_cycles_per_line / e_dram_line moved into the flat
    // backend's parameter struct; the config-level keys stay as aliases
    // so pre-backend scenario files keep parsing (memory.flat overrides
    // them when both are given — it is parsed after config).
    else if (key == "lat_dram") u = &cfg.memory.flat.lat_dram;
    else if (key == "lat_router") u = &cfg.lat_router;
    else if (key == "lat_link") u = &cfg.lat_link;
    else if (key == "dram_cycles_per_line")
      u = &cfg.memory.flat.dram_cycles_per_line;
    else if (key == "e_l1_hit") d = &cfg.e_l1_hit;
    else if (key == "e_l1_probe") d = &cfg.e_l1_probe;
    else if (key == "e_spm") d = &cfg.e_spm;
    else if (key == "e_l2") d = &cfg.e_l2;
    else if (key == "e_dir") d = &cfg.e_dir;
    else if (key == "e_filter") d = &cfg.e_filter;
    else if (key == "e_dram_line") d = &cfg.memory.flat.e_dram_line;
    else if (key == "e_flit_hop") d = &cfg.e_flit_hop;
    else if (key == "e_static_per_tile_cycle") d = &cfg.e_static_per_tile_cycle;
    else return c.fail(p, "unknown config key");
    if (u != nullptr) {
      std::uint32_t x = 0;
      if (!to_u32(c, val, p, x)) return false;
      if (x == 0) return c.fail(p, "must be positive");
      *u = x;
    } else {
      if (!val.is_number() || val.as_number() < 0.0)
        return c.fail(p, "expected a non-negative number");
      *d = val.as_number();
    }
  }
  if (cfg.tiles != cfg.mesh_x * cfg.mesh_y)
    return c.fail(path, "tiles (" + std::to_string(cfg.tiles) +
                            ") must equal mesh_x * mesh_y (" +
                            std::to_string(cfg.mesh_x * cfg.mesh_y) + ")");
  if (cfg.dma_chunk_bytes % cfg.line_bytes != 0)
    return c.fail(path, "dma_chunk_bytes must be a multiple of line_bytes");
  return true;
}

bool to_backend_kind(Ctx& c, const Value& v, const std::string& path,
                     mem::MemBackendKind& out) {
  std::string s;
  if (!to_str(c, v, path, s)) return false;
  if (s == "flat")
    out = mem::MemBackendKind::flat;
  else if (s == "banked")
    out = mem::MemBackendKind::banked;
  else
    return c.fail(path,
                  "unknown backend '" + s + "' (want flat or banked)");
  return true;
}

/// Shared loop for the flat/banked parameter sub-objects: each key maps
/// to an unsigned, double or bank-mapping destination; unsigned keys must
/// be positive unless listed in `zero_ok` (refresh can be disabled
/// outright).
struct ParamKey {
  const char* key;
  unsigned* u = nullptr;
  double* d = nullptr;
  bool zero_ok = false;
  mem::BankMapping* m = nullptr;
};

bool parse_params(Ctx& c, const Value& v, const std::string& path,
                  std::initializer_list<ParamKey> keys) {
  if (!v.is_object()) return c.fail(path, "expected an object");
  for (const auto& [key, val] : v.as_object()) {
    const std::string p = path + "." + key;
    const ParamKey* match = nullptr;
    for (const ParamKey& k : keys)
      if (key == k.key) match = &k;
    if (match == nullptr) return c.fail(p, "unknown key");
    if (match->u != nullptr) {
      std::uint32_t x = 0;
      if (!to_u32(c, val, p, x)) return false;
      if (x == 0 && !match->zero_ok) return c.fail(p, "must be positive");
      *match->u = x;
    } else if (match->m != nullptr) {
      std::string s;
      if (!to_str(c, val, p, s)) return false;
      if (s == "block")
        *match->m = mem::BankMapping::block;
      else if (s == "xor")
        *match->m = mem::BankMapping::xor_hash;
      else
        return c.fail(p, "unknown mapping '" + s + "' (want block or xor)");
    } else {
      if (!val.is_number() || val.as_number() < 0.0)
        return c.fail(p, "expected a non-negative number");
      *match->d = val.as_number();
    }
  }
  return true;
}

/// The scenario's "memory" object: backend selection + both models'
/// knobs. Parsed after "config", so memory.flat.* wins over the aliased
/// config-level keys.
bool parse_memory(Ctx& c, const Value& v, const std::string& path,
                  mem::MemoryConfig& m) {
  if (!v.is_object()) return c.fail(path, "expected an object");
  if (!check_keys(c, v, path, {"backend", "flat", "banked"})) return false;
  if (const Value* bv = v.find("backend")) {
    if (!to_backend_kind(c, *bv, path + ".backend", m.kind)) return false;
  }
  if (const Value* fv = v.find("flat")) {
    if (!parse_params(c, *fv, path + ".flat",
                      {{"lat_dram", &m.flat.lat_dram},
                       {"dram_cycles_per_line",
                        &m.flat.dram_cycles_per_line},
                       {"e_dram_line", nullptr, &m.flat.e_dram_line}}))
      return false;
  }
  if (const Value* bv = v.find("banked")) {
    auto& b = m.banked;
    if (!parse_params(
            c, *bv, path + ".banked",
            {{"channels", &b.channels},
             {"banks_per_channel", &b.banks_per_channel},
             {"mapping", nullptr, nullptr, false, &b.mapping},
             {"row_bytes", &b.row_bytes},
             {"t_rp", &b.t_rp, nullptr, true},
             {"t_rcd", &b.t_rcd, nullptr, true},
             {"t_cas", &b.t_cas, nullptr, true},
             {"line_cycles", &b.line_cycles},
             {"refresh_interval", &b.refresh_interval, nullptr, true},
             {"refresh_cycles", &b.refresh_cycles, nullptr, true},
             {"dma_cycles_per_line", &b.dma_cycles_per_line},
             {"e_line", nullptr, &b.e_line},
             {"e_activate", nullptr, &b.e_activate},
             {"e_refresh", nullptr, &b.e_refresh}}))
      return false;
  }
  return true;
}

bool parse_regions(Ctx& c, const Value& v, const std::string& path,
                   std::uint32_t dma_chunk_bytes,
                   std::vector<RegionSpec>& out) {
  if (!v.is_array() || v.as_array().empty())
    return c.fail(path, "expected a non-empty array of regions");
  for (std::size_t i = 0; i < v.as_array().size(); ++i) {
    const std::string p = path + "[" + std::to_string(i) + "]";
    const Value& rv = v.as_array()[i];
    if (!rv.is_object()) return c.fail(p, "expected an object");
    if (!check_keys(c, rv, p, {"name", "class", "bytes", "bytes_per_core"}))
      return false;
    RegionSpec r;
    if (!req(c, rv, p, "name", to_str, r.name)) return false;
    if (r.name.empty()) return c.fail(p + ".name", "must not be empty");
    if (!req(c, rv, p, "class", to_ref_class, r.ref)) return false;
    if (!opt(c, rv, p, "bytes", to_u64, r.bytes)) return false;
    if (!opt(c, rv, p, "bytes_per_core", to_u64, r.bytes_per_core))
      return false;
    if ((r.bytes == 0) == (r.bytes_per_core == 0))
      return c.fail(p, "give exactly one of \"bytes\" or \"bytes_per_core\"");
    // Strided per-core slices become SPM software-cache tiles; a slice
    // that is not a whole number of DMA chunks would make adjacent cores
    // share a chunk, violating the protocol's no-overlap tiling contract
    // (System aborts on it mid-run — catch it here instead).
    if (r.ref == mem::RefClass::strided && r.bytes_per_core != 0 &&
        r.bytes_per_core % dma_chunk_bytes != 0)
      return c.fail(p + ".bytes_per_core",
                    "strided per-core slices must be a multiple of "
                    "dma_chunk_bytes (" + std::to_string(dma_chunk_bytes) +
                        ")");
    for (const auto& seen : out)
      if (seen.name == r.name)
        return c.fail(p + ".name", "duplicate region name '" + r.name + "'");
    out.push_back(std::move(r));
  }
  return true;
}

/// Resolve a region-name value to its index.
bool to_region_index(Ctx& c, const Value& v, const std::string& path,
                     const std::vector<RegionSpec>& regions,
                     std::size_t& out) {
  std::string name;
  if (!to_str(c, v, path, name)) return false;
  for (std::size_t i = 0; i < regions.size(); ++i)
    if (regions[i].name == name) {
      out = i;
      return true;
    }
  return c.fail(path, "unknown region '" + name + "'");
}

/// Parse a "slice" value ("core" or "all") into the per-core flag;
/// validates that "core" is only used with bytes_per_core regions.
bool parse_slice(Ctx& c, const Value& obj, const std::string& path,
                 const std::vector<RegionSpec>& regions, std::size_t region,
                 bool& per_core) {
  per_core = regions[region].bytes_per_core != 0;  // the natural default
  const Value* v = obj.find("slice");
  if (v == nullptr) return true;
  std::string s;
  if (!to_str(c, *v, path + ".slice", s)) return false;
  if (s == "core")
    per_core = true;
  else if (s == "all")
    per_core = false;
  else
    return c.fail(path + ".slice", "expected \"core\" or \"all\"");
  if (per_core && regions[region].bytes_per_core == 0)
    return c.fail(path + ".slice",
                  "\"core\" requires a bytes_per_core region, but '" +
                      regions[region].name + "' declares \"bytes\"");
  return true;
}

/// Byte length of the window a stream/generator draws from.
std::uint64_t window_bytes(const RegionSpec& r, bool per_core,
                           unsigned tiles) {
  return per_core ? r.bytes_per_core
                  : (r.bytes != 0 ? r.bytes : r.bytes_per_core * tiles);
}

bool parse_streams(Ctx& c, const Value& v, const std::string& path,
                   const std::vector<RegionSpec>& regions, unsigned tiles,
                   std::uint64_t iterations, std::vector<StreamSpec>& out) {
  if (!v.is_array() || v.as_array().empty())
    return c.fail(path, "expected a non-empty array of streams");
  for (std::size_t i = 0; i < v.as_array().size(); ++i) {
    const std::string p = path + "[" + std::to_string(i) + "]";
    const Value& sv = v.as_array()[i];
    if (!sv.is_object()) return c.fail(p, "expected an object");
    if (!check_keys(c, sv, p,
                    {"region", "kind", "store", "class", "start", "stride",
                     "elem_bytes", "slice"}))
      return false;
    StreamSpec s;
    if (!req(c, sv, p, "region",
             [&](Ctx& cc, const Value& vv, const std::string& pp,
                 std::size_t& oo) {
               return to_region_index(cc, vv, pp, regions, oo);
             },
             s.region))
      return false;
    if (!opt(c, sv, p, "kind", to_stream_kind, s.kind)) return false;
    if (!opt(c, sv, p, "store", to_bool, s.store)) return false;
    if (!opt(c, sv, p, "class", to_opt_ref_class, s.ref)) return false;
    if (!opt(c, sv, p, "start", to_u64, s.start)) return false;
    if (!opt(c, sv, p, "stride", to_u64, s.stride)) return false;
    if (!opt(c, sv, p, "elem_bytes", to_u32, s.elem_bytes)) return false;
    if (s.elem_bytes == 0) return c.fail(p + ".elem_bytes", "must be positive");
    if (!parse_slice(c, sv, p, regions, s.region, s.per_core_slice))
      return false;

    const std::uint64_t window =
        window_bytes(regions[s.region], s.per_core_slice, tiles);
    if (s.kind == kern::StreamKind::linear) {
      if (s.stride == 0) return c.fail(p + ".stride", "must be positive");
      if (s.start >= window)
        return c.fail(p + ".start", "beyond the " + std::to_string(window) +
                                        "-byte window");
      // Division form: `start + (iterations-1)*stride` could wrap uint64
      // and dodge the bound.
      const std::uint64_t max_iters = (window - s.start - 1) / s.stride + 1;
      if (iterations > max_iters)
        return c.fail(
            p, "linear stream runs past its " + std::to_string(window) +
                   "-byte window after " + std::to_string(iterations) +
                   " iterations (start " + std::to_string(s.start) +
                   ", stride " + std::to_string(s.stride) + ")");
    } else {
      if (s.start + s.elem_bytes > window)
        return c.fail(p, "random stream window smaller than one element");
    }
    out.push_back(std::move(s));
  }
  return true;
}

bool parse_phases(Ctx& c, const Value& v, const std::string& path,
                  const std::vector<RegionSpec>& regions, unsigned tiles,
                  std::vector<PhaseSpec>& out) {
  if (!v.is_array() || v.as_array().empty())
    return c.fail(path, "expected a non-empty array of phases");
  for (std::size_t i = 0; i < v.as_array().size(); ++i) {
    const std::string p = path + "[" + std::to_string(i) + "]";
    const Value& pv = v.as_array()[i];
    if (!pv.is_object()) return c.fail(p, "expected an object");
    if (!check_keys(c, pv, p, {"iterations", "gap_cycles", "streams"}))
      return false;
    PhaseSpec ph;
    if (!req(c, pv, p, "iterations", to_u64, ph.iterations)) return false;
    if (ph.iterations == 0) return c.fail(p + ".iterations", "must be positive");
    if (!opt(c, pv, p, "gap_cycles", to_u32, ph.gap_cycles)) return false;
    const Value* sv = pv.find("streams");
    if (sv == nullptr) return c.fail(p, "missing required key \"streams\"");
    if (!parse_streams(c, *sv, p + ".streams", regions, tiles, ph.iterations,
                       ph.streams))
      return false;
    out.push_back(std::move(ph));
  }
  return true;
}

bool parse_cores(Ctx& c, const Value& obj, const std::string& path,
                 unsigned tiles, std::vector<unsigned>& out) {
  const Value* v = obj.find("cores");
  if (v == nullptr) return true;  // default: all cores
  if (v->is_string()) {
    if (v->as_string() == "all") return true;
    return c.fail(path + ".cores", "expected \"all\" or an array of cores");
  }
  if (!v->is_array() || v->as_array().empty())
    return c.fail(path + ".cores", "expected \"all\" or a non-empty array");
  for (std::size_t i = 0; i < v->as_array().size(); ++i) {
    const std::string p = path + ".cores[" + std::to_string(i) + "]";
    std::uint64_t core = 0;
    if (!to_u64(c, v->as_array()[i], p, core)) return false;
    if (core >= tiles)
      return c.fail(p, "core " + std::to_string(core) +
                           " out of range (tiles = " + std::to_string(tiles) +
                           ")");
    out.push_back(static_cast<unsigned>(core));
  }
  return true;
}

bool parse_program(Ctx& c, const Value& v, const std::string& path,
                   const std::vector<RegionSpec>& regions, unsigned tiles,
                   ProgramSpec& p) {
  if (!v.is_object()) return c.fail(path, "expected an object");
  std::string gen;
  if (!req(c, v, path, "generator", to_str, gen)) return false;
  if (!parse_cores(c, v, path, tiles, p.cores)) return false;

  const auto region_field = [&](const char* key, std::size_t& out) {
    return req(c, v, path, key,
               [&](Ctx& cc, const Value& vv, const std::string& pp,
                   std::size_t& oo) {
                 return to_region_index(cc, vv, pp, regions, oo);
               },
               out);
  };
  const auto elem_and_gap = [&] {
    if (!opt(c, v, path, "elem_bytes", to_u32, p.elem_bytes)) return false;
    if (p.elem_bytes == 0)
      return c.fail(path + ".elem_bytes", "must be positive");
    return opt(c, v, path, "gap_cycles", to_u32, p.gap_cycles);
  };
  /// Window must hold >= `min_elems` elements of p.elem_bytes.
  const auto window_check = [&](std::size_t region, bool per_core,
                                std::uint64_t min_elems) {
    const std::uint64_t window = window_bytes(regions[region], per_core, tiles);
    if (window / p.elem_bytes < min_elems)
      return c.fail(path, "region '" + regions[region].name +
                              "' window too small: need at least " +
                              std::to_string(min_elems) + " elements of " +
                              std::to_string(p.elem_bytes) + " bytes");
    return true;
  };

  if (gen == "scripted") {
    p.kind = GenKind::scripted;
    if (!check_keys(c, v, path, {"generator", "cores", "phases"}))
      return false;
    const Value* pv = v.find("phases");
    if (pv == nullptr) return c.fail(path, "missing required key \"phases\"");
    return parse_phases(c, *pv, path + ".phases", regions, tiles, p.phases);
  }
  if (gen == "zipf") {
    p.kind = GenKind::zipf;
    if (!check_keys(c, v, path,
                    {"generator", "cores", "region", "slice", "class",
                     "accesses", "elem_bytes", "hot_fraction", "hot_weight",
                     "store_fraction", "gap_cycles"}))
      return false;
    if (!region_field("region", p.region)) return false;
    if (!parse_slice(c, v, path, regions, p.region, p.per_core_slice))
      return false;
    if (!opt(c, v, path, "class", to_opt_ref_class, p.ref)) return false;
    if (!req(c, v, path, "accesses", to_u64, p.accesses)) return false;
    if (p.accesses == 0) return c.fail(path + ".accesses", "must be positive");
    if (!elem_and_gap()) return false;
    if (!opt(c, v, path, "hot_fraction", to_fraction, p.hot_fraction))
      return false;
    if (p.hot_fraction <= 0.0 || p.hot_fraction >= 1.0)
      return c.fail(path + ".hot_fraction", "must be strictly inside (0, 1)");
    if (!opt(c, v, path, "hot_weight", to_fraction, p.hot_weight))
      return false;
    if (!opt(c, v, path, "store_fraction", to_fraction, p.store_fraction))
      return false;
    return window_check(p.region, p.per_core_slice, 2);
  }
  if (gen == "pointer_chase") {
    p.kind = GenKind::pointer_chase;
    if (!check_keys(c, v, path,
                    {"generator", "cores", "region", "slice", "class",
                     "accesses", "elem_bytes", "gap_cycles"}))
      return false;
    if (!region_field("region", p.region)) return false;
    if (!parse_slice(c, v, path, regions, p.region, p.per_core_slice))
      return false;
    if (!opt(c, v, path, "class", to_opt_ref_class, p.ref)) return false;
    if (!req(c, v, path, "accesses", to_u64, p.accesses)) return false;
    if (p.accesses == 0) return c.fail(path + ".accesses", "must be positive");
    if (!elem_and_gap()) return false;
    return window_check(p.region, p.per_core_slice, 2);
  }
  if (gen == "stencil") {
    p.kind = GenKind::stencil;
    if (!check_keys(c, v, path,
                    {"generator", "cores", "in", "out", "sweeps", "halo",
                     "halo_class", "elem_bytes", "gap_cycles"}))
      return false;
    if (!region_field("in", p.region)) return false;
    if (!region_field("out", p.out_region)) return false;
    for (const std::size_t r : {p.region, p.out_region})
      if (regions[r].bytes_per_core == 0)
        return c.fail(path, "stencil grids must be bytes_per_core regions, "
                            "but '" + regions[r].name + "' declares \"bytes\"");
    if (!opt(c, v, path, "sweeps", to_u32, p.sweeps)) return false;
    if (p.sweeps == 0) return c.fail(path + ".sweeps", "must be positive");
    if (!opt(c, v, path, "halo", to_u32, p.halo)) return false;
    if (!opt(c, v, path, "halo_class", to_opt_ref_class, p.halo_ref))
      return false;
    if (p.halo_ref && *p.halo_ref == mem::RefClass::strided)
      return c.fail(path + ".halo_class",
                    "halo taps cross core slices and cannot be strided "
                    "(overlapping SPM tiles)");
    if (!elem_and_gap()) return false;
    if (regions[p.out_region].bytes_per_core <
        regions[p.region].bytes_per_core)
      return c.fail(path, "output grid '" + regions[p.out_region].name +
                              "' is smaller per core than input grid '" +
                              regions[p.region].name + "'");
    return window_check(p.region, /*per_core=*/true, 1);
  }
  if (gen == "producer_consumer") {
    p.kind = GenKind::producer_consumer;
    if (!check_keys(c, v, path,
                    {"generator", "cores", "region", "class", "iterations",
                     "elem_bytes", "gap_cycles"}))
      return false;
    if (!region_field("region", p.region)) return false;
    if (regions[p.region].bytes_per_core == 0)
      return c.fail(path, "producer_consumer needs a bytes_per_core region "
                          "(the per-core slot), but '" +
                              regions[p.region].name + "' declares \"bytes\"");
    if (!opt(c, v, path, "class", to_opt_ref_class, p.ref)) return false;
    if (!req(c, v, path, "iterations", to_u64, p.iterations)) return false;
    if (p.iterations == 0)
      return c.fail(path + ".iterations", "must be positive");
    if (!elem_and_gap()) return false;
    return window_check(p.region, /*per_core=*/true, 1);
  }
  if (gen == "bursty") {
    p.kind = GenKind::bursty;
    if (!check_keys(c, v, path,
                    {"generator", "cores", "region", "slice", "class",
                     "bursts", "burst_len", "gap_on", "gap_off",
                     "store_fraction", "elem_bytes"}))
      return false;
    if (!region_field("region", p.region)) return false;
    if (!parse_slice(c, v, path, regions, p.region, p.per_core_slice))
      return false;
    if (!opt(c, v, path, "class", to_opt_ref_class, p.ref)) return false;
    if (!req(c, v, path, "bursts", to_u64, p.bursts)) return false;
    if (!req(c, v, path, "burst_len", to_u64, p.burst_len)) return false;
    if (p.bursts == 0 || p.burst_len == 0)
      return c.fail(path, "bursts and burst_len must be positive");
    if (!opt(c, v, path, "gap_on", to_u32, p.gap_on)) return false;
    if (!opt(c, v, path, "gap_off", to_u32, p.gap_off)) return false;
    if (!opt(c, v, path, "store_fraction", to_fraction, p.store_fraction))
      return false;
    if (!opt(c, v, path, "elem_bytes", to_u32, p.elem_bytes)) return false;
    if (p.elem_bytes == 0)
      return c.fail(path + ".elem_bytes", "must be positive");
    return window_check(p.region, p.per_core_slice, 1);
  }
  return c.fail(path + ".generator",
                "unknown generator '" + gen +
                    "' (want scripted, zipf, pointer_chase, stencil, "
                    "producer_consumer or bursty)");
}

}  // namespace

const char* to_string(ScenarioMode m) noexcept {
  switch (m) {
    case ScenarioMode::cache_only: return "cache_only";
    case ScenarioMode::hybrid: return "hybrid";
    case ScenarioMode::compare: return "compare";
  }
  return "?";
}

std::optional<ScenarioMode> scenario_mode_from(std::string_view s) noexcept {
  if (s == "cache_only") return ScenarioMode::cache_only;
  if (s == "hybrid") return ScenarioMode::hybrid;
  if (s == "compare") return ScenarioMode::compare;
  return std::nullopt;
}

std::vector<mem::HierarchyMode> Scenario::hierarchy_modes() const {
  switch (mode) {
    case ScenarioMode::cache_only: return {mem::HierarchyMode::cache_only};
    case ScenarioMode::hybrid: return {mem::HierarchyMode::hybrid};
    case ScenarioMode::compare:
      return {mem::HierarchyMode::cache_only, mem::HierarchyMode::hybrid};
  }
  return {};
}

std::optional<Scenario> Scenario::parse(const json::Value& doc,
                                        std::string* error) {
  Ctx c{error};
  const std::string root = "scenario";
  if (!doc.is_object()) {
    c.fail(root, "expected a JSON object");
    return std::nullopt;
  }
  Scenario s;
  if (!check_keys(c, doc, root,
                  {"name", "description", "mode", "seed", "config", "memory",
                   "regions", "programs"}))
    return std::nullopt;
  if (!req(c, doc, root, "name", to_str, s.name)) return std::nullopt;
  if (s.name.empty()) {
    c.fail(root + ".name", "must not be empty");
    return std::nullopt;
  }
  if (!opt(c, doc, root, "description", to_str, s.description))
    return std::nullopt;
  if (const Value* mv = doc.find("mode")) {
    std::string ms;
    if (!to_str(c, *mv, root + ".mode", ms)) return std::nullopt;
    const auto m = scenario_mode_from(ms);
    if (!m) {
      c.fail(root + ".mode", "unknown mode '" + ms +
                                 "' (want cache_only, hybrid or compare)");
      return std::nullopt;
    }
    s.mode = *m;
  }
  if (!opt(c, doc, root, "seed", to_u64, s.seed)) return std::nullopt;
  if (const Value* cv = doc.find("config")) {
    if (!parse_config(c, *cv, root + ".config", s.config)) return std::nullopt;
  }
  if (const Value* mv = doc.find("memory")) {
    if (!parse_memory(c, *mv, root + ".memory", s.config.memory))
      return std::nullopt;
  }

  const Value* rv = doc.find("regions");
  if (rv == nullptr) {
    c.fail(root, "missing required key \"regions\"");
    return std::nullopt;
  }
  if (!parse_regions(c, *rv, root + ".regions", s.config.dma_chunk_bytes,
                     s.regions))
    return std::nullopt;

  const Value* pv = doc.find("programs");
  if (pv == nullptr) {
    c.fail(root, "missing required key \"programs\"");
    return std::nullopt;
  }
  if (!pv->is_array() || pv->as_array().empty()) {
    c.fail(root + ".programs", "expected a non-empty array");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < pv->as_array().size(); ++i) {
    ProgramSpec p;
    if (!parse_program(c, pv->as_array()[i],
                       root + ".programs[" + std::to_string(i) + "]",
                       s.regions, s.config.tiles, p))
      return std::nullopt;
    s.programs.push_back(std::move(p));
  }

  // Core-coverage check: no core may be claimed twice (cores nobody claims
  // simply idle).
  std::vector<int> owner(s.config.tiles, -1);
  for (std::size_t i = 0; i < s.programs.size(); ++i) {
    std::vector<unsigned> cores = s.programs[i].cores;
    if (cores.empty())
      for (unsigned t = 0; t < s.config.tiles; ++t) cores.push_back(t);
    for (const unsigned core : cores) {
      if (owner[core] >= 0) {
        c.fail(root + ".programs[" + std::to_string(i) + "]",
               "core " + std::to_string(core) +
                   " is already claimed by programs[" +
                   std::to_string(owner[core]) + "]");
        return std::nullopt;
      }
      owner[core] = static_cast<int>(i);
    }
  }
  return s;
}

std::optional<Scenario> Scenario::load_file(const std::string& path,
                                            std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error) *error = path + ": cannot open for reading";
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parse_error;
  const auto doc = json::Value::parse(ss.str(), &parse_error);
  if (!doc) {
    if (error) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  std::string semantic_error;
  auto s = parse(*doc, &semantic_error);
  if (!s && error) *error = path + ": " + semantic_error;
  return s;
}

namespace {

/// Serialization helpers for Scenario::to_json. Every key parse() can read
/// is emitted explicitly (defaults included), so the parse(to_json()) round
/// trip restores every field bit-for-bit instead of relying on the two
/// sides agreeing about defaults.
json::Value config_to_json(const mem::SystemConfig& c) {
  json::Value v;
  v.set("tiles", c.tiles);
  v.set("mesh_x", c.mesh_x);
  v.set("mesh_y", c.mesh_y);
  v.set("mem_controllers", c.mem_controllers);
  v.set("line_bytes", c.line_bytes);
  v.set("l1_bytes", c.l1_bytes);
  v.set("l1_assoc", c.l1_assoc);
  v.set("l2_bank_bytes", c.l2_bank_bytes);
  v.set("l2_assoc", c.l2_assoc);
  v.set("spm_bytes", c.spm_bytes);
  v.set("dma_chunk_bytes", c.dma_chunk_bytes);
  v.set("lat_l1_hit", c.lat_l1_hit);
  v.set("lat_spm_hit", c.lat_spm_hit);
  v.set("lat_l2_hit", c.lat_l2_hit);
  v.set("lat_dir", c.lat_dir);
  v.set("lat_filter", c.lat_filter);
  v.set("lat_router", c.lat_router);
  v.set("lat_link", c.lat_link);
  v.set("e_l1_hit", c.e_l1_hit);
  v.set("e_l1_probe", c.e_l1_probe);
  v.set("e_spm", c.e_spm);
  v.set("e_l2", c.e_l2);
  v.set("e_dir", c.e_dir);
  v.set("e_filter", c.e_filter);
  v.set("e_flit_hop", c.e_flit_hop);
  v.set("e_static_per_tile_cycle", c.e_static_per_tile_cycle);
  return v;
}

/// The "memory" object mirrors parse_memory key for key, defaults
/// included, keeping the parse(to_json()) round trip field-identical.
json::Value memory_to_json(const mem::MemoryConfig& m) {
  json::Value v;
  v.set("backend", mem::to_string(m.kind));
  json::Value f;
  f.set("lat_dram", m.flat.lat_dram);
  f.set("dram_cycles_per_line", m.flat.dram_cycles_per_line);
  f.set("e_dram_line", m.flat.e_dram_line);
  v.set("flat", std::move(f));
  json::Value b;
  b.set("channels", m.banked.channels);
  b.set("banks_per_channel", m.banked.banks_per_channel);
  b.set("mapping", mem::to_string(m.banked.mapping));
  b.set("row_bytes", m.banked.row_bytes);
  b.set("t_rp", m.banked.t_rp);
  b.set("t_rcd", m.banked.t_rcd);
  b.set("t_cas", m.banked.t_cas);
  b.set("line_cycles", m.banked.line_cycles);
  b.set("refresh_interval", m.banked.refresh_interval);
  b.set("refresh_cycles", m.banked.refresh_cycles);
  b.set("dma_cycles_per_line", m.banked.dma_cycles_per_line);
  b.set("e_line", m.banked.e_line);
  b.set("e_activate", m.banked.e_activate);
  b.set("e_refresh", m.banked.e_refresh);
  v.set("banked", std::move(b));
  return v;
}

json::Value cores_to_json(const std::vector<unsigned>& cores) {
  json::Value a;
  for (const unsigned c : cores) a.push_back(c);
  return a;
}

const char* slice_str(bool per_core) { return per_core ? "core" : "all"; }

json::Value program_to_json(const ProgramSpec& p,
                            const std::vector<RegionSpec>& regions) {
  json::Value v;
  const auto region_name = [&](std::size_t idx) {
    return json::Value{regions[idx].name};
  };
  switch (p.kind) {
    case GenKind::scripted: {
      v.set("generator", "scripted");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      json::Value phases;
      for (const auto& ph : p.phases) {
        json::Value pv;
        pv.set("iterations", static_cast<double>(ph.iterations));
        pv.set("gap_cycles", ph.gap_cycles);
        json::Value streams;
        for (const auto& st : ph.streams) {
          json::Value sv;
          sv.set("region", region_name(st.region));
          sv.set("kind", st.kind == kern::StreamKind::linear ? "linear"
                         : st.kind == kern::StreamKind::random
                             ? "random"
                             : "random_rmw");
          sv.set("store", st.store);
          if (st.ref) sv.set("class", mem::to_string(*st.ref));
          sv.set("start", static_cast<double>(st.start));
          sv.set("stride", static_cast<double>(st.stride));
          sv.set("elem_bytes", st.elem_bytes);
          sv.set("slice", slice_str(st.per_core_slice));
          streams.push_back(std::move(sv));
        }
        pv.set("streams", std::move(streams));
        phases.push_back(std::move(pv));
      }
      v.set("phases", std::move(phases));
      break;
    }
    case GenKind::zipf:
      v.set("generator", "zipf");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      v.set("region", region_name(p.region));
      v.set("slice", slice_str(p.per_core_slice));
      if (p.ref) v.set("class", mem::to_string(*p.ref));
      v.set("accesses", static_cast<double>(p.accesses));
      v.set("elem_bytes", p.elem_bytes);
      v.set("hot_fraction", p.hot_fraction);
      v.set("hot_weight", p.hot_weight);
      v.set("store_fraction", p.store_fraction);
      v.set("gap_cycles", p.gap_cycles);
      break;
    case GenKind::pointer_chase:
      v.set("generator", "pointer_chase");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      v.set("region", region_name(p.region));
      v.set("slice", slice_str(p.per_core_slice));
      if (p.ref) v.set("class", mem::to_string(*p.ref));
      v.set("accesses", static_cast<double>(p.accesses));
      v.set("elem_bytes", p.elem_bytes);
      v.set("gap_cycles", p.gap_cycles);
      break;
    case GenKind::stencil:
      v.set("generator", "stencil");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      v.set("in", region_name(p.region));
      v.set("out", region_name(p.out_region));
      v.set("sweeps", p.sweeps);
      v.set("halo", p.halo);
      if (p.halo_ref) v.set("halo_class", mem::to_string(*p.halo_ref));
      v.set("elem_bytes", p.elem_bytes);
      v.set("gap_cycles", p.gap_cycles);
      break;
    case GenKind::producer_consumer:
      v.set("generator", "producer_consumer");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      v.set("region", region_name(p.region));
      if (p.ref) v.set("class", mem::to_string(*p.ref));
      v.set("iterations", static_cast<double>(p.iterations));
      v.set("elem_bytes", p.elem_bytes);
      v.set("gap_cycles", p.gap_cycles);
      break;
    case GenKind::bursty:
      // Note: bursty has no gap_cycles key (gap_on/gap_off cover it).
      v.set("generator", "bursty");
      if (!p.cores.empty()) v.set("cores", cores_to_json(p.cores));
      v.set("region", region_name(p.region));
      v.set("slice", slice_str(p.per_core_slice));
      if (p.ref) v.set("class", mem::to_string(*p.ref));
      v.set("bursts", static_cast<double>(p.bursts));
      v.set("burst_len", static_cast<double>(p.burst_len));
      v.set("gap_on", p.gap_on);
      v.set("gap_off", p.gap_off);
      v.set("store_fraction", p.store_fraction);
      v.set("elem_bytes", p.elem_bytes);
      break;
  }
  return v;
}

}  // namespace

json::Value Scenario::to_json() const {
  json::Value doc;
  doc.set("name", name);
  if (!description.empty()) doc.set("description", description);
  doc.set("mode", to_string(mode));
  doc.set("seed", static_cast<double>(seed));
  doc.set("config", config_to_json(config));
  doc.set("memory", memory_to_json(config.memory));
  json::Value regions_v;
  for (const auto& r : regions) {
    json::Value rv;
    rv.set("name", r.name);
    rv.set("class", mem::to_string(r.ref));
    if (r.bytes != 0) rv.set("bytes", static_cast<double>(r.bytes));
    if (r.bytes_per_core != 0)
      rv.set("bytes_per_core", static_cast<double>(r.bytes_per_core));
    regions_v.push_back(std::move(rv));
  }
  doc.set("regions", std::move(regions_v));
  json::Value programs_v;
  for (const auto& p : programs)
    programs_v.push_back(program_to_json(p, regions));
  doc.set("programs", std::move(programs_v));
  return doc;
}

std::optional<std::size_t> Scenario::first_unreferenced_region() const {
  std::vector<bool> used(regions.size(), false);
  for (const auto& p : programs) {
    if (p.kind == GenKind::scripted) {
      for (const auto& ph : p.phases)
        for (const auto& st : ph.streams) used[st.region] = true;
    } else {
      used[p.region] = true;
      if (p.kind == GenKind::stencil) used[p.out_region] = true;
    }
  }
  for (std::size_t i = 0; i < used.size(); ++i)
    if (!used[i]) return i;
  return std::nullopt;
}

mem::Workload Scenario::instantiate() const {
  mem::Workload w;
  w.name = name;
  kern::AddressSpace as{config.dma_chunk_bytes};
  std::vector<const mem::Region*> regs;
  regs.reserve(regions.size());
  for (const auto& r : regions) {
    const std::uint64_t total =
        r.bytes != 0 ? r.bytes : r.bytes_per_core * config.tiles;
    regs.push_back(&as.add(w, r.name, total, r.ref));
  }

  /// The window a spec draws from on core `c`.
  const auto window = [&](std::size_t region, bool per_core,
                          unsigned c) -> Slice {
    const RegionSpec& r = regions[region];
    const std::uint64_t total =
        r.bytes != 0 ? r.bytes : r.bytes_per_core * config.tiles;
    if (per_core)
      return Slice{regs[region]->base + std::uint64_t{c} * r.bytes_per_core,
                   r.bytes_per_core};
    return Slice{regs[region]->base, total};
  };

  std::vector<const ProgramSpec*> owner(config.tiles, nullptr);
  for (const auto& p : programs) {
    if (p.cores.empty()) {
      for (auto& o : owner) o = &p;
    } else {
      for (const unsigned c : p.cores) owner[c] = &p;
    }
  }

  for (unsigned c = 0; c < config.tiles; ++c) {
    // Deterministic per-core seeds, distinct across cores and scenarios.
    const std::uint64_t core_seed =
        seed * 0x9e3779b97f4a7c15ULL + std::uint64_t{c} + 1;
    const ProgramSpec* p = owner[c];
    if (p == nullptr) {
      // Unclaimed core: an immediately-ending program (the core idles).
      w.programs.push_back(std::make_unique<kern::ScriptedProgram>(
          std::vector<kern::Phase>{}, core_seed));
      continue;
    }
    switch (p->kind) {
      case GenKind::scripted: {
        std::vector<kern::Phase> phases;
        for (const auto& ph : p->phases) {
          kern::Phase phase;
          phase.iterations = ph.iterations;
          phase.gap_cycles = ph.gap_cycles;
          for (const auto& st : ph.streams) {
            const Slice win = window(st.region, st.per_core_slice, c);
            const std::uint64_t rel = win.base - regs[st.region]->base;
            kern::Stream stream;
            stream.region = regs[st.region];
            stream.kind = st.kind;
            stream.store = st.store;
            stream.ref = st.ref.value_or(regions[st.region].ref);
            stream.elem_bytes = st.elem_bytes;
            if (st.kind == kern::StreamKind::linear) {
              stream.start = rel + st.start;
              stream.stride = st.stride;
            } else {
              stream.slice_base = rel + st.start;
              stream.slice_bytes = win.bytes - st.start;
            }
            phase.streams.push_back(stream);
          }
          phases.push_back(std::move(phase));
        }
        w.programs.push_back(std::make_unique<kern::ScriptedProgram>(
            std::move(phases), core_seed));
        break;
      }
      case GenKind::zipf: {
        ZipfParams zp;
        zp.slice = window(p->region, p->per_core_slice, c);
        zp.accesses = p->accesses;
        zp.elem_bytes = p->elem_bytes;
        zp.hot_fraction = p->hot_fraction;
        zp.hot_weight = p->hot_weight;
        zp.store_fraction = p->store_fraction;
        zp.gap_cycles = p->gap_cycles;
        zp.ref = p->ref.value_or(regions[p->region].ref);
        w.programs.push_back(std::make_unique<ZipfProgram>(zp, core_seed));
        break;
      }
      case GenKind::pointer_chase: {
        PointerChaseParams pp;
        pp.slice = window(p->region, p->per_core_slice, c);
        pp.accesses = p->accesses;
        pp.elem_bytes = p->elem_bytes;
        pp.gap_cycles = p->gap_cycles;
        pp.ref = p->ref.value_or(regions[p->region].ref);
        w.programs.push_back(
            std::make_unique<PointerChaseProgram>(pp, core_seed));
        break;
      }
      case GenKind::stencil: {
        StencilParams sp;
        sp.in_region = window(p->region, /*per_core=*/false, c);
        sp.out_region = window(p->out_region, /*per_core=*/false, c);
        const std::uint64_t elems_pc =
            regions[p->region].bytes_per_core / p->elem_bytes;
        sp.elem_offset = std::uint64_t{c} * elems_pc;
        sp.elems = elems_pc;
        sp.halo = p->halo;
        sp.sweeps = p->sweeps;
        sp.elem_bytes = p->elem_bytes;
        sp.gap_cycles = p->gap_cycles;
        sp.in_ref = p->ref.value_or(regions[p->region].ref);
        sp.out_ref = p->ref.value_or(regions[p->out_region].ref);
        sp.halo_ref = p->halo_ref.value_or(mem::RefClass::random_unknown);
        w.programs.push_back(std::make_unique<StencilProgram>(sp));
        break;
      }
      case GenKind::producer_consumer: {
        ProducerConsumerParams cp;
        cp.ring = window(p->region, /*per_core=*/false, c);
        cp.slot_bytes = regions[p->region].bytes_per_core;
        cp.core = c;
        cp.cores = config.tiles;
        cp.iterations = p->iterations;
        cp.elem_bytes = p->elem_bytes;
        cp.gap_cycles = p->gap_cycles;
        cp.ref = p->ref.value_or(regions[p->region].ref);
        w.programs.push_back(std::make_unique<ProducerConsumerProgram>(cp));
        break;
      }
      case GenKind::bursty: {
        BurstyParams bp;
        bp.slice = window(p->region, p->per_core_slice, c);
        bp.bursts = p->bursts;
        bp.burst_len = p->burst_len;
        bp.gap_on = p->gap_on;
        bp.gap_off = p->gap_off;
        bp.store_fraction = p->store_fraction;
        bp.elem_bytes = p->elem_bytes;
        bp.ref = p->ref.value_or(regions[p->region].ref);
        w.programs.push_back(std::make_unique<BurstyProgram>(bp, core_seed));
        break;
      }
    }
  }
  return w;
}

}  // namespace raa::scen
