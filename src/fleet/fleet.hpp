#pragma once
/// \file fleet.hpp
/// The fault-isolated batch engine behind tools/raa_fleet: run every job
/// of a manifest across an exec::Pool, survive individual job failures
/// (job.hpp taxonomy), enforce per-job deadlines through a watchdog with
/// cooperative cancellation, retry transient failures under a capped
/// exponential backoff budget, stream one result JSON per job to an
/// output directory, and merge everything into one machine-readable index
/// ("raa-fleet-index").
///
/// Determinism contract (the FleetEquivalence suite pins it): per-job
/// seeds derive from the manifest (manifest.hpp), per-job result
/// documents carry no wall-clock or host-dependent fields, and the
/// index's job records are assembled in manifest order — so every gated
/// byte is identical for any `jobs` lane count and any completion order.
/// Fleet throughput (scenarios/s, aggregate simulated accesses/s) is
/// informational only and quarantined in the index's "informational"
/// block.
///
/// Exit taxonomy (common/exit_codes.hpp): 0 when every job ended
/// ok/retried_ok, 4 when some did and some did not (graceful
/// degradation), 1 when none did or the fleet itself failed (output-dir
/// I/O), 2 on configuration errors.

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/job.hpp"
#include "fleet/manifest.hpp"
#include "report/json.hpp"

namespace raa::fleet {

struct FleetOptions {
  Manifest manifest;
  /// Directory for per-job result files (`<id>.json`) and the merged
  /// `index.json`; empty runs fully in-memory (tests).
  std::string out_dir;
  unsigned jobs = 1;  ///< concurrent job lanes (exec::Pool workers)
  /// Outermost fallback for knobs neither the job entry nor the manifest
  /// "defaults" set (the driver's command-line flags land here).
  JobLimits fallback;
  std::uint64_t backoff_base_ms = 50;  ///< first retry delay
  std::uint64_t backoff_cap_ms = 2000; ///< exponential backoff ceiling
  /// Fault-injection test hooks, each a glob over job ids: `inject_fail`
  /// fails matching jobs permanently, `inject_flaky` fails their first
  /// attempt with a transient error (drives the retry path),
  /// `inject_hang` stalls them until the watchdog cancels (drives the
  /// timeout path; matching jobs must have a deadline).
  std::string inject_fail;
  std::string inject_hang;
  std::string inject_flaky;
  /// Record still-unstarted jobs as `skipped` once any job has failed.
  bool fail_fast = false;
  bool quiet = true;  ///< suppress per-job progress on stdout
};

/// Final record of one job, in manifest order.
struct JobRecord {
  std::string id;
  std::string input;  ///< resolved scenario or trace path
  std::uint64_t seed = 0;
  JobStatus status = JobStatus::skipped;
  ErrorKind error = ErrorKind::none;
  std::string message;
  unsigned attempts = 0;
  std::string result_file;  ///< "<id>.json" on success with an out_dir
  json::Value result;       ///< per-job result document (success only)
  std::uint64_t sim_accesses = 0;
};

struct FleetResult {
  std::vector<JobRecord> records;  ///< manifest order
  json::Value index;               ///< the raa-fleet-index document
  int exit_code = 0;
  std::string error;  ///< fleet-level configuration/I/O failure
  unsigned ok = 0, retried_ok = 0, failed = 0, timeout = 0, skipped = 0;
};

FleetResult run_fleet(const FleetOptions& opt);

}  // namespace raa::fleet
