#include "fleet/manifest.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "report/report.hpp"

namespace raa::fleet {

namespace {

using json::Value;

constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

/// First-failure-wins error sink with JSON-path context (the scenario
/// parser's Ctx, re-rolled locally to keep the layers decoupled).
struct Ctx {
  std::string* error = nullptr;

  bool fail(const std::string& path, const std::string& msg) {
    if (error && error->empty()) *error = path + ": " + msg;
    return false;
  }
};

bool to_u64(Ctx& c, const Value& v, const std::string& path,
            std::uint64_t& out) {
  if (!v.is_number()) return c.fail(path, "expected a non-negative integer");
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > kMaxExactInt)
    return c.fail(path, "expected a non-negative integer");
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool to_unsigned(Ctx& c, const Value& v, const std::string& path,
                 unsigned& out) {
  std::uint64_t x = 0;
  if (!to_u64(c, v, path, x)) return false;
  if (x > std::numeric_limits<unsigned>::max())
    return c.fail(path, "value does not fit in 32 bits");
  out = static_cast<unsigned>(x);
  return true;
}

bool to_str(Ctx& c, const Value& v, const std::string& path,
            std::string& out) {
  if (!v.is_string()) return c.fail(path, "expected a string");
  out = v.as_string();
  return true;
}

bool check_keys(Ctx& c, const Value& obj, const std::string& path,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) return c.fail(path + "." + key, "unknown key");
  }
  return true;
}

bool valid_mode(const std::string& s) {
  return s == "cache_only" || s == "hybrid" || s == "compare";
}

bool valid_backend(const std::string& s) {
  return s == "flat" || s == "banked";
}

bool filesystem_safe_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  return std::all_of(id.begin(), id.end(), [](char ch) {
    return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
           (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' || ch == '-';
  });
}

/// Parse the limit keys shared by "defaults" and each job entry.
bool parse_limits(Ctx& c, const Value& obj, const std::string& path,
                  JobLimits& out) {
  if (const Value* v = obj.find("mode")) {
    std::string s;
    if (!to_str(c, *v, path + ".mode", s)) return false;
    if (!valid_mode(s))
      return c.fail(path + ".mode", "unknown mode '" + s +
                                        "' (want cache_only, hybrid or "
                                        "compare)");
    out.mode = s;
  }
  if (const Value* v = obj.find("backend")) {
    std::string s;
    if (!to_str(c, *v, path + ".backend", s)) return false;
    if (!valid_backend(s))
      return c.fail(path + ".backend",
                    "unknown backend '" + s + "' (want flat or banked)");
    out.backend = s;
  }
  if (const Value* v = obj.find("shards")) {
    unsigned s = 0;
    if (!to_unsigned(c, *v, path + ".shards", s)) return false;
    if (s < 1) return c.fail(path + ".shards", "expected shards >= 1");
    out.shards = s;
  }
  if (const Value* v = obj.find("timeout_ms")) {
    std::uint64_t t = 0;
    if (!to_u64(c, *v, path + ".timeout_ms", t)) return false;
    out.timeout_ms = t;
  }
  if (const Value* v = obj.find("retries")) {
    unsigned r = 0;
    if (!to_unsigned(c, *v, path + ".retries", r)) return false;
    out.retries = r;
  }
  return true;
}

}  // namespace

JobLimits JobLimits::or_else(const JobLimits& over) const {
  JobLimits merged = *this;
  if (!merged.mode) merged.mode = over.mode;
  if (!merged.backend) merged.backend = over.backend;
  if (!merged.shards) merged.shards = over.shards;
  if (!merged.timeout_ms) merged.timeout_ms = over.timeout_ms;
  if (!merged.retries) merged.retries = over.retries;
  return merged;
}

std::optional<Manifest> Manifest::parse(const json::Value& doc,
                                        std::string* error) {
  Ctx c{error};
  if (!doc.is_object()) {
    c.fail("manifest", "expected a JSON object");
    return std::nullopt;
  }
  if (!check_keys(c, doc, "manifest",
                  {"schema", "schema_version", "name", "seed", "defaults",
                   "jobs"}))
    return std::nullopt;

  Manifest m;
  if (const Value* v = doc.find("schema")) {
    std::string s;
    if (!to_str(c, *v, "manifest.schema", s)) return std::nullopt;
    if (s != report::kFleetManifestSchemaName) {
      c.fail("manifest.schema",
             "expected \"" + std::string{report::kFleetManifestSchemaName} +
                 "\", got '" + s + "'");
      return std::nullopt;
    }
  }
  if (const Value* v = doc.find("name"))
    if (!to_str(c, *v, "manifest.name", m.name)) return std::nullopt;
  if (const Value* v = doc.find("seed"))
    if (!to_u64(c, *v, "manifest.seed", m.seed)) return std::nullopt;
  if (const Value* v = doc.find("defaults")) {
    if (!v->is_object()) {
      c.fail("manifest.defaults", "expected an object");
      return std::nullopt;
    }
    if (!check_keys(c, *v, "manifest.defaults",
                    {"mode", "backend", "shards", "timeout_ms", "retries"}) ||
        !parse_limits(c, *v, "manifest.defaults", m.defaults))
      return std::nullopt;
  }

  const Value* jobs = doc.find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    c.fail("manifest.jobs", "missing required job array");
    return std::nullopt;
  }
  if (jobs->as_array().empty()) {
    c.fail("manifest.jobs", "a fleet needs at least one job");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < jobs->as_array().size(); ++i) {
    const Value& jv = jobs->as_array()[i];
    const std::string path = "manifest.jobs[" + std::to_string(i) + "]";
    if (!jv.is_object()) {
      c.fail(path, "expected an object");
      return std::nullopt;
    }
    if (!check_keys(c, jv, path,
                    {"id", "scenario", "trace", "seed", "mode", "backend",
                     "shards", "timeout_ms", "retries"}))
      return std::nullopt;
    JobSpec job;
    const Value* idv = jv.find("id");
    if (idv == nullptr || !to_str(c, *idv, path + ".id", job.id)) {
      if (idv == nullptr) c.fail(path, "missing required key \"id\"");
      return std::nullopt;
    }
    if (!filesystem_safe_id(job.id)) {
      c.fail(path + ".id",
             "id '" + job.id +
                 "' must be 1-128 chars of [A-Za-z0-9._-] (it names the "
                 "per-job result file)");
      return std::nullopt;
    }
    if (const Value* v = jv.find("scenario"))
      if (!to_str(c, *v, path + ".scenario", job.scenario))
        return std::nullopt;
    if (const Value* v = jv.find("trace"))
      if (!to_str(c, *v, path + ".trace", job.trace)) return std::nullopt;
    if (job.scenario.empty() == job.trace.empty()) {
      c.fail(path, "give exactly one of \"scenario\" or \"trace\"");
      return std::nullopt;
    }
    if (const Value* v = jv.find("seed")) {
      std::uint64_t s = 0;
      if (!to_u64(c, *v, path + ".seed", s)) return std::nullopt;
      job.seed = s;
    }
    if (!parse_limits(c, jv, path, job.limits)) return std::nullopt;
    m.jobs.push_back(std::move(job));
  }

  for (std::size_t i = 0; i < m.jobs.size(); ++i)
    for (std::size_t j = i + 1; j < m.jobs.size(); ++j)
      if (m.jobs[i].id == m.jobs[j].id) {
        c.fail("manifest.jobs[" + std::to_string(j) + "].id",
               "duplicate job id '" + m.jobs[j].id + "'");
        return std::nullopt;
      }
  return m;
}

std::optional<Manifest> Manifest::load_file(const std::string& path,
                                            std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error) *error = path + ": cannot open manifest file";
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parse_error;
  const auto doc = json::Value::parse(ss.str(), &parse_error);
  if (!doc) {
    if (error) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto m = parse(*doc, error);
  if (!m) {
    if (error && !error->empty()) *error = path + ": " + *error;
    return std::nullopt;
  }
  // Relative job inputs are manifest-relative, so a manifest plus its
  // scenario files move around as one self-contained bundle.
  const std::filesystem::path base =
      std::filesystem::path{path}.parent_path();
  if (!base.empty())
    for (JobSpec& job : m->jobs) {
      for (std::string* p : {&job.scenario, &job.trace})
        if (!p->empty() && std::filesystem::path{*p}.is_relative())
          *p = (base / *p).lexically_normal().string();
    }
  return m;
}

std::optional<Manifest> Manifest::from_directory(const std::string& dir,
                                                 std::string* error) {
  std::error_code ec;
  std::filesystem::directory_iterator it{dir, ec};
  if (ec) {
    if (error) *error = dir + ": cannot read directory (" + ec.message() + ")";
    return std::nullopt;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it)
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path());
  if (files.empty()) {
    if (error) *error = dir + ": no *.json scenario files found";
    return std::nullopt;
  }
  std::sort(files.begin(), files.end());

  Manifest m;
  m.name = std::filesystem::path{dir}.filename().string();
  if (m.name.empty()) m.name = "fleet";
  for (const auto& f : files) {
    JobSpec job;
    job.id = f.stem().string();
    job.scenario = f.string();
    m.jobs.push_back(std::move(job));
  }
  return m;
}

json::Value Manifest::to_json() const {
  Value doc;
  doc.set("schema", report::kFleetManifestSchemaName);
  doc.set("schema_version", report::kFleetManifestSchemaVersion);
  doc.set("name", name);
  doc.set("seed", static_cast<double>(seed));
  const auto emit_limits = [](Value& obj, const JobLimits& l) {
    if (l.mode) obj.set("mode", *l.mode);
    if (l.backend) obj.set("backend", *l.backend);
    if (l.shards) obj.set("shards", *l.shards);
    if (l.timeout_ms)
      obj.set("timeout_ms", static_cast<double>(*l.timeout_ms));
    if (l.retries) obj.set("retries", *l.retries);
  };
  if (defaults != JobLimits{}) {
    Value d{json::Object{}};
    emit_limits(d, defaults);
    doc.set("defaults", std::move(d));
  }
  Value arr{json::Array{}};
  for (const JobSpec& job : jobs) {
    Value jv;
    jv.set("id", job.id);
    if (!job.scenario.empty()) jv.set("scenario", job.scenario);
    if (!job.trace.empty()) jv.set("trace", job.trace);
    if (job.seed) jv.set("seed", static_cast<double>(*job.seed));
    emit_limits(jv, job.limits);
    arr.push_back(std::move(jv));
  }
  doc.set("jobs", std::move(arr));
  return doc;
}

std::uint64_t derive_job_seed(std::uint64_t fleet_seed, std::string_view id) {
  // FNV-1a over the id folded into the fleet seed, finalized through
  // SplitMix64 — position-independent by construction.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : id) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = fleet_seed ^ h;
  return splitmix64(state);
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative backtracking over the last '*' — linear in practice.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace raa::fleet
