#pragma once
/// \file manifest.hpp
/// Fleet job manifests: the declarative input of the batch engine
/// (fleet.hpp). A manifest names a set of scenario/trace *jobs* plus
/// fleet-wide defaults; it is either written by hand (JSON, schema
/// "raa-fleet-manifest", documented in docs/FLEET.md), synthesized from a
/// directory of scenario files, or emitted by the fuzzer
/// (`raa_fuzz --emit-manifest`).
///
/// Determinism contract: per-job seeds derive from (manifest seed, job id)
/// — not from array position or submission time — so results are
/// byte-identical for any `--jobs=N`, any completion order, and even a
/// shuffled manifest. Parsing is strict in the scenario-parser tradition:
/// unknown keys, duplicate ids, missing inputs and invalid enum strings
/// all fail with a JSON-path message.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace raa::fleet {

/// Per-job knobs resolvable at three levels: job entry > manifest
/// "defaults" > the driver's command-line fallback.
struct JobLimits {
  std::optional<std::string> mode;     ///< cache_only | hybrid | compare
  std::optional<std::string> backend;  ///< flat | banked
  std::optional<unsigned> shards;      ///< front-end lanes per System::run
  std::optional<std::uint64_t> timeout_ms;  ///< per-job deadline; 0 = none
  std::optional<unsigned> retries;     ///< extra attempts for transient errors

  /// Layer `over` (the weaker level) under this one: unset fields inherit.
  JobLimits or_else(const JobLimits& over) const;

  friend bool operator==(const JobLimits&, const JobLimits&) = default;
};

/// One fleet job: a unique id plus exactly one input (scenario JSON file
/// or recorded RAAT trace).
struct JobSpec {
  std::string id;        ///< unique, filesystem-safe ([A-Za-z0-9._-])
  std::string scenario;  ///< path to a scenario JSON file
  std::string trace;     ///< path to a RAAT trace
  std::optional<std::uint64_t> seed;  ///< explicit seed; absent = derived
  JobLimits limits;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// A parsed, validated fleet manifest.
struct Manifest {
  std::string name = "fleet";
  std::uint64_t seed = 1;  ///< fleet seed; per-job seeds derive from it
  JobLimits defaults;
  std::vector<JobSpec> jobs;

  /// Parse + validate the "raa-fleet-manifest" schema. On failure returns
  /// nullopt and stores a JSON-path message in `error` when non-null.
  static std::optional<Manifest> parse(const json::Value& doc,
                                       std::string* error = nullptr);

  /// parse() over a file; relative scenario/trace paths in the manifest
  /// resolve against the manifest file's directory.
  static std::optional<Manifest> load_file(const std::string& path,
                                           std::string* error = nullptr);

  /// Synthesize a manifest from every `*.json` scenario file directly in
  /// `dir` (sorted by filename; id = file stem). Fails on an unreadable
  /// or scenario-free directory.
  static std::optional<Manifest> from_directory(const std::string& dir,
                                                std::string* error = nullptr);

  /// Serialize back to the schema parse() accepts (the fuzzer's
  /// --emit-manifest writer and tests round-trip through this).
  json::Value to_json() const;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// The per-job seed when the job entry gives none: a pure function of the
/// fleet seed and the job *id*, so reordering or subsetting a manifest
/// never changes any job's random stream.
std::uint64_t derive_job_seed(std::uint64_t fleet_seed, std::string_view id);

/// Shell-style glob match over job ids (`*` any run, `?` any one char) —
/// the selector behind the fault-injection test hooks.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace raa::fleet
