#pragma once
/// \file job.hpp
/// One fleet job, run fault-isolated and in-process: the typed error
/// taxonomy (JobError), the final per-job statuses, and the attempt
/// runner. The taxonomy is what makes the fleet robust by construction —
/// a poisoned scenario (parse failure, degenerate workload, broken
/// simulator invariant) surfaces as a classified JobError the engine
/// records and survives, never an abort(); transient kinds are retried
/// under the deterministic backoff budget, permanent kinds fail fast.
///
/// Cancellation is cooperative: every core program is wrapped so the
/// access-stream front end observes the watchdog's cancel flag between
/// fill() batches and unwinds with ErrorKind::cancelled. Since the
/// simulator's commit loop is bounded by the accesses the front end
/// produces, cancelling production bounds the whole run — which is how a
/// timed-out job's pool slot is reclaimed without killing any thread.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fleet/manifest.hpp"
#include "memsim/config.hpp"
#include "report/json.hpp"
#include "report/report.hpp"

namespace raa::mem {
struct Metrics;
}  // namespace raa::mem

namespace raa::fleet {

/// Why a job attempt failed. The kind decides retryability: transient
/// kinds (io, cancelled) re-enter the queue under the retry budget;
/// everything else is permanent — retrying a parse error or a broken
/// invariant would burn budget to reproduce the same failure.
enum class ErrorKind : std::uint8_t {
  none,        ///< attempt succeeded
  parse,       ///< scenario/trace unreadable or schema-invalid
  degenerate,  ///< parsed, but degenerate as a workload (unused region)
  check,       ///< RAA_CHECK fired inside the simulator (raa::CheckError)
  io,          ///< filesystem error reading inputs — transient
  cancelled,   ///< watchdog deadline cancelled the attempt — transient
  injected,    ///< --inject-fail test hook
  internal,    ///< any other exception (bug in the job runner)
};

const char* to_string(ErrorKind kind) noexcept;

/// True for kinds worth retrying (a repeat attempt can plausibly succeed).
constexpr bool is_transient(ErrorKind kind) noexcept {
  return kind == ErrorKind::io || kind == ErrorKind::cancelled;
}

/// The one exception type job code throws; everything else escaping an
/// attempt is classified ErrorKind::internal by the runner.
class JobError : public std::runtime_error {
 public:
  JobError(ErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Final per-job status in the fleet index.
enum class JobStatus : std::uint8_t {
  ok,          ///< first attempt succeeded
  retried_ok,  ///< succeeded after >= 1 failed attempt
  failed,      ///< permanent error, or transient retries exhausted
  timeout,     ///< retries exhausted with the deadline as the last error
  skipped,     ///< never attempted (fail-fast tripped first)
};

const char* to_string(JobStatus status) noexcept;

/// Effective per-job execution settings after resolving job entry >
/// manifest defaults > driver fallback (fleet.cpp does the resolving).
struct JobSettings {
  std::string mode;     ///< "" = the scenario/trace's own mode
  std::string backend;  ///< "" = the scenario/trace's own backend
  unsigned shards = 1;
  std::uint64_t seed = 0;        ///< effective seed (scenario jobs)
  std::uint64_t timeout_ms = 0;  ///< 0 = no deadline (engine-enforced)
  unsigned retries = 0;          ///< extra attempts for transient kinds
};

/// What one attempt produced. `error == none` means success and `result`
/// holds the deterministic per-job report document (no wall-clock or
/// host-dependent fields — the fleet determinism contract hangs on this).
struct JobOutcome {
  ErrorKind error = ErrorKind::none;
  std::string message;
  json::Value result;
  std::uint64_t sim_accesses = 0;  ///< informational throughput input
};

/// Run one attempt of `job` end to end: load the input, apply settings,
/// simulate every hierarchy mode, build the result document. Never
/// throws — every failure comes back classified in the outcome. `cancel`
/// is the watchdog's flag; the attempt observes it cooperatively.
JobOutcome run_job_attempt(const JobSpec& job, const JobSettings& settings,
                           const std::atomic<bool>& cancel);

/// Record the full gated metric set of one simulated mode under
/// `prefix` ("hybrid/", ...). Shared with raa_sim so the per-job result
/// files and the scenario driver's reports never drift apart.
void record_metrics(report::BenchReport& b, const std::string& prefix,
                    const mem::Metrics& m);

}  // namespace raa::fleet
