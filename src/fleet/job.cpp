#include "fleet/job.hpp"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "memsim/system.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace raa::fleet {

namespace {

/// CoreProgram wrapper that observes the watchdog's cancel flag at every
/// batch boundary. fill() runs on shard-producer threads when the job is
/// sharded; the sharded engine rethrows a producer's original exception
/// with priority, so the JobError reaches run_job_attempt intact for any
/// shard count.
class CancellableProgram final : public mem::CoreProgram {
 public:
  CancellableProgram(std::unique_ptr<mem::CoreProgram> inner,
                     const std::atomic<bool>* cancel)
      : inner_(std::move(inner)), cancel_(cancel) {}

  bool next(mem::Access& out) override {
    check();
    return inner_->next(out);
  }

  std::size_t fill(std::span<mem::Access> out) override {
    check();
    return inner_->fill(out);
  }

 private:
  void check() const {
    if (cancel_->load(std::memory_order_relaxed))
      throw JobError(ErrorKind::cancelled,
                     "per-job deadline exceeded (run cancelled at an "
                     "access-stream batch boundary)");
  }

  std::unique_ptr<mem::CoreProgram> inner_;
  const std::atomic<bool>* cancel_;
};

void wrap_cancellable(mem::Workload& w, const std::atomic<bool>& cancel) {
  for (auto& program : w.programs)
    program = std::make_unique<CancellableProgram>(std::move(program),
                                                   &cancel);
}

const char* mode_name(mem::HierarchyMode m) {
  return m == mem::HierarchyMode::hybrid ? "hybrid" : "cache_only";
}

}  // namespace

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::none: return "none";
    case ErrorKind::parse: return "parse";
    case ErrorKind::degenerate: return "degenerate";
    case ErrorKind::check: return "check";
    case ErrorKind::io: return "io";
    case ErrorKind::cancelled: return "cancelled";
    case ErrorKind::injected: return "injected";
    case ErrorKind::internal: return "internal";
  }
  return "unknown";
}

const char* to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::ok: return "ok";
    case JobStatus::retried_ok: return "retried_ok";
    case JobStatus::failed: return "failed";
    case JobStatus::timeout: return "timeout";
    case JobStatus::skipped: return "skipped";
  }
  return "unknown";
}

void record_metrics(report::BenchReport& b, const std::string& prefix,
                    const mem::Metrics& m) {
  b.record(prefix + "cycles", m.cycles, "cycles");
  b.record(prefix + "energy_pj", m.energy_pj(), "pJ");
  b.record(prefix + "noc_flit_hops", m.noc_flit_hops, "flit-hops");
  const auto count = [&](const char* name, std::uint64_t v) {
    b.record(prefix + name, static_cast<double>(v), "count");
  };
  count("accesses", m.accesses);
  count("l1_hits", m.l1_hits);
  count("l1_misses", m.l1_misses);
  count("l2_hits", m.l2_hits);
  count("l2_misses", m.l2_misses);
  count("spm_hits", m.spm_hits);
  count("dram_line_reads", m.dram_line_reads);
  count("dram_line_writes", m.dram_line_writes);
  count("dram_row_hits", m.dram_row_hits);
  count("dram_row_misses", m.dram_row_misses);
  count("dram_row_conflicts", m.dram_row_conflicts);
  count("dram_refreshes", m.dram_refreshes);
  count("invalidations", m.invalidations);
  count("writebacks", m.writebacks);
  count("prefetch_fills", m.prefetch_fills);
  count("dma_transfers", m.dma_transfers);
  count("guarded_lookups", m.guarded_lookups);
  count("guarded_to_spm", m.guarded_to_spm);
  count("remote_spm_accesses", m.remote_spm_accesses);
}

namespace {

/// The throwing core of run_job_attempt; the public wrapper translates
/// every escape into a classified outcome.
JobOutcome run_attempt_impl(const JobSpec& job, const JobSettings& settings,
                            const std::atomic<bool>& cancel) {
  mem::SystemConfig cfg;
  std::vector<mem::HierarchyMode> modes;
  std::function<mem::Workload()> make_workload;
  scen::Scenario scenario;                       // scenario jobs
  std::shared_ptr<const scen::TraceData> trace;  // trace jobs

  if (!job.trace.empty()) {
    std::string error;
    auto t = scen::TraceData::read_file(job.trace, &error);
    if (!t) throw JobError(ErrorKind::parse, error);
    trace = std::make_shared<const scen::TraceData>(std::move(*t));
    cfg = trace->config;
    mem::HierarchyMode mode = trace->mode;
    if (settings.mode == "cache_only") mode = mem::HierarchyMode::cache_only;
    else if (settings.mode == "hybrid") mode = mem::HierarchyMode::hybrid;
    else if (!settings.mode.empty())
      throw JobError(ErrorKind::parse,
                     "trace jobs accept mode cache_only or hybrid, got '" +
                         settings.mode + "'");
    modes = {mode};
    make_workload = [&] { return scen::make_replay_workload(trace); };
  } else {
    std::string error;
    auto s = scen::Scenario::load_file(job.scenario, &error);
    if (!s) throw JobError(ErrorKind::parse, error);
    scenario = std::move(*s);
    scenario.seed = settings.seed;
    if (!settings.mode.empty()) {
      const auto m = scen::scenario_mode_from(settings.mode);
      if (!m)
        throw JobError(ErrorKind::parse,
                       "unknown mode override '" + settings.mode + "'");
      scenario.mode = *m;
    }
    if (const auto unref = scenario.first_unreferenced_region())
      throw JobError(ErrorKind::degenerate,
                     job.scenario + ": scenario.regions[" +
                         std::to_string(*unref) + "]: region '" +
                         scenario.regions[*unref].name +
                         "' is declared but referenced by no program");
    cfg = scenario.config;
    modes = scenario.hierarchy_modes();
    make_workload = [&] { return scenario.instantiate(); };
  }
  if (settings.backend == "flat") {
    cfg.memory.kind = mem::MemBackendKind::flat;
  } else if (settings.backend == "banked") {
    cfg.memory.kind = mem::MemBackendKind::banked;
  } else if (!settings.backend.empty()) {
    throw JobError(ErrorKind::parse,
                   "unknown backend override '" + settings.backend + "'");
  }

  JobOutcome out;
  std::vector<mem::Metrics> results;
  for (const mem::HierarchyMode mode : modes) {
    mem::Workload w = make_workload();
    wrap_cancellable(w, cancel);
    mem::System sys{cfg, mode};
    results.push_back(
        sys.run(w, mem::RunOptions{.shards = settings.shards}));
    out.sim_accesses += results.back().accesses;
  }

  // The result document is deliberately wall-clock-free: byte-identical
  // for any lane count and completion order (the FleetEquivalence
  // contract). Fleet-level throughput lives in the index's informational
  // block instead.
  report::RunReport run{1};
  auto& b = run.benchmark(job.id, "fleet-job");
  b.set_param("tiles", std::to_string(cfg.tiles));
  b.set_param("shards", std::to_string(settings.shards));
  b.set_param("backend", mem::to_string(cfg.memory.kind));
  if (!job.trace.empty()) {
    b.set_param("trace", job.trace);
    b.set_param("mode", mode_name(modes[0]));
  } else {
    b.set_param("scenario", job.scenario);
    b.set_param("mode", scen::to_string(scenario.mode));
    b.set_param("seed", std::to_string(scenario.seed));
  }
  for (std::size_t i = 0; i < modes.size(); ++i)
    record_metrics(b, std::string{mode_name(modes[i])} + "/", results[i]);
  if (modes.size() == 2) {
    b.record("time_x", results[0].cycles / results[1].cycles, "x");
    b.record("energy_x", results[0].energy_pj() / results[1].energy_pj(),
             "x");
    b.record("noc_x", results[0].noc_flit_hops / results[1].noc_flit_hops,
             "x");
  }
  out.result = run.to_json();
  return out;
}

}  // namespace

JobOutcome run_job_attempt(const JobSpec& job, const JobSettings& settings,
                           const std::atomic<bool>& cancel) {
  try {
    return run_attempt_impl(job, settings, cancel);
  } catch (const JobError& e) {
    JobOutcome out;
    out.error = e.kind();
    out.message = e.what();
    return out;
  } catch (const CheckError& e) {
    // A broken simulator invariant: the run's numbers would be garbage,
    // so the job fails permanently — but the process (and every other
    // job) survives. This is the isolation the taxonomy exists for.
    JobOutcome out;
    out.error = ErrorKind::check;
    out.message = e.what();
    return out;
  } catch (const std::exception& e) {
    JobOutcome out;
    out.error = ErrorKind::internal;
    out.message = e.what();
    return out;
  }
}

}  // namespace raa::fleet
