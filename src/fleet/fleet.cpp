#include "fleet/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/exit_codes.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"
#include "report/report.hpp"

namespace raa::fleet {

namespace {

using clock_type = std::chrono::steady_clock;

/// One in-flight attempt, shared between the pool task and the
/// coordinator. `start` is published through the `started` flag
/// (release/acquire) so the watchdog reads a valid timestamp.
struct Attempt {
  std::size_t job = 0;
  unsigned attempt_no = 1;
  std::atomic<bool> cancel{false};
  std::atomic<bool> started{false};
  clock_type::time_point start{};
  JobOutcome outcome;
};

}  // namespace

FleetResult run_fleet(const FleetOptions& opt) {
  FleetResult res;
  const Manifest& man = opt.manifest;
  const std::size_t n = man.jobs.size();
  if (n == 0) {
    res.error = "fleet manifest has no jobs";
    res.exit_code = kExitUsage;
    return res;
  }

  // Resolve the effective settings of every job up front: job entry >
  // manifest defaults > driver fallback.
  std::vector<JobSettings> settings(n);
  for (std::size_t i = 0; i < n; ++i) {
    const JobSpec& job = man.jobs[i];
    const JobLimits eff =
        job.limits.or_else(man.defaults).or_else(opt.fallback);
    settings[i].mode = eff.mode.value_or("");
    settings[i].backend = eff.backend.value_or("");
    settings[i].shards = std::max(1u, eff.shards.value_or(1));
    settings[i].timeout_ms = eff.timeout_ms.value_or(0);
    settings[i].retries = eff.retries.value_or(0);
    settings[i].seed =
        job.seed ? *job.seed : derive_job_seed(man.seed, job.id);
    if (!opt.inject_hang.empty() && glob_match(opt.inject_hang, job.id) &&
        settings[i].timeout_ms == 0) {
      res.error = "job '" + job.id +
                  "' matches --inject-hang but has no timeout_ms — an "
                  "undeadlined hang would stall the fleet forever";
      res.exit_code = kExitUsage;
      return res;
    }
  }

  if (!opt.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.out_dir, ec);
    if (ec) {
      res.error =
          opt.out_dir + ": cannot create output directory (" + ec.message() +
          ")";
      res.exit_code = kExitFailure;
      return res;
    }
  }

  res.records.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.records[i].id = man.jobs[i].id;
    res.records[i].input = man.jobs[i].trace.empty() ? man.jobs[i].scenario
                                                     : man.jobs[i].trace;
    res.records[i].seed = settings[i].seed;
  }

  const unsigned lanes = std::max(1u, opt.jobs);
  exec::Pool pool{lanes};
  exec::Pool::Group group;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::shared_ptr<Attempt>> done;  // guarded by mu

  std::vector<std::shared_ptr<Attempt>> running;
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) ready.push_back(i);
  struct Delayed {
    clock_type::time_point release;
    std::size_t job;
  };
  std::vector<Delayed> delayed;  // retry backoff queue (small, scanned)

  std::vector<unsigned> attempts(n, 0);
  std::vector<bool> finalized(n, false);
  // Per-job wall-clock span: first submit -> finalize, measured on the
  // coordinator thread. Feeds the job trace spans and the index's
  // informational job_wall_ms list (host-dependent, never gated).
  std::vector<bool> job_started(n, false);
  std::vector<clock_type::time_point> job_first_start(n);
  std::vector<double> job_wall_ms(n, 0.0);
  std::size_t n_final = 0;
  bool any_failed = false;
  std::uint64_t total_sim_accesses = 0;
  std::size_t attempted_jobs = 0;

  const auto submit_attempt = [&](std::size_t job) {
    auto att = std::make_shared<Attempt>();
    att->job = job;
    att->attempt_no = ++attempts[job];
    if (att->attempt_no == 1) {
      ++attempted_jobs;
      job_started[job] = true;
      job_first_start[job] = clock_type::now();
      RAA_OBS_HOST_EVENT(fleet, job, begin, job, 0);
    }
    running.push_back(att);
    pool.submit(group, [&, att] {
      att->start = clock_type::now();
      att->started.store(true, std::memory_order_release);
      JobOutcome out;
      const std::string& id = man.jobs[att->job].id;
      if (!opt.inject_fail.empty() && glob_match(opt.inject_fail, id)) {
        out.error = ErrorKind::injected;
        out.message = "injected permanent failure (--inject-fail)";
      } else if (!opt.inject_flaky.empty() &&
                 glob_match(opt.inject_flaky, id) && att->attempt_no == 1) {
        out.error = ErrorKind::io;
        out.message =
            "injected transient failure (--inject-flaky, first attempt)";
      } else if (!opt.inject_hang.empty() &&
                 glob_match(opt.inject_hang, id)) {
        // Stall cooperatively: the watchdog's cancel is the only exit, so
        // this drives the timeout/reclamation path end to end.
        while (!att->cancel.load(std::memory_order_relaxed))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        out.error = ErrorKind::cancelled;
        out.message =
            "per-job deadline exceeded (injected hang cancelled)";
      } else {
        out = run_job_attempt(man.jobs[att->job], settings[att->job],
                              att->cancel);
      }
      {
        const std::scoped_lock lock{mu};
        att->outcome = std::move(out);
        done.push_back(att);
      }
      cv.notify_all();
    });
  };

  /// Delay before attempt `made + 1`: base * 2^(made-1), capped.
  const auto backoff_delay = [&](unsigned made) {
    std::uint64_t ms = std::max<std::uint64_t>(1, opt.backoff_base_ms);
    for (unsigned k = 1; k < made && ms < opt.backoff_cap_ms; ++k) ms *= 2;
    return std::chrono::milliseconds(
        std::min(ms, std::max<std::uint64_t>(1, opt.backoff_cap_ms)));
  };

  const auto finalize = [&](std::size_t job, JobStatus status,
                            const JobOutcome* out) {
    if (job_started[job]) {
      job_wall_ms[job] = std::chrono::duration<double, std::milli>(
                             clock_type::now() - job_first_start[job])
                             .count();
      RAA_OBS_HOST_EVENT(fleet, job, end, job,
                         static_cast<std::uint64_t>(status) |
                             (std::uint64_t{attempts[job]} << 8));
    }
    JobRecord& r = res.records[job];
    r.status = status;
    r.attempts = attempts[job];
    if (out != nullptr) {
      r.error = out->error;
      r.message = out->message;
      if (out->error == ErrorKind::none) {
        r.result = out->result;
        r.sim_accesses = out->sim_accesses;
        total_sim_accesses += out->sim_accesses;
        if (!opt.out_dir.empty()) {
          r.result_file = r.id + ".json";
          std::string io_err;
          if (!report::write_json_file(
                  r.result, opt.out_dir + "/" + r.result_file, &io_err) &&
              res.error.empty())
            res.error = io_err;
        }
      }
    }
    if (status == JobStatus::failed || status == JobStatus::timeout)
      any_failed = true;
    finalized[job] = true;
    ++n_final;
    if (!opt.quiet)
      std::printf("[raa_fleet] job %s (%zu/%zu): %s (%u attempt%s)%s%s\n",
                  r.id.c_str(), n_final, n, to_string(status), r.attempts,
                  r.attempts == 1 ? "" : "s",
                  r.message.empty() ? "" : " — ",
                  r.message.c_str());
  };

  const auto t0 = clock_type::now();
  while (n_final < n) {
    const auto now = clock_type::now();

    // Graceful degradation, fail-fast flavor: once any job has failed,
    // everything not yet started is recorded skipped instead of run.
    if (opt.fail_fast && any_failed && (!ready.empty() || !delayed.empty())) {
      for (const std::size_t job : ready)
        finalize(job, JobStatus::skipped, nullptr);
      for (const Delayed& d : delayed)
        finalize(d.job, JobStatus::skipped, nullptr);
      ready.clear();
      delayed.clear();
      continue;
    }

    // Release retry attempts whose backoff has elapsed, oldest job first
    // so the retry order is deterministic.
    {
      std::vector<std::size_t> due;
      std::erase_if(delayed, [&](const Delayed& d) {
        if (d.release > now) return false;
        due.push_back(d.job);
        return true;
      });
      std::sort(due.begin(), due.end());
      for (const std::size_t job : due) ready.push_back(job);
    }

    while (running.size() < lanes && !ready.empty()) {
      const std::size_t job = ready.front();
      ready.pop_front();
      submit_attempt(job);
    }

    // Collect finished attempts.
    std::vector<std::shared_ptr<Attempt>> batch;
    {
      const std::scoped_lock lock{mu};
      batch.swap(done);
    }
    if (!batch.empty()) {
      for (const auto& att : batch) {
        std::erase(running, att);
        const std::size_t job = att->job;
        const JobOutcome& out = att->outcome;
        if (out.error == ErrorKind::none) {
          finalize(job,
                   attempts[job] > 1 ? JobStatus::retried_ok : JobStatus::ok,
                   &out);
        } else if (is_transient(out.error) &&
                   attempts[job] <= settings[job].retries) {
          if (!opt.quiet)
            std::printf(
                "[raa_fleet] job %s: attempt %u failed (%s: %s) — retrying "
                "after backoff\n",
                man.jobs[job].id.c_str(), attempts[job],
                to_string(out.error), out.message.c_str());
          RAA_OBS_HOST_EVENT(fleet, job_retry, instant, job, attempts[job]);
          delayed.push_back(
              Delayed{now + backoff_delay(attempts[job]), job});
          res.records[job].error = out.error;  // last-seen, final wins later
          res.records[job].message = out.message;
        } else {
          finalize(job,
                   out.error == ErrorKind::cancelled ? JobStatus::timeout
                                                     : JobStatus::failed,
                   &out);
        }
      }
      continue;  // a lane just freed: launch before sleeping
    }

    // Watchdog: cancel running attempts past their deadline, and work out
    // how long the coordinator may sleep.
    auto next_event = clock_type::time_point::max();
    for (const auto& att : running) {
      const std::uint64_t timeout_ms = settings[att->job].timeout_ms;
      if (timeout_ms == 0) continue;
      if (att->started.load(std::memory_order_acquire)) {
        const auto deadline =
            att->start + std::chrono::milliseconds(timeout_ms);
        if (now >= deadline) {
          // exchange: emit the timeout event once, not per watchdog pass.
          if (!att->cancel.exchange(true, std::memory_order_relaxed))
            RAA_OBS_HOST_EVENT(fleet, job_timeout, instant, att->job,
                               att->attempt_no);
        } else {
          next_event = std::min(next_event, deadline);
        }
      } else {
        // Queued behind a busy lane: poll until it stamps its start.
        next_event =
            std::min(next_event, now + std::chrono::milliseconds(10));
      }
    }
    for (const Delayed& d : delayed)
      next_event = std::min(next_event, d.release);

    std::unique_lock lock{mu};
    if (!done.empty()) continue;
    if (next_event == clock_type::time_point::max())
      cv.wait(lock, [&] { return !done.empty(); });
    else
      cv.wait_until(lock, next_event, [&] { return !done.empty(); });
  }
  pool.wait(group);
  const double wall =
      std::chrono::duration<double>(clock_type::now() - t0).count();

  // --- counts, exit code, merged index (manifest order) -------------------
  for (const JobRecord& r : res.records) {
    switch (r.status) {
      case JobStatus::ok: ++res.ok; break;
      case JobStatus::retried_ok: ++res.retried_ok; break;
      case JobStatus::failed: ++res.failed; break;
      case JobStatus::timeout: ++res.timeout; break;
      case JobStatus::skipped: ++res.skipped; break;
    }
  }
  const unsigned good = res.ok + res.retried_ok;
  if (!res.error.empty())
    res.exit_code = kExitFailure;  // fleet-level I/O failure trumps
  else if (good == n)
    res.exit_code = kExitOk;
  else if (good > 0)
    res.exit_code = kExitPartialFleet;
  else
    res.exit_code = kExitFailure;

  json::Value& index = res.index;
  index.set("schema", report::kFleetIndexSchemaName);
  index.set("schema_version", report::kFleetIndexSchemaVersion);
  index.set("name", man.name);
  index.set("seed", static_cast<double>(man.seed));
  index.set("jobs_total", static_cast<double>(n));
  {
    json::Value counts;
    counts.set("ok", res.ok);
    counts.set("retried_ok", res.retried_ok);
    counts.set("failed", res.failed);
    counts.set("timeout", res.timeout);
    counts.set("skipped", res.skipped);
    index.set("counts", std::move(counts));
  }
  index.set("status", good == n          ? "ok"
                      : good > 0         ? "partial"
                                         : "failed");
  index.set("exit_code", res.exit_code);
  {
    json::Value jobs{json::Array{}};
    for (const JobRecord& r : res.records) {
      json::Value jv;
      jv.set("id", r.id);
      jv.set("input", r.input);
      // Decimal string, not a JSON number: derived seeds use all 64 bits
      // and a double would silently round them past 2^53.
      jv.set("seed", std::to_string(r.seed));
      jv.set("status", to_string(r.status));
      jv.set("attempts", r.attempts);
      if (r.error != ErrorKind::none) {
        jv.set("error_kind", to_string(r.error));
        jv.set("error", r.message);
      }
      if (!r.result_file.empty()) jv.set("result", r.result_file);
      jobs.push_back(std::move(jv));
    }
    index.set("jobs", std::move(jobs));
  }
  {
    // Host-dependent throughput: quarantined under one key so the
    // determinism suites (and any future baseline gate) can strip it
    // wholesale — mirrors the bench report's `informational` convention.
    json::Value info;
    info.set("lanes", lanes);
    info.set("wall_seconds", wall);
    info.set("scenarios_per_second",
             wall > 0.0 ? static_cast<double>(attempted_jobs) / wall : 0.0);
    info.set("sim_accesses_per_second",
             wall > 0.0 ? static_cast<double>(total_sim_accesses) / wall
                        : 0.0);
    // Per-job wall spans in manifest order (ordering deterministic,
    // values host-dependent; skipped jobs report 0).
    json::Value spans{json::Array{}};
    for (std::size_t i = 0; i < n; ++i) {
      json::Value s;
      s.set("id", res.records[i].id);
      s.set("wall_ms", job_wall_ms[i]);
      spans.push_back(std::move(s));
    }
    info.set("job_wall_ms", std::move(spans));
    index.set("informational", std::move(info));
  }

  if (!opt.out_dir.empty()) {
    std::string io_err;
    if (!report::write_json_file(index, opt.out_dir + "/index.json",
                                 &io_err) &&
        res.error.empty()) {
      res.error = io_err;
      res.exit_code = kExitFailure;
    }
  }
  return res;
}

}  // namespace raa::fleet
