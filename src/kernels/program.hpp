#pragma once
/// \file program.hpp
/// Building blocks for the NAS-like workload generators: a phase/stream
/// "scripted program" that lazily produces deterministic access streams,
/// and a bump allocator for laying regions out in the simulated address
/// space.
///
/// A program is a sequence of *phases*; each phase advances a set of
/// *streams* round-robin for a given number of iterations (one access per
/// stream per iteration, in declaration order). Linear streams model the
/// compiler's strided references; random streams model gathers/scatters
/// (classified no-alias or unknown); rmw streams emit load+store pairs to
/// the same random address (histogram updates). This is expressive enough
/// to reproduce the access structure of all six NAS kernels used in
/// Figure 1 without materialising traces.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "memsim/access.hpp"

namespace raa::kern {

/// How a stream generates addresses.
enum class StreamKind : std::uint8_t {
  linear,      ///< base + i * stride (strided reference)
  random,      ///< uniform random element within the region slice
  random_rmw,  ///< random element, emits load then store (same address)
};

/// One reference stream inside a phase.
struct Stream {
  const mem::Region* region = nullptr;
  StreamKind kind = StreamKind::linear;
  bool store = false;              ///< ignored by random_rmw (load+store)
  mem::RefClass ref = mem::RefClass::strided;
  std::uint64_t start = 0;         ///< byte offset into the region
  std::uint64_t stride = 8;        ///< linear: bytes between accesses
  std::uint64_t slice_bytes = 0;   ///< random: span to draw from (0 = all)
  std::uint64_t slice_base = 0;    ///< random: slice offset in the region
  std::uint32_t elem_bytes = 8;    ///< random: element granularity
};

/// A loop nest flattened into "iterations x streams".
struct Phase {
  std::vector<Stream> streams;
  std::uint64_t iterations = 0;
  std::uint32_t gap_cycles = 0;  ///< compute between consecutive accesses
};

/// CoreProgram interpreter over a phase list. Deterministic in `seed`.
/// Generates accesses in batches (one virtual `fill` call produces up to a
/// buffer's worth); `next()` is the one-access shim over the same
/// generator, so both entry points yield the identical sequence.
class ScriptedProgram final : public mem::CoreProgram {
 public:
  ScriptedProgram(std::vector<Phase> phases, std::uint64_t seed)
      : phases_(std::move(phases)), rng_(seed) {}

  bool next(mem::Access& out) override;
  std::size_t fill(std::span<mem::Access> out) override;

 private:
  std::vector<Phase> phases_;
  Rng rng_;
  std::size_t phase_ = 0;
  std::uint64_t iter_ = 0;
  std::size_t stream_ = 0;
  bool pending_store_ = false;     ///< second half of an rmw pair
  std::uint64_t pending_addr_ = 0;
  mem::RefClass pending_ref_ = mem::RefClass::random_unknown;
};

/// Bump allocator for the simulated physical address space; regions are
/// aligned to DMA chunks so per-core slices can be chunk-aligned.
class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t align_bytes)
      : align_(align_bytes), cursor_(1ull << 20) {}

  /// Allocate and register a region in the workload.
  const mem::Region& add(mem::Workload& w, std::string name,
                         std::uint64_t bytes, mem::RefClass ref) {
    const std::uint64_t base = (cursor_ + align_ - 1) / align_ * align_;
    cursor_ = base + bytes;
    w.regions.push_back(
        mem::Region{std::move(name), base, bytes, ref});
    return w.regions.back();
  }

 private:
  std::uint64_t align_;
  std::uint64_t cursor_;
};

}  // namespace raa::kern
