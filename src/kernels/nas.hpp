#pragma once
/// \file nas.hpp
/// NAS-like workload generators for the Figure 1 hybrid-hierarchy study.
///
/// Each factory reproduces the access *structure* of the corresponding NAS
/// kernel (the property Figure 1's per-benchmark variation hinges on),
/// scaled to a configurable working-set multiplier:
///
///   CG — sparse matrix-vector products: strided row/col/val/y streams plus
///        a random gather on the x vector (no-alias, cache-served);
///   EP — embarrassingly parallel random-number crunching: long compute
///        gaps, a tiny accumulation table (cache-resident);
///   FT — FFT-style passes: strided streams with an all-to-all transpose
///        whose scatter indices have unknown aliasing (guarded accesses
///        into chunks other cores may have SPM-mapped);
///   IS — integer sort: strided key stream + random read-modify-write
///        histogram updates with unknown aliasing;
///   MG — multigrid V-cycles: strided stencil sweeps over a hierarchy of
///        levels (coarse levels fall back to the caches — too small for
///        profitable SPM tiling);
///   SP — pentadiagonal solver: wide multi-array strided sweeps (the
///        SPM-friendliest of the set).
///
/// The per-core slices of every strided region are DMA-chunk aligned, as
/// the paper's compiler tiling guarantees.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernels/program.hpp"
#include "memsim/access.hpp"
#include "memsim/config.hpp"

namespace raa::kern {

/// scale multiplies per-core working sets / iteration counts (1 = bench
/// default; tests use smaller systems via cfg.tiles and scale).
mem::Workload make_cg(const mem::SystemConfig& cfg, unsigned scale = 1);
mem::Workload make_ep(const mem::SystemConfig& cfg, unsigned scale = 1);
mem::Workload make_ft(const mem::SystemConfig& cfg, unsigned scale = 1);
mem::Workload make_is(const mem::SystemConfig& cfg, unsigned scale = 1);
mem::Workload make_mg(const mem::SystemConfig& cfg, unsigned scale = 1);
mem::Workload make_sp(const mem::SystemConfig& cfg, unsigned scale = 1);

/// All six, in the paper's order (CG, EP, FT, IS, MG, SP).
struct KernelFactory {
  std::string name;
  std::function<mem::Workload(const mem::SystemConfig&, unsigned)> make;
};
const std::vector<KernelFactory>& nas_kernels();

}  // namespace raa::kern
