#include "kernels/nas.hpp"

namespace raa::kern {

namespace {

using mem::RefClass;
using mem::Region;
using mem::SystemConfig;
using mem::Workload;

/// Bytes per element for every stream (NAS data is double-heavy; using one
/// width keeps per-core slices chunk-aligned).
constexpr std::uint64_t kElem = 8;

std::uint64_t chunk_align(const SystemConfig& cfg, std::uint64_t bytes) {
  const std::uint64_t c = cfg.dma_chunk_bytes;
  return (bytes + c - 1) / c * c;
}

/// Per-core seed: deterministic but distinct streams.
std::uint64_t seed_for(std::uint64_t kernel_id, unsigned core) {
  return kernel_id * 0x9e3779b97f4a7c15ULL + core + 1;
}

}  // namespace

Workload make_cg(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  const std::uint64_t rows_core = 512ull * scale;
  const std::uint64_t nnz_row = 12;
  const std::uint64_t nnz_core = rows_core * nnz_row;
  const std::uint64_t row_bytes = chunk_align(cfg, rows_core * kElem);
  const std::uint64_t nnz_bytes = chunk_align(cfg, nnz_core * kElem);

  Workload w;
  w.name = "CG";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& row_ptr = as.add(w, "row_ptr", P * row_bytes,
                                 RefClass::strided);
  const Region& col_idx = as.add(w, "col_idx", P * nnz_bytes,
                                 RefClass::strided);
  const Region& val = as.add(w, "val", P * nnz_bytes, RefClass::strided);
  const Region& y = as.add(w, "y", P * row_bytes, RefClass::strided);
  const Region& x = as.add(w, "x", P * row_bytes, RefClass::random_noalias);

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    // SpMV inner loop: walk the column indices and values of this core's
    // row block while gathering x[col[j]] (random, read-only, no-alias).
    phases.push_back(Phase{
        .streams = {Stream{.region = &col_idx, .start = c * nnz_bytes,
                           .stride = kElem},
                    Stream{.region = &val, .start = c * nnz_bytes,
                           .stride = kElem},
                    Stream{.region = &x, .kind = StreamKind::random,
                           .ref = RefClass::random_noalias,
                           .elem_bytes = kElem}},
        .iterations = nnz_core,
        .gap_cycles = 2});
    // Row epilogue: read row_ptr, write the accumulated y entry.
    phases.push_back(Phase{
        .streams = {Stream{.region = &row_ptr, .start = c * row_bytes,
                           .stride = kElem},
                    Stream{.region = &y, .store = true,
                           .start = c * row_bytes, .stride = kElem}},
        .iterations = rows_core,
        .gap_cycles = 6});
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(1, c)));
  }
  return w;
}

Workload make_ep(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  const std::uint64_t table_core = 2048;  // 2 KiB: cache-resident

  Workload w;
  w.name = "EP";
  AddressSpace as{cfg.dma_chunk_bytes};
  // Too small per core for profitable SPM tiling: the compiler leaves it to
  // the caches (thread-private, hence no-alias).
  const Region& table = as.add(w, "accum_table", P * table_core,
                               RefClass::random_noalias);

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    // Gaussian-pair generation: long compute bursts, occasional histogram
    // update into the private table.
    phases.push_back(Phase{
        .streams = {Stream{.region = &table, .kind = StreamKind::random_rmw,
                           .ref = RefClass::random_noalias,
                           .slice_bytes = table_core,
                           .slice_base = c * table_core,
                           .elem_bytes = kElem}},
        .iterations = 3000ull * scale,
        .gap_cycles = 40});
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(2, c)));
  }
  return w;
}

Workload make_ft(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  const std::uint64_t n_core = 8192ull * scale;
  const std::uint64_t part = chunk_align(cfg, n_core * kElem);

  Workload w;
  w.name = "FT";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& a = as.add(w, "A", P * part, RefClass::strided);
  const Region& b = as.add(w, "B", P * part, RefClass::strided);
  const Region& cx = as.add(w, "C", P * part, RefClass::strided);

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    for (int iter = 0; iter < 2; ++iter) {
      // 1-D FFT pass over the local partition.
      phases.push_back(Phase{
          .streams = {Stream{.region = &a, .start = c * part,
                             .stride = kElem},
                      Stream{.region = &b, .store = true, .start = c * part,
                             .stride = kElem}},
          .iterations = n_core,
          .gap_cycles = 7});
      // Global transpose: the scatter indices come from index arithmetic
      // the compiler cannot disambiguate -> guarded accesses that may land
      // in chunks other cores have SPM-mapped.
      phases.push_back(Phase{
          .streams = {Stream{.region = &b, .start = c * part,
                             .stride = kElem},
                      Stream{.region = &cx, .kind = StreamKind::random,
                             .store = true,
                             .ref = RefClass::random_unknown,
                             .elem_bytes = kElem}},
          .iterations = n_core,
          .gap_cycles = 3});
      // Second pass reads the (transposed) local partition back.
      phases.push_back(Phase{
          .streams = {Stream{.region = &cx, .start = c * part,
                             .stride = kElem},
                      Stream{.region = &a, .store = true, .start = c * part,
                             .stride = kElem}},
          .iterations = n_core,
          .gap_cycles = 7});
    }
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(3, c)));
  }
  return w;
}

Workload make_is(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  const std::uint64_t keys_core = 16384ull * scale;
  const std::uint64_t keys_bytes = chunk_align(cfg, keys_core * kElem);
  const std::uint64_t buckets = 16384;
  const std::uint64_t bucket_bytes = buckets * kElem;

  Workload w;
  w.name = "IS";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region& keys = as.add(w, "keys", P * keys_bytes, RefClass::strided);
  const Region& hist = as.add(w, "histogram", bucket_bytes,
                              RefClass::random_unknown);
  const Region& rank = as.add(w, "rank_out", P * keys_bytes,
                              RefClass::strided);

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    // Counting phase: stream the keys, bump the shared histogram.
    phases.push_back(Phase{
        .streams = {Stream{.region = &keys, .start = c * keys_bytes,
                           .stride = kElem},
                    Stream{.region = &hist, .kind = StreamKind::random_rmw,
                           .ref = RefClass::random_unknown,
                           .elem_bytes = kElem}},
        .iterations = keys_core,
        .gap_cycles = 3});
    // Prefix-sum over this core's histogram slice; the compiler cannot
    // prove it does not alias the scatter phase, so accesses stay guarded.
    phases.push_back(Phase{
        .streams = {Stream{.region = &hist,
                           .ref = RefClass::random_unknown,
                           .start = c * (bucket_bytes / P),
                           .stride = kElem}},
        .iterations = bucket_bytes / P / kElem,
        .gap_cycles = 2});
    // Ranking phase: re-stream keys, write ranks.
    phases.push_back(Phase{
        .streams = {Stream{.region = &keys, .start = c * keys_bytes,
                           .stride = kElem},
                    Stream{.region = &rank, .store = true,
                           .start = c * keys_bytes, .stride = kElem}},
        .iterations = keys_core,
        .gap_cycles = 3});
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(4, c)));
  }
  return w;
}

Workload make_mg(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  constexpr int kLevels = 4;

  Workload w;
  w.name = "MG";
  AddressSpace as{cfg.dma_chunk_bytes};
  std::uint64_t n_core[kLevels];
  std::uint64_t part[kLevels];
  const Region* u[kLevels];
  const Region* r[kLevels];
  for (int l = 0; l < kLevels; ++l) {
    n_core[l] = (4096ull * scale) >> l;
    part[l] = chunk_align(cfg, n_core[l] * kElem);
    u[l] = &as.add(w, "u" + std::to_string(l), P * part[l],
                   RefClass::strided);
    r[l] = &as.add(w, "r" + std::to_string(l), P * part[l],
                   RefClass::strided);
  }

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    for (int cycle = 0; cycle < 2; ++cycle) {
      // Down-sweep: smooth + restrict.
      for (int l = 0; l + 1 < kLevels; ++l) {
        phases.push_back(Phase{
            .streams = {Stream{.region = u[l], .start = c * part[l],
                               .stride = kElem},
                        Stream{.region = r[l], .store = true,
                               .start = c * part[l], .stride = kElem}},
            .iterations = n_core[l],
            .gap_cycles = 8});
        phases.push_back(Phase{
            .streams = {Stream{.region = r[l], .start = c * part[l],
                               .stride = 2 * kElem},
                        Stream{.region = u[l + 1], .store = true,
                               .start = c * part[l + 1], .stride = kElem}},
            .iterations = n_core[l + 1],
            .gap_cycles = 7});
      }
      // Coarsest smooth.
      phases.push_back(Phase{
          .streams = {Stream{.region = u[kLevels - 1],
                             .start = c * part[kLevels - 1],
                             .stride = kElem},
                      Stream{.region = r[kLevels - 1], .store = true,
                             .start = c * part[kLevels - 1],
                             .stride = kElem}},
          .iterations = n_core[kLevels - 1],
          .gap_cycles = 8});
      // Up-sweep: prolongate.
      for (int l = kLevels - 2; l >= 0; --l) {
        phases.push_back(Phase{
            .streams = {Stream{.region = u[l + 1],
                               .start = c * part[l + 1], .stride = kElem},
                        Stream{.region = u[l], .store = true,
                               .start = c * part[l], .stride = 2 * kElem}},
            .iterations = n_core[l + 1],
            .gap_cycles = 7});
      }
    }
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(5, c)));
  }
  return w;
}

Workload make_sp(const SystemConfig& cfg, unsigned scale) {
  RAA_CHECK(scale >= 1);
  const unsigned P = cfg.tiles;
  const std::uint64_t n_core = 2048ull * scale;
  const std::uint64_t part = chunk_align(cfg, n_core * kElem);

  Workload w;
  w.name = "SP";
  AddressSpace as{cfg.dma_chunk_bytes};
  const Region* lhs[4];
  for (int k = 0; k < 4; ++k)
    lhs[k] = &as.add(w, "lhs" + std::to_string(k), P * part,
                     RefClass::strided);
  const Region& rhs = as.add(w, "rhs", P * part, RefClass::strided);
  const Region& out = as.add(w, "u_out", P * part, RefClass::strided);

  for (unsigned c = 0; c < P; ++c) {
    std::vector<Phase> phases;
    for (int sweep = 0; sweep < 3; ++sweep) {
      Phase ph;
      for (int k = 0; k < 4; ++k)
        ph.streams.push_back(Stream{.region = lhs[k], .start = c * part,
                                    .stride = kElem});
      ph.streams.push_back(Stream{.region = &rhs, .start = c * part,
                                  .stride = kElem});
      ph.streams.push_back(Stream{.region = &out, .store = true,
                                  .start = c * part, .stride = kElem});
      ph.iterations = n_core;
      ph.gap_cycles = 6;
      phases.push_back(std::move(ph));
    }
    w.programs.push_back(
        std::make_unique<ScriptedProgram>(std::move(phases), seed_for(6, c)));
  }
  return w;
}

const std::vector<KernelFactory>& nas_kernels() {
  static const std::vector<KernelFactory> kernels = {
      {"CG", make_cg}, {"EP", make_ep}, {"FT", make_ft},
      {"IS", make_is}, {"MG", make_mg}, {"SP", make_sp},
  };
  return kernels;
}

}  // namespace raa::kern
