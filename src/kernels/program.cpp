#include "kernels/program.hpp"

namespace raa::kern {

bool ScriptedProgram::next(mem::Access& out) {
  if (pending_store_) {
    // Second half of a read-modify-write pair: the store, back-to-back.
    pending_store_ = false;
    out = mem::Access{pending_addr_, true, pending_ref_, 0};
    return true;
  }

  // Skip empty phases.
  while (phase_ < phases_.size() &&
         (phases_[phase_].iterations == 0 || phases_[phase_].streams.empty())) {
    ++phase_;
  }
  if (phase_ >= phases_.size()) return false;

  const Phase& ph = phases_[phase_];
  const Stream& s = ph.streams[stream_];
  RAA_CHECK(s.region != nullptr);

  std::uint64_t addr = 0;
  switch (s.kind) {
    case StreamKind::linear:
      addr = s.region->base + s.start + iter_ * s.stride;
      RAA_CHECK_MSG(addr + 1 <= s.region->base + s.region->bytes,
                    "linear stream runs past its region: " + s.region->name);
      break;
    case StreamKind::random:
    case StreamKind::random_rmw: {
      const std::uint64_t span =
          s.slice_bytes != 0 ? s.slice_bytes : s.region->bytes;
      const std::uint64_t elems = span / s.elem_bytes;
      RAA_CHECK(elems > 0);
      addr = s.region->base + s.slice_base +
             rng_.below(elems) * s.elem_bytes;
      break;
    }
  }

  const bool is_store = s.kind == StreamKind::random_rmw ? false : s.store;
  out = mem::Access{addr, is_store, s.ref, ph.gap_cycles};
  if (s.kind == StreamKind::random_rmw) {
    pending_store_ = true;
    pending_addr_ = addr;
    pending_ref_ = s.ref;
  }

  // Advance stream-major within the iteration, then the iteration counter.
  if (++stream_ >= ph.streams.size()) {
    stream_ = 0;
    if (++iter_ >= ph.iterations) {
      iter_ = 0;
      ++phase_;
    }
  }
  return true;
}

}  // namespace raa::kern
