#include "kernels/program.hpp"

namespace raa::kern {

std::size_t ScriptedProgram::fill(std::span<mem::Access> out) {
  mem::Access* dst = out.data();
  const std::size_t cap = out.size();
  std::size_t n = 0;

  // Second half of a read-modify-write pair left over from the previous
  // call (the pair straddled a batch boundary): the store comes first.
  if (pending_store_ && n < cap) {
    pending_store_ = false;
    dst[n++] = mem::Access{pending_addr_, true, pending_ref_, 0};
  }

  // Local cursor copies: the batch loop is the simulator's stream-side hot
  // path, and keeping the state in registers beats re-loading members.
  std::size_t phase = phase_;
  std::uint64_t iter = iter_;
  std::size_t stream = stream_;

  while (n < cap) {
    // Skip empty phases.
    while (phase < phases_.size() && (phases_[phase].iterations == 0 ||
                                      phases_[phase].streams.empty())) {
      ++phase;
    }
    if (phase >= phases_.size()) break;

    // Hoist the per-phase invariants; the inner loop stays inside this
    // phase until it ends or the batch is full.
    const Phase& ph = phases_[phase];
    const Stream* const streams = ph.streams.data();
    const std::size_t stream_count = ph.streams.size();
    const std::uint64_t iterations = ph.iterations;
    const std::uint32_t gap = ph.gap_cycles;
    bool phase_done = false;

    while (n < cap && !phase_done) {
      const Stream& s = streams[stream];
      RAA_CHECK(s.region != nullptr);

      std::uint64_t addr = 0;
      switch (s.kind) {
        case StreamKind::linear:
          addr = s.region->base + s.start + iter * s.stride;
          RAA_CHECK_MSG(
              addr + 1 <= s.region->base + s.region->bytes,
              "linear stream runs past its region: " + s.region->name);
          break;
        case StreamKind::random:
        case StreamKind::random_rmw: {
          const std::uint64_t span =
              s.slice_bytes != 0 ? s.slice_bytes : s.region->bytes;
          const std::uint64_t elems = span / s.elem_bytes;
          RAA_CHECK(elems > 0);
          addr = s.region->base + s.slice_base +
                 rng_.below(elems) * s.elem_bytes;
          break;
        }
      }

      const bool rmw = s.kind == StreamKind::random_rmw;
      dst[n++] = mem::Access{addr, rmw ? false : s.store, s.ref, gap};

      // Advance stream-major within the iteration, then the iteration
      // counter (the rmw store below does not advance the cursor).
      if (++stream >= stream_count) {
        stream = 0;
        if (++iter >= iterations) {
          iter = 0;
          ++phase;
          phase_done = true;
        }
      }

      if (rmw) {
        // The store half, back-to-back; carried over when the batch ends.
        if (n < cap) {
          dst[n++] = mem::Access{addr, true, s.ref, 0};
        } else {
          pending_store_ = true;
          pending_addr_ = addr;
          pending_ref_ = s.ref;
        }
      }
    }
  }

  phase_ = phase;
  iter_ = iter;
  stream_ = stream;
  return n;
}

bool ScriptedProgram::next(mem::Access& out) { return fill({&out, 1}) == 1; }

}  // namespace raa::kern
