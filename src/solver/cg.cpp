#include "solver/cg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace raa::solver {

const char* to_string(Recovery r) noexcept {
  switch (r) {
    case Recovery::none: return "ideal";
    case Recovery::checkpoint: return "checkpoint";
    case Recovery::lossy_restart: return "lossy_restart";
    case Recovery::feir: return "feir";
    case Recovery::afeir: return "afeir";
  }
  return "?";
}

std::size_t inner_cg(const Csr& a, std::span<const double> b,
                     std::span<double> x, double rel_tol,
                     std::size_t max_iters) {
  const std::size_t n = a.n;
  RAA_CHECK(b.size() == n && x.size() == n);
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> tmp(n);
  spmv(a, x, tmp);
  axpy(-1.0, tmp, r);
  std::vector<double> p = r;
  double rr = dot(r, r);
  const double b_norm = std::max(norm2(b), 1e-300);
  std::size_t it = 0;
  while (it < max_iters && std::sqrt(rr) / b_norm > rel_tol) {
    spmv(a, p, tmp);
    const double alpha = rr / dot(p, tmp);
    axpy(alpha, p, x);
    axpy(-alpha, tmp, r);
    const double rr_new = dot(r, r);
    xpby(r, rr_new / rr, p);
    rr = rr_new;
    ++it;
  }
  return it;
}

namespace {

struct Machine {
  const TimeModel& model;
  double now_s = 0.0;

  void charge_flops(double flops) { now_s += model.seconds_for_flops(flops); }
  void charge_copy(double doubles) {
    now_s += model.seconds_for_flops(doubles / model.copy_efficiency);
  }
};

}  // namespace

CgResult solve_cg(const Csr& a, std::span<const double> b,
                  std::vector<double>& x, const CgOptions& opt) {
  const std::size_t n = a.n;
  RAA_CHECK(b.size() == n);
  x.assign(n, 0.0);

  CgResult result;
  Machine clock{opt.time};
  const double b_norm = std::max(norm2(b), 1e-300);
  const double iter_flops =
      2.0 * static_cast<double>(a.nnz()) + 10.0 * static_cast<double>(n);

  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> tmp(n);
  double rr = dot(r, r);

  // Checkpoint state.
  std::vector<double> ck_x, ck_r, ck_p;
  double ck_rr = rr;
  std::size_t ck_iter = 0;
  const auto take_checkpoint = [&](std::size_t iter) {
    ck_x = x;
    ck_r = r;
    ck_p = p;
    ck_rr = rr;
    ck_iter = iter;
    clock.charge_copy(3.0 * static_cast<double>(n));
  };
  if (opt.recovery == Recovery::checkpoint) take_checkpoint(0);

  bool fault_pending = opt.fault.enabled && opt.recovery != Recovery::none;
  const std::size_t blocks = std::max<std::size_t>(1, opt.fault.num_blocks);
  const std::size_t blk = opt.fault.block % blocks;
  const std::size_t lo = blk * n / blocks;
  const std::size_t hi = (blk + 1) * n / blocks;

  std::size_t iter = 0;
  std::size_t logical_iter = 0;  // rewound by checkpoint rollback
  const auto record = [&] {
    result.trace.push_back(
        TracePoint{logical_iter, clock.now_s, std::sqrt(rr) / b_norm});
  };
  record();

  while (logical_iter < opt.max_iterations &&
         std::sqrt(rr) / b_norm > opt.rel_tolerance) {
    // --- DUE strikes at the start of the configured iteration ---
    if (fault_pending && logical_iter == opt.fault.iteration) {
      fault_pending = false;
      std::vector<double>* victim = nullptr;
      switch (opt.fault.target) {
        case FaultTarget::x: victim = &x; break;
        case FaultTarget::r: victim = &r; break;
        case FaultTarget::p: victim = &p; break;
      }
      // The block's contents are gone (hardware reported a DUE).
      std::fill(victim->begin() + static_cast<long>(lo),
                victim->begin() + static_cast<long>(hi), 0.0);
      const double t_fault = clock.now_s;

      switch (opt.recovery) {
        case Recovery::none:
          break;
        case Recovery::checkpoint: {
          // Roll back to the last checkpoint: restore everything, lose the
          // iterations since.
          x = ck_x;
          r = ck_r;
          p = ck_p;
          rr = ck_rr;
          logical_iter = ck_iter;
          clock.charge_copy(3.0 * static_cast<double>(n));
          record();
          break;
        }
        case Recovery::lossy_restart: {
          // Approximate the lost block (zeros), then restart CG from the
          // surviving iterate: r = b - A x, p = r. The Krylov history is
          // gone, so convergence continues at a shallower slope.
          std::copy(b.begin(), b.end(), r.begin());
          spmv(a, x, tmp);
          axpy(-1.0, tmp, r);
          p = r;
          rr = dot(r, r);
          clock.charge_flops(2.0 * static_cast<double>(a.nnz()) +
                             4.0 * static_cast<double>(n));
          record();
          break;
        }
        case Recovery::feir:
        case Recovery::afeir: {
          // Exact interpolation from the solver invariant r = b - A x.
          // For a lost x block:  A_II x_I = b_I - r_I - A_IG x_G, where the
          // right-hand side is computable because r survived. Lost r is
          // recomputed exactly; lost p restarts that block's direction.
          std::size_t inner_it = 0;
          double rec_flops = 0.0;
          if (opt.fault.target == FaultTarget::x) {
            const Csr a_ii = principal_submatrix(a, lo, hi);
            // rhs = b_I - r_I - (A * x_with_zero_block)_I.
            spmv_rows(a, x, tmp, lo, hi);
            std::vector<double> rhs(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
              rhs[i - lo] = b[i] - r[i] - tmp[i];
            std::vector<double> xi(hi - lo, 0.0);
            inner_it = inner_cg(a_ii, rhs, xi, opt.inner_tolerance,
                                10 * a_ii.n);
            std::copy(xi.begin(), xi.end(),
                      x.begin() + static_cast<long>(lo));
            rec_flops = 2.0 * static_cast<double>(a_ii.nnz() + 5 * a_ii.n) *
                        static_cast<double>(inner_it);
          } else if (opt.fault.target == FaultTarget::r) {
            // r_I = b_I - (A x)_I, exact by definition.
            spmv_rows(a, x, tmp, lo, hi);
            for (std::size_t i = lo; i < hi; ++i) r[i] = b[i] - tmp[i];
            rr = dot(r, r);
            rec_flops = 2.0 * static_cast<double>(a.nnz()) /
                        static_cast<double>(blocks);
          } else {
            // p_I: restart the direction for that block only.
            for (std::size_t i = lo; i < hi; ++i) p[i] = r[i];
            rec_flops = static_cast<double>(hi - lo);
          }
          result.inner_iterations = inner_it;

          const double rec_s = opt.time.seconds_for_flops(rec_flops);
          if (opt.recovery == Recovery::feir) {
            // Synchronous: the solver stalls for the whole recovery.
            clock.now_s += rec_s;
          } else {
            // Asynchronous: the interpolation runs as a task off the
            // critical path on one core while the other cores keep
            // executing the workload, so only ~1/cores of the recovery
            // reaches the critical path.
            clock.now_s += rec_s / opt.time.cores;
          }
          record();
          break;
        }
      }
      result.recovery_time_s += clock.now_s - t_fault;
      continue;  // re-test convergence before the next iteration
    }

    // --- one CG iteration ---
    spmv(a, p, tmp);
    const double alpha = rr / dot(p, tmp);
    axpy(alpha, p, x);
    axpy(-alpha, tmp, r);
    const double rr_new = dot(r, r);
    xpby(r, rr_new / rr, p);
    rr = rr_new;
    ++iter;
    ++logical_iter;
    clock.charge_flops(iter_flops);

    if (opt.recovery == Recovery::checkpoint &&
        logical_iter % opt.checkpoint_interval == 0)
      take_checkpoint(logical_iter);

    record();
  }

  result.converged = std::sqrt(rr) / b_norm <= opt.rel_tolerance;
  result.iterations = iter;
  result.time_s = clock.now_s;
  return result;
}

}  // namespace raa::solver
