#pragma once
/// \file csr.hpp
/// Compressed-sparse-row matrices and the SPD model problems used by the §4
/// resilience study. The paper evaluates on `thermal2` (SuiteSparse FEM
/// matrix, ~1.2M dofs); we substitute discrete Laplacians — SPD, local
/// connectivity, same CG behaviour class — with the size as a knob (see
/// the substitution table in docs/ARCHITECTURE.md).

#include <cstddef>
#include <span>
#include <vector>

namespace raa::solver {

/// Square CSR matrix (double precision).
struct Csr {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr;  ///< n+1 entries
  std::vector<std::size_t> col;
  std::vector<double> val;

  std::size_t nnz() const noexcept { return col.size(); }
};

/// 5-point 2-D Poisson/Laplacian on an nx x ny grid (SPD, diagonal 4).
Csr laplacian_2d(std::size_t nx, std::size_t ny);

/// 7-point 3-D Laplacian on an nx x ny x nz grid (SPD, diagonal 6).
Csr laplacian_3d(std::size_t nx, std::size_t ny, std::size_t nz);

/// y = A * x.
void spmv(const Csr& a, std::span<const double> x, std::span<double> y);

/// Partial SpMV restricted to rows [row_lo, row_hi).
void spmv_rows(const Csr& a, std::span<const double> x, std::span<double> y,
               std::size_t row_lo, std::size_t row_hi);

/// Principal submatrix A[lo:hi, lo:hi) (for the FEIR block solve A_II).
Csr principal_submatrix(const Csr& a, std::size_t lo, std::size_t hi);

// --- small BLAS-1 helpers -------------------------------------------------
double dot(std::span<const double> a, std::span<const double> b);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// y = x + beta * y.
void xpby(std::span<const double> x, double beta, std::span<double> y);
double norm2(std::span<const double> a);

}  // namespace raa::solver
