#include "solver/csr.hpp"

#include <cmath>

#include "common/check.hpp"

namespace raa::solver {

Csr laplacian_2d(std::size_t nx, std::size_t ny) {
  RAA_CHECK(nx > 0 && ny > 0);
  Csr a;
  a.n = nx * ny;
  a.row_ptr.reserve(a.n + 1);
  a.row_ptr.push_back(0);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t r = j * nx + i;
      // Lexicographic neighbour order keeps columns sorted.
      if (j > 0) {
        a.col.push_back(r - nx);
        a.val.push_back(-1.0);
      }
      if (i > 0) {
        a.col.push_back(r - 1);
        a.val.push_back(-1.0);
      }
      a.col.push_back(r);
      a.val.push_back(4.0);
      if (i + 1 < nx) {
        a.col.push_back(r + 1);
        a.val.push_back(-1.0);
      }
      if (j + 1 < ny) {
        a.col.push_back(r + nx);
        a.val.push_back(-1.0);
      }
      a.row_ptr.push_back(a.col.size());
    }
  }
  return a;
}

Csr laplacian_3d(std::size_t nx, std::size_t ny, std::size_t nz) {
  RAA_CHECK(nx > 0 && ny > 0 && nz > 0);
  Csr a;
  a.n = nx * ny * nz;
  a.row_ptr.reserve(a.n + 1);
  a.row_ptr.push_back(0);
  const std::size_t sxy = nx * ny;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t r = k * sxy + j * nx + i;
        if (k > 0) {
          a.col.push_back(r - sxy);
          a.val.push_back(-1.0);
        }
        if (j > 0) {
          a.col.push_back(r - nx);
          a.val.push_back(-1.0);
        }
        if (i > 0) {
          a.col.push_back(r - 1);
          a.val.push_back(-1.0);
        }
        a.col.push_back(r);
        a.val.push_back(6.0);
        if (i + 1 < nx) {
          a.col.push_back(r + 1);
          a.val.push_back(-1.0);
        }
        if (j + 1 < ny) {
          a.col.push_back(r + nx);
          a.val.push_back(-1.0);
        }
        if (k + 1 < nz) {
          a.col.push_back(r + sxy);
          a.val.push_back(-1.0);
        }
        a.row_ptr.push_back(a.col.size());
      }
    }
  }
  return a;
}

void spmv(const Csr& a, std::span<const double> x, std::span<double> y) {
  spmv_rows(a, x, y, 0, a.n);
}

void spmv_rows(const Csr& a, std::span<const double> x, std::span<double> y,
               std::size_t row_lo, std::size_t row_hi) {
  RAA_CHECK(x.size() == a.n && y.size() == a.n && row_hi <= a.n);
  for (std::size_t r = row_lo; r < row_hi; ++r) {
    double sum = 0.0;
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k)
      sum += a.val[k] * x[a.col[k]];
    y[r] = sum;
  }
}

Csr principal_submatrix(const Csr& a, std::size_t lo, std::size_t hi) {
  RAA_CHECK(lo < hi && hi <= a.n);
  Csr s;
  s.n = hi - lo;
  s.row_ptr.reserve(s.n + 1);
  s.row_ptr.push_back(0);
  for (std::size_t r = lo; r < hi; ++r) {
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const std::size_t c = a.col[k];
      if (c >= lo && c < hi) {
        s.col.push_back(c - lo);
        s.val.push_back(a.val[k]);
      }
    }
    s.row_ptr.push_back(s.col.size());
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  RAA_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  RAA_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  RAA_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace raa::solver
