#pragma once
/// \file cg.hpp
/// Conjugate-gradient solver with DUE fault injection and the §4 recovery
/// schemes (Figure 4):
///
///   * none          — the "Ideal" baseline (no fault injected);
///   * checkpoint    — periodic checkpoint of (x, r, p), rollback on DUE:
///                     "incurs a significant overhead when rolling back";
///   * lossy_restart — zero the lost block, recompute r = b - A x, restart
///                     the Krylov subspace (p := r): "slower convergence
///                     afterwards";
///   * feir          — exact Forward Error Interpolation Recovery: from the
///                     solver invariant r = b - A x, the lost block solves
///                     A_II x_I = b_I - r_I - A_IG x_G  (inner CG on the SPD
///                     principal submatrix). Convergence continues as if no
///                     fault happened;
///   * afeir         — asynchronous FEIR: the same algebra, but the inner
///                     solve runs as a task off the critical path, so most
///                     of its cost overlaps the normal workload.
///
/// The residual trace is computed in real arithmetic; the *time axis* is a
/// machine model (flops / (cores x flops-per-cycle x frequency)) because
/// Figure 4 plots wall-clock seconds on the authors' testbed — see
/// the substitution table in docs/ARCHITECTURE.md.

#include <cstddef>
#include <vector>

#include "solver/csr.hpp"

namespace raa::solver {

/// Recovery scheme selector (see file comment).
enum class Recovery { none, checkpoint, lossy_restart, feir, afeir };

const char* to_string(Recovery r) noexcept;

/// Which vector the DUE hits.
enum class FaultTarget { x, r, p };

/// A Detected-Uncorrected-Error: at the start of iteration `iteration`, the
/// rows [block * n/blocks, (block+1) * n/blocks) of `target` are lost
/// (memory content unusable, loss detected by hardware ECC).
struct FaultSpec {
  bool enabled = false;
  std::size_t iteration = 0;
  FaultTarget target = FaultTarget::x;
  std::size_t block = 0;
  std::size_t num_blocks = 16;
};

/// Machine model for the simulated time axis.
struct TimeModel {
  unsigned cores = 8;
  double flops_per_cycle_per_core = 2.0;
  double freq_ghz = 2.0;
  /// Memory-bound ops (checkpoint copies) run at this fraction of peak.
  double copy_efficiency = 0.25;

  double seconds_for_flops(double flops) const {
    return flops / (cores * flops_per_cycle_per_core * freq_ghz * 1e9);
  }
};

struct CgOptions {
  std::size_t max_iterations = 10000;
  double rel_tolerance = 1e-8;
  Recovery recovery = Recovery::none;
  std::size_t checkpoint_interval = 1000;  ///< iterations
  FaultSpec fault{};
  TimeModel time{};
  double inner_tolerance = 1e-13;  ///< FEIR block-solve accuracy
};

/// One point of the convergence trace (Figure 4's series).
struct TracePoint {
  std::size_t iteration = 0;
  double time_s = 0.0;
  double rel_residual = 0.0;
};

struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;     ///< total iterations executed (incl. redone)
  double time_s = 0.0;            ///< simulated wall-clock
  double recovery_time_s = 0.0;   ///< time attributed to the recovery itself
  std::size_t inner_iterations = 0;  ///< FEIR block-solve iterations
  std::vector<TracePoint> trace;
};

/// Solve A x = b from x = 0 with the configured resilience scheme.
CgResult solve_cg(const Csr& a, std::span<const double> b,
                  std::vector<double>& x, const CgOptions& options);

/// Plain inner CG on a (small) SPD system, used by FEIR; returns iterations.
std::size_t inner_cg(const Csr& a, std::span<const double> b,
                     std::span<double> x, double rel_tol,
                     std::size_t max_iters);

}  // namespace raa::solver
