#pragma once
/// \file scalar_core.hpp
/// Cost model of the scalar baseline core used for the Figure 3 speedups:
/// a simple in-order core of the same technology as the vector unit. Sorts
/// are executed functionally while charging per-operation costs; dependent
/// memory chains and branchy inner loops are what make scalar radix sort
/// expensive (the paper's scalar baseline).

#include <cstdint>

namespace raa::vec {

/// Per-operation cycle costs (in-order, no overlap between dependent ops).
struct ScalarCosts {
  unsigned alu = 1;
  unsigned load = 4;        ///< L1 hit incl. address generation
  unsigned store = 4;
  unsigned branch = 3;      ///< average incl. mispredictions
  unsigned scattered = 24;  ///< load/store with low locality (bucket write)
};

/// Accumulates cycles for an instrumented scalar execution.
class ScalarCore {
 public:
  explicit ScalarCore(ScalarCosts costs = {}) : costs_(costs) {}

  void alu(std::uint64_t n = 1) { cycles_ += n * costs_.alu; }
  void load(std::uint64_t n = 1) { cycles_ += n * costs_.load; }
  void store(std::uint64_t n = 1) { cycles_ += n * costs_.store; }
  void branch(std::uint64_t n = 1) { cycles_ += n * costs_.branch; }
  void scattered(std::uint64_t n = 1) { cycles_ += n * costs_.scattered; }

  std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  ScalarCosts costs_;
  std::uint64_t cycles_ = 0;
};

}  // namespace raa::vec
