#pragma once
/// \file vpu.hpp
/// Functional + timing simulator of the vector processor of §3.2, including
/// the two ISA extensions the paper proposes for VSR sort:
///
///   * VPI (vector prior instances): out[i] = |{ j < i : in[j] == in[i] }|
///   * VLU (vector last unique):     mask[i] = (no j > i has in[j] == in[i])
///
/// Timing model. The machine is a classic vector pipeline with configurable
/// maximum vector length (MVL) and parallel lanes. Instructions execute in
/// *chained blocks*: within a block (ended by sync(), which models a scalar
/// dependency), execution overlaps perfectly and the block's duration is
/// the maximum over functional-unit classes of their total occupancy:
///
///   * lane ALUs:          ceil(VL/lanes) per arithmetic/logic instruction;
///   * memory port:        ceil(VL/lanes) per unit-stride access,
///                         VL/indexed_tput per gather/scatter (indexed
///                         accesses serialise through the address/conflict
///                         pipeline; indexed_tput grows sub-linearly with
///                         lanes);
///   * VPI/VLU unit:       VL (serial variant) or 2*ceil(VL/lanes)
///                         (parallel variant) — the paper proposes both.
///
/// Each instruction additionally pays an issue slot, and the first memory
/// instruction of a block pays the memory latency once (covered thereafter
/// by chaining).

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace raa::vec {

using Elem = std::uint64_t;
using Vreg = std::vector<Elem>;
using Mask = std::vector<std::uint8_t>;

/// Machine configuration (the Figure 3 sweep varies mvl and lanes).
struct VpuConfig {
  unsigned mvl = 64;
  unsigned lanes = 4;
  bool parallel_vpi = true;  ///< parallel VPI/VLU hardware variant
  unsigned issue_cycles = 1;
  unsigned mem_latency = 20;

  /// Indexed-access throughput (elements/cycle): conflict detection limits
  /// scaling, modelled as ceil(lanes/2) with a floor of 1.
  unsigned indexed_tput() const { return lanes >= 2 ? lanes / 2 : 1; }
};

/// Cycle accounting for one execution (see file comment).
class Vpu {
 public:
  explicit Vpu(VpuConfig config) : cfg_(config) {
    RAA_CHECK(cfg_.mvl > 0 && cfg_.lanes > 0);
  }

  const VpuConfig& config() const noexcept { return cfg_; }
  unsigned mvl() const noexcept { return cfg_.mvl; }

  /// Close the current chained block (scalar dependency / loop boundary).
  void sync();

  /// Total cycles including any open block.
  std::uint64_t cycles() const;

  std::uint64_t instructions() const noexcept { return instructions_; }

  /// Charge scalar-core work interleaved with vector execution (loop
  /// bookkeeping, pointer updates); serialises with the current block.
  void scalar_work(std::uint64_t cycles_);

  // --- memory ---
  Vreg vload(const Elem* base, std::size_t n);
  void vstore(Elem* base, const Vreg& v);
  Vreg vgather(const Elem* base, const Vreg& idx);
  void vscatter(Elem* base, const Vreg& idx, const Vreg& val);
  /// Masked scatter: only elements with mask[i] != 0 are written.
  void vscatter_masked(Elem* base, const Vreg& idx, const Vreg& val,
                       const Mask& mask);

  // --- arithmetic / logic (element-wise) ---
  Vreg vadd(const Vreg& a, const Vreg& b);
  Vreg vadd_s(const Vreg& a, Elem s);
  Vreg vsub(const Vreg& a, const Vreg& b);
  Vreg vand_s(const Vreg& a, Elem s);
  Vreg vshr_s(const Vreg& a, unsigned s);
  Vreg vshl_s(const Vreg& a, unsigned s);
  Vreg vmin(const Vreg& a, const Vreg& b);
  Vreg vmax(const Vreg& a, const Vreg& b);
  Vreg vselect(const Mask& m, const Vreg& a, const Vreg& b);
  Vreg viota(std::size_t n);
  Vreg vbroadcast(Elem v, std::size_t n);
  Vreg vxor_s(const Vreg& a, Elem s);

  // --- comparisons / masks ---
  Mask vcmp_lt_s(const Vreg& a, Elem s);
  Mask vcmp_lt(const Vreg& a, const Vreg& b);
  Mask vmask_not(const Mask& m);
  /// Population count of a mask (returns to a scalar register: syncs).
  std::size_t vmask_popcount(const Mask& m);

  // --- permutation ---
  Vreg vcompress(const Vreg& a, const Mask& m);
  Vreg vpermute(const Vreg& a, const Vreg& idx);  ///< in-register shuffle

  // --- reductions (return to scalar: sync) ---
  Elem vreduce_add(const Vreg& a);
  Elem vreduce_max(const Vreg& a);

  // --- the proposed instructions (§3.2) ---
  /// Vector Prior Instances: "each element of the output asserts exactly
  /// how many instances of a value in the corresponding element of the
  /// input register have been seen before."
  Vreg vpi(const Vreg& a);
  /// Vector Last Unique: "a vector mask that marks the last instance of any
  /// particular value found."
  Mask vlu(const Vreg& a);

 private:
  void charge_alu(std::size_t n);
  void charge_mem_unit(std::size_t n);
  void charge_mem_indexed(std::size_t n);
  void charge_vpi(std::size_t n);
  void issue();
  std::uint64_t lanes_time(std::size_t n) const {
    return (n + cfg_.lanes - 1) / cfg_.lanes;
  }

  VpuConfig cfg_;
  std::uint64_t done_cycles_ = 0;  ///< closed blocks
  std::uint64_t instructions_ = 0;

  // Open-block resource occupancy.
  std::uint64_t blk_issue_ = 0;
  std::uint64_t blk_alu_ = 0;
  std::uint64_t blk_mem_ = 0;
  std::uint64_t blk_vpi_ = 0;
  bool blk_has_mem_ = false;
};

}  // namespace raa::vec
