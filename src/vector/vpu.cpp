#include "vector/vpu.hpp"

#include <algorithm>
#include <unordered_map>

namespace raa::vec {

void Vpu::issue() {
  blk_issue_ += cfg_.issue_cycles;
  ++instructions_;
}

void Vpu::charge_alu(std::size_t n) { blk_alu_ += lanes_time(n); }

void Vpu::charge_mem_unit(std::size_t n) {
  blk_mem_ += lanes_time(n);
  blk_has_mem_ = true;
}

void Vpu::charge_mem_indexed(std::size_t n) {
  const unsigned tput = cfg_.indexed_tput();
  blk_mem_ += (n + tput - 1) / tput;
  blk_has_mem_ = true;
}

void Vpu::charge_vpi(std::size_t n) {
  blk_vpi_ += cfg_.parallel_vpi ? 2 * lanes_time(n)
                                : static_cast<std::uint64_t>(n);
}

void Vpu::sync() {
  std::uint64_t blk = std::max({blk_alu_, blk_mem_, blk_vpi_});
  blk += blk_issue_;
  if (blk_has_mem_) blk += cfg_.mem_latency;
  done_cycles_ += blk;
  blk_issue_ = blk_alu_ = blk_mem_ = blk_vpi_ = 0;
  blk_has_mem_ = false;
}

std::uint64_t Vpu::cycles() const {
  std::uint64_t blk = std::max({blk_alu_, blk_mem_, blk_vpi_}) + blk_issue_;
  if (blk_has_mem_) blk += cfg_.mem_latency;
  return done_cycles_ + blk;
}

void Vpu::scalar_work(std::uint64_t c) {
  sync();
  done_cycles_ += c;
}

Vreg Vpu::vload(const Elem* base, std::size_t n) {
  RAA_CHECK(n <= cfg_.mvl);
  issue();
  charge_mem_unit(n);
  return Vreg(base, base + n);
}

void Vpu::vstore(Elem* base, const Vreg& v) {
  RAA_CHECK(v.size() <= cfg_.mvl);
  issue();
  charge_mem_unit(v.size());
  std::copy(v.begin(), v.end(), base);
}

Vreg Vpu::vgather(const Elem* base, const Vreg& idx) {
  RAA_CHECK(idx.size() <= cfg_.mvl);
  issue();
  charge_mem_indexed(idx.size());
  Vreg out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = base[idx[i]];
  return out;
}

void Vpu::vscatter(Elem* base, const Vreg& idx, const Vreg& val) {
  RAA_CHECK(idx.size() == val.size() && idx.size() <= cfg_.mvl);
  issue();
  charge_mem_indexed(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) base[idx[i]] = val[i];
}

void Vpu::vscatter_masked(Elem* base, const Vreg& idx, const Vreg& val,
                          const Mask& mask) {
  RAA_CHECK(idx.size() == val.size() && idx.size() == mask.size());
  issue();
  charge_mem_indexed(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (mask[i]) base[idx[i]] = val[i];
}

#define RAA_VEC_BINOP(name, expr)                              \
  Vreg Vpu::name(const Vreg& a, const Vreg& b) {               \
    RAA_CHECK(a.size() == b.size());                           \
    issue();                                                   \
    charge_alu(a.size());                                      \
    Vreg out(a.size());                                        \
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = (expr); \
    return out;                                                \
  }

RAA_VEC_BINOP(vadd, a[i] + b[i])
RAA_VEC_BINOP(vsub, a[i] - b[i])
RAA_VEC_BINOP(vmin, std::min(a[i], b[i]))
RAA_VEC_BINOP(vmax, std::max(a[i], b[i]))
#undef RAA_VEC_BINOP

Vreg Vpu::vadd_s(const Vreg& a, Elem s) {
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s;
  return out;
}

Vreg Vpu::vand_s(const Vreg& a, Elem s) {
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] & s;
  return out;
}

Vreg Vpu::vshr_s(const Vreg& a, unsigned s) {
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] >> s;
  return out;
}

Vreg Vpu::vshl_s(const Vreg& a, unsigned s) {
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] << s;
  return out;
}

Vreg Vpu::vxor_s(const Vreg& a, Elem s) {
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ s;
  return out;
}

Vreg Vpu::vselect(const Mask& m, const Vreg& a, const Vreg& b) {
  RAA_CHECK(m.size() == a.size() && a.size() == b.size());
  issue();
  charge_alu(a.size());
  Vreg out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = m[i] ? a[i] : b[i];
  return out;
}

Vreg Vpu::viota(std::size_t n) {
  RAA_CHECK(n <= cfg_.mvl);
  issue();
  charge_alu(n);
  Vreg out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

Vreg Vpu::vbroadcast(Elem v, std::size_t n) {
  RAA_CHECK(n <= cfg_.mvl);
  issue();
  charge_alu(n);
  return Vreg(n, v);
}

Mask Vpu::vcmp_lt_s(const Vreg& a, Elem s) {
  issue();
  charge_alu(a.size());
  Mask out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] < s ? 1 : 0;
  return out;
}

Mask Vpu::vcmp_lt(const Vreg& a, const Vreg& b) {
  RAA_CHECK(a.size() == b.size());
  issue();
  charge_alu(a.size());
  Mask out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] < b[i] ? 1 : 0;
  return out;
}

Mask Vpu::vmask_not(const Mask& m) {
  issue();
  charge_alu(m.size());
  Mask out(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) out[i] = m[i] ? 0 : 1;
  return out;
}

std::size_t Vpu::vmask_popcount(const Mask& m) {
  issue();
  charge_alu(m.size());
  sync();  // result feeds scalar control flow
  std::size_t n = 0;
  for (const auto b : m) n += (b != 0);
  return n;
}

Vreg Vpu::vcompress(const Vreg& a, const Mask& m) {
  RAA_CHECK(a.size() == m.size());
  issue();
  charge_alu(a.size());
  Vreg out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (m[i]) out.push_back(a[i]);
  return out;
}

Vreg Vpu::vpermute(const Vreg& a, const Vreg& idx) {
  issue();
  charge_alu(idx.size());
  Vreg out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    RAA_CHECK(idx[i] < a.size());
    out[i] = a[idx[i]];
  }
  return out;
}

Elem Vpu::vreduce_add(const Vreg& a) {
  issue();
  charge_alu(a.size());
  sync();
  Elem s = 0;
  for (const Elem v : a) s += v;
  return s;
}

Elem Vpu::vreduce_max(const Vreg& a) {
  issue();
  charge_alu(a.size());
  sync();
  Elem s = 0;
  for (const Elem v : a) s = std::max(s, v);
  return s;
}

Vreg Vpu::vpi(const Vreg& a) {
  issue();
  charge_vpi(a.size());
  Vreg out(a.size());
  std::unordered_map<Elem, Elem> seen;
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = seen[a[i]]++;
  return out;
}

Mask Vpu::vlu(const Vreg& a) {
  issue();
  charge_vpi(a.size());
  Mask out(a.size(), 0);
  std::unordered_map<Elem, std::size_t> last;
  for (std::size_t i = 0; i < a.size(); ++i) last[a[i]] = i;
  for (const auto& [value, index] : last) out[index] = 1;
  return out;
}

}  // namespace raa::vec
