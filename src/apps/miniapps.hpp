#pragma once
/// \file miniapps.hpp
/// PARSEC-like mini-applications for the §5 programmability study
/// (Figure 5): a particle-filter tracker ("bodytrack-like") and an implicit
/// mesh solver ("facesim-like").
///
/// Each app exists in three equivalent implementations that must produce
/// bit-identical results:
///   * serial          — reference;
///   * forkjoin        — the PARSEC-original Pthreads structure: a serial
///                       I/O / assembly stage per frame, a parallel region
///                       with a barrier, a serial epilogue (taskwait plays
///                       the barrier);
///   * dataflow        — the OmpSs port: every stage is a task with data
///                       dependences, so the serial I/O of frame i+1
///                       overlaps the computation of frame i (the effect
///                       Figure 5 attributes the improved scalability to).
///
/// For the Figure 5 scalability curves the two parallelisation *structures*
/// are expressed as TDGs (costs calibrated to PARSEC-like stage ratios) and
/// replayed on simulated 1..16-core machines — this container has a single
/// hardware thread, so wall-clock scaling is unmeasurable here (see
/// the substitution table in docs/ARCHITECTURE.md).

#include <cstddef>
#include <vector>

#include "runtime/graph.hpp"
#include "runtime/runtime.hpp"

namespace raa::apps {

/// Parallelisation structure of the original vs the OmpSs port.
enum class Style { forkjoin, dataflow };

const char* to_string(Style s) noexcept;

// --- bodytrack-like particle filter --------------------------------------

struct BodytrackParams {
  std::size_t frames = 20;
  std::size_t particles = 256;
  std::size_t chunks = 32;    ///< parallel tasks per frame
  std::size_t pixels = 2048;  ///< synthetic frame size
  std::uint64_t seed = 1;
};

/// Per-frame tracked estimate (the app's output).
using Estimates = std::vector<double>;

Estimates bodytrack_serial(const BodytrackParams& p);
Estimates bodytrack_parallel(const BodytrackParams& p, rt::Runtime& rt,
                             Style style);

/// TDG of one whole run with the given structure; costs are abstract stage
/// weights matching PARSEC-like ratios (I/O ~8% of a frame).
tdg::Graph bodytrack_tdg(std::size_t frames, std::size_t chunks, Style style);

// --- facesim-like implicit mesh solver -----------------------------------

struct FacesimParams {
  std::size_t frames = 16;
  std::size_t nodes = 4096;     ///< mesh nodes
  std::size_t partitions = 32;  ///< parallel force tasks per frame
  std::uint64_t seed = 2;
};

/// Final mesh state vector (the app's output).
using MeshState = std::vector<double>;

MeshState facesim_serial(const FacesimParams& p);
MeshState facesim_parallel(const FacesimParams& p, rt::Runtime& rt,
                           Style style);

tdg::Graph facesim_tdg(std::size_t frames, std::size_t partitions,
                       Style style);

// --- Figure 5 scalability harness -----------------------------------------

/// speedup[p-1] = makespan(1 core) / makespan(p cores) for p = 1..max_cores.
std::vector<double> scalability_curve(const tdg::Graph& graph,
                                      unsigned max_cores);

}  // namespace raa::apps
