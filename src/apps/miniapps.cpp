#include "apps/miniapps.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "simcore/tdg_sim.hpp"

namespace raa::apps {

const char* to_string(Style s) noexcept {
  return s == Style::forkjoin ? "forkjoin" : "dataflow";
}

namespace {

/// Deterministic "pixel" of a synthetic frame.
double pixel(std::uint64_t seed, std::size_t frame, std::size_t k) {
  std::uint64_t s = seed ^ (frame * 0x9e3779b97f4a7c15ULL) ^ (k * 0x2545F4914F6CDD1DULL);
  const std::uint64_t v = splitmix64(s);
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

/// Weight of one particle against a frame (bodytrack's likelihood stand-in).
double particle_weight(const std::vector<double>& img, double prev_estimate,
                       std::size_t particle, std::size_t particles) {
  const double pos =
      prev_estimate +
      (static_cast<double>(particle) / static_cast<double>(particles) - 0.5);
  double w = 0.0;
  // Each particle samples a strided subset of the image.
  for (std::size_t k = particle % 16; k < img.size(); k += 16)
    w += img[k] * std::cos(pos + static_cast<double>(k) * 1e-3);
  return w * w + 1e-9;  // positive weights
}

void render_frame(const BodytrackParams& p, std::size_t frame,
                  std::vector<double>& img) {
  img.resize(p.pixels);
  for (std::size_t k = 0; k < p.pixels; ++k)
    img[k] = pixel(p.seed, frame, k);
}

double estimate_from_partials(const std::vector<double>& weights,
                              std::size_t particles) {
  double wsum = 0.0, psum = 0.0;
  for (std::size_t q = 0; q < weights.size(); ++q) {
    wsum += weights[q];
    psum += weights[q] * (static_cast<double>(q) /
                          static_cast<double>(particles));
  }
  return psum / wsum;
}

}  // namespace

Estimates bodytrack_serial(const BodytrackParams& p) {
  Estimates est;
  est.reserve(p.frames);
  std::vector<double> img;
  std::vector<double> weights(p.particles);
  double prev = 0.0;
  for (std::size_t f = 0; f < p.frames; ++f) {
    render_frame(p, f, img);  // the serial I/O / decode stage
    for (std::size_t q = 0; q < p.particles; ++q)
      weights[q] = particle_weight(img, prev, q, p.particles);
    prev = estimate_from_partials(weights, p.particles);
    est.push_back(prev);
  }
  return est;
}

Estimates bodytrack_parallel(const BodytrackParams& p, rt::Runtime& rt,
                             Style style) {
  RAA_CHECK(p.particles % p.chunks == 0);
  const std::size_t per_chunk = p.particles / p.chunks;

  // Frame-indexed storage so tasks of different frames can be in flight.
  std::vector<std::vector<double>> imgs(p.frames);
  std::vector<std::vector<double>> weights(
      p.frames, std::vector<double>(p.particles));
  Estimates est(p.frames, 0.0);
  int io_token = 0;  // serialises the I/O stage (single reader thread)

  for (std::size_t f = 0; f < p.frames; ++f) {
    // Serial I/O stage: a task in dataflow style (ordered by io_token), an
    // inline stage in forkjoin style (as the Pthreads original does it).
    if (style == Style::dataflow) {
      rt.spawn({rt::inout(io_token), rt::out(imgs[f])},
               [&p, f, &imgs] { render_frame(p, f, imgs[f]); },
               {.label = "io" + std::to_string(f)});
    } else {
      render_frame(p, f, imgs[f]);
    }

    for (std::size_t c = 0; c < p.chunks; ++c) {
      const std::size_t q_lo = c * per_chunk;
      std::vector<rt::Dep> deps{rt::in(imgs[f]),
                                rt::out(weights[f][q_lo])};
      if (f > 0) deps.push_back(rt::in(est[f - 1]));
      rt.spawn(std::move(deps),
               [&p, f, q_lo, per_chunk, &imgs, &weights, &est] {
                 const double prev = f > 0 ? est[f - 1] : 0.0;
                 for (std::size_t q = q_lo; q < q_lo + per_chunk; ++q)
                   weights[f][q] =
                       particle_weight(imgs[f], prev, q, p.particles);
               },
               {.label = "w" + std::to_string(f)});
    }

    // Estimate stage: in forkjoin style a barrier (taskwait) precedes it;
    // in dataflow style it is just another task depending on the weights.
    if (style == Style::forkjoin) {
      rt.taskwait();
      est[f] = estimate_from_partials(weights[f], p.particles);
    } else {
      std::vector<rt::Dep> deps{rt::out(est[f])};
      for (std::size_t c = 0; c < p.chunks; ++c)
        deps.push_back(rt::in(weights[f][c * per_chunk]));
      rt.spawn(std::move(deps),
               [&p, f, &weights, &est] {
                 est[f] = estimate_from_partials(weights[f], p.particles);
               },
               {.label = "est" + std::to_string(f),
                .criticality = rt::Criticality::critical});
    }
  }
  rt.taskwait();
  return est;
}

tdg::Graph bodytrack_tdg(std::size_t frames, std::size_t chunks,
                         Style style) {
  // Stage weights calibrated to PARSEC-like ratios: the serial decode is
  // ~8% of a frame's work at one core.
  const double io_cost = 3.0;
  const double chunk_cost = 35.2 / static_cast<double>(chunks);
  const double est_cost = 0.4;

  tdg::Graph g;
  tdg::NodeId prev_io = tdg::kNoNode;
  tdg::NodeId prev_est = tdg::kNoNode;
  for (std::size_t f = 0; f < frames; ++f) {
    const tdg::NodeId io =
        g.add_node(io_cost, "io" + std::to_string(f));
    if (prev_io != tdg::kNoNode) g.add_edge(prev_io, io);
    if (style == Style::forkjoin && prev_est != tdg::kNoNode)
      g.add_edge(prev_est, io);  // barrier: nothing overlaps frames
    const tdg::NodeId est =
        g.add_node(est_cost, "est" + std::to_string(f));
    for (std::size_t c = 0; c < chunks; ++c) {
      const tdg::NodeId w = g.add_node(chunk_cost, "w");
      g.add_edge(io, w);
      if (prev_est != tdg::kNoNode) g.add_edge(prev_est, w);
      g.add_edge(w, est);
    }
    prev_io = io;
    prev_est = est;
  }
  return g;
}

// --- facesim-like ----------------------------------------------------------

namespace {

double assembled_rhs(std::uint64_t seed, std::size_t frame, std::size_t k) {
  return pixel(seed * 31, frame, k) - 0.5;
}

double partition_force(const std::vector<double>& rhs,
                       const std::vector<double>& state, std::size_t lo,
                       std::size_t hi) {
  double f = 0.0;
  for (std::size_t k = lo; k < hi; ++k)
    f += rhs[k] * std::sin(state[k] + static_cast<double>(k) * 1e-4);
  return f;
}

}  // namespace

MeshState facesim_serial(const FacesimParams& p) {
  MeshState state(p.nodes, 0.0);
  std::vector<double> rhs(p.nodes);
  const std::size_t per_part = p.nodes / p.partitions;
  std::vector<double> forces(p.partitions);
  for (std::size_t f = 0; f < p.frames; ++f) {
    for (std::size_t k = 0; k < p.nodes; ++k)
      rhs[k] = assembled_rhs(p.seed, f, k);  // serial assembly
    for (std::size_t part = 0; part < p.partitions; ++part)
      forces[part] = partition_force(rhs, state, part * per_part,
                                     (part + 1) * per_part);
    double total = 0.0;
    for (const double fr : forces) total += fr;
    for (std::size_t k = 0; k < p.nodes; ++k)
      state[k] += 1e-3 * total + 1e-6 * rhs[k];  // serial integration
  }
  return state;
}

MeshState facesim_parallel(const FacesimParams& p, rt::Runtime& rt,
                           Style style) {
  RAA_CHECK(p.nodes % p.partitions == 0);
  const std::size_t per_part = p.nodes / p.partitions;
  MeshState state(p.nodes, 0.0);
  std::vector<std::vector<double>> rhs(p.frames,
                                       std::vector<double>(p.nodes));
  std::vector<std::vector<double>> forces(
      p.frames, std::vector<double>(p.partitions));
  int asm_token = 0;

  for (std::size_t f = 0; f < p.frames; ++f) {
    if (style == Style::dataflow) {
      rt.spawn({rt::inout(asm_token), rt::out(rhs[f])},
               [&p, f, &rhs] {
                 for (std::size_t k = 0; k < p.nodes; ++k)
                   rhs[f][k] = assembled_rhs(p.seed, f, k);
               },
               {.label = "asm" + std::to_string(f)});
    } else {
      for (std::size_t k = 0; k < p.nodes; ++k)
        rhs[f][k] = assembled_rhs(p.seed, f, k);
    }

    for (std::size_t part = 0; part < p.partitions; ++part) {
      std::vector<rt::Dep> deps{rt::in(rhs[f]), rt::in(state),
                                rt::out(forces[f][part])};
      rt.spawn(std::move(deps),
               [&rhs, &state, &forces, f, part, per_part] {
                 forces[f][part] =
                     partition_force(rhs[f], state, part * per_part,
                                     (part + 1) * per_part);
               },
               {.label = "force"});
    }

    if (style == Style::forkjoin) {
      rt.taskwait();
      double total = 0.0;
      for (const double fr : forces[f]) total += fr;
      for (std::size_t k = 0; k < p.nodes; ++k)
        state[k] += 1e-3 * total + 1e-6 * rhs[f][k];
    } else {
      std::vector<rt::Dep> deps{rt::inout(state), rt::in(rhs[f])};
      for (std::size_t part = 0; part < p.partitions; ++part)
        deps.push_back(rt::in(forces[f][part]));
      rt.spawn(std::move(deps),
               [&p, f, &rhs, &forces, &state] {
                 double total = 0.0;
                 for (const double fr : forces[f]) total += fr;
                 for (std::size_t k = 0; k < p.nodes; ++k)
                   state[k] += 1e-3 * total + 1e-6 * rhs[f][k];
               },
               {.label = "update" + std::to_string(f),
                .criticality = rt::Criticality::critical});
    }
  }
  rt.taskwait();
  return state;
}

tdg::Graph facesim_tdg(std::size_t frames, std::size_t partitions,
                       Style style) {
  // Assembly is a heavier serial stage than bodytrack's I/O (facesim
  // saturates lower in the paper: ~10x vs ~12x at 16 cores).
  const double asm_cost = 3.2;
  const double part_cost = 33.6 / static_cast<double>(partitions);
  const double upd_cost = 0.6;

  tdg::Graph g;
  tdg::NodeId prev_asm = tdg::kNoNode;
  tdg::NodeId prev_upd = tdg::kNoNode;
  for (std::size_t f = 0; f < frames; ++f) {
    const tdg::NodeId as = g.add_node(asm_cost, "asm" + std::to_string(f));
    if (prev_asm != tdg::kNoNode) g.add_edge(prev_asm, as);
    if (style == Style::forkjoin && prev_upd != tdg::kNoNode)
      g.add_edge(prev_upd, as);
    const tdg::NodeId upd = g.add_node(upd_cost, "upd" + std::to_string(f));
    for (std::size_t part = 0; part < partitions; ++part) {
      const tdg::NodeId fo = g.add_node(part_cost, "force");
      g.add_edge(as, fo);
      if (prev_upd != tdg::kNoNode) g.add_edge(prev_upd, fo);
      g.add_edge(fo, upd);
    }
    prev_asm = as;
    prev_upd = upd;
  }
  return g;
}

std::vector<double> scalability_curve(const tdg::Graph& graph,
                                      unsigned max_cores) {
  RAA_CHECK(max_cores >= 1);
  std::vector<double> speedup;
  speedup.reserve(max_cores);
  const auto base = sim::replay(
      graph, sim::MachineConfig{.cores = 1}, sim::priority_bottom_level());
  for (unsigned p = 1; p <= max_cores; ++p) {
    const auto r = sim::replay(graph, sim::MachineConfig{.cores = p},
                               sim::priority_bottom_level());
    speedup.push_back(base.makespan_ns / r.makespan_ns);
  }
  return speedup;
}

}  // namespace raa::apps
