#include "common/stats.hpp"

#include <algorithm>
#include <vector>

namespace raa {

Summary summarize(std::span<const double> xs) noexcept {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  double m = 0.0;   // running mean
  double m2 = 0.0;  // sum of squared deviations
  std::size_t n = 0;
  for (const double x : xs) {
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = m;
  s.stddev = std::sqrt(m2 / static_cast<double>(n));
  return s;
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double rel_diff(double a, double b, double eps) noexcept {
  const double scale = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / scale;
}

}  // namespace raa
