#pragma once
/// \file exit_codes.hpp
/// The process-exit taxonomy shared by every tool in the repository
/// (raa_sim, raa_fuzz, raa_fleet, bench_compare, raa_bench_all). Before
/// this header each tool grew its own ad-hoc codes; scripts and CI assert
/// on them, so the meanings are a documented, frozen contract (the
/// conformance test in tests/test_common.cpp pins the numeric values):
///
///   0  ok            — the tool did what was asked and every check passed
///   1  failure       — a substantive failure: a benchmark regression, a
///                      determinism divergence, a simulation/selfcheck
///                      error, or an artifact-I/O failure
///   2  usage/schema  — bad command line, unparseable or schema-invalid
///                      input (the run never meaningfully started)
///   3  bad scenario  — input parsed but is degenerate as a workload
///                      (e.g. a region claimed by zero cores)
///   4  partial fleet — graceful degradation: some fleet jobs succeeded,
///                      some did not (raa_fleet only; an all-jobs-failed
///                      fleet exits 1, all-ok exits 0)
///
/// Keep this list append-only: downstream scripts switch on the numbers.

namespace raa {

enum ExitCode : int {
  kExitOk = 0,
  kExitFailure = 1,
  kExitUsage = 2,
  kExitBadScenario = 3,
  kExitPartialFleet = 4,
};

/// Human-readable name for diagnostics and the fleet index.
constexpr const char* to_string(ExitCode code) noexcept {
  switch (code) {
    case kExitOk: return "ok";
    case kExitFailure: return "failure";
    case kExitUsage: return "usage";
    case kExitBadScenario: return "bad-scenario";
    case kExitPartialFleet: return "partial-fleet";
  }
  return "unknown";
}

}  // namespace raa
