#include "common/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace raa {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg{argv[i]};
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      flags_.emplace(std::string{arg}, "true");
    } else {
      flags_.emplace(std::string{arg.substr(0, eq)},
                     std::string{arg.substr(eq + 1)});
    }
  }
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : fallback;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::has(const std::string& name) const { return flags_.contains(name); }

}  // namespace raa
