#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation for all RAA simulators.
///
/// Every experiment in this repository must regenerate bit-identically from a
/// seed, so we ship our own small PRNG (xoshiro256**, public-domain algorithm
/// by Blackman & Vigna) instead of relying on implementation-defined
/// std::default_random_engine behaviour. Streams can be split so concurrent
/// components draw independent sequences without sharing state.

#include <array>
#include <cstdint>
#include <limits>

namespace raa {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to derive
/// independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
/// be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias is < 2^-64, irrelevant for
  /// simulation workloads).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    const auto wide = static_cast<u128>(operator()()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli draw with probability p of returning true.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator; the parent advances once.
  constexpr Rng split() noexcept { return Rng{operator()()}; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  constexpr void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace raa
