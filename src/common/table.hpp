#pragma once
/// \file table.hpp
/// Console table printer used by the figure-regeneration benches so their
/// output reads like the paper's tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace raa {

/// A right-padded text table. Columns are sized to the widest cell.
///
///   Table t{"benchmark", "time x", "energy x", "noc x"};
///   t.row("CG", 1.21, 1.25, 1.49);
///   t.print(std::cout);
class Table {
 public:
  /// Construct with header cells.
  explicit Table(std::vector<std::string> header);

  /// Append a row of preformatted cells. Missing cells print empty.
  void row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic arguments with fixed precision.
  template <typename... Args>
  void row(const Args&... args) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(args));
    (cells.push_back(format_cell(args)), ...);
    row(std::move(cells));
  }

  /// Render with aligned columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Number of data rows so far.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with 3 decimals; integers/strings pass through.
  static std::string format_cell(double v);
  static std::string format_cell(int v);
  static std::string format_cell(long v);
  static std::string format_cell(unsigned long v);
  static std::string format_cell(const char* v);
  static std::string format_cell(const std::string& v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace raa
