#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace raa {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}
std::string Table::format_cell(int v) { return std::to_string(v); }
std::string Table::format_cell(long v) { return std::to_string(v); }
std::string Table::format_cell(unsigned long v) { return std::to_string(v); }
std::string Table::format_cell(const char* v) { return v; }
std::string Table::format_cell(const std::string& v) { return v; }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace raa
