#pragma once
/// \file check.hpp
/// RAA_CHECK: precondition/invariant checking that is active in every build
/// type (simulators must never silently continue past a broken invariant —
/// the numbers they produce would be garbage).

#include <stdexcept>
#include <string>

namespace raa::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw std::logic_error(std::string{"RAA_CHECK failed: "} + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace raa::detail

/// Abort (by throwing std::logic_error) when cond is false.
#define RAA_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::raa::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Same, with a context message built from a std::string expression.
#define RAA_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond))                                                        \
      ::raa::detail::check_failed(#cond, __FILE__, __LINE__, (msg));    \
  } while (false)
