#pragma once
/// \file check.hpp
/// RAA_CHECK: precondition/invariant checking that is active in every build
/// type (simulators must never silently continue past a broken invariant —
/// the numbers they produce would be garbage).
///
/// Failures throw — never abort() — and throw a *typed* exception, so an
/// in-process supervisor (the fleet engine, a test) can catch a poisoned
/// run, classify it, and keep the process alive. Tools translate the
/// exception into the exit-code taxonomy (common/exit_codes.hpp) at their
/// outermost catch.

#include <stdexcept>
#include <string>

namespace raa {

/// The exception every RAA_CHECK failure throws. Derives from
/// std::logic_error so pre-existing catch sites keep working; catching it
/// by this type is the supported way to isolate a broken-invariant run
/// without losing the process (see raa::fleet).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace raa

namespace raa::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw CheckError(std::string{"RAA_CHECK failed: "} + expr + " at " + file +
                   ":" + std::to_string(line) +
                   (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace raa::detail

/// Abort (by throwing std::logic_error) when cond is false.
#define RAA_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::raa::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Same, with a context message built from a std::string expression.
#define RAA_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond))                                                        \
      ::raa::detail::check_failed(#cond, __FILE__, __LINE__, (msg));    \
  } while (false)
