#pragma once
/// \file stats.hpp
/// Small descriptive-statistics helpers shared by tests and benches.

#include <cmath>
#include <cstddef>
#include <span>

namespace raa {

/// Summary of a sample: count, mean, min, max, population stddev.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Compute a Summary over a span of doubles (single pass, Welford).
Summary summarize(std::span<const double> xs) noexcept;

/// Geometric mean; all inputs must be > 0. Returns 0 for an empty span.
double geomean(std::span<const double> xs) noexcept;

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Median (average of the two middle values for even counts); returns 0
/// for an empty span.
double median(std::span<const double> xs);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double rel_diff(double a, double b, double eps = 1e-300) noexcept;

}  // namespace raa
