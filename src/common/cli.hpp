#pragma once
/// \file cli.hpp
/// Minimal --key=value flag parser for examples and benches. Not a general
/// argument library: just enough to parameterise experiment harnesses
/// (sizes, seeds, core counts) without external dependencies.

#include <cstdint>
#include <map>
#include <string>

namespace raa {

/// Parses flags of the form --name=value or --name (boolean true).
/// Unrecognised positional arguments are ignored.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Look up a flag; returns fallback when absent or malformed.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// True when the flag appeared on the command line.
  bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace raa
