#pragma once
/// \file genscenario.hpp
/// The generator-of-generators: produce random *valid* scenarios from a
/// (seed, index) pair. Valid means the result always survives
/// Scenario::parse — every constraint the strict parser enforces (chunk
/// tiling, window bounds, core coverage, per-generator key sets) is
/// respected by construction, and every declared region is referenced by
/// at least one program. Generation is a pure function of its arguments:
/// the same (seed, index, limits) triple yields a field-identical
/// Scenario on every host, which is what makes fuzz runs reproducible
/// from the summary JSON alone.
///
/// The space covered: random chip shapes (1..max mesh tiles), random
/// region layouts (shared extents and per-core slices), all five
/// parameterized generators plus scripted multi-phase/multi-stream
/// programs, partial core claims (idle cores), and cross-program sharing
/// of guarded regions.

#include <cstdint>

#include "scenario/scenario.hpp"

namespace raa::fuzz {

/// Size knobs. The defaults keep one case to a few hundred thousand
/// simulated accesses across all oracle runs — small enough for a CI
/// budget of dozens of cases, large enough to exercise every protocol
/// path (DMA tiling, guarded lookups, invalidations, prefetch).
struct GenLimits {
  unsigned max_mesh_x = 4;  ///< mesh_x drawn from [1, max_mesh_x]
  unsigned max_mesh_y = 2;  ///< mesh_y drawn from [1, max_mesh_y]
  unsigned max_programs = 3;
  /// Upper bound on per-program access counts (zipf/pointer-chase draws,
  /// scripted phase iterations, bursts * burst_len).
  std::uint64_t max_accesses = 4096;
};

/// Generate the `index`-th scenario of the fuzz run keyed by `seed`.
scen::Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                                 const GenLimits& limits = {});

/// Region-name prefix the synthetic test oracle keys on (see oracles.hpp).
inline constexpr const char* kMarkerRegionName = "__diverge_marker";

/// Test hook for the shrinker suite: graft a marker region plus a minimal
/// program referencing it onto `s`. The marker oracle then reports a
/// divergence for exactly the scenarios containing the marker region, so
/// the shrinker's fixpoint — the smallest valid scenario that still
/// "fails" — is checkable without a real simulator bug. Claims an idle
/// core when one exists, steals a core from the widest program otherwise.
void inject_marker_divergence(scen::Scenario& s);

}  // namespace raa::fuzz
