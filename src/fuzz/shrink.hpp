#pragma once
/// \file shrink.hpp
/// Greedy test-case shrinking for fuzz-found divergences. Given a failing
/// scenario and a "does it still fail" predicate, repeatedly propose
/// smaller candidates — drop a program / phase / stream / core, shrink the
/// mesh, prune unreferenced regions, halve access counts and region sizes,
/// zero gaps and store fractions — and accept the first candidate that is
/// still parse-valid (validity = serialize -> re-parse, the exact bar
/// repro files must clear) and still fails. Fixpoint: a full round in
/// which no candidate is accepted. Every edit strictly reduces some size
/// measure, so the loop always terminates.

#include <functional>

#include "scenario/scenario.hpp"

namespace raa::fuzz {

/// Predicate evaluated on each candidate: true = the bug still reproduces.
using StillFails = std::function<bool(const scen::Scenario&)>;

struct ShrinkStats {
  unsigned rounds = 0;    ///< passes over the candidate list
  unsigned attempts = 0;  ///< candidates proposed (valid or not)
  unsigned accepted = 0;  ///< edits kept (each one shrank the scenario)
};

scen::Scenario shrink_scenario(scen::Scenario s, const StillFails& still_fails,
                               ShrinkStats* stats = nullptr);

}  // namespace raa::fuzz
