#include "fuzz/genscenario.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace raa::fuzz {

namespace {

using scen::GenKind;
using scen::PhaseSpec;
using scen::ProgramSpec;
using scen::RegionSpec;
using scen::Scenario;
using scen::StreamSpec;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

template <typename T>
T pick(Rng& rng, std::initializer_list<T> xs) {
  return xs.begin()[rng.below(xs.size())];
}

/// Mirror of the parser's window computation (scenario.cpp).
std::uint64_t window_bytes(const RegionSpec& r, bool per_core, unsigned tiles) {
  return per_core ? r.bytes_per_core
                  : (r.bytes != 0 ? r.bytes : r.bytes_per_core * tiles);
}

/// How a stream or generator may address region `r` without tripping the
/// protocol's safety checks. The invariants (derived from System::run):
///  * an effective-strided access must stay inside the core's own slice of
///    a strided bytes_per_core region — anything else overlaps another
///    core's SPM chunks and aborts mid-run;
///  * a region that is ever SPM-mapped (class strided) must only otherwise
///    be accessed through the guarded class (random_unknown): the
///    no-alias class asserts the line is unmapped.
struct AccessChoice {
  bool per_core = false;
  std::optional<mem::RefClass> ref;  ///< override; nullopt = region class
};

AccessChoice choose_access(Rng& rng, const RegionSpec& r) {
  AccessChoice a;
  if (r.ref == mem::RefClass::strided) {
    if (rng.chance(0.35)) {
      a.ref = mem::RefClass::random_unknown;  // guarded view of mapped data
      a.per_core = rng.chance(0.5);
    } else {
      a.per_core = true;  // SPM-tiled: own slice only
    }
  } else {
    a.per_core = r.bytes_per_core != 0 && rng.chance(0.6);
    if (rng.chance(0.25))
      a.ref = rng.chance(0.5) ? mem::RefClass::random_unknown : r.ref;
  }
  return a;
}

std::uint32_t draw_gap(Rng& rng) {
  return rng.chance(0.6) ? 0u : pick<std::uint32_t>(rng, {1, 10, 100});
}

std::vector<RegionSpec> draw_regions(Rng& rng, const mem::SystemConfig& cfg) {
  const std::size_t n = 1 + rng.below(3);
  std::vector<RegionSpec> regions;
  for (std::size_t i = 0; i < n; ++i) {
    RegionSpec r;
    r.name = "r" + std::to_string(i);
    if (rng.chance(0.45)) {
      // SPM-tileable region: strided per-core slices, whole DMA chunks.
      r.ref = mem::RefClass::strided;
      r.bytes_per_core = cfg.dma_chunk_bytes * (1 + rng.below(2));
    } else {
      r.ref = rng.chance(0.5) ? mem::RefClass::random_unknown
                              : mem::RefClass::random_noalias;
      if (rng.chance(0.5))
        r.bytes_per_core = pick<std::uint64_t>(rng, {256, 512, 1024});
      else
        r.bytes = pick<std::uint64_t>(rng, {1024, 2048, 4096, 8192});
    }
    regions.push_back(std::move(r));
  }
  return regions;
}

/// Indices of bytes_per_core regions (stencil grids, producer/consumer
/// rings must be per-core).
std::vector<std::size_t> per_core_regions(const std::vector<RegionSpec>& rs) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rs.size(); ++i)
    if (rs[i].bytes_per_core != 0) out.push_back(i);
  return out;
}

ProgramSpec draw_scripted(Rng& rng, const std::vector<RegionSpec>& regions,
                          unsigned tiles, const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::scripted;
  const std::size_t n_phases = 1 + rng.below(2);
  for (std::size_t ph = 0; ph < n_phases; ++ph) {
    PhaseSpec phase;
    phase.gap_cycles = draw_gap(rng);
    const std::size_t n_streams = 1 + rng.below(2);
    std::uint64_t max_iters = limits.max_accesses /
                              (n_phases * n_streams);
    if (max_iters == 0) max_iters = 1;
    for (std::size_t st = 0; st < n_streams; ++st) {
      StreamSpec s;
      s.region = rng.below(regions.size());
      const AccessChoice a = choose_access(rng, regions[s.region]);
      s.per_core_slice = a.per_core;
      s.ref = a.ref;
      s.kind = pick(rng, {kern::StreamKind::linear, kern::StreamKind::random,
                          kern::StreamKind::random_rmw});
      // Effective-strided streams go through the SPM software cache. A
      // pure-store stream there write-allocates chunks (DMA-in skipped),
      // and a later load of a line the stores never reached trips the
      // System's spm_valid assertion. Loads (and rmw, whose load leg maps
      // the chunk with a full DMA fill first) are always safe — so SPM
      // streams never get the store flag.
      const bool spm_tiled = regions[s.region].ref == mem::RefClass::strided &&
                             s.per_core_slice && !s.ref.has_value();
      s.store = !spm_tiled && rng.chance(0.4);
      s.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
      const std::uint64_t window =
          window_bytes(regions[s.region], s.per_core_slice, tiles);
      if (s.kind == kern::StreamKind::linear) {
        s.start = s.elem_bytes * rng.below(4);  // < 64 <= any window
        s.stride = s.elem_bytes * (1 + rng.below(3));
        const std::uint64_t fit = (window - s.start - 1) / s.stride + 1;
        max_iters = std::min(max_iters, fit);
      } else {
        s.start = rng.chance(0.7) ? 0 : s.elem_bytes;
        s.stride = 8;  // parse default; unused by random streams
      }
      phase.streams.push_back(std::move(s));
    }
    phase.iterations = 1 + rng.below(max_iters);
    p.phases.push_back(std::move(phase));
  }
  return p;
}

ProgramSpec draw_zipf(Rng& rng, const std::vector<RegionSpec>& regions,
                      const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::zipf;
  p.region = rng.below(regions.size());
  const AccessChoice a = choose_access(rng, regions[p.region]);
  p.per_core_slice = a.per_core;
  p.ref = a.ref;
  p.accesses = 1 + rng.below(limits.max_accesses);
  p.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
  p.hot_fraction = rng.uniform(0.05, 0.5);
  p.hot_weight = rng.uniform(0.5, 0.99);
  // SPM-tiled accesses must stay load-only: a random store write-allocates
  // its chunk and a later load of an unwritten line in it would trip the
  // System's spm_valid assertion (see draw_scripted).
  const bool zipf_spm = regions[p.region].ref == mem::RefClass::strided &&
                        p.per_core_slice && !p.ref.has_value();
  p.store_fraction =
      (zipf_spm || rng.chance(0.5)) ? 0.0 : rng.uniform(0.0, 0.5);
  p.gap_cycles = draw_gap(rng);
  return p;
}

ProgramSpec draw_pointer_chase(Rng& rng, const std::vector<RegionSpec>& regions,
                               const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::pointer_chase;
  p.region = rng.below(regions.size());
  const AccessChoice a = choose_access(rng, regions[p.region]);
  p.per_core_slice = a.per_core;
  p.ref = a.ref;
  p.accesses = 1 + rng.below(limits.max_accesses);
  p.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
  p.gap_cycles = draw_gap(rng);
  return p;
}

/// May `out` serve as the output grid of a stencil whose input grid has
/// `in_bpc` bytes per core? Beyond being at least as large per core, a
/// strided (SPM-tiled) output must not let chunk mappings collide:
///  * out != in: core c writes output bytes [c*in_bpc, (c+1)*in_bpc), so
///    the span must be a whole number of DMA chunks or two cores end up
///    SPM-mapping the same chunk (the System's spm_mapped conflict check
///    aborts the run);
///  * out == in: the tap loads and the element writes interleave on the
///    same per-region chunk stream. At an interior chunk boundary the
///    taps pull the next chunk in, and the write behind them re-maps the
///    previous chunk by store write-allocate (no DMA fetch) — the next
///    tap load of an unwritten line in it trips the System's spm_valid
///    check. Only a single-chunk slice (taps can never cross a chunk
///    boundary inside the slice; cross-slice taps are guarded) is safe.
bool stencil_out_ok(const RegionSpec& out, std::uint64_t in_bpc, bool self,
                    const mem::SystemConfig& cfg) {
  if (out.bytes_per_core < in_bpc) return false;
  if (out.ref != mem::RefClass::strided) return true;
  if (self) return in_bpc <= cfg.dma_chunk_bytes;
  return in_bpc % cfg.dma_chunk_bytes == 0;
}

/// Input-grid candidates that admit at least one legal output grid —
/// draw_stencil must only pick from these (and the stencil kind is only
/// offered when this is non-empty).
std::vector<std::size_t> stencil_ins(const std::vector<RegionSpec>& regions,
                                     const std::vector<std::size_t>& bpc,
                                     const mem::SystemConfig& cfg) {
  std::vector<std::size_t> ins;
  for (const std::size_t i : bpc)
    for (const std::size_t j : bpc)
      if (stencil_out_ok(regions[j], regions[i].bytes_per_core, i == j,
                         cfg)) {
        ins.push_back(i);
        break;
      }
  return ins;
}

ProgramSpec draw_stencil(Rng& rng, const std::vector<RegionSpec>& regions,
                         const std::vector<std::size_t>& bpc,
                         const std::vector<std::size_t>& ins,
                         const mem::SystemConfig& cfg,
                         const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::stencil;
  p.region = ins[rng.below(ins.size())];
  const std::uint64_t in_bpc = regions[p.region].bytes_per_core;
  std::vector<std::size_t> outs;
  for (const std::size_t i : bpc)
    if (stencil_out_ok(regions[i], in_bpc, i == p.region, cfg))
      outs.push_back(i);
  p.out_region = outs[rng.below(outs.size())];
  p.halo = 1 + rng.below(2);
  p.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
  // Halo taps cross into neighbouring slices, so they must stay guarded.
  if (rng.chance(0.5)) p.halo_ref = mem::RefClass::random_unknown;
  const std::uint64_t elems = regions[p.region].bytes_per_core / p.elem_bytes;
  const std::uint64_t per_sweep = elems * (2 * std::uint64_t{p.halo} + 2);
  const std::uint64_t cap = std::clamp<std::uint64_t>(
      limits.max_accesses / std::max<std::uint64_t>(per_sweep, 1), 1, 4);
  p.sweeps = static_cast<std::uint32_t>(1 + rng.below(cap));
  p.gap_cycles = draw_gap(rng);
  return p;
}

ProgramSpec draw_producer_consumer(Rng& rng,
                                   const std::vector<RegionSpec>& regions,
                                   const std::vector<std::size_t>& bpc,
                                   const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::producer_consumer;
  p.region = bpc[rng.below(bpc.size())];
  // The ring crosses slice boundaries (each core reads its neighbour's
  // slot), so the access class must never be effectively strided.
  if (regions[p.region].ref == mem::RefClass::strided || rng.chance(0.4))
    p.ref = mem::RefClass::random_unknown;
  p.iterations = 1 + rng.below(std::max<std::uint64_t>(limits.max_accesses / 2, 1));
  p.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
  p.gap_cycles = draw_gap(rng);
  return p;
}

ProgramSpec draw_bursty(Rng& rng, const std::vector<RegionSpec>& regions,
                        const GenLimits& limits) {
  ProgramSpec p;
  p.kind = GenKind::bursty;
  p.region = rng.below(regions.size());
  const AccessChoice a = choose_access(rng, regions[p.region]);
  p.per_core_slice = a.per_core;
  p.ref = a.ref;
  p.burst_len = 4 + rng.below(61);
  p.bursts =
      1 + rng.below(std::max<std::uint64_t>(limits.max_accesses / p.burst_len, 1));
  p.gap_on = pick<std::uint32_t>(rng, {0, 1, 5});
  p.gap_off = pick<std::uint32_t>(rng, {100, 1000});
  // Load-only over SPM tiles, for the same reason as draw_zipf.
  const bool bursty_spm = regions[p.region].ref == mem::RefClass::strided &&
                          p.per_core_slice && !p.ref.has_value();
  p.store_fraction =
      (bursty_spm || rng.chance(0.5)) ? 0.0 : rng.uniform(0.0, 0.5);
  p.elem_bytes = pick<std::uint32_t>(rng, {4, 8, 16});
  return p;
}

/// Drop every region no program references and remap the survivors'
/// indices, so generated scenarios always satisfy
/// first_unreferenced_region() == nullopt.
void prune_unreferenced_regions(Scenario& s) {
  std::vector<bool> used(s.regions.size(), false);
  for (const auto& p : s.programs) {
    if (p.kind == GenKind::scripted) {
      for (const auto& ph : p.phases)
        for (const auto& st : ph.streams) used[st.region] = true;
    } else {
      used[p.region] = true;
      if (p.kind == GenKind::stencil) used[p.out_region] = true;
    }
  }
  if (std::find(used.begin(), used.end(), false) == used.end()) return;
  std::vector<std::size_t> remap(s.regions.size(), 0);
  std::vector<RegionSpec> kept;
  for (std::size_t i = 0; i < s.regions.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = kept.size();
    kept.push_back(std::move(s.regions[i]));
  }
  s.regions = std::move(kept);
  for (auto& p : s.programs) {
    if (p.kind == GenKind::scripted) {
      for (auto& ph : p.phases)
        for (auto& st : ph.streams) st.region = remap[st.region];
    } else {
      p.region = remap[p.region];
      if (p.kind == GenKind::stencil) p.out_region = remap[p.out_region];
    }
  }
}

}  // namespace

scen::Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                                 const GenLimits& limits) {
  std::uint64_t st = seed ^ (kGolden * (index + 1));
  Rng rng{splitmix64(st)};

  Scenario s;
  s.name = "fuzz_s" + std::to_string(seed) + "_i" + std::to_string(index);
  s.description =
      "generated: seed=" + std::to_string(seed) + " index=" + std::to_string(index);
  s.mode = pick(rng, {scen::ScenarioMode::cache_only, scen::ScenarioMode::hybrid,
                      scen::ScenarioMode::compare});
  s.seed = 1 + rng.below(std::uint64_t{1} << 48);

  auto& cfg = s.config;
  cfg.mesh_x = 1 + static_cast<unsigned>(rng.below(std::max(1u, limits.max_mesh_x)));
  cfg.mesh_y = 1 + static_cast<unsigned>(rng.below(std::max(1u, limits.max_mesh_y)));
  cfg.tiles = cfg.mesh_x * cfg.mesh_y;
  cfg.line_bytes = pick<unsigned>(rng, {32, 64});
  cfg.dma_chunk_bytes = pick<unsigned>(rng, {512, 1024});
  // Room for four double-buffered strided streams per core — more than any
  // generated program can open (at most one per region, <= 3 regions).
  cfg.spm_bytes = 8 * cfg.dma_chunk_bytes;
  cfg.l1_bytes = pick<unsigned>(rng, {2048, 4096});
  cfg.l1_assoc = pick<unsigned>(rng, {2, 4});
  cfg.l2_bank_bytes = pick<unsigned>(rng, {8192, 16384});
  cfg.l2_assoc = pick<unsigned>(rng, {4, 8});

  // Half the corpus runs the banked DRAM backend, knobs drawn wide enough
  // to hit row hits, conflicts and (when the interval is on) refreshes.
  if (rng.chance(0.5)) {
    cfg.memory.kind = mem::MemBackendKind::banked;
    auto& b = cfg.memory.banked;
    b.channels = pick<unsigned>(rng, {1, 2, 4});
    b.banks_per_channel = pick<unsigned>(rng, {2, 4, 8});
    b.mapping = rng.chance(0.5) ? mem::BankMapping::xor_hash
                                : mem::BankMapping::block;
    b.row_bytes = pick<unsigned>(rng, {1024, 2048, 4096});
    b.t_rp = pick<unsigned>(rng, {20, 40});
    b.t_rcd = pick<unsigned>(rng, {20, 40});
    b.t_cas = pick<unsigned>(rng, {20, 40});
    b.line_cycles = pick<unsigned>(rng, {2, 4});
    b.refresh_interval = pick<unsigned>(rng, {0, 4096, 8192});
    b.refresh_cycles = pick<unsigned>(rng, {64, 128});
    b.dma_cycles_per_line = pick<unsigned>(rng, {2, 4});
  }

  s.regions = draw_regions(rng, cfg);
  const std::vector<std::size_t> bpc = per_core_regions(s.regions);
  const std::vector<std::size_t> sins = stencil_ins(s.regions, bpc, cfg);

  // Partition a shuffled core list among the programs; optionally leave a
  // tail of cores idle.
  std::vector<unsigned> cores(cfg.tiles);
  std::iota(cores.begin(), cores.end(), 0u);
  rng.shuffle(cores);
  const unsigned max_prog = std::max(1u, std::min(limits.max_programs, cfg.tiles));
  const unsigned n_prog = 1 + static_cast<unsigned>(rng.below(max_prog));
  unsigned claimed = cfg.tiles;
  if (cfg.tiles > n_prog && rng.chance(0.35))
    claimed = n_prog + static_cast<unsigned>(rng.below(cfg.tiles - n_prog + 1));
  std::vector<unsigned> sizes(n_prog, 1);
  for (unsigned extra = claimed - n_prog; extra > 0; --extra)
    ++sizes[rng.below(n_prog)];

  std::size_t next_core = 0;
  for (unsigned pi = 0; pi < n_prog; ++pi) {
    std::vector<GenKind> kinds{GenKind::scripted, GenKind::zipf,
                               GenKind::pointer_chase, GenKind::bursty};
    if (!bpc.empty()) {
      if (!sins.empty()) kinds.push_back(GenKind::stencil);
      kinds.push_back(GenKind::producer_consumer);
    }
    ProgramSpec p;
    switch (kinds[rng.below(kinds.size())]) {
      case GenKind::scripted:
        p = draw_scripted(rng, s.regions, cfg.tiles, limits);
        break;
      case GenKind::zipf:
        p = draw_zipf(rng, s.regions, limits);
        break;
      case GenKind::pointer_chase:
        p = draw_pointer_chase(rng, s.regions, limits);
        break;
      case GenKind::stencil:
        p = draw_stencil(rng, s.regions, bpc, sins, cfg, limits);
        break;
      case GenKind::producer_consumer:
        p = draw_producer_consumer(rng, s.regions, bpc, limits);
        break;
      case GenKind::bursty:
        p = draw_bursty(rng, s.regions, limits);
        break;
    }
    p.cores.assign(cores.begin() + next_core,
                   cores.begin() + next_core + sizes[pi]);
    next_core += sizes[pi];
    // Exercise the implicit "every core" form when one program owns the
    // whole chip anyway.
    if (n_prog == 1 && claimed == cfg.tiles && rng.chance(0.3)) p.cores.clear();
    s.programs.push_back(std::move(p));
  }

  prune_unreferenced_regions(s);
  return s;
}

void inject_marker_divergence(scen::Scenario& s) {
  RegionSpec marker;
  marker.name = kMarkerRegionName;
  marker.bytes = 256;
  marker.ref = mem::RefClass::random_noalias;
  s.regions.push_back(std::move(marker));

  ProgramSpec p;
  p.kind = GenKind::bursty;
  p.region = s.regions.size() - 1;
  p.bursts = 1;
  p.burst_len = 4;
  p.gap_on = 0;
  p.gap_off = 100;
  p.elem_bytes = 8;

  // Find a core for the marker program: an idle one if any exists.
  std::vector<int> owner(s.config.tiles, -1);
  for (std::size_t i = 0; i < s.programs.size(); ++i) {
    if (s.programs[i].cores.empty()) {
      for (auto& o : owner) o = static_cast<int>(i);
    } else {
      for (const unsigned c : s.programs[i].cores)
        owner[c] = static_cast<int>(i);
    }
  }
  unsigned core = s.config.tiles;
  for (unsigned t = 0; t < s.config.tiles; ++t)
    if (owner[t] < 0) {
      core = t;
      break;
    }
  bool dropped_donor = false;
  if (core == s.config.tiles) {
    // No idle core: steal one from the widest program (materializing the
    // implicit all-cores form first so the donor keeps an explicit list).
    std::size_t widest = 0;
    std::size_t wsize = 0;
    for (std::size_t i = 0; i < s.programs.size(); ++i) {
      auto& cs = s.programs[i].cores;
      if (cs.empty())
        for (unsigned t = 0; t < s.config.tiles; ++t) cs.push_back(t);
      if (cs.size() > wsize) {
        wsize = cs.size();
        widest = i;
      }
    }
    auto& donor = s.programs[widest].cores;
    core = donor.back();
    donor.pop_back();
    if (donor.empty()) {
      // Single-core donor: remove it outright (an empty explicit core
      // list is not parseable). Regions it alone used are pruned below,
      // after the marker program joins — so the marker region, being
      // referenced, survives the remap.
      s.programs.erase(s.programs.begin() +
                       static_cast<std::ptrdiff_t>(widest));
      dropped_donor = true;
    }
  }
  p.cores = {core};
  s.programs.push_back(std::move(p));
  if (dropped_donor) prune_unreferenced_regions(s);
}

}  // namespace raa::fuzz
