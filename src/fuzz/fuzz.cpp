#include "fuzz/fuzz.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#include "fleet/manifest.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"
#include "memsim/linetable.hpp"
#include "memsim/system.hpp"
#include "report/report.hpp"
#include "scenario/trace.hpp"

namespace raa::fuzz {

namespace {

const char* mode_str(mem::HierarchyMode m) {
  return m == mem::HierarchyMode::cache_only ? "cache_only" : "hybrid";
}

/// Record a reference run (paged store, serial engine) of `s` under the
/// divergence's hierarchy mode and persist it as a RAAT trace next to the
/// JSON repro, so a triager can replay the exact access streams.
bool write_repro_trace(const scen::Scenario& s, mem::HierarchyMode mode,
                       const std::string& path, std::string* error) {
  scen::TraceData trace;
  mem::Workload w = s.instantiate();
  scen::record_workload(w, s.config, mode, trace);
  (void)mem::run_with_store(s.config, mode, w, mem::LineStore::paged);
  return trace.write_file(path, error);
}

}  // namespace

FuzzResult run_fuzz(const FuzzOptions& opt) {
  FuzzResult res;

  if (!opt.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.out_dir, ec);
    if (ec) {
      res.error = opt.out_dir + ": cannot create output directory (" +
                  ec.message() + ")";
      return res;
    }
  }
  const auto out_path = [&](const std::string& file) {
    return opt.out_dir.empty() ? file : opt.out_dir + "/" + file;
  };

  if (opt.emit_manifest) {
    if (opt.out_dir.empty()) {
      res.error = "--emit-manifest needs an output directory (--out)";
      return res;
    }
    fleet::Manifest man;
    man.name = "fuzz_s" + std::to_string(opt.seed);
    man.seed = opt.seed;
    for (std::uint64_t i = 0; i < opt.budget_runs; ++i) {
      scen::Scenario s = generate_scenario(opt.seed, i, opt.limits);
      if (opt.inject_marker) inject_marker_divergence(s);
      const std::string file = "gen_i" + std::to_string(i) + ".json";
      std::string io_err;
      if (!report::write_json_file(s.to_json(), out_path(file), &io_err)) {
        res.error = io_err;
        break;
      }
      fleet::JobSpec job;
      job.id = "gen_i" + std::to_string(i);
      job.scenario = file;  // manifest-relative: the bundle is portable
      // Pin the generated seed: the fleet overrides a scenario's seed with
      // the job's, so an explicit match preserves the fuzzer's streams.
      job.seed = s.seed;
      man.jobs.push_back(std::move(job));
      if (!opt.quiet)
        std::printf("[raa_fuzz] case %llu/%llu %s: emitted %s\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(opt.budget_runs),
                    s.name.c_str(), file.c_str());
    }
    if (res.error.empty()) {
      std::string io_err;
      if (!report::write_json_file(man.to_json(),
                                   out_path("fleet_manifest.json"), &io_err))
        res.error = io_err;
    }
    json::Value& sum = res.summary;
    sum.set("schema", report::kFuzzSchemaName);
    sum.set("schema_version", report::kFuzzSchemaVersion);
    sum.set("seed", static_cast<double>(opt.seed));
    sum.set("budget_runs", static_cast<double>(opt.budget_runs));
    sum.set("emit_manifest", true);
    sum.set("manifest", "fleet_manifest.json");
    sum.set("emitted", static_cast<double>(man.jobs.size()));
    sum.set("status", res.error.empty() ? "ok" : "error");
    if (!res.error.empty()) sum.set("error", res.error);
    return res;
  }

  OracleOptions oopt;
  oopt.shards = opt.shards;
  oopt.check_marker = opt.inject_marker;

  json::Value divergences{json::Array{}};
  for (std::uint64_t i = 0; i < opt.budget_runs; ++i) {
    scen::Scenario s = generate_scenario(opt.seed, i, opt.limits);
    if (opt.inject_marker) inject_marker_divergence(s);
    const auto div = check_oracles(s, oopt);
    if (!div) {
      if (!opt.quiet)
        std::printf("[raa_fuzz] case %llu/%llu %s: ok\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(opt.budget_runs),
                    s.name.c_str());
      continue;
    }
    ++res.divergences;
    if (!opt.quiet)
      std::printf("[raa_fuzz] case %llu/%llu %s: DIVERGENCE oracle=%s (%s) — "
                  "shrinking\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(opt.budget_runs),
                  s.name.c_str(), to_string(div->oracle), div->detail.c_str());

    // Shrink under "same oracle still fails" so the minimization cannot
    // wander onto a different bug than the one it started from.
    ShrinkStats stats;
    const scen::Scenario shrunk = shrink_scenario(
        s,
        [&](const scen::Scenario& cand) {
          const auto d = check_oracles(cand, oopt);
          return d && d->oracle == div->oracle;
        },
        &stats);
    const auto final_div = check_oracles(shrunk, oopt);

    const std::string repro_name =
        "repro_i" + std::to_string(i) + ".json";
    const std::string trace_name = "repro_i" + std::to_string(i) + ".raat";
    std::string io_err;
    if (!report::write_json_file(shrunk.to_json(), out_path(repro_name),
                                 &io_err)) {
      res.error = io_err;
      break;
    }
    const mem::HierarchyMode trace_mode =
        final_div ? final_div->mode : shrunk.hierarchy_modes().front();
    if (!write_repro_trace(shrunk, trace_mode, out_path(trace_name),
                           &io_err)) {
      res.error = io_err;
      break;
    }

    json::Value d;
    d.set("index", static_cast<double>(i));
    d.set("scenario", s.name);
    d.set("oracle", to_string(div->oracle));
    d.set("mode", mode_str(div->mode));
    d.set("detail", final_div ? final_div->detail : div->detail);
    json::Value sh;
    sh.set("rounds", stats.rounds);
    sh.set("attempts", stats.attempts);
    sh.set("accepted", stats.accepted);
    sh.set("regions", static_cast<double>(shrunk.regions.size()));
    sh.set("programs", static_cast<double>(shrunk.programs.size()));
    d.set("shrink", std::move(sh));
    d.set("repro", repro_name);
    d.set("trace", trace_name);
    divergences.push_back(std::move(d));
    if (!opt.quiet)
      std::printf("[raa_fuzz]   shrunk to %zu region(s), %zu program(s) -> "
                  "%s\n",
                  shrunk.regions.size(), shrunk.programs.size(),
                  out_path(repro_name).c_str());
  }

  json::Value& sum = res.summary;
  sum.set("schema", report::kFuzzSchemaName);
  sum.set("schema_version", report::kFuzzSchemaVersion);
  sum.set("seed", static_cast<double>(opt.seed));
  sum.set("budget_runs", static_cast<double>(opt.budget_runs));
  sum.set("shards", opt.shards);
  sum.set("inject_marker", opt.inject_marker);
  sum.set("clean", static_cast<double>(opt.budget_runs - res.divergences));
  sum.set("divergence_count", res.divergences);
  sum.set("divergences", std::move(divergences));
  sum.set("status", res.error.empty()
                        ? (res.divergences == 0 ? "ok" : "divergence")
                        : "error");
  if (!res.error.empty()) sum.set("error", res.error);
  return res;
}

}  // namespace raa::fuzz
