#include "fuzz/shrink.hpp"

#include <algorithm>
#include <vector>

namespace raa::fuzz {

namespace {

using scen::GenKind;
using scen::Scenario;

/// Validity bar for candidates: the serialized form must re-parse. This is
/// exactly what a written repro artifact must satisfy, and it re-checks
/// every semantic constraint (window sizes, chunk tiling, core ranges)
/// that an edit may have broken.
bool parse_valid(const Scenario& c) {
  std::string err;
  return scen::Scenario::parse(c.to_json(), &err).has_value();
}

std::uint64_t halve(std::uint64_t x) { return std::max<std::uint64_t>(x / 2, 1); }

/// Drop every region no program references (repro files must pass the
/// drivers' claimed-by-zero-cores check) and remap surviving indices.
void prune_unreferenced(Scenario& s) {
  std::vector<bool> used(s.regions.size(), false);
  for (const auto& p : s.programs) {
    if (p.kind == GenKind::scripted) {
      for (const auto& ph : p.phases)
        for (const auto& st : ph.streams) used[st.region] = true;
    } else {
      used[p.region] = true;
      if (p.kind == GenKind::stencil) used[p.out_region] = true;
    }
  }
  std::vector<std::size_t> remap(s.regions.size(), 0);
  std::vector<scen::RegionSpec> kept;
  for (std::size_t i = 0; i < s.regions.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = kept.size();
    kept.push_back(std::move(s.regions[i]));
  }
  s.regions = std::move(kept);
  for (auto& p : s.programs) {
    if (p.kind == GenKind::scripted) {
      for (auto& ph : p.phases)
        for (auto& st : ph.streams) st.region = remap[st.region];
    } else {
      p.region = remap[p.region];
      if (p.kind == GenKind::stencil) p.out_region = remap[p.out_region];
    }
  }
}

/// Shrink the mesh along one axis, discarding cores that fall out of
/// range. Returns false (candidate unusable) when an explicit core list
/// would become empty.
bool shrink_mesh(Scenario& s, bool along_x) {
  unsigned& axis = along_x ? s.config.mesh_x : s.config.mesh_y;
  if (axis <= 1) return false;
  axis /= 2;
  s.config.tiles = s.config.mesh_x * s.config.mesh_y;
  for (auto& p : s.programs) {
    if (p.cores.empty()) continue;  // implicit all-cores tracks the mesh
    std::erase_if(p.cores,
                  [&](unsigned c) { return c >= s.config.tiles; });
    if (p.cores.empty()) return false;
  }
  return true;
}

/// Renumber the claimed cores to 0..k-1 (order-preserving by id), which
/// unblocks mesh shrinking when the surviving cores have high ids.
bool compact_cores(Scenario& s) {
  std::vector<unsigned> claimed;
  for (const auto& p : s.programs)
    for (const unsigned c : p.cores) claimed.push_back(c);
  if (claimed.empty()) return false;
  std::sort(claimed.begin(), claimed.end());
  bool changed = false;
  for (auto& p : s.programs)
    for (unsigned& c : p.cores) {
      const auto rank = static_cast<unsigned>(
          std::lower_bound(claimed.begin(), claimed.end(), c) -
          claimed.begin());
      changed = changed || rank != c;
      c = rank;
    }
  return changed;
}

/// All single-edit candidates, most aggressive first. Regenerated after
/// every accepted edit, so indices always refer to the current scenario.
std::vector<Scenario> propose(const Scenario& s) {
  std::vector<Scenario> out;
  const auto with = [&](auto&& edit) {
    Scenario c = s;
    if (edit(c)) out.push_back(std::move(c));
  };

  // Whole-program deletions.
  if (s.programs.size() > 1)
    for (std::size_t i = 0; i < s.programs.size(); ++i)
      with([&](Scenario& c) {
        c.programs.erase(c.programs.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });

  // Phase / stream deletions inside scripted programs.
  for (std::size_t i = 0; i < s.programs.size(); ++i) {
    const auto& p = s.programs[i];
    if (p.kind != GenKind::scripted) continue;
    if (p.phases.size() > 1)
      for (std::size_t j = 0; j < p.phases.size(); ++j)
        with([&](Scenario& c) {
          auto& ph = c.programs[i].phases;
          ph.erase(ph.begin() + static_cast<std::ptrdiff_t>(j));
          return true;
        });
    for (std::size_t j = 0; j < p.phases.size(); ++j)
      if (p.phases[j].streams.size() > 1)
        for (std::size_t k = 0; k < p.phases[j].streams.size(); ++k)
          with([&](Scenario& c) {
            auto& st = c.programs[i].phases[j].streams;
            st.erase(st.begin() + static_cast<std::ptrdiff_t>(k));
            return true;
          });
  }

  // Chip shrinking: halve an axis, or renumber cores to unblock it.
  with([&](Scenario& c) { return shrink_mesh(c, /*along_x=*/true); });
  with([&](Scenario& c) { return shrink_mesh(c, /*along_x=*/false); });
  with([&](Scenario& c) { return compact_cores(c); });

  // Core deletions: drop the last core of any multi-core program, and
  // collapse the implicit all-cores form to a single core.
  for (std::size_t i = 0; i < s.programs.size(); ++i) {
    if (s.programs[i].cores.size() > 1)
      with([&](Scenario& c) {
        c.programs[i].cores.pop_back();
        return true;
      });
    if (s.programs[i].cores.empty() && s.config.tiles > 1)
      with([&](Scenario& c) {
        c.programs[i].cores = {0};
        return true;
      });
  }

  // Region pruning (programs dropped above leave orphans behind).
  with([&](Scenario& c) {
    const std::size_t before = c.regions.size();
    prune_unreferenced(c);
    return c.regions.size() < before;
  });

  // Size halvings and gap/fraction zeroing, one field per candidate.
  for (std::size_t i = 0; i < s.programs.size(); ++i) {
    const auto& p = s.programs[i];
    const auto field = [&](auto get) {
      with([&](Scenario& c) {
        auto& x = get(c.programs[i]);
        if (x <= 1) return false;
        x = static_cast<std::remove_reference_t<decltype(x)>>(halve(x));
        return true;
      });
    };
    switch (p.kind) {
      case GenKind::scripted:
        for (std::size_t j = 0; j < p.phases.size(); ++j) {
          with([&](Scenario& c) {
            auto& ph = c.programs[i].phases[j];
            if (ph.iterations <= 1) return false;
            ph.iterations = halve(ph.iterations);
            return true;
          });
          with([&](Scenario& c) {
            auto& ph = c.programs[i].phases[j];
            if (ph.gap_cycles == 0) return false;
            ph.gap_cycles = 0;
            return true;
          });
        }
        break;
      case GenKind::zipf:
      case GenKind::pointer_chase:
        field([](scen::ProgramSpec& q) -> std::uint64_t& { return q.accesses; });
        break;
      case GenKind::stencil:
        field([](scen::ProgramSpec& q) -> std::uint32_t& { return q.sweeps; });
        field([](scen::ProgramSpec& q) -> std::uint32_t& { return q.halo; });
        break;
      case GenKind::producer_consumer:
        field([](scen::ProgramSpec& q) -> std::uint64_t& { return q.iterations; });
        break;
      case GenKind::bursty:
        field([](scen::ProgramSpec& q) -> std::uint64_t& { return q.bursts; });
        field([](scen::ProgramSpec& q) -> std::uint64_t& { return q.burst_len; });
        break;
    }
    if (p.kind != GenKind::scripted && p.kind != GenKind::bursty)
      with([&](Scenario& c) {
        if (c.programs[i].gap_cycles == 0) return false;
        c.programs[i].gap_cycles = 0;
        return true;
      });
    if (p.kind == GenKind::zipf || p.kind == GenKind::bursty)
      with([&](Scenario& c) {
        if (c.programs[i].store_fraction == 0.0) return false;
        c.programs[i].store_fraction = 0.0;
        return true;
      });
  }

  // Region size halvings (parse re-validates window and tiling bounds).
  for (std::size_t i = 0; i < s.regions.size(); ++i) {
    with([&](Scenario& c) {
      auto& r = c.regions[i];
      if (r.bytes > 1) {
        r.bytes = halve(r.bytes);
        return true;
      }
      if (r.bytes_per_core > 1) {
        r.bytes_per_core = halve(r.bytes_per_core);
        return true;
      }
      return false;
    });
  }

  return out;
}

}  // namespace

scen::Scenario shrink_scenario(scen::Scenario s, const StillFails& still_fails,
                               ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = {};
  bool progress = true;
  while (progress) {
    progress = false;
    ++st.rounds;
    for (auto& cand : propose(s)) {
      ++st.attempts;
      if (!parse_valid(cand)) continue;
      if (!still_fails(cand)) continue;
      s = std::move(cand);
      ++st.accepted;
      progress = true;
      break;  // re-propose against the smaller scenario
    }
  }
  return s;
}

}  // namespace raa::fuzz
