#include "fuzz/oracles.hpp"

#include <memory>
#include <sstream>

#include "fuzz/genscenario.hpp"
#include "memsim/linetable.hpp"
#include "memsim/system.hpp"
#include "scenario/trace.hpp"

namespace raa::fuzz {

namespace {

/// Name the first field where the two Metrics disagree; equality is exact,
/// so any report means a real divergence, never FP noise.
std::string metrics_diff(const mem::Metrics& a, const mem::Metrics& b) {
  std::ostringstream os;
  os.precision(17);
  const auto d = [&](const char* name, auto x, auto y) {
    if (os.tellp() == 0 && x != y) os << name << ": " << x << " vs " << y;
  };
  d("cycles", a.cycles, b.cycles);
  d("noc_flit_hops", a.noc_flit_hops, b.noc_flit_hops);
  d("e_l1", a.e_l1, b.e_l1);
  d("e_l2", a.e_l2, b.e_l2);
  d("e_spm", a.e_spm, b.e_spm);
  d("e_dram", a.e_dram, b.e_dram);
  d("e_noc", a.e_noc, b.e_noc);
  d("e_dir", a.e_dir, b.e_dir);
  d("e_static", a.e_static, b.e_static);
  d("accesses", a.accesses, b.accesses);
  d("l1_hits", a.l1_hits, b.l1_hits);
  d("l1_misses", a.l1_misses, b.l1_misses);
  d("l2_hits", a.l2_hits, b.l2_hits);
  d("l2_misses", a.l2_misses, b.l2_misses);
  d("spm_hits", a.spm_hits, b.spm_hits);
  d("dram_line_reads", a.dram_line_reads, b.dram_line_reads);
  d("dram_line_writes", a.dram_line_writes, b.dram_line_writes);
  d("dram_row_hits", a.dram_row_hits, b.dram_row_hits);
  d("dram_row_misses", a.dram_row_misses, b.dram_row_misses);
  d("dram_row_conflicts", a.dram_row_conflicts, b.dram_row_conflicts);
  d("dram_refreshes", a.dram_refreshes, b.dram_refreshes);
  d("invalidations", a.invalidations, b.invalidations);
  d("writebacks", a.writebacks, b.writebacks);
  d("prefetch_fills", a.prefetch_fills, b.prefetch_fills);
  d("dma_transfers", a.dma_transfers, b.dma_transfers);
  d("guarded_lookups", a.guarded_lookups, b.guarded_lookups);
  d("guarded_to_spm", a.guarded_to_spm, b.guarded_to_spm);
  d("remote_spm_accesses", a.remote_spm_accesses, b.remote_spm_accesses);
  return os.tellp() == 0 ? std::string{"metrics differ"} : os.str();
}

}  // namespace

const char* to_string(Oracle o) noexcept {
  switch (o) {
    case Oracle::store: return "store";
    case Oracle::shards: return "shards";
    case Oracle::replay: return "replay";
    case Oracle::roundtrip: return "roundtrip";
    case Oracle::backend: return "backend";
    case Oracle::marker: return "marker";
  }
  return "?";
}

std::optional<Divergence> check_oracles(const scen::Scenario& s,
                                        const OracleOptions& opt) {
  if (opt.check_marker) {
    for (const auto& r : s.regions)
      if (r.name.rfind(kMarkerRegionName, 0) == 0)
        return Divergence{Oracle::marker, mem::HierarchyMode::cache_only,
                          "synthetic marker region '" + r.name + "' present"};
  }

  // Serializer round trip first: structural, mode-independent. The parsed
  // copy also re-runs below so a to_json/parse asymmetry that happens to
  // compare field-equal would still surface as a metrics mismatch.
  std::string err;
  const auto parsed = scen::Scenario::parse(s.to_json(), &err);
  if (!parsed)
    return Divergence{Oracle::roundtrip, mem::HierarchyMode::cache_only,
                      "serialized scenario fails to parse: " + err};
  if (!(*parsed == s))
    return Divergence{Oracle::roundtrip, mem::HierarchyMode::cache_only,
                      "parse(to_json()) is not field-identical"};

  for (const mem::HierarchyMode mode : s.hierarchy_modes()) {
    // Reference leg: paged store, serial engine, recorded as it runs.
    auto trace = std::make_shared<scen::TraceData>();
    mem::Workload w = s.instantiate();
    scen::record_workload(w, s.config, mode, *trace);
    const mem::Metrics ref =
        mem::run_with_store(s.config, mode, w, mem::LineStore::paged);

    {
      mem::Workload w2 = s.instantiate();
      const mem::Metrics m =
          mem::run_with_store(s.config, mode, w2, mem::LineStore::hashed);
      if (!(m == ref))
        return Divergence{Oracle::store, mode, metrics_diff(ref, m)};
    }
    {
      mem::Workload w2 = s.instantiate();
      mem::RunOptions ro;
      ro.shards = opt.shards;
      const mem::Metrics m =
          mem::run_with_store(s.config, mode, w2, mem::LineStore::paged, ro);
      if (!(m == ref))
        return Divergence{Oracle::shards, mode, metrics_diff(ref, m)};
    }
    {
      mem::Workload w2 = scen::make_replay_workload(trace);
      const mem::Metrics m =
          mem::run_with_store(s.config, mode, w2, mem::LineStore::paged);
      if (!(m == ref))
        return Divergence{Oracle::replay, mode, metrics_diff(ref, m)};
    }
    {
      mem::Workload w2 = parsed->instantiate();
      const mem::Metrics m =
          mem::run_with_store(parsed->config, mode, w2, mem::LineStore::paged);
      if (!(m == ref))
        return Divergence{Oracle::roundtrip, mode, metrics_diff(ref, m)};
    }
  }

  // Backend oracle: a forced-banked copy must satisfy the same determinism
  // contracts (serial == sharded, recorded run == trace replay). When the
  // scenario already selected banked the main battery covered it above.
  if (s.config.memory.kind != mem::MemBackendKind::banked) {
    scen::Scenario b = s;
    b.config.memory.kind = mem::MemBackendKind::banked;
    for (const mem::HierarchyMode mode : b.hierarchy_modes()) {
      auto trace = std::make_shared<scen::TraceData>();
      mem::Workload w = b.instantiate();
      scen::record_workload(w, b.config, mode, *trace);
      const mem::Metrics ref =
          mem::run_with_store(b.config, mode, w, mem::LineStore::paged);
      {
        mem::Workload w2 = b.instantiate();
        mem::RunOptions ro;
        ro.shards = opt.shards;
        const mem::Metrics m = mem::run_with_store(b.config, mode, w2,
                                                   mem::LineStore::paged, ro);
        if (!(m == ref))
          return Divergence{Oracle::backend, mode,
                            "banked serial vs sharded: " +
                                metrics_diff(ref, m)};
      }
      {
        mem::Workload w2 = scen::make_replay_workload(trace);
        const mem::Metrics m =
            mem::run_with_store(b.config, mode, w2, mem::LineStore::paged);
        if (!(m == ref))
          return Divergence{Oracle::backend, mode,
                            "banked record vs replay: " +
                                metrics_diff(ref, m)};
      }
    }
  }
  return std::nullopt;
}

}  // namespace raa::fuzz
