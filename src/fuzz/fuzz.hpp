#pragma once
/// \file fuzz.hpp
/// The budgeted fuzz driver behind tools/raa_fuzz: generate
/// `budget_runs` scenarios from a seed, run the oracle battery
/// (oracles.hpp) over each, and on divergence shrink to a minimal repro
/// (shrink.hpp) written as a scenario JSON file plus a recorded trace.
///
/// Everything is deterministic in (seed, budget_runs, limits): the summary
/// document contains no timestamps, wall-clock readings or absolute paths,
/// so two runs with the same options produce byte-identical summaries —
/// the property CI pins and the one that makes a summary sufficient to
/// re-create any run.

#include <cstdint>
#include <string>

#include "fuzz/genscenario.hpp"
#include "report/json.hpp"

namespace raa::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t budget_runs = 25;
  unsigned shards = 4;  ///< lane count for the shards oracle
  GenLimits limits;
  /// Directory repro artifacts are written to (created if missing);
  /// empty = current directory. The summary records file names only.
  std::string out_dir;
  /// Graft the synthetic marker divergence onto every generated scenario
  /// and enable the marker oracle — the end-to-end shrinker/repro
  /// exercise used by tests and CI.
  bool inject_marker = false;
  /// Instead of running the oracle battery, write every generated case to
  /// `out_dir` as gen_i<N>.json plus a fleet manifest
  /// (fleet_manifest.json, schema "raa-fleet-manifest") naming them all —
  /// the fuzz-corpus -> raa_fleet bridge. Requires a non-empty out_dir;
  /// each manifest job pins the generated scenario's own seed so the
  /// fleet replays the exact streams the fuzzer drew.
  bool emit_manifest = false;
  bool quiet = false;  ///< suppress per-case progress on stdout
};

struct FuzzResult {
  json::Value summary;       ///< the raa-fuzz-summary document
  unsigned divergences = 0;  ///< cases that failed an oracle
  std::string error;         ///< non-empty on artifact I/O failure
};

FuzzResult run_fuzz(const FuzzOptions& opt);

}  // namespace raa::fuzz
