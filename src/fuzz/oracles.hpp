#pragma once
/// \file oracles.hpp
/// The differential oracle battery: every generated scenario is run through
/// four independent pairs of executions that the simulator contracts to be
/// *exactly* equal (Metrics operator== is bit-for-bit, FP sums included):
///
///   store     paged line table        vs  hashed line table
///   shards    serial engine           vs  N-sharded engine
///   replay    live generators         vs  recorded-trace replay
///   roundtrip the scenario as built   vs  parse(to_json(scenario))
///   backend   forced-banked copy: serial vs sharded, and recorded run
///             vs trace replay (the four pairs above already run under
///             whichever DRAM backend the scenario itself selected)
///
/// A further, test-only oracle ("marker") fails for exactly the scenarios
/// containing a __diverge_marker region; the shrinker tests use it as a
/// synthetic bug with a known minimal reproducer.

#include <cstdint>
#include <optional>
#include <string>

#include "memsim/config.hpp"
#include "scenario/scenario.hpp"

namespace raa::fuzz {

enum class Oracle : std::uint8_t {
  store,
  shards,
  replay,
  roundtrip,
  backend,
  marker
};

const char* to_string(Oracle o) noexcept;

struct OracleOptions {
  unsigned shards = 4;        ///< lane count for the shards oracle
  bool check_marker = false;  ///< enable the synthetic test oracle
};

/// One disagreement: which pair diverged, under which hierarchy mode, and
/// a short what-differed message for the repro report.
struct Divergence {
  Oracle oracle = Oracle::store;
  mem::HierarchyMode mode = mem::HierarchyMode::cache_only;
  std::string detail;
};

/// Run the full battery over `s` (every hierarchy mode the scenario names).
/// Returns the first divergence, or nullopt when every pair agrees — the
/// predicate the fuzz driver and the shrinker both evaluate.
std::optional<Divergence> check_oracles(const scen::Scenario& s,
                                        const OracleOptions& opt = {});

}  // namespace raa::fuzz
